// Exploratory hypertext — the paper's §1 "exploratory tools similar to the
// World-Wide-Web" workload.
//
// Pages live in per-topic bunches and link freely across topics, forming
// cross-bunch cycles (page rings).  When the crawler's root set moves on,
// acyclic garbage falls to ordinary BGCs via the scion cleaner, while the
// cyclic rings — which no bunch-local collector can prove dead — fall to the
// group garbage collector (§7).

#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

using namespace bmx;

namespace {

constexpr size_t kSlotLink0 = 0;
constexpr size_t kSlotLink1 = 1;
constexpr size_t kSlotId = 2;

Gaddr NewPage(Mutator& m, BunchId topic, uint64_t id) {
  Gaddr page = m.Alloc(topic, 3);
  m.WriteWord(page, kSlotId, id);
  return page;
}

}  // namespace

int main() {
  Cluster cluster({.num_nodes = 1});
  Mutator crawler(&cluster.node(0));
  Rng rng(2026);

  // Four topic bunches.
  std::vector<BunchId> topics;
  for (int i = 0; i < 4; ++i) {
    topics.push_back(cluster.CreateBunch(0));
  }

  // A live portal page with outgoing links.
  Gaddr portal = NewPage(crawler, topics[0], 1);
  crawler.AddRoot(portal);

  // A reachable chain of pages hopping across topics.
  Gaddr prev = portal;
  for (uint64_t id = 2; id <= 9; ++id) {
    Gaddr page = NewPage(crawler, topics[id % topics.size()], id);
    crawler.WriteRef(prev, kSlotLink0, page);
    prev = page;
  }

  // Several cross-topic page *rings* that the portal no longer links to:
  // cyclic garbage spanning bunches.
  size_t ring_pages = 0;
  for (int ring = 0; ring < 3; ++ring) {
    std::vector<Gaddr> pages;
    for (size_t t = 0; t < topics.size(); ++t) {
      pages.push_back(NewPage(crawler, topics[t], 100 + ring * 10 + t));
      ring_pages++;
    }
    for (size_t i = 0; i < pages.size(); ++i) {
      crawler.WriteRef(pages[i], kSlotLink1, pages[(i + 1) % pages.size()]);
    }
  }
  // Plus plain acyclic junk.
  for (int i = 0; i < 20; ++i) {
    NewPage(crawler, topics[rng.Below(topics.size())], 900 + i);
  }

  std::printf("built: 9 live pages, %zu cyclic-garbage pages, 20 acyclic-garbage pages\n",
              ring_pages);

  // Per-bunch BGCs reclaim the acyclic junk but are *structurally unable* to
  // collect the rings: each bunch's collector sees a scion from another
  // bunch and must keep its ring members alive.
  for (BunchId topic : topics) {
    cluster.node(0).gc().CollectBunch(topic);
  }
  uint64_t after_bgc = cluster.node(0).gc().stats().objects_reclaimed;
  std::printf("after per-bunch BGCs: %llu reclaimed (the %zu ring pages survive)\n",
              (unsigned long long)after_bgc, ring_pages);

  // The group collector treats all locally mapped bunches as one space:
  // scions whose stubs originate inside the group are not roots, so the
  // rings collapse.
  cluster.node(0).gc().CollectGroup();
  uint64_t after_ggc = cluster.node(0).gc().stats().objects_reclaimed;
  std::printf("after one GGC: %llu reclaimed total (+%llu ring pages)\n",
              (unsigned long long)after_ggc, (unsigned long long)(after_ggc - after_bgc));

  // The live chain is untouched; walk and print it.
  std::printf("live chain: ");
  Gaddr cur = cluster.node(0).dsm().ResolveAddr(portal);
  while (cur != kNullAddr) {
    crawler.AcquireRead(cur);
    std::printf("%llu ", (unsigned long long)crawler.ReadWord(cur, kSlotId));
    Gaddr next = crawler.ReadRef(cur, kSlotLink0);
    crawler.Release(cur);
    cur = next;
  }
  std::printf("\n");

  // Reuse the address space: free every from-space segment.
  for (BunchId topic : topics) {
    cluster.node(0).gc().ReclaimFromSpaces(topic);
  }
  cluster.Pump();
  std::printf("segments freed: %llu\n",
              (unsigned long long)cluster.node(0).gc().stats().segments_freed);
  return 0;
}
