// Crash recovery through recoverable virtual memory (paper §2.1, §8).
//
// A node builds a persistent ledger, runs a collection (persistence by
// reachability: garbage never reaches the disk), checkpoints the bunch
// through RVM, mutates some more WITHOUT checkpointing, and crashes.  The
// restarted node replays the committed log and finds exactly the
// checkpointed state — the later uncommitted mutations are gone, the
// collected garbage never came back.

#include <cstdio>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

using namespace bmx;

namespace {

void AdoptRecoveredSegment(Node* node, SegmentImage* image, BunchId bunch) {
  image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
    if (!header.forwarded()) {
      node->dsm().RegisterNewObject(header.oid, addr, bunch);
    } else {
      node->store().SetAddrOfOid(header.oid, header.forward);
    }
  });
}

}  // namespace

int main() {
  Cluster cluster({.num_nodes = 1});
  BunchId ledger = cluster.CreateBunch(0);
  Gaddr head = kNullAddr;
  std::vector<SegmentId> segments;

  {
    Mutator m(&cluster.node(0));
    GraphBuilder builder(&cluster, &m);

    // 30 committed ledger entries plus garbage.
    head = builder.BuildList(ledger, 30);
    m.AddRoot(head);
    builder.BuildList(ledger, 200);  // scratch data, unreachable

    // Persistence by reachability: collect + reclaim before checkpointing,
    // so only the 30 live entries ever reach stable storage.
    cluster.node(0).gc().CollectBunch(ledger);
    cluster.node(0).gc().ReclaimFromSpaces(ledger);
    cluster.Pump();
    std::printf("collected %llu garbage entries before checkpoint\n",
                (unsigned long long)cluster.node(0).gc().stats().objects_reclaimed);

    cluster.node(0).CheckpointBunch(ledger);
    segments = cluster.node(0).store().SegmentsOfBunch(ledger);
    head = cluster.node(0).dsm().ResolveAddr(head);
    std::printf("checkpointed %zu segment(s); RVM log holds %zu bytes\n", segments.size(),
                cluster.node(0).persistence().rvm().LogSizeBytes());

    // Post-checkpoint mutation — never committed.
    m.AcquireWrite(head);
    m.WriteWord(head, 1, 999999);
    m.Release(head);
    std::printf("mutated entry after checkpoint (value 999999, uncommitted)\n");
  }

  std::printf("--- node crashes ---\n");
  cluster.CrashNode(0);

  Node& fresh = cluster.RestartNode(0);
  fresh.persistence().Recover();
  for (SegmentId seg : segments) {
    SegmentImage& image = fresh.store().GetOrCreate(seg, ledger);
    if (!fresh.persistence().LoadSegment(&image)) {
      std::printf("segment %u missing from stable storage!\n", seg);
      return 1;
    }
    AdoptRecoveredSegment(&fresh, &image, ledger);
  }
  fresh.gc().RegisterBunchReplica(ledger);
  std::printf("recovered %zu segment(s) from the RVM log\n", segments.size());

  Mutator m(&fresh);
  Gaddr cur = head;
  size_t entries = 0;
  uint64_t first_value = 0;
  while (cur != kNullAddr) {
    m.AcquireRead(cur);
    if (entries == 0) {
      first_value = m.ReadWord(cur, 1);
    }
    Gaddr next = m.ReadRef(cur, 0);
    m.Release(cur);
    cur = next;
    entries++;
  }
  std::printf("ledger after recovery: %zu entries; head value = %llu %s\n", entries,
              (unsigned long long)first_value,
              first_value == 999999 ? "(UNCOMMITTED LEAKED!)" : "(checkpointed value, correct)");
  return entries == 30 && first_value != 999999 ? 0 : 1;
}
