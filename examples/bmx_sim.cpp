// bmx_sim — a parameterized workload driver for exploring the platform.
//
// Runs a configurable multi-node shared-graph workload with interleaved
// collections and prints a full statistics report: DSM traffic, GC work,
// SSP table churn, reclamation, and the headline non-interference counters.
//
// Usage:
//   bmx_sim [nodes] [objects] [rounds] [seed] [--distributed] [--ggc]
//           [--loss <pct>]
//
// Example:
//   bmx_sim 4 64 200 7 --distributed --ggc --loss 5

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

using namespace bmx;

namespace {

struct Options {
  size_t nodes = 3;
  size_t objects = 32;
  size_t rounds = 100;
  uint64_t seed = 1;
  bool distributed = false;
  bool use_ggc = false;
  double loss = 0.0;
};

Options Parse(int argc, char** argv) {
  Options opt;
  size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--distributed") {
      opt.distributed = true;
    } else if (arg == "--ggc") {
      opt.use_ggc = true;
    } else if (arg == "--loss" && i + 1 < argc) {
      opt.loss = std::atof(argv[++i]) / 100.0;
    } else {
      uint64_t value = std::strtoull(arg.c_str(), nullptr, 10);
      switch (positional++) {
        case 0:
          opt.nodes = value;
          break;
        case 1:
          opt.objects = value;
          break;
        case 2:
          opt.rounds = value;
          break;
        case 3:
          opt.seed = value;
          break;
        default:
          break;
      }
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);
  std::printf("bmx_sim: %zu nodes, %zu objects, %zu rounds, seed %llu, %s copy-sets, %s, "
              "loss %.0f%%\n",
              opt.nodes, opt.objects, opt.rounds, (unsigned long long)opt.seed,
              opt.distributed ? "distributed" : "centralized",
              opt.use_ggc ? "GGC enabled" : "BGC only", opt.loss * 100);

  Cluster cluster({.num_nodes = opt.nodes,
                   .copyset_mode = opt.distributed ? CopySetMode::kDistributed
                                                   : CopySetMode::kCentralized,
                   .seed = opt.seed});
  cluster.network().set_loss_rate(opt.loss);
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < opt.nodes; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  Rng rng(opt.seed);

  // Shared population with a spine rooted at node 0.
  std::vector<Gaddr> objects;
  for (size_t i = 0; i < opt.objects; ++i) {
    objects.push_back(mutators[0]->Alloc(bunch, 3));
  }
  for (size_t i = 0; i + 1 < opt.objects; ++i) {
    mutators[0]->WriteRef(objects[i], 0, objects[i + 1]);
  }
  mutators[0]->AddRoot(objects[0]);

  size_t gc_runs = 0;
  for (size_t round = 0; round < opt.rounds; ++round) {
    NodeId writer = static_cast<NodeId>(rng.Below(opt.nodes));
    Gaddr victim = objects[rng.Below(objects.size())];
    if (mutators[writer]->AcquireWrite(victim)) {
      mutators[writer]->WriteRef(victim, 1, objects[rng.Below(objects.size())]);
      mutators[writer]->WriteWord(victim, 2, round);
      mutators[writer]->Release(victim);
    }
    for (int r = 0; r < 2; ++r) {
      NodeId reader = static_cast<NodeId>(rng.Below(opt.nodes));
      Gaddr obj = objects[rng.Below(objects.size())];
      if (mutators[reader]->AcquireRead(obj)) {
        mutators[reader]->Release(obj);
      }
    }
    if (rng.Chance(0.2)) {
      NodeId collector = static_cast<NodeId>(rng.Below(opt.nodes));
      if (opt.use_ggc) {
        cluster.node(collector).gc().CollectGroup();
      } else {
        cluster.node(collector).gc().CollectBunch(bunch);
      }
      gc_runs++;
      if (rng.Chance(0.5)) {
        cluster.node(collector).gc().ReclaimFromSpaces(bunch);
      }
      cluster.Pump();
    }
    for (size_t i = 0; i < objects.size(); ++i) {
      objects[i] = cluster.node(0).dsm().ResolveAddr(objects[i]);
    }
  }
  cluster.Pump();

  // ---- Report ----
  const NetworkStats& net = cluster.network().stats();
  std::printf("\n-- network --\n");
  std::printf("total messages: %llu (%llu bytes)\n", (unsigned long long)net.TotalSent(),
              (unsigned long long)net.TotalBytes());
  std::printf("  application/DSM:     %llu\n",
              (unsigned long long)net.SentInCategory(MsgCategory::kDsm));
  std::printf("  GC background:       %llu\n",
              (unsigned long long)net.SentInCategory(MsgCategory::kGcBackground));
  std::printf("  GC foreground:       %llu (must be 0: no baseline ran)\n",
              (unsigned long long)net.SentInCategory(MsgCategory::kGcForeground));

  uint64_t copied = 0, scanned = 0, reclaimed = 0, refs_updated = 0, segs_freed = 0;
  uint64_t tokens = 0, invalidated = 0, piggyback = 0;
  uint64_t stubs = 0, scions = 0, scions_deleted = 0;
  for (size_t n = 0; n < opt.nodes; ++n) {
    const GcStats& gc = cluster.node(n).gc().stats();
    copied += gc.objects_copied;
    scanned += gc.objects_scanned;
    reclaimed += gc.objects_reclaimed;
    refs_updated += gc.refs_updated_locally;
    segs_freed += gc.segments_freed;
    stubs += gc.inter_stubs_created + gc.intra_stubs_created;
    scions += gc.inter_scions_created + gc.intra_scions_created;
    scions_deleted += gc.inter_scions_deleted + gc.intra_scions_deleted;
    const DsmStats& dsm = cluster.node(n).dsm().stats();
    tokens += cluster.node(n).dsm().GcTokenAcquires();
    invalidated += dsm.read_copies_invalidated;
    piggyback += dsm.piggyback_updates_sent;
  }
  std::printf("\n-- garbage collection (%zu runs) --\n", gc_runs);
  std::printf("objects copied: %llu, scanned in place: %llu, reclaimed: %llu\n",
              (unsigned long long)copied, (unsigned long long)scanned,
              (unsigned long long)reclaimed);
  std::printf("local refs updated: %llu, segments freed: %llu\n",
              (unsigned long long)refs_updated, (unsigned long long)segs_freed);
  std::printf("SSPs created: %llu stubs / %llu scions; scions cleaned: %llu\n",
              (unsigned long long)stubs, (unsigned long long)scions,
              (unsigned long long)scions_deleted);
  std::printf("address updates piggybacked on app traffic: %llu\n",
              (unsigned long long)piggyback);
  std::printf("\n-- the headline --\n");
  std::printf("tokens acquired by the collector: %llu\n", (unsigned long long)tokens);
  std::printf("read copies invalidated by the collector: 0 by construction "
              "(all %llu invalidations were application writes)\n",
              (unsigned long long)invalidated);

  // Final integrity walk from node 0.
  size_t len = 0;
  Gaddr cur = objects[0];
  while (cur != kNullAddr && mutators[0]->AcquireRead(cur)) {
    Gaddr next = mutators[0]->ReadRef(cur, 0);
    mutators[0]->Release(cur);
    cur = next;
    len++;
  }
  std::printf("\nintegrity: %zu/%zu spine objects reachable — %s\n", len, opt.objects,
              len == opt.objects ? "OK" : "CORRUPT");
  return len == opt.objects && tokens == 0 ? 0 : 1;
}
