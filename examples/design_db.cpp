// Cooperative design database — the paper's §1 motivating workload ("the
// object graphs of applications, like financial or design databases,
// cooperative work ... are very intricate").
//
// Three engineering sites share a circuit design: a netlist of components
// (one bunch) wired to a shared parts library (another bunch).  Sites edit
// concurrently under entry consistency; each site garbage-collects its own
// replica on its own schedule; dropped sub-assemblies are reclaimed across
// the cluster by the SSP machinery without any site ever pausing another.

#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

using namespace bmx;

namespace {

constexpr size_t kSlotNext = 0;   // next component in the assembly
constexpr size_t kSlotPart = 1;   // -> parts library entry (cross-bunch!)
constexpr size_t kSlotValue = 2;  // parameter value

Gaddr AddComponent(Mutator& m, BunchId netlist, Gaddr after, Gaddr part, uint64_t value) {
  Gaddr c = m.Alloc(netlist, 3);
  m.WriteRef(c, kSlotPart, part);
  m.WriteWord(c, kSlotValue, value);
  if (after != kNullAddr) {
    m.AcquireWrite(after);
    m.WriteRef(after, kSlotNext, c);
    m.Release(after);
  }
  return c;
}

size_t AssemblyLength(Mutator& m, Gaddr head) {
  size_t n = 0;
  Gaddr cur = head;
  while (cur != kNullAddr) {
    m.AcquireRead(cur);
    Gaddr next = m.ReadRef(cur, kSlotNext);
    m.Release(cur);
    cur = next;
    n++;
  }
  return n;
}

}  // namespace

int main() {
  Cluster cluster({.num_nodes = 3});
  Mutator site_a(&cluster.node(0));
  Mutator site_b(&cluster.node(1));
  Mutator site_c(&cluster.node(2));

  BunchId netlist = cluster.CreateBunch(0);  // the design itself
  BunchId library = cluster.CreateBunch(2);  // parts library, owned by site C

  // Site C publishes the parts library.
  std::vector<Gaddr> parts;
  for (int i = 0; i < 8; ++i) {
    Gaddr part = site_c.Alloc(library, 1);
    site_c.WriteWord(part, 0, 1000 + i);
    site_c.AddRoot(part);
    parts.push_back(part);
  }

  // Site A starts the main assembly, wiring components to library parts —
  // every cross-bunch store builds an SSP via the write barrier (scions land
  // at site C, which holds the parts' bytes).
  Gaddr head = AddComponent(site_a, netlist, kNullAddr, parts[0], 10);
  site_a.AddRoot(head);
  Gaddr tail = head;
  for (int i = 1; i < 6; ++i) {
    tail = AddComponent(site_a, netlist, tail, parts[i % parts.size()], 10 + i);
  }
  cluster.Pump();
  std::printf("site A built an assembly of %zu components\n", AssemblyLength(site_a, head));

  // Site B joins: faults the assembly in and extends it concurrently.
  site_b.AcquireRead(head);
  site_b.Release(head);
  site_b.AddRoot(head);
  Gaddr b_tail = tail;
  for (int i = 0; i < 4; ++i) {
    site_b.AcquireRead(b_tail);
    Gaddr next = site_b.ReadRef(b_tail, kSlotNext);
    site_b.Release(b_tail);
    if (next == kNullAddr) {
      break;
    }
    b_tail = next;
  }
  Gaddr extension = AddComponent(site_b, netlist, tail, parts[7], 99);
  (void)extension;
  cluster.Pump();
  std::printf("site B extended it to %zu components\n", AssemblyLength(site_b, head));

  // Site A prunes a sub-assembly (drops the last two components) while site
  // B keeps reading — the edit invalidates only the touched component.
  Gaddr cut_point = head;
  for (int i = 0; i < 4; ++i) {
    site_a.AcquireRead(cut_point);
    Gaddr next = site_a.ReadRef(cut_point, kSlotNext);
    site_a.Release(cut_point);
    cut_point = next;
  }
  site_a.AcquireWrite(cut_point);
  site_a.WriteRef(cut_point, kSlotNext, kNullAddr);
  site_a.Release(cut_point);
  std::printf("site A pruned the assembly to %zu components\n", AssemblyLength(site_a, head));

  // Site B re-reads the assembly: its invalidated token forces a fresh fetch
  // of the cut component, so B's replica sees the prune.  (Until a replica
  // synchronizes, its stale bytes conservatively keep the tail alive — §4.2.)
  std::printf("site B re-reads: %zu components\n", AssemblyLength(site_b, head));

  // Every site collects its own replicas on its own schedule; no tokens, no
  // interference with the other sites' edits.
  for (NodeId n = 0; n < 3; ++n) {
    cluster.node(n).gc().CollectGroup();
    cluster.Pump();
  }
  // A second round lets the scion cleaner cascade settle.
  for (NodeId n = 0; n < 3; ++n) {
    cluster.node(n).gc().CollectGroup();
    cluster.Pump();
  }

  uint64_t reclaimed = 0;
  uint64_t gc_tokens = 0;
  for (NodeId n = 0; n < 3; ++n) {
    reclaimed += cluster.node(n).gc().stats().objects_reclaimed;
    gc_tokens += cluster.node(n).dsm().GcTokenAcquires();
  }
  std::printf("pruned components reclaimed across the cluster: %llu replicas\n",
              (unsigned long long)reclaimed);
  std::printf("tokens acquired by any collector: %llu\n", (unsigned long long)gc_tokens);

  // The library parts the live assembly still uses survived (scions); the
  // one referenced only by the pruned tail will go once its stub is dropped
  // everywhere.  The design itself is intact at every site:
  std::printf("final assembly: A=%zu B=%zu C(after fault-in)=",
              AssemblyLength(site_a, head), AssemblyLength(site_b, head));
  site_c.AcquireRead(head);
  site_c.Release(head);
  site_c.AddRoot(head);
  std::printf("%zu components\n", AssemblyLength(site_c, head));

  // Persist the design at its home site.
  cluster.node(0).gc().ReclaimFromSpaces(netlist);
  cluster.Pump();
  cluster.node(0).CheckpointBunch(netlist);
  std::printf("design checkpointed to stable storage\n");
  return 0;
}
