// Quickstart: two nodes share a persistent object graph through BMX.
//
// Shows the whole surface in ~100 lines: creating a cluster and a bunch,
// allocating objects, entry-consistency critical sections, the write barrier,
// running a bunch garbage collection on each replica independently, and
// watching addresses reconcile at the next synchronization point.

#include <cstdio>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

using namespace bmx;

int main() {
  // A two-node BMX deployment: simulated network, shared segment directory
  // (the BMX-server role), shared stable store.
  Cluster cluster({.num_nodes = 2});
  Mutator alice(&cluster.node(0));
  Mutator bob(&cluster.node(1));

  // A bunch is the unit of collection; objects are allocated inside it.
  BunchId bunch = cluster.CreateBunch(/*creator=*/0);

  // Alice builds a two-object record: head -> payload.
  Gaddr head = alice.Alloc(bunch, /*size_slots=*/2);
  Gaddr payload = alice.Alloc(bunch, /*size_slots=*/1);
  alice.WriteRef(head, 0, payload);   // write barrier runs here
  alice.WriteWord(head, 1, 2026);
  alice.AddRoot(head);                // roots = the mutator stack

  // Bob faults the objects in through the entry-consistency protocol.
  bob.AcquireRead(head);
  std::printf("bob reads year = %llu\n", (unsigned long long)bob.ReadWord(head, 1));
  Gaddr payload_at_bob = bob.ReadRef(head, 0);
  bob.Release(head);
  bob.AcquireWrite(payload_at_bob);
  bob.WriteWord(payload_at_bob, 0, 42);
  bob.Release(payload_at_bob);

  // Alice's node collects its replica of the bunch — independently of Bob's
  // replica, without acquiring a single token.
  cluster.node(0).gc().CollectBunch(bunch);
  std::printf("alice's BGC copied %llu objects, GC token acquires everywhere: %llu\n",
              (unsigned long long)cluster.node(0).gc().stats().objects_copied,
              (unsigned long long)(cluster.node(0).dsm().GcTokenAcquires() +
                                   cluster.node(1).dsm().GcTokenAcquires()));

  // The same object now legitimately sits at different addresses on the two
  // nodes; Bob still computes correctly, and the addresses reconcile when he
  // synchronizes (invariant 1 of §5 rides on the token grant).
  Gaddr head_alice = cluster.node(0).dsm().ResolveAddr(head);
  Gaddr head_bob = cluster.node(1).dsm().ResolveAddr(head);
  std::printf("head at alice=0x%llx, at bob=0x%llx (diverged: %s)\n",
              (unsigned long long)head_alice, (unsigned long long)head_bob,
              head_alice == head_bob ? "no" : "yes");

  alice.AcquireWrite(head);  // invalidates bob's token
  alice.WriteWord(head, 1, 2027);
  alice.Release(head);
  bob.AcquireRead(head);     // synchronization point: addresses reconcile
  std::printf("bob re-reads year = %llu\n", (unsigned long long)bob.ReadWord(head, 1));
  bob.Release(head);
  std::printf("head at alice=0x%llx, at bob=0x%llx (reconciled)\n",
              (unsigned long long)cluster.node(0).dsm().ResolveAddr(head),
              (unsigned long long)cluster.node(1).dsm().ResolveAddr(head));

  // Drop the payload reference; the next collections reclaim it everywhere.
  alice.AcquireWrite(head);
  alice.WriteRef(head, 0, kNullAddr);
  alice.Release(head);
  cluster.node(0).gc().CollectBunch(bunch);
  cluster.Pump();
  cluster.node(1).gc().CollectBunch(bunch);
  std::printf("reclaimed at alice=%llu, at bob=%llu objects\n",
              (unsigned long long)cluster.node(0).gc().stats().objects_reclaimed,
              (unsigned long long)cluster.node(1).gc().stats().objects_reclaimed);

  // Persist the bunch through RVM and prove it survives a crash.
  cluster.node(0).CheckpointBunch(bunch);
  std::printf("checkpointed; disk holds %zu files\n", cluster.disk().ListFiles().size());
  return 0;
}
