// Transactional ledger — the paper's §1 "financial databases" workload, on
// the §10 transactions extension.
//
// Two branch offices share an account book under entry consistency.  Every
// transfer is a Transaction: atomic in memory (abort unwinds both legs) and
// durable on commit (RVM checkpoint).  A crash between commits loses nothing
// committed; a failed validation aborts cleanly; and the garbage collector
// runs throughout without touching a single token.

#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/runtime/transaction.h"

using namespace bmx;

namespace {

constexpr size_t kSlotBalance = 0;
constexpr size_t kSlotNext = 1;

uint64_t TotalBalance(Mutator& m, Gaddr head) {
  uint64_t total = 0;
  Gaddr cur = head;
  while (cur != kNullAddr) {
    m.AcquireRead(cur);
    total += m.ReadWord(cur, kSlotBalance);
    Gaddr next = m.ReadRef(cur, kSlotNext);
    m.Release(cur);
    cur = next;
  }
  return total;
}

}  // namespace

int main() {
  Cluster cluster({.num_nodes = 2});
  Mutator hq(&cluster.node(0));
  Mutator branch(&cluster.node(1));
  BunchId book = cluster.CreateBunch(0);

  // HQ opens ten accounts with 1000 each.
  std::vector<Gaddr> accounts;
  Gaddr head = kNullAddr;
  for (int i = 0; i < 10; ++i) {
    Gaddr acct = hq.Alloc(book, 2);
    hq.WriteWord(acct, kSlotBalance, 1000);
    hq.WriteRef(acct, kSlotNext, head);
    head = acct;
    accounts.push_back(acct);
  }
  hq.AddRoot(head);
  std::printf("opened 10 accounts, total = %llu\n",
              (unsigned long long)TotalBalance(hq, head));

  // Random transfers from both sites, each a committed transaction.
  Rng rng(42);
  size_t committed = 0;
  size_t aborted = 0;
  for (int i = 0; i < 40; ++i) {
    bool at_hq = rng.Chance(0.5);
    Mutator& teller = at_hq ? hq : branch;
    Node& node = at_hq ? cluster.node(0) : cluster.node(1);
    Gaddr from = accounts[rng.Below(accounts.size())];
    Gaddr to = accounts[rng.Below(accounts.size())];
    uint64_t amount = 50 + rng.Below(200);

    if (!teller.AcquireWrite(from)) {
      continue;
    }
    uint64_t balance = teller.ReadWord(from, kSlotBalance);
    if (balance < amount || teller.SameObject(from, to)) {
      teller.Release(from);
      aborted++;
      continue;
    }
    Transaction tx(&teller, &node, book);
    tx.WriteWord(from, kSlotBalance, balance - amount);
    teller.Release(from);
    teller.AcquireWrite(to);
    tx.WriteWord(to, kSlotBalance, teller.ReadWord(to, kSlotBalance) + amount);
    teller.Release(to);
    if (rng.Chance(0.15)) {
      tx.Abort();  // simulated validation failure: both legs unwind
      aborted++;
    } else {
      tx.Commit();
      committed++;
    }
  }
  cluster.Pump();
  std::printf("%zu transfers committed, %zu aborted; total = %llu (conserved: %s)\n",
              committed, aborted, (unsigned long long)TotalBalance(hq, head),
              TotalBalance(hq, head) == 10000 ? "yes" : "NO");

  // Collections run throughout real deployments; prove non-interference.
  cluster.node(0).gc().CollectBunch(book);
  cluster.Pump();
  cluster.node(1).gc().CollectBunch(book);
  cluster.Pump();
  auto report = cluster.node(0).gc().ReportOf(book);
  std::printf("after GC: %zu live objects, %.0f%% heap utilization, GC tokens = %llu\n",
              report.live_objects, report.Utilization() * 100,
              (unsigned long long)(cluster.node(0).dsm().GcTokenAcquires() +
                                   cluster.node(1).dsm().GcTokenAcquires()));

  // Close of business: HQ just read every account (the total walk), so its
  // copies are current; a full checkpoint captures a consistent book.  The
  // per-transfer commits above already made each transfer individually
  // durable at object granularity.
  Gaddr head_now = cluster.node(0).dsm().ResolveAddr(head);
  size_t final_total = TotalBalance(hq, head_now);
  (void)final_total;
  cluster.node(0).CheckpointBunch(book);
  std::vector<SegmentId> segments = cluster.node(0).store().SegmentsOfBunch(book);
  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.persistence().Recover();
  for (SegmentId seg : segments) {
    SegmentImage& image = fresh.store().GetOrCreate(seg, book);
    if (fresh.persistence().LoadSegment(&image)) {
      image.ForEachObject([&](Gaddr addr, ObjectHeader& header) {
        if (!header.forwarded()) {
          fresh.dsm().RegisterNewObject(header.oid, addr, book);
        } else {
          fresh.store().SetAddrOfOid(header.oid, header.forward);
        }
      });
    }
  }
  Mutator recovered(&fresh);
  std::printf("after crash + recovery: total = %llu (conserved: %s)\n",
              (unsigned long long)TotalBalance(recovered, head_now),
              TotalBalance(recovered, head_now) == 10000 ? "yes" : "NO");
  return TotalBalance(recovered, head_now) == 10000 ? 0 : 1;
}
