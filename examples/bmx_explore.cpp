// Schedule-exploration CLI: runs the Explorer over the fig. 1–4 scenario
// closures (or one named scenario) under a wall-clock budget, prints one
// summary line per scenario, and writes the shrunk trace of any invariant
// violation to --trace-dir.  CI runs this under ASan+UBSan as the
// exploration job; exit status is non-zero iff a violation was found, so the
// uploaded trace artifact is the repro.
//
//   bmx_explore [--budget-seconds N] [--seeds N] [--seed ROOT]
//               [--schedule fifo|random-walk|delay-bounded]
//               [--delay-bound N] [--deviation-rate R] [--stride N]
//               [--trace-dir DIR] [--scenario NAME] [--canary]
//               [--stale-canary] [--zombie-canary] [--consistency]
//               [--liveness] [--gray SPEC] [--zombie NODE]
//               [--workload] [--soak] [--nodes N] [--topology KIND]
//               [--degree K] [--ops N] [--batch] [--list]
//
// --canary swaps in the planted-ordering-bug scenario (a self-test of the
// find→shrink→replay pipeline: it MUST violate, and the run fails if the
// explorer misses it).  --stale-canary does the same with the planted
// stale-read bug, which only the consistency checker can see (it implies
// --consistency).  --zombie-canary does the same with the planted-livelock
// scenario, which only the liveness oracle can see (it implies --liveness).
// --consistency records client histories and adds ConsistencyChecker
// verdicts to every walk; --liveness tracks protocol obligations and adds
// LivenessOracle verdicts; --workload appends the randomized mutator
// workload to the scenario set.
//
// Scale-out knobs: --soak swaps in the SoakScenario (the long randomized
// multi-node workload from src/workload/soak.h) and --nodes / --topology
// (full|ring|star|random-regular) / --degree / --ops shape it; --nodes also
// appends the scaled fig. 1–4 closures (ScaledScenarios) to the standard set
// when --soak is not given.  --batch turns on the coalescing transport
// (src/net/batch.h defaults) inside every scenario cluster it shapes; the
// default is off — the pinned-fingerprint baseline.
//
// --gray installs a gray-failure profile (see src/net/gray_failure.h for the
// DSL, e.g. "0->1:lat=4,loss=0.2") inside every scenario closure, so walks,
// shrinking and replay all run under the same degraded links.  --zombie N
// (repeatable) shorthands a node-level zombie in the same spec.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "src/net/gray_failure.h"
#include "src/runtime/explorer.h"
#include "src/runtime/scenarios.h"
#include "src/workload/soak.h"

using namespace bmx;

namespace {

uint64_t ParseU64(const char* s) { return std::strtoull(s, nullptr, 10); }

void PrintResult(const ExplorerScenario& scenario, const ExplorationResult& result) {
  std::printf("%-28s %-9s runs=%zu deliveries=%llu",
              scenario.name.c_str(), result.violation_found ? "VIOLATED" : "clean",
              result.runs, static_cast<unsigned long long>(result.total_deliveries));
  if (result.violation_found) {
    std::printf(" walk_seed=%llu trace_decisions=%zu shrunk=%zu",
                static_cast<unsigned long long>(result.violating_walk_seed),
                result.trace.decisions.size(), result.shrunk.decisions.size());
  }
  std::printf("\n");
  for (const std::string& v : result.violations) {
    std::printf("    violation: %s\n", v.c_str());
  }
  if (!result.trace_path.empty()) {
    std::printf("    trace: %s\n", result.trace_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ExplorerOptions options;
  options.num_walks = 256;
  options.budget_seconds = 30.0;
  options.oracle_stride = 1;
  std::string only_scenario;
  bool canary = false;
  bool stale_canary = false;
  bool zombie_canary = false;
  bool workload = false;
  bool soak = false;
  bool list = false;
  size_t nodes = 0;  // 0 = unset: standard 3-node set only, soak default 16
  SoakOptions soak_opts;
  BatchPolicy batch;  // enabled by --batch, with the header defaults
  GraySpec gray;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--budget-seconds") == 0) {
      options.budget_seconds = std::strtod(next("--budget-seconds"), nullptr);
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      options.num_walks = static_cast<size_t>(ParseU64(next("--seeds")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.root_seed = ParseU64(next("--seed"));
    } else if (std::strcmp(argv[i], "--schedule") == 0) {
      std::string kind = next("--schedule");
      if (kind == "fifo") {
        options.schedule = ScheduleKind::kFifo;
      } else if (kind == "random-walk") {
        options.schedule = ScheduleKind::kRandomWalk;
      } else if (kind == "delay-bounded") {
        options.schedule = ScheduleKind::kDelayBounded;
      } else {
        std::fprintf(stderr, "unknown schedule: %s\n", kind.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--delay-bound") == 0) {
      options.delay_bound = ParseU64(next("--delay-bound"));
    } else if (std::strcmp(argv[i], "--deviation-rate") == 0) {
      options.deviation_rate = std::strtod(next("--deviation-rate"), nullptr);
    } else if (std::strcmp(argv[i], "--stride") == 0) {
      options.oracle_stride = ParseU64(next("--stride"));
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      options.trace_dir = next("--trace-dir");
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      only_scenario = next("--scenario");
    } else if (std::strcmp(argv[i], "--canary") == 0) {
      canary = true;
    } else if (std::strcmp(argv[i], "--stale-canary") == 0) {
      stale_canary = true;
      options.check_consistency = true;
    } else if (std::strcmp(argv[i], "--zombie-canary") == 0) {
      zombie_canary = true;
      options.check_liveness = true;
    } else if (std::strcmp(argv[i], "--consistency") == 0) {
      options.check_consistency = true;
    } else if (std::strcmp(argv[i], "--liveness") == 0) {
      options.check_liveness = true;
    } else if (std::strcmp(argv[i], "--gray") == 0) {
      GraySpec parsed;
      std::string error;
      if (!GraySpec::Parse(next("--gray"), &parsed, &error)) {
        std::fprintf(stderr, "bad --gray spec: %s\n", error.c_str());
        return 2;
      }
      gray.links.insert(gray.links.end(), parsed.links.begin(), parsed.links.end());
      gray.zombie_nodes.insert(gray.zombie_nodes.end(), parsed.zombie_nodes.begin(),
                               parsed.zombie_nodes.end());
    } else if (std::strcmp(argv[i], "--zombie") == 0) {
      gray.zombie_nodes.push_back(static_cast<NodeId>(ParseU64(next("--zombie"))));
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      workload = true;
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<size_t>(ParseU64(next("--nodes")));
    } else if (std::strcmp(argv[i], "--topology") == 0) {
      std::string kind = next("--topology");
      if (!ParseTopologyKind(kind, &soak_opts.topology)) {
        std::fprintf(stderr, "unknown topology: %s\n", kind.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--degree") == 0) {
      soak_opts.topology_degree = static_cast<size_t>(ParseU64(next("--degree")));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      soak_opts.ops = static_cast<size_t>(ParseU64(next("--ops")));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch.enabled = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<ExplorerScenario> scenarios;
  if (canary) {
    scenarios.push_back(CanaryReorderScenario());
  } else if (stale_canary) {
    scenarios.push_back(StaleReadCanaryScenario());
  } else if (zombie_canary) {
    scenarios.push_back(ZombieGrantCanaryScenario());
  } else if (soak) {
    if (nodes > 0) {
      soak_opts.num_nodes = nodes;
    }
    soak_opts.batch = batch;
    scenarios.push_back(SoakScenario(soak_opts));
  } else {
    std::vector<ExplorerScenario> all = StandardScenarios();
    if (nodes > 0) {
      std::vector<ExplorerScenario> scaled = ScaledScenarios(nodes, batch);
      all.insert(all.end(), std::make_move_iterator(scaled.begin()),
                 std::make_move_iterator(scaled.end()));
    }
    if (workload) {
      all.push_back(HistoryWorkloadScenario());
    }
    for (ExplorerScenario& s : all) {
      if (only_scenario.empty() || s.name == only_scenario) {
        scenarios.push_back(std::move(s));
      }
    }
  }
  if (!gray.Empty()) {
    // Wrap every scenario so the profile is installed inside the closure:
    // recorded traces then replay (and shrink) under the same degraded links.
    std::printf("bmx_explore: gray profile \"%s\"\n", gray.ToString().c_str());
    for (ExplorerScenario& s : scenarios) {
      auto inner = s.run;
      GraySpec spec = gray;
      s.run = [inner, spec](Cluster& c) {
        spec.Apply(&c.network());
        inner(c);
      };
    }
  }
  if (list) {
    for (const ExplorerScenario& s : scenarios) {
      std::printf("%s\n", s.name.c_str());
    }
    return 0;
  }
  if (scenarios.empty()) {
    std::fprintf(stderr, "no scenario named %s\n", only_scenario.c_str());
    return 2;
  }

  // The root seed drives every walk; logging it is what makes a CI failure
  // reproducible on any machine.
  std::printf("bmx_explore: root_seed=%llu walks=%zu budget=%.1fs stride=%llu\n",
              static_cast<unsigned long long>(options.root_seed), options.num_walks,
              options.budget_seconds, static_cast<unsigned long long>(options.oracle_stride));

  // The wall-clock budget is split evenly across scenarios.
  if (options.budget_seconds > 0 && scenarios.size() > 1) {
    options.budget_seconds /= static_cast<double>(scenarios.size());
  }

  bool any_violation = false;
  Explorer explorer(options);
  for (const ExplorerScenario& scenario : scenarios) {
    ExplorationResult result = explorer.Explore(scenario);
    PrintResult(scenario, result);
    any_violation |= result.violation_found;
  }

  if (canary || stale_canary || zombie_canary) {
    const char* which = canary ? "canary" : stale_canary ? "stale-canary" : "zombie-canary";
    if (!any_violation) {
      std::fprintf(stderr, "%s self-test FAILED: explorer missed the planted bug\n", which);
      return 1;
    }
    std::printf("%s self-test ok: planted bug found and shrunk\n", which);
    return 0;
  }
  return any_violation ? 1 : 0;
}
