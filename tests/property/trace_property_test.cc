// Property tests for the `# bmx-trace v1` text format (docs/PROTOCOLS.md
// §11): randomized DecisionLogs round-trip Serialize→Parse exactly, and any
// truncation or structural corruption of the text is rejected with a clean
// parse failure — never accepted as a silently shorter schedule.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/net/scheduler.h"

namespace bmx {
namespace {

bool SameTrace(const Trace& a, const Trace& b) {
  return a.root_seed == b.root_seed && a.walk_seed == b.walk_seed &&
         a.scenario == b.scenario && a.scheduler == b.scheduler &&
         a.total_decisions == b.total_decisions && a.decisions == b.decisions;
}

// A randomized sparse trace, the way real recordings produce them: strictly
// increasing indices, any decision point, small values.
Trace RandomTrace(Rng& rng) {
  Trace t;
  t.root_seed = rng.Next();
  t.walk_seed = rng.Next();
  const char* scenarios[] = {"fig1-ssp-chain", "fig3-invalidate-fanout",
                             "history-workload", "x"};
  const char* schedulers[] = {"fifo", "random-walk", "delay-bounded"};
  t.scenario = scenarios[rng.Below(4)];
  t.scheduler = schedulers[rng.Below(3)];
  uint64_t index = 0;
  size_t count = rng.Below(12);
  for (size_t i = 0; i < count; ++i) {
    index += 1 + rng.Below(40);
    auto point = static_cast<DecisionPoint>(
        rng.Below(static_cast<uint64_t>(DecisionPoint::kMaxPoint)));
    t.decisions.push_back(Decision{index, point, rng.Below(8)});
  }
  t.total_decisions = index + rng.Below(20);
  return t;
}

TEST(TraceProperty, RandomTracesRoundTrip) {
  Rng rng(0x7ace5eed);
  for (int iter = 0; iter < 200; ++iter) {
    Trace t = RandomTrace(rng);
    Trace back;
    ASSERT_TRUE(Trace::Parse(t.Serialize(), &back)) << t.Serialize();
    EXPECT_TRUE(SameTrace(t, back)) << t.Serialize();
  }
}

// Recording through a DecisionLog (the producer the format exists for) and
// parsing back what it serialized is lossless too.
TEST(TraceProperty, RecordedDecisionLogsRoundTrip) {
  Rng rng(0xdec151015);
  for (int iter = 0; iter < 50; ++iter) {
    DecisionLog log;
    log.StartRecording();
    size_t steps = 1 + rng.Below(60);
    for (size_t s = 0; s < steps; ++s) {
      auto point = static_cast<DecisionPoint>(
          rng.Below(static_cast<uint64_t>(DecisionPoint::kMaxPoint)));
      // Default 0; about half the live values are non-default and recorded.
      log.Resolve(point, 0, [&] { return rng.Below(2); });
    }
    Trace t = log.TakeTrace();
    t.scenario = "recorded";
    t.scheduler = "random-walk";
    t.root_seed = iter;
    Trace back;
    ASSERT_TRUE(Trace::Parse(t.Serialize(), &back));
    EXPECT_TRUE(SameTrace(t, back));
  }
}

// Truncation at EVERY byte boundary: the prefix either fails to parse or
// (only when the cut removed nothing but the trailing newline) parses to the
// identical trace.  A silent partial replay — success with fewer decisions —
// is the failure mode this guards against.
TEST(TraceProperty, EveryTruncationRejectedOrIdentical) {
  Rng rng(0x7c0bbed);
  for (int iter = 0; iter < 40; ++iter) {
    Trace t = RandomTrace(rng);
    std::string text = t.Serialize();
    for (size_t cut = 0; cut < text.size(); ++cut) {
      Trace out;
      if (Trace::Parse(text.substr(0, cut), &out)) {
        EXPECT_TRUE(SameTrace(t, out))
            << "cut at " << cut << " of " << text.size() << " parsed as a "
            << "different trace:\n" << text;
      }
    }
  }
}

// Deleting any single decision line makes the footer count disagree.
TEST(TraceProperty, DroppedDecisionLineRejected) {
  Rng rng(0xde1e7ed);
  for (int iter = 0; iter < 40; ++iter) {
    Trace t = RandomTrace(rng);
    if (t.decisions.empty()) {
      continue;
    }
    std::string text = t.Serialize();
    size_t victim = rng.Below(t.decisions.size());
    for (size_t pos = 0;;) {
      size_t eol = text.find('\n', pos);
      ASSERT_NE(eol, std::string::npos);
      if (text.compare(pos, 10, "decision: ") == 0 && victim-- == 0) {
        text.erase(pos, eol - pos + 1);
        break;
      }
      pos = eol + 1;
    }
    Trace out;
    EXPECT_FALSE(Trace::Parse(text, &out)) << text;
  }
}

// Structural corruption: bogus keys, bogus decision points, a lying footer.
TEST(TraceProperty, CorruptedTracesRejected) {
  Rng rng(0xc0bb);
  for (int iter = 0; iter < 40; ++iter) {
    Trace t = RandomTrace(rng);
    std::string text = t.Serialize();
    Trace out;
    // Unknown key injected before the footer.
    std::string with_key = text;
    with_key.insert(with_key.find("end: "), "mystery: 1\n");
    EXPECT_FALSE(Trace::Parse(with_key, &out));
    // Footer count off by one.
    std::string bad_end = text.substr(0, text.find("end: ")) +
                          "end: " + std::to_string(t.decisions.size() + 1) + "\n";
    EXPECT_FALSE(Trace::Parse(bad_end, &out));
    // Version header removed entirely.
    std::string headless = text.substr(text.find('\n') + 1);
    EXPECT_FALSE(Trace::Parse(headless, &out));
  }
}

}  // namespace
}  // namespace bmx
