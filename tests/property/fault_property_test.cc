// Property sweep for the §5 safety invariant under a hostile network: with
// datagram loss, duplication and reordering, reliable-transmission and ack
// loss, a transient partition, and a crash/restart of a peer node all active,
// a multi-node GC workload must still
//
//   * never reclaim a live object (every rooted object survives with its
//     payload intact), and
//   * leave the network quiescent (no unacked reliable traffic, no held
//     redelivery backlog) once every node is back and the faults are cleared.
//
// The GC's reachability tables are idempotent full state (§6.1), so loss and
// duplication of the unreliable class must be absorbed by repetition; the
// reliable class is exercised through the DSM acquires and the reclaim
// protocol riding on retransmission and crash-recovery redelivery.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

class FaultSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultSweepTest, NoLiveObjectReclaimedAndNetworkQuiesces) {
  const uint64_t seed = GetParam();
  Cluster cluster({.num_nodes = 3, .seed = seed});
  Rng rng(seed * 977);
  Mutator m0(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);

  auto objects = GraphBuilder(&cluster, &m0).BuildRandomGraph(bunch, 40, 3, &rng);
  for (size_t i = 0; i < objects.size(); ++i) {
    m0.WriteWord(objects[i], 3, 5000 + i);  // tamper-evident payload tag
  }
  m0.AddRoot(objects[0]);
  GraphBuilder(&cluster, &m0).BuildList(bunch, 30);  // garbage mixed in
  cluster.Pump();

  cluster.network().set_loss_rate(0.3);
  cluster.network().set_duplication_rate(0.3);
  cluster.network().set_reorder_rate(0.2);
  cluster.network().set_reliable_loss_rate(0.2);
  cluster.network().set_ack_loss_rate(0.2);

  bool node2_down = false;
  for (int round = 0; round < 6; ++round) {
    // Remote readers pull replicas through the faulty network, building up
    // copysets that GC and invalidation traffic must then cross.
    for (NodeId reader = 1; reader <= 2; ++reader) {
      if (reader == 2 && node2_down) {
        continue;
      }
      Mutator m(&cluster.node(reader));
      Gaddr pick = objects[rng.Below(objects.size())];
      if (m.AcquireRead(pick)) {
        m.Release(pick);
      }
    }
    if (round == 1) {
      cluster.CrashNode(2);
      node2_down = true;
    }
    if (round == 2) {
      cluster.PartitionNodes(0, 1);
    }
    if (round == 3) {
      cluster.HealPartition(0, 1);
    }
    if (round == 4) {
      cluster.RestartNode(2);  // parked reliable traffic replays here
      node2_down = false;
    }
    cluster.node(0).gc().CollectBunch(bunch);
    cluster.node(0).gc().ReclaimFromSpaces(bunch);
    cluster.Pump();
  }

  // Faults off, everyone up: the protocol must drain completely.
  cluster.network().set_loss_rate(0.0);
  cluster.network().set_duplication_rate(0.0);
  cluster.network().set_reorder_rate(0.0);
  cluster.network().set_reliable_loss_rate(0.0);
  cluster.network().set_ack_loss_rate(0.0);
  cluster.Pump();
  EXPECT_TRUE(cluster.network().Idle());
  EXPECT_EQ(cluster.network().UnackedCount(), 0u);
  EXPECT_EQ(cluster.network().HeldCount(), 0u);

  // Safety: the garbage went, the live graph did not.
  EXPECT_GT(cluster.node(0).gc().stats().objects_reclaimed, 0u);
  Gaddr cur = cluster.node(0).dsm().ResolveAddr(objects[0]);
  for (size_t i = 0; i < objects.size(); ++i) {
    ASSERT_TRUE(m0.AcquireRead(cur)) << "live object " << i << " lost (seed " << seed << ")";
    EXPECT_EQ(m0.ReadWord(cur, 3), 5000 + i) << "payload corrupted (seed " << seed << ")";
    Gaddr next = m0.ReadRef(cur, 0);
    m0.Release(cur);
    cur = next;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweepTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

}  // namespace
}  // namespace bmx
