// Property tests for the unified RetryPolicy (src/common/retry.h): backoff
// shape (monotone up to the cap, legacy-compatible by default), jitter bounds
// and determinism, attempt budgets, and the per-peer circuit breaker's
// open → half-open → closed/re-open life cycle.

#include <vector>

#include <gtest/gtest.h>

#include "src/common/retry.h"
#include "src/common/rng.h"

namespace bmx {
namespace {

// The default config must reproduce the legacy network retransmit shift
// (`timeout << min(attempts, 16)`) bit for bit — the pinned traffic
// fingerprints depend on it.
TEST(RetryBackoff, DefaultConfigMatchesLegacyShift) {
  RetryPolicy policy;
  for (uint32_t attempt = 0; attempt < 40; ++attempt) {
    EXPECT_EQ(policy.BackoffFor(attempt),
              uint64_t{8} << (attempt < 16 ? attempt : 16))
        << "attempt " << attempt;
  }
  // jitter_key must be inert while jitter is off.
  EXPECT_EQ(policy.BackoffFor(3, 0), policy.BackoffFor(3, 12345));
}

// Monotone non-decreasing up to the cap, for many configs, jittered or not:
// the backoff doubles every attempt and jitter adds at most one backoff, so
// a jittered step can never overtake the next unjittered one.
TEST(RetryBackoff, MonotoneNonDecreasingUpToCap) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    RetryPolicyConfig config;
    config.base_timeout = 1 + rng.Below(64);
    config.backoff_shift_cap = 1 + static_cast<uint32_t>(rng.Below(20));
    config.jitter_fraction = static_cast<double>(rng.Below(101)) / 100.0;
    config.jitter_seed = rng.Next();
    RetryPolicy policy(config);
    uint64_t key = rng.Next();
    uint64_t prev = 0;
    for (uint32_t attempt = 0; attempt <= config.backoff_shift_cap; ++attempt) {
      uint64_t backoff = policy.BackoffFor(attempt, key);
      EXPECT_GE(backoff, prev) << "trial " << trial << " attempt " << attempt;
      prev = backoff;
    }
  }
}

// Jitter stays inside [backoff, (1 + fraction) * backoff].
TEST(RetryBackoff, JitterWithinConfiguredBounds) {
  RetryPolicyConfig config;
  config.base_timeout = 16;
  config.backoff_shift_cap = 10;
  config.jitter_fraction = 0.5;
  config.jitter_seed = 99;
  RetryPolicy policy(config);
  for (uint32_t attempt = 0; attempt < 24; ++attempt) {
    for (uint64_t key = 0; key < 16; ++key) {
      uint64_t pure =
          config.base_timeout << (attempt < 10 ? attempt : 10);
      uint64_t backoff = policy.BackoffFor(attempt, key);
      EXPECT_GE(backoff, pure);
      EXPECT_LE(backoff, pure + pure / 2);
    }
  }
}

// Identical seeds give identical schedules (BackoffFor is pure — no stream
// state is consumed); different seeds decorrelate.
TEST(RetryBackoff, SeededJitterIsDeterministic) {
  RetryPolicyConfig config;
  config.jitter_fraction = 0.75;
  config.jitter_seed = 42;
  RetryPolicy a(config);
  RetryPolicy b(config);
  std::vector<uint64_t> schedule_a, schedule_b;
  for (uint32_t attempt = 0; attempt < 32; ++attempt) {
    schedule_a.push_back(a.BackoffFor(attempt, attempt * 3));
    // Interleave unrelated queries: purity means they cannot perturb b's
    // schedule.
    (void)b.BackoffFor(attempt + 7, 999);
    schedule_b.push_back(b.BackoffFor(attempt, attempt * 3));
  }
  EXPECT_EQ(schedule_a, schedule_b);

  config.jitter_seed = 43;
  RetryPolicy c(config);
  bool any_difference = false;
  for (uint32_t attempt = 0; attempt < 32; ++attempt) {
    any_difference |= c.BackoffFor(attempt, attempt * 3) != schedule_a[attempt];
  }
  EXPECT_TRUE(any_difference);
}

TEST(RetryBudget, ExhaustedHonorsBudgetAndUnboundedZero) {
  RetryPolicyConfig config;
  config.attempt_budget = 3;
  RetryPolicy bounded(config);
  EXPECT_FALSE(bounded.Exhausted(0));
  EXPECT_FALSE(bounded.Exhausted(2));
  EXPECT_TRUE(bounded.Exhausted(3));
  EXPECT_TRUE(bounded.Exhausted(4));
  RetryPolicy unbounded;
  EXPECT_FALSE(unbounded.Exhausted(1u << 30));
}

// Breaker life cycle: threshold consecutive failures open it, the cooldown
// holds attempts off, then one half-open probe is admitted and its outcome
// re-closes or re-opens the breaker.
TEST(RetryBreaker, OpensAfterThresholdAndReclosesOnProbeSuccess) {
  RetryPolicyConfig config;
  config.breaker_threshold = 3;
  config.breaker_cooldown_ticks = 100;
  RetryPolicy policy(config);
  const NodeId peer = 2;
  uint64_t now = 10;

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(policy.AllowAttempt(peer, now));
    policy.RecordFailure(peer, now);
    EXPECT_EQ(policy.StateOf(peer), RetryPolicy::BreakerState::kClosed);
  }
  policy.RecordFailure(peer, now);
  EXPECT_EQ(policy.StateOf(peer), RetryPolicy::BreakerState::kOpen);

  // Open: refused until the cooldown elapses.
  EXPECT_FALSE(policy.AllowAttempt(peer, now));
  EXPECT_FALSE(policy.AllowAttempt(peer, now + 99));
  // Cooldown over: exactly one half-open probe.
  EXPECT_TRUE(policy.AllowAttempt(peer, now + 100));
  EXPECT_EQ(policy.StateOf(peer), RetryPolicy::BreakerState::kHalfOpen);
  EXPECT_FALSE(policy.AllowAttempt(peer, now + 100));

  // Probe succeeds: breaker re-closes and failures reset (it takes the full
  // threshold to open it again).
  policy.RecordSuccess(peer);
  EXPECT_EQ(policy.StateOf(peer), RetryPolicy::BreakerState::kClosed);
  EXPECT_TRUE(policy.AllowAttempt(peer, now + 101));
  policy.RecordFailure(peer, now + 101);
  EXPECT_EQ(policy.StateOf(peer), RetryPolicy::BreakerState::kClosed);
}

TEST(RetryBreaker, FailedProbeReopensWithFreshCooldown) {
  RetryPolicyConfig config;
  config.breaker_threshold = 2;
  config.breaker_cooldown_ticks = 50;
  RetryPolicy policy(config);
  const NodeId peer = 1;
  policy.RecordFailure(peer, 0);
  policy.RecordFailure(peer, 0);
  EXPECT_EQ(policy.StateOf(peer), RetryPolicy::BreakerState::kOpen);
  EXPECT_TRUE(policy.AllowAttempt(peer, 50));  // half-open probe
  policy.RecordFailure(peer, 50);
  EXPECT_EQ(policy.StateOf(peer), RetryPolicy::BreakerState::kOpen);
  EXPECT_FALSE(policy.AllowAttempt(peer, 99));
  EXPECT_TRUE(policy.AllowAttempt(peer, 100));
}

TEST(RetryBreaker, DisabledBreakerAdmitsEverything) {
  RetryPolicy policy;  // breaker_threshold = 0
  for (int i = 0; i < 100; ++i) {
    policy.RecordFailure(0, static_cast<uint64_t>(i));
    EXPECT_TRUE(policy.AllowAttempt(0, static_cast<uint64_t>(i)));
    EXPECT_EQ(policy.StateOf(0), RetryPolicy::BreakerState::kClosed);
  }
}

// Breakers are per peer: peer 1 tripping must not affect peer 2.
TEST(RetryBreaker, PerPeerIsolation) {
  RetryPolicyConfig config;
  config.breaker_threshold = 1;
  RetryPolicy policy(config);
  policy.RecordFailure(1, 0);
  EXPECT_EQ(policy.StateOf(1), RetryPolicy::BreakerState::kOpen);
  EXPECT_FALSE(policy.AllowAttempt(1, 0));
  EXPECT_TRUE(policy.AllowAttempt(2, 0));
  EXPECT_EQ(policy.StateOf(2), RetryPolicy::BreakerState::kClosed);
}

}  // namespace
}  // namespace bmx
