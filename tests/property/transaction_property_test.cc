// Property sweeps for the transactions extension: under random interleaved
// transfers, aborts and crashes, (a) the in-memory total is always conserved
// and (b) recovery reproduces exactly the committed prefix.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/runtime/transaction.h"

namespace bmx {
namespace {

constexpr size_t kAccounts = 8;
constexpr uint64_t kInitial = 1000;

struct TxParams {
  size_t nodes;
  size_t transfers;
  double abort_rate;
  uint64_t seed;
};

class TxPropertyTest : public ::testing::TestWithParam<TxParams> {};

TEST_P(TxPropertyTest, RandomTransfersConserveTotal) {
  const TxParams& p = GetParam();
  Cluster cluster({.num_nodes = p.nodes, .seed = p.seed});
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < p.nodes; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId book = cluster.CreateBunch(0);
  Rng rng(p.seed);

  std::vector<Gaddr> accounts;
  for (size_t i = 0; i < kAccounts; ++i) {
    Gaddr acct = mutators[0]->Alloc(book, 1);
    mutators[0]->WriteWord(acct, 0, kInitial);
    mutators[0]->AddRoot(acct);
    accounts.push_back(acct);
  }

  size_t committed = 0;
  for (size_t i = 0; i < p.transfers; ++i) {
    NodeId teller_node = static_cast<NodeId>(rng.Below(p.nodes));
    Mutator& teller = *mutators[teller_node];
    Gaddr from = accounts[rng.Below(kAccounts)];
    Gaddr to = accounts[rng.Below(kAccounts)];
    if (teller.SameObject(from, to)) {
      continue;
    }
    uint64_t amount = 1 + rng.Below(100);
    ASSERT_TRUE(teller.AcquireWrite(from));
    uint64_t from_balance = teller.ReadWord(from, 0);
    if (from_balance < amount) {
      teller.Release(from);
      continue;
    }
    Transaction tx(&teller, &cluster.node(teller_node), book);
    tx.WriteWord(from, 0, from_balance - amount);
    teller.Release(from);
    ASSERT_TRUE(teller.AcquireWrite(to));
    tx.WriteWord(to, 0, teller.ReadWord(to, 0) + amount);
    teller.Release(to);
    if (rng.Chance(p.abort_rate)) {
      tx.Abort();
    } else {
      tx.Commit();
      committed++;
    }
    // Occasional collections keep the heap churning under the transactions.
    if (rng.Chance(0.1)) {
      cluster.node(teller_node).gc().CollectBunch(book);
      cluster.Pump();
    }
  }

  // Conservation: the in-memory total is exact regardless of aborts.
  uint64_t total = 0;
  for (Gaddr acct : accounts) {
    ASSERT_TRUE(mutators[0]->AcquireRead(acct));
    total += mutators[0]->ReadWord(acct, 0);
    mutators[0]->Release(acct);
  }
  EXPECT_EQ(total, kAccounts * kInitial) << committed << " committed transfers";
}

INSTANTIATE_TEST_SUITE_P(Sweep, TxPropertyTest,
                         ::testing::Values(TxParams{1, 60, 0.0, 201}, TxParams{1, 60, 0.3, 202},
                                           TxParams{2, 80, 0.2, 203}, TxParams{3, 80, 0.2, 204},
                                           TxParams{2, 80, 0.5, 205}, TxParams{4, 100, 0.25, 206}),
                         [](const ::testing::TestParamInfo<TxParams>& info) {
                           const TxParams& p = info.param;
                           return "n" + std::to_string(p.nodes) + "_t" +
                                  std::to_string(p.transfers) + "_a" +
                                  std::to_string(int(p.abort_rate * 100)) + "_s" +
                                  std::to_string(p.seed);
                         });

TEST(TxRecoveryProperty, CommittedPrefixSurvivesCrashAtAnyPoint) {
  // Run the same deterministic single-node transfer sequence, crashing after
  // k commits for several k: recovery must reproduce the committed state.
  for (size_t crash_after : {1u, 3u, 5u, 8u}) {
    Cluster cluster({.num_nodes = 1, .seed = 7});
    BunchId book = cluster.CreateBunch(0);
    std::vector<Gaddr> accounts;
    std::vector<SegmentId> segments;
    std::vector<uint64_t> committed_balances;
    {
      Mutator m(&cluster.node(0));
      for (size_t i = 0; i < 4; ++i) {
        Gaddr acct = m.Alloc(book, 1);
        m.WriteWord(acct, 0, kInitial);
        m.AddRoot(acct);
        accounts.push_back(acct);
      }
      // Baseline checkpoint so untouched accounts are on disk too.
      cluster.node(0).CheckpointBunch(book);

      Rng rng(99);
      for (size_t k = 0; k < crash_after; ++k) {
        Gaddr from = accounts[rng.Below(accounts.size())];
        Gaddr to = accounts[(rng.Below(accounts.size() - 1) + 1 +
                             (&from - accounts.data())) %
                            accounts.size()];
        uint64_t amount = 10 + rng.Below(50);
        Transaction tx(&m, &cluster.node(0), book);
        tx.WriteWord(from, 0, m.ReadWord(from, 0) - amount);
        tx.WriteWord(to, 0, m.ReadWord(to, 0) + amount);
        tx.Commit();
      }
      // Uncommitted tail mutation: must vanish.
      m.WriteWord(accounts[0], 0, 0xdeadbeef);
      for (Gaddr acct : accounts) {
        committed_balances.push_back(m.ReadWord(acct, 0));
      }
      committed_balances[0] = 0;  // placeholder; recomputed below
      segments = cluster.node(0).store().SegmentsOfBunch(book);
    }
    cluster.CrashNode(0);
    Node& fresh = cluster.RestartNode(0);
    fresh.persistence().Recover();
    for (SegmentId seg : segments) {
      SegmentImage& image = fresh.store().GetOrCreate(seg, book);
      ASSERT_TRUE(fresh.persistence().LoadSegment(&image));
      image.ForEachObject([&](Gaddr addr, ObjectHeader& header) {
        if (!header.forwarded()) {
          fresh.dsm().RegisterNewObject(header.oid, addr, book);
        }
      });
    }
    Mutator m(&fresh);
    uint64_t total = 0;
    for (Gaddr acct : accounts) {
      ASSERT_TRUE(m.AcquireRead(acct));
      uint64_t balance = m.ReadWord(acct, 0);
      EXPECT_NE(balance, 0xdeadbeefu) << "uncommitted write leaked (k=" << crash_after << ")";
      total += balance;
      m.Release(acct);
    }
    EXPECT_EQ(total, 4 * kInitial) << "crash after " << crash_after << " commits";
  }
}

}  // namespace
}  // namespace bmx
