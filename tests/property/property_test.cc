// Property-based sweeps (TEST_P) over the collector's two fundamental
// properties:
//
//   * SOUNDNESS — no live object is ever reclaimed: after any sequence of
//     collections/reclamations, everything reachable from roots is intact;
//   * COMPLETENESS — all garbage is eventually reclaimed: after the graph is
//     cut, enough collection rounds reduce live bytes to the live set.
//
// Plus structural invariants: every inter-bunch stub has a matching scion,
// forwarding never cycles, and object maps never overlap.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

// --- Soundness over random graphs, single node, repeated GC+reclaim. ---

struct GraphParams {
  size_t objects;
  size_t out_degree;
  uint64_t seed;
};

class RandomGraphTest : public ::testing::TestWithParam<GraphParams> {};

TEST_P(RandomGraphTest, EveryReachableObjectSurvivesRepeatedCollection) {
  const GraphParams& p = GetParam();
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  Rng rng(p.seed);
  BunchId bunch = cluster.CreateBunch(0);

  auto objects = builder.BuildRandomGraph(bunch, p.objects, p.out_degree, &rng);
  // Tag every object so payload corruption is detectable.
  for (size_t i = 0; i < objects.size(); ++i) {
    m.WriteWord(objects[i], p.out_degree, 7000 + i);
  }
  m.AddRoot(objects[0]);
  // Extra garbage mixed in.
  builder.BuildList(bunch, 40);

  for (int round = 0; round < 4; ++round) {
    cluster.node(0).gc().CollectBunch(bunch);
    cluster.node(0).gc().ReclaimFromSpaces(bunch);
    cluster.Pump();
    ASSERT_TRUE(cluster.node(0).gc().ReclaimQuiescent());
  }
  EXPECT_GE(cluster.node(0).gc().stats().objects_reclaimed, 40u);

  // Walk the spine; every object answers with its tag.
  Gaddr cur = cluster.node(0).dsm().ResolveAddr(objects[0]);
  for (size_t i = 0; i < p.objects; ++i) {
    ASSERT_TRUE(m.AcquireRead(cur)) << "object " << i;
    EXPECT_EQ(m.ReadWord(cur, p.out_degree), 7000 + i);
    Gaddr next = m.ReadRef(cur, 0);
    m.Release(cur);
    cur = next;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomGraphTest,
                         ::testing::Values(GraphParams{10, 2, 11}, GraphParams{30, 2, 12},
                                           GraphParams{30, 4, 13}, GraphParams{60, 3, 14},
                                           GraphParams{100, 2, 15}, GraphParams{100, 5, 16},
                                           GraphParams{200, 3, 17}),
                         [](const ::testing::TestParamInfo<GraphParams>& info) {
                           return "o" + std::to_string(info.param.objects) + "_d" +
                                  std::to_string(info.param.out_degree) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// --- Completeness: cutting the graph eventually reclaims everything. ---

class CompletenessTest : public ::testing::TestWithParam<GraphParams> {};

TEST_P(CompletenessTest, CutGarbageIsFullyReclaimed) {
  const GraphParams& p = GetParam();
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  Rng rng(p.seed);
  BunchId bunch = cluster.CreateBunch(0);

  auto objects = builder.BuildRandomGraph(bunch, p.objects, p.out_degree, &rng);
  size_t root = m.AddRoot(objects[0]);
  cluster.node(0).gc().CollectBunch(bunch);
  size_t live_before = cluster.node(0).gc().LiveBytesOf(bunch);
  EXPECT_GT(live_before, 0u);

  // Cut everything.
  m.ClearRoot(root);
  cluster.node(0).gc().CollectBunch(bunch);
  EXPECT_EQ(cluster.node(0).gc().LiveBytesOf(bunch), 0u);
  EXPECT_GE(cluster.node(0).gc().stats().objects_reclaimed, p.objects);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompletenessTest,
                         ::testing::Values(GraphParams{20, 2, 21}, GraphParams{50, 3, 22},
                                           GraphParams{120, 4, 23}),
                         [](const ::testing::TestParamInfo<GraphParams>& info) {
                           return "o" + std::to_string(info.param.objects) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// --- Distributed completeness with message loss on GC traffic. ---

struct LossParams {
  double loss;
  uint64_t seed;
};

class LossyCascadeTest : public ::testing::TestWithParam<LossParams> {};

TEST_P(LossyCascadeTest, DeathCascadeCompletesDespiteLoss) {
  const LossParams& p = GetParam();
  Cluster cluster({.num_nodes = 2, .seed = p.seed});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(1);

  Gaddr target = m1.Alloc(b2, 1);
  Gaddr src = m0.Alloc(b1, 2);
  m0.AddRoot(src);
  m0.WriteRef(src, 0, target);
  cluster.Pump();
  m0.WriteRef(src, 0, kNullAddr);

  cluster.network().set_loss_rate(p.loss);
  // Idempotent full-state tables mean enough rounds always converge.
  bool reclaimed = false;
  for (int round = 0; round < 40 && !reclaimed; ++round) {
    cluster.node(0).gc().CollectBunch(b1);
    cluster.Pump();
    cluster.node(1).gc().CollectBunch(b2);
    cluster.Pump();
    reclaimed = cluster.node(1).gc().stats().objects_reclaimed > 0;
  }
  EXPECT_TRUE(reclaimed) << "cascade never completed at loss " << p.loss;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LossyCascadeTest,
                         ::testing::Values(LossParams{0.0, 31}, LossParams{0.1, 32},
                                           LossParams{0.3, 33}, LossParams{0.5, 34},
                                           LossParams{0.7, 35}),
                         [](const ::testing::TestParamInfo<LossParams>& info) {
                           return "loss" + std::to_string(int(info.param.loss * 100)) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// --- Structural invariants under random multi-bunch workloads. ---

class InvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvariantTest, StubsScionsAndMapsStayConsistent) {
  Cluster cluster({.num_nodes = 2, .seed = GetParam()});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  Rng rng(GetParam());
  std::vector<BunchId> bunches = {cluster.CreateBunch(0), cluster.CreateBunch(0),
                                  cluster.CreateBunch(1)};

  std::vector<Gaddr> all;
  for (BunchId b : bunches) {
    Mutator& owner = (cluster.directory().BunchCreator(b) == 0) ? m0 : m1;
    for (int i = 0; i < 6; ++i) {
      Gaddr obj = owner.Alloc(b, 3);
      owner.AddRoot(obj);
      all.push_back(obj);
    }
  }
  cluster.Pump();
  // Random cross-bunch writes from the owning side.
  for (int i = 0; i < 60; ++i) {
    Gaddr src = all[rng.Below(all.size())];
    Gaddr dst = all[rng.Below(all.size())];
    NodeId owner_node = cluster.directory().BunchCreator(
        cluster.directory().BunchOfSegment(SegmentOf(src)));
    Mutator& m = owner_node == 0 ? m0 : m1;
    Node& node = cluster.node(owner_node);
    Gaddr local = node.dsm().ResolveAddr(src);
    if (!node.store().HasObjectAt(local)) {
      continue;
    }
    m.WriteRef(src, rng.Below(2), dst);
    cluster.Pump();
  }
  for (BunchId b : bunches) {
    cluster.node(0).gc().CollectBunch(b);
    cluster.Pump();
    cluster.node(1).gc().CollectBunch(b);
    cluster.Pump();
  }

  // Invariant: every surviving inter-bunch stub has a matching scion at its
  // recorded scion node.
  for (NodeId n = 0; n < 2; ++n) {
    for (BunchId b : bunches) {
      for (const InterStub& stub : cluster.node(n).gc().TablesOf(b).inter_stubs) {
        bool found = false;
        auto tables = cluster.node(stub.scion_node).gc().TablesOf(stub.target_bunch);
        for (const InterScion& scion : tables.inter_scions) {
          if (scion.stub_id == stub.id && scion.src_node == n) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "stub " << stub.id << " at node " << n << " has no scion";
      }
    }
  }

  // Invariant: forwarding chains terminate (ResolveAddr bounds internally;
  // just exercise it on every address we ever saw).
  for (Gaddr addr : all) {
    cluster.node(0).dsm().ResolveAddr(addr);
    cluster.node(1).dsm().ResolveAddr(addr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest, ::testing::Values(41, 42, 43, 44, 45, 46));

}  // namespace
}  // namespace bmx
