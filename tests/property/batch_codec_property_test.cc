// Property sweeps over the batch-frame codec (src/net/batch.h): encode ∘
// decode is the identity on random entry mixes; every strict prefix of a
// valid image is rejected; every single-byte corruption is rejected; and the
// documented edge cases (empty frames, bound-sized frames, bad magic /
// version / count / region length) all fail cleanly with *out untouched.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/net/batch.h"

namespace bmx {
namespace {

// A random but well-formed entry list: kinds and categories in range, body
// sizes spanning empty through the batchable-size ballpark.
std::vector<BatchWireEntry> RandomEntries(Rng* rng, size_t count, size_t max_body) {
  std::vector<BatchWireEntry> entries(count);
  for (BatchWireEntry& e : entries) {
    e.kind = static_cast<uint8_t>(rng->Below(static_cast<uint64_t>(MsgKind::kMaxKind)));
    e.category = static_cast<uint8_t>(rng->Below(3));
    e.body.resize(rng->Below(max_body + 1));
    for (uint8_t& b : e.body) {
      b = static_cast<uint8_t>(rng->Next());
    }
  }
  return entries;
}

bool SameEntries(const std::vector<BatchWireEntry>& a, const std::vector<BatchWireEntry>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].category != b[i].category || a[i].body != b[i].body) {
      return false;
    }
  }
  return true;
}

struct CodecParams {
  size_t max_entries;
  size_t max_body;
  uint64_t seed;
};

class BatchCodecTest : public ::testing::TestWithParam<CodecParams> {};

TEST_P(BatchCodecTest, RoundTripsRandomMixes) {
  const CodecParams& p = GetParam();
  Rng rng(p.seed);
  for (int trial = 0; trial < 64; ++trial) {
    size_t count = 1 + rng.Below(p.max_entries);
    std::vector<BatchWireEntry> in = RandomEntries(&rng, count, p.max_body);
    std::vector<uint8_t> image = EncodeBatchFrame(in);
    std::vector<size_t> body_sizes;
    for (const BatchWireEntry& e : in) {
      body_sizes.push_back(e.body.size());
    }
    ASSERT_EQ(image.size(), BatchFrameImageSize(body_sizes));
    std::vector<BatchWireEntry> out;
    std::string error;
    ASSERT_TRUE(DecodeBatchFrame(image.data(), image.size(), &out, &error)) << error;
    EXPECT_TRUE(SameEntries(in, out));
  }
}

TEST_P(BatchCodecTest, EveryTruncationIsRejected) {
  const CodecParams& p = GetParam();
  Rng rng(p.seed ^ 0x5eedull);
  std::vector<BatchWireEntry> in = RandomEntries(&rng, 1 + rng.Below(p.max_entries), p.max_body);
  std::vector<uint8_t> image = EncodeBatchFrame(in);
  for (size_t len = 0; len < image.size(); ++len) {
    std::vector<BatchWireEntry> out{{42, 1, {}}};  // sentinel: must stay untouched
    std::string error;
    EXPECT_FALSE(DecodeBatchFrame(image.data(), len, &out, &error))
        << "prefix of " << len << " bytes decoded";
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, 42);
  }
}

TEST_P(BatchCodecTest, EverySingleByteCorruptionIsRejected) {
  const CodecParams& p = GetParam();
  Rng rng(p.seed ^ 0xc0ull);
  std::vector<BatchWireEntry> in = RandomEntries(&rng, 1 + rng.Below(p.max_entries), p.max_body);
  std::vector<uint8_t> image = EncodeBatchFrame(in);
  for (size_t pos = 0; pos < image.size(); ++pos) {
    std::vector<uint8_t> corrupt = image;
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.Below(255));
    std::vector<BatchWireEntry> out;
    std::string error;
    EXPECT_FALSE(DecodeBatchFrame(corrupt.data(), corrupt.size(), &out, &error))
        << "flip at byte " << pos << " decoded";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchCodecTest,
                         ::testing::Values(CodecParams{4, 16, 21}, CodecParams{16, 64, 22},
                                           CodecParams{64, 8, 23}, CodecParams{2, 0, 24},
                                           CodecParams{256, 4, 25}),
                         [](const ::testing::TestParamInfo<CodecParams>& info) {
                           return "e" + std::to_string(info.param.max_entries) + "_b" +
                                  std::to_string(info.param.max_body) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// --- Edge cases ---

TEST(BatchCodecEdgeTest, EmptyImageAndEmptyFrameRejected) {
  std::vector<BatchWireEntry> out;
  std::string error;
  EXPECT_FALSE(DecodeBatchFrame(nullptr, 0, &out, &error));
  // A syntactically well-formed frame with count = 0 is invalid by contract;
  // forge one by patching a 1-entry frame's count and region length, then
  // recomputing nothing — the checksum check fires first, which is fine: the
  // contract is rejection, whatever the reason string.
  std::vector<BatchWireEntry> one{{1, 0, {0xaa}}};
  std::vector<uint8_t> image = EncodeBatchFrame(one);
  image[5] = 0;
  image[6] = 0;
  EXPECT_FALSE(DecodeBatchFrame(image.data(), image.size(), &out, &error));
}

TEST(BatchCodecEdgeTest, MinimalFrameRoundTrips) {
  std::vector<BatchWireEntry> in{{0, 0, {}}};
  std::vector<uint8_t> image = EncodeBatchFrame(in);
  EXPECT_EQ(image.size(),
            kBatchFrameHeaderBytes + kBatchEntryHeaderBytes + kBatchFrameTrailerBytes);
  std::vector<BatchWireEntry> out;
  std::string error;
  ASSERT_TRUE(DecodeBatchFrame(image.data(), image.size(), &out, &error)) << error;
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].body.empty());
}

TEST(BatchCodecEdgeTest, MaxEntryCountRoundTrips) {
  Rng rng(31);
  std::vector<BatchWireEntry> in = RandomEntries(&rng, kMaxBatchEntries, 8);
  std::vector<uint8_t> image = EncodeBatchFrame(in);
  ASSERT_LE(image.size(), kMaxBatchFrameBytes);
  std::vector<BatchWireEntry> out;
  std::string error;
  ASSERT_TRUE(DecodeBatchFrame(image.data(), image.size(), &out, &error)) << error;
  EXPECT_TRUE(SameEntries(in, out));
}

TEST(BatchCodecEdgeTest, BadMagicVersionAndRegionLengthRejected) {
  std::vector<BatchWireEntry> in{{2, 1, {1, 2, 3}}};
  std::vector<uint8_t> image = EncodeBatchFrame(in);
  std::vector<BatchWireEntry> out;
  std::string error;

  std::vector<uint8_t> bad_magic = image;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeBatchFrame(bad_magic.data(), bad_magic.size(), &out, &error));

  std::vector<uint8_t> bad_version = image;
  bad_version[4] = kBatchFrameVersion + 1;
  EXPECT_FALSE(DecodeBatchFrame(bad_version.data(), bad_version.size(), &out, &error));

  std::vector<uint8_t> bad_region = image;
  bad_region[7] ^= 0xff;
  EXPECT_FALSE(DecodeBatchFrame(bad_region.data(), bad_region.size(), &out, &error));

  // Oversized images are rejected before anything is parsed.
  std::vector<uint8_t> oversized(kMaxBatchFrameBytes + 1, 0);
  std::memcpy(oversized.data(), image.data(), image.size());
  EXPECT_FALSE(DecodeBatchFrame(oversized.data(), oversized.size(), &out, &error));
}

}  // namespace
}  // namespace bmx
