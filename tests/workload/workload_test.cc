// Workload generator tests: the builders must produce exactly the shapes the
// benchmarks and integration tests assume.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = 1});
    mutator_ = std::make_unique<Mutator>(&cluster_->node(0));
    builder_ = std::make_unique<GraphBuilder>(cluster_.get(), mutator_.get());
    bunch_ = cluster_->CreateBunch(0);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Mutator> mutator_;
  std::unique_ptr<GraphBuilder> builder_;
  BunchId bunch_ = kInvalidBunch;
};

TEST_F(WorkloadTest, ListHasRequestedLengthAndPayloads) {
  Gaddr head = builder_->BuildList(bunch_, 17);
  size_t len = 0;
  Gaddr cur = head;
  while (cur != kNullAddr) {
    EXPECT_EQ(mutator_->ReadWord(cur, 1), len + 1);
    cur = mutator_->ReadRef(cur, 0);
    len++;
  }
  EXPECT_EQ(len, 17u);
}

TEST_F(WorkloadTest, EmptyListIsNull) { EXPECT_EQ(builder_->BuildList(bunch_, 0), kNullAddr); }

TEST_F(WorkloadTest, TreeHasFullShape) {
  Gaddr root = builder_->BuildTree(bunch_, 3);
  // Complete binary tree of depth 3: 15 nodes; count by walking.
  std::vector<Gaddr> stack{root};
  size_t count = 0;
  while (!stack.empty()) {
    Gaddr node = stack.back();
    stack.pop_back();
    count++;
    for (size_t child = 0; child < 2; ++child) {
      Gaddr c = mutator_->ReadRef(node, child);
      if (c != kNullAddr) {
        stack.push_back(c);
      }
    }
  }
  EXPECT_EQ(count, 15u);
}

TEST_F(WorkloadTest, RandomGraphSpineReachesAll) {
  Rng rng(5);
  auto objects = builder_->BuildRandomGraph(bunch_, 40, 3, &rng);
  ASSERT_EQ(objects.size(), 40u);
  // Rooting the first object keeps the whole population alive.
  mutator_->AddRoot(objects[0]);
  cluster_->node(0).gc().CollectBunch(bunch_);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_reclaimed, 0u);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_copied, 40u);
}

TEST_F(WorkloadTest, CrossBunchCycleClosesAndCrossesBunches) {
  BunchId b2 = cluster_->CreateBunch(0);
  BunchId b3 = cluster_->CreateBunch(0);
  auto ring = builder_->BuildCrossBunchCycle({bunch_, b2, b3});
  ASSERT_EQ(ring.size(), 3u);
  Gaddr cur = ring[0];
  std::set<BunchId> seen;
  for (int i = 0; i < 3; ++i) {
    seen.insert(cluster_->directory().BunchOfSegment(SegmentOf(cur)));
    cur = mutator_->ReadRef(cur, 0);
  }
  EXPECT_TRUE(mutator_->SameObject(cur, ring[0]));  // closed
  EXPECT_EQ(seen.size(), 3u);                       // spans all three bunches
}

TEST_F(WorkloadTest, ChurnOnlyTouchesScratchSlot) {
  Gaddr head = builder_->BuildList(bunch_, 10, /*size_slots=*/3);
  std::vector<Gaddr> objects;
  Gaddr cur = head;
  while (cur != kNullAddr) {
    objects.push_back(cur);
    cur = mutator_->ReadRef(cur, 0);
  }
  Rng rng(9);
  builder_->Churn(objects, 100, &rng);
  // Spine intact after churn.
  size_t len = 0;
  cur = head;
  while (cur != kNullAddr) {
    cur = mutator_->ReadRef(cur, 0);
    len++;
  }
  EXPECT_EQ(len, 10u);
}

}  // namespace
}  // namespace bmx
