// The `soak` ctest label: long-haul N=16 soak runs under all three oracles
// (invariant, consistency, liveness), with and without the batched transport.
// CI's scale-sweep job runs this label under ASan with a gray profile stacked
// on top (see .github/workflows/ci.yml); the tier-1 smoke half lives in
// soak_test.cc.

#include <gtest/gtest.h>

#include <string>

#include "src/runtime/explorer.h"
#include "src/workload/soak.h"

namespace bmx {
namespace {

ExplorationResult RunSoak(const SoakOptions& opts, uint64_t root_seed) {
  ExplorerOptions eo;
  eo.root_seed = root_seed;
  eo.num_walks = 1;
  eo.schedule = ScheduleKind::kFifo;
  eo.oracle_stride = 128;
  eo.check_consistency = true;
  eo.check_liveness = true;
  Explorer explorer(eo);
  return explorer.Explore(SoakScenario(opts));
}

std::string FirstViolation(const ExplorationResult& r) {
  return r.violations.empty() ? std::string() : r.violations[0];
}

TEST(SoakSlow, SixteenNodeSoakCleanUnbatched) {
  SoakOptions opts;  // defaults: 16 nodes, random-regular, 4000 ops
  ExplorationResult result = RunSoak(opts, 1);
  EXPECT_FALSE(result.violation_found) << FirstViolation(result);
}

TEST(SoakSlow, SixteenNodeSoakCleanWithBatchedTransport) {
  SoakOptions opts;
  opts.batch.enabled = true;
  ExplorationResult result = RunSoak(opts, 1);
  EXPECT_FALSE(result.violation_found) << FirstViolation(result);
}

TEST(SoakSlow, SixteenNodeStarSoakClean) {
  SoakOptions opts;
  opts.topology = TopologyKind::kStar;
  opts.ops = 2000;
  ExplorationResult result = RunSoak(opts, 2);
  EXPECT_FALSE(result.violation_found) << FirstViolation(result);
}

TEST(SoakSlow, ThirtyTwoNodeRingSoakClean) {
  SoakOptions opts;
  opts.num_nodes = 32;
  opts.topology = TopologyKind::kRing;
  opts.ops = 2000;
  ExplorationResult result = RunSoak(opts, 3);
  EXPECT_FALSE(result.violation_found) << FirstViolation(result);
}

}  // namespace
}  // namespace bmx
