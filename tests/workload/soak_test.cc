// The soak/stress layer (src/workload/soak.h).
//
// The tier-1 half: a bounded smoke — a small soak runs clean under all three
// oracles and is deterministic from its seed.  The long-haul N=16 runs live
// in soak_slow_test.cc under the `soak` ctest label.

#include <gtest/gtest.h>

#include <string>

#include "src/runtime/explorer.h"
#include "src/workload/soak.h"

namespace bmx {
namespace {

ExplorationResult RunSoak(const SoakOptions& opts, uint64_t root_seed) {
  ExplorerOptions eo;
  eo.root_seed = root_seed;
  eo.num_walks = 1;
  eo.schedule = ScheduleKind::kFifo;
  eo.oracle_stride = 128;
  eo.check_consistency = true;
  eo.check_liveness = true;
  Explorer explorer(eo);
  return explorer.Explore(SoakScenario(opts));
}

std::string FirstViolation(const ExplorationResult& r) {
  return r.violations.empty() ? std::string() : r.violations[0];
}

TEST(SoakSmoke, SmallSoakCleanUnderAllOracles) {
  SoakOptions opts;
  opts.num_nodes = 4;
  opts.topology = TopologyKind::kRing;
  opts.ops = 200;
  ExplorationResult result = RunSoak(opts, 3);
  EXPECT_FALSE(result.violation_found) << FirstViolation(result);
  EXPECT_GT(result.total_deliveries, 0u);
}

TEST(SoakSmoke, DeterministicFromSeed) {
  SoakOptions opts;
  opts.num_nodes = 4;
  opts.topology = TopologyKind::kStar;
  opts.ops = 150;
  ExplorationResult a = RunSoak(opts, 9);
  ExplorationResult b = RunSoak(opts, 9);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.total_deliveries, b.total_deliveries);
  // A different seed reshuffles the op plan; the traffic shape moves with it.
  ExplorationResult c = RunSoak(opts, 10);
  EXPECT_NE(c.fingerprint, a.fingerprint);
}

TEST(SoakSmoke, ScenarioNameCarriesTopologyAndScale) {
  SoakOptions opts;
  opts.num_nodes = 16;
  opts.topology = TopologyKind::kRandomRegular;
  EXPECT_EQ(SoakScenario(opts).name, "soak-random-regular@16");
}

TEST(SoakSmoke, EveryTopologyRunsClean) {
  for (TopologyKind kind : {TopologyKind::kFull, TopologyKind::kRing, TopologyKind::kStar,
                            TopologyKind::kRandomRegular}) {
    SoakOptions opts;
    opts.num_nodes = 5;
    opts.topology = kind;
    opts.ops = 120;
    ExplorationResult result = RunSoak(opts, 4);
    EXPECT_FALSE(result.violation_found)
        << TopologyKindName(kind) << ": " << FirstViolation(result);
  }
}

}  // namespace
}  // namespace bmx
