// Figure 2 of the paper: zooming into bunch B1 on nodes N1 and N2.
//
// O1, O2, O3 are cached on both nodes; N2 owns O2, N1 owns O1 and O3; O1 and
// O3 both reference O2.  "The BGC on N2 only copies locally-owned live
// objects, that is, O2.  The update of pointers to O2 is represented by
// dashed arrows.  Node N1 has not yet been informed of O2's new address, and
// the local BGC of B1 has not been executed [there]."

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

class Fig2 : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = 2});
    n1_ = std::make_unique<Mutator>(&cluster_->node(0));  // paper's N1
    n2_ = std::make_unique<Mutator>(&cluster_->node(1));  // paper's N2
    b1_ = cluster_->CreateBunch(0);

    // N1 creates O1 and O3; N2 creates O2.
    o1_ = n1_->Alloc(b1_, 2);
    o3_ = n1_->Alloc(b1_, 2);
    o2_ = n2_->Alloc(b1_, 2);
    ASSERT_TRUE(n2_->AcquireWrite(o2_));
    n2_->WriteWord(o2_, 1, 22);
    n2_->Release(o2_);

    // O1 → O2 and O3 → O2 (created at N1 after faulting O2 in).
    ASSERT_TRUE(n1_->AcquireRead(o2_));
    n1_->Release(o2_);
    n1_->WriteRef(o1_, 0, o2_);
    n1_->WriteRef(o3_, 0, o2_);
    n1_->AddRoot(o1_);
    n1_->AddRoot(o3_);

    // N2 caches O1 and O3 and roots them (they are reachable at N2 too).
    ASSERT_TRUE(n2_->AcquireRead(o1_));
    n2_->Release(o1_);
    ASSERT_TRUE(n2_->AcquireRead(o3_));
    n2_->Release(o3_);
    n2_->AddRoot(o1_);
    n2_->AddRoot(o3_);
    cluster_->Pump();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Mutator> n1_, n2_;
  BunchId b1_ = kInvalidBunch;
  Gaddr o1_ = kNullAddr, o2_ = kNullAddr, o3_ = kNullAddr;
};

TEST_F(Fig2, BgcAtN2CopiesOnlyO2) {
  cluster_->node(1).gc().CollectBunch(b1_);
  const GcStats& stats = cluster_->node(1).gc().stats();
  EXPECT_EQ(stats.objects_copied, 1u);   // O2
  EXPECT_EQ(stats.objects_scanned, 2u);  // O1 and O3, not owned at N2
  EXPECT_EQ(stats.objects_reclaimed, 0u);

  // O2 moved at N2; a forwarding header remains in from-space.
  Gaddr o2_at_n2 = cluster_->node(1).dsm().ResolveAddr(o2_);
  EXPECT_NE(o2_at_n2, o2_);
  EXPECT_TRUE(cluster_->node(1).store().HeaderOf(o2_)->forwarded());

  // Dashed arrows: pointers inside O1 and O3 updated *at N2 only*, without
  // acquiring O1's or O3's write token.
  Gaddr o1_at_n2 = cluster_->node(1).dsm().ResolveAddr(o1_);
  Gaddr o3_at_n2 = cluster_->node(1).dsm().ResolveAddr(o3_);
  EXPECT_EQ(cluster_->node(1).store().ReadSlot(o1_at_n2, 0), o2_at_n2);
  EXPECT_EQ(cluster_->node(1).store().ReadSlot(o3_at_n2, 0), o2_at_n2);
  EXPECT_EQ(cluster_->node(1).dsm().GcTokenAcquires(), 0u);

  // N1 has not been informed: its copies still point at the old address, and
  // its mutator continues to work correctly on them.
  Gaddr o1_at_n1 = cluster_->node(0).dsm().ResolveAddr(o1_);
  EXPECT_EQ(cluster_->node(0).store().ReadSlot(o1_at_n1, 0), o2_);
  EXPECT_EQ(n1_->ReadWord(o2_, 1), 22u);
}

TEST_F(Fig2, FromSpaceNotFullyReusableWhileO1O3Remain) {
  SegmentId from_space = SegmentOf(o2_);
  cluster_->node(1).gc().CollectBunch(b1_);
  // O1 and O3 (live, not owned) remain in N2's from-space copies; the
  // segments stay queued rather than freed.
  auto from_spaces = cluster_->node(1).gc().FromSpacesOf(b1_);
  EXPECT_FALSE(from_spaces.empty());
  EXPECT_TRUE(cluster_->node(1).store().HasSegment(from_space));
}

TEST_F(Fig2, Section45ReclaimFreesTheFromSpace) {
  cluster_->node(1).gc().CollectBunch(b1_);
  // §4.5 walkthrough: N2 informs N1 of O2's new address, asks N1 (the owner)
  // to copy O1 and O3, updates its local references, then frees the segment.
  cluster_->network().ResetStats();
  cluster_->node(1).gc().ReclaimFromSpaces(b1_);
  cluster_->Pump();
  ASSERT_TRUE(cluster_->node(1).gc().ReclaimQuiescent());
  EXPECT_GE(cluster_->network().stats().For(MsgKind::kCopyRequest).sent, 2u);  // O1 and O3
  EXPECT_GE(cluster_->network().stats().For(MsgKind::kAddressChange).sent, 1u);

  for (SegmentId seg : std::vector<SegmentId>{SegmentOf(o1_), SegmentOf(o2_)}) {
    EXPECT_FALSE(cluster_->node(1).store().HasSegment(seg));
  }
  // Everything still reachable and correct on both nodes.
  Gaddr o1_now = cluster_->node(1).dsm().ResolveAddr(o1_);
  ASSERT_TRUE(cluster_->node(1).store().HasObjectAt(o1_now));
  EXPECT_EQ(n1_->ReadWord(o2_, 1), 22u);
}

// The figure's underlying mechanism — one write token migrating node to node,
// each incarnation writing through it — generalized to an N-node walk.  At
// every scale the final owner is unique, holds the last round's value, and
// every previous incarnation's token is gone.
class Fig2Scale : public ::testing::TestWithParam<size_t> {};

TEST_P(Fig2Scale, TokenWalksAllNodesAndEndsUnique) {
  size_t n = GetParam();
  Cluster cluster({.num_nodes = n});
  std::vector<std::unique_ptr<Mutator>> muts;
  for (NodeId id = 0; id < n; ++id) {
    muts.push_back(std::make_unique<Mutator>(&cluster.node(id)));
  }
  BunchId b = cluster.CreateBunch(0);
  Gaddr obj = muts[0]->Alloc(b, 2);
  muts[0]->AddRoot(obj);
  cluster.Pump();
  for (uint64_t round = 1; round <= n; ++round) {
    Mutator& m = *muts[round % n];
    ASSERT_TRUE(m.AcquireWrite(obj)) << "round " << round;
    m.WriteWord(obj, 1, round);
    m.Release(obj);
    cluster.Pump();
  }
  // Round N wrapped back to node 0: it owns the token and sees the last
  // stamp; every other node's write token is gone.
  Oid oid = cluster.node(0).store().HeaderOf(cluster.node(0).dsm().ResolveAddr(obj))->oid;
  EXPECT_TRUE(cluster.node(0).dsm().IsLocallyOwned(oid));
  ASSERT_TRUE(muts[0]->AcquireRead(obj));
  EXPECT_EQ(muts[0]->ReadWord(obj, 1), n);
  muts[0]->Release(obj);
  for (NodeId id = 1; id < n; ++id) {
    EXPECT_FALSE(cluster.node(id).dsm().IsLocallyOwned(oid)) << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Scale, Fig2Scale, ::testing::Values(4, 8, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bmx
