// Figure 4 of the paper: "O1 is cached on nodes N1, N2, and N3 and is
// reachable from a single mutator in N1."  N2 is the owner; N3 is a previous
// owner holding inter-bunch stubs, kept alive by the intra-bunch SSP
// (stub at N2 → scion at N3); ownerPtr runs N3 → N2.
//
// §6.2 walks through the deletion: the BGC at N3 omits the exiting ownerPtr
// for O1 (reachable only via the intra-bunch scion), breaking the cycle
//   O1@N2 → intra SSP → O1@N3 → ownerPtr → O1@N2;
// then N1 drops its reference and the whole chain unwinds.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

class Fig4 : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = 3});
    n1_ = std::make_unique<Mutator>(&cluster_->node(0));  // paper's N1
    n2_ = std::make_unique<Mutator>(&cluster_->node(1));  // paper's N2
    n3_ = std::make_unique<Mutator>(&cluster_->node(2));  // paper's N3
    b_ = cluster_->CreateBunch(2);
    other_ = cluster_->CreateBunch(2);

    // N3 creates O1 and gives it an inter-bunch reference (so N3 holds an
    // inter-bunch stub for O1 — the reason its replica must stay alive).
    o1_ = n3_->Alloc(b_, 2);
    Gaddr out = n3_->Alloc(other_, 1);
    n3_->AddRoot(out);
    n3_->WriteRef(o1_, 0, out);

    // Ownership moves to N2 (invariant 3: intra stub at N2, scion at N3).
    ASSERT_TRUE(n2_->AcquireWrite(o1_));
    n2_->Release(o1_);

    // N1 caches O1; it holds the single mutator reference in the system.
    ASSERT_TRUE(n1_->AcquireRead(o1_));
    n1_->Release(o1_);
    root_ = n1_->AddRoot(o1_);
    cluster_->Pump();

    oid_ = cluster_->node(0).store().HeaderOf(cluster_->node(0).dsm().ResolveAddr(o1_))->oid;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Mutator> n1_, n2_, n3_;
  BunchId b_ = kInvalidBunch, other_ = kInvalidBunch;
  Gaddr o1_ = kNullAddr;
  size_t root_ = 0;
  Oid oid_ = kNullOid;
};

TEST_F(Fig4, ConfigurationMatchesTheFigure) {
  // O1 cached on all three nodes.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_TRUE(
        cluster_->node(n).store().HasObjectAt(cluster_->node(n).dsm().ResolveAddr(o1_)));
  }
  // N2 owns; N3's ownerPtr exits toward N2; intra SSP N2 (stub) → N3 (scion).
  EXPECT_TRUE(cluster_->node(1).dsm().IsLocallyOwned(oid_));
  EXPECT_EQ(cluster_->node(2).dsm().OwnerHint(oid_), 1u);
  auto n2_tables = cluster_->node(1).gc().TablesOf(b_);
  ASSERT_EQ(n2_tables.intra_stubs.size(), 1u);
  EXPECT_EQ(n2_tables.intra_stubs[0].scion_node, 2u);
  auto n3_tables = cluster_->node(2).gc().TablesOf(b_);
  ASSERT_EQ(n3_tables.intra_scions.size(), 1u);
  EXPECT_EQ(n3_tables.intra_scions[0].stub_node, 1u);
  ASSERT_EQ(n3_tables.inter_stubs.size(), 1u);
}

TEST_F(Fig4, BgcAtN3OmitsExitingOwnerPtrBreakingTheCycle) {
  // Before: N2's entering set contains both N1 and N3.
  ASSERT_TRUE(cluster_->node(1).dsm().EnteringFor(b_).count(oid_) > 0);
  ASSERT_TRUE(cluster_->node(1).dsm().EnteringFor(b_).at(oid_).count(2) > 0);

  // "the new set of exiting ownerPtrs will not include the one from N3 to
  // N2, because O1 is not reachable from the mutator at N3 ... the scion
  // cleaner at N2 deletes the entering ownerPtr for N3."
  cluster_->node(2).gc().CollectBunch(b_);
  cluster_->Pump();
  // O1 survived at N3 (intra scion) but contributed no exiting ownerPtr.
  EXPECT_EQ(cluster_->node(2).gc().stats().objects_reclaimed, 0u);
  const auto& entering = cluster_->node(1).dsm().EnteringFor(b_);
  ASSERT_TRUE(entering.count(oid_) > 0);
  EXPECT_FALSE(entering.at(oid_).count(2) > 0);
  // "The BGC running on N2 considers O1 alive because of the entering
  // ownerPtr, which originates at N1."
  EXPECT_TRUE(entering.at(oid_).count(0) > 0);
  cluster_->node(1).gc().CollectBunch(b_);
  EXPECT_EQ(cluster_->node(1).gc().stats().objects_reclaimed, 0u);
}

TEST_F(Fig4, FullDeletionCascade) {
  // Step 0 of §6.2: N3's BGC drops its exiting ownerPtr (weak-only replica).
  cluster_->node(2).gc().CollectBunch(b_);
  cluster_->Pump();

  // "imagine that O1 becomes unreachable at N1 ... a BGC is executed on N1.
  // Object O1 can be reclaimed at N1, and the ownerPtr from N1 to N2 will
  // not be part of the new set."
  n1_->ClearRoot(root_);
  cluster_->node(0).gc().CollectBunch(b_);
  cluster_->Pump();
  EXPECT_GE(cluster_->node(0).gc().stats().objects_reclaimed, 1u);
  EXPECT_EQ(cluster_->node(1).dsm().EnteringFor(b_).count(oid_), 0u);

  // "during the next execution of B's BGC at N2, object O1 is no longer
  // reachable, which in turn will drop the intra-bunch stub pointing to O1
  // at N3 from the new stub table."
  cluster_->node(1).gc().CollectBunch(b_);
  cluster_->Pump();
  EXPECT_GE(cluster_->node(1).gc().stats().objects_reclaimed, 1u);
  EXPECT_TRUE(cluster_->node(1).gc().TablesOf(b_).intra_stubs.empty());
  EXPECT_TRUE(cluster_->node(2).gc().TablesOf(b_).intra_scions.empty());

  // "when N3 ... runs its own BGC on B, object O1 will no longer be
  // reachable on N3 either, and will also be garbage collected there."
  cluster_->node(2).gc().CollectBunch(b_);
  EXPECT_GE(cluster_->node(2).gc().stats().objects_reclaimed, 1u);
  EXPECT_TRUE(cluster_->node(2).gc().TablesOf(b_).inter_stubs.empty());
}

// Reclaim-vs-replica generalized to N nodes: the head of a two-object chain
// is replicated on every non-owner, the owner unlinks the tail and collects.
// The unlinked tail is reclaimed while every replica of the head survives
// untouched — the owner's BGC must not interfere with any of the N-1 read
// tokens.
class Fig4Scale : public ::testing::TestWithParam<size_t> {};

TEST_P(Fig4Scale, ReclaimDoesNotDisturbAnyReplica) {
  size_t n = GetParam();
  Cluster cluster({.num_nodes = n});
  std::vector<std::unique_ptr<Mutator>> muts;
  for (NodeId id = 0; id < n; ++id) {
    muts.push_back(std::make_unique<Mutator>(&cluster.node(id)));
  }
  BunchId b = cluster.CreateBunch(0);
  Gaddr head = muts[0]->Alloc(b, 2);
  muts[0]->AddRoot(head);
  muts[0]->WriteWord(head, 1, 11);
  Gaddr tail = muts[0]->Alloc(b, 2);
  muts[0]->WriteRef(head, 0, tail);
  cluster.Pump();
  for (NodeId id = 1; id < n; ++id) {
    ASSERT_TRUE(muts[id]->AcquireRead(head)) << "node " << id;
    muts[id]->Release(head);
  }
  cluster.Pump();
  ASSERT_TRUE(muts[0]->AcquireWrite(head));
  muts[0]->WriteRef(head, 0, kNullAddr);
  muts[0]->Release(head);
  cluster.Pump();
  cluster.node(0).gc().CollectBunch(b);
  cluster.Pump();
  EXPECT_GE(cluster.node(0).gc().stats().objects_reclaimed, 1u);
  // The head upgrade invalidated each replica once; the collection itself
  // added nothing, and every reader still resolves and reads the head.
  for (NodeId id = 1; id < n; ++id) {
    EXPECT_EQ(cluster.node(id).dsm().stats().read_copies_invalidated, 1u) << "node " << id;
    Gaddr cur = cluster.node(id).dsm().ResolveAddr(head);
    ASSERT_TRUE(muts[id]->AcquireRead(cur)) << "node " << id;
    EXPECT_EQ(muts[id]->ReadWord(cur, 1), 11u);
    muts[id]->Release(cur);
  }
}

INSTANTIATE_TEST_SUITE_P(Scale, Fig4Scale, ::testing::Values(4, 8, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bmx
