// Figure 3 of the paper: the operations executed to satisfy the §5
// invariants before a write-token acquire completes.  O1 (owned by N1)
// references O2; N2 requests O1's write token.  Cases:
//   (a) nothing copied anywhere → no special operation;
//   (b) O1 and/or O2 copied at N1 → new locations piggybacked on the grant
//       and processed at N2 before the application resumes;
//   (c) combinations of (a)/(b);
//   (d) O2 copied at N2 before the acquire → on receiving O1, N2 updates the
//       references inside O1 to point into to-space directly;
// plus invariant 2 (forwarding to read-token grantees) and invariant 3
// (intra-bunch SSP creation before the grant completes).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

class Fig3 : public ::testing::Test {
 protected:
  void Build(size_t nodes, CopySetMode mode = CopySetMode::kCentralized) {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = nodes,
                                                        .copyset_mode = mode});
    for (size_t i = 0; i < nodes; ++i) {
      mutators_.push_back(std::make_unique<Mutator>(&cluster_->node(i)));
    }
    b_ = cluster_->CreateBunch(0);
    // N1 (node 0) owns O1 and O2; O1 → O2.
    o1_ = mutators_[0]->Alloc(b_, 2);
    o2_ = mutators_[0]->Alloc(b_, 2);
    mutators_[0]->WriteRef(o1_, 0, o2_);
    mutators_[0]->WriteWord(o2_, 1, 42);
    mutators_[0]->AddRoot(o1_);
  }

  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Mutator>> mutators_;
  BunchId b_ = kInvalidBunch;
  Gaddr o1_ = kNullAddr, o2_ = kNullAddr;
};

TEST_F(Fig3, CaseA_NoCopiesNoSpecialOperation) {
  Build(2);
  cluster_->network().ResetStats();
  ASSERT_TRUE(mutators_[1]->AcquireWrite(o1_));
  mutators_[1]->Release(o1_);
  // The grant carried no address updates.
  EXPECT_EQ(cluster_->node(0).dsm().stats().piggyback_updates_sent, 0u);
}

TEST_F(Fig3, CaseB_NewLocationsPiggybackedOnGrant) {
  Build(2);
  // BGC at N1 copies O1 and O2.
  cluster_->node(0).gc().CollectBunch(b_);
  ASSERT_EQ(cluster_->node(0).gc().stats().objects_copied, 2u);
  Gaddr o1_new = cluster_->node(0).dsm().ResolveAddr(o1_);
  Gaddr o2_new = cluster_->node(0).dsm().ResolveAddr(o2_);

  // N2 acquires O1 by its OLD address; invariant 1 must deliver both new
  // locations with the grant, before the application returns.
  ASSERT_TRUE(mutators_[1]->AcquireWrite(o1_));
  EXPECT_GE(cluster_->node(0).dsm().stats().piggyback_updates_sent, 2u);
  EXPECT_EQ(cluster_->node(1).dsm().ResolveAddr(o1_), o1_new);
  EXPECT_EQ(cluster_->node(1).dsm().ResolveAddr(o2_), o2_new);
  // O1's reference slot is valid at N2: it names an address N2 can resolve.
  Gaddr slot = mutators_[1]->ReadRef(o1_, 0);
  EXPECT_TRUE(mutators_[1]->SameObject(slot, o2_));
  mutators_[1]->Release(o1_);
}

TEST_F(Fig3, CaseD_ReferencesIntoLocalToSpaceRewrittenOnGrant) {
  Build(2);
  // Move O2's ownership to N2, which then copies it with its own BGC.
  ASSERT_TRUE(mutators_[1]->AcquireWrite(o2_));
  mutators_[1]->Release(o2_);
  mutators_[1]->AddRoot(o2_);
  cluster_->node(1).gc().CollectBunch(b_);
  Gaddr o2_at_n2 = cluster_->node(1).dsm().ResolveAddr(o2_);
  ASSERT_NE(o2_at_n2, o2_);

  // N2 now acquires O1 from N1.  N1's copy of O1 still points at O2's old
  // address; on receipt, N2 rewrites the reference to its to-space copy.
  ASSERT_TRUE(mutators_[1]->AcquireWrite(o1_));
  Gaddr o1_at_n2 = cluster_->node(1).dsm().ResolveAddr(o1_);
  EXPECT_EQ(cluster_->node(1).store().ReadSlot(o1_at_n2, 0), o2_at_n2);
  mutators_[1]->Release(o1_);
}

TEST_F(Fig3, Invariant2_NewLocationsForwardedToCopySet) {
  Build(3, CopySetMode::kDistributed);
  // Move O1 and O2 to node 1 (the future collector/owner).
  ASSERT_TRUE(mutators_[1]->AcquireWrite(o1_));
  mutators_[1]->Release(o1_);
  ASSERT_TRUE(mutators_[1]->AcquireWrite(o2_));
  mutators_[1]->Release(o2_);
  mutators_[1]->AddRoot(o1_);

  // Copy-set tree for O2: owner node1 -> reader node0 -> reader node2.
  // (Node 2's request routes to the segment creator, node 0, which holds a
  // read token and grants from its copy in distributed mode.)
  ASSERT_TRUE(mutators_[0]->AcquireRead(o2_));
  mutators_[0]->Release(o2_);
  ASSERT_TRUE(mutators_[2]->AcquireRead(o2_));
  mutators_[2]->Release(o2_);
  Oid o2_oid = cluster_->node(0).store().HeaderOf(cluster_->node(0).dsm().ResolveAddr(o2_))->oid;
  ASSERT_EQ(cluster_->node(2).dsm().OwnerHint(o2_oid), 0u);

  // The owner's BGC moves O2; no replica is invalidated (read tokens live).
  cluster_->node(1).gc().CollectBunch(b_);
  Gaddr o2_new = cluster_->node(1).dsm().ResolveAddr(o2_);
  ASSERT_NE(o2_new, o2_);

  // Node 0 synchronizes with the owner on O1 (which references O2): the
  // grant's invariant-1 piggyback tells node 0 where O2 went, and node 0 —
  // holding node 2 in its copy-set for O2 — must forward the news
  // (invariant 2), even though node 2 never talks to the owner.
  uint64_t pushes_before = cluster_->node(0).dsm().stats().pushes_sent;
  ASSERT_TRUE(mutators_[0]->AcquireRead(o1_));
  mutators_[0]->Release(o1_);
  cluster_->Pump();
  EXPECT_GT(cluster_->node(0).dsm().stats().pushes_sent, pushes_before);
  EXPECT_EQ(cluster_->node(2).dsm().ResolveAddr(o2_), o2_new);
}

TEST_F(Fig3, Invariant3_IntraSspCreatedBeforeWriteGrantCompletes) {
  Build(2);
  BunchId other = cluster_->CreateBunch(0);
  // Give O1 an inter-bunch stub at N1.
  Gaddr out = mutators_[0]->Alloc(other, 1);
  mutators_[0]->AddRoot(out);
  mutators_[0]->WriteRef(o1_, 1, out);
  ASSERT_EQ(cluster_->node(0).gc().TablesOf(b_).inter_stubs.size(), 1u);

  // N2 takes O1's write token: by the time the acquire returns, the intra
  // SSP must exist — scion at N1 (old owner), stub at N2 (new owner).
  ASSERT_TRUE(mutators_[1]->AcquireWrite(o1_));
  auto n1_tables = cluster_->node(0).gc().TablesOf(b_);
  auto n2_tables = cluster_->node(1).gc().TablesOf(b_);
  ASSERT_EQ(n1_tables.intra_scions.size(), 1u);
  EXPECT_EQ(n1_tables.intra_scions[0].stub_node, 1u);
  ASSERT_EQ(n2_tables.intra_stubs.size(), 1u);
  EXPECT_EQ(n2_tables.intra_stubs[0].scion_node, 0u);
  mutators_[1]->Release(o1_);
}

TEST_F(Fig3, NoIntraSspWhenOldOwnerHoldsNoStubs) {
  Build(2);
  ASSERT_TRUE(mutators_[1]->AcquireWrite(o2_));  // O2 has no stubs anywhere
  mutators_[1]->Release(o2_);
  EXPECT_TRUE(cluster_->node(0).gc().TablesOf(b_).intra_scions.empty());
  EXPECT_TRUE(cluster_->node(1).gc().TablesOf(b_).intra_stubs.empty());
}

// Invalidation fan-out generalized to N nodes: N-1 readers replicate the
// object, the owner's write upgrade revokes every replica, and every reader's
// next acquire re-faults the new value.
class Fig3Scale : public ::testing::TestWithParam<size_t> {};

TEST_P(Fig3Scale, WriteUpgradeInvalidatesAllReplicas) {
  size_t n = GetParam();
  Cluster cluster({.num_nodes = n});
  std::vector<std::unique_ptr<Mutator>> muts;
  for (NodeId id = 0; id < n; ++id) {
    muts.push_back(std::make_unique<Mutator>(&cluster.node(id)));
  }
  BunchId b = cluster.CreateBunch(0);
  Gaddr a = muts[0]->Alloc(b, 1);
  muts[0]->AddRoot(a);
  muts[0]->WriteWord(a, 0, 1);
  cluster.Pump();
  for (NodeId id = 1; id < n; ++id) {
    ASSERT_TRUE(muts[id]->AcquireRead(a)) << "node " << id;
    EXPECT_EQ(muts[id]->ReadWord(a, 0), 1u);
    muts[id]->Release(a);
  }
  cluster.Pump();
  ASSERT_TRUE(muts[0]->AcquireWrite(a));
  muts[0]->WriteWord(a, 0, 7);
  muts[0]->Release(a);
  cluster.Pump();
  // Every one of the N-1 replicas was invalidated, and every reader observes
  // the new value on its next (re-faulting) acquire.
  for (NodeId id = 1; id < n; ++id) {
    EXPECT_EQ(cluster.node(id).dsm().stats().read_copies_invalidated, 1u) << "node " << id;
    ASSERT_TRUE(muts[id]->AcquireRead(a)) << "node " << id;
    EXPECT_EQ(muts[id]->ReadWord(a, 0), 7u);
    muts[id]->Release(a);
  }
}

INSTANTIATE_TEST_SUITE_P(Scale, Fig3Scale, ::testing::Values(4, 8, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bmx
