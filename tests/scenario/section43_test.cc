// §4.3's three cases, verbatim: "When the BGC scans a live object containing
// an inter-bunch reference, three actions may be taken:
//   - if the inter-bunch reference has been created at the local node, then
//     the corresponding inter-bunch stub is added to the new stub table,
//   - if the inter-bunch reference has not been created locally, but the
//     scanned object is locally owned, then the corresponding intra-bunch
//     stub is added to the new stub list,
//   - if neither ... nor ..., then no stub is added."

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

class Section43 : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = 3});
    for (int i = 0; i < 3; ++i) {
      mutators_.push_back(std::make_unique<Mutator>(&cluster_->node(i)));
    }
    b_ = cluster_->CreateBunch(0);
    other_ = cluster_->CreateBunch(0);
    // Node 0 creates the object and its inter-bunch reference.
    obj_ = mutators_[0]->Alloc(b_, 2);
    out_ = mutators_[0]->Alloc(other_, 1);
    mutators_[0]->AddRoot(out_);
    mutators_[0]->WriteRef(obj_, 0, out_);
    mutators_[0]->AddRoot(obj_);
  }

  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Mutator>> mutators_;
  BunchId b_ = kInvalidBunch, other_ = kInvalidBunch;
  Gaddr obj_ = kNullAddr, out_ = kNullAddr;
};

TEST_F(Section43, Case1_LocallyCreatedReferenceKeepsInterStub) {
  cluster_->node(0).gc().CollectBunch(b_);
  auto tables = cluster_->node(0).gc().TablesOf(b_);
  ASSERT_EQ(tables.inter_stubs.size(), 1u);
  EXPECT_TRUE(tables.intra_stubs.empty());
}

TEST_F(Section43, Case2_OwnedButNotCreatorKeepsIntraStub) {
  // Ownership (and the object's bytes) move to node 1, which becomes the
  // owner but did NOT create the inter-bunch reference: its BGC emits an
  // intra-bunch stub (pointing at node 0's scion), not an inter-bunch stub.
  ASSERT_TRUE(mutators_[1]->AcquireWrite(obj_));
  mutators_[1]->Release(obj_);
  mutators_[1]->AddRoot(obj_);
  cluster_->Pump();
  cluster_->node(1).gc().CollectBunch(b_);
  auto tables = cluster_->node(1).gc().TablesOf(b_);
  EXPECT_TRUE(tables.inter_stubs.empty());
  ASSERT_EQ(tables.intra_stubs.size(), 1u);
  EXPECT_EQ(tables.intra_stubs[0].scion_node, 0u);
}

TEST_F(Section43, Case3_NeitherCreatorNorOwnerEmitsNothing) {
  // Node 2 holds a mere read replica: not the creator of the reference, not
  // the owner — its BGC adds no stub of either kind for the object.
  ASSERT_TRUE(mutators_[2]->AcquireRead(obj_));
  mutators_[2]->Release(obj_);
  mutators_[2]->AddRoot(obj_);
  cluster_->Pump();
  cluster_->node(2).gc().CollectBunch(b_);
  auto tables = cluster_->node(2).gc().TablesOf(b_);
  EXPECT_TRUE(tables.inter_stubs.empty());
  EXPECT_TRUE(tables.intra_stubs.empty());
  // But it does emit an exiting ownerPtr, keeping the object alive at the
  // owner.
  cluster_->Pump();
  cluster_->node(0).gc().CollectBunch(b_);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_reclaimed, 0u);
}

TEST_F(Section43, InterStubStaysWithCreatorAcrossOwnershipMoves) {
  // However often ownership hops, the single inter-bunch stub remains at its
  // creation node (node 0) while its object lives; "a single SSP is enough
  // to keep the target object alive in the whole system" (§3.1).
  ASSERT_TRUE(mutators_[1]->AcquireWrite(obj_));
  mutators_[1]->Release(obj_);
  ASSERT_TRUE(mutators_[2]->AcquireWrite(obj_));
  mutators_[2]->Release(obj_);
  ASSERT_TRUE(mutators_[0]->AcquireWrite(obj_));
  mutators_[0]->Release(obj_);
  cluster_->Pump();
  for (int n = 0; n < 3; ++n) {
    cluster_->node(n).gc().CollectBunch(b_);
    cluster_->Pump();
  }
  size_t stubs_total = 0;
  for (int n = 0; n < 3; ++n) {
    stubs_total += cluster_->node(n).gc().TablesOf(b_).inter_stubs.size();
  }
  EXPECT_EQ(stubs_total, 1u);
  EXPECT_EQ(cluster_->node(0).gc().TablesOf(b_).inter_stubs.size(), 1u);
  // The target is still protected.
  cluster_->node(0).gc().CollectBunch(other_);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_reclaimed, 0u);
}

}  // namespace
}  // namespace bmx
