// Figure 1 of the paper, reproduced as an executable configuration.
//
// "Bunch B1 is mapped on nodes N1 and N2, and bunch B2 is mapped only on N3."
// Object O3 is cached on N1 and N2; the inter-bunch reference O3→O5 was
// created at N2 while N2 owned O3 (so the single inter-bunch stub lives at
// N2, with the matching scion at N3); O3's write token then moved to N1,
// creating the intra-bunch SSP from N1 (stub) to N2 (scion).  "In spite of
// being unreachable by the mutator at N2, object O3 must be kept alive at
// this node."

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

class Fig1 : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = 3});
    n1_ = std::make_unique<Mutator>(&cluster_->node(0));  // paper's N1
    n2_ = std::make_unique<Mutator>(&cluster_->node(1));  // paper's N2
    n3_ = std::make_unique<Mutator>(&cluster_->node(2));  // paper's N3
    b1_ = cluster_->CreateBunch(1);  // B1, first touched on N2
    b2_ = cluster_->CreateBunch(2);  // B2, mapped only on N3

    // O5 lives in B2 on N3.
    o5_ = n3_->Alloc(b2_, 1);
    n3_->AddRoot(o5_);

    // N2 creates O3 in B1 and the inter-bunch reference O3→O5.  B2 is not
    // mapped at N2, so a scion-message flies to N3.
    o3_ = n2_->Alloc(b1_, 2);
    n2_->WriteRef(o3_, 0, o5_);
    cluster_->Pump();

    // O3's write token moves from N2 to N1 (invariant 3 builds the intra
    // SSP); N1's mutator keeps O3 in its local root.
    ASSERT_TRUE(n1_->AcquireWrite(o3_));
    n1_->Release(o3_);
    n1_->AddRoot(o3_);
    cluster_->Pump();
  }

  Oid OidOf(Node& node, Gaddr addr) {
    return node.store().HeaderOf(node.dsm().ResolveAddr(addr))->oid;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Mutator> n1_, n2_, n3_;
  BunchId b1_ = kInvalidBunch, b2_ = kInvalidBunch;
  Gaddr o3_ = kNullAddr, o5_ = kNullAddr;
};

TEST_F(Fig1, StubAndScionTablesMatchTheFigure) {
  // Single inter-bunch stub for O3→O5, held at N2 (where the reference was
  // created) — not replicated to N1 even though O3 is cached there.
  auto n2_tables = cluster_->node(1).gc().TablesOf(b1_);
  ASSERT_EQ(n2_tables.inter_stubs.size(), 1u);
  EXPECT_EQ(n2_tables.inter_stubs[0].target_bunch, b2_);
  EXPECT_EQ(n2_tables.inter_stubs[0].scion_node, 2u);
  EXPECT_TRUE(cluster_->node(0).gc().TablesOf(b1_).inter_stubs.empty());

  // Matching inter-bunch scion at N3 in B2.
  auto n3_tables = cluster_->node(2).gc().TablesOf(b2_);
  ASSERT_EQ(n3_tables.inter_scions.size(), 1u);
  EXPECT_EQ(n3_tables.inter_scions[0].stub_id, n2_tables.inter_stubs[0].id);
  EXPECT_EQ(n3_tables.inter_scions[0].src_node, 1u);
  EXPECT_EQ(n3_tables.inter_scions[0].src_bunch, b1_);

  // Intra-bunch SSP: stub at N1 (new owner), scion at N2 (old owner), in the
  // opposite direction of the ownerPtr N2→N1.
  auto n1_tables = cluster_->node(0).gc().TablesOf(b1_);
  ASSERT_EQ(n1_tables.intra_stubs.size(), 1u);
  EXPECT_EQ(n1_tables.intra_stubs[0].scion_node, 1u);
  auto n2_intra = cluster_->node(1).gc().TablesOf(b1_).intra_scions;
  ASSERT_EQ(n2_intra.size(), 1u);
  EXPECT_EQ(n2_intra[0].stub_node, 0u);
}

TEST_F(Fig1, TokenStatesMatchTheFigure) {
  Oid o3 = OidOf(cluster_->node(0), o3_);
  Oid o5 = OidOf(cluster_->node(2), o5_);
  // N1 holds O3's write token and is its owner ('w', 'o').
  EXPECT_TRUE(cluster_->node(0).dsm().IsLocallyOwned(o3));
  EXPECT_EQ(cluster_->node(0).dsm().StateOf(o3), TokenState::kWrite);
  // N2's copy of O3 is inconsistent ('i').
  EXPECT_FALSE(cluster_->node(1).dsm().IsLocallyOwned(o3));
  EXPECT_EQ(cluster_->node(1).dsm().StateOf(o3), TokenState::kNone);
  EXPECT_EQ(cluster_->node(1).dsm().OwnerHint(o3), 0u);
  // N3 owns O5.
  EXPECT_TRUE(cluster_->node(2).dsm().IsLocallyOwned(o5));
}

TEST_F(Fig1, O3SurvivesAtN2WithoutAnyMutatorRoot) {
  // BGC of B1 at N2: no mutator root there, but the intra-bunch scion keeps
  // O3 alive (it anchors the inter-bunch stub that keeps O5 alive).
  cluster_->node(1).gc().CollectBunch(b1_);
  EXPECT_EQ(cluster_->node(1).gc().stats().objects_reclaimed, 0u);
  EXPECT_EQ(cluster_->node(1).gc().TablesOf(b1_).inter_stubs.size(), 1u);
  // And the weak-only replica contributed no exiting ownerPtr (§6.2): the
  // entering entry for N2 at N1 must not have been *added* by the BGC.
  cluster_->Pump();
  // O5 stays alive at N3 through the whole chain.
  cluster_->node(2).gc().CollectBunch(b2_);
  EXPECT_EQ(cluster_->node(2).gc().stats().objects_reclaimed, 0u);
}

// The figure generalized to N nodes: an inter-bunch chain o_0 → ... →
// o_{N-1} with one bunch per node, every link crossing a bunch boundary, and
// the head's write token migrated away from the chain's only interior root.
// The figure's claim must hold at every scale: per-bunch collections reclaim
// nothing, and every link keeps its stub/scion pair.
class Fig1Scale : public ::testing::TestWithParam<size_t> {};

TEST_P(Fig1Scale, InterBunchChainSurvivesPerBunchCollections) {
  size_t n = GetParam();
  Cluster cluster({.num_nodes = n});
  std::vector<std::unique_ptr<Mutator>> muts;
  std::vector<BunchId> bunches;
  std::vector<Gaddr> objs;
  for (NodeId id = 0; id < n; ++id) {
    muts.push_back(std::make_unique<Mutator>(&cluster.node(id)));
    bunches.push_back(cluster.CreateBunch(id));
    objs.push_back(muts[id]->Alloc(bunches[id], 2));
  }
  muts[n - 1]->AddRoot(objs[n - 1]);
  for (size_t i = 0; i + 1 < n; ++i) {
    muts[i]->WriteRef(objs[i], 0, objs[i + 1]);
  }
  cluster.Pump();
  // As in the figure, the head's token moves (here: to node 1) and the new
  // owner holds the only root for the head of the chain.
  ASSERT_TRUE(muts[1]->AcquireWrite(objs[0]));
  muts[1]->Release(objs[0]);
  muts[1]->AddRoot(objs[0]);
  cluster.Pump();
  for (NodeId id = 0; id < n; ++id) {
    cluster.node(id).gc().CollectBunch(bunches[id]);
    cluster.Pump();
    EXPECT_EQ(cluster.node(id).gc().stats().objects_reclaimed, 0u) << "node " << id;
  }
  // Every link left exactly one inter-bunch stub at its creator and one
  // scion at its target bunch.
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_EQ(cluster.node(i).gc().TablesOf(bunches[i]).inter_stubs.size(), 1u)
        << "link " << i;
    EXPECT_EQ(cluster.node(i + 1).gc().TablesOf(bunches[i + 1]).inter_scions.size(), 1u)
        << "link " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Scale, Fig1Scale, ::testing::Values(4, 8, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST_F(Fig1, ChainCollapsesOnceN1DropsO3) {
  // Remove the only mutator reference to O3 (at N1) and run the cascade:
  // O3 dies at N1 → intra stub dropped → intra scion cleaned at N2 → O3 and
  // its inter stub die at N2 → scion cleaned at N3 → O5 dies at N3.
  n1_->ClearRoot(0);
  n3_->ClearRoot(0);  // drop N3's own root on O5 as well
  // The chain unwinds over alternating collections: N2's BGC first reports
  // no exiting ownerPtr for its weak-only replica (pruning N1's entering
  // entry), then N1 reclaims O3 and drops the intra stub, then N2 reclaims
  // its replica and drops the inter stub, and finally N3 reclaims O5.
  for (int round = 0; round < 4; ++round) {
    cluster_->node(1).gc().CollectBunch(b1_);
    cluster_->Pump();
    cluster_->node(0).gc().CollectBunch(b1_);
    cluster_->Pump();
  }
  cluster_->node(2).gc().CollectBunch(b2_);
  EXPECT_GE(cluster_->node(2).gc().stats().objects_reclaimed, 1u);
}

}  // namespace
}  // namespace bmx
