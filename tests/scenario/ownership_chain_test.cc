// Ownership chains: an object transferred through several owners, each old
// owner holding an intra-bunch SSP link toward the previous one (the
// forwarding-link chain §3.2 describes), and the whole chain unwinding when
// the object finally dies.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

class OwnershipChain : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = 4});
    for (int i = 0; i < 4; ++i) {
      mutators_.push_back(std::make_unique<Mutator>(&cluster_->node(i)));
    }
    b_ = cluster_->CreateBunch(0);
    other_ = cluster_->CreateBunch(0);
    // Node 0 creates the object and the inter-bunch reference out of it, so
    // node 0 forever holds the inter-bunch stub.
    obj_ = mutators_[0]->Alloc(b_, 2);
    out_ = mutators_[0]->Alloc(other_, 1);
    mutators_[0]->AddRoot(out_);
    mutators_[0]->WriteRef(obj_, 0, out_);

    // Ownership walks 0 -> 1 -> 2 -> 3.  Each transfer from a node holding a
    // stub (inter at 0; intra at 1 and 2) creates the next intra SSP link.
    for (int n = 1; n <= 3; ++n) {
      ASSERT_TRUE(mutators_[n]->AcquireWrite(obj_));
      mutators_[n]->Release(obj_);
    }
    mutators_[3]->AddRoot(obj_);
    cluster_->Pump();
  }

  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Mutator>> mutators_;
  BunchId b_ = kInvalidBunch, other_ = kInvalidBunch;
  Gaddr obj_ = kNullAddr, out_ = kNullAddr;
};

TEST_F(OwnershipChain, ChainOfIntraSspLinksExists) {
  // stub@3 -> scion@2, stub@2 -> scion@1, stub@1 -> scion@0: three links.
  for (int n = 1; n <= 3; ++n) {
    auto tables = cluster_->node(n).gc().TablesOf(b_);
    ASSERT_EQ(tables.intra_stubs.size(), 1u) << "node " << n;
    EXPECT_EQ(tables.intra_stubs[0].scion_node, static_cast<NodeId>(n - 1)) << "node " << n;
  }
  for (int n = 0; n <= 2; ++n) {
    auto tables = cluster_->node(n).gc().TablesOf(b_);
    ASSERT_EQ(tables.intra_scions.size(), 1u) << "node " << n;
    EXPECT_EQ(tables.intra_scions[0].stub_node, static_cast<NodeId>(n + 1)) << "node " << n;
  }
  // The single inter-bunch stub still sits at node 0.
  EXPECT_EQ(cluster_->node(0).gc().TablesOf(b_).inter_stubs.size(), 1u);
}

TEST_F(OwnershipChain, ChainKeepsStubHolderAliveThroughCollections) {
  // Repeated collections everywhere: every link's replica survives, because
  // each intra scion is a (weak) root and each live replica re-emits its
  // intra stub.
  for (int round = 0; round < 3; ++round) {
    for (int n = 0; n < 4; ++n) {
      cluster_->node(n).gc().CollectBunch(b_);
      cluster_->Pump();
    }
  }
  for (int n = 0; n < 4; ++n) {
    Gaddr local = cluster_->node(n).dsm().LocalCopyOf(obj_);
    EXPECT_TRUE(cluster_->node(n).store().HasObjectAt(local)) << "node " << n;
  }
  // And the inter-bunch target is still protected.
  cluster_->node(0).gc().CollectBunch(other_);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_reclaimed, 0u);
}

TEST_F(OwnershipChain, WholeChainUnwindsOnDeath) {
  mutators_[3]->ClearRoot(0);
  // The cascade takes one table round per link: owner dies first, then each
  // previous owner in turn as its intra scion is cleaned.
  for (int round = 0; round < 6; ++round) {
    for (int n = 3; n >= 0; --n) {
      cluster_->node(n).gc().CollectBunch(b_);
      cluster_->Pump();
    }
  }
  uint64_t reclaimed = 0;
  for (int n = 0; n < 4; ++n) {
    reclaimed += cluster_->node(n).gc().stats().objects_reclaimed;
    EXPECT_TRUE(cluster_->node(n).gc().TablesOf(b_).intra_stubs.empty()) << "node " << n;
    EXPECT_TRUE(cluster_->node(n).gc().TablesOf(b_).intra_scions.empty()) << "node " << n;
  }
  EXPECT_GE(reclaimed, 4u);  // all four replicas of obj
  // With the last stub gone, the inter-bunch target dies too.
  mutators_[0]->ClearRoot(0);  // drop node 0's own root on `out`
  cluster_->node(0).gc().CollectBunch(other_);
  EXPECT_GE(cluster_->node(0).gc().stats().objects_reclaimed, 1u);
}

}  // namespace
}  // namespace bmx
