// Baseline collector tests (paper §9 comparators): the strong-consistency
// copier pays tokens and invalidations, stop-the-world pays a global barrier,
// and Bevan-style reference counting is fragile under loss/duplication and
// blind to cycles — each contrast demonstrates a BMX design decision.

#include <gtest/gtest.h>

#include "src/baselines/refcount.h"
#include "src/baselines/stop_the_world.h"
#include "src/baselines/strong_copy.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

struct Rig {
  explicit Rig(size_t nodes) : cluster({.num_nodes = nodes}) {
    for (size_t i = 0; i < nodes; ++i) {
      agents.push_back(std::make_unique<BaselineAgent>(&cluster.node(i)));
      mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
    }
  }
  std::vector<BaselineAgent*> AgentPtrs() {
    std::vector<BaselineAgent*> out;
    for (auto& a : agents) {
      out.push_back(a.get());
    }
    return out;
  }
  Cluster cluster;
  std::vector<std::unique_ptr<BaselineAgent>> agents;
  std::vector<std::unique_ptr<Mutator>> mutators;
};

TEST(StrongCopy, AcquiresTokensAndInvalidatesReaders) {
  Rig rig(3);
  BunchId bunch = rig.cluster.CreateBunch(0);
  GraphBuilder builder(&rig.cluster, rig.mutators[0].get());
  Gaddr head = builder.BuildList(bunch, 10);
  rig.mutators[0]->AddRoot(head);

  // Nodes 1 and 2 cache the whole list (read tokens).
  for (size_t n = 1; n <= 2; ++n) {
    Gaddr cur = head;
    while (cur != kNullAddr) {
      EXPECT_TRUE(rig.mutators[n]->AcquireRead(cur));
      Gaddr next = rig.mutators[n]->ReadRef(cur, 0);
      rig.mutators[n]->Release(cur);
      cur = next;
    }
  }

  StrongCopyCollector strong(&rig.cluster, rig.AgentPtrs());
  uint64_t invalidated_before = rig.cluster.node(1).dsm().stats().read_copies_invalidated +
                                rig.cluster.node(2).dsm().stats().read_copies_invalidated;
  strong.Collect(0, bunch);

  EXPECT_EQ(strong.stats().objects_copied, 10u);
  EXPECT_EQ(strong.stats().tokens_acquired, 10u);
  EXPECT_GT(rig.cluster.node(0).dsm().GcTokenAcquires(), 0u);
  // Every reader's copy of every object got invalidated: the working-set
  // disruption §4.2 predicts for a strong-consistency collector.
  uint64_t invalidated_after = rig.cluster.node(1).dsm().stats().read_copies_invalidated +
                               rig.cluster.node(2).dsm().stats().read_copies_invalidated;
  EXPECT_GE(invalidated_after - invalidated_before, 20u);
  // Eager updates were pushed to both replicas.
  EXPECT_EQ(strong.stats().update_messages, 2u);

  // Correctness preserved: the list reads back everywhere.
  for (size_t n = 0; n < 3; ++n) {
    Gaddr cur = rig.cluster.node(n).dsm().ResolveAddr(head);
    size_t len = 0;
    while (cur != kNullAddr) {
      EXPECT_TRUE(rig.mutators[n]->AcquireRead(cur));
      Gaddr next = rig.mutators[n]->ReadRef(cur, 0);
      rig.mutators[n]->Release(cur);
      cur = next;
      len++;
    }
    EXPECT_EQ(len, 10u);
  }
}

TEST(StrongCopy, BmxCollectorPaysNeitherCost) {
  Rig rig(3);
  BunchId bunch = rig.cluster.CreateBunch(0);
  GraphBuilder builder(&rig.cluster, rig.mutators[0].get());
  Gaddr head = builder.BuildList(bunch, 10);
  rig.mutators[0]->AddRoot(head);
  for (size_t n = 1; n <= 2; ++n) {
    Gaddr cur = head;
    while (cur != kNullAddr) {
      EXPECT_TRUE(rig.mutators[n]->AcquireRead(cur));
      Gaddr next = rig.mutators[n]->ReadRef(cur, 0);
      rig.mutators[n]->Release(cur);
      cur = next;
    }
  }
  uint64_t invalidated_before = rig.cluster.node(1).dsm().stats().read_copies_invalidated;
  rig.cluster.node(0).gc().CollectBunch(bunch);
  EXPECT_EQ(rig.cluster.node(0).dsm().GcTokenAcquires(), 0u);
  EXPECT_EQ(rig.cluster.node(1).dsm().stats().read_copies_invalidated, invalidated_before);
  // Readers still hold valid tokens and can read without any message.
  rig.cluster.network().ResetStats();
  Gaddr at1 = rig.cluster.node(1).dsm().ResolveAddr(head);
  EXPECT_TRUE(rig.mutators[1]->AcquireRead(at1));
  rig.mutators[1]->Release(at1);
  EXPECT_EQ(rig.cluster.network().stats().TotalSent(), 0u);
}

TEST(StopTheWorld, BarrierStopsEveryMapper) {
  Rig rig(3);
  BunchId bunch = rig.cluster.CreateBunch(0);
  GraphBuilder builder(&rig.cluster, rig.mutators[0].get());
  Gaddr head = builder.BuildList(bunch, 8);
  rig.mutators[0]->AddRoot(head);
  // All nodes map the bunch.
  for (size_t n = 1; n <= 2; ++n) {
    EXPECT_TRUE(rig.mutators[n]->AcquireRead(head));
    rig.mutators[n]->Release(head);
    rig.mutators[n]->AddRoot(head);
  }

  StopTheWorldCollector stw(&rig.cluster, rig.AgentPtrs());
  stw.Collect(0, bunch);
  EXPECT_EQ(stw.stats().nodes_stopped, 3u);
  // stop + done + resume per remote mapper.
  EXPECT_EQ(stw.stats().barrier_messages, 6u);
  // After resume nobody is stopped.
  for (auto& agent : rig.agents) {
    EXPECT_FALSE(agent->stopped());
  }
  // The graph survived.
  Gaddr cur = rig.cluster.node(0).dsm().ResolveAddr(head);
  size_t len = 0;
  while (cur != kNullAddr) {
    EXPECT_TRUE(rig.mutators[0]->AcquireRead(cur));
    Gaddr next = rig.mutators[0]->ReadRef(cur, 0);
    rig.mutators[0]->Release(cur);
    cur = next;
    len++;
  }
  EXPECT_EQ(len, 8u);
}

TEST(RefCount, ReclaimsAcyclicGarbageUnderReliableNetwork) {
  Rig rig(2);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(1);
  RefCountGc rc(&rig.cluster);

  Gaddr target = rig.mutators[1]->Alloc(b2, 1);
  Gaddr src = rig.mutators[0]->Alloc(b1, 2);
  rig.mutators[0]->AddRoot(src);
  rc.WriteRef(rig.mutators[0].get(), src, 0, target);
  rig.cluster.Pump();
  EXPECT_EQ(rig.agents[1]->rc().counts.size(), 1u);

  rc.WriteRef(rig.mutators[0].get(), src, 0, kNullAddr);
  rig.cluster.Pump();
  EXPECT_EQ(rig.agents[1]->rc().reclaimed, 1u);
  EXPECT_TRUE(rig.agents[1]->rc().counts.empty());
}

TEST(RefCount, LostDecrementLeaksForever) {
  Rig rig(2);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(1);
  RefCountGc rc(&rig.cluster);
  Gaddr target = rig.mutators[1]->Alloc(b2, 1);
  Gaddr src = rig.mutators[0]->Alloc(b1, 2);
  rig.mutators[0]->AddRoot(src);
  rc.WriteRef(rig.mutators[0].get(), src, 0, target);
  rig.cluster.Pump();

  // The decrement is lost; there is no idempotent resend in an inc/dec
  // protocol, so the count never reaches zero: a permanent leak.
  rig.cluster.network().set_loss_rate(1.0);
  rc.WriteRef(rig.mutators[0].get(), src, 0, kNullAddr);
  rig.cluster.Pump();
  rig.cluster.network().set_loss_rate(0.0);
  rig.cluster.Pump();
  EXPECT_EQ(rig.agents[1]->rc().reclaimed, 0u);
  EXPECT_EQ(rig.agents[1]->rc().counts.size(), 1u);
}

TEST(RefCount, DuplicatedDecrementFreesLiveObject) {
  Rig rig(2);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(1);
  RefCountGc rc(&rig.cluster);
  Gaddr target = rig.mutators[1]->Alloc(b2, 1);
  Gaddr src1 = rig.mutators[0]->Alloc(b1, 2);
  Gaddr src2 = rig.mutators[0]->Alloc(b1, 2);
  rig.mutators[0]->AddRoot(src1);
  rig.mutators[0]->AddRoot(src2);
  rc.WriteRef(rig.mutators[0].get(), src1, 0, target);
  rc.WriteRef(rig.mutators[0].get(), src2, 0, target);
  rig.cluster.Pump();

  // One decrement duplicated by the network: count 2 → 0 while src2 still
  // references the object — unsafe premature reclamation.
  rig.cluster.network().set_duplication_rate(1.0);
  rc.WriteRef(rig.mutators[0].get(), src1, 0, kNullAddr);
  rig.cluster.Pump();
  EXPECT_EQ(rig.agents[1]->rc().reclaimed, 1u);  // freed a live object!
}

TEST(RefCount, CrossBunchCycleLeaksButGgcCollectsIt) {
  Rig rig(1);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(0);
  RefCountGc rc(&rig.cluster);
  Gaddr x = rig.mutators[0]->Alloc(b1, 1);
  Gaddr y = rig.mutators[0]->Alloc(b2, 1);
  rc.WriteRef(rig.mutators[0].get(), x, 0, y);
  rc.WriteRef(rig.mutators[0].get(), y, 0, x);
  rig.cluster.Pump();
  // Counts are 1 each and will never drop: the cycle leaks under RC.
  EXPECT_EQ(rig.agents[0]->rc().counts.size(), 2u);
  EXPECT_EQ(rig.agents[0]->rc().reclaimed, 0u);
  // The BMX group collector reclaims it in one pass.
  rig.cluster.node(0).gc().CollectGroup();
  EXPECT_EQ(rig.cluster.node(0).gc().stats().objects_reclaimed, 2u);
}

TEST(ScionTables, SurviveSameLossThatBreaksRefCounting) {
  // Same loss pattern as LostDecrementLeaksForever, against the scion
  // mechanism: the lost table is simply resent by the next BGC.
  Rig rig(2);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(1);
  Gaddr target = rig.mutators[1]->Alloc(b2, 1);
  Gaddr src = rig.mutators[0]->Alloc(b1, 2);
  rig.mutators[0]->AddRoot(src);
  rig.mutators[0]->WriteRef(src, 0, target);
  rig.cluster.Pump();

  rig.mutators[0]->WriteRef(src, 0, kNullAddr);
  rig.cluster.network().set_loss_rate(1.0);
  rig.cluster.node(0).gc().CollectBunch(b1);
  rig.cluster.Pump();
  rig.cluster.network().set_loss_rate(0.0);
  // Resend via the next collection; then the target dies at node 1.
  rig.cluster.node(0).gc().CollectBunch(b1);
  rig.cluster.Pump();
  rig.cluster.node(1).gc().CollectBunch(b2);
  EXPECT_GE(rig.cluster.node(1).gc().stats().objects_reclaimed, 1u);
}

}  // namespace
}  // namespace bmx
