// ReplicaStore's one-entry MRU segment cache under concurrent shard readers.
//
// The cache is thread-local (keyed by store identity) with a global
// invalidation epoch bumped by Drop() and ~ReplicaStore(): these tests pin
// that concurrent readers with interleaved access patterns always get the
// right image, that a dropped segment's cached entry can never be served
// again on ANY thread, and that two stores sharing a thread never cross-hit.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/perf_counters.h"
#include "src/common/task_pool.h"
#include "src/mem/replica_store.h"

namespace bmx {
namespace {

struct PoolGuard {
  ~PoolGuard() { TaskPool::SetThreadsForTesting(TaskPool::EnvThreads()); }
};

TEST(ReplicaStoreMruTest, ConcurrentReadersSeeTheirOwnSegments) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(4);
  ReplicaStore store;
  constexpr SegmentId kSegments = 16;
  std::vector<SegmentImage*> expected;
  for (SegmentId seg = 1; seg <= kSegments; ++seg) {
    expected.push_back(&store.GetOrCreate(seg, /*bunch=*/1));
  }
  // Each shard hammers the segments in its own rotation, so different threads
  // hold different MRU entries for the same store at the same time.  A shared
  // member-variable cache (the old design) races and can hand shard A the
  // image shard B just cached.
  std::vector<uint64_t> oks = TaskPool::Global().ParallelMap<uint64_t>(64, [&](size_t task) {
    uint64_t ok = 0;
    for (size_t round = 0; round < 200; ++round) {
      SegmentId seg = static_cast<SegmentId>(1 + (task + round) % kSegments);
      SegmentImage* image = store.Find(seg);
      if (image == expected[seg - 1] && image->id() == seg) {
        ok++;
      }
      // Repeated probe of the same segment: the MRU-hit path must return the
      // identical image.
      if (store.Find(seg) == image) {
        ok++;
      }
    }
    return ok;
  });
  for (uint64_t ok : oks) {
    EXPECT_EQ(ok, 400u);
  }
}

TEST(ReplicaStoreMruTest, DropInvalidatesEveryThreadsCachedEntry) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(4);
  ReplicaStore store;
  store.GetOrCreate(7, /*bunch=*/1);
  // Warm the MRU entry for segment 7 on every pool participant.
  TaskPool::Global().ParallelFor(32, [&](size_t) { ASSERT_NE(store.Find(7), nullptr); });

  store.Drop(7);
  // The old image is gone; a fresh one takes its place (same id, new
  // allocation).  Stale thread-local entries must miss — their fill epoch
  // predates the Drop() bump — instead of returning the freed image.
  SegmentImage* fresh = &store.GetOrCreate(7, /*bunch=*/1);
  std::vector<uint64_t> oks = TaskPool::Global().ParallelMap<uint64_t>(32, [&](size_t) {
    uint64_t ok = 0;
    for (size_t round = 0; round < 50; ++round) {
      if (store.Find(7) == fresh) {
        ok++;
      }
    }
    return ok;
  });
  for (uint64_t ok : oks) {
    EXPECT_EQ(ok, 50u);
  }
}

TEST(ReplicaStoreMruTest, InterleavedStoresNeverCrossHit) {
  // Two nodes' stores on one thread, both with a segment id 3 of their own:
  // store identity is part of the MRU key, so alternating Finds must not
  // serve one store's image for the other.
  ReplicaStore a;
  ReplicaStore b;
  SegmentImage* ia = &a.GetOrCreate(3, /*bunch=*/1);
  SegmentImage* ib = &b.GetOrCreate(3, /*bunch=*/2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Find(3), ia);
    EXPECT_EQ(b.Find(3), ib);
  }
  EXPECT_EQ(a.Find(3)->bunch(), 1u);
  EXPECT_EQ(b.Find(3)->bunch(), 2u);
}

TEST(ReplicaStoreMruTest, DyingStoreInvalidatesItsEntries) {
  SegmentImage* stale = nullptr;
  {
    ReplicaStore dying;
    stale = &dying.GetOrCreate(5, /*bunch=*/1);
    EXPECT_EQ(dying.Find(5), stale);  // fill this thread's MRU
  }
  // A different store born at (possibly) the same heap address must not be
  // answered from the dead store's cached entry: the destructor bumped the
  // epoch, so the first Find misses and refills from the live map.
  ReplicaStore reborn;
  SegmentImage* fresh = &reborn.GetOrCreate(5, /*bunch=*/9);
  EXPECT_EQ(reborn.Find(5), fresh);
  EXPECT_EQ(reborn.Find(5)->bunch(), 9u);
}

TEST(ReplicaStoreMruTest, MruHitsStillCountOnTheSerialPath) {
  // The perf-counter contract the hot-path PR pinned: repeated same-segment
  // probes short-circuit through the MRU.  Thread-locality must not have
  // broken the serial fast path.
  ReplicaStore store;
  store.GetOrCreate(2, /*bunch=*/1);
  GlobalPerfCounters().Reset();
  for (int i = 0; i < 10; ++i) {
    ASSERT_NE(store.Find(2), nullptr);
  }
  EXPECT_GE(GlobalPerfCounters().segment_mru_hits, 9u);
  GlobalPerfCounters().Reset();
}

}  // namespace
}  // namespace bmx
