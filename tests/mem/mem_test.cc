#include <gtest/gtest.h>

#include "src/mem/directory.h"
#include "src/mem/replica_store.h"
#include "src/mem/segment.h"

namespace bmx {
namespace {

TEST(SegmentImage, AllocateLaysOutHeaderAndData) {
  SegmentImage seg(3, 1);
  Gaddr a = seg.Allocate(/*oid=*/77, /*size_slots=*/4);
  ASSERT_NE(a, kNullAddr);
  EXPECT_EQ(SegmentOf(a), 3u);
  const ObjectHeader* h = seg.HeaderOf(a);
  EXPECT_EQ(h->oid, 77u);
  EXPECT_EQ(h->size_slots, 4u);
  EXPECT_FALSE(h->forwarded());
  // Object-map bit sits at the header slot.
  size_t header_slot = (OffsetInSegment(a) - kHeaderBytes) / kSlotBytes;
  EXPECT_TRUE(seg.object_map().Test(header_slot));
}

TEST(SegmentImage, AllocationsDoNotOverlap) {
  SegmentImage seg(1, 1);
  Gaddr a = seg.Allocate(1, 2);
  Gaddr b = seg.Allocate(2, 2);
  EXPECT_GE(b, a + 2 * kSlotBytes + kHeaderBytes);
}

TEST(SegmentImage, AllocateFailsWhenFull) {
  SegmentImage seg(1, 1);
  uint32_t big = static_cast<uint32_t>(kSlotsPerSegment / 2);
  EXPECT_NE(seg.Allocate(1, big), kNullAddr);
  EXPECT_EQ(seg.Allocate(2, big), kNullAddr);  // second does not fit
}

TEST(SegmentImage, ForEachObjectVisitsInAddressOrder) {
  SegmentImage seg(1, 1);
  Gaddr a = seg.Allocate(1, 1);
  Gaddr b = seg.Allocate(2, 3);
  Gaddr c = seg.Allocate(3, 2);
  std::vector<Gaddr> seen;
  seg.ForEachObject([&](Gaddr addr, ObjectHeader&) { seen.push_back(addr); });
  EXPECT_EQ(seen, (std::vector<Gaddr>{a, b, c}));
}

TEST(SegmentImage, InstallAndEraseObject) {
  SegmentImage src(1, 1);
  SegmentImage dst(2, 1);
  Gaddr a = src.Allocate(5, 2);
  *src.SlotPtr(a, 0) = 111;
  *src.SlotPtr(a, 1) = 222;

  Gaddr target = MakeAddr(2, 1024 + kHeaderBytes);
  dst.InstallObject(target, *src.HeaderOf(a), src.SlotPtr(a, 0));
  EXPECT_EQ(*dst.SlotPtr(target, 0), 111u);
  EXPECT_EQ(*dst.SlotPtr(target, 1), 222u);
  EXPECT_EQ(dst.HeaderOf(target)->oid, 5u);

  dst.EraseObject(target);
  size_t header_slot = (OffsetInSegment(target) - kHeaderBytes) / kSlotBytes;
  EXPECT_FALSE(dst.object_map().Test(header_slot));
}

TEST(Directory, IdsAndMembership) {
  SegmentDirectory dir;
  BunchId b1 = dir.CreateBunch(0);
  BunchId b2 = dir.CreateBunch(1);
  EXPECT_NE(b1, b2);
  EXPECT_EQ(dir.BunchCreator(b1), 0u);
  EXPECT_EQ(dir.BunchCreator(b2), 1u);

  SegmentId s1 = dir.AllocateSegment(b1, 0);
  SegmentId s2 = dir.AllocateSegment(b1, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(dir.BunchOfSegment(s1), b1);
  EXPECT_EQ(dir.SegmentCreator(s2), 1u);
  EXPECT_EQ(dir.SegmentsOfBunch(b1).size(), 2u);
  EXPECT_TRUE(dir.SegmentsOfBunch(b2).empty());
}

TEST(Directory, OidsAreUnique) {
  SegmentDirectory dir;
  Oid a = dir.NextOid();
  Oid b = dir.NextOid();
  EXPECT_NE(a, b);
  EXPECT_NE(a, kNullOid);
}

TEST(Directory, RetiredSegmentsKeepLookupsWorking) {
  SegmentDirectory dir;
  BunchId b = dir.CreateBunch(0);
  SegmentId s = dir.AllocateSegment(b, 0);
  dir.RetireSegment(s);
  EXPECT_TRUE(dir.IsRetired(s));
  EXPECT_EQ(dir.BunchOfSegment(s), b);  // tombstone still answers
  EXPECT_EQ(dir.SegmentCreator(s), 0u);
  EXPECT_TRUE(dir.SegmentsOfBunch(b).empty());
}

TEST(Directory, MapperRegistry) {
  SegmentDirectory dir;
  BunchId b = dir.CreateBunch(0);
  dir.NoteMapped(b, 0);
  dir.NoteMapped(b, 2);
  EXPECT_TRUE(dir.IsMappedAt(b, 0));
  EXPECT_FALSE(dir.IsMappedAt(b, 1));
  EXPECT_EQ(dir.MappersOf(b).size(), 2u);
  dir.NoteUnmapped(b, 0);
  EXPECT_FALSE(dir.IsMappedAt(b, 0));
}

TEST(ReplicaStore, ForwardingResolution) {
  ReplicaStore store;
  SegmentDirectory dir;
  BunchId b = dir.CreateBunch(0);
  SegmentId s = dir.AllocateSegment(b, 0);
  SegmentImage& img = store.GetOrCreate(s, b);
  Gaddr a1 = img.Allocate(1, 2);
  Gaddr a2 = img.Allocate(1, 2);
  EXPECT_EQ(store.ResolveForward(a1), a1);
  ObjectHeader* h = store.HeaderOf(a1);
  h->flags |= kObjFlagForwarded;
  h->forward = a2;
  EXPECT_EQ(store.ResolveForward(a1), a2);
}

TEST(ReplicaStore, ResolveThroughChain) {
  ReplicaStore store;
  SegmentDirectory dir;
  BunchId b = dir.CreateBunch(0);
  SegmentId s = dir.AllocateSegment(b, 0);
  SegmentImage& img = store.GetOrCreate(s, b);
  Gaddr a1 = img.Allocate(1, 1);
  Gaddr a2 = img.Allocate(1, 1);
  Gaddr a3 = img.Allocate(1, 1);
  store.HeaderOf(a1)->flags |= kObjFlagForwarded;
  store.HeaderOf(a1)->forward = a2;
  store.HeaderOf(a2)->flags |= kObjFlagForwarded;
  store.HeaderOf(a2)->forward = a3;
  EXPECT_EQ(store.ResolveForward(a1), a3);
}

TEST(ReplicaStore, ResolveOfUnmappedAddressIsIdentity) {
  ReplicaStore store;
  Gaddr somewhere = MakeAddr(55, 4096);
  EXPECT_EQ(store.ResolveForward(somewhere), somewhere);
  EXPECT_FALSE(store.HasObjectAt(somewhere));
}

TEST(ReplicaStore, SlotAndRefBitAccess) {
  ReplicaStore store;
  SegmentImage& img = store.GetOrCreate(4, 1);
  Gaddr a = img.Allocate(9, 3);
  store.WriteSlot(a, 0, 0xDEAD);
  store.SetSlotIsRef(a, 0, true);
  EXPECT_EQ(store.ReadSlot(a, 0), 0xDEADu);
  EXPECT_TRUE(store.SlotIsRef(a, 0));
  EXPECT_FALSE(store.SlotIsRef(a, 1));
  store.SetSlotIsRef(a, 0, false);
  EXPECT_FALSE(store.SlotIsRef(a, 0));
}

TEST(ReplicaStore, CopyObjectBytesCarriesRefMap) {
  ReplicaStore store;
  SegmentImage& img = store.GetOrCreate(4, 1);
  store.GetOrCreate(5, 1);
  Gaddr a = img.Allocate(9, 2);
  store.WriteSlot(a, 0, 123);
  store.SetSlotIsRef(a, 0, true);
  store.WriteSlot(a, 1, 456);

  Gaddr target = MakeAddr(5, 512 + kHeaderBytes);
  store.CopyObjectBytes(a, target);
  EXPECT_EQ(store.ReadSlot(target, 0), 123u);
  EXPECT_TRUE(store.SlotIsRef(target, 0));
  EXPECT_FALSE(store.SlotIsRef(target, 1));
  EXPECT_EQ(store.HeaderOf(target)->oid, 9u);
  EXPECT_FALSE(store.HeaderOf(target)->forwarded());
}

TEST(ReplicaStore, OidAddressMap) {
  ReplicaStore store;
  EXPECT_EQ(store.AddrOfOid(42), kNullAddr);
  store.SetAddrOfOid(42, 1000);
  EXPECT_EQ(store.AddrOfOid(42), 1000u);
  store.ForgetOid(42);
  EXPECT_EQ(store.AddrOfOid(42), kNullAddr);
}

TEST(ReplicaStore, SegmentsOfBunchFilters) {
  ReplicaStore store;
  store.GetOrCreate(1, 10);
  store.GetOrCreate(2, 10);
  store.GetOrCreate(3, 11);
  EXPECT_EQ(store.SegmentsOfBunch(10).size(), 2u);
  EXPECT_EQ(store.SegmentsOfBunch(11).size(), 1u);
  EXPECT_EQ(store.AllSegments().size(), 3u);
  store.Drop(2);
  EXPECT_EQ(store.SegmentsOfBunch(10).size(), 1u);
}

}  // namespace
}  // namespace bmx
