// End-to-end smoke tests: allocation, cross-node sharing through entry
// consistency, write-barrier SSP creation, independent BGCs, lazy address
// propagation via acquire piggybacks, and the scion-cleaner cascade.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

TEST(Smoke, AllocateAndAccessLocally) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);

  Gaddr a = m.Alloc(bunch, 4);
  ASSERT_NE(a, kNullAddr);
  ASSERT_TRUE(m.AcquireWrite(a));
  m.WriteWord(a, 0, 42);
  m.WriteWord(a, 1, 43);
  m.Release(a);

  ASSERT_TRUE(m.AcquireRead(a));
  EXPECT_EQ(m.ReadWord(a, 0), 42u);
  EXPECT_EQ(m.ReadWord(a, 1), 43u);
  m.Release(a);
}

TEST(Smoke, CrossNodeReadAndWrite) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);

  Gaddr a = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 7);
  m0.Release(a);

  // Node 1 reads the object: token + bytes travel.
  ASSERT_TRUE(m1.AcquireRead(a));
  EXPECT_EQ(m1.ReadWord(a, 0), 7u);
  m1.Release(a);

  // Node 1 takes the write token: node 0's read copy is invalidated and
  // ownership moves.
  ASSERT_TRUE(m1.AcquireWrite(a));
  m1.WriteWord(a, 0, 8);
  m1.Release(a);
  EXPECT_TRUE(cluster.node(1).dsm().IsLocallyOwned(
      cluster.node(1).store().HeaderOf(cluster.node(1).dsm().ResolveAddr(a))->oid));

  // Node 0 re-reads and sees the new value.
  ASSERT_TRUE(m0.AcquireRead(a));
  EXPECT_EQ(m0.ReadWord(a, 0), 8u);
  m0.Release(a);
}

TEST(Smoke, WriteBarrierCreatesLocalSsp) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);

  Gaddr src = m.Alloc(b1, 2);
  Gaddr dst = m.Alloc(b2, 1);
  ASSERT_TRUE(m.AcquireWrite(src));
  m.WriteRef(src, 0, dst);
  m.Release(src);

  auto t1 = cluster.node(0).gc().TablesOf(b1);
  auto t2 = cluster.node(0).gc().TablesOf(b2);
  ASSERT_EQ(t1.inter_stubs.size(), 1u);
  EXPECT_EQ(t1.inter_stubs[0].target_bunch, b2);
  ASSERT_EQ(t2.inter_scions.size(), 1u);
  EXPECT_EQ(t2.inter_scions[0].stub_id, t1.inter_stubs[0].id);
}

TEST(Smoke, BgcCopiesOwnedAndPreservesGraph) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);

  // head -> mid -> tail, plus garbage.
  Gaddr head = m.Alloc(bunch, 2);
  Gaddr mid = m.Alloc(bunch, 2);
  Gaddr tail = m.Alloc(bunch, 2);
  Gaddr garbage = m.Alloc(bunch, 2);
  (void)garbage;
  ASSERT_TRUE(m.AcquireWrite(head));
  m.WriteRef(head, 0, mid);
  m.WriteWord(head, 1, 100);
  m.Release(head);
  ASSERT_TRUE(m.AcquireWrite(mid));
  m.WriteRef(mid, 0, tail);
  m.WriteWord(mid, 1, 200);
  m.Release(mid);
  ASSERT_TRUE(m.AcquireWrite(tail));
  m.WriteWord(tail, 1, 300);
  m.Release(tail);
  size_t root = m.AddRoot(head);

  cluster.node(0).gc().CollectBunch(bunch);

  const GcStats& stats = cluster.node(0).gc().stats();
  EXPECT_EQ(stats.objects_copied, 3u);
  EXPECT_EQ(stats.objects_reclaimed, 1u);

  // The graph survives; the root was updated to the to-space copy.
  Gaddr new_head = m.Root(root);
  EXPECT_NE(new_head, head);
  EXPECT_TRUE(m.SameObject(new_head, head));
  ASSERT_TRUE(m.AcquireRead(new_head));
  EXPECT_EQ(m.ReadWord(new_head, 1), 100u);
  Gaddr new_mid = m.ReadRef(new_head, 0);
  m.Release(new_head);
  ASSERT_TRUE(m.AcquireRead(new_mid));
  EXPECT_EQ(m.ReadWord(new_mid, 1), 200u);
  Gaddr new_tail = m.ReadRef(new_mid, 0);
  m.Release(new_mid);
  ASSERT_TRUE(m.AcquireRead(new_tail));
  EXPECT_EQ(m.ReadWord(new_tail, 1), 300u);
  m.Release(new_tail);
}

TEST(Smoke, ReplicaLearnsNewAddressAtAcquire) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);

  Gaddr a = m0.Alloc(bunch, 2);
  Gaddr b = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteRef(a, 0, b);
  m0.Release(a);
  ASSERT_TRUE(m0.AcquireWrite(b));
  m0.WriteWord(b, 1, 55);
  m0.Release(b);
  m0.AddRoot(a);

  // Node 1 caches both objects.
  ASSERT_TRUE(m1.AcquireRead(a));
  Gaddr b_at_1 = m1.ReadRef(a, 0);
  m1.Release(a);
  ASSERT_TRUE(m1.AcquireRead(b_at_1));
  m1.Release(b_at_1);
  m1.AddRoot(a);

  // Node 0 collects: both objects (locally owned) move.  Node 1 is *not*
  // informed — addresses diverge, which entry consistency tolerates (§4.2).
  cluster.node(0).gc().CollectBunch(bunch);
  EXPECT_EQ(cluster.node(0).gc().stats().objects_copied, 2u);

  // Invariant 1 (§5): when node 1 synchronizes on `a`, the reply carries the
  // new locations of `a` and of everything `a` references.
  ASSERT_TRUE(m1.AcquireRead(a));
  Gaddr b_new = m1.ReadRef(a, 0);
  m1.Release(a);
  EXPECT_TRUE(m1.SameObject(b_new, b));
  ASSERT_TRUE(m1.AcquireRead(b_new));
  EXPECT_EQ(m1.ReadWord(b_new, 1), 55u);
  m1.Release(b_new);
}

TEST(Smoke, GcNeverAcquiresTokens) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);

  Gaddr a = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 1);
  m0.Release(a);
  m0.AddRoot(a);
  ASSERT_TRUE(m1.AcquireRead(a));
  m1.AddRoot(a);
  m1.Release(a);

  cluster.node(0).dsm().ResetStats();
  cluster.node(1).dsm().ResetStats();
  cluster.node(0).gc().CollectBunch(bunch);
  cluster.node(1).gc().CollectBunch(bunch);
  cluster.Pump();

  EXPECT_EQ(cluster.node(0).dsm().GcTokenAcquires(), 0u);
  EXPECT_EQ(cluster.node(1).dsm().GcTokenAcquires(), 0u);
  EXPECT_EQ(cluster.node(0).dsm().stats().read_copies_invalidated, 0u);
  EXPECT_EQ(cluster.node(1).dsm().stats().read_copies_invalidated, 0u);
}

TEST(Smoke, ScionCleanerCascadeReclaimsRemoteScion) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(1);

  // Node 1 allocates target object in b2; node 0 references it from b1.
  Gaddr target = m1.Alloc(b2, 1);
  ASSERT_TRUE(m1.AcquireWrite(target));
  m1.WriteWord(target, 0, 9);
  m1.Release(target);

  Gaddr src = m0.Alloc(b1, 2);
  size_t root = m0.AddRoot(src);
  ASSERT_TRUE(m0.AcquireRead(target));  // fault the target in
  m0.Release(target);
  ASSERT_TRUE(m0.AcquireWrite(src));
  m0.WriteRef(src, 0, target);
  m0.Release(src);
  cluster.Pump();

  // The target object has a local replica at node 0 now; the stub/scion was
  // created locally at node 0 (both bunches mapped there after the fault).
  auto tables0 = cluster.node(0).gc().TablesOf(b1);
  ASSERT_EQ(tables0.inter_stubs.size(), 1u);

  // Drop the reference: next BGC drops the stub, the cleaner deletes the
  // scion, and the following BGC of b2 reclaims the target at node 1.
  ASSERT_TRUE(m0.AcquireWrite(src));
  m0.WriteRef(src, 0, kNullAddr);
  m0.Release(src);
  (void)root;

  cluster.node(0).gc().CollectBunch(b1);
  cluster.node(0).gc().CollectBunch(b2);  // node 0's replica of b2
  cluster.Pump();
  cluster.node(1).gc().CollectBunch(b2);
  cluster.Pump();

  EXPECT_GE(cluster.node(1).gc().stats().objects_reclaimed, 1u);
}

}  // namespace
}  // namespace bmx
