// Long-horizon stress: the bmx_sim workload as a parameterized test.  Random
// token traffic, ownership migration, interleaved BGC/GGC/reclamation and
// (in some configs) GC-table message loss, followed by a full integrity walk
// from every node.  This matrix is what shook out the deep routing and
// address-bookkeeping bugs during development; it guards against regressions
// in the interplay of all subsystems at once.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

struct StressParams {
  size_t nodes;
  size_t objects;
  size_t rounds;
  uint64_t seed;
  bool distributed;
  bool ggc;
  double loss;
};

class StressTest : public ::testing::TestWithParam<StressParams> {};

TEST_P(StressTest, WorkloadSurvives) {
  const StressParams& p = GetParam();
  Cluster cluster({.num_nodes = p.nodes,
                   .copyset_mode = p.distributed ? CopySetMode::kDistributed
                                                 : CopySetMode::kCentralized,
                   .seed = p.seed});
  cluster.network().set_loss_rate(p.loss);
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < p.nodes; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  Rng rng(p.seed);

  std::vector<Gaddr> objects;
  for (size_t i = 0; i < p.objects; ++i) {
    objects.push_back(mutators[0]->Alloc(bunch, 3));
  }
  for (size_t i = 0; i + 1 < p.objects; ++i) {
    mutators[0]->WriteRef(objects[i], 0, objects[i + 1]);
  }
  mutators[0]->AddRoot(objects[0]);

  for (size_t round = 0; round < p.rounds; ++round) {
    NodeId writer = static_cast<NodeId>(rng.Below(p.nodes));
    Gaddr victim = objects[rng.Below(objects.size())];
    if (mutators[writer]->AcquireWrite(victim)) {
      mutators[writer]->WriteRef(victim, 1, objects[rng.Below(objects.size())]);
      mutators[writer]->WriteWord(victim, 2, round);
      mutators[writer]->Release(victim);
    }
    for (int r = 0; r < 2; ++r) {
      NodeId reader = static_cast<NodeId>(rng.Below(p.nodes));
      Gaddr obj = objects[rng.Below(objects.size())];
      if (mutators[reader]->AcquireRead(obj)) {
        mutators[reader]->Release(obj);
      }
    }
    if (rng.Chance(0.2)) {
      NodeId collector = static_cast<NodeId>(rng.Below(p.nodes));
      if (p.ggc) {
        cluster.node(collector).gc().CollectGroup();
      } else {
        cluster.node(collector).gc().CollectBunch(bunch);
      }
      if (rng.Chance(0.5)) {
        cluster.node(collector).gc().ReclaimFromSpaces(bunch);
      }
      cluster.Pump();
    }
    for (size_t i = 0; i < objects.size(); ++i) {
      objects[i] = cluster.node(0).dsm().ResolveAddr(objects[i]);
    }
  }
  cluster.Pump();

  // Integrity: every spine object reachable from every node, collectors
  // acquired no token anywhere.
  for (size_t n = 0; n < p.nodes; ++n) {
    Gaddr cur = objects[0];
    size_t len = 0;
    while (cur != kNullAddr) {
      ASSERT_TRUE(mutators[n]->AcquireRead(cur))
          << "node " << n << " lost spine object " << len;
      Gaddr next = mutators[n]->ReadRef(cur, 0);
      mutators[n]->Release(cur);
      cur = next;
      len++;
    }
    ASSERT_EQ(len, p.objects) << "node " << n;
    EXPECT_EQ(cluster.node(n).dsm().GcTokenAcquires(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StressTest,
    ::testing::Values(StressParams{3, 24, 80, 101, false, true, 0.0},
                      StressParams{5, 32, 100, 102, true, false, 0.0},
                      StressParams{6, 48, 120, 103, true, true, 0.0},
                      StressParams{2, 16, 80, 104, false, false, 0.0},
                      StressParams{4, 24, 100, 105, false, false, 0.10},
                      StressParams{8, 64, 150, 106, true, true, 0.05},
                      StressParams{4, 32, 120, 107, false, true, 0.20},
                      StressParams{6, 40, 120, 108, true, true, 0.10}),
    [](const ::testing::TestParamInfo<StressParams>& info) {
      const StressParams& p = info.param;
      return "n" + std::to_string(p.nodes) + "_s" + std::to_string(p.seed) +
             (p.distributed ? "_dist" : "_cent") + (p.ggc ? "_ggc" : "_bgc") + "_loss" +
             std::to_string(int(p.loss * 100));
    });

}  // namespace
}  // namespace bmx
