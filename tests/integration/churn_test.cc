// Randomized multi-node integration: mutators on several nodes share object
// graphs, pass tokens around, mutate references, and run interleaved BGCs,
// GGCs and reclamations.  The invariant checked throughout: no live object is
// ever lost (the shared graph stays intact and readable from every node),
// and the collector never acquires a token.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

struct ChurnParams {
  size_t nodes;
  size_t objects;
  size_t rounds;
  uint64_t seed;
  CopySetMode mode;
};

class ChurnTest : public ::testing::TestWithParam<ChurnParams> {};

TEST_P(ChurnTest, SharedGraphSurvivesInterleavedCollections) {
  const ChurnParams& p = GetParam();
  Cluster cluster({.num_nodes = p.nodes, .copyset_mode = p.mode, .seed = p.seed});
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < p.nodes; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  Rng rng(p.seed);

  // Node 0 builds a population of objects, each with a payload identifying
  // it, and roots the spine head.
  std::vector<Gaddr> objects;
  std::vector<uint64_t> payloads;
  for (size_t i = 0; i < p.objects; ++i) {
    Gaddr obj = mutators[0]->Alloc(bunch, 3);
    mutators[0]->WriteWord(obj, 2, 1000 + i);
    objects.push_back(obj);
    payloads.push_back(1000 + i);
  }
  for (size_t i = 0; i + 1 < p.objects; ++i) {
    mutators[0]->WriteRef(objects[i], 0, objects[i + 1]);
  }
  mutators[0]->AddRoot(objects[0]);

  for (size_t round = 0; round < p.rounds; ++round) {
    // A random node takes the write token on a random object and rewires its
    // scratch reference.
    NodeId writer = static_cast<NodeId>(rng.Below(p.nodes));
    Gaddr victim = objects[rng.Below(objects.size())];
    Gaddr target = objects[rng.Below(objects.size())];
    ASSERT_TRUE(mutators[writer]->AcquireWrite(victim));
    mutators[writer]->WriteRef(victim, 1, target);
    mutators[writer]->Release(victim);

    // Random readers touch random objects.
    for (int r = 0; r < 3; ++r) {
      NodeId reader = static_cast<NodeId>(rng.Below(p.nodes));
      Gaddr obj = objects[rng.Below(objects.size())];
      ASSERT_TRUE(mutators[reader]->AcquireRead(obj));
      mutators[reader]->Release(obj);
    }

    // A random node collects; sometimes the whole group; sometimes it also
    // reclaims its from-spaces.
    NodeId collector = static_cast<NodeId>(rng.Below(p.nodes));
    if (rng.Chance(0.3)) {
      cluster.node(collector).gc().CollectGroup();
    } else {
      cluster.node(collector).gc().CollectBunch(bunch);
    }
    if (rng.Chance(0.5)) {
      cluster.node(collector).gc().ReclaimFromSpaces(bunch);
    }
    cluster.Pump();
    ASSERT_TRUE(cluster.node(collector).gc().ReclaimQuiescent());

    // Addresses held by the test may be stale; refresh through node 0's view.
    for (size_t i = 0; i < objects.size(); ++i) {
      objects[i] = cluster.node(0).dsm().ResolveAddr(objects[i]);
    }
  }

  // Every object is still reachable and carries its payload; walk the spine
  // from every node.
  for (size_t n = 0; n < p.nodes; ++n) {
    Gaddr cur = objects[0];
    for (size_t i = 0; i < p.objects; ++i) {
      ASSERT_TRUE(mutators[n]->AcquireRead(cur)) << "node " << n << " object " << i;
      EXPECT_EQ(mutators[n]->ReadWord(cur, 2), payloads[i]);
      Gaddr next = mutators[n]->ReadRef(cur, 0);
      mutators[n]->Release(cur);
      cur = next;
    }
    EXPECT_EQ(cur, kNullAddr);
  }

  // The collector never acquired a token anywhere.
  for (size_t n = 0; n < p.nodes; ++n) {
    EXPECT_EQ(cluster.node(n).dsm().GcTokenAcquires(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChurnTest,
    ::testing::Values(ChurnParams{2, 12, 20, 1, CopySetMode::kCentralized},
                      ChurnParams{2, 12, 20, 2, CopySetMode::kDistributed},
                      ChurnParams{3, 20, 30, 3, CopySetMode::kCentralized},
                      ChurnParams{3, 20, 30, 4, CopySetMode::kDistributed},
                      ChurnParams{4, 30, 40, 5, CopySetMode::kCentralized},
                      ChurnParams{5, 25, 30, 6, CopySetMode::kDistributed},
                      ChurnParams{4, 16, 25, 7, CopySetMode::kDistributed},
                      ChurnParams{6, 18, 25, 8, CopySetMode::kCentralized}),
    [](const ::testing::TestParamInfo<ChurnParams>& info) {
      const ChurnParams& p = info.param;
      return "n" + std::to_string(p.nodes) + "_o" + std::to_string(p.objects) + "_r" +
             std::to_string(p.rounds) + "_s" + std::to_string(p.seed) +
             (p.mode == CopySetMode::kDistributed ? "_dist" : "_cent");
    });

}  // namespace
}  // namespace bmx
