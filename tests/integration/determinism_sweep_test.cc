// System-level half of the TaskPool determinism contract: the SAME workload
// run at BMX_THREADS ∈ {1,2,4,8} must produce bit-identical observable
// results — BGC/reclaim wire traffic, oracle verdicts, and every field of an
// explorer result — and a trace recorded under a multi-threaded explorer must
// replay under one thread.  threads=1 is the exact legacy serial path, so
// equality against it proves the parallel paths are semantics-preserving, not
// merely self-consistent.
//
// The pool-level half (ordered merge, exactly-once, deterministic exception
// choice) lives in tests/common/task_pool_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/task_pool.h"
#include "src/runtime/cluster.h"
#include "src/runtime/explorer.h"
#include "src/runtime/mutator.h"
#include "src/runtime/oracle.h"
#include "src/runtime/scenarios.h"

namespace bmx {
namespace {

constexpr size_t kSweep[] = {1, 2, 4, 8};

// Restores the pool to the environment's thread count when a test ends, so
// the sweep never leaks its final override into other tests.
struct PoolGuard {
  ~PoolGuard() { TaskPool::SetThreadsForTesting(TaskPool::EnvThreads()); }
};

// Node 0 builds a linked list and replicates it on `replicas` nodes (the
// traffic_fingerprint_test workload shape — duplicated so the two guards
// cannot drift apart silently).
Gaddr BuildList(Cluster* cluster, std::vector<std::unique_ptr<Mutator>>* mutators, BunchId bunch,
                size_t count, size_t replicas) {
  Mutator& owner = *(*mutators)[0];
  Gaddr head = kNullAddr;
  for (size_t i = 0; i < count; ++i) {
    Gaddr node = owner.Alloc(bunch, 2);
    owner.WriteRef(node, 0, head);
    owner.WriteWord(node, 1, i);
    head = node;
  }
  owner.AddRoot(head);
  for (size_t r = 1; r < replicas; ++r) {
    Gaddr cur = head;
    while (cur != kNullAddr) {
      (*mutators)[r]->AcquireRead(cur);
      Gaddr next = (*mutators)[r]->ReadRef(cur, 0);
      (*mutators)[r]->Release(cur);
      cur = next;
    }
    (*mutators)[r]->AddRoot(head);
  }
  cluster->Pump();
  return head;
}

// One full BGC + reclaim cycle on a replicated-list cluster, returning the
// fingerprint of everything that crossed the wire after the build phase.
// Rebuilt from scratch per thread count: no state carries across sweep steps.
std::string BgcCycleFingerprint() {
  Cluster cluster({.num_nodes = 8});
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < 8; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr head = BuildList(&cluster, &mutators, bunch, 200, 4);
  // Unlink a tail suffix so the sweep and reclaim phases have real garbage.
  mutators[0]->AcquireWrite(head);
  mutators[0]->WriteRef(head, 0, kNullAddr);
  mutators[0]->Release(head);
  cluster.Pump();
  cluster.network().ResetStats();

  cluster.node(0).gc().CollectBunch(bunch);
  cluster.Pump();
  cluster.node(0).gc().ReclaimFromSpaces(bunch);
  cluster.Pump();
  return cluster.network().stats().Fingerprint();
}

TEST(DeterminismSweep, BgcAndReclaimTrafficBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(1);
  const std::string serial = BgcCycleFingerprint();
  EXPECT_FALSE(serial.empty());
  for (size_t threads : kSweep) {
    TaskPool::SetThreadsForTesting(threads);
    EXPECT_EQ(BgcCycleFingerprint(), serial) << "threads=" << threads;
  }
}

TEST(DeterminismSweep, OracleVerdictsIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  // The post-GC cluster is consistent, so the interesting assertion is that
  // every sweep step agrees exactly — same verdict vector, element for
  // element — with the serial oracle (non-empty verdicts across thread counts
  // are pinned by ExplorerCanaryResultIdenticalAcrossThreadCounts below).
  auto verdicts = [](size_t threads) {
    TaskPool::SetThreadsForTesting(threads);
    Cluster cluster({.num_nodes = 4});
    std::vector<std::unique_ptr<Mutator>> mutators;
    for (size_t i = 0; i < 4; ++i) {
      mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
    }
    BunchId bunch = cluster.CreateBunch(0);
    BuildList(&cluster, &mutators, bunch, 100, 3);
    cluster.node(0).gc().CollectBunch(bunch);
    cluster.Pump();
    InvariantOracle oracle(&cluster);
    std::vector<std::string> out = oracle.Check();
    std::vector<std::string> stable = oracle.CheckStable();
    out.insert(out.end(), stable.begin(), stable.end());
    return out;
  };
  const std::vector<std::string> serial = verdicts(1);
  for (size_t threads : kSweep) {
    EXPECT_EQ(verdicts(threads), serial) << "threads=" << threads;
  }
}

TEST(DeterminismSweep, ExplorerCleanScenarioResultIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  ExplorerOptions options;
  options.root_seed = 7;
  options.num_walks = 8;
  options.schedule = ScheduleKind::kRandomWalk;
  options.oracle_stride = 2;
  Explorer explorer(options);
  ExplorerScenario scenario = StandardScenarios()[2];  // fig3-invalidate-fanout

  TaskPool::SetThreadsForTesting(1);
  const ExplorationResult serial = explorer.Explore(scenario);
  ASSERT_FALSE(serial.violation_found);
  EXPECT_EQ(serial.runs, options.num_walks);

  for (size_t threads : kSweep) {
    TaskPool::SetThreadsForTesting(threads);
    ExplorationResult got = explorer.Explore(scenario);
    EXPECT_EQ(got.violation_found, serial.violation_found) << "threads=" << threads;
    EXPECT_EQ(got.runs, serial.runs) << "threads=" << threads;
    EXPECT_EQ(got.total_deliveries, serial.total_deliveries) << "threads=" << threads;
    EXPECT_EQ(got.fingerprint, serial.fingerprint) << "threads=" << threads;
  }
}

TEST(DeterminismSweep, ExplorerCanaryResultIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  ExplorerOptions options;
  options.root_seed = 1;
  options.num_walks = 64;
  options.schedule = ScheduleKind::kRandomWalk;
  options.deviation_rate = 0.3;
  options.oracle_stride = 1;
  Explorer explorer(options);
  ExplorerScenario scenario = CanaryReorderScenario();

  TaskPool::SetThreadsForTesting(1);
  const ExplorationResult serial = explorer.Explore(scenario);
  ASSERT_TRUE(serial.violation_found);
  ASSERT_FALSE(serial.violations.empty());

  for (size_t threads : kSweep) {
    TaskPool::SetThreadsForTesting(threads);
    ExplorationResult got = explorer.Explore(scenario);
    // The parallel fold stops at the first violating walk in WALK order, so
    // every field — including which walk violated, its oracle verdicts, its
    // traffic, and the shrink outcome — matches the serial loop exactly.
    EXPECT_EQ(got.violation_found, serial.violation_found) << "threads=" << threads;
    EXPECT_EQ(got.violating_walk_seed, serial.violating_walk_seed) << "threads=" << threads;
    EXPECT_EQ(got.violations, serial.violations) << "threads=" << threads;
    EXPECT_EQ(got.fingerprint, serial.fingerprint) << "threads=" << threads;
    EXPECT_EQ(got.runs, serial.runs) << "threads=" << threads;
    EXPECT_EQ(got.total_deliveries, serial.total_deliveries) << "threads=" << threads;
    EXPECT_EQ(got.trace.decisions.size(), serial.trace.decisions.size())
        << "threads=" << threads;
    EXPECT_EQ(got.shrunk.decisions.size(), serial.shrunk.decisions.size())
        << "threads=" << threads;
  }
}

TEST(DeterminismSweep, TraceRecordedUnderManyThreadsReplaysUnderOne) {
  PoolGuard guard;
  ExplorerOptions options;
  options.root_seed = 1;
  options.num_walks = 64;
  options.schedule = ScheduleKind::kRandomWalk;
  options.deviation_rate = 0.3;
  options.oracle_stride = 1;
  Explorer explorer(options);
  ExplorerScenario scenario = CanaryReorderScenario();

  TaskPool::SetThreadsForTesting(4);
  ExplorationResult parallel = explorer.Explore(scenario);
  ASSERT_TRUE(parallel.violation_found);

  // Trace portability is the debugging story: a violation found by a parallel
  // fleet must reproduce on a serial replay, bit for bit.
  TaskPool::SetThreadsForTesting(1);
  RunResult replay = explorer.Replay(scenario, parallel.trace);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.fingerprint, parallel.fingerprint);
  RunResult shrunk = explorer.Replay(scenario, parallel.shrunk);
  EXPECT_TRUE(shrunk.violated);
}

}  // namespace
}  // namespace bmx
