// Traffic-consistency guard for performance work: the per-MsgKind message
// counts and wire bytes of three deterministic workloads (shaped like the E2,
// E5 and E9 benchmarks) are pinned to the values the seed implementation
// produced.  Any hot-path optimisation — scan kernels, lookup-table changes,
// piggyback coalescing — must leave this fingerprint bit-identical: the
// paper's efficiency claim is that GC information costs no *extra* protocol
// traffic, so a speedup that changes the traffic is a protocol change, not an
// optimisation.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/baselines/baseline_agent.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

struct KindCount {
  MsgKind kind;
  uint64_t sent;
  uint64_t bytes;
};

std::string Fingerprint(const NetworkStats& stats) {
  std::string out;
  for (size_t k = 0; k < static_cast<size_t>(MsgKind::kMaxKind); ++k) {
    const auto& pk = stats.per_kind[k];
    if (pk.sent == 0) {
      continue;
    }
    char line[128];
    std::snprintf(line, sizeof(line), "%s:%llu:%llu\n", MsgKindName(static_cast<MsgKind>(k)),
                  static_cast<unsigned long long>(pk.sent),
                  static_cast<unsigned long long>(pk.bytes));
    out += line;
  }
  return out;
}

// Node 0 builds a linked list and replicates it on `replicas` nodes, exactly
// like BenchRig::BuildReplicatedList (duplicated here so the bench harness
// and this guard cannot drift apart silently — the shapes are pinned).
Gaddr BuildList(Cluster* cluster, std::vector<std::unique_ptr<Mutator>>* mutators, BunchId bunch,
                size_t count, size_t replicas) {
  Mutator& owner = *(*mutators)[0];
  Gaddr head = kNullAddr;
  for (size_t i = 0; i < count; ++i) {
    Gaddr node = owner.Alloc(bunch, 2);
    owner.WriteRef(node, 0, head);
    owner.WriteWord(node, 1, i);
    head = node;
  }
  owner.AddRoot(head);
  for (size_t r = 1; r < replicas; ++r) {
    Gaddr cur = head;
    while (cur != kNullAddr) {
      (*mutators)[r]->AcquireRead(cur);
      Gaddr next = (*mutators)[r]->ReadRef(cur, 0);
      (*mutators)[r]->Release(cur);
      cur = next;
    }
    (*mutators)[r]->AddRoot(head);
  }
  cluster->Pump();
  return head;
}

TEST(TrafficFingerprint, E2ReplicatedBgc) {
  Cluster cluster({.num_nodes = 8});
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < 8; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  BuildList(&cluster, &mutators, bunch, 200, 4);
  cluster.network().ResetStats();

  cluster.node(0).gc().CollectBunch(bunch);
  cluster.Pump();

  EXPECT_EQ(Fingerprint(cluster.network().stats()),
            "ReachabilityTable:3:60\n");
}

TEST(TrafficFingerprint, E5StrandedReclaim) {
  Cluster cluster({.num_nodes = 2});
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < 2; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  std::vector<Gaddr> objs;
  for (size_t i = 0; i < 64; ++i) {
    Gaddr o = mutators[0]->Alloc(bunch, 2);
    mutators[0]->AddRoot(o);
    objs.push_back(o);
  }
  for (Gaddr o : objs) {
    mutators[1]->AcquireWrite(o);
    mutators[1]->Release(o);
    mutators[0]->AcquireRead(o);
    mutators[0]->Release(o);
  }
  cluster.node(0).gc().CollectBunch(bunch);
  cluster.Pump();
  cluster.network().ResetStats();

  cluster.node(0).gc().ReclaimFromSpaces(bunch);
  cluster.Pump();

  EXPECT_EQ(Fingerprint(cluster.network().stats()),
            "CopyRequest:64:1536\n"
            "CopyReply:64:4224\n");
}

TEST(TrafficFingerprint, E9FlipPause) {
  Cluster cluster({.num_nodes = 3});
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < 3; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  BuildList(&cluster, &mutators, bunch, 512, 3);
  cluster.network().ResetStats();

  cluster.node(0).gc().CollectBunch(bunch);
  cluster.Pump();

  EXPECT_EQ(Fingerprint(cluster.network().stats()),
            "ReachabilityTable:2:40\n");
}

// Full-cycle variant: acquires after a BGC carry invariant-1 piggybacks, the
// richest traffic the optimisation pass touches (coalescing must be a no-op
// for single-move histories).
TEST(TrafficFingerprint, PostGcAcquireRound) {
  Cluster cluster({.num_nodes = 4});
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < 4; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr head = BuildList(&cluster, &mutators, bunch, 100, 2);
  cluster.node(0).gc().CollectBunch(bunch);
  cluster.Pump();
  cluster.network().ResetStats();

  // Node 2 (never saw the bunch) walks the list; node 1 re-walks through its
  // stale addresses; node 3 write-acquires a few heads (ownership transfer).
  for (size_t r : {2u, 1u}) {
    Gaddr cur = head;
    while (cur != kNullAddr) {
      ASSERT_TRUE(mutators[r]->AcquireRead(cur));
      Gaddr next = mutators[r]->ReadRef(cur, 0);
      mutators[r]->Release(cur);
      cur = next;
    }
  }
  Gaddr cur = head;
  for (int i = 0; i < 8 && cur != kNullAddr; ++i) {
    ASSERT_TRUE(mutators[3]->AcquireWrite(cur));
    Gaddr next = mutators[3]->ReadRef(cur, 0);
    mutators[3]->Release(cur);
    cur = next;
  }
  cluster.Pump();

  EXPECT_EQ(Fingerprint(cluster.network().stats()),
            "AcquireRequest:108:2592\n"
            "Grant:108:12380\n"
            "Invalidate:16:192\n"
            "InvalidateAck:16:192\n");
}

// Obligation tracking is pure observation: the acquire-round workload with
// the liveness ledger enabled must produce the identical pinned fingerprint
// (and the tracker must actually have seen traffic, so the guard is not
// vacuous).
TEST(TrafficFingerprint, PostGcAcquireRoundUnchangedByLivenessTracking) {
  Cluster cluster({.num_nodes = 4});
  cluster.network().obligations().Enable();
  std::vector<std::unique_ptr<Mutator>> mutators;
  for (size_t i = 0; i < 4; ++i) {
    mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr head = BuildList(&cluster, &mutators, bunch, 100, 2);
  cluster.node(0).gc().CollectBunch(bunch);
  cluster.Pump();
  cluster.network().ResetStats();

  for (size_t r : {2u, 1u}) {
    Gaddr cur = head;
    while (cur != kNullAddr) {
      ASSERT_TRUE(mutators[r]->AcquireRead(cur));
      Gaddr next = mutators[r]->ReadRef(cur, 0);
      mutators[r]->Release(cur);
      cur = next;
    }
  }
  Gaddr cur = head;
  for (int i = 0; i < 8 && cur != kNullAddr; ++i) {
    ASSERT_TRUE(mutators[3]->AcquireWrite(cur));
    Gaddr next = mutators[3]->ReadRef(cur, 0);
    mutators[3]->Release(cur);
    cur = next;
  }
  cluster.Pump();

  EXPECT_EQ(Fingerprint(cluster.network().stats()),
            "AcquireRequest:108:2592\n"
            "Grant:108:12380\n"
            "Invalidate:16:192\n"
            "InvalidateAck:16:192\n");
  EXPECT_GT(cluster.network().obligations().retired(), 0u);
  EXPECT_EQ(cluster.network().obligations().OpenCount(), 0u);
}

}  // namespace
}  // namespace bmx
