// Crash-point sweep: for every registered fault-injection site and every
// node, crash the node at that site mid-workload, run RecoveryManager on the
// restarted node, pump to quiescence, and assert the cluster-wide invariant
// oracle finds nothing.  A recording pass first proves the workload actually
// exercises every site (a sweep over never-hit sites would prove nothing).
//
// The randomized schedule test draws (site, node, k-th hit) schedules from a
// seeded Rng; set BMX_FAULT_SEED to reproduce a CI failure — the seed is
// printed on every run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/runtime/oracle.h"

namespace bmx {
namespace {

constexpr size_t kSweepNodes = 3;

// A deterministic workload touching every protocol engine: allocation, the
// inter-bunch write barrier, remote read and write acquires (invalidation
// included), BGCs on three replicas, from-space reclamation with remote
// copy-outs, checkpointing and log truncation.  Every step is guarded by
// IsAlive so the workload degrades gracefully once the armed crash fires
// inside a message handler; crashes on the mutator's own stack propagate as
// NodeCrashSignal to the caller.
void RunWorkload(Cluster& cluster) {
  BunchId b0 = cluster.CreateBunch(0);
  BunchId b1 = cluster.CreateBunch(1);
  // The three-actor core drives every fault site; nodes 3..N-1 (when the
  // sweep runs at scale) join as extra replicas below, widening the fan-outs
  // the sites fire under without changing which sites are reachable.
  std::vector<std::unique_ptr<Mutator>> muts;
  for (NodeId id = 0; id < cluster.size(); ++id) {
    muts.push_back(std::make_unique<Mutator>(&cluster.node(id)));
  }
  Mutator& m0 = *muts[0];
  Mutator& m1 = *muts[1];
  Mutator& m2 = *muts[2];

  // Allocation + local writes (gc.alloc.post_register).
  Gaddr a = m0.Alloc(b0, 2);
  Gaddr b = m0.Alloc(b0, 2);
  m0.Alloc(b0, 2);  // immediately garbage: gives the BGC sweep work
  m0.AcquireWrite(a);
  m0.WriteRef(a, 0, b);
  m0.WriteWord(a, 1, 41);
  m0.Release(a);
  m0.AddRoot(a);

  // Inter-bunch reference from node 1's bunch to node 0's object: the write
  // barrier ships a scion-message (gc.scion.pre_send).
  Gaddr c = m1.Alloc(b1, 2);
  m1.AddRoot(c);
  m1.AcquireWrite(c);
  m1.WriteRef(c, 0, a);
  m1.Release(c);
  cluster.Pump();

  // A node whose last acquire was deferred by a mid-crash peer must not start
  // another one (single-outstanding-acquire contract); such nodes simply sit
  // out the rest of the workload's DSM traffic.
  auto can_acquire = [&](NodeId id) {
    return cluster.IsAlive(id) && !cluster.node(id).dsm().AcquireInFlight();
  };

  // Remote read then remote write: dsm.acquire.pre_send at the requesters,
  // dsm.grant.pre_send at the owner, dsm.grant.post_install at the
  // requester, dsm.invalidate.pre_ack at the read-copy holder.
  if (can_acquire(1) && cluster.IsAlive(0)) {
    if (m1.AcquireRead(a)) {
      m1.Release(a);
    }
  }
  if (can_acquire(2) && cluster.IsAlive(0)) {
    if (m2.AcquireWrite(a)) {
      m2.WriteWord(a, 1, 42);
      m2.Release(a);
    }
  }
  if (can_acquire(2) && cluster.IsAlive(0)) {
    if (m2.AcquireWrite(b)) {
      m2.WriteWord(b, 0, 7);
      m2.Release(b);
    }
  }
  cluster.Pump();

  // Scale phase: every additional node replicates `a`, so the owner's
  // copy-set — and the address-change/push fan-outs the reclaim rounds below
  // owe it — covers the whole cluster, not just the three core actors.
  for (NodeId id = 3; id < cluster.size(); ++id) {
    if (can_acquire(id) && cluster.IsAlive(2)) {
      if (muts[id]->AcquireRead(a)) {
        muts[id]->Release(a);
      }
    }
  }
  cluster.Pump();

  // The new owner's BGC moves a and b within its replica
  // (bgc.collect.pre_trace, bgc.flip.pre_publish, bgc.tables.post_send).
  if (cluster.IsAlive(2)) {
    cluster.node(2).gc().CollectBunch(b0);
  }
  cluster.Pump();

  // Re-reads AFTER the move: each grant installs bytes at the moved address
  // and leaves a forwarding header over the reader's stale pre-move copy —
  // and populates the owner's copy-set with both readers.
  if (can_acquire(0) && cluster.IsAlive(2)) {
    if (m0.AcquireRead(a)) {
      m0.Release(a);
    }
  }
  if (can_acquire(1) && cluster.IsAlive(2)) {
    if (m1.AcquireRead(a)) {
      m1.Release(a);
    }
  }
  cluster.Pump();

  // Node 0's BGC flips its replica, landing the forwarded stale copy of `a`
  // in a from-space; the reachability tables it ships hit the scion cleaner
  // at the receivers (cleaner.table.pre_apply).
  if (cluster.IsAlive(0)) {
    cluster.node(0).gc().CollectBunch(b0);
  }
  cluster.Pump();
  if (cluster.IsAlive(1)) {
    cluster.node(1).gc().CollectBunch(b1);
  }
  cluster.Pump();

  // From-space reclamation (reclaim.round.pre_notices and
  // reclaim.finish.pre_free at the reclaimer; reclaim.copy.pre_reply at the
  // owner of a live object still parked in the from-space).  Node 0's round
  // also notifies the owner (node 2) about the forwarded stale copy of `a`;
  // the owner fans the update down its copy-set as an ObjectPush, hitting
  // dsm.push.pre_apply at node 1.
  if (cluster.IsAlive(0)) {
    cluster.node(0).gc().ReclaimFromSpaces(b0);
  }
  cluster.Pump();
  if (cluster.IsAlive(2)) {
    cluster.node(2).gc().ReclaimFromSpaces(b0);
  }
  cluster.Pump();
  if (cluster.IsAlive(1)) {
    cluster.node(1).gc().ReclaimFromSpaces(b1);
  }
  cluster.Pump();

  // Durability (persist.checkpoint.pre_commit/post_commit, rvm.commit.pre_log
  // and pre_marker, rvm.truncate.pre_reset).
  if (cluster.IsAlive(0)) {
    cluster.node(0).CheckpointBunch(b0);
    cluster.node(0).persistence().TruncateLog();
  }
  if (cluster.IsAlive(1)) {
    cluster.node(1).CheckpointBunch(b1);
  }
  if (cluster.IsAlive(2)) {
    cluster.node(2).CheckpointBunch(b0);
  }
  cluster.Pump();
}

// One armed crash: run the workload with `site`@`node` armed for its k-th
// hit, convert the signal into a cluster crash wherever it surfaces, recover
// every dead node, and audit the result.  Returns false if the schedule
// never fired (site not reached by this node — nothing to test).
bool RunOneCrash(const std::string& site, NodeId node, uint64_t kth_hit,
                 size_t num_nodes = kSweepNodes) {
  FaultInjector::Global().Reset();
  FaultInjector::Global().Arm(site, node, kth_hit);
  Cluster cluster({.num_nodes = num_nodes});
  bool crashed = false;
  try {
    RunWorkload(cluster);
  } catch (const NodeCrashSignal& signal) {
    // The site fired on a mutator/test stack rather than inside a message
    // handler; report the crash to the cluster ourselves.
    if (cluster.IsAlive(signal.node)) {
      cluster.CrashNode(signal.node);
    }
  }
  cluster.Pump();
  FaultInjector::Global().Reset();  // recovery itself must not re-crash

  for (NodeId id = 0; id < num_nodes; ++id) {
    if (!cluster.IsAlive(id)) {
      crashed = true;
      cluster.RestartNode(id).recovery().RunRecovery();
    }
  }
  if (!crashed) {
    return false;
  }
  cluster.Pump();

  InvariantOracle oracle(&cluster);
  std::vector<std::string> violations = oracle.Check();
  for (const std::string& v : violations) {
    ADD_FAILURE() << "site " << site << " node " << node << " hit " << kth_hit << ": " << v;
  }
  return true;
}

TEST(CrashPointSweep, WorkloadCoversEverySite) {
  FaultInjector::Global().Reset();
  FaultInjector::Global().set_recording(true);
  Cluster cluster({.num_nodes = kSweepNodes});
  RunWorkload(cluster);
  for (const char* site : FaultInjector::AllSites()) {
    EXPECT_GT(FaultInjector::Global().HitCount(site), 0u)
        << "workload never reaches fault site " << site;
  }
  FaultInjector::Global().set_recording(false);
  FaultInjector::Global().Reset();
}

TEST(CrashPointSweep, NoFaultBaselinePassesOracle) {
  FaultInjector::Global().Reset();
  Cluster cluster({.num_nodes = kSweepNodes});
  RunWorkload(cluster);
  InvariantOracle oracle(&cluster);
  std::vector<std::string> violations = oracle.Check();
  for (const std::string& v : violations) {
    ADD_FAILURE() << v;
  }
}

TEST(CrashPointSweep, EverySiteEveryNode) {
  size_t fired = 0;
  for (const char* site : FaultInjector::AllSites()) {
    for (NodeId node = 0; node < kSweepNodes; ++node) {
      if (RunOneCrash(site, node, 1)) {
        fired++;
      }
    }
  }
  // Every site fires for at least one node (coverage is proven per-site by
  // WorkloadCoversEverySite; this guards the sweep against a workload edit
  // that silently stops reaching sites).
  EXPECT_GE(fired, FaultInjector::AllSites().size());
}

// The sweep at cluster scale: the same workload (whose replica phase now
// spans every node) with crashes injected at N ∈ {4, 8, 16}.  Each scale
// runs the no-fault baseline plus a seeded random slice of the (site, node,
// k-th hit) space — the full cross product stays the 3-node suite above.
class CrashPointSweepScale : public ::testing::TestWithParam<size_t> {};

TEST_P(CrashPointSweepScale, NoFaultBaselinePassesOracle) {
  size_t n = GetParam();
  FaultInjector::Global().Reset();
  Cluster cluster({.num_nodes = n});
  RunWorkload(cluster);
  InvariantOracle oracle(&cluster);
  for (const std::string& v : oracle.Check()) {
    ADD_FAILURE() << "n=" << n << ": " << v;
  }
}

TEST_P(CrashPointSweepScale, RandomizedCrashSchedules) {
  size_t n = GetParam();
  uint64_t seed = 20260808 + n;
  if (const char* env = std::getenv("BMX_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::cout << "[fault-sweep] n=" << n << " seed=" << seed
            << " (reproduce with BMX_FAULT_SEED=" << seed << ")\n";
  Rng rng(seed);
  const auto& sites = FaultInjector::AllSites();
  for (int round = 0; round < 6; ++round) {
    const char* site = sites[rng.Below(sites.size())];
    NodeId node = static_cast<NodeId>(rng.Below(n));
    uint64_t kth = 1 + rng.Below(3);
    SCOPED_TRACE(std::string("n ") + std::to_string(n) + " seed " + std::to_string(seed) +
                 " round " + std::to_string(round) + ": " + site + "@" + std::to_string(node) +
                 " hit " + std::to_string(kth));
    RunOneCrash(site, node, kth, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Scale, CrashPointSweepScale, ::testing::Values(4, 8, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(CrashPointSweep, RandomizedSchedules) {
  uint64_t seed = 20260806;
  if (const char* env = std::getenv("BMX_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::cout << "[fault-sweep] seed=" << seed << " (reproduce with BMX_FAULT_SEED=" << seed
            << ")\n";
  Rng rng(seed);
  const auto& sites = FaultInjector::AllSites();
  for (int round = 0; round < 12; ++round) {
    const char* site = sites[rng.Below(sites.size())];
    NodeId node = static_cast<NodeId>(rng.Below(kSweepNodes));
    uint64_t kth = 1 + rng.Below(3);
    SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " round " +
                 std::to_string(round) + ": " + site + "@" + std::to_string(node) + " hit " +
                 std::to_string(kth));
    RunOneCrash(site, node, kth);
  }
}

}  // namespace
}  // namespace bmx
