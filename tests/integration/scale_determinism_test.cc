// Scale-out determinism contract (PROTOCOLS.md §14):
//
//   * with batching DISABLED the wire is bit-identical to the pre-batching
//     transport — same Fingerprint() whether the policy struct was defaulted
//     or explicitly zeroed;
//   * with batching ENABLED the logical protocol traffic (per-kind sent and
//     bytes, per-category sent) is identical to the unbatched run under every
//     flush-policy setting — coalescing changes wire packaging, never what
//     the protocol said;
//   * at a fixed node count and seed, the whole soak stack — fingerprint and
//     invariant / consistency / liveness verdicts — is stable across
//     BMX_THREADS ∈ {1, 4} and across flush-policy settings.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/task_pool.h"
#include "src/net/batch.h"
#include "src/runtime/explorer.h"
#include "src/runtime/scenarios.h"
#include "src/workload/soak.h"

namespace bmx {
namespace {

struct PoolGuard {
  ~PoolGuard() { TaskPool::SetThreadsForTesting(TaskPool::EnvThreads()); }
};

SoakOptions SmallSoak(const BatchPolicy& batch) {
  SoakOptions opts;
  opts.num_nodes = 8;
  opts.topology = TopologyKind::kRandomRegular;
  opts.ops = 300;
  opts.batch = batch;
  return opts;
}

// One deterministic FIFO walk of the soak under all three oracles; the
// ExplorationResult carries the fingerprint and every verdict.
ExplorationResult ExploreSoak(const SoakOptions& opts) {
  ExplorerOptions eo;
  eo.root_seed = 5;
  eo.num_walks = 1;
  eo.schedule = ScheduleKind::kFifo;
  eo.oracle_stride = 64;
  eo.check_consistency = true;
  eo.check_liveness = true;
  Explorer explorer(eo);
  return explorer.Explore(SoakScenario(opts));
}

// The logical-traffic projection of the stats: per-kind (sent, bytes) for
// every kind, plus per-category sent.  Frames never appear (their logical
// counters stay zero), so this is exactly what must match batching on vs off.
std::vector<uint64_t> LogicalTraffic(const NetworkStats& stats) {
  std::vector<uint64_t> out;
  for (size_t k = 0; k < static_cast<size_t>(MsgKind::kMaxKind); ++k) {
    out.push_back(stats.per_kind[k].sent);
    out.push_back(stats.per_kind[k].bytes);
  }
  for (size_t c = 0; c < kNumMsgCategories; ++c) {
    out.push_back(stats.per_category[c].sent);
  }
  return out;
}

// Runs the soak workload directly (no explorer) on a fresh cluster and
// returns its end-of-run stats.
NetworkStats SoakStats(const SoakOptions& opts, uint64_t seed) {
  ExplorerScenario scenario = SoakScenario(opts);
  auto cluster = scenario.make(seed);
  scenario.run(*cluster);
  return cluster->network().stats();
}

TEST(ScaleDeterminism, DisabledPolicyIsBitIdenticalToDefault) {
  SoakOptions defaulted = SmallSoak(BatchPolicy{});
  BatchPolicy off;
  off.enabled = false;
  off.max_entries = 99;  // knobs are inert while disabled
  off.deadline_ticks = 1;
  SoakOptions zeroed = SmallSoak(off);
  NetworkStats a = SoakStats(defaulted, 5);
  NetworkStats b = SoakStats(zeroed, 5);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.batching.frames_sent, 0u);
  EXPECT_EQ(b.batching.frames_sent, 0u);
  EXPECT_EQ(a.wire_messages, b.wire_messages);
}

TEST(ScaleDeterminism, LogicalTrafficIdenticalAcrossFlushPolicies) {
  BatchPolicy off;
  BatchPolicy defaults;
  defaults.enabled = true;
  BatchPolicy tiny;
  tiny.enabled = true;
  tiny.max_entries = 2;
  BatchPolicy eager;
  eager.enabled = true;
  eager.deadline_ticks = 1;
  BatchPolicy roomy;
  roomy.enabled = true;
  roomy.max_entries = 64;
  roomy.max_bytes = 4096;
  roomy.deadline_ticks = 16;

  NetworkStats base = SoakStats(SmallSoak(off), 5);
  std::vector<uint64_t> logical = LogicalTraffic(base);
  EXPECT_EQ(base.For(MsgKind::kBatchFrame).sent, 0u);
  for (const BatchPolicy& policy : {defaults, tiny, eager, roomy}) {
    NetworkStats got = SoakStats(SmallSoak(policy), 5);
    EXPECT_EQ(LogicalTraffic(got), logical)
        << "max_entries=" << policy.max_entries << " deadline=" << policy.deadline_ticks;
    EXPECT_GT(got.batching.frames_sent, 0u);
    EXPECT_GT(got.batching.batched_payloads, got.batching.frames_sent);
    // Coalescing must actually shrink the wire, not just repackage it.
    EXPECT_LT(got.wire_messages, base.wire_messages)
        << "max_entries=" << policy.max_entries << " deadline=" << policy.deadline_ticks;
  }
}

TEST(ScaleDeterminism, SoakVerdictsAndFingerprintStableAcrossThreads) {
  PoolGuard guard;
  for (bool batching : {false, true}) {
    BatchPolicy policy;
    policy.enabled = batching;
    SoakOptions opts = SmallSoak(policy);

    TaskPool::SetThreadsForTesting(1);
    ExplorationResult serial = ExploreSoak(opts);
    EXPECT_FALSE(serial.violation_found)
        << "batching=" << batching << ": " << (serial.violations.empty() ? std::string() : serial.violations[0]);

    TaskPool::SetThreadsForTesting(4);
    ExplorationResult parallel = ExploreSoak(opts);
    EXPECT_EQ(parallel.violation_found, serial.violation_found) << "batching=" << batching;
    EXPECT_EQ(parallel.violations, serial.violations) << "batching=" << batching;
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint) << "batching=" << batching;
    EXPECT_EQ(parallel.total_deliveries, serial.total_deliveries) << "batching=" << batching;
  }
}

TEST(ScaleDeterminism, SoakVerdictsCleanAcrossFlushPolicies) {
  BatchPolicy tiny;
  tiny.enabled = true;
  tiny.max_entries = 2;
  BatchPolicy roomy;
  roomy.enabled = true;
  roomy.max_entries = 64;
  roomy.max_bytes = 4096;
  roomy.deadline_ticks = 16;
  for (const BatchPolicy& policy : {tiny, roomy}) {
    ExplorationResult result = ExploreSoak(SmallSoak(policy));
    EXPECT_FALSE(result.violation_found)
        << "max_entries=" << policy.max_entries << ": "
        << (result.violations.empty() ? std::string() : result.violations[0]);
  }
}

// The scaled fig. 1–4 closures replayed with batching on and off: same
// logical traffic, fewer wire messages wherever frames formed.
TEST(ScaleDeterminism, ScaledScenariosLogicalTrafficIdenticalWithBatching) {
  for (size_t nodes : {4u, 16u}) {
    std::vector<ExplorerScenario> off = ScaledScenarios(nodes);
    BatchPolicy policy;
    policy.enabled = true;
    std::vector<ExplorerScenario> on = ScaledScenarios(nodes, policy);
    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i) {
      auto base = off[i].make(7);
      off[i].run(*base);
      auto batched = on[i].make(7);
      on[i].run(*batched);
      EXPECT_EQ(LogicalTraffic(batched->network().stats()),
                LogicalTraffic(base->network().stats()))
          << off[i].name;
      EXPECT_LE(batched->network().stats().wire_messages,
                base->network().stats().wire_messages)
          << off[i].name;
    }
  }
}

}  // namespace
}  // namespace bmx
