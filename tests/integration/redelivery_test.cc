// Crash-recovery redelivery (ISSUE acceptance criterion): a reliable payload
// sent while its destination is down is parked by the network, survives the
// outage, and is delivered to the restarted incarnation when RegisterNode
// re-attaches it — with the retransmission machinery's counters visible in
// NetworkStats.

#include <gtest/gtest.h>

#include "src/gc/payloads.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

TEST(Redelivery, ReliablePayloadToCrashedNodeArrivesAfterRestart) {
  Cluster cluster({.num_nodes = 2});
  cluster.CrashNode(1);

  // An address-change notice is reliable() traffic; send one into the outage.
  auto change = std::make_shared<AddressChangePayload>();
  change->round = 7;
  cluster.network().Send(0, 1, std::move(change));
  cluster.Pump();

  // The network quiesces with the payload parked, not lost.
  EXPECT_TRUE(cluster.network().Idle());
  EXPECT_EQ(cluster.network().HeldCount(), 1u);
  EXPECT_EQ(cluster.network().stats().For(MsgKind::kAddressChange).delivered, 0u);
  EXPECT_EQ(cluster.network().stats().For(MsgKind::kAddressChange).parked, 1u);

  // Restart re-registers the node with the network, which replays the parked
  // payload; the fresh incarnation acks it back to node 0 (whose reclaim
  // engine must shrug off the stray ack — it never started round 7).
  cluster.RestartNode(1);
  cluster.Pump();
  const NetworkStats& stats = cluster.network().stats();
  EXPECT_EQ(stats.For(MsgKind::kAddressChange).delivered, 1u);
  EXPECT_EQ(stats.For(MsgKind::kAddressChange).redelivered, 1u);
  EXPECT_EQ(stats.TotalRedelivered(), 1u);
  EXPECT_EQ(cluster.network().HeldCount(), 0u);
  EXPECT_EQ(cluster.network().UnackedCount(), 0u);
  // The replayed copy is extra wire traffic on top of the logical send.
  EXPECT_GT(stats.For(MsgKind::kAddressChange).wire_bytes,
            stats.For(MsgKind::kAddressChange).bytes);
}

TEST(Redelivery, RetransmitCountersVisibleUnderForcedLoss) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr obj = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(obj));
  m0.WriteWord(obj, 0, 42);
  m0.Release(obj);
  m0.AddRoot(obj);

  // Lose the first few reliable transmissions; the acquire still completes
  // inside its own pump because the retransmission timers fire there.
  cluster.network().ForceDropReliableTransmissions(2);
  ASSERT_TRUE(m1.AcquireRead(obj));
  EXPECT_EQ(m1.ReadWord(obj, 0), 42u);
  m1.Release(obj);
  EXPECT_GE(cluster.network().stats().TotalRetransmits(), 2u);
  EXPECT_GE(cluster.network().stats().TotalWireBytes(), cluster.network().stats().TotalBytes());
}

TEST(Redelivery, PartitionedAcquireCompletesAfterHeal) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr obj = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(obj));
  m0.WriteWord(obj, 0, 9);
  m0.Release(obj);
  m0.AddRoot(obj);

  cluster.PartitionNodes(0, 1);
  // The acquire request cannot cross the partition: the pump quiesces with
  // the request waiting in the retransmission buffer and the acquire fails.
  EXPECT_FALSE(m1.AcquireRead(obj));
  EXPECT_GT(cluster.network().UnackedCount(), 0u);

  cluster.HealPartition(0, 1);
  cluster.Pump();  // the parked request flows now; the grant completes it
  ASSERT_TRUE(m1.AcquireRead(obj));
  EXPECT_EQ(m1.ReadWord(obj, 0), 9u);
  m1.Release(obj);
  EXPECT_EQ(cluster.network().UnackedCount(), 0u);
  EXPECT_GT(cluster.network().stats().TotalRetransmits(), 0u);
}

}  // namespace
}  // namespace bmx
