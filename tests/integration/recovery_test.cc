// Persistence and crash recovery (paper §2.1/§8 plus docs/PROTOCOLS.md
// "Crash recovery & fault model"): segments are backed by files through RVM; a
// checkpointed bunch survives a node crash; objects not reachable from the
// persistent root are not kept (persistence by reachability).  A restarted
// node runs RecoveryManager::RunRecovery() end to end — log replay, manifest
// reload, object re-adoption, SSP rebuild and peer reconciliation.

#include <gtest/gtest.h>

#include "src/common/perf_counters.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/runtime/oracle.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

TEST(Recovery, CheckpointedBunchSurvivesCrash) {
  Cluster cluster({.num_nodes = 1});
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr head;
  {
    Mutator m(&cluster.node(0));
    GraphBuilder builder(&cluster, &m);
    head = builder.BuildList(bunch, 25);
    m.AddRoot(head);
    cluster.node(0).CheckpointBunch(bunch);
  }

  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.recovery().RunRecovery();
  EXPECT_EQ(fresh.recovery().RecoveredBunches(), std::vector<BunchId>{bunch});

  // The whole list is intact.
  Mutator m(&fresh);
  Gaddr cur = head;
  size_t len = 0;
  while (cur != kNullAddr) {
    ASSERT_TRUE(m.AcquireRead(cur));
    EXPECT_EQ(m.ReadWord(cur, 1), len + 1);
    Gaddr next = m.ReadRef(cur, 0);
    m.Release(cur);
    cur = next;
    len++;
  }
  EXPECT_EQ(len, 25u);
}

TEST(Recovery, UncheckpointedChangesAreLost) {
  Cluster cluster({.num_nodes = 1});
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr obj;
  {
    Mutator m(&cluster.node(0));
    obj = m.Alloc(bunch, 2);
    m.WriteWord(obj, 0, 111);
    cluster.node(0).CheckpointBunch(bunch);
    // Post-checkpoint mutation, never persisted.
    m.WriteWord(obj, 0, 222);
  }
  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.recovery().RunRecovery();
  Mutator m(&fresh);
  ASSERT_TRUE(m.AcquireRead(obj));
  EXPECT_EQ(m.ReadWord(obj, 0), 111u);  // checkpointed value, not 222
  m.Release(obj);
}

TEST(Recovery, PersistenceByReachability) {
  // Only objects reachable from the persistent root should reach disk: run a
  // BGC (reclaiming garbage) before checkpointing, then compare live bytes.
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr persistent_root = builder.BuildList(bunch, 10);
  m.AddRoot(persistent_root);
  builder.BuildList(bunch, 100);  // unreachable: must not be persisted

  cluster.node(0).gc().CollectBunch(bunch);
  cluster.node(0).gc().ReclaimFromSpaces(bunch);
  cluster.Pump();
  cluster.node(0).CheckpointBunch(bunch);

  // Everything persisted fits in the to-space segment; the garbage (100
  // objects) was reclaimed before hitting the disk.
  size_t live = cluster.node(0).gc().LiveBytesOf(bunch);
  EXPECT_LE(live, 10 * ObjectFootprintBytes(2) + ObjectFootprintBytes(2));
  // Disk holds only the collected segments (from-space files were never
  // written for this bunch because the checkpoint ran after reclamation).
  size_t data_files = 0;
  for (const auto& name : cluster.disk().ListFiles()) {
    if (name.find(".data") != std::string::npos) {
      data_files++;
    }
  }
  EXPECT_EQ(data_files, cluster.node(0).store().SegmentsOfBunch(bunch).size());
}

TEST(Recovery, CheckpointTwiceKeepsLatest) {
  Cluster cluster({.num_nodes = 1});
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr obj;
  {
    Mutator m(&cluster.node(0));
    obj = m.Alloc(bunch, 1);
    m.WriteWord(obj, 0, 1);
    cluster.node(0).CheckpointBunch(bunch);
    m.WriteWord(obj, 0, 2);
    cluster.node(0).CheckpointBunch(bunch);
  }
  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.recovery().RunRecovery();
  Mutator m(&fresh);
  ASSERT_TRUE(m.AcquireRead(obj));
  EXPECT_EQ(m.ReadWord(obj, 0), 2u);
  m.Release(obj);
}

TEST(Recovery, SurvivingNodesContinueAfterPeerCrash) {
  Cluster cluster({.num_nodes = 3});
  Mutator m0(&cluster.node(0));
  Mutator m2(&cluster.node(2));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 5);
  m0.Release(a);
  m0.AddRoot(a);

  cluster.CrashNode(1);
  // Node 2 can still fault the object in from its owner.
  ASSERT_TRUE(m2.AcquireRead(a));
  EXPECT_EQ(m2.ReadWord(a, 0), 5u);
  m2.Release(a);
}

TEST(Recovery, PeerReconciliationRestoresReadersAndCopySets) {
  // Node 0 owns an object, node 1 holds a read token.  Node 0 crashes and
  // recovers; the reconciliation must re-learn node 1's replica (copy-set +
  // entering ownerPtr) so invalidation still reaches it on the next write.
  Cluster cluster({.num_nodes = 2});
  cluster.perf() = PerfCounters{};
  BunchId bunch = cluster.CreateBunch(0);
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  Gaddr a = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 5);
  m0.Release(a);
  m0.AddRoot(a);
  cluster.node(0).CheckpointBunch(bunch);
  ASSERT_TRUE(m1.AcquireRead(a));
  EXPECT_EQ(m1.ReadWord(a, 0), 5u);
  m1.Release(a);
  cluster.Pump();

  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.recovery().RunRecovery();
  EXPECT_GE(cluster.perf().recoveries, 1u);
  EXPECT_GT(cluster.perf().recovery_query_bytes, 0u);

  // Node 1's read token survived and is accounted again.
  Oid oid = cluster.directory().OidAtAddress(a);
  ASSERT_NE(oid, kNullOid);
  EXPECT_EQ(cluster.node(1).dsm().StateOf(oid), TokenState::kRead);

  // A fresh write at the recovered owner must invalidate node 1's copy.
  Mutator m0b(&fresh);
  ASSERT_TRUE(m0b.AcquireWrite(a));
  m0b.WriteWord(a, 0, 6);
  m0b.Release(a);
  cluster.Pump();
  ASSERT_TRUE(m1.AcquireRead(a));
  EXPECT_EQ(m1.ReadWord(a, 0), 6u);
  m1.Release(a);

  InvariantOracle oracle(&cluster);
  EXPECT_TRUE(oracle.Check().empty());
}

TEST(Recovery, OwnershipTransferredBeforeCrashIsNotReclaimed) {
  // Node 0 creates and checkpoints an object, then node 1 write-acquires it
  // (ownership moves).  Node 0 crashes and recovers: its checkpointed claim
  // is stale — the directory names node 1, so node 0 must come back as a
  // tokenless replica, not a second owner.
  Cluster cluster({.num_nodes = 2});
  BunchId bunch = cluster.CreateBunch(0);
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  Gaddr a = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 7);
  m0.Release(a);
  m0.AddRoot(a);
  cluster.node(0).CheckpointBunch(bunch);

  ASSERT_TRUE(m1.AcquireWrite(a));
  m1.WriteWord(a, 0, 8);
  m1.Release(a);
  m1.AddRoot(a);
  cluster.Pump();

  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.recovery().RunRecovery();

  Oid oid = cluster.directory().OidAtAddress(a);
  ASSERT_NE(oid, kNullOid);
  EXPECT_FALSE(fresh.dsm().IsLocallyOwned(oid));
  EXPECT_EQ(cluster.directory().OwnerOf(oid), 1u);
  InvariantOracle oracle(&cluster);
  std::vector<std::string> violations = oracle.Check();
  EXPECT_TRUE(violations.empty()) << violations.front();

  // The recovered replica re-acquires through the real owner and sees the
  // latest committed value.
  Mutator m0b(&fresh);
  ASSERT_TRUE(m0b.AcquireRead(a));
  EXPECT_EQ(m0b.ReadWord(a, 0), 8u);
  m0b.Release(a);
}

TEST(Recovery, VacuousOwnershipIsForgotten) {
  // An allocation that never reached a checkpoint dies with the node: after
  // recovery the directory must not keep routing acquires to an owner with
  // no bytes.
  Cluster cluster({.num_nodes = 2});
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a;
  {
    Mutator m0(&cluster.node(0));
    a = m0.Alloc(bunch, 2);
    // No checkpoint: the object exists only in volatile state.
  }
  Oid oid = cluster.directory().OidAtAddress(a);
  ASSERT_NE(oid, kNullOid);
  ASSERT_EQ(cluster.directory().OwnerOf(oid), 0u);

  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.recovery().RunRecovery();

  EXPECT_EQ(cluster.directory().OwnerOf(oid), kInvalidNode);
  InvariantOracle oracle(&cluster);
  EXPECT_TRUE(oracle.Check().empty());

  // Acquiring the dangling address fails cleanly instead of wedging.
  Mutator m1(&cluster.node(1));
  EXPECT_FALSE(m1.AcquireRead(a));
}

TEST(Recovery, InterBunchSspsSurviveScionNodeCrash) {
  // Node 1 holds an inter-bunch stub whose scion lives on node 0.  Node 0
  // crashes and recovers: reconciliation must recreate the scion (from node
  // 1's surviving stub), or node 0's next BGC could reclaim a remotely
  // referenced object.
  Cluster cluster({.num_nodes = 2});
  BunchId b0 = cluster.CreateBunch(0);
  BunchId b1 = cluster.CreateBunch(1);
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  Gaddr target = m0.Alloc(b0, 2);
  ASSERT_TRUE(m0.AcquireWrite(target));
  m0.WriteWord(target, 0, 9);
  m0.Release(target);
  cluster.node(0).CheckpointBunch(b0);

  Gaddr holder = m1.Alloc(b1, 2);
  m1.AddRoot(holder);
  ASSERT_TRUE(m1.AcquireWrite(holder));
  m1.WriteRef(holder, 0, target);  // cross-bunch: stub at 1, scion at 0
  m1.Release(holder);
  cluster.Pump();

  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.recovery().RunRecovery();

  // The scion is back; a BGC at node 0 with no local root for `target` must
  // keep it alive (the scion is the root).
  fresh.gc().CollectBunch(b0);
  cluster.Pump();
  ASSERT_TRUE(m1.AcquireRead(holder));
  Gaddr ref = m1.ReadRef(holder, 0);
  m1.Release(holder);
  Mutator m0b(&fresh);
  ASSERT_TRUE(m0b.AcquireRead(ref));
  EXPECT_EQ(m0b.ReadWord(ref, 0), 9u);
  m0b.Release(ref);

  InvariantOracle oracle(&cluster);
  std::vector<std::string> violations = oracle.Check();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(Recovery, StaleWireCopiesFromPreviousLifeAreRejected) {
  // Epoch filtering: wire copies emitted by a node's previous life must not
  // reach handlers after the node recovers.
  Cluster cluster({.num_nodes = 2});
  cluster.perf() = PerfCounters{};
  BunchId bunch = cluster.CreateBunch(0);
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  Gaddr a = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 1);
  m0.Release(a);
  m0.AddRoot(a);
  cluster.node(0).CheckpointBunch(bunch);

  // Leave a grant from node 0 in flight, then crash node 0 before delivery.
  m1.AcquireRead(a);  // may complete: the pump delivers everything
  cluster.node(1).dsm().BeginAcquire(a, /*write=*/true);
  // The acquire request is now queued toward node 0; deliver it so node 0
  // emits a grant, then crash node 0 with the grant still on the wire.
  while (cluster.network().DeliverOne()) {
    if (cluster.network().stats().For(MsgKind::kGrant).sent > 1) {
      break;
    }
  }
  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.recovery().RunRecovery();
  cluster.Pump();
  EXPECT_EQ(cluster.network().stats().For(MsgKind::kGrant).delivered,
            cluster.network().stats().For(MsgKind::kGrant).sent -
                cluster.network().stats().For(MsgKind::kGrant).epoch_rejected);
}

}  // namespace
}  // namespace bmx
