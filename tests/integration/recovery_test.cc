// Persistence and crash recovery (paper §2.1/§8): segments are backed by
// files through RVM; a checkpointed bunch survives a node crash; objects not
// reachable from the persistent root are not kept (persistence by
// reachability).

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

// Re-registers recovered objects with the DSM layer so a restarted node owns
// what it created (crash-recovery of token state is outside the paper's
// scope; creator-owns is the natural post-recovery state for a single-node
// restart).
void AdoptRecoveredSegment(Node* node, SegmentImage* image, BunchId bunch) {
  image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
    if (!header.forwarded()) {
      node->dsm().RegisterNewObject(header.oid, addr, bunch);
    } else {
      node->store().SetAddrOfOid(header.oid, header.forward);
    }
  });
}

TEST(Recovery, CheckpointedBunchSurvivesCrash) {
  Cluster cluster({.num_nodes = 1});
  BunchId bunch = cluster.CreateBunch(0);
  std::vector<SegmentId> segments;
  Gaddr head;
  {
    Mutator m(&cluster.node(0));
    GraphBuilder builder(&cluster, &m);
    head = builder.BuildList(bunch, 25);
    m.AddRoot(head);
    cluster.node(0).CheckpointBunch(bunch);
    segments = cluster.node(0).store().SegmentsOfBunch(bunch);
  }

  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.persistence().Recover();
  for (SegmentId seg : segments) {
    SegmentImage& image = fresh.store().GetOrCreate(seg, bunch);
    ASSERT_TRUE(fresh.persistence().LoadSegment(&image));
    AdoptRecoveredSegment(&fresh, &image, bunch);
  }
  fresh.gc().RegisterBunchReplica(bunch);

  // The whole list is intact.
  Mutator m(&fresh);
  Gaddr cur = head;
  size_t len = 0;
  while (cur != kNullAddr) {
    ASSERT_TRUE(m.AcquireRead(cur));
    EXPECT_EQ(m.ReadWord(cur, 1), len + 1);
    Gaddr next = m.ReadRef(cur, 0);
    m.Release(cur);
    cur = next;
    len++;
  }
  EXPECT_EQ(len, 25u);
}

TEST(Recovery, UncheckpointedChangesAreLost) {
  Cluster cluster({.num_nodes = 1});
  BunchId bunch = cluster.CreateBunch(0);
  SegmentId seg;
  Gaddr obj;
  {
    Mutator m(&cluster.node(0));
    obj = m.Alloc(bunch, 2);
    m.WriteWord(obj, 0, 111);
    cluster.node(0).CheckpointBunch(bunch);
    // Post-checkpoint mutation, never persisted.
    m.WriteWord(obj, 0, 222);
    seg = SegmentOf(obj);
  }
  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.persistence().Recover();
  SegmentImage& image = fresh.store().GetOrCreate(seg, bunch);
  ASSERT_TRUE(fresh.persistence().LoadSegment(&image));
  AdoptRecoveredSegment(&fresh, &image, bunch);
  Mutator m(&fresh);
  ASSERT_TRUE(m.AcquireRead(obj));
  EXPECT_EQ(m.ReadWord(obj, 0), 111u);  // checkpointed value, not 222
  m.Release(obj);
}

TEST(Recovery, PersistenceByReachability) {
  // Only objects reachable from the persistent root should reach disk: run a
  // BGC (reclaiming garbage) before checkpointing, then compare live bytes.
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr persistent_root = builder.BuildList(bunch, 10);
  m.AddRoot(persistent_root);
  builder.BuildList(bunch, 100);  // unreachable: must not be persisted

  cluster.node(0).gc().CollectBunch(bunch);
  cluster.node(0).gc().ReclaimFromSpaces(bunch);
  cluster.Pump();
  cluster.node(0).CheckpointBunch(bunch);

  // Everything persisted fits in the to-space segment; the garbage (100
  // objects) was reclaimed before hitting the disk.
  size_t live = cluster.node(0).gc().LiveBytesOf(bunch);
  EXPECT_LE(live, 10 * ObjectFootprintBytes(2) + ObjectFootprintBytes(2));
  // Disk holds only the collected segments (from-space files were never
  // written for this bunch because the checkpoint ran after reclamation).
  size_t data_files = 0;
  for (const auto& name : cluster.disk().ListFiles()) {
    if (name.find(".data") != std::string::npos) {
      data_files++;
    }
  }
  EXPECT_EQ(data_files, cluster.node(0).store().SegmentsOfBunch(bunch).size());
}

TEST(Recovery, CheckpointTwiceKeepsLatest) {
  Cluster cluster({.num_nodes = 1});
  BunchId bunch = cluster.CreateBunch(0);
  SegmentId seg;
  Gaddr obj;
  {
    Mutator m(&cluster.node(0));
    obj = m.Alloc(bunch, 1);
    seg = SegmentOf(obj);
    m.WriteWord(obj, 0, 1);
    cluster.node(0).CheckpointBunch(bunch);
    m.WriteWord(obj, 0, 2);
    cluster.node(0).CheckpointBunch(bunch);
  }
  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.persistence().Recover();
  SegmentImage& image = fresh.store().GetOrCreate(seg, bunch);
  ASSERT_TRUE(fresh.persistence().LoadSegment(&image));
  AdoptRecoveredSegment(&fresh, &image, bunch);
  Mutator m(&fresh);
  ASSERT_TRUE(m.AcquireRead(obj));
  EXPECT_EQ(m.ReadWord(obj, 0), 2u);
  m.Release(obj);
}

TEST(Recovery, SurvivingNodesContinueAfterPeerCrash) {
  Cluster cluster({.num_nodes = 3});
  Mutator m0(&cluster.node(0));
  Mutator m2(&cluster.node(2));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 5);
  m0.Release(a);
  m0.AddRoot(a);

  cluster.CrashNode(1);
  // Node 2 can still fault the object in from its owner.
  ASSERT_TRUE(m2.AcquireRead(a));
  EXPECT_EQ(m2.ReadWord(a, 0), 5u);
  m2.Release(a);
}

}  // namespace
}  // namespace bmx
