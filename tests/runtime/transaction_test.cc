// Tests for the transactions extension (§10 future work): abort unwinds
// in-memory writes, commit survives a crash, and the interplay with tokens,
// the write barrier and the collector stays coherent.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/runtime/transaction.h"

namespace bmx {
namespace {

void AdoptRecoveredSegment(Node* node, SegmentImage* image, BunchId bunch) {
  image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
    if (!header.forwarded()) {
      node->dsm().RegisterNewObject(header.oid, addr, bunch);
    } else {
      node->store().SetAddrOfOid(header.oid, header.forward);
    }
  });
}

TEST(Transaction, AbortRestoresWordsAndRefs) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(bunch, 3);
  Gaddr t1 = m.Alloc(bunch, 1);
  Gaddr t2 = m.Alloc(bunch, 1);
  m.WriteWord(a, 0, 100);
  m.WriteRef(a, 1, t1);

  {
    Transaction tx(&m, &cluster.node(0), bunch);
    tx.WriteWord(a, 0, 200);
    tx.WriteRef(a, 1, t2);
    tx.WriteWord(a, 2, 300);
    EXPECT_EQ(m.ReadWord(a, 0), 200u);  // visible inside the transaction
    tx.Abort();
  }
  EXPECT_EQ(m.ReadWord(a, 0), 100u);
  EXPECT_TRUE(m.SameObject(m.ReadRef(a, 1), t1));
  EXPECT_EQ(m.ReadWord(a, 2), 0u);
}

TEST(Transaction, DestructorAborts) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(bunch, 1);
  m.WriteWord(a, 0, 7);
  {
    Transaction tx(&m, &cluster.node(0), bunch);
    tx.WriteWord(a, 0, 8);
  }  // falls out of scope uncommitted
  EXPECT_EQ(m.ReadWord(a, 0), 7u);
}

TEST(Transaction, OverlappingWritesUnwindInOrder) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(bunch, 1);
  m.WriteWord(a, 0, 1);
  Transaction tx(&m, &cluster.node(0), bunch);
  tx.WriteWord(a, 0, 2);
  tx.WriteWord(a, 0, 3);
  tx.WriteWord(a, 0, 4);
  tx.Abort();
  EXPECT_EQ(m.ReadWord(a, 0), 1u);
}

TEST(Transaction, CommitSurvivesCrash) {
  Cluster cluster({.num_nodes = 1});
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a;
  std::vector<SegmentId> segments;
  {
    Mutator m(&cluster.node(0));
    a = m.Alloc(bunch, 2);
    Transaction tx(&m, &cluster.node(0), bunch);
    tx.WriteWord(a, 0, 4242);
    tx.Commit();
    // A later uncommitted mutation must not survive.
    m.WriteWord(a, 0, 9999);
    segments = cluster.node(0).store().SegmentsOfBunch(bunch);
  }
  cluster.CrashNode(0);
  Node& fresh = cluster.RestartNode(0);
  fresh.persistence().Recover();
  for (SegmentId seg : segments) {
    SegmentImage& image = fresh.store().GetOrCreate(seg, bunch);
    ASSERT_TRUE(fresh.persistence().LoadSegment(&image));
    AdoptRecoveredSegment(&fresh, &image, bunch);
  }
  Mutator m(&fresh);
  ASSERT_TRUE(m.AcquireRead(a));
  EXPECT_EQ(m.ReadWord(a, 0), 4242u);
  m.Release(a);
}

TEST(Transaction, AbortedAllocationBecomesGarbage) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr keeper = m.Alloc(bunch, 2);
  m.AddRoot(keeper);
  {
    Transaction tx(&m, &cluster.node(0), bunch);
    Gaddr temp = tx.Alloc(1);
    tx.WriteRef(keeper, 0, temp);
    tx.Abort();  // the keeper's ref is unwound; temp is unreachable
  }
  EXPECT_EQ(m.ReadRef(keeper, 0), kNullAddr);
  cluster.node(0).gc().CollectBunch(bunch);
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 1u);
}

TEST(Transaction, AbortUnwindsInterBunchSspCorrectly) {
  // A cross-bunch reference created inside an aborted transaction leaves a
  // stub that the next BGC filters out (the slot no longer holds it).
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);
  Gaddr src = m.Alloc(b1, 1);
  Gaddr dst = m.Alloc(b2, 1);
  m.AddRoot(src);
  {
    Transaction tx(&m, &cluster.node(0), b1);
    tx.WriteRef(src, 0, dst);
    tx.Abort();
  }
  cluster.node(0).gc().CollectBunch(b1);
  EXPECT_TRUE(cluster.node(0).gc().TablesOf(b1).inter_stubs.empty());
  cluster.node(0).gc().CollectBunch(b2);
  EXPECT_GE(cluster.node(0).gc().stats().objects_reclaimed, 1u);  // dst dies
}

TEST(HeapReport, AccountsLiveForwarderAndDeadBytes) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr live = m.Alloc(bunch, 2);
  m.AddRoot(live);
  m.Alloc(bunch, 4);  // garbage

  auto before = cluster.node(0).gc().ReportOf(bunch);
  EXPECT_EQ(before.live_objects, 1u);
  EXPECT_EQ(before.forwarders, 0u);
  EXPECT_GT(before.allocated_bytes, before.live_bytes);

  cluster.node(0).gc().CollectBunch(bunch);
  auto after = cluster.node(0).gc().ReportOf(bunch);
  // The live object moved to to-space; a forwarder remains in from-space.
  EXPECT_EQ(after.live_objects, 1u);
  EXPECT_EQ(after.forwarders, 1u);

  cluster.node(0).gc().ReclaimFromSpaces(bunch);
  cluster.Pump();
  auto reclaimed = cluster.node(0).gc().ReportOf(bunch);
  EXPECT_EQ(reclaimed.forwarders, 0u);
  EXPECT_EQ(reclaimed.live_objects, 1u);
  EXPECT_GE(reclaimed.Utilization(), 0.5);
}

}  // namespace
}  // namespace bmx
