// Cluster/runtime plumbing tests: message routing between protocol engines,
// crash/restart mechanics, explicit GGC groups, and cleaner-mode plumbing.

#include <gtest/gtest.h>

#include "src/baselines/payloads.h"
#include "src/common/fault_injector.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

TEST(Cluster, OptionsPropagateToNodes) {
  Cluster cluster({.num_nodes = 3,
                   .copyset_mode = CopySetMode::kDistributed,
                   .cleaner_mode = CleanerMode::kDeferred});
  EXPECT_EQ(cluster.size(), 3u);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.node(n).dsm().mode(), CopySetMode::kDistributed);
  }
}

TEST(Cluster, CrashedNodeIsUnreachableAndRestartable) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 1);
  m0.AddRoot(a);

  cluster.CrashNode(1);
  EXPECT_DEATH(cluster.node(1), "crashed");
  Node& back = cluster.RestartNode(1);
  EXPECT_EQ(back.id(), 1u);
  // The restarted node participates again.
  Mutator m1(&back);
  EXPECT_TRUE(m1.AcquireRead(a));
  m1.Release(a);
}

TEST(Cluster, MessagesToCrashedNodeAreParkedNotDelivered) {
  Cluster cluster({.num_nodes = 3});
  Mutator m0(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 1);
  {
    // Scoped: a Mutator holds a pointer into its Node and must not outlive
    // the crash below (its destructor deregisters with the node's GC).
    Mutator m2(&cluster.node(2));
    ASSERT_TRUE(m2.AcquireRead(a));
    m2.Release(a);
  }

  // Node 2 crashes holding a read token; the owner's next acquire sends
  // traffic into the outage.  The owner must not deadlock: no ack can come
  // while node 2 is down, so the acquire cannot complete — but the network
  // quiesces, with the reliable traffic parked for redelivery rather than
  // delivered to a dead node.
  cluster.CrashNode(2);
  cluster.node(0).dsm().BeginAcquire(a, /*write=*/false);  // harmless probe
  cluster.Pump();
  EXPECT_TRUE(cluster.network().Idle());
}

TEST(Cluster, ExplicitGgcGroupCollectsOnlyItsCycles) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);
  BunchId b3 = cluster.CreateBunch(0);
  builder.BuildCrossBunchCycle({b1, b2});  // garbage in {b1,b2}
  builder.BuildCrossBunchCycle({b2, b3});  // garbage spanning into b3

  // Group {b1,b2}: only the first ring dies — the second ring's scions
  // originate (partly) outside the group.
  cluster.node(0).gc().CollectGroup({b1, b2});
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 2u);

  // The full locality group takes the rest.
  cluster.node(0).gc().CollectGroup();
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 4u);
}

TEST(Cluster, NodeRoutesUnknownKindsToExtraHandlerCheck) {
  Cluster cluster({.num_nodes = 2});
  // No baseline agent installed: delivering a baseline-kind message must
  // trip the router's check rather than corrupt anything.
  auto payload = std::make_shared<StwResumePayload>();
  cluster.network().Send(0, 1, std::move(payload));
  EXPECT_DEATH(cluster.Pump(), "no handler");
}

// RunUntilIdle must quiesce with a partition un-healed AND a crash fault
// armed at the same time: the two outage mechanisms interact (parked
// partition traffic, a mid-pump crash converting more traffic to held, and a
// still-armed never-firing schedule) and none of them may leave the pump
// spinning or owing a reachable retransmission.
TEST(Cluster, QuiescesUnderUnhealedPartitionWithArmedCrashFault) {
  FaultInjector::Global().Reset();
  Cluster cluster({.num_nodes = 3});
  Mutator m0(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 1);
  m0.AddRoot(a);
  {
    // Scoped: these mutators must not outlive node 2's crash below.
    Mutator m1(&cluster.node(1));
    Mutator m2(&cluster.node(2));
    ASSERT_TRUE(m1.AcquireRead(a));
    m1.Release(a);
    ASSERT_TRUE(m2.AcquireRead(a));
    m2.Release(a);
  }
  cluster.Pump();

  // Node 1 is unreachable; node 2 dies mid-handler when the owner's
  // invalidation reaches it (the network converts the signal to a crash).
  cluster.PartitionNodes(0, 1);
  FaultInjector::Global().Arm("dsm.invalidate.pre_ack", /*node=*/2, /*kth_hit=*/1);
  // An armed schedule that never matches must not block quiescence either.
  FaultInjector::Global().Arm("dsm.grant.pre_send", /*node=*/1, /*kth_hit=*/50);

  // Owner-side write upgrade: starts the copyset invalidation and pumps
  // internally.  It cannot complete — node 1's ack is parked behind the
  // partition and node 2 dies before acking — so it must return false
  // without wedging the pump.
  EXPECT_FALSE(cluster.node(0).dsm().AcquireWrite(a));
  cluster.Pump();

  EXPECT_TRUE(cluster.network().Idle());
  EXPECT_FALSE(cluster.IsAlive(2));
  // The invalidations are owed: parked behind the partition (node 1) and
  // held for the dead node (node 2) — but nothing reachable is left owing.
  EXPECT_GT(cluster.network().UnackedCount(), 0u);
  EXPECT_EQ(cluster.network().ReachableUnackedCount(), 0u);

  // Healing the partition drains node 1's share without touching node 2's.
  cluster.HealPartition(0, 1);
  cluster.Pump();
  EXPECT_TRUE(cluster.network().Idle());
  EXPECT_EQ(cluster.network().ReachableUnackedCount(), 0u);
  EXPECT_EQ(cluster.network().UnackedCount(), cluster.network().HeldCount());

  // And a restarted node 2 absorbs the rest: fully drained.
  FaultInjector::Global().Reset();
  cluster.RestartNode(2);
  cluster.Pump();
  EXPECT_TRUE(cluster.network().Idle());
  EXPECT_EQ(cluster.network().UnackedCount(), 0u);
}

TEST(Cluster, SharedDiskSurvivesAllCrashes) {
  Cluster cluster({.num_nodes = 2});
  BunchId bunch = cluster.CreateBunch(0);
  {
    Mutator m(&cluster.node(0));
    Gaddr a = m.Alloc(bunch, 1);
    m.WriteWord(a, 0, 31337);
    m.AddRoot(a);
    cluster.node(0).CheckpointBunch(bunch);
  }
  cluster.CrashNode(0);
  cluster.CrashNode(1);
  cluster.RestartNode(0);
  cluster.RestartNode(1);
  EXPECT_GT(cluster.disk().ListFiles().size(), 0u);
}

}  // namespace
}  // namespace bmx
