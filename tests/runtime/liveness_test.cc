// Liveness oracle tests: the obligation ledger's bookkeeping, the planted
// zombie-grant livelock caught end-to-end through the Explorer (found,
// shrunk, replayed at multiple thread counts), and clean scenarios staying
// clean with liveness checking on — including under gray-failure profiles
// with latency and loss (the excuse rules must not false-positive on slow).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/obligations.h"
#include "src/common/task_pool.h"
#include "src/net/gray_failure.h"
#include "src/runtime/liveness.h"
#include "src/runtime/scenarios.h"

namespace bmx {
namespace {

// Restores the pool thread count on scope exit (mirrors task_pool_test.cc).
struct PoolGuard {
  ~PoolGuard() { TaskPool::SetThreadsForTesting(TaskPool::EnvThreads()); }
};

bool AnyLivenessViolation(const std::vector<std::string>& violations) {
  for (const std::string& v : violations) {
    if (v.find("liveness: ") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// --- ObligationTracker ledger basics ---

TEST(ObligationTracker, DisabledFastPathRecordsNothing) {
  ObligationTracker tracker;
  tracker.Open(ObligationKind::kAcquire, 1, 0);
  EXPECT_EQ(tracker.OpenCount(), 0u);
  EXPECT_FALSE(tracker.IsOpen(ObligationKind::kAcquire, 1, 0));
  tracker.Close(ObligationKind::kAcquire, 1, 0);
  EXPECT_EQ(tracker.retired(), 0u);
}

TEST(ObligationTracker, OpenCloseRetiresAndIsIdempotent) {
  uint64_t clock = 5;
  ObligationTracker tracker;
  tracker.AttachClock(&clock);
  tracker.Enable(/*deadline_ticks=*/100);
  tracker.Open(ObligationKind::kInvalidation, 2, 77);
  clock = 9;
  // Re-open keeps the original opened_at: the oldest promise is the one
  // whose age matters.
  tracker.Open(ObligationKind::kInvalidation, 2, 77);
  ASSERT_EQ(tracker.OpenCount(), 1u);
  std::vector<Obligation> open = tracker.Snapshot();
  EXPECT_EQ(open[0].opened_at, 5u);
  EXPECT_EQ(open[0].deadline, 105u);
  tracker.Close(ObligationKind::kInvalidation, 2, 77);
  EXPECT_EQ(tracker.OpenCount(), 0u);
  EXPECT_EQ(tracker.retired(), 1u);
  // Closing an absent obligation is a no-op, not progress.
  tracker.Close(ObligationKind::kInvalidation, 2, 77);
  EXPECT_EQ(tracker.retired(), 1u);
}

TEST(ObligationTracker, DropNodeRetiresWithoutCountingProgress) {
  uint64_t clock = 0;
  ObligationTracker tracker;
  tracker.AttachClock(&clock);
  tracker.Enable();
  tracker.Open(ObligationKind::kAcquire, 1, 0);
  tracker.Open(ObligationKind::kGcReclaim, 1, 3);
  tracker.Open(ObligationKind::kAcquire, 2, 0);
  tracker.DropNode(1);
  EXPECT_EQ(tracker.OpenCount(), 1u);
  EXPECT_TRUE(tracker.IsOpen(ObligationKind::kAcquire, 2, 0));
  EXPECT_EQ(tracker.retired(), 0u);
}

TEST(ObligationTracker, SnapshotAndDumpAreDeterministic) {
  uint64_t clock = 1;
  ObligationTracker tracker;
  tracker.AttachClock(&clock);
  tracker.Enable();
  tracker.Open(ObligationKind::kRecovery, 2, 0);
  tracker.Open(ObligationKind::kAcquire, 1, 0);
  std::vector<Obligation> open = tracker.Snapshot();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(open[0].kind, ObligationKind::kAcquire);
  EXPECT_EQ(open[1].kind, ObligationKind::kRecovery);
  std::string dump = tracker.Dump();
  EXPECT_NE(dump.find("kind=acquire node=1"), std::string::npos);
  EXPECT_NE(dump.find("kind=recovery node=2"), std::string::npos);
}

// --- The planted livelock, end to end through the explorer ---

// Under plain FIFO the zombie-swallowed grant leaves an inexcusable acquire
// obligation open at quiescence; only the liveness oracle can see it (the
// invariant oracle and the consistency checker are silent on this run).
TEST(LivenessExplorer, ZombieCanaryCaughtUnderFifo) {
  ExplorerOptions options;
  options.schedule = ScheduleKind::kFifo;
  options.check_liveness = true;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(ZombieGrantCanaryScenario());
  ASSERT_TRUE(result.violation_found);
  EXPECT_TRUE(AnyLivenessViolation(result.violations))
      << (result.violations.empty() ? "" : result.violations[0]);
  // The verdict names the stuck obligation and carries the ledger dump.
  EXPECT_NE(result.violations[0].find("kind=acquire"), std::string::npos);
  EXPECT_NE(result.violations[0].find("ledger:"), std::string::npos);
}

// Without liveness checking the same run is silent — the livelock is
// invisible to the safety oracles.
TEST(LivenessExplorer, ZombieCanaryInvisibleWithoutLivenessChecking) {
  ExplorerOptions options;
  options.schedule = ScheduleKind::kFifo;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(ZombieGrantCanaryScenario());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
}

// Explorer pipeline end to end under random walks: found, shrunk, and the
// shrunk trace replays to the same verdict at 1 and 4 pool threads.
TEST(LivenessExplorer, ZombieCanaryShrinksAndReplaysAcrossThreadCounts) {
  PoolGuard guard;
  ExplorerOptions options;
  options.schedule = ScheduleKind::kRandomWalk;
  options.num_walks = 8;
  options.check_liveness = true;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(ZombieGrantCanaryScenario());
  ASSERT_TRUE(result.violation_found);
  EXPECT_TRUE(AnyLivenessViolation(result.violations));
  // Schedule-independent livelock: shrinking strips every recorded deviation.
  EXPECT_TRUE(result.shrunk.decisions.empty())
      << result.shrunk.decisions.size() << " decisions survived shrinking";
  for (size_t threads : {1u, 4u}) {
    TaskPool::SetThreadsForTesting(threads);
    RunResult replay = explorer.Replay(ZombieGrantCanaryScenario(), result.shrunk);
    EXPECT_TRUE(replay.violated) << "threads=" << threads;
    EXPECT_TRUE(AnyLivenessViolation(replay.violations)) << "threads=" << threads;
  }
}

// --- No false positives ---

// fig1-4 and the randomized workload, explored with liveness checking on,
// must stay clean: every obligation is discharged or excused.
TEST(LivenessExplorer, CleanScenariosStayClean) {
  std::vector<ExplorerScenario> scenarios = StandardScenarios();
  scenarios.push_back(HistoryWorkloadScenario());
  for (const ExplorerScenario& scenario : scenarios) {
    ExplorerOptions options;
    options.schedule = ScheduleKind::kRandomWalk;
    options.num_walks = 6;
    options.check_liveness = true;
    Explorer explorer(options);
    ExplorationResult result = explorer.Explore(scenario);
    EXPECT_FALSE(result.violation_found)
        << scenario.name << ": "
        << (result.violations.empty() ? "" : result.violations[0]);
  }
}

// Gray-degraded but not gray-failed: latency and loss slow the run down
// (retransmissions, delayed grants) without killing progress, so liveness
// verdicts would be false positives.
TEST(LivenessExplorer, CleanUnderGrayLatencyAndLoss) {
  GraySpec gray;
  std::string error;
  ASSERT_TRUE(GraySpec::Parse("0->1:lat=3,loss=0.2;1->0:lat=2;2->0:dup=0.25",
                              &gray, &error))
      << error;
  std::vector<ExplorerScenario> scenarios = StandardScenarios();
  scenarios.push_back(HistoryWorkloadScenario());
  for (ExplorerScenario& scenario : scenarios) {
    auto inner = scenario.run;
    scenario.run = [inner, gray](Cluster& c) {
      gray.Apply(&c.network());
      inner(c);
    };
    ExplorerOptions options;
    options.schedule = ScheduleKind::kRandomWalk;
    options.num_walks = 4;
    options.check_liveness = true;
    Explorer explorer(options);
    ExplorationResult result = explorer.Explore(scenario);
    EXPECT_FALSE(result.violation_found)
        << scenario.name << ": "
        << (result.violations.empty() ? "" : result.violations[0]);
  }
}

// The gray DSL round-trips and rejects malformed specs.
TEST(GraySpecDsl, ParseAndRoundTrip) {
  GraySpec spec;
  std::string error;
  ASSERT_TRUE(GraySpec::Parse("0->1:lat=4,zombie;zombie=2", &spec, &error)) << error;
  ASSERT_EQ(spec.links.size(), 1u);
  EXPECT_EQ(spec.links[0].profile.latency_ticks, 4u);
  EXPECT_TRUE(spec.links[0].profile.zombie);
  ASSERT_EQ(spec.zombie_nodes.size(), 1u);
  EXPECT_EQ(spec.zombie_nodes[0], 2u);
  EXPECT_EQ(spec.ToString(), "0->1:lat=4,zombie;zombie=2");

  EXPECT_FALSE(GraySpec::Parse("0->0:lat=1", &spec, &error));
  EXPECT_FALSE(GraySpec::Parse("0->1:loss=1.5", &spec, &error));
  EXPECT_FALSE(GraySpec::Parse("0->1:warp=9", &spec, &error));
  EXPECT_FALSE(GraySpec::Parse("nonsense", &spec, &error));
}

}  // namespace
}  // namespace bmx
