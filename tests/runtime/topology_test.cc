// Unit tests for the N-node topology generators (src/runtime/topology.h):
// shape of each kind, connectivity, determinism from the seed, and the
// parsing/naming round trip the CLI knobs rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/runtime/topology.h"

namespace bmx {
namespace {

TEST(Topology, FullIsEveryPair) {
  Topology t = Topology::Make(TopologyKind::kFull, 5);
  EXPECT_EQ(t.EdgeCount(), 10u);
  EXPECT_TRUE(t.Connected());
  for (NodeId a = 0; a < 5; ++a) {
    EXPECT_EQ(t.NeighborsOf(a).size(), 4u);
    for (NodeId b : t.NeighborsOf(a)) {
      EXPECT_NE(a, b);
    }
  }
}

TEST(Topology, RingIsACycle) {
  for (size_t n : {2u, 3u, 16u, 64u}) {
    Topology t = Topology::Make(TopologyKind::kRing, n);
    EXPECT_TRUE(t.Connected()) << n;
    EXPECT_EQ(t.EdgeCount(), n == 2 ? 1u : n) << n;
    for (NodeId a = 0; a < n; ++a) {
      size_t expect = (n <= 3) ? n - 1 : 2;
      EXPECT_EQ(t.NeighborsOf(a).size(), expect) << "n=" << n << " node=" << a;
    }
  }
}

TEST(Topology, StarRoutesThroughHub) {
  Topology t = Topology::Make(TopologyKind::kStar, 9);
  EXPECT_TRUE(t.Connected());
  EXPECT_EQ(t.EdgeCount(), 8u);
  EXPECT_EQ(t.NeighborsOf(0).size(), 8u);
  for (NodeId spoke = 1; spoke < 9; ++spoke) {
    ASSERT_EQ(t.NeighborsOf(spoke).size(), 1u);
    EXPECT_EQ(t.NeighborsOf(spoke)[0], 0u);
  }
}

TEST(Topology, RandomRegularIsConnectedRegularAndSeedDeterministic) {
  for (size_t n : {8u, 16u, 64u}) {
    Topology t = Topology::Make(TopologyKind::kRandomRegular, n, 4, 11);
    EXPECT_TRUE(t.Connected()) << n;
    for (NodeId a = 0; a < n; ++a) {
      // Circulant construction: every node has the same degree.
      EXPECT_EQ(t.NeighborsOf(a).size(), t.NeighborsOf(0).size()) << "n=" << n;
      EXPECT_GE(t.NeighborsOf(a).size(), 2u);
      // Symmetry: a is listed by each of its neighbors.
      for (NodeId b : t.NeighborsOf(a)) {
        const auto& back = t.NeighborsOf(b);
        EXPECT_TRUE(std::find(back.begin(), back.end(), a) != back.end());
      }
    }
    Topology same = Topology::Make(TopologyKind::kRandomRegular, n, 4, 11);
    EXPECT_EQ(t.adjacency, same.adjacency) << n;
  }
  // Different seeds give different graphs (at a size with room to differ).
  Topology a = Topology::Make(TopologyKind::kRandomRegular, 32, 6, 1);
  Topology b = Topology::Make(TopologyKind::kRandomRegular, 32, 6, 2);
  EXPECT_NE(a.adjacency, b.adjacency);
}

TEST(Topology, NeighborOfReturnsANeighbor) {
  Topology t = Topology::Make(TopologyKind::kRandomRegular, 16, 4, 3);
  for (NodeId a = 0; a < 16; ++a) {
    for (uint64_t salt = 0; salt < 8; ++salt) {
      NodeId b = t.NeighborOf(a, salt);
      const auto& nbrs = t.NeighborsOf(a);
      EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end());
    }
  }
  Topology solo = Topology::Make(TopologyKind::kFull, 1);
  EXPECT_EQ(solo.NeighborOf(0, 7), 0u);
}

TEST(Topology, ParseAndNameRoundTrip) {
  for (TopologyKind kind : {TopologyKind::kFull, TopologyKind::kRing, TopologyKind::kStar,
                            TopologyKind::kRandomRegular}) {
    TopologyKind parsed;
    ASSERT_TRUE(ParseTopologyKind(TopologyKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  TopologyKind unused;
  EXPECT_FALSE(ParseTopologyKind("torus", &unused));
}

}  // namespace
}  // namespace bmx
