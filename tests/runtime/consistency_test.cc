// ConsistencyChecker tests: checker verdicts on hand-built histories, the
// planted stale-read bug caught end-to-end through the Explorer (found,
// shrunk, replayed at multiple thread counts), clean sweeps staying clean,
// and the recording-off path leaving traffic fingerprints bit-identical.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/task_pool.h"
#include "src/runtime/consistency_checker.h"
#include "src/runtime/history.h"
#include "src/runtime/scenarios.h"

namespace bmx {
namespace {

// Restores the pool thread count on scope exit (mirrors task_pool_test.cc).
struct PoolGuard {
  ~PoolGuard() { TaskPool::SetThreadsForTesting(TaskPool::EnvThreads()); }
};

bool AnyConsistencyViolation(const std::vector<std::string>& violations) {
  for (const std::string& v : violations) {
    if (v.find("consistency: ") != std::string::npos) {
      return true;
    }
  }
  return false;
}

HistoryEvent Ev(HistoryOp op, Oid oid, uint32_t slot = 0, uint64_t value = 0) {
  HistoryEvent e;
  e.op = op;
  e.oid = oid;
  e.slot = slot;
  e.value = value;
  return e;
}

// --- Vector clock basics ---

TEST(VectorClock, LeqAndConcurrency) {
  VectorClock a{1, 2, 0};
  VectorClock b{1, 3, 0};
  VectorClock c{2, 1, 0};
  EXPECT_TRUE(VcLeq(a, b));
  EXPECT_FALSE(VcLeq(b, a));
  EXPECT_TRUE(VcLeq(a, a));
  EXPECT_FALSE(VcConcurrent(a, b));
  EXPECT_TRUE(VcConcurrent(b, c));
}

TEST(HistoryRecorder, SendDeliverJoinsClocks) {
  HistoryRecorder rec(2);
  rec.Record(0, Ev(HistoryOp::kWrite, 1, 0, 7));
  rec.OnSend(0, 1, 42);
  EXPECT_EQ(rec.ClockOf(1)[0], 0u);  // nothing joined yet
  rec.OnDeliver(0, 1, 42);
  EXPECT_GE(rec.ClockOf(1)[0], 2u);  // write + send ticks visible at node 1
  // Duplicate wire copy: idempotent join.
  VectorClock before = rec.ClockOf(1);
  rec.OnDeliver(0, 1, 42);
  EXPECT_EQ(rec.ClockOf(1)[0], before[0]);
  EXPECT_EQ(rec.TotalEvents(), 1u);
}

// --- Checker verdicts on hand-built histories (no directory) ---

// Two sections on one object from different nodes, one with a write and no
// causal edge between them: the concurrent-conflict check fires.
TEST(ConsistencyChecker, ConcurrentWriterSectionsFlagged) {
  HistoryRecorder rec(2);
  rec.Record(0, Ev(HistoryOp::kAcquireWrite, 5));
  rec.Record(0, Ev(HistoryOp::kWrite, 5, 0, 7));
  rec.Record(0, Ev(HistoryOp::kRelease, 5));
  rec.Record(1, Ev(HistoryOp::kAcquireRead, 5));
  rec.Record(1, Ev(HistoryOp::kRead, 5, 0, 0));
  rec.Record(1, Ev(HistoryOp::kRelease, 5));
  ConsistencyChecker checker(&rec, nullptr);
  std::vector<std::string> violations = checker.Check();
  ASSERT_FALSE(violations.empty());
  bool conflict = false;
  for (const std::string& v : violations) {
    conflict = conflict || v.find("conflict:") != std::string::npos;
  }
  EXPECT_TRUE(conflict) << violations[0];
}

// The same shape with the causal edge restored (writer's release reaches the
// reader before its acquire, and the reader sees the written value): clean.
TEST(ConsistencyChecker, OrderedSectionsAreClean) {
  HistoryRecorder rec(2);
  rec.Record(0, Ev(HistoryOp::kAcquireWrite, 5));
  rec.Record(0, Ev(HistoryOp::kWrite, 5, 0, 7));
  rec.Record(0, Ev(HistoryOp::kRelease, 5));
  rec.OnSend(0, 1, 1);
  rec.OnDeliver(0, 1, 1);  // e.g. the read grant carrying the bytes
  rec.Record(1, Ev(HistoryOp::kAcquireRead, 5));
  rec.Record(1, Ev(HistoryOp::kRead, 5, 0, 7));
  rec.Record(1, Ev(HistoryOp::kRelease, 5));
  ConsistencyChecker checker(&rec, nullptr);
  EXPECT_TRUE(checker.Check().empty());
}

// Two readers with no mutual edge are fine: read-read sections don't
// conflict.
TEST(ConsistencyChecker, ConcurrentReaderSectionsAreClean) {
  HistoryRecorder rec(2);
  rec.Record(0, Ev(HistoryOp::kAcquireRead, 5));
  rec.Record(0, Ev(HistoryOp::kRead, 5, 0, 3));
  rec.Record(0, Ev(HistoryOp::kRelease, 5));
  rec.Record(1, Ev(HistoryOp::kAcquireRead, 5));
  rec.Record(1, Ev(HistoryOp::kRead, 5, 0, 3));
  rec.Record(1, Ev(HistoryOp::kRelease, 5));
  ConsistencyChecker checker(&rec, nullptr);
  EXPECT_TRUE(checker.Check().empty());
}

// Bracket discipline: the creator may access unbracketed (implicit write
// token from allocation); anyone else must be inside a section.
TEST(ConsistencyChecker, CreatorUnbracketedOkOthersNot) {
  HistoryRecorder rec(2);
  rec.Record(0, Ev(HistoryOp::kAlloc, 5, 0, 2));
  rec.Record(0, Ev(HistoryOp::kWrite, 5, 0, 1));  // creator, unbracketed: ok
  ConsistencyChecker clean_checker(&rec, nullptr);
  EXPECT_TRUE(clean_checker.Check().empty());
  rec.OnSend(0, 1, 1);
  rec.OnDeliver(0, 1, 1);
  rec.Record(1, Ev(HistoryOp::kRead, 5, 0, 1));  // non-creator, unbracketed
  ConsistencyChecker checker(&rec, nullptr);
  std::vector<std::string> violations = checker.Check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("bracket:"), std::string::npos) << violations[0];
}

// Release with no open section is a bracket violation too.
TEST(ConsistencyChecker, BareReleaseFlagged) {
  HistoryRecorder rec(1);
  rec.Record(0, Ev(HistoryOp::kRelease, 5));
  ConsistencyChecker checker(&rec, nullptr);
  std::vector<std::string> violations = checker.Check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("bracket:"), std::string::npos) << violations[0];
}

// A stale read: the reader's section is causally after the write section but
// returns the pre-write value.
TEST(ConsistencyChecker, StaleReadValueFlagged) {
  HistoryRecorder rec(2);
  rec.Record(0, Ev(HistoryOp::kAcquireWrite, 5));
  rec.Record(0, Ev(HistoryOp::kWrite, 5, 0, 7));
  rec.Record(0, Ev(HistoryOp::kRelease, 5));
  rec.OnSend(0, 1, 1);
  rec.OnDeliver(0, 1, 1);
  rec.Record(1, Ev(HistoryOp::kAcquireRead, 5));
  rec.Record(1, Ev(HistoryOp::kRead, 5, 0, 1));  // stale: latest hb write is 7
  rec.Record(1, Ev(HistoryOp::kRelease, 5));
  ConsistencyChecker checker(&rec, nullptr);
  std::vector<std::string> violations = checker.Check();
  ASSERT_FALSE(violations.empty());
  bool stale = false;
  for (const std::string& v : violations) {
    stale = stale || v.find("stale-read:") != std::string::npos;
  }
  EXPECT_TRUE(stale) << violations[0];
}

// Intra-section stability: a re-read that changes value with no local write
// in between.
TEST(ConsistencyChecker, IntraSectionReReadInstabilityFlagged) {
  HistoryRecorder rec(1);
  rec.Record(0, Ev(HistoryOp::kAlloc, 5, 0, 2));
  rec.Record(0, Ev(HistoryOp::kAcquireRead, 5));
  rec.Record(0, Ev(HistoryOp::kRead, 5, 0, 1));
  rec.Record(0, Ev(HistoryOp::kRead, 5, 0, 2));  // changed under our feet
  rec.Record(0, Ev(HistoryOp::kRelease, 5));
  ConsistencyChecker checker(&rec, nullptr);
  std::vector<std::string> violations = checker.Check();
  ASSERT_FALSE(violations.empty());
}

// --- End-to-end: the planted stale-read bug through the Explorer ---

// The planted bug is schedule-independent, so even the single FIFO walk finds
// it — but only when consistency checking is on (the traffic itself is
// perfectly ordinary).
TEST(ConsistencyExplorer, PlantedStaleReadCaughtUnderFifo) {
  ExplorerOptions options;
  options.schedule = ScheduleKind::kFifo;
  options.check_consistency = true;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(StaleReadCanaryScenario());
  ASSERT_TRUE(result.violation_found);
  EXPECT_TRUE(AnyConsistencyViolation(result.violations))
      << (result.violations.empty() ? "" : result.violations[0]);
}

// Explorer pipeline end to end under random walks: found, shrunk, and the
// shrunk trace replays to the same verdict at 1 and 4 pool threads.
TEST(ConsistencyExplorer, StaleReadShrinksAndReplaysAcrossThreadCounts) {
  PoolGuard guard;
  ExplorerOptions options;
  options.schedule = ScheduleKind::kRandomWalk;
  options.num_walks = 8;
  options.check_consistency = true;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(StaleReadCanaryScenario());
  ASSERT_TRUE(result.violation_found);
  EXPECT_TRUE(AnyConsistencyViolation(result.violations));
  // Schedule-independent bug: shrinking strips every recorded deviation.
  EXPECT_TRUE(result.shrunk.decisions.empty())
      << result.shrunk.decisions.size() << " decisions survived shrinking";
  for (size_t threads : {1u, 4u}) {
    TaskPool::SetThreadsForTesting(threads);
    RunResult replay = explorer.Replay(StaleReadCanaryScenario(), result.shrunk);
    EXPECT_TRUE(replay.violated) << "threads=" << threads;
    EXPECT_TRUE(AnyConsistencyViolation(replay.violations)) << "threads=" << threads;
  }
}

// Without the planted bug the same scenarios must be silent: fig1-4 plus the
// randomized workload, each under a few random walks with checking on.
TEST(ConsistencyExplorer, CleanScenariosStayClean) {
  std::vector<ExplorerScenario> scenarios = StandardScenarios();
  scenarios.push_back(HistoryWorkloadScenario());
  for (const ExplorerScenario& scenario : scenarios) {
    ExplorerOptions options;
    options.schedule = ScheduleKind::kRandomWalk;
    options.num_walks = 6;
    options.check_consistency = true;
    Explorer explorer(options);
    ExplorationResult result = explorer.Explore(scenario);
    EXPECT_FALSE(result.violation_found)
        << scenario.name << ": "
        << (result.violations.empty() ? "" : result.violations[0]);
  }
}

// Heavier knobs — more nodes, more objects, more GC pressure — still clean.
TEST(ConsistencyExplorer, ScaledWorkloadStaysClean) {
  HistoryWorkloadOptions knobs;
  knobs.num_nodes = 4;
  knobs.objects = 6;
  knobs.ops = 80;
  knobs.gc_chance = 0.2;
  ExplorerOptions options;
  options.schedule = ScheduleKind::kDelayBounded;
  options.num_walks = 4;
  options.check_consistency = true;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(HistoryWorkloadScenario(knobs));
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
}

// --- Zero-overhead-when-disabled contract ---

// Recording must be pure observation: the same FIFO run with and without a
// recorder attached produces bit-identical traffic fingerprints.
TEST(ConsistencyRecording, FingerprintsIdenticalWithRecordingOnAndOff) {
  std::vector<ExplorerScenario> scenarios = StandardScenarios();
  scenarios.push_back(StaleReadCanaryScenario());
  scenarios.push_back(HistoryWorkloadScenario());
  for (const ExplorerScenario& scenario : scenarios) {
    std::string prints[2];
    for (int recording = 0; recording < 2; ++recording) {
      ExplorerOptions options;
      options.schedule = ScheduleKind::kFifo;
      options.check_consistency = recording == 1;
      Explorer explorer(options);
      prints[recording] = explorer.Explore(scenario).fingerprint;
    }
    EXPECT_EQ(prints[0], prints[1]) << scenario.name;
  }
}

// The recorder actually fills up, and the perf counters see both the events
// and the checker verdicts.
TEST(ConsistencyRecording, CountersTrackEventsAndChecks) {
  GlobalPerfCounters().Reset();
  ExplorerOptions options;
  options.schedule = ScheduleKind::kFifo;
  options.check_consistency = true;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(HistoryWorkloadScenario());
  EXPECT_FALSE(result.violation_found);
  EXPECT_GT(GlobalPerfCounters().history_events_recorded, 0u);
  EXPECT_GT(GlobalPerfCounters().consistency_checks_run, 0u);
  EXPECT_EQ(GlobalPerfCounters().consistency_violations, 0u);
}

}  // namespace
}  // namespace bmx
