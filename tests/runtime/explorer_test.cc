// End-to-end tests for the schedule-exploration harness: replay determinism,
// clean standard scenarios, and the full find→record→shrink→replay pipeline
// against the planted canary ordering bug.

#include "src/runtime/explorer.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/runtime/oracle.h"
#include "src/runtime/scenarios.h"

namespace bmx {
namespace {

// Record a random-walk run of a standard scenario, then replay its trace on a
// fresh cluster: the traffic fingerprint (per-kind sent/delivered/losses/
// bytes/wire bytes) must be bit-identical.
TEST(Explorer, ReplayReproducesRecordedWalkBitIdentically) {
  ExplorerScenario scenario = StandardScenarios()[2];  // fig3-invalidate-fanout

  std::unique_ptr<Cluster> recorded_cluster = scenario.make(1);
  Network& rec_net = recorded_cluster->network();
  rec_net.set_scheduler(std::make_unique<RandomWalkScheduler>(42));
  rec_net.StartRecording();
  scenario.run(*recorded_cluster);
  recorded_cluster->Pump();
  std::string recorded_fp = rec_net.stats().Fingerprint();
  Trace trace = rec_net.TakeRecordedTrace();
  trace.scenario = scenario.name;
  EXPECT_GT(trace.total_decisions, 0u);

  std::unique_ptr<Cluster> replay_cluster = scenario.make(1);
  Network& rep_net = replay_cluster->network();
  rep_net.ReplayFrom(trace);
  scenario.run(*replay_cluster);
  replay_cluster->Pump();

  EXPECT_EQ(recorded_fp, rep_net.stats().Fingerprint());
}

// Every fig. 1–4 closure stays invariant-clean under exploratory schedules —
// the correctness of the protocol does not depend on FIFO delivery.
TEST(Explorer, StandardScenariosAreClean) {
  ExplorerOptions options;
  options.root_seed = 7;
  options.num_walks = 6;
  options.schedule = ScheduleKind::kRandomWalk;
  options.oracle_stride = 2;
  Explorer explorer(options);
  for (const ExplorerScenario& scenario : StandardScenarios()) {
    ExplorationResult result = explorer.Explore(scenario);
    EXPECT_FALSE(result.violation_found)
        << scenario.name << " violated: "
        << (result.violations.empty() ? "" : result.violations.front());
    EXPECT_GT(result.total_deliveries, 0u) << scenario.name << " delivered nothing";
  }
}

TEST(Explorer, StandardScenariosCleanUnderDelayBoundedToo) {
  ExplorerOptions options;
  options.root_seed = 11;
  options.num_walks = 4;
  options.schedule = ScheduleKind::kDelayBounded;
  options.delay_bound = 3;
  options.oracle_stride = 4;
  Explorer explorer(options);
  for (const ExplorerScenario& scenario : StandardScenarios()) {
    ExplorationResult result = explorer.Explore(scenario);
    EXPECT_FALSE(result.violation_found) << scenario.name;
  }
}

// The FIFO schedule is exactly the historical order, under which the canary
// is unreachable: acks converge src-ascending and nothing fires.
TEST(Explorer, CanaryIsSilentUnderFifo) {
  ExplorerOptions options;
  options.schedule = ScheduleKind::kFifo;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(CanaryReorderScenario());
  EXPECT_FALSE(result.violation_found);
  EXPECT_EQ(result.runs, 1u) << "FIFO has one schedule; extra walks are pointless";
}

// The pipeline test the harness exists for: the explorer finds the planted
// ordering bug, the recorded trace replays it bit-identically, and the shrunk
// trace still reproduces it with at most 12 decisions.
TEST(Explorer, FindsShrinksAndReplaysTheCanary) {
  ExplorerOptions options;
  options.root_seed = 1;
  options.num_walks = 64;
  options.schedule = ScheduleKind::kRandomWalk;
  options.deviation_rate = 0.3;
  options.oracle_stride = 1;
  options.trace_dir = ::testing::TempDir();
  Explorer explorer(options);

  ExplorerScenario scenario = CanaryReorderScenario();
  ExplorationResult result = explorer.Explore(scenario);
  ASSERT_TRUE(result.violation_found) << "explorer failed to find the planted bug";
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations.front().find("owner"), std::string::npos)
      << "expected a token-uniqueness violation, got: " << result.violations.front();

  // The untouched trace replays the violating run bit-identically.
  RunResult full = explorer.Replay(scenario, result.trace);
  EXPECT_TRUE(full.violated);
  EXPECT_EQ(full.fingerprint, result.fingerprint);

  // The shrunk trace is tiny and still reproduces the violation.
  EXPECT_LE(result.shrunk.decisions.size(), 12u)
      << "shrunk trace kept " << result.shrunk.decisions.size() << " decisions";
  RunResult shrunk = explorer.Replay(scenario, result.shrunk);
  EXPECT_TRUE(shrunk.violated);

  // The violation trace landed on disk and parses back to the shrunk trace.
  ASSERT_FALSE(result.trace_path.empty());
  Trace from_disk;
  ASSERT_TRUE(Trace::ReadFile(result.trace_path, &from_disk));
  EXPECT_EQ(from_disk.decisions.size(), result.shrunk.decisions.size());
  EXPECT_EQ(from_disk.scenario, scenario.name);
  RunResult from_disk_replay = explorer.Replay(scenario, from_disk);
  EXPECT_TRUE(from_disk_replay.violated);
}

// Quiescence-only checking still catches the canary (the corruption is
// persistent), it just cannot narrow the violation index as tightly.
TEST(Explorer, QuiescenceOnlyStrideStillFindsPersistentViolations) {
  ExplorerOptions options;
  options.root_seed = 3;
  options.num_walks = 64;
  options.schedule = ScheduleKind::kRandomWalk;
  options.deviation_rate = 0.3;
  options.oracle_stride = 0;
  Explorer explorer(options);
  ExplorationResult result = explorer.Explore(CanaryReorderScenario());
  EXPECT_TRUE(result.violation_found);
}

}  // namespace
}  // namespace bmx
