#include "src/net/network.h"

#include <gtest/gtest.h>

#include "src/gc/payloads.h"

namespace bmx {
namespace {

// Minimal test payloads: one reliable, one unreliable.
struct ReliableProbe : public Payload {
  uint64_t value = 0;
  MsgKind kind() const override { return MsgKind::kAddressChange; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
};

struct UnreliableProbe : public Payload {
  uint64_t value = 0;
  MsgKind kind() const override { return MsgKind::kReachabilityTable; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
  bool reliable() const override { return false; }
};

class Recorder : public MessageHandler {
 public:
  void HandleMessage(const Message& msg) override {
    received.push_back(msg);
    if (reply_to != kInvalidNode && network != nullptr && !replied) {
      replied = true;
      network->Send(msg.dst, reply_to, std::make_shared<ReliableProbe>());
    }
  }
  std::vector<Message> received;
  Network* network = nullptr;
  NodeId reply_to = kInvalidNode;
  bool replied = false;
};

TEST(Network, DeliversInFifoOrderPerChannel) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  for (uint64_t i = 0; i < 10; ++i) {
    auto p = std::make_shared<ReliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();
  ASSERT_EQ(r.received.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(static_cast<const ReliableProbe&>(*r.received[i].payload).value, i);
    EXPECT_EQ(r.received[i].seq, i);
  }
}

TEST(Network, HandlerChainsDrainCompletely) {
  Network net(1);
  Recorder a;
  Recorder b;
  a.network = &net;
  a.reply_to = 2;
  net.RegisterNode(1, &a);
  net.RegisterNode(2, &b);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(net.Idle());
}

TEST(Network, ReliablePayloadsNeverDropped) {
  Network net(99);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_loss_rate(1.0);  // drop everything droppable
  for (int i = 0; i < 50; ++i) {
    net.Send(0, 1, std::make_shared<ReliableProbe>());
  }
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 50u);
}

TEST(Network, UnreliablePayloadsDropAtConfiguredRate) {
  Network net(99);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_loss_rate(0.5);
  for (int i = 0; i < 400; ++i) {
    net.Send(0, 1, std::make_shared<UnreliableProbe>());
  }
  net.RunUntilIdle();
  // Statistically ~200; accept a broad band (deterministic for the seed).
  EXPECT_GT(r.received.size(), 120u);
  EXPECT_LT(r.received.size(), 280u);
  EXPECT_EQ(net.stats().For(MsgKind::kReachabilityTable).dropped +
                net.stats().For(MsgKind::kReachabilityTable).delivered,
            400u);
}

TEST(Network, DuplicationOnlyAffectsUnreliable) {
  Network net(7);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_duplication_rate(1.0);
  net.Send(0, 1, std::make_shared<UnreliableProbe>());
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 3u);  // unreliable duplicated, reliable not
}

TEST(Network, StatsAccounting) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.Send(0, 1, std::make_shared<UnreliableProbe>());
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().TotalSent(), 2u);
  EXPECT_EQ(net.stats().TotalBytes(), 16u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).sent, 1u);
  EXPECT_EQ(net.stats().SentInCategory(MsgCategory::kGcBackground), 2u);
  EXPECT_EQ(net.stats().SentInCategory(MsgCategory::kDsm), 0u);
  net.ResetStats();
  EXPECT_EQ(net.stats().TotalSent(), 0u);
}

TEST(Network, DisconnectDropsQueuedTraffic) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.Send(1, 0, std::make_shared<ReliableProbe>());
  net.DisconnectNode(1);
  net.RunUntilIdle();
  EXPECT_TRUE(r.received.empty());
  EXPECT_TRUE(net.Idle());
}

TEST(Network, MessageToUnregisteredNodeIsLostQuietly) {
  Network net(1);
  net.Send(0, 9, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  EXPECT_TRUE(net.Idle());
}

TEST(Network, DeliverOneReturnsFalseWhenEmpty) {
  Network net(1);
  EXPECT_FALSE(net.DeliverOne());
}

TEST(Network, PendingCountTracksQueue) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  EXPECT_EQ(net.PendingCount(), 2u);
  net.DeliverOne();
  EXPECT_EQ(net.PendingCount(), 1u);
  net.RunUntilIdle();
  EXPECT_EQ(net.PendingCount(), 0u);
}

}  // namespace
}  // namespace bmx
