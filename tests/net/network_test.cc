#include "src/net/network.h"

#include <gtest/gtest.h>

#include "src/gc/payloads.h"

namespace bmx {
namespace {

// Minimal test payloads: one reliable, one unreliable.
struct ReliableProbe : public Payload {
  uint64_t value = 0;
  MsgKind kind() const override { return MsgKind::kAddressChange; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
};

struct UnreliableProbe : public Payload {
  uint64_t value = 0;
  MsgKind kind() const override { return MsgKind::kReachabilityTable; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
  bool reliable() const override { return false; }
};

// A kind whose category used to be wrong under the hard-coded kind→category
// switch (RcIncrement fell through to the GC-background default); the stats
// must follow what the payload itself declares.
struct ForegroundProbe : public Payload {
  MsgKind kind() const override { return MsgKind::kRcIncrement; }
  MsgCategory category() const override { return MsgCategory::kGcForeground; }
  size_t WireSize() const override { return 24; }
  bool reliable() const override { return false; }
};

class Recorder : public MessageHandler {
 public:
  void HandleMessage(const Message& msg) override {
    received.push_back(msg);
    if (reply_to != kInvalidNode && network != nullptr && !replied) {
      replied = true;
      network->Send(msg.dst, reply_to, std::make_shared<ReliableProbe>());
    }
  }
  std::vector<Message> received;
  Network* network = nullptr;
  NodeId reply_to = kInvalidNode;
  bool replied = false;
};

uint64_t ValueOf(const Message& msg) {
  return static_cast<const ReliableProbe&>(*msg.payload).value;
}

TEST(Network, DeliversInFifoOrderPerChannel) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  for (uint64_t i = 0; i < 10; ++i) {
    auto p = std::make_shared<ReliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();
  ASSERT_EQ(r.received.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ValueOf(r.received[i]), i);
    EXPECT_EQ(r.received[i].seq, i);
  }
}

TEST(Network, HandlerChainsDrainCompletely) {
  Network net(1);
  Recorder a;
  Recorder b;
  a.network = &net;
  a.reply_to = 2;
  net.RegisterNode(1, &a);
  net.RegisterNode(2, &b);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(net.Idle());
}

TEST(Network, ReliablePayloadsNeverDropped) {
  Network net(99);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_loss_rate(1.0);  // datagram loss does not touch the reliable class
  for (int i = 0; i < 50; ++i) {
    net.Send(0, 1, std::make_shared<ReliableProbe>());
  }
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 50u);
  EXPECT_EQ(net.UnackedCount(), 0u);
}

TEST(Network, UnreliablePayloadsDropAtConfiguredRate) {
  Network net(99);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_loss_rate(0.5);
  for (int i = 0; i < 400; ++i) {
    net.Send(0, 1, std::make_shared<UnreliableProbe>());
  }
  net.RunUntilIdle();
  // Statistically ~200; accept a broad band (deterministic for the seed).
  EXPECT_GT(r.received.size(), 120u);
  EXPECT_LT(r.received.size(), 280u);
  EXPECT_EQ(net.stats().For(MsgKind::kReachabilityTable).dropped +
                net.stats().For(MsgKind::kReachabilityTable).delivered,
            400u);
}

TEST(Network, ReliableTransmissionLossIsMaskedByRetransmission) {
  Network net(42);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_reliable_loss_rate(0.5);
  for (uint64_t i = 0; i < 20; ++i) {
    auto p = std::make_shared<ReliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();
  ASSERT_EQ(r.received.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(ValueOf(r.received[i]), i);  // still exactly-once, in order
  }
  EXPECT_GT(net.stats().For(MsgKind::kAddressChange).lost_transmissions, 0u);
  EXPECT_GT(net.stats().TotalRetransmits(), 0u);
  EXPECT_EQ(net.UnackedCount(), 0u);
}

TEST(Network, LostAcksForceSuppressedRetransmissions) {
  Network net(42);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_ack_loss_rate(0.5);
  for (uint64_t i = 0; i < 20; ++i) {
    auto p = std::make_shared<ReliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();
  ASSERT_EQ(r.received.size(), 20u);  // duplicates never reach the handler
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(ValueOf(r.received[i]), i);
  }
  EXPECT_GT(net.stats().TotalRetransmits(), 0u);
  EXPECT_GT(net.stats().TotalDupSuppressed(), 0u);
  EXPECT_EQ(net.UnackedCount(), 0u);
}

TEST(Network, RetransmitBackoffIsExponential) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_retransmit_timeout(8);
  net.ForceDropReliableTransmissions(3);
  net.Send(0, 1, std::make_shared<ReliableProbe>());

  EXPECT_TRUE(net.DeliverOne());  // first transmission, force-dropped
  EXPECT_TRUE(r.received.empty());

  std::vector<uint64_t> fire_times;
  while (r.received.empty()) {
    if (!net.DeliverOne()) {
      ASSERT_TRUE(net.FireRetransmitTimers());
      fire_times.push_back(net.now());
    }
  }
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], 8u);  // base timeout
  // Each retry waits twice as long as the previous one.
  EXPECT_EQ(fire_times[2] - fire_times[1], 2 * (fire_times[1] - fire_times[0]));
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).retransmits, 3u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).lost_transmissions, 3u);
  EXPECT_EQ(r.received.size(), 1u);
  net.RunUntilIdle();
  EXPECT_EQ(net.UnackedCount(), 0u);
}

TEST(Network, DuplicateSuppressionOnlyAffectsReliable) {
  Network net(7);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_duplication_rate(1.0);
  net.Send(0, 1, std::make_shared<UnreliableProbe>());
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  // The unreliable duplicate reaches the handler (datagram semantics, §6.1
  // tables are designed to tolerate it); the reliable one is suppressed.
  EXPECT_EQ(r.received.size(), 3u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).dup_suppressed, 1u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).delivered, 1u);
}

TEST(Network, DuplicatesKeepOriginalSeqAndCountWireBytes) {
  Network net(7);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_duplication_rate(1.0);
  net.Send(0, 1, std::make_shared<UnreliableProbe>());
  net.RunUntilIdle();
  ASSERT_EQ(r.received.size(), 2u);
  // Both wire copies are the SAME message: receivers can dedup on seq.
  EXPECT_EQ(r.received[0].seq, r.received[1].seq);
  const auto& pk = net.stats().For(MsgKind::kReachabilityTable);
  EXPECT_EQ(pk.sent, 1u);
  EXPECT_EQ(pk.duplicated, 1u);
  EXPECT_EQ(pk.bytes, 8u);        // logical traffic
  EXPECT_EQ(pk.wire_bytes, 16u);  // what the wire actually carried
}

TEST(Network, ReorderingPerturbsDatagramsButNotReliableStream) {
  Network net(3);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_reorder_rate(1.0);
  for (uint64_t i = 0; i < 3; ++i) {
    auto p = std::make_shared<UnreliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();
  ASSERT_EQ(r.received.size(), 3u);
  bool in_order = true;
  for (uint64_t i = 0; i < 3; ++i) {
    in_order = in_order &&
               static_cast<const UnreliableProbe&>(*r.received[i].payload).value == i;
  }
  EXPECT_FALSE(in_order);
  EXPECT_GT(net.stats().For(MsgKind::kReachabilityTable).reordered, 0u);

  r.received.clear();
  for (uint64_t i = 0; i < 5; ++i) {
    auto p = std::make_shared<ReliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();
  ASSERT_EQ(r.received.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ValueOf(r.received[i]), i);  // reassembled in rel_seq order
  }
}

TEST(Network, StatsAccounting) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.Send(0, 1, std::make_shared<UnreliableProbe>());
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().TotalSent(), 2u);
  EXPECT_EQ(net.stats().TotalBytes(), 16u);
  EXPECT_EQ(net.stats().TotalWireBytes(), 16u);  // fault-free: wire == logical
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).sent, 1u);
  EXPECT_EQ(net.stats().SentInCategory(MsgCategory::kGcBackground), 2u);
  EXPECT_EQ(net.stats().SentInCategory(MsgCategory::kDsm), 0u);
  net.ResetStats();
  EXPECT_EQ(net.stats().TotalSent(), 0u);
}

TEST(Network, CategoryAccountingFollowsThePayload) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  net.Send(0, 1, std::make_shared<ForegroundProbe>());
  net.RunUntilIdle();
  // kRcIncrement used to be misfiled under the background default by the
  // hard-coded switch; the payload says foreground, so the stats must too.
  EXPECT_EQ(net.stats().SentInCategory(MsgCategory::kGcForeground), 1u);
  EXPECT_EQ(net.stats().BytesInCategory(MsgCategory::kGcForeground), 24u);
  EXPECT_EQ(net.stats().SentInCategory(MsgCategory::kGcBackground), 0u);
}

TEST(Network, DisconnectParksReliableAndDropsTheRest) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  net.Send(0, 1, std::make_shared<ReliableProbe>());    // parked for redelivery
  net.Send(0, 1, std::make_shared<UnreliableProbe>());  // lost with the node
  net.Send(1, 0, std::make_shared<ReliableProbe>());    // dies with the sender
  net.DisconnectNode(1);
  net.RunUntilIdle();
  EXPECT_TRUE(r.received.empty());
  EXPECT_TRUE(net.Idle());
  EXPECT_EQ(net.HeldCount(), 1u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).parked, 1u);
}

TEST(Network, ReliableToUnregisteredNodeIsHeldNotLost) {
  Network net(1);
  net.Send(0, 9, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  EXPECT_TRUE(net.Idle());  // parked traffic does not prevent quiescence
  EXPECT_EQ(net.HeldCount(), 1u);
}

TEST(Network, RedeliveryAfterReconnectIsFifoAndDeduplicated) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  for (uint64_t i = 0; i < 3; ++i) {
    auto p = std::make_shared<ReliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();
  net.DisconnectNode(1);
  for (uint64_t i = 3; i < 6; ++i) {
    auto p = std::make_shared<ReliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();  // quiesces; the three new payloads are parked
  EXPECT_EQ(net.HeldCount(), 3u);

  Recorder fresh;
  net.RegisterNode(1, &fresh);
  net.RunUntilIdle();
  ASSERT_EQ(fresh.received.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ValueOf(fresh.received[i]), i + 3);  // original FIFO order
    // Sequence reset: the new incarnation starts from seq 0, no discontinuity
    // from the five messages the dead incarnation consumed.
    EXPECT_EQ(fresh.received[i].seq, i);
  }
  EXPECT_EQ(net.stats().TotalRedelivered(), 3u);
  EXPECT_EQ(net.HeldCount(), 0u);
  EXPECT_EQ(net.UnackedCount(), 0u);
}

TEST(Network, PartitionHoldsReliableTrafficUntilHealed) {
  Network net(1);
  Recorder a;
  Recorder b;
  net.RegisterNode(1, &a);
  net.RegisterNode(2, &b);
  net.PartitionNodes(1, 2);
  EXPECT_TRUE(net.Partitioned(2, 1));  // symmetric

  net.Send(1, 2, std::make_shared<ReliableProbe>());
  net.Send(1, 2, std::make_shared<UnreliableProbe>());
  net.Send(0, 1, std::make_shared<ReliableProbe>());  // unrelated channel flows
  net.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_EQ(net.UnackedCount(), 1u);  // reliable waits out the partition
  EXPECT_EQ(net.stats().For(MsgKind::kReachabilityTable).dropped, 1u);

  net.HealPartition(1, 2);
  net.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_GT(net.stats().For(MsgKind::kAddressChange).retransmits, 0u);
  EXPECT_EQ(net.UnackedCount(), 0u);
}

TEST(Network, DeliverOneReturnsFalseWhenEmpty) {
  Network net(1);
  EXPECT_FALSE(net.DeliverOne());
}

TEST(Network, VirtualClockAdvancesPerConsumedMessage) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  EXPECT_EQ(net.now(), 0u);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.DeliverOne();
  EXPECT_EQ(net.now(), 1u);
  net.AdvanceClock(10);
  EXPECT_EQ(net.now(), 11u);
  net.RunUntilIdle();
  EXPECT_EQ(net.now(), 12u);
}

TEST(Network, PendingCountTracksQueue) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  EXPECT_EQ(net.PendingCount(), 2u);
  net.DeliverOne();
  EXPECT_EQ(net.PendingCount(), 1u);
  net.RunUntilIdle();
  EXPECT_EQ(net.PendingCount(), 0u);
}

// --- Quiescence regressions: RunUntilIdle must drain every live retransmit
// --- timer toward a reachable peer, yet terminate when the peer is down.

TEST(Network, QuiescencePumpsLossyReachableChannelToCompletion) {
  // Several forced losses plus lossy acks: the payloads are still owed to a
  // reachable peer, so RunUntilIdle must keep firing timers until every one
  // is delivered and acked — returning early would strand live timers.
  Network net(5);
  Recorder r;
  net.RegisterNode(1, &r);
  net.set_ack_loss_rate(0.5);
  net.ForceDropReliableTransmissions(3);
  for (uint64_t i = 0; i < 4; ++i) {
    auto p = std::make_shared<ReliableProbe>();
    p->value = i;
    net.Send(0, 1, std::move(p));
  }
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 4u);
  EXPECT_EQ(net.UnackedCount(), 0u);
  EXPECT_EQ(net.ReachableUnackedCount(), 0u);
}

TEST(Network, QuiescenceDuringPartitionParksInsteadOfSpinning) {
  Network net(5);
  Recorder r;
  net.RegisterNode(1, &r);
  net.PartitionNodes(0, 1);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  // The peer is unreachable: RunUntilIdle must terminate (not retransmit
  // forever into the partition) with the payload parked, not lost.
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 0u);
  EXPECT_EQ(net.UnackedCount(), 1u);
  EXPECT_EQ(net.ReachableUnackedCount(), 0u);
  // Healing re-arms the timer; the very next pump delivers.
  net.HealPartition(0, 1);
  EXPECT_EQ(net.ReachableUnackedCount(), 1u);
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 1u);
  EXPECT_EQ(net.UnackedCount(), 0u);
}

TEST(Network, QuiescenceWithPermanentlyDownPeerTerminates) {
  Network net(5);
  net.Send(0, 9, std::make_shared<ReliableProbe>());  // node 9 never attaches
  net.RunUntilIdle();
  EXPECT_EQ(net.HeldCount(), 1u);  // parked for a future incarnation
  EXPECT_EQ(net.ReachableUnackedCount(), 0u);
}

// --- Stats regressions: parked counts payloads (not wire copies), and the
// --- per-category ledger counts each logical send exactly once.

TEST(Network, ParkedCountsPayloadsNotWireCopies) {
  // Duplication gives the parked payload two wire copies; both reach the
  // missing destination, but the payload parks (and counts) once.
  Network net(5);
  net.set_duplication_rate(1.0);
  net.Send(0, 9, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).duplicated, 1u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).parked, 1u);
  EXPECT_EQ(net.UnackedCount(), 1u);
}

TEST(Network, ParkedCountsOncePerDownPeriod) {
  Network net(5);
  Recorder r;
  net.RegisterNode(1, &r);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.DisconnectNode(1);  // parks the undelivered payload: 1
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).parked, 1u);
  // A wire copy arriving at the dead destination must not re-count it.
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).parked, 1u);
  // The next incarnation's redelivery resets the flag: a second down period
  // parks (and counts) the payload again.
  Recorder reborn;
  net.RegisterNode(1, &reborn);
  net.DisconnectNode(1);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).parked, 2u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).redelivered, 1u);
}

TEST(Network, CategoryLedgerCountsLogicalSendsOnceAcrossParkAndRedeliver) {
  Network net(5);
  net.Send(0, 9, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().SentInCategory(MsgCategory::kGcBackground), 1u);
  EXPECT_EQ(net.stats().BytesInCategory(MsgCategory::kGcBackground), 8u);

  Recorder r;
  net.RegisterNode(9, &r);  // replays the parked payload
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 1u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).redelivered, 1u);
  // The redelivery is wire traffic, not a new logical send: the category
  // ledger still shows exactly one send, while wire bytes cover both copies.
  EXPECT_EQ(net.stats().SentInCategory(MsgCategory::kGcBackground), 1u);
  EXPECT_EQ(net.stats().BytesInCategory(MsgCategory::kGcBackground), 8u);
  EXPECT_GE(net.stats().ForCategory(MsgCategory::kGcBackground).wire_bytes, 16u);
}

// --- Gray failures: per-link profiles, zombie links, bounded quiescence ---

// Zombie stats pin the accounting convention: a swallowed dispatch is a wire
// event and a transport success (acked — so no retransmissions), but never a
// logical delivery.  Mirrors the parked/redelivered convention.
TEST(Network, ZombieLinkStatsPinned) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  LinkProfile zombie;
  zombie.zombie = true;
  net.InstallLinkProfile(0, 1, zombie);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  const auto& pk = net.stats().For(MsgKind::kAddressChange);
  EXPECT_EQ(pk.sent, 1u);
  EXPECT_EQ(pk.delivered, 0u);
  EXPECT_EQ(pk.zombie_dropped, 1u);
  EXPECT_EQ(pk.retransmits, 0u);  // transport acked: the sender is satisfied
  EXPECT_EQ(pk.bytes, 8u);
  EXPECT_EQ(pk.wire_bytes, 8u);
  EXPECT_EQ(net.UnackedCount(), 0u);
  EXPECT_TRUE(r.received.empty());
}

// A duplicated wire copy of a zombie-dropped reliable payload still hits the
// receiver-side dedup (the transport fully runs): one zombie drop, one
// suppression, zero deliveries.
TEST(Network, ZombieTransportStillDeduplicates) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  LinkProfile zombie;
  zombie.zombie = true;
  zombie.duplication_rate = 1.0;
  net.InstallLinkProfile(0, 1, zombie);
  net.Send(0, 1, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  const auto& pk = net.stats().For(MsgKind::kAddressChange);
  EXPECT_EQ(pk.duplicated, 1u);
  EXPECT_EQ(pk.zombie_dropped, 1u);
  EXPECT_EQ(pk.dup_suppressed, 1u);
  EXPECT_EQ(pk.delivered, 0u);
  EXPECT_EQ(pk.wire_bytes, 16u);  // both copies crossed the wire
  EXPECT_TRUE(r.received.empty());
}

// SetZombieNode covers every inbound link of the node.
TEST(Network, ZombieNodeSwallowsAllInboundDispatch) {
  Network net(1);
  Recorder r;
  net.RegisterNode(2, &r);
  net.SetZombieNode(2, true);
  net.Send(0, 2, std::make_shared<ReliableProbe>());
  net.Send(1, 2, std::make_shared<UnreliableProbe>());
  net.RunUntilIdle();
  EXPECT_TRUE(r.received.empty());
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).zombie_dropped, 1u);
  EXPECT_EQ(net.stats().For(MsgKind::kReachabilityTable).zombie_dropped, 1u);
  net.SetZombieNode(2, false);
  net.Send(0, 2, std::make_shared<ReliableProbe>());
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 1u);
}

// The category mask scopes the gray failure: DSM traffic dies, GC-background
// traffic still dispatches.
TEST(Network, ZombieCategoryMaskIsSelective) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  LinkProfile zombie;
  zombie.zombie = true;
  zombie.zombie_categories = {{true, false, false}};  // kDsm only
  net.InstallLinkProfile(0, 1, zombie);
  net.Send(0, 1, std::make_shared<ReliableProbe>());  // kGcBackground: passes
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 1u);
  EXPECT_EQ(net.stats().For(MsgKind::kAddressChange).zombie_dropped, 0u);
}

// Directional latency delays readiness without reordering a channel, and the
// virtual clock jumps to the earliest ready time instead of spinning.
TEST(Network, LinkLatencyDelaysDeliveryAndAdvancesClock) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  LinkProfile slow;
  slow.latency_ticks = 50;
  net.InstallLinkProfile(0, 1, slow);
  auto late = std::make_shared<ReliableProbe>();
  late->value = 7;
  net.Send(0, 1, std::move(late));  // ready at 50
  auto prompt = std::make_shared<ReliableProbe>();
  prompt->value = 8;
  net.Send(2, 1, std::move(prompt));  // ready immediately
  net.RunUntilIdle();
  ASSERT_EQ(r.received.size(), 2u);
  EXPECT_EQ(ValueOf(r.received[0]), 8u);  // the un-delayed link goes first
  EXPECT_EQ(ValueOf(r.received[1]), 7u);
  EXPECT_GE(net.now(), 50u);
}

// Per-link loss overrides the global knob for that link only, and the
// overridden draws come from a dedicated per-link stream (installing the
// profile must not perturb other links' fault sequences).
TEST(Network, PerLinkLossOverridesGlobalKnob) {
  Network net(99);
  Recorder r;
  net.RegisterNode(1, &r);
  LinkProfile lossy;
  lossy.loss_rate = 1.0 - 1e-9;  // rates must stay below 1; effectively all
  net.InstallLinkProfile(0, 1, lossy);
  for (int i = 0; i < 50; ++i) {
    net.Send(0, 1, std::make_shared<UnreliableProbe>());  // doomed link
    net.Send(2, 1, std::make_shared<UnreliableProbe>());  // clean link
  }
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 50u);  // every survivor came over 2→1
  for (const Message& m : r.received) {
    EXPECT_EQ(m.src, 2u);
  }
  EXPECT_EQ(net.stats().For(MsgKind::kReachabilityTable).dropped, 50u);
}

// With no profile installed the fingerprint must be bit-identical to a run
// without the profile table ever consulted — installing and clearing a
// profile on an unrelated link must also leave other links untouched.
TEST(Network, FingerprintNeutralWithoutProfiles) {
  auto drive = [](Network& net) {
    Recorder r;
    net.RegisterNode(1, &r);
    net.set_loss_rate(0.3);
    net.set_reliable_loss_rate(0.2);
    for (int i = 0; i < 40; ++i) {
      net.Send(0, 1, std::make_shared<ReliableProbe>());
      net.Send(0, 1, std::make_shared<UnreliableProbe>());
    }
    net.RunUntilIdle();
    return net.stats().Fingerprint();
  };
  Network plain(7);
  Network probed(7);
  LinkProfile unrelated;
  unrelated.loss_rate = 0.9;
  probed.InstallLinkProfile(5, 6, unrelated);  // never carries traffic
  probed.ClearLinkProfile(5, 6);
  EXPECT_EQ(drive(plain), drive(probed));
}

// An intentional livelock (two handlers ping-ponging forever) trips the step
// bound with a diagnostic instead of hanging the harness.
TEST(Network, RunUntilIdleBoundedFlagsNonQuiescence) {
  struct Echo : public MessageHandler {
    Network* net = nullptr;
    void HandleMessage(const Message& msg) override {
      net->Send(msg.dst, msg.src, std::make_shared<ReliableProbe>());
    }
  };
  Network net(1);
  Echo a;
  Echo b;
  a.net = &net;
  b.net = &net;
  net.RegisterNode(1, &a);
  net.RegisterNode(2, &b);
  net.Send(1, 2, std::make_shared<ReliableProbe>());
  std::string diagnostic;
  EXPECT_FALSE(net.RunUntilIdleBounded(500, &diagnostic));
  EXPECT_NE(diagnostic.find("pending="), std::string::npos) << diagnostic;
}

TEST(Network, RunUntilIdleBoundedPassesQuiescentRuns) {
  Network net(1);
  Recorder r;
  net.RegisterNode(1, &r);
  for (int i = 0; i < 10; ++i) {
    net.Send(0, 1, std::make_shared<ReliableProbe>());
  }
  std::string diagnostic;
  EXPECT_TRUE(net.RunUntilIdleBounded(100000, &diagnostic));
  EXPECT_TRUE(diagnostic.empty());
  EXPECT_EQ(r.received.size(), 10u);
}

}  // namespace
}  // namespace bmx
