// Tests for the pluggable delivery scheduler, the decision stream, trace
// record/replay, per-purpose RNG stream splitting, and the fault-injector
// fire gate.

#include "src/net/scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/net/network.h"

namespace bmx {
namespace {

struct ReliableProbe : public Payload {
  uint64_t value = 0;
  MsgKind kind() const override { return MsgKind::kAddressChange; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
};

struct UnreliableProbe : public Payload {
  uint64_t value = 0;
  MsgKind kind() const override { return MsgKind::kReachabilityTable; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
  bool reliable() const override { return false; }
};

class Recorder : public MessageHandler {
 public:
  void HandleMessage(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

// (src, seq) identity of every delivery at one receiver, in arrival order.
std::vector<std::pair<NodeId, uint64_t>> ArrivalOrder(const Recorder& r) {
  std::vector<std::pair<NodeId, uint64_t>> order;
  for (const Message& m : r.received) {
    order.emplace_back(m.src, m.seq);
  }
  return order;
}

TEST(Trace, SerializeParseRoundtrip) {
  Trace t;
  t.root_seed = 42;
  t.walk_seed = 7;
  t.scenario = "fig3-invalidate-fanout";
  t.scheduler = "random-walk";
  t.total_decisions = 90;
  t.decisions.push_back(Decision{3, DecisionPoint::kDeliverPick, 2});
  t.decisions.push_back(Decision{17, DecisionPoint::kUnreliableLoss, 1});
  t.decisions.push_back(Decision{55, DecisionPoint::kFaultFire, 0});

  Trace back;
  ASSERT_TRUE(Trace::Parse(t.Serialize(), &back));
  EXPECT_EQ(back.root_seed, t.root_seed);
  EXPECT_EQ(back.walk_seed, t.walk_seed);
  EXPECT_EQ(back.scenario, t.scenario);
  EXPECT_EQ(back.scheduler, t.scheduler);
  EXPECT_EQ(back.total_decisions, t.total_decisions);
  ASSERT_EQ(back.decisions.size(), t.decisions.size());
  for (size_t i = 0; i < t.decisions.size(); ++i) {
    EXPECT_EQ(back.decisions[i], t.decisions[i]);
  }
}

TEST(Trace, ParseRejectsUnversionedAndUnknown) {
  Trace out;
  EXPECT_FALSE(Trace::Parse("root_seed: 1\nend: 0\n", &out));  // no version comment
  EXPECT_FALSE(Trace::Parse("# bmx-trace v1\nwhatever: 3\nend: 0\n", &out));
  EXPECT_FALSE(Trace::Parse("# bmx-trace v1\ndecision: 0 bogus-point 1\nend: 1\n", &out));
  EXPECT_TRUE(Trace::Parse("# bmx-trace v1\nroot_seed: 9\nend: 0\n", &out));
  EXPECT_EQ(out.root_seed, 9u);
}

TEST(Trace, ParseRequiresMatchingFooter) {
  Trace out;
  // No footer at all — a header-only prefix is a truncated trace now.
  EXPECT_FALSE(Trace::Parse("# bmx-trace v1\nroot_seed: 9\n", &out));
  // Footer count disagrees with the decision lines present.
  EXPECT_FALSE(Trace::Parse(
      "# bmx-trace v1\ndecision: 0 deliver-pick 1\nend: 2\n", &out));
  // Content after the footer: corrupted.
  EXPECT_FALSE(Trace::Parse("# bmx-trace v1\nend: 0\nroot_seed: 9\n", &out));
  // Matching footer parses.
  EXPECT_TRUE(Trace::Parse(
      "# bmx-trace v1\ndecision: 0 deliver-pick 1\nend: 1\n", &out));
  ASSERT_EQ(out.decisions.size(), 1u);
}

TEST(DecisionPointNames, RoundtripEveryPoint) {
  for (size_t p = 0; p < static_cast<size_t>(DecisionPoint::kMaxPoint); ++p) {
    auto point = static_cast<DecisionPoint>(p);
    EXPECT_EQ(DecisionPointFromName(DecisionPointName(point)), point);
  }
  EXPECT_EQ(DecisionPointFromName("not-a-point"), DecisionPoint::kMaxPoint);
}

// Multi-channel traffic shape shared by the ordering tests: three senders
// interleave reliable payloads toward one receiver.
void SendCrossTraffic(Network* net) {
  for (uint64_t round = 0; round < 5; ++round) {
    for (NodeId src = 1; src <= 3; ++src) {
      auto p = std::make_shared<ReliableProbe>();
      p->value = round * 10 + src;
      net->Send(src, 0, std::move(p));
    }
  }
}

// The explicit FifoScheduler (slow path, with recording active) must
// reproduce the live FIFO fast path bit-for-bit, and — being all defaults —
// record an empty trace.
TEST(Scheduler, ExplicitFifoMatchesLegacyOrderAndRecordsNothing) {
  Recorder fast;
  Network live(7);
  live.RegisterNode(0, &fast);
  SendCrossTraffic(&live);
  live.RunUntilIdle();

  Recorder slow;
  Network recording(7);
  recording.RegisterNode(0, &slow);
  recording.set_scheduler(std::make_unique<FifoScheduler>());
  recording.StartRecording();
  SendCrossTraffic(&recording);
  recording.RunUntilIdle();
  Trace trace = recording.TakeRecordedTrace();

  EXPECT_EQ(ArrivalOrder(fast), ArrivalOrder(slow));
  EXPECT_EQ(live.stats().Fingerprint(), recording.stats().Fingerprint());
  EXPECT_TRUE(trace.decisions.empty()) << "FIFO picks are the default and must not be recorded";
  EXPECT_EQ(trace.scheduler, "fifo");
}

TEST(Scheduler, RandomWalkIsDeterministicPerSeedAndVariesAcrossSeeds) {
  auto run = [](uint64_t walk_seed) {
    Recorder r;
    Network net(7);
    net.RegisterNode(0, &r);
    net.set_scheduler(std::make_unique<RandomWalkScheduler>(walk_seed));
    net.StartRecording();
    SendCrossTraffic(&net);
    net.RunUntilIdle();
    net.TakeRecordedTrace();
    return ArrivalOrder(r);
  };
  EXPECT_EQ(run(11), run(11));
  std::vector<std::vector<std::pair<NodeId, uint64_t>>> orders;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    orders.push_back(run(seed));
  }
  bool any_different = false;
  for (size_t i = 1; i < orders.size(); ++i) {
    any_different |= orders[i] != orders[0];
  }
  EXPECT_TRUE(any_different) << "8 random walks all produced the FIFO order";
}

TEST(Scheduler, DelayBoundForcesOverdueChannel) {
  DelayBoundedScheduler sched(3, 2);
  std::vector<ChannelCandidate> candidates(3);
  candidates[0].deferred = 0;
  candidates[1].deferred = 2;  // at the bound: must be chosen
  candidates[2].deferred = 5;  // also overdue, but [1] comes first
  EXPECT_EQ(sched.Pick(candidates), 1u);
  candidates[1].deferred = 1;
  candidates[2].deferred = 2;
  EXPECT_EQ(sched.Pick(candidates), 2u);
}

TEST(Scheduler, PerChannelFifoSurvivesAnySchedule) {
  // Whatever interleaving the walk picks across channels, each channel's own
  // reliable stream must still arrive in send order.
  for (uint64_t walk_seed = 1; walk_seed <= 4; ++walk_seed) {
    Recorder r;
    Network net(7);
    net.RegisterNode(0, &r);
    net.set_scheduler(std::make_unique<RandomWalkScheduler>(walk_seed));
    SendCrossTraffic(&net);
    net.RunUntilIdle();
    ASSERT_EQ(r.received.size(), 15u);
    std::map<NodeId, uint64_t> next_value;
    for (NodeId src = 1; src <= 3; ++src) {
      next_value[src] = src;
    }
    for (const Message& m : r.received) {
      EXPECT_EQ(static_cast<const ReliableProbe&>(*m.payload).value, next_value[m.src]);
      next_value[m.src] += 10;
    }
  }
}

// Record → replay must be bit-identical even with every fault knob active:
// same arrival order, same stats fingerprint, and the replay consults no RNG
// (a different replay-network seed changes nothing).
TEST(Scheduler, ReplayReproducesFaultyRunBitIdentically) {
  auto configure = [](Network* net) {
    net->set_loss_rate(0.3);
    net->set_duplication_rate(0.3);
    net->set_reorder_rate(0.3);
    net->set_reliable_loss_rate(0.2);
    net->set_ack_loss_rate(0.2);
  };
  auto traffic = [](Network* net) {
    for (uint64_t i = 0; i < 10; ++i) {
      for (NodeId src = 1; src <= 2; ++src) {
        auto rp = std::make_shared<ReliableProbe>();
        rp->value = i;
        net->Send(src, 0, std::move(rp));
        auto up = std::make_shared<UnreliableProbe>();
        up->value = i;
        net->Send(src, 0, std::move(up));
      }
      net->RunUntilIdle();
    }
  };

  Recorder original;
  Network rec_net(99);
  configure(&rec_net);
  rec_net.RegisterNode(0, &original);
  rec_net.set_scheduler(std::make_unique<RandomWalkScheduler>(5));
  rec_net.StartRecording();
  traffic(&rec_net);
  Trace trace = rec_net.TakeRecordedTrace();
  EXPECT_GT(trace.total_decisions, 0u);

  Recorder replayed;
  Network rep_net(123456);  // deliberately different seed: replay draws no RNG
  configure(&rep_net);
  rep_net.RegisterNode(0, &replayed);
  rep_net.ReplayFrom(trace);
  traffic(&rep_net);

  EXPECT_EQ(ArrivalOrder(original), ArrivalOrder(replayed));
  EXPECT_EQ(rec_net.stats().Fingerprint(), rep_net.stats().Fingerprint());
}

// An empty trace replays the plain FIFO fault-free schedule even on a network
// whose knobs would inject faults live — every decision takes its default.
TEST(Scheduler, EmptyTraceReplaysFifoFaultFree) {
  Recorder r;
  Network net(7);
  net.set_loss_rate(0.9);
  net.set_duplication_rate(0.9);
  net.RegisterNode(0, &r);
  net.ReplayFrom(Trace{});
  for (uint64_t i = 0; i < 20; ++i) {
    auto p = std::make_shared<UnreliableProbe>();
    p->value = i;
    net.Send(1, 0, std::move(p));
  }
  net.RunUntilIdle();
  EXPECT_EQ(r.received.size(), 20u);  // no losses, no duplicates
  EXPECT_EQ(net.stats().For(MsgKind::kReachabilityTable).dropped, 0u);
  EXPECT_EQ(net.stats().For(MsgKind::kReachabilityTable).duplicated, 0u);
}

// Satellite: per-purpose RNG streams.  Toggling a knob that only affects the
// reliable class (ack loss) must not perturb the datagram-loss pattern — with
// one shared sequence the interleaved draws would shift it.
TEST(RngStreams, TogglingOneFaultKnobDoesNotPerturbAnother) {
  auto dropped_with_ack_loss = [](double ack_loss) {
    Recorder r;
    Network net(31);
    net.set_loss_rate(0.5);
    net.set_ack_loss_rate(ack_loss);
    net.RegisterNode(0, &r);
    std::vector<uint64_t> arrived;
    for (uint64_t i = 0; i < 40; ++i) {
      auto rp = std::make_shared<ReliableProbe>();
      net.Send(1, 0, std::move(rp));
      auto up = std::make_shared<UnreliableProbe>();
      up->value = i;
      net.Send(1, 0, std::move(up));
      net.RunUntilIdle();
    }
    for (const Message& m : r.received) {
      if (m.payload->kind() == MsgKind::kReachabilityTable) {
        arrived.push_back(static_cast<const UnreliableProbe&>(*m.payload).value);
      }
    }
    return arrived;
  };
  // Not just the same count — the exact same datagrams survive.
  EXPECT_EQ(dropped_with_ack_loss(0.0), dropped_with_ack_loss(0.4));
}

TEST(RngStreams, DeriveStreamSeedDecorrelatesPurposes) {
  EXPECT_NE(DeriveStreamSeed(1, RngStream::kUnreliableLoss),
            DeriveStreamSeed(1, RngStream::kDuplication));
  EXPECT_NE(DeriveStreamSeed(1, RngStream::kScheduler),
            DeriveStreamSeed(2, RngStream::kScheduler));
  // Stable across calls (pure function of root seed and purpose).
  EXPECT_EQ(DeriveStreamSeed(77, RngStream::kWorkload),
            DeriveStreamSeed(77, RngStream::kWorkload));
}

// The fire gate routes armed crash-point firings through whoever installed
// it; a gated-off match leaves the schedule armed for the next hit.
TEST(FaultGate, GateDefersAndOwnerScopesClearing) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Reset();
  injector.Arm("dsm.acquire.pre_send", 4, 1);

  int gate_owner = 0;
  bool allow = false;
  injector.set_fire_gate(&gate_owner, [&](const char*, NodeId) { return allow; });

  EXPECT_NO_THROW(injector.Hit("dsm.acquire.pre_send", 4));  // gated off
  EXPECT_TRUE(injector.ArmedAnywhere());

  int stranger = 0;
  injector.ClearFireGate(&stranger);  // wrong owner: gate must survive
  EXPECT_NO_THROW(injector.Hit("dsm.acquire.pre_send", 4));

  allow = true;
  EXPECT_THROW(injector.Hit("dsm.acquire.pre_send", 4), NodeCrashSignal);
  EXPECT_FALSE(injector.ArmedAnywhere());

  injector.ClearFireGate(&gate_owner);
  injector.Reset();
}

}  // namespace
}  // namespace bmx
