// Wire-format accounting tests: the benchmarks' byte counters are only as
// good as each payload's WireSize, and reliability classes decide what fault
// injection may touch.

#include <gtest/gtest.h>

#include "src/baselines/payloads.h"
#include "src/dsm/payloads.h"
#include "src/gc/payloads.h"

namespace bmx {
namespace {

TEST(Payloads, DsmKindsAndCategories) {
  AcquireRequestPayload acquire;
  EXPECT_EQ(acquire.kind(), MsgKind::kAcquireRequest);
  EXPECT_EQ(acquire.category(), MsgCategory::kDsm);
  EXPECT_TRUE(acquire.reliable());
  acquire.for_gc = true;
  EXPECT_EQ(acquire.category(), MsgCategory::kGcForeground);

  GrantPayload grant;
  EXPECT_EQ(grant.kind(), MsgKind::kGrant);
  EXPECT_TRUE(grant.reliable());

  InvalidatePayload inval;
  EXPECT_EQ(inval.kind(), MsgKind::kInvalidate);
  ObjectPushPayload push;
  EXPECT_EQ(push.kind(), MsgKind::kObjectPush);
}

TEST(Payloads, GrantWireSizeScalesWithObject) {
  GrantPayload small;
  GrantPayload big;
  big.slots.resize(100);
  big.slot_is_ref.resize(100);
  EXPECT_GT(big.WireSize(), small.WireSize() + 100 * kSlotBytes - 1);
}

TEST(Payloads, PiggybackWireSize) {
  Piggyback pb;
  EXPECT_TRUE(pb.Empty());
  EXPECT_EQ(pb.WireSize(), 0u);
  pb.updates.push_back(AddressUpdate{});
  pb.intra_ssp_requests.push_back(IntraSspRequest{});
  pb.replicated_stubs.push_back(InterStubTemplate{});
  EXPECT_FALSE(pb.Empty());
  EXPECT_EQ(pb.WireSize(), 28u + 16u + 28u);
}

TEST(Payloads, GcBackgroundTrafficIsMarked) {
  ScionMessagePayload scion;
  EXPECT_EQ(scion.category(), MsgCategory::kGcBackground);
  EXPECT_TRUE(scion.reliable());  // scion creation must not be lost

  ReachabilityTablePayload table;
  EXPECT_EQ(table.category(), MsgCategory::kGcBackground);
  EXPECT_FALSE(table.reliable());  // idempotent full state tolerates loss

  CopyRequestPayload copy_request;
  EXPECT_TRUE(copy_request.reliable());
  AddressChangePayload change;
  EXPECT_TRUE(change.reliable());
}

TEST(Payloads, TableWireSizeCountsAllEntryKinds) {
  ReachabilityTablePayload table;
  size_t base = table.WireSize();
  table.inter_stub_ids.push_back(1);
  table.intra_stub_oids.push_back(2);
  table.exiting_oids.push_back(3);
  table.exiting_addrs.push_back(4);
  EXPECT_EQ(table.WireSize(), base + 4 * 8);
}

TEST(Payloads, BaselineKindsAreForegroundOrUnreliable) {
  StrongUpdatePayload strong;
  EXPECT_EQ(strong.category(), MsgCategory::kGcForeground);
  EXPECT_TRUE(strong.reliable());

  StwStopPayload stop;
  EXPECT_EQ(stop.category(), MsgCategory::kGcForeground);

  RcIncrementPayload inc;
  RcDecrementPayload dec;
  EXPECT_FALSE(inc.reliable());  // the fragility §6.1 argues against
  EXPECT_FALSE(dec.reliable());
  EXPECT_EQ(inc.category(), MsgCategory::kGcBackground);
}

TEST(Payloads, EveryKindHasAName) {
  for (uint8_t k = 0; k < static_cast<uint8_t>(MsgKind::kMaxKind); ++k) {
    EXPECT_STRNE(MsgKindName(static_cast<MsgKind>(k)), "Unknown");
  }
}

}  // namespace
}  // namespace bmx
