// Entry-consistency protocol tests (paper §2.2, §5): token fast paths,
// ownership transfer along ownerPtr chains, invalidation (including deferral
// inside critical sections), distributed copy-sets and the invariant-2
// new-location forwarding, entering/exiting ownerPtr bookkeeping.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

Oid OidOf(Node& node, Gaddr addr) {
  Gaddr resolved = node.dsm().ResolveAddr(addr);
  return node.store().HeaderOf(resolved)->oid;
}

class DsmTest : public ::testing::Test {
 protected:
  void Build(size_t nodes, CopySetMode mode = CopySetMode::kCentralized) {
    cluster_ = std::make_unique<Cluster>(
        ClusterOptions{.num_nodes = nodes, .copyset_mode = mode});
    for (size_t i = 0; i < nodes; ++i) {
      mutators_.push_back(std::make_unique<Mutator>(&cluster_->node(i)));
    }
    bunch_ = cluster_->CreateBunch(0);
  }

  Gaddr AllocAt(NodeId node, uint32_t slots = 2) { return mutators_[node]->Alloc(bunch_, slots); }

  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Mutator>> mutators_;
  BunchId bunch_ = kInvalidBunch;
};

TEST_F(DsmTest, CreatorOwnsNewObject) {
  Build(2);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  EXPECT_TRUE(cluster_->node(0).dsm().IsLocallyOwned(oid));
  EXPECT_EQ(cluster_->node(0).dsm().StateOf(oid), TokenState::kWrite);
  EXPECT_FALSE(cluster_->node(1).dsm().Knows(oid));
}

TEST_F(DsmTest, LocalAcquireNeedsNoMessages) {
  Build(2);
  Gaddr a = AllocAt(0);
  cluster_->network().ResetStats();
  ASSERT_TRUE(mutators_[0]->AcquireWrite(a));
  mutators_[0]->Release(a);
  ASSERT_TRUE(mutators_[0]->AcquireRead(a));
  mutators_[0]->Release(a);
  EXPECT_EQ(cluster_->network().stats().TotalSent(), 0u);
}

TEST_F(DsmTest, ReadGrantDowngradesOwnerAndTracksCopyset) {
  Build(2);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);
  EXPECT_EQ(cluster_->node(0).dsm().StateOf(oid), TokenState::kRead);
  EXPECT_EQ(cluster_->node(1).dsm().StateOf(oid), TokenState::kRead);
  EXPECT_TRUE(cluster_->node(0).dsm().IsLocallyOwned(oid));
  EXPECT_FALSE(cluster_->node(1).dsm().IsLocallyOwned(oid));
  EXPECT_EQ(cluster_->node(1).dsm().OwnerHint(oid), 0u);
  // Entering ownerPtr registered at the owner.
  const auto& entering = cluster_->node(0).dsm().EnteringFor(bunch_);
  ASSERT_TRUE(entering.count(oid) > 0);
  EXPECT_TRUE(entering.at(oid).count(1) > 0);
}

TEST_F(DsmTest, OwnerWriteUpgradeInvalidatesReaders) {
  Build(3);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);
  ASSERT_TRUE(mutators_[2]->AcquireRead(a));
  mutators_[2]->Release(a);

  ASSERT_TRUE(mutators_[0]->AcquireWrite(a));
  mutators_[0]->WriteWord(a, 0, 77);
  mutators_[0]->Release(a);

  EXPECT_EQ(cluster_->node(1).dsm().StateOf(oid), TokenState::kNone);
  EXPECT_EQ(cluster_->node(2).dsm().StateOf(oid), TokenState::kNone);
  EXPECT_EQ(cluster_->node(0).dsm().StateOf(oid), TokenState::kWrite);
  EXPECT_EQ(cluster_->node(1).dsm().stats().read_copies_invalidated, 1u);

  // Readers re-acquire and see the new value.
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  EXPECT_EQ(mutators_[1]->ReadWord(a, 0), 77u);
  mutators_[1]->Release(a);
}

TEST_F(DsmTest, OwnershipTransferMovesEnteringSet) {
  Build(3);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  ASSERT_TRUE(mutators_[2]->AcquireRead(a));
  mutators_[2]->Release(a);

  ASSERT_TRUE(mutators_[1]->AcquireWrite(a));
  mutators_[1]->Release(a);

  EXPECT_TRUE(cluster_->node(1).dsm().IsLocallyOwned(oid));
  EXPECT_FALSE(cluster_->node(0).dsm().IsLocallyOwned(oid));
  EXPECT_EQ(cluster_->node(0).dsm().OwnerHint(oid), 1u);

  // The new owner's entering set covers the old owner and the old reader.
  const auto& entering = cluster_->node(1).dsm().EnteringFor(bunch_);
  ASSERT_TRUE(entering.count(oid) > 0);
  EXPECT_TRUE(entering.at(oid).count(0) > 0);
  EXPECT_TRUE(entering.at(oid).count(2) > 0);
  EXPECT_FALSE(entering.at(oid).count(1) > 0);
  // The old owner's entering entry is gone.
  EXPECT_EQ(cluster_->node(0).dsm().EnteringFor(bunch_).count(oid), 0u);
}

TEST_F(DsmTest, RequestsForwardAlongOwnerPtrChain) {
  Build(4);
  Gaddr a = AllocAt(0);
  // Ownership walks 0 -> 1 -> 2.
  ASSERT_TRUE(mutators_[1]->AcquireWrite(a));
  mutators_[1]->Release(a);
  ASSERT_TRUE(mutators_[2]->AcquireWrite(a));
  mutators_[2]->Release(a);
  // Node 3 asks node 0 (segment creator fallback); the request must chain
  // through the stale ownerPtrs to node 2.
  ASSERT_TRUE(mutators_[3]->AcquireWrite(a));
  mutators_[3]->WriteWord(a, 0, 5);
  mutators_[3]->Release(a);
  Oid oid = OidOf(cluster_->node(3), a);
  EXPECT_TRUE(cluster_->node(3).dsm().IsLocallyOwned(oid));
}

TEST_F(DsmTest, WriteDataTravelsWithToken) {
  Build(2);
  Gaddr a = AllocAt(0);
  ASSERT_TRUE(mutators_[0]->AcquireWrite(a));
  mutators_[0]->WriteWord(a, 0, 123);
  mutators_[0]->WriteWord(a, 1, 456);
  mutators_[0]->Release(a);
  ASSERT_TRUE(mutators_[1]->AcquireWrite(a));
  EXPECT_EQ(mutators_[1]->ReadWord(a, 0), 123u);
  EXPECT_EQ(mutators_[1]->ReadWord(a, 1), 456u);
  mutators_[1]->Release(a);
}

TEST_F(DsmTest, InvalidationDeferredWhileReaderInCriticalSection) {
  Build(2);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));  // node 1 enters CS and stays

  // Node 0 wants exclusivity; the invalidation of node 1 must wait for its
  // release (entry consistency honors the critical section), so the upgrade
  // cannot complete yet.
  EXPECT_FALSE(mutators_[0]->AcquireWrite(a));
  EXPECT_EQ(cluster_->node(1).dsm().StateOf(oid), TokenState::kRead);

  mutators_[1]->Release(a);
  cluster_->Pump();
  EXPECT_EQ(cluster_->node(1).dsm().StateOf(oid), TokenState::kNone);
  EXPECT_EQ(cluster_->node(0).dsm().StateOf(oid), TokenState::kWrite);
}

TEST_F(DsmTest, RemoteWriteRequestDeferredWhileOwnerHolds) {
  Build(2);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  ASSERT_TRUE(mutators_[0]->AcquireWrite(a));  // owner in CS

  cluster_->node(1).dsm().BeginAcquire(a, /*write=*/true);
  cluster_->Pump();
  EXPECT_FALSE(cluster_->node(1).dsm().IsLocallyOwned(oid));

  mutators_[0]->Release(a);
  cluster_->Pump();
  EXPECT_TRUE(cluster_->node(1).dsm().IsLocallyOwned(oid));
  EXPECT_EQ(cluster_->node(1).dsm().StateOf(oid), TokenState::kWrite);
}

TEST_F(DsmTest, DistributedModeReadTokenFromReader) {
  Build(3, CopySetMode::kDistributed);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);

  // Node 2 sends its request to node 0 (creator), which owns the object and
  // grants directly; to exercise reader-granting, route the request at node 1
  // explicitly via BeginAcquire on an address... instead, transfer ownership
  // away from the creator so the creator is a mere reader.
  ASSERT_TRUE(mutators_[1]->AcquireWrite(a));
  mutators_[1]->Release(a);
  ASSERT_TRUE(mutators_[0]->AcquireRead(a));
  mutators_[0]->Release(a);
  // Now: node 1 owns; node 0 (creator) holds a read token.  Node 2's request
  // goes to node 0 first, which in distributed mode grants from its copy.
  cluster_->network().ResetStats();
  ASSERT_TRUE(mutators_[2]->AcquireRead(a));
  mutators_[2]->Release(a);
  EXPECT_EQ(cluster_->node(2).dsm().StateOf(oid), TokenState::kRead);
  // The granter was node 0, so node 2's ownerPtr points at node 0 (Li-style
  // probable owner), not at the true owner.
  EXPECT_EQ(cluster_->node(2).dsm().OwnerHint(oid), 0u);
  // And no forwarding hop was needed: exactly one request, one grant.
  EXPECT_EQ(cluster_->network().stats().For(MsgKind::kAcquireRequest).sent, 1u);
  EXPECT_EQ(cluster_->network().stats().For(MsgKind::kGrant).sent, 1u);
}

TEST_F(DsmTest, DistributedModeInvalidationFloodsTree) {
  Build(3, CopySetMode::kDistributed);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  // Build a grant tree: owner(0) -> reader(1) -> reader(2).
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);
  ASSERT_TRUE(mutators_[1]->AcquireWrite(a));
  mutators_[1]->Release(a);
  ASSERT_TRUE(mutators_[0]->AcquireRead(a));
  mutators_[0]->Release(a);
  ASSERT_TRUE(mutators_[2]->AcquireRead(a));  // granted by node 0
  mutators_[2]->Release(a);

  // Owner (node 1) upgrades: both node 0 and its grantee node 2 must drop.
  ASSERT_TRUE(mutators_[1]->AcquireWrite(a));
  mutators_[1]->Release(a);
  EXPECT_EQ(cluster_->node(0).dsm().StateOf(oid), TokenState::kNone);
  EXPECT_EQ(cluster_->node(2).dsm().StateOf(oid), TokenState::kNone);
}

TEST_F(DsmTest, EnteringPruneRemovesSource) {
  Build(2);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);
  ASSERT_TRUE(cluster_->node(0).dsm().EnteringFor(bunch_).count(oid) > 0);
  cluster_->node(0).dsm().PruneEntering(bunch_, oid, 1);
  EXPECT_EQ(cluster_->node(0).dsm().EnteringFor(bunch_).count(oid), 0u);
}

TEST_F(DsmTest, StrictModeRejectsUntokenedWrite) {
  Build(2);
  Gaddr a = AllocAt(0);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));  // read token only
  mutators_[1]->Release(a);
  EXPECT_DEATH(mutators_[1]->WriteWord(a, 0, 1), "entry consistency violation");
}

TEST_F(DsmTest, StrictModeRejectsUntokenedRead) {
  Build(2);
  Gaddr a = AllocAt(0);
  Oid oid = OidOf(cluster_->node(0), a);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);
  // Invalidate node 1's copy by upgrading at the owner.
  ASSERT_TRUE(mutators_[0]->AcquireWrite(a));
  mutators_[0]->Release(a);
  ASSERT_EQ(cluster_->node(1).dsm().StateOf(oid), TokenState::kNone);
  EXPECT_DEATH(mutators_[1]->ReadWord(a, 0), "entry consistency violation");
}

TEST_F(DsmTest, GcAcquireAttributionIsSeparate) {
  Build(2);
  Gaddr a = AllocAt(0);
  ASSERT_TRUE(cluster_->node(1).dsm().AcquireWrite(a, /*for_gc=*/true));
  cluster_->node(1).dsm().Release(a);
  EXPECT_EQ(cluster_->node(1).dsm().GcTokenAcquires(), 1u);
  EXPECT_EQ(cluster_->node(1).dsm().stats().app_write_acquires, 0u);
}

}  // namespace
}  // namespace bmx
