// Address-resolution and routing machinery tests: the two resolution queries
// (ResolveAddr = newest known address; LocalCopyOf = where this node's bytes
// are), forwarding-chain compression, the directory's location registry, and
// graceful failure for dangling addresses.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

TEST(Resolution, ResolveFollowsChainsAndCompresses) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(bunch, 2);
  m.AddRoot(a);
  // Four collections → a four-hop forwarding chain from the original address.
  for (int i = 0; i < 4; ++i) {
    cluster.node(0).gc().CollectBunch(bunch);
  }
  Gaddr fresh = cluster.node(0).dsm().ResolveAddr(a);
  EXPECT_TRUE(cluster.node(0).store().HasObjectAt(fresh));
  // Path compression: the original address now forwards directly.
  EXPECT_EQ(cluster.node(0).store().HeaderOf(a)->forward, fresh);
}

TEST(Resolution, LocalCopyPrefersBytesOverCanonical) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 9);
  m0.Release(a);
  ASSERT_TRUE(m1.AcquireRead(a));
  m1.Release(a);
  m1.AddRoot(a);
  m0.AddRoot(a);

  // Owner moves the object; node 1 is not told (no sync).
  cluster.node(0).gc().CollectBunch(bunch);
  Gaddr canonical = cluster.node(0).dsm().ResolveAddr(a);
  ASSERT_NE(canonical, a);

  // Node 1 still has bytes at the old address, so both resolution queries
  // stay local — it has not synchronized, and entry consistency lets it keep
  // computing on its copy.  The directory knows the canonical location.
  EXPECT_EQ(cluster.node(1).dsm().ResolveAddr(a), a);
  EXPECT_EQ(cluster.node(1).dsm().LocalCopyOf(a), a);
  EXPECT_EQ(m1.ReadWord(a, 0), 9u);
  Oid oid = cluster.node(0).store().HeaderOf(canonical)->oid;
  EXPECT_EQ(cluster.directory().CanonicalAddressOf(oid), canonical);
}

TEST(Resolution, DirectoryRegistryTracksOwnershipAndLocation) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 1);
  Oid oid = cluster.node(0).store().HeaderOf(a)->oid;
  EXPECT_EQ(cluster.directory().OwnerOf(oid), 0u);
  EXPECT_EQ(cluster.directory().CanonicalAddressOf(oid), a);
  EXPECT_EQ(cluster.directory().OidAtAddress(a), oid);

  ASSERT_TRUE(m1.AcquireWrite(a));
  m1.Release(a);
  EXPECT_EQ(cluster.directory().OwnerOf(oid), 1u);

  // The new owner's BGC moves it; both addresses stay resolvable.
  m1.AddRoot(a);
  cluster.node(1).gc().CollectBunch(bunch);
  Gaddr moved = cluster.node(1).dsm().ResolveAddr(a);
  EXPECT_EQ(cluster.directory().CanonicalAddressOf(oid), moved);
  EXPECT_EQ(cluster.directory().OidAtAddress(a), oid);
  EXPECT_EQ(cluster.directory().OidAtAddress(moved), oid);
}

TEST(Resolution, GloballyDeadObjectEntriesRetire) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(bunch, 1);
  Oid oid = cluster.node(0).store().HeaderOf(a)->oid;
  cluster.node(0).gc().CollectBunch(bunch);  // unrooted: reclaimed
  EXPECT_EQ(cluster.directory().OwnerOf(oid), kInvalidNode);
  EXPECT_EQ(cluster.directory().CanonicalAddressOf(oid), kNullAddr);
}

TEST(Resolution, AcquireOfDeadAddressFailsGracefully) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 1);
  cluster.node(0).gc().CollectBunch(bunch);  // dead and gone at the owner
  cluster.node(0).gc().ReclaimFromSpaces(bunch);
  cluster.Pump();

  // A remote node clinging to the address gets a clean failure, not a hang
  // or a crash.
  EXPECT_FALSE(m1.AcquireRead(a));
  EXPECT_GT(cluster.node(0).dsm().stats().unroutable_acquires +
                cluster.node(1).dsm().stats().unroutable_acquires,
            0u);
}

TEST(Resolution, SameObjectAcrossDivergedReplicas) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 1);
  ASSERT_TRUE(m1.AcquireRead(a));
  m1.Release(a);
  m1.AddRoot(a);
  m0.AddRoot(a);
  cluster.node(0).gc().CollectBunch(bunch);
  Gaddr at0 = cluster.node(0).dsm().ResolveAddr(a);
  // Both nodes agree the old and new addresses name the same object.
  EXPECT_TRUE(m0.SameObject(a, at0));
  EXPECT_TRUE(m1.SameObject(a, at0));
}

TEST(Resolution, LiStylePathCompressionOnForwardedWrites) {
  Cluster cluster({.num_nodes = 4});
  std::vector<std::unique_ptr<Mutator>> ms;
  for (int i = 0; i < 4; ++i) {
    ms.push_back(std::make_unique<Mutator>(&cluster.node(i)));
  }
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = ms[0]->Alloc(bunch, 1);
  Oid oid = cluster.node(0).store().HeaderOf(a)->oid;
  // Ownership: 0 -> 1 -> 2.  Node 2's request routed through node 0 (the
  // segment creator), whose hint was compressed to the requester — Li-style
  // path compression happens on every forwarded write request.
  ASSERT_TRUE(ms[1]->AcquireWrite(a));
  ms[1]->Release(a);
  ASSERT_TRUE(ms[2]->AcquireWrite(a));
  ms[2]->Release(a);
  EXPECT_EQ(cluster.node(0).dsm().OwnerHint(oid), 2u);

  // Node 3's request routes 0 -> 2 directly (node 0's compressed hint);
  // node 0 re-compresses to the new owner, node 1 is off the path.
  ASSERT_TRUE(ms[3]->AcquireWrite(a));
  ms[3]->Release(a);
  EXPECT_EQ(cluster.node(0).dsm().OwnerHint(oid), 3u);
  EXPECT_EQ(cluster.node(1).dsm().OwnerHint(oid), 2u);
}

}  // namespace
}  // namespace bmx
