// GC statistics accounting, and the cleaner-mode × loss × GGC combinations
// not covered elsewhere.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

TEST(GcStats, CountersTrackOneCollection) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr head = builder.BuildList(bunch, 10);
  m.AddRoot(head);
  builder.BuildList(bunch, 5);  // garbage

  cluster.node(0).gc().CollectBunch(bunch);
  const GcStats& stats = cluster.node(0).gc().stats();
  EXPECT_EQ(stats.bgc_runs, 1u);
  EXPECT_EQ(stats.ggc_runs, 0u);
  EXPECT_EQ(stats.objects_copied, 10u);
  EXPECT_EQ(stats.objects_reclaimed, 5u);
  EXPECT_EQ(stats.bytes_copied, 10 * ObjectFootprintBytes(2));
  EXPECT_EQ(stats.bytes_reclaimed, 5 * ObjectFootprintBytes(2));
  // 9 next-pointers re-pointed to to-space (the 10th is null).
  EXPECT_EQ(stats.refs_updated_locally, 9u);

  cluster.node(0).gc().ResetStats();
  EXPECT_EQ(cluster.node(0).gc().stats().bgc_runs, 0u);
}

TEST(GcStats, BarrierAndSspCounters) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(b1, 3);
  Gaddr c = m.Alloc(b1, 1);
  Gaddr x = m.Alloc(b2, 1);
  m.WriteWord(a, 2, 1);   // barrier_writes++
  m.WriteRef(a, 0, c);    // intra-bunch: barrier only
  m.WriteRef(a, 1, x);    // inter-bunch: stub + scion
  const GcStats& stats = cluster.node(0).gc().stats();
  EXPECT_EQ(stats.barrier_writes, 3u);
  EXPECT_EQ(stats.barrier_inter_bunch, 1u);
  EXPECT_EQ(stats.inter_stubs_created, 1u);
  EXPECT_EQ(stats.inter_scions_created, 1u);
  EXPECT_EQ(stats.scion_messages_sent, 0u);
}

TEST(GcStats, TableCountersUnderDuplication) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(bunch, 1);
  m0.AddRoot(a);
  ASSERT_TRUE(m1.AcquireRead(a));
  m1.Release(a);
  m1.AddRoot(a);

  cluster.network().set_duplication_rate(1.0);
  cluster.node(1).gc().CollectBunch(bunch);
  cluster.Pump();
  // Every table arrived twice: once processed, once rejected as stale.
  const GcStats& stats = cluster.node(0).gc().stats();
  EXPECT_GE(stats.tables_processed, 1u);
  EXPECT_GE(stats.tables_ignored_stale, 1u);
}

TEST(CleanerModes, DeferredPlusLossStillConverges) {
  Cluster cluster({.num_nodes = 2, .cleaner_mode = CleanerMode::kDeferred, .seed = 17});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(1);
  Gaddr target = m1.Alloc(b2, 1);
  Gaddr src = m0.Alloc(b1, 2);
  m0.AddRoot(src);
  m0.WriteRef(src, 0, target);
  cluster.Pump();
  m0.WriteRef(src, 0, kNullAddr);

  cluster.network().set_loss_rate(0.3);
  bool reclaimed = false;
  for (int round = 0; round < 40 && !reclaimed; ++round) {
    cluster.node(0).gc().CollectBunch(b1);
    cluster.Pump();
    cluster.node(1).gc().CollectBunch(b2);  // deferred tables drain here
    cluster.Pump();
    reclaimed = cluster.node(1).gc().stats().objects_reclaimed > 0;
  }
  EXPECT_TRUE(reclaimed);
  EXPECT_GT(cluster.node(1).gc().stats().tables_deferred, 0u);
}

TEST(CleanerModes, GgcWithDeferredCleanerCollectsCycles) {
  Cluster cluster({.num_nodes = 1, .cleaner_mode = CleanerMode::kDeferred});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);
  builder.BuildCrossBunchCycle({b1, b2});
  cluster.node(0).gc().CollectGroup();
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 2u);
}

TEST(GcStats, ReclaimCountersRoundTrip) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(bunch, 1);
  m.AddRoot(a);
  cluster.node(0).gc().CollectBunch(bunch);
  cluster.node(0).gc().ReclaimFromSpaces(bunch);
  cluster.Pump();
  const GcStats& stats = cluster.node(0).gc().stats();
  EXPECT_EQ(stats.reclaim_rounds, 1u);
  EXPECT_EQ(stats.segments_freed, 1u);
  EXPECT_EQ(stats.copy_requests_sent, 0u);  // single node: nothing stranded
}

}  // namespace
}  // namespace bmx
