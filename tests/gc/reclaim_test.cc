// From-space reclamation tests (paper §4.5): segments are only freed after
// address-change notices are acknowledged and owners have copied out live
// objects; stale addresses still resolve afterwards.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

TEST(Reclaim, SingleNodeFromSpaceIsFreed) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId b = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(b, 2);
  size_t root = m.AddRoot(a);
  SegmentId original_segment = SegmentOf(a);

  cluster.node(0).gc().CollectBunch(b);
  ASSERT_EQ(cluster.node(0).gc().FromSpacesOf(b).size(), 1u);
  ASSERT_EQ(cluster.node(0).gc().FromSpacesOf(b)[0], original_segment);

  cluster.node(0).gc().ReclaimFromSpaces(b);
  cluster.Pump();
  EXPECT_TRUE(cluster.node(0).gc().ReclaimQuiescent());
  EXPECT_TRUE(cluster.node(0).gc().FromSpacesOf(b).empty());
  EXPECT_FALSE(cluster.node(0).store().HasSegment(original_segment));
  EXPECT_TRUE(cluster.directory().IsRetired(original_segment));
  EXPECT_EQ(cluster.node(0).gc().stats().segments_freed, 1u);

  // The root was fixed up and the object still works.
  Gaddr current = m.Root(root);
  EXPECT_NE(SegmentOf(current), original_segment);
  ASSERT_TRUE(m.AcquireRead(current));
  m.Release(current);
}

TEST(Reclaim, StaleAddressStillResolvesAfterFree) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId b = cluster.CreateBunch(0);
  Gaddr a = m.Alloc(b, 2);
  m.AddRoot(a);
  cluster.node(0).gc().CollectBunch(b);
  cluster.node(0).gc().ReclaimFromSpaces(b);
  cluster.Pump();

  // `a` points into the freed segment; the stale-forward table resolves it.
  Gaddr resolved = cluster.node(0).dsm().ResolveAddr(a);
  EXPECT_NE(SegmentOf(resolved), SegmentOf(a));
  EXPECT_TRUE(cluster.node(0).store().HasObjectAt(resolved));
  EXPECT_TRUE(m.SameObject(a, resolved));
}

TEST(Reclaim, OwnerNotifiesReplicaHoldersExplicitly) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId b = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(b, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 1, 17);
  m0.Release(a);
  m0.AddRoot(a);
  // Node 1 holds a replica.
  ASSERT_TRUE(m1.AcquireRead(a));
  m1.Release(a);
  m1.AddRoot(a);

  cluster.node(0).gc().CollectBunch(b);
  cluster.network().ResetStats();
  cluster.node(0).gc().ReclaimFromSpaces(b);
  cluster.Pump();
  EXPECT_TRUE(cluster.node(0).gc().ReclaimQuiescent());
  // Explicit address-change message + ack were exchanged (§4.5 is the one
  // place the collector pays dedicated messages).
  EXPECT_EQ(cluster.network().stats().For(MsgKind::kAddressChange).sent, 1u);
  EXPECT_EQ(cluster.network().stats().For(MsgKind::kAddressChangeAck).sent, 1u);

  // Node 1 learned the new location: its replica moved and still reads 17
  // without re-acquiring a token (its read token survived).
  Gaddr at1 = cluster.node(1).dsm().ResolveAddr(a);
  EXPECT_NE(at1, a);
  EXPECT_EQ(m1.ReadWord(at1, 1), 17u);
}

TEST(Reclaim, LiveNonOwnedObjectTriggersCopyRequest) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId b = cluster.CreateBunch(0);

  // Node 0 allocates, node 1 takes ownership away; node 0 keeps a rooted,
  // non-owned replica in what will become its from-space.
  Gaddr a = m0.Alloc(b, 2);
  m0.AddRoot(a);
  ASSERT_TRUE(m1.AcquireWrite(a));
  m1.WriteWord(a, 1, 23);
  m1.Release(a);
  ASSERT_TRUE(m0.AcquireRead(a));
  m0.Release(a);

  // Node 0's BGC: nothing to copy (not owner) — object is scanned in place
  // and the segment is queued as from-space.
  cluster.node(0).gc().CollectBunch(b);
  ASSERT_FALSE(cluster.node(0).gc().FromSpacesOf(b).empty());
  SegmentId seg = SegmentOf(a);

  cluster.network().ResetStats();
  cluster.node(0).gc().ReclaimFromSpaces(b);
  cluster.Pump();
  EXPECT_TRUE(cluster.node(0).gc().ReclaimQuiescent());
  EXPECT_GE(cluster.network().stats().For(MsgKind::kCopyRequest).sent, 1u);
  EXPECT_GE(cluster.network().stats().For(MsgKind::kCopyReply).sent, 1u);
  EXPECT_FALSE(cluster.node(0).store().HasSegment(seg));

  // Node 0's replica moved out of the freed segment and kept its data.
  Gaddr at0 = cluster.node(0).dsm().ResolveAddr(a);
  EXPECT_NE(SegmentOf(at0), seg);
  EXPECT_EQ(m0.ReadWord(at0, 1), 23u);
}

TEST(Reclaim, AcquireByStaleAddressAfterFreeStillRoutes) {
  Cluster cluster({.num_nodes = 3});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  Mutator m2(&cluster.node(2));
  BunchId b = cluster.CreateBunch(0);
  Gaddr a = m0.Alloc(b, 2);
  ASSERT_TRUE(m0.AcquireWrite(a));
  m0.WriteWord(a, 0, 3);
  m0.Release(a);
  m0.AddRoot(a);
  // Node 1 learns the address (via a shared holder object), but never
  // acquires `a` itself.
  Gaddr holder = m0.Alloc(b, 1);
  m0.WriteRef(holder, 0, a);
  ASSERT_TRUE(m1.AcquireRead(holder));
  Gaddr stale = m1.ReadRef(holder, 0);
  m1.Release(holder);
  ASSERT_EQ(stale, a);

  // Node 0 collects and frees the from-space; node 1 was not an interested
  // party for `a` (no replica), so it still holds the stale address.
  cluster.node(0).gc().CollectBunch(b);
  cluster.node(0).gc().ReclaimFromSpaces(b);
  cluster.Pump();
  ASSERT_FALSE(cluster.node(0).store().HasSegment(SegmentOf(a)));

  // Acquiring by the stale address routes to the segment creator, whose
  // stale-forward table redirects to the live copy.
  ASSERT_TRUE(m1.AcquireRead(stale));
  Gaddr fresh = cluster.node(1).dsm().ResolveAddr(stale);
  EXPECT_EQ(m1.ReadWord(fresh, 0), 3u);
  m1.Release(stale);
  (void)m2;
}

TEST(Reclaim, ReclaimWithNothingPendingIsNoop) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  BunchId b = cluster.CreateBunch(0);
  m.Alloc(b, 1);
  cluster.node(0).gc().ReclaimFromSpaces(b);  // no BGC ran: no from-spaces
  EXPECT_TRUE(cluster.node(0).gc().ReclaimQuiescent());
  EXPECT_EQ(cluster.node(0).gc().stats().segments_freed, 0u);
}

TEST(Reclaim, RepeatedCollectAndReclaimCycles) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId b = cluster.CreateBunch(0);
  Gaddr head = builder.BuildList(b, 50);
  size_t root = m.AddRoot(head);

  for (int round = 0; round < 5; ++round) {
    builder.BuildList(b, 30);  // garbage each round
    cluster.node(0).gc().CollectBunch(b);
    cluster.node(0).gc().ReclaimFromSpaces(b);
    cluster.Pump();
    ASSERT_TRUE(cluster.node(0).gc().ReclaimQuiescent());
  }
  EXPECT_GE(cluster.node(0).gc().stats().segments_freed, 5u);

  // The list survived five moves.
  Gaddr cur = m.Root(root);
  size_t len = 0;
  while (cur != kNullAddr) {
    ASSERT_TRUE(m.AcquireRead(cur));
    Gaddr next = m.ReadRef(cur, 0);
    m.Release(cur);
    cur = next;
    len++;
  }
  EXPECT_EQ(len, 50u);
}

}  // namespace
}  // namespace bmx
