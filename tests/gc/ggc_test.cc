// Group-garbage-collector tests (paper §7): intra-site inter-bunch cycles
// are collected because scions whose stubs originate inside the local group
// are not roots; everything else stays conservative.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

TEST(Ggc, BgcAloneCannotCollectCrossBunchCycle) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);
  builder.BuildCrossBunchCycle({b1, b2});  // unrooted: pure garbage

  // BGCs keep each other's halves alive through the SSPs: no progress.
  for (int i = 0; i < 3; ++i) {
    cluster.node(0).gc().CollectBunch(b1);
    cluster.node(0).gc().CollectBunch(b2);
  }
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 0u);
}

TEST(Ggc, GroupCollectionReclaimsCrossBunchCycle) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);
  builder.BuildCrossBunchCycle({b1, b2});

  cluster.node(0).gc().CollectGroup();
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 2u);
  EXPECT_TRUE(cluster.node(0).gc().TablesOf(b1).inter_stubs.empty());
  EXPECT_TRUE(cluster.node(0).gc().TablesOf(b2).inter_stubs.empty());
}

TEST(Ggc, LongCycleAcrossManyBunches) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  std::vector<BunchId> bunches;
  for (int i = 0; i < 6; ++i) {
    bunches.push_back(cluster.CreateBunch(0));
  }
  builder.BuildCrossBunchCycle(bunches);
  cluster.node(0).gc().CollectGroup();
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 6u);
}

TEST(Ggc, RootedCycleSurvivesGroupCollection) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);
  auto ring = builder.BuildCrossBunchCycle({b1, b2});
  m.AddRoot(ring[0]);

  cluster.node(0).gc().CollectGroup();
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 0u);
  // Graph is intact after the moves.
  Gaddr first = cluster.node(0).gc().Canonical(ring[0]);
  ASSERT_TRUE(m.AcquireRead(first));
  Gaddr second = m.ReadRef(first, 0);
  m.Release(first);
  ASSERT_TRUE(m.AcquireRead(second));
  Gaddr back = m.ReadRef(second, 0);
  m.Release(second);
  EXPECT_TRUE(m.SameObject(back, first));
}

TEST(Ggc, ScionFromOutsideGroupIsStillARoot) {
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId remote_bunch = cluster.CreateBunch(0);  // mapped at node 0
  BunchId local_bunch = cluster.CreateBunch(1);   // mapped at node 1

  // Node 1's object is referenced from node 0 (stub at node 0, scion at
  // node 1): for node 1's GGC the scion's source is a different node, so it
  // remains a root even though local_bunch is inside the group.
  Gaddr target = m1.Alloc(local_bunch, 1);
  Gaddr src = m0.Alloc(remote_bunch, 2);
  m0.AddRoot(src);
  m0.WriteRef(src, 0, target);
  cluster.Pump();
  ASSERT_EQ(cluster.node(1).gc().TablesOf(local_bunch).inter_scions.size(), 1u);

  cluster.node(1).gc().CollectGroup();
  EXPECT_EQ(cluster.node(1).gc().stats().objects_reclaimed, 0u);
}

TEST(Ggc, CrossNodeCycleIsBeyondSingleSiteGgc) {
  // A cycle spanning bunches on *different* nodes cannot be collected by the
  // locality-based heuristic (§7 discusses exactly this limitation).
  Cluster cluster({.num_nodes = 2});
  Mutator m0(&cluster.node(0));
  Mutator m1(&cluster.node(1));
  BunchId b0 = cluster.CreateBunch(0);
  BunchId b1 = cluster.CreateBunch(1);

  Gaddr x = m0.Alloc(b0, 1);
  Gaddr y = m1.Alloc(b1, 1);
  // x -> y (created at node 0 after faulting y in), y -> x (at node 1).
  ASSERT_TRUE(m0.AcquireRead(y));
  m0.Release(y);
  m0.WriteRef(x, 0, y);
  ASSERT_TRUE(m1.AcquireRead(x));
  m1.Release(x);
  ASSERT_TRUE(m1.AcquireWrite(y));
  m1.WriteRef(y, 0, x);
  m1.Release(y);
  cluster.Pump();

  for (int i = 0; i < 3; ++i) {
    cluster.node(0).gc().CollectGroup();
    cluster.Pump();
    cluster.node(1).gc().CollectGroup();
    cluster.Pump();
  }
  // Both halves survive (conservative: stubs originate on remote nodes).
  EXPECT_TRUE(cluster.node(0).store().HasObjectAt(cluster.node(0).dsm().ResolveAddr(x)));
  EXPECT_TRUE(cluster.node(1).store().HasObjectAt(cluster.node(1).dsm().ResolveAddr(y)));
}

TEST(Ggc, MixedLiveAndGarbageAcrossGroup) {
  Cluster cluster({.num_nodes = 1});
  Mutator m(&cluster.node(0));
  GraphBuilder builder(&cluster, &m);
  BunchId b1 = cluster.CreateBunch(0);
  BunchId b2 = cluster.CreateBunch(0);
  BunchId b3 = cluster.CreateBunch(0);

  auto dead_ring = builder.BuildCrossBunchCycle({b1, b2});
  auto live_ring = builder.BuildCrossBunchCycle({b2, b3});
  m.AddRoot(live_ring[0]);
  Gaddr live_list = builder.BuildList(b1, 10);
  m.AddRoot(live_list);
  builder.BuildList(b3, 5);  // garbage list
  (void)dead_ring;

  cluster.node(0).gc().CollectGroup();
  // Reclaimed: 2 (dead ring) + 5 (garbage list).
  EXPECT_EQ(cluster.node(0).gc().stats().objects_reclaimed, 7u);

  // Live list intact.
  Gaddr head = cluster.node(0).gc().Canonical(live_list);
  size_t len = 0;
  while (head != kNullAddr) {
    ASSERT_TRUE(m.AcquireRead(head));
    Gaddr next = m.ReadRef(head, 0);
    m.Release(head);
    head = next;
    len++;
  }
  EXPECT_EQ(len, 10u);
}

}  // namespace
}  // namespace bmx
