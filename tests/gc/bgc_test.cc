// Bunch-garbage-collection semantics (paper §4): copy-vs-scan by ownership,
// non-destructive copies, local reference updates without tokens, table
// rebuild rules, exiting-ownerPtr emission (with the §6.2 weak-root
// exception), and replica independence.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

Oid OidOf(Node& node, Gaddr addr) {
  return node.store().HeaderOf(node.dsm().ResolveAddr(addr))->oid;
}

class BgcTest : public ::testing::Test {
 protected:
  void Build(size_t nodes) {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = nodes});
    for (size_t i = 0; i < nodes; ++i) {
      mutators_.push_back(std::make_unique<Mutator>(&cluster_->node(i)));
    }
  }
  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Mutator>> mutators_;
};

TEST_F(BgcTest, NonOwnedObjectsAreScannedNotCopied) {
  Build(2);
  BunchId b = cluster_->CreateBunch(0);
  Gaddr a = mutators_[0]->Alloc(b, 2);
  ASSERT_TRUE(mutators_[0]->AcquireWrite(a));
  mutators_[0]->WriteWord(a, 0, 1);
  mutators_[0]->Release(a);
  mutators_[0]->AddRoot(a);

  // Node 1 caches a and roots it: non-owned replica.
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);
  mutators_[1]->AddRoot(a);

  cluster_->node(1).gc().CollectBunch(b);
  EXPECT_EQ(cluster_->node(1).gc().stats().objects_copied, 0u);
  EXPECT_EQ(cluster_->node(1).gc().stats().objects_scanned, 1u);
  // Address unchanged at node 1.
  EXPECT_EQ(cluster_->node(1).dsm().ResolveAddr(a), a);
}

TEST_F(BgcTest, CopyIsNonDestructive) {
  Build(1);
  BunchId b = cluster_->CreateBunch(0);
  Gaddr a = mutators_[0]->Alloc(b, 2);
  mutators_[0]->WriteWord(a, 1, 99);
  mutators_[0]->AddRoot(a);
  cluster_->node(0).gc().CollectBunch(b);

  // Old location keeps a forwarding header AND the old data (O'Toole-style).
  const ObjectHeader* old_header = cluster_->node(0).store().HeaderOf(a);
  ASSERT_TRUE(old_header->forwarded());
  EXPECT_EQ(cluster_->node(0).store().ReadSlot(a, 1), 99u);
  Gaddr fresh = old_header->forward;
  EXPECT_EQ(cluster_->node(0).store().ReadSlot(fresh, 1), 99u);
}

TEST_F(BgcTest, LocalReferencesUpdatedWithoutTokens) {
  Build(2);
  BunchId b = cluster_->CreateBunch(0);
  // Node 0 owns `target`; node 1 owns `holder` which references target.
  Gaddr target = mutators_[0]->Alloc(b, 1);
  ASSERT_TRUE(mutators_[0]->AcquireWrite(target));
  mutators_[0]->WriteWord(target, 0, 5);
  mutators_[0]->Release(target);
  mutators_[0]->AddRoot(target);

  ASSERT_TRUE(mutators_[1]->AcquireRead(target));
  mutators_[1]->Release(target);
  Gaddr holder = mutators_[1]->Alloc(b, 1);
  mutators_[1]->WriteRef(holder, 0, target);
  mutators_[1]->AddRoot(holder);

  // Transfer holder's bytes to node 0 (so node 0's BGC sees the reference).
  ASSERT_TRUE(mutators_[0]->AcquireRead(holder));
  mutators_[0]->Release(holder);
  mutators_[0]->AddRoot(holder);

  cluster_->node(0).dsm().ResetStats();
  cluster_->node(0).gc().CollectBunch(b);
  // target (owned) was copied; holder (not owned) merely scanned, but its
  // local copy's reference slot was updated to the new address — with zero
  // token traffic (§4.4).
  Gaddr new_target = cluster_->node(0).gc().Canonical(target);
  ASSERT_NE(new_target, target);
  Gaddr holder_local = cluster_->node(0).dsm().ResolveAddr(holder);
  EXPECT_EQ(cluster_->node(0).store().ReadSlot(holder_local, 0), new_target);
  EXPECT_EQ(cluster_->node(0).dsm().GcTokenAcquires(), 0u);
  // Node 1's copy still holds the old address — replicas legitimately
  // diverge (§4.2) until they synchronize.
  Gaddr holder_at_1 = cluster_->node(1).dsm().ResolveAddr(holder);
  EXPECT_EQ(cluster_->node(1).store().ReadSlot(holder_at_1, 0), target);
}

TEST_F(BgcTest, DeadStubDroppedAfterOverwrite) {
  Build(1);
  BunchId b1 = cluster_->CreateBunch(0);
  BunchId b2 = cluster_->CreateBunch(0);
  Gaddr src = mutators_[0]->Alloc(b1, 2);
  Gaddr t1 = mutators_[0]->Alloc(b2, 1);
  Gaddr t2 = mutators_[0]->Alloc(b2, 1);
  mutators_[0]->AddRoot(src);
  mutators_[0]->AddRoot(t1);  // keep t1 alive independently
  mutators_[0]->AddRoot(t2);
  mutators_[0]->WriteRef(src, 0, t1);
  mutators_[0]->WriteRef(src, 0, t2);
  ASSERT_EQ(cluster_->node(0).gc().TablesOf(b1).inter_stubs.size(), 2u);

  cluster_->node(0).gc().CollectBunch(b1);
  auto stubs = cluster_->node(0).gc().TablesOf(b1).inter_stubs;
  ASSERT_EQ(stubs.size(), 1u);
  EXPECT_TRUE(cluster_->node(0).gc().SameObject(stubs[0].target_addr, t2));
  // The cleaner (local) also dropped t1's scion.
  auto scions = cluster_->node(0).gc().TablesOf(b2).inter_scions;
  ASSERT_EQ(scions.size(), 1u);
  EXPECT_EQ(scions[0].stub_id, stubs[0].id);
}

TEST_F(BgcTest, StubOfDeadSourceObjectDropped) {
  Build(1);
  BunchId b1 = cluster_->CreateBunch(0);
  BunchId b2 = cluster_->CreateBunch(0);
  Gaddr src = mutators_[0]->Alloc(b1, 2);
  Gaddr dst = mutators_[0]->Alloc(b2, 1);
  mutators_[0]->WriteRef(src, 0, dst);  // src never rooted: garbage
  ASSERT_EQ(cluster_->node(0).gc().TablesOf(b1).inter_stubs.size(), 1u);

  cluster_->node(0).gc().CollectBunch(b1);
  EXPECT_TRUE(cluster_->node(0).gc().TablesOf(b1).inter_stubs.empty());
  // Cascades: scion gone, so a b2 collection reclaims dst.
  cluster_->node(0).gc().CollectBunch(b2);
  EXPECT_GE(cluster_->node(0).gc().stats().objects_reclaimed, 2u);
}

TEST_F(BgcTest, ScionKeepsObjectAliveWithoutMutatorRoot) {
  Build(1);
  BunchId b1 = cluster_->CreateBunch(0);
  BunchId b2 = cluster_->CreateBunch(0);
  Gaddr src = mutators_[0]->Alloc(b1, 2);
  Gaddr dst = mutators_[0]->Alloc(b2, 1);
  mutators_[0]->AddRoot(src);
  mutators_[0]->WriteRef(src, 0, dst);

  // dst has no mutator root; only the inter-bunch scion keeps it alive.
  cluster_->node(0).gc().CollectBunch(b2);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_reclaimed, 0u);
  Gaddr dst_now = cluster_->node(0).gc().Canonical(dst);
  EXPECT_TRUE(cluster_->node(0).store().HasObjectAt(dst_now));
}

TEST_F(BgcTest, EnteringOwnerPtrIsARoot) {
  Build(2);
  BunchId b = cluster_->CreateBunch(0);
  Gaddr a = mutators_[0]->Alloc(b, 1);
  ASSERT_TRUE(mutators_[0]->AcquireWrite(a));
  mutators_[0]->Release(a);
  // Node 1 holds a replica (rooted there); node 0 has NO local root.
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);
  mutators_[1]->AddRoot(a);

  cluster_->node(0).gc().CollectBunch(b);
  // Alive at node 0 purely via the entering ownerPtr from node 1.
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_reclaimed, 0u);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_copied, 1u);
}

TEST_F(BgcTest, ExitingOwnerPtrEmittedForStrongNonOwned) {
  Build(2);
  BunchId b = cluster_->CreateBunch(0);
  Gaddr a = mutators_[0]->Alloc(b, 1);
  ASSERT_TRUE(mutators_[0]->AcquireWrite(a));
  mutators_[0]->Release(a);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a));
  mutators_[1]->Release(a);
  mutators_[1]->AddRoot(a);
  Oid oid = OidOf(cluster_->node(1), a);

  // Node 1's BGC emits an exiting ownerPtr; node 0 keeps its entering entry.
  cluster_->node(1).gc().CollectBunch(b);
  cluster_->Pump();
  const auto& entering = cluster_->node(0).dsm().EnteringFor(b);
  ASSERT_TRUE(entering.count(oid) > 0);
  EXPECT_TRUE(entering.at(oid).count(1) > 0);

  // Drop the root at node 1: next BGC's table omits the exiting ownerPtr and
  // the cleaner at node 0 prunes the entering entry.
  mutators_[1]->ClearRoot(0);
  cluster_->node(1).gc().CollectBunch(b);
  cluster_->Pump();
  EXPECT_EQ(cluster_->node(0).dsm().EnteringFor(b).count(oid), 0u);
}

TEST_F(BgcTest, SegmentOverflowGrowsBunch) {
  Build(1);
  BunchId b = cluster_->CreateBunch(0);
  // Allocate more than one segment's worth of objects.
  size_t per_object = ObjectFootprintBytes(16);
  size_t count = kSegmentBytes / per_object + 10;
  Gaddr last = kNullAddr;
  for (size_t i = 0; i < count; ++i) {
    last = mutators_[0]->Alloc(b, 16);
  }
  ASSERT_NE(last, kNullAddr);
  EXPECT_GE(cluster_->directory().SegmentsOfBunch(b).size(), 2u);
}

TEST_F(BgcTest, MultipleCollectionsChainForwarders) {
  Build(1);
  BunchId b = cluster_->CreateBunch(0);
  Gaddr a = mutators_[0]->Alloc(b, 2);
  mutators_[0]->WriteWord(a, 1, 31);
  size_t root = mutators_[0]->AddRoot(a);
  for (int i = 0; i < 4; ++i) {
    cluster_->node(0).gc().CollectBunch(b);
  }
  Gaddr current = mutators_[0]->Root(root);
  EXPECT_TRUE(mutators_[0]->SameObject(current, a));
  ASSERT_TRUE(mutators_[0]->AcquireRead(current));
  EXPECT_EQ(mutators_[0]->ReadWord(current, 1), 31u);
  mutators_[0]->Release(current);
  // Old address still resolves through the chain.
  EXPECT_EQ(cluster_->node(0).gc().Canonical(a), cluster_->node(0).gc().Canonical(current));
}

TEST_F(BgcTest, IndependentCollectionOfReplicas) {
  Build(2);
  BunchId b = cluster_->CreateBunch(0);
  // Each node owns half the objects of the shared bunch.
  Gaddr a0 = mutators_[0]->Alloc(b, 2);
  mutators_[0]->AddRoot(a0);
  Gaddr a1 = mutators_[1]->Alloc(b, 2);
  mutators_[1]->AddRoot(a1);
  // Cross-cache: each node replicates the other's object.
  ASSERT_TRUE(mutators_[0]->AcquireRead(a1));
  mutators_[0]->Release(a1);
  mutators_[0]->AddRoot(a1);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a0));
  mutators_[1]->Release(a0);
  mutators_[1]->AddRoot(a0);

  // Collect both replicas independently; each copies only what it owns.
  cluster_->node(0).gc().CollectBunch(b);
  cluster_->node(1).gc().CollectBunch(b);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_copied, 1u);
  EXPECT_EQ(cluster_->node(0).gc().stats().objects_scanned, 1u);
  EXPECT_EQ(cluster_->node(1).gc().stats().objects_copied, 1u);
  EXPECT_EQ(cluster_->node(1).gc().stats().objects_scanned, 1u);
  // The same object now legitimately lives at different addresses on the two
  // nodes (§4.2): node 0 moved a0, node 1 still has it at the old address.
  EXPECT_NE(cluster_->node(0).dsm().ResolveAddr(a0), cluster_->node(1).dsm().ResolveAddr(a0));
  cluster_->Pump();
  // Node 1 still holds a valid read token for a0, so re-acquiring is a local
  // fast path — NOT a synchronization point; addresses stay divergent.
  ASSERT_TRUE(mutators_[1]->AcquireRead(a0));
  mutators_[1]->Release(a0);
  EXPECT_NE(cluster_->node(0).dsm().ResolveAddr(a0), cluster_->node(1).dsm().ResolveAddr(a0));
  // Force a real synchronization: the owner upgrades (invalidating node 1's
  // token); node 1's next acquire is remote and invariant 1 reconciles the
  // addresses (§5).
  ASSERT_TRUE(mutators_[0]->AcquireWrite(a0));
  mutators_[0]->Release(a0);
  ASSERT_TRUE(mutators_[1]->AcquireRead(a0));
  mutators_[1]->Release(a0);
  EXPECT_EQ(cluster_->node(0).dsm().ResolveAddr(a0), cluster_->node(1).dsm().ResolveAddr(a0));
}

}  // namespace
}  // namespace bmx
