// Ownership-transfer policy tests (§3.2): the paper's intra-bunch SSPs vs
// the rejected alternative of replicating inter-bunch SSPs at every new
// owner.  Both must preserve liveness; the difference is the message and
// memory bill, which the ablation benchmark quantifies.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

struct PolicyRig {
  PolicyRig(TransferPolicy policy, size_t nodes = 3) : cluster({.num_nodes = nodes}) {
    for (size_t i = 0; i < nodes; ++i) {
      cluster.node(i).gc().set_transfer_policy(policy);
      mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
    }
    b = cluster.CreateBunch(0);
    other = cluster.CreateBunch(0);
    // Node 0 creates obj with an inter-bunch reference out of it.
    obj = mutators[0]->Alloc(b, 2);
    out = mutators[0]->Alloc(other, 1);
    mutators[0]->AddRoot(out);
    mutators[0]->WriteRef(obj, 0, out);
  }
  Cluster cluster;
  std::vector<std::unique_ptr<Mutator>> mutators;
  BunchId b = kInvalidBunch, other = kInvalidBunch;
  Gaddr obj = kNullAddr, out = kNullAddr;
};

TEST(TransferPolicy, IntraSspCreatesOneLink) {
  PolicyRig rig(TransferPolicy::kIntraSsp);
  ASSERT_TRUE(rig.mutators[1]->AcquireWrite(rig.obj));
  rig.mutators[1]->Release(rig.obj);
  // One intra SSP; the inter stub stays where it was created; NO new scion
  // messages flowed.
  EXPECT_EQ(rig.cluster.node(0).gc().TablesOf(rig.b).intra_scions.size(), 1u);
  EXPECT_EQ(rig.cluster.node(1).gc().TablesOf(rig.b).intra_stubs.size(), 1u);
  EXPECT_EQ(rig.cluster.node(1).gc().TablesOf(rig.b).inter_stubs.size(), 0u);
  EXPECT_EQ(rig.cluster.node(1).gc().stats().scion_messages_sent, 0u);
}

TEST(TransferPolicy, ReplicateCopiesInterStubs) {
  PolicyRig rig(TransferPolicy::kReplicateInterSsp);
  ASSERT_TRUE(rig.mutators[1]->AcquireWrite(rig.obj));
  rig.mutators[1]->Release(rig.obj);
  rig.cluster.Pump();
  // The new owner holds its own copy of the inter stub; no intra SSP exists.
  EXPECT_EQ(rig.cluster.node(1).gc().TablesOf(rig.b).inter_stubs.size(), 1u);
  EXPECT_TRUE(rig.cluster.node(1).gc().TablesOf(rig.b).intra_stubs.empty());
  EXPECT_TRUE(rig.cluster.node(0).gc().TablesOf(rig.b).intra_scions.empty());
  // A second scion now guards the target (one per stub copy): the extra
  // memory the paper's design avoids.
  size_t scions = rig.cluster.node(0).gc().TablesOf(rig.other).inter_scions.size() +
                  rig.cluster.node(1).gc().TablesOf(rig.other).inter_scions.size();
  EXPECT_EQ(scions, 2u);
}

TEST(TransferPolicy, BothPoliciesKeepTargetAlive) {
  for (TransferPolicy policy : {TransferPolicy::kIntraSsp, TransferPolicy::kReplicateInterSsp}) {
    PolicyRig rig(policy);
    ASSERT_TRUE(rig.mutators[1]->AcquireWrite(rig.obj));
    rig.mutators[1]->Release(rig.obj);
    rig.mutators[1]->AddRoot(rig.obj);
    rig.cluster.Pump();
    // Collect everywhere a few times: the target must survive as long as the
    // (moved) object still references it.
    for (int round = 0; round < 3; ++round) {
      for (NodeId n = 0; n < 3; ++n) {
        rig.cluster.node(n).gc().CollectBunch(rig.b);
        rig.cluster.Pump();
        rig.cluster.node(n).gc().CollectBunch(rig.other);
        rig.cluster.Pump();
      }
    }
    Gaddr out_now = rig.cluster.node(0).dsm().ResolveAddr(rig.out);
    EXPECT_TRUE(rig.cluster.node(0).store().HasObjectAt(out_now))
        << "policy " << static_cast<int>(policy);
  }
}

TEST(TransferPolicy, BothPoliciesReclaimOnceDead) {
  for (TransferPolicy policy : {TransferPolicy::kIntraSsp, TransferPolicy::kReplicateInterSsp}) {
    PolicyRig rig(policy);
    ASSERT_TRUE(rig.mutators[1]->AcquireWrite(rig.obj));
    rig.mutators[1]->Release(rig.obj);
    size_t root = rig.mutators[1]->AddRoot(rig.obj);
    rig.cluster.Pump();
    // Drop the object everywhere; the inter-bunch stub(s) must die with it
    // and the target must eventually be reclaimed (it has no mutator root —
    // drop node 0's root on it too).
    rig.mutators[0]->ClearRoot(0);
    rig.mutators[1]->ClearRoot(root);
    bool reclaimed = false;
    for (int round = 0; round < 6 && !reclaimed; ++round) {
      for (NodeId n = 0; n < 3; ++n) {
        rig.cluster.node(n).gc().CollectGroup();
        rig.cluster.Pump();
      }
      reclaimed = rig.cluster.node(0).gc().stats().objects_reclaimed +
                      rig.cluster.node(1).gc().stats().objects_reclaimed >=
                  2;
    }
    EXPECT_TRUE(reclaimed) << "policy " << static_cast<int>(policy);
  }
}

TEST(TransferPolicy, ReplicationCostGrowsWithStubCount) {
  // The quantitative §3.2 argument: with S inter-bunch references, the
  // replicate policy ships S stubs per transfer (scion-messages when targets
  // are remote); the intra-SSP policy ships exactly one link regardless.
  constexpr size_t kStubs = 5;
  for (TransferPolicy policy : {TransferPolicy::kIntraSsp, TransferPolicy::kReplicateInterSsp}) {
    Cluster cluster({.num_nodes = 2});
    for (NodeId n = 0; n < 2; ++n) {
      cluster.node(n).gc().set_transfer_policy(policy);
    }
    Mutator m0(&cluster.node(0));
    Mutator m1(&cluster.node(1));
    BunchId b = cluster.CreateBunch(0);
    BunchId other = cluster.CreateBunch(0);
    Gaddr obj = m0.Alloc(b, kStubs);
    for (size_t i = 0; i < kStubs; ++i) {
      Gaddr out = m0.Alloc(other, 1);
      m0.AddRoot(out);
      m0.WriteRef(obj, i, out);
    }
    ASSERT_TRUE(m1.AcquireWrite(obj));
    m1.Release(obj);
    cluster.Pump();
    size_t new_owner_stubs = cluster.node(1).gc().TablesOf(b).inter_stubs.size() +
                             cluster.node(1).gc().TablesOf(b).intra_stubs.size();
    if (policy == TransferPolicy::kIntraSsp) {
      EXPECT_EQ(new_owner_stubs, 1u);  // one intra link
    } else {
      EXPECT_EQ(new_owner_stubs, kStubs);  // S replicated stubs
    }
  }
}

}  // namespace
}  // namespace bmx
