// Write-barrier and SSP-creation tests (paper §3.1, §3.2).

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

class BarrierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = 2});
    m0_ = std::make_unique<Mutator>(&cluster_->node(0));
    m1_ = std::make_unique<Mutator>(&cluster_->node(1));
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Mutator> m0_;
  std::unique_ptr<Mutator> m1_;
};

TEST_F(BarrierTest, IntraBunchReferenceCreatesNoSsp) {
  BunchId b = cluster_->CreateBunch(0);
  Gaddr a = m0_->Alloc(b, 2);
  Gaddr c = m0_->Alloc(b, 2);
  m0_->WriteRef(a, 0, c);
  auto tables = cluster_->node(0).gc().TablesOf(b);
  EXPECT_TRUE(tables.inter_stubs.empty());
  EXPECT_TRUE(tables.inter_scions.empty());
  EXPECT_EQ(cluster_->node(0).gc().stats().barrier_writes, 1u);
  EXPECT_EQ(cluster_->node(0).gc().stats().barrier_inter_bunch, 0u);
}

TEST_F(BarrierTest, RepeatedSameStoreDoesNotDuplicateSsp) {
  BunchId b1 = cluster_->CreateBunch(0);
  BunchId b2 = cluster_->CreateBunch(0);
  Gaddr src = m0_->Alloc(b1, 2);
  Gaddr dst = m0_->Alloc(b2, 1);
  m0_->WriteRef(src, 0, dst);
  m0_->WriteRef(src, 0, dst);
  m0_->WriteRef(src, 0, dst);
  auto tables = cluster_->node(0).gc().TablesOf(b1);
  EXPECT_EQ(tables.inter_stubs.size(), 1u);
  EXPECT_EQ(cluster_->node(0).gc().TablesOf(b2).inter_scions.size(), 1u);
}

TEST_F(BarrierTest, OverwriteWithDifferentTargetCreatesSecondStub) {
  BunchId b1 = cluster_->CreateBunch(0);
  BunchId b2 = cluster_->CreateBunch(0);
  Gaddr src = m0_->Alloc(b1, 2);
  Gaddr t1 = m0_->Alloc(b2, 1);
  Gaddr t2 = m0_->Alloc(b2, 1);
  m0_->WriteRef(src, 0, t1);
  m0_->WriteRef(src, 0, t2);
  // Both stubs exist until the next BGC filters the dead one (§4.3).
  EXPECT_EQ(cluster_->node(0).gc().TablesOf(b1).inter_stubs.size(), 2u);
}

TEST_F(BarrierTest, RemoteTargetBunchTriggersScionMessage) {
  BunchId b1 = cluster_->CreateBunch(0);
  BunchId b2 = cluster_->CreateBunch(1);
  // Target object lives only at node 1 (bunch b2 unmapped at node 0).
  Gaddr target = m1_->Alloc(b2, 1);

  Gaddr src = m0_->Alloc(b1, 2);
  m0_->WriteRef(src, 0, target);
  EXPECT_EQ(cluster_->node(0).gc().stats().scion_messages_sent, 1u);
  // Stub exists immediately; scion appears at node 1 after delivery.
  auto stubs = cluster_->node(0).gc().TablesOf(b1).inter_stubs;
  ASSERT_EQ(stubs.size(), 1u);
  EXPECT_EQ(stubs[0].scion_node, 1u);
  EXPECT_TRUE(cluster_->node(1).gc().TablesOf(b2).inter_scions.empty());
  cluster_->Pump();
  auto scions = cluster_->node(1).gc().TablesOf(b2).inter_scions;
  ASSERT_EQ(scions.size(), 1u);
  EXPECT_EQ(scions[0].stub_id, stubs[0].id);
  EXPECT_EQ(scions[0].src_node, 0u);
  EXPECT_EQ(scions[0].src_bunch, b1);
}

TEST_F(BarrierTest, DuplicateScionMessageIsIdempotent) {
  BunchId b1 = cluster_->CreateBunch(0);
  BunchId b2 = cluster_->CreateBunch(1);
  Gaddr target = m1_->Alloc(b2, 1);
  Gaddr src = m0_->Alloc(b1, 2);
  m0_->WriteRef(src, 0, target);
  cluster_->Pump();
  // Re-deliver the same scion message by hand.
  auto stubs = cluster_->node(0).gc().TablesOf(b1).inter_stubs;
  ASSERT_EQ(stubs.size(), 1u);
  auto dup = std::make_shared<ScionMessagePayload>();
  dup->src_node = 0;
  dup->src_bunch = b1;
  dup->stub_id = stubs[0].id;
  dup->target_addr = stubs[0].target_addr;
  dup->target_bunch = b2;
  cluster_->network().Send(0, 1, std::move(dup));
  cluster_->Pump();
  EXPECT_EQ(cluster_->node(1).gc().TablesOf(b2).inter_scions.size(), 1u);
}

TEST_F(BarrierTest, NullStoreClearsSlotWithoutSsp) {
  BunchId b1 = cluster_->CreateBunch(0);
  BunchId b2 = cluster_->CreateBunch(0);
  Gaddr src = m0_->Alloc(b1, 2);
  Gaddr dst = m0_->Alloc(b2, 1);
  m0_->WriteRef(src, 0, dst);
  m0_->WriteRef(src, 0, kNullAddr);
  EXPECT_EQ(m0_->ReadRef(src, 0), kNullAddr);
  EXPECT_EQ(cluster_->node(0).gc().stats().barrier_inter_bunch, 1u);
}

TEST_F(BarrierTest, WriteWordClearsRefBit) {
  BunchId b = cluster_->CreateBunch(0);
  Gaddr a = m0_->Alloc(b, 2);
  Gaddr c = m0_->Alloc(b, 1);
  m0_->WriteRef(a, 0, c);
  EXPECT_TRUE(cluster_->node(0).gc().SlotIsRef(a, 0));
  m0_->WriteWord(a, 0, 12345);
  EXPECT_FALSE(cluster_->node(0).gc().SlotIsRef(a, 0));
}

TEST_F(BarrierTest, SameObjectSeesThroughForwarders) {
  BunchId b = cluster_->CreateBunch(0);
  Gaddr a = m0_->Alloc(b, 2);
  m0_->AddRoot(a);
  cluster_->node(0).gc().CollectBunch(b);
  Gaddr moved = cluster_->node(0).gc().Canonical(a);
  ASSERT_NE(moved, a);
  EXPECT_TRUE(m0_->SameObject(a, moved));
  EXPECT_FALSE(m0_->SameObject(a, kNullAddr));
  Gaddr other = m0_->Alloc(b, 1);
  EXPECT_FALSE(m0_->SameObject(a, other));
}

}  // namespace
}  // namespace bmx
