// The paper's central claim (§8/§10), tested head-on: "the BGC never
// acquires a token for any object, and consequently does not interfere with
// the DSM consistency protocol", and "information exchanged among nodes is
// either piggy-backed onto messages due to the consistency protocol, or
// exchanged in the background."
//
// Method: freeze the DSM statistics and the network's per-kind counters,
// run collections of every flavour, and take a census of exactly which
// messages and token transitions the collector caused.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

struct Census {
  uint64_t gc_tokens = 0;
  uint64_t invalidations = 0;
  uint64_t dsm_messages = 0;
  uint64_t gc_background_messages = 0;
  uint64_t gc_foreground_messages = 0;
};

Census TakeCensus(Cluster& cluster, size_t nodes) {
  Census census;
  for (size_t n = 0; n < nodes; ++n) {
    census.gc_tokens += cluster.node(n).dsm().GcTokenAcquires();
    census.invalidations += cluster.node(n).dsm().stats().read_copies_invalidated;
  }
  census.dsm_messages = cluster.network().stats().SentInCategory(MsgCategory::kDsm);
  census.gc_background_messages =
      cluster.network().stats().SentInCategory(MsgCategory::kGcBackground);
  census.gc_foreground_messages =
      cluster.network().stats().SentInCategory(MsgCategory::kGcForeground);
  return census;
}

class InterferenceTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 3;

  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterOptions{.num_nodes = kNodes});
    for (size_t i = 0; i < kNodes; ++i) {
      mutators_.push_back(std::make_unique<Mutator>(&cluster_->node(i)));
    }
    bunch_ = cluster_->CreateBunch(0);
    other_ = cluster_->CreateBunch(0);
    GraphBuilder builder(cluster_.get(), mutators_[0].get());
    head_ = builder.BuildList(bunch_, 30);
    mutators_[0]->AddRoot(head_);
    // Cross-bunch references so SSP machinery is in play.
    Gaddr ext = mutators_[0]->Alloc(other_, 1);
    mutators_[0]->AddRoot(ext);
    mutators_[0]->WriteRef(head_, 1, ext);
    // Every node caches the full list.
    for (size_t n = 1; n < kNodes; ++n) {
      Gaddr cur = head_;
      while (cur != kNullAddr) {
        EXPECT_TRUE(mutators_[n]->AcquireRead(cur));
        Gaddr next = mutators_[n]->ReadRef(cur, 0);
        mutators_[n]->Release(cur);
        cur = next;
      }
      mutators_[n]->AddRoot(head_);
    }
    cluster_->Pump();
    // Freeze counters.
    cluster_->network().ResetStats();
    for (size_t n = 0; n < kNodes; ++n) {
      cluster_->node(n).dsm().ResetStats();
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Mutator>> mutators_;
  BunchId bunch_ = kInvalidBunch, other_ = kInvalidBunch;
  Gaddr head_ = kNullAddr;
};

TEST_F(InterferenceTest, BgcCausesNoDsmTrafficAtAll) {
  cluster_->node(0).gc().CollectBunch(bunch_);
  cluster_->Pump();
  Census census = TakeCensus(*cluster_, kNodes);
  EXPECT_EQ(census.gc_tokens, 0u);
  EXPECT_EQ(census.invalidations, 0u);
  // Not one message of the consistency protocol moved on GC's behalf.
  EXPECT_EQ(census.dsm_messages, 0u);
  EXPECT_EQ(census.gc_foreground_messages, 0u);
  // Background traffic is allowed: reachability tables.
  EXPECT_GT(census.gc_background_messages, 0u);
}

TEST_F(InterferenceTest, AllNodesCollectingStillZeroDsmTraffic) {
  for (size_t n = 0; n < kNodes; ++n) {
    cluster_->node(n).gc().CollectBunch(bunch_);
    cluster_->Pump();
  }
  Census census = TakeCensus(*cluster_, kNodes);
  EXPECT_EQ(census.gc_tokens, 0u);
  EXPECT_EQ(census.invalidations, 0u);
  EXPECT_EQ(census.dsm_messages, 0u);
}

TEST_F(InterferenceTest, GgcIsEquallySilent) {
  for (size_t n = 0; n < kNodes; ++n) {
    cluster_->node(n).gc().CollectGroup();
    cluster_->Pump();
  }
  Census census = TakeCensus(*cluster_, kNodes);
  EXPECT_EQ(census.gc_tokens, 0u);
  EXPECT_EQ(census.invalidations, 0u);
  EXPECT_EQ(census.dsm_messages, 0u);
}

TEST_F(InterferenceTest, ReadersKeepTheirTokensThroughCollections) {
  // Every remote replica's read token survives the owner's collection:
  // re-reading the working set needs zero messages.
  cluster_->node(0).gc().CollectBunch(bunch_);
  cluster_->Pump();
  cluster_->network().ResetStats();
  for (size_t n = 1; n < kNodes; ++n) {
    Gaddr cur = cluster_->node(n).dsm().LocalCopyOf(head_);
    while (cur != kNullAddr) {
      EXPECT_TRUE(mutators_[n]->AcquireRead(cur));
      Gaddr next = mutators_[n]->ReadRef(cur, 0);
      mutators_[n]->Release(cur);
      cur = next;
    }
  }
  EXPECT_EQ(cluster_->network().stats().TotalSent(), 0u);
}

TEST_F(InterferenceTest, ReclamationUsesOnlyBackgroundMessages) {
  cluster_->node(0).gc().CollectBunch(bunch_);
  cluster_->Pump();
  cluster_->network().ResetStats();
  cluster_->node(0).gc().ReclaimFromSpaces(bunch_);
  cluster_->Pump();
  Census census = TakeCensus(*cluster_, kNodes);
  EXPECT_EQ(census.gc_tokens, 0u);
  EXPECT_EQ(census.gc_foreground_messages, 0u);
  EXPECT_GT(census.gc_background_messages, 0u);  // §4.5's explicit messages
}

TEST_F(InterferenceTest, MutatorWritesProceedBetweenCollections) {
  // Interleave mutation with collections on every node; all writes commit
  // and the structure stays intact.
  for (int round = 0; round < 5; ++round) {
    NodeId writer = round % kNodes;
    ASSERT_TRUE(mutators_[writer]->AcquireWrite(head_));
    mutators_[writer]->WriteWord(head_, 1, 5000 + round);
    mutators_[writer]->Release(head_);
    cluster_->node((round + 1) % kNodes).gc().CollectBunch(bunch_);
    cluster_->Pump();
  }
  ASSERT_TRUE(mutators_[0]->AcquireRead(head_));
  EXPECT_EQ(mutators_[0]->ReadWord(head_, 1), 5004u);
  mutators_[0]->Release(head_);
  Census census = TakeCensus(*cluster_, kNodes);
  EXPECT_EQ(census.gc_tokens, 0u);
}

}  // namespace
}  // namespace bmx
