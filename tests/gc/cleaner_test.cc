// Scion-cleaner tests (paper §6): idempotent versioned tables under loss and
// duplication, stale-table rejection, deferred processing, and the
// intra-bunch SSP deletion cascade of §6.2.

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

Oid OidOf(Node& node, Gaddr addr) {
  return node.store().HeaderOf(node.dsm().ResolveAddr(addr))->oid;
}

// Builds: node0 holds `src` (bunch b1, rooted) -> `dst` (bunch b2, owned by
// node1 and rooted nowhere else).  The SSP is remote: stub at node0, scion at
// node1.
struct CrossSetup {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Mutator> m0;
  std::unique_ptr<Mutator> m1;
  BunchId b1 = kInvalidBunch;
  BunchId b2 = kInvalidBunch;
  Gaddr src = kNullAddr;
  Gaddr dst = kNullAddr;
};

CrossSetup MakeCross(CleanerMode mode = CleanerMode::kImmediate) {
  CrossSetup s;
  s.cluster = std::make_unique<Cluster>(
      ClusterOptions{.num_nodes = 2, .cleaner_mode = mode});
  s.m0 = std::make_unique<Mutator>(&s.cluster->node(0));
  s.m1 = std::make_unique<Mutator>(&s.cluster->node(1));
  s.b1 = s.cluster->CreateBunch(0);
  s.b2 = s.cluster->CreateBunch(1);
  s.dst = s.m1->Alloc(s.b2, 1);
  s.src = s.m0->Alloc(s.b1, 2);
  s.m0->AddRoot(s.src);
  s.m0->WriteRef(s.src, 0, s.dst);  // remote target: scion-message to node 1
  s.cluster->Pump();
  return s;
}

TEST(ScionCleaner, DeletionAfterStubDrop) {
  CrossSetup s = MakeCross();
  ASSERT_EQ(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.size(), 1u);

  s.m0->WriteRef(s.src, 0, kNullAddr);
  s.cluster->node(0).gc().CollectBunch(s.b1);
  s.cluster->Pump();
  EXPECT_TRUE(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.empty());
  EXPECT_EQ(s.cluster->node(1).gc().stats().inter_scions_deleted, 1u);

  s.cluster->node(1).gc().CollectBunch(s.b2);
  EXPECT_GE(s.cluster->node(1).gc().stats().objects_reclaimed, 1u);
}

TEST(ScionCleaner, SurvivingStubKeepsScion) {
  CrossSetup s = MakeCross();
  s.cluster->node(0).gc().CollectBunch(s.b1);
  s.cluster->Pump();
  EXPECT_EQ(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.size(), 1u);
  s.cluster->node(1).gc().CollectBunch(s.b2);
  EXPECT_EQ(s.cluster->node(1).gc().stats().objects_reclaimed, 0u);
}

TEST(ScionCleaner, StaleTableIsIgnored) {
  CrossSetup s = MakeCross();
  // Deliver a *stale* (version 0 would be below the first BGC's version 1)
  // empty table after a legitimate one.
  s.cluster->node(0).gc().CollectBunch(s.b1);
  s.cluster->Pump();
  ASSERT_EQ(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.size(), 1u);

  auto stale = std::make_shared<ReachabilityTablePayload>();
  stale->src_node = 0;
  stale->bunch = s.b1;
  stale->version = 1;  // same as the already-seen version -> stale
  // empty stub list would delete the scion if it were accepted
  s.cluster->network().Send(0, 1, std::move(stale));
  s.cluster->Pump();
  EXPECT_EQ(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.size(), 1u);
  EXPECT_GE(s.cluster->node(1).gc().stats().tables_ignored_stale, 1u);
}

TEST(ScionCleaner, TablesSurviveLossBecauseResendIsIdempotent) {
  CrossSetup s = MakeCross();
  s.m0->WriteRef(s.src, 0, kNullAddr);

  // Drop ALL unreliable traffic for the first collection: the table is lost.
  s.cluster->network().set_loss_rate(1.0);
  s.cluster->node(0).gc().CollectBunch(s.b1);
  s.cluster->Pump();
  EXPECT_EQ(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.size(), 1u);

  // Network heals; the next BGC resends the full table — no state was lost.
  s.cluster->network().set_loss_rate(0.0);
  s.cluster->node(0).gc().CollectBunch(s.b1);
  s.cluster->Pump();
  EXPECT_TRUE(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.empty());
}

TEST(ScionCleaner, DuplicatedTablesAreHarmless) {
  CrossSetup s = MakeCross();
  s.cluster->network().set_duplication_rate(1.0);
  s.cluster->node(0).gc().CollectBunch(s.b1);
  s.cluster->Pump();
  // Stub alive: scion must survive double delivery.
  EXPECT_EQ(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.size(), 1u);
  EXPECT_GE(s.cluster->node(1).gc().stats().tables_ignored_stale, 1u);
}

TEST(ScionCleaner, DeferredModeProcessesAtNextCollection) {
  CrossSetup s = MakeCross(CleanerMode::kDeferred);
  s.m0->WriteRef(s.src, 0, kNullAddr);
  s.cluster->node(0).gc().CollectBunch(s.b1);
  s.cluster->Pump();
  // Table delivered but parked; the scion still stands.
  EXPECT_EQ(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.size(), 1u);
  EXPECT_GE(s.cluster->node(1).gc().stats().tables_deferred, 1u);

  // The next local collection processes the backlog first (§6.1), so the
  // same run already reclaims the object.
  s.cluster->node(1).gc().CollectBunch(s.b2);
  EXPECT_TRUE(s.cluster->node(1).gc().TablesOf(s.b2).inter_scions.empty());
  EXPECT_GE(s.cluster->node(1).gc().stats().objects_reclaimed, 1u);
}

// §6.2's full narrative: O1 cached on N1 (mutator), N2 (owner, intra stub to
// N3), N3 (intra scion).  Deleting N1's reference must unravel everything,
// in the order the paper describes.
TEST(ScionCleaner, IntraBunchSspDeletionCascade) {
  Cluster cluster({.num_nodes = 3});
  Mutator m1(&cluster.node(0));  // paper's N1
  Mutator m2(&cluster.node(1));  // paper's N2
  Mutator m3(&cluster.node(2));  // paper's N3
  BunchId b = cluster.CreateBunch(2);
  BunchId other = cluster.CreateBunch(2);

  // N3 creates O1 and an inter-bunch reference out of it (so N3 holds an
  // inter-bunch stub for O1); the target lives in `other`.
  Gaddr o1 = m3.Alloc(b, 2);
  Gaddr out = m3.Alloc(other, 1);
  m3.AddRoot(out);
  m3.WriteRef(o1, 0, out);

  // Ownership moves N3 -> N2: invariant 3 creates the intra SSP
  // (stub at N2, scion at N3).
  ASSERT_TRUE(m2.AcquireWrite(o1));
  m2.Release(o1);
  ASSERT_EQ(cluster.node(1).gc().TablesOf(b).intra_stubs.size(), 1u);
  ASSERT_EQ(cluster.node(2).gc().TablesOf(b).intra_scions.size(), 1u);

  // N1 caches and roots O1.
  ASSERT_TRUE(m1.AcquireRead(o1));
  m1.Release(o1);
  size_t root = m1.AddRoot(o1);
  Oid oid = OidOf(cluster.node(0), o1);

  // N3 drops its mutator root on O1 (it has none) and collects: O1 survives
  // there via the intra scion (weak), and — critically — emits NO exiting
  // ownerPtr, breaking the would-be cycle (§6.2).
  cluster.node(2).gc().CollectBunch(b);
  cluster.Pump();
  EXPECT_EQ(cluster.node(1).dsm().EnteringFor(b).count(oid), 1u);
  EXPECT_FALSE(cluster.node(1).dsm().EnteringFor(b).at(oid).count(2) > 0)
      << "weak-only replica at N3 must not contribute an entering ownerPtr";

  // N1 drops its root; its BGC stops reporting the exiting ownerPtr; the
  // cleaner at N2 removes the last entering entry.
  m1.ClearRoot(root);
  cluster.node(0).gc().CollectBunch(b);
  cluster.Pump();
  EXPECT_EQ(cluster.node(1).dsm().EnteringFor(b).count(oid), 0u);

  // N2's next BGC finds O1 unreachable, reclaims it, drops the intra stub;
  // the cleaner at N3 deletes the intra scion.
  cluster.node(1).gc().CollectBunch(b);
  cluster.Pump();
  EXPECT_GE(cluster.node(1).gc().stats().objects_reclaimed, 1u);
  EXPECT_TRUE(cluster.node(1).gc().TablesOf(b).intra_stubs.empty());
  EXPECT_TRUE(cluster.node(2).gc().TablesOf(b).intra_scions.empty());

  // Finally N3 reclaims its replica too, and the inter-bunch stub out of O1
  // dies with it.
  cluster.node(2).gc().CollectBunch(b);
  EXPECT_GE(cluster.node(2).gc().stats().objects_reclaimed, 1u);
  EXPECT_TRUE(cluster.node(2).gc().TablesOf(b).inter_stubs.empty());
}

}  // namespace
}  // namespace bmx
