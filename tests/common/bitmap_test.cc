#include "src/common/bitmap.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace bmx {
namespace {

TEST(Bitmap, SetTestClear) {
  Bitmap bm(200);
  EXPECT_EQ(bm.size(), 200u);
  EXPECT_FALSE(bm.Test(0));
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(199));
  EXPECT_FALSE(bm.Test(65));
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.CountSet(), 3u);
}

TEST(Bitmap, ClearAll) {
  Bitmap bm(100);
  for (size_t i = 0; i < 100; i += 7) {
    bm.Set(i);
  }
  EXPECT_GT(bm.CountSet(), 0u);
  bm.ClearAll();
  EXPECT_EQ(bm.CountSet(), 0u);
}

TEST(Bitmap, FindNextSet) {
  Bitmap bm(300);
  bm.Set(5);
  bm.Set(64);
  bm.Set(128);
  bm.Set(299);
  EXPECT_EQ(bm.FindNextSet(0), 5u);
  EXPECT_EQ(bm.FindNextSet(5), 5u);
  EXPECT_EQ(bm.FindNextSet(6), 64u);
  EXPECT_EQ(bm.FindNextSet(65), 128u);
  EXPECT_EQ(bm.FindNextSet(129), 299u);
  EXPECT_EQ(bm.FindNextSet(300), 300u);
}

TEST(Bitmap, FindNextSetEmpty) {
  Bitmap bm(128);
  EXPECT_EQ(bm.FindNextSet(0), 128u);
}

TEST(Bitmap, IterationMatchesSetBits) {
  Rng rng(42);
  Bitmap bm(1000);
  std::vector<size_t> expected;
  for (size_t i = 0; i < 1000; ++i) {
    if (rng.Chance(0.1)) {
      bm.Set(i);
      expected.push_back(i);
    }
  }
  std::vector<size_t> found;
  for (size_t bit = bm.FindNextSet(0); bit < bm.size(); bit = bm.FindNextSet(bit + 1)) {
    found.push_back(bit);
  }
  EXPECT_EQ(found, expected);
  EXPECT_EQ(bm.CountSet(), expected.size());
}

TEST(Bitmap, FindNextSetInRange) {
  Bitmap bm(300);
  bm.Set(5);
  bm.Set(64);
  bm.Set(299);
  EXPECT_EQ(bm.FindNextSetInRange(0, 300), 5u);
  EXPECT_EQ(bm.FindNextSetInRange(6, 64), 64u);   // none in [6,64): clamps to to
  EXPECT_EQ(bm.FindNextSetInRange(6, 65), 64u);
  EXPECT_EQ(bm.FindNextSetInRange(65, 299), 299u);  // none strictly inside
  EXPECT_EQ(bm.FindNextSetInRange(65, 300), 299u);
  EXPECT_EQ(bm.FindNextSetInRange(100, 4000), 299u);  // to clamps to size
}

TEST(Bitmap, ForEachSetWordBoundaries) {
  // Bits 63 and 64 straddle the first word boundary; 127/128 the second.
  Bitmap bm(256);
  for (size_t bit : {0u, 63u, 64u, 127u, 128u, 255u}) {
    bm.Set(bit);
  }
  std::vector<size_t> found;
  bm.ForEachSet([&](size_t bit) { found.push_back(bit); });
  EXPECT_EQ(found, (std::vector<size_t>{0, 63, 64, 127, 128, 255}));
}

TEST(Bitmap, ForEachSetInRangeMidWordEnds) {
  Bitmap bm(256);
  for (size_t i = 0; i < 256; ++i) {
    bm.Set(i);
  }
  // Range ends mid-word: bits at and past `to` must not be visited.
  std::vector<size_t> found;
  bm.ForEachSetInRange(60, 70, [&](size_t bit) { found.push_back(bit); });
  EXPECT_EQ(found, (std::vector<size_t>{60, 61, 62, 63, 64, 65, 66, 67, 68, 69}));
  // Range starting mid-word.
  found.clear();
  bm.ForEachSetInRange(130, 133, [&](size_t bit) { found.push_back(bit); });
  EXPECT_EQ(found, (std::vector<size_t>{130, 131, 132}));
  // Empty range.
  found.clear();
  EXPECT_EQ(bm.ForEachSetInRange(70, 70, [&](size_t bit) { found.push_back(bit); }), 0u);
  EXPECT_TRUE(found.empty());
}

TEST(Bitmap, ForEachSetCountsZeroWordsSkipped) {
  Bitmap bm(320);  // 5 words
  bm.Set(0);
  bm.Set(300);  // words 1..3 are all-zero
  size_t visited = 0;
  size_t zero_words = bm.ForEachSet([&](size_t) { visited++; });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(zero_words, 3u);

  Bitmap empty(256);
  EXPECT_EQ(empty.ForEachSet([](size_t) { FAIL(); }), 4u);

  Bitmap full(128);
  for (size_t i = 0; i < 128; ++i) {
    full.Set(i);
  }
  size_t count = 0;
  EXPECT_EQ(full.ForEachSet([&](size_t) { count++; }), 0u);
  EXPECT_EQ(count, 128u);
}

TEST(Bitmap, ForEachSetAndInRange) {
  Bitmap a(256);
  Bitmap b(256);
  for (size_t i = 0; i < 256; i += 2) {
    a.Set(i);  // evens
  }
  for (size_t i = 0; i < 256; i += 3) {
    b.Set(i);  // multiples of 3
  }
  std::vector<size_t> found;
  Bitmap::ForEachSetAndInRange(a, b, 0, 256, [&](size_t bit) { found.push_back(bit); });
  std::vector<size_t> expected;
  for (size_t i = 0; i < 256; i += 6) {
    expected.push_back(i);
  }
  EXPECT_EQ(found, expected);
  // Sub-range with mid-word ends.
  found.clear();
  Bitmap::ForEachSetAndInRange(a, b, 7, 61, [&](size_t bit) { found.push_back(bit); });
  EXPECT_EQ(found, (std::vector<size_t>{12, 18, 24, 30, 36, 42, 48, 54, 60}));
}

// Property test: word-level iteration is exactly equivalent to the bit-by-bit
// FindNextSet loop on random bitmaps and random sub-ranges.
TEST(Bitmap, WordIterationEquivalenceProperty) {
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    size_t nbits = 1 + rng.Below(520);  // covers <1 word through >8 words
    Bitmap bm(nbits);
    for (size_t i = 0; i < nbits; ++i) {
      if (rng.Chance(0.2)) {
        bm.Set(i);
      }
    }
    size_t from = rng.Below(nbits + 1);
    size_t to = from + rng.Below(nbits + 1 - from);
    std::vector<size_t> reference;
    for (size_t bit = bm.FindNextSet(from); bit < to; bit = bm.FindNextSet(bit + 1)) {
      reference.push_back(bit);
    }
    std::vector<size_t> kernel;
    bm.ForEachSetInRange(from, to, [&](size_t bit) { kernel.push_back(bit); });
    EXPECT_EQ(kernel, reference) << "nbits=" << nbits << " from=" << from << " to=" << to;
    EXPECT_EQ(bm.CountSetInRange(from, to), reference.size());
  }
}

TEST(Bitmap, WordsRoundTrip) {
  Bitmap a(256);
  a.Set(1);
  a.Set(100);
  a.Set(255);
  Bitmap b(256);
  b.LoadWords(a.words());
  EXPECT_TRUE(b.Test(1));
  EXPECT_TRUE(b.Test(100));
  EXPECT_TRUE(b.Test(255));
  EXPECT_EQ(b.CountSet(), 3u);
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Types, AddressGeometry) {
  SegmentId seg = 12;
  Gaddr base = SegmentBase(seg);
  EXPECT_EQ(SegmentOf(base), seg);
  EXPECT_EQ(OffsetInSegment(base), 0u);
  Gaddr addr = MakeAddr(seg, 4096);
  EXPECT_EQ(SegmentOf(addr), seg);
  EXPECT_EQ(OffsetInSegment(addr), 4096u);
  EXPECT_EQ(SegmentOf(addr + kSegmentBytes), seg + 1);
}

}  // namespace
}  // namespace bmx
