#include "src/common/bitmap.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace bmx {
namespace {

TEST(Bitmap, SetTestClear) {
  Bitmap bm(200);
  EXPECT_EQ(bm.size(), 200u);
  EXPECT_FALSE(bm.Test(0));
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(199));
  EXPECT_FALSE(bm.Test(65));
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.CountSet(), 3u);
}

TEST(Bitmap, ClearAll) {
  Bitmap bm(100);
  for (size_t i = 0; i < 100; i += 7) {
    bm.Set(i);
  }
  EXPECT_GT(bm.CountSet(), 0u);
  bm.ClearAll();
  EXPECT_EQ(bm.CountSet(), 0u);
}

TEST(Bitmap, FindNextSet) {
  Bitmap bm(300);
  bm.Set(5);
  bm.Set(64);
  bm.Set(128);
  bm.Set(299);
  EXPECT_EQ(bm.FindNextSet(0), 5u);
  EXPECT_EQ(bm.FindNextSet(5), 5u);
  EXPECT_EQ(bm.FindNextSet(6), 64u);
  EXPECT_EQ(bm.FindNextSet(65), 128u);
  EXPECT_EQ(bm.FindNextSet(129), 299u);
  EXPECT_EQ(bm.FindNextSet(300), 300u);
}

TEST(Bitmap, FindNextSetEmpty) {
  Bitmap bm(128);
  EXPECT_EQ(bm.FindNextSet(0), 128u);
}

TEST(Bitmap, IterationMatchesSetBits) {
  Rng rng(42);
  Bitmap bm(1000);
  std::vector<size_t> expected;
  for (size_t i = 0; i < 1000; ++i) {
    if (rng.Chance(0.1)) {
      bm.Set(i);
      expected.push_back(i);
    }
  }
  std::vector<size_t> found;
  for (size_t bit = bm.FindNextSet(0); bit < bm.size(); bit = bm.FindNextSet(bit + 1)) {
    found.push_back(bit);
  }
  EXPECT_EQ(found, expected);
  EXPECT_EQ(bm.CountSet(), expected.size());
}

TEST(Bitmap, WordsRoundTrip) {
  Bitmap a(256);
  a.Set(1);
  a.Set(100);
  a.Set(255);
  Bitmap b(256);
  b.LoadWords(a.words());
  EXPECT_TRUE(b.Test(1));
  EXPECT_TRUE(b.Test(100));
  EXPECT_TRUE(b.Test(255));
  EXPECT_EQ(b.CountSet(), 3u);
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Types, AddressGeometry) {
  SegmentId seg = 12;
  Gaddr base = SegmentBase(seg);
  EXPECT_EQ(SegmentOf(base), seg);
  EXPECT_EQ(OffsetInSegment(base), 0u);
  Gaddr addr = MakeAddr(seg, 4096);
  EXPECT_EQ(SegmentOf(addr), seg);
  EXPECT_EQ(OffsetInSegment(addr), 4096u);
  EXPECT_EQ(SegmentOf(addr + kSegmentBytes), seg + 1);
}

}  // namespace
}  // namespace bmx
