// TaskPool unit tests: the determinism contract at the pool level.  The
// system-level half (BGC traffic, explorer results, oracle verdicts across
// thread counts) lives in tests/integration/determinism_sweep_test.cc.

#include "src/common/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/common/perf_counters.h"

namespace bmx {
namespace {

// Restores the pool to the environment's thread count when a test ends, so
// test order never leaks a thread-count override.
struct PoolGuard {
  ~PoolGuard() { TaskPool::SetThreadsForTesting(TaskPool::EnvThreads()); }
};

TEST(TaskPoolTest, ParallelMapMergesInSubmissionOrder) {
  PoolGuard guard;
  std::vector<uint64_t> serial;
  for (size_t i = 0; i < 1000; ++i) {
    serial.push_back(i * i + 7);
  }
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    TaskPool::SetThreadsForTesting(threads);
    std::vector<uint64_t> got = TaskPool::Global().ParallelMap<uint64_t>(
        1000, [](size_t i) { return static_cast<uint64_t>(i * i + 7); });
    EXPECT_EQ(got, serial) << "threads=" << threads;
  }
}

TEST(TaskPoolTest, EveryIndexRunsExactlyOnce) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(4);
  constexpr size_t kN = 513;  // deliberately not a multiple of the chunking
  std::vector<std::atomic<int>> hits(kN);
  TaskPool::Global().ParallelFor(kN, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, MultipleThreadsActuallyParticipate) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  TaskPool::Global().ParallelFor(64, [&](size_t) {
    // Each iteration yields the CPU long enough for workers to wake and steal
    // even on a single-core host; the assertion is >= 2 participants, not all
    // 4 (which chunks a worker wins is schedule-dependent by design).
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
}

TEST(TaskPoolTest, SingleThreadRunsInlineWithoutRegionFlag) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(1);
  bool saw_region = false;
  TaskPool::Global().ParallelFor(64, [&](size_t) {
    saw_region = saw_region || TaskPool::InParallelRegion();
  });
  EXPECT_FALSE(saw_region);  // the 1-thread path is the exact legacy loop
}

TEST(TaskPoolTest, NestedRegionsRunInline) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(4);
  std::vector<uint64_t> outer = TaskPool::Global().ParallelMap<uint64_t>(8, [](size_t i) {
    EXPECT_TRUE(TaskPool::InParallelRegion());
    // A nested map must run inline on this worker (no deadlock on the single
    // global region) and still merge in order.
    std::vector<uint64_t> inner =
        TaskPool::Global().ParallelMap<uint64_t>(16, [i](size_t j) { return i * 100 + j; });
    uint64_t sum = 0;
    for (size_t j = 0; j < inner.size(); ++j) {
      EXPECT_EQ(inner[j], i * 100 + j);
      sum += inner[j];
    }
    return sum;
  });
  for (size_t i = 0; i < outer.size(); ++i) {
    EXPECT_EQ(outer[i], i * 100 * 16 + 120);
  }
}

TEST(TaskPoolTest, LowestIndexedExceptionWinsDeterministically) {
  PoolGuard guard;
  for (size_t threads : {1u, 4u}) {
    TaskPool::SetThreadsForTesting(threads);
    std::string caught;
    try {
      TaskPool::Global().ParallelFor(300, [](size_t i) {
        if (i % 37 == 5) {  // several chunks throw
          throw std::runtime_error("boom@" + std::to_string(i));
        }
      });
      FAIL() << "expected a rethrow (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    // The kept exception comes from the lowest-indexed throwing chunk, and
    // within a chunk iteration order is sequential — so index 5 always wins,
    // at any thread count and under any steal schedule.
    EXPECT_EQ(caught, "boom@5") << "threads=" << threads;
  }
}

TEST(TaskPoolTest, PerfCounterTotalsIndependentOfThreadCount) {
  PoolGuard guard;
  uint64_t totals[2];
  size_t runs = 0;
  for (size_t threads : {1u, 4u}) {
    TaskPool::SetThreadsForTesting(threads);
    GlobalPerfCounters().Reset();
    TaskPool::Global().ParallelFor(500, [](size_t) { GlobalPerfCounters().objects_walked++; });
    // Worker-side increments must drain back to the submitting thread by the
    // time ParallelFor returns.
    totals[runs++] = GlobalPerfCounters().objects_walked;
  }
  EXPECT_EQ(totals[0], 500u);
  EXPECT_EQ(totals[1], 500u);
}

TEST(TaskPoolTest, EmptyAndSingletonRegions) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(4);
  size_t ran = 0;
  TaskPool::Global().ParallelFor(0, [&](size_t) { ran++; });
  EXPECT_EQ(ran, 0u);
  TaskPool::Global().ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_FALSE(TaskPool::InParallelRegion());  // n==1 runs inline
    ran++;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(TaskPoolTest, ThrowFromStolenChunkRethrowsAndPoolSurvives) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(4);
  // The submitting thread dawdles in the low chunks so workers wake up and
  // steal the tail; a high-indexed iteration then throws — from a stolen
  // chunk on most schedules.  Whatever thread threw, the exception must
  // surface on the submitting thread and the pool must stay usable.
  std::string caught;
  try {
    TaskPool::Global().ParallelFor(256, [](size_t i) {
      if (i < 8) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
      if (i == 200) {
        throw std::runtime_error("stolen-boom");
      }
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    caught = e.what();
  }
  EXPECT_EQ(caught, "stolen-boom");
  // No worker is wedged and no region flag leaked: the next region completes.
  std::vector<uint64_t> got =
      TaskPool::Global().ParallelMap<uint64_t>(64, [](size_t i) { return i; });
  ASSERT_EQ(got.size(), 64u);
  EXPECT_FALSE(TaskPool::InParallelRegion());
}

TEST(TaskPoolTest, ThrowFromNestedRegionPropagatesThroughWorker) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(4);
  // The nested (inline) region throws inside a worker's outer iteration; the
  // outer region must deterministically rethrow the lowest outer chunk's
  // exception, and nothing may deadlock on the single global region.
  std::string caught;
  try {
    TaskPool::Global().ParallelFor(32, [](size_t i) {
      TaskPool::Global().ParallelFor(16, [i](size_t j) {
        if (i % 4 == 1 && j == 3) {
          throw std::runtime_error("nested@" + std::to_string(i));
        }
      });
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    caught = e.what();
  }
  // Outer index 1 is in the first outer chunk that throws; within a chunk,
  // iteration is sequential, so it wins under every steal schedule.
  EXPECT_EQ(caught, "nested@1");
  std::vector<uint64_t> got =
      TaskPool::Global().ParallelMap<uint64_t>(16, [](size_t i) { return i; });
  ASSERT_EQ(got.size(), 16u);
}

TEST(TaskPoolTest, ResizeAfterFailedRegionsNeverWedges) {
  PoolGuard guard;
  // Interleave throwing regions with reconfiguration: a failed region must
  // leave no state that makes the next resize (or the next region at the new
  // width) hang or miscount.
  for (size_t threads : {1u, 2u, 4u, 8u, 2u, 4u}) {
    TaskPool::SetThreadsForTesting(threads);
    try {
      TaskPool::Global().ParallelFor(128, [](size_t i) {
        if (i == 64) {
          throw std::runtime_error("resize-boom");
        }
      });
      FAIL() << "expected a rethrow (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "resize-boom") << "threads=" << threads;
    }
    std::vector<uint64_t> got = TaskPool::Global().ParallelMap<uint64_t>(
        100, [](size_t i) { return 3 * i; });
    ASSERT_EQ(got.size(), 100u) << "threads=" << threads;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], 3 * i) << "threads=" << threads;
    }
  }
}

TEST(TaskPoolTest, SetThreadsForTestingReconfigures) {
  PoolGuard guard;
  TaskPool::SetThreadsForTesting(3);
  EXPECT_EQ(TaskPool::Global().threads(), 3u);
  TaskPool::SetThreadsForTesting(1);
  EXPECT_EQ(TaskPool::Global().threads(), 1u);
  // Back-to-back reconfiguration with work in between must not wedge.
  TaskPool::SetThreadsForTesting(2);
  std::vector<uint64_t> got =
      TaskPool::Global().ParallelMap<uint64_t>(32, [](size_t i) { return i + 1; });
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], i + 1);
  }
}

}  // namespace
}  // namespace bmx
