// The perf-counter layer: cheap global counters bumped by the scan kernels,
// lookup tables and piggyback coalescer, exposed through Cluster::perf().

#include <gtest/gtest.h>

#include "src/common/perf_counters.h"
#include "src/dsm/piggyback.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {
namespace {

TEST(PerfCountersTest, ResetZeroesEverything) {
  PerfCounters& p = GlobalPerfCounters();
  p.slots_scanned = 7;
  p.segment_mru_hits = 9;
  p.piggyback_bytes_saved = 11;
  p.Reset();
  EXPECT_EQ(p.slots_scanned, 0u);
  EXPECT_EQ(p.segment_mru_hits, 0u);
  EXPECT_EQ(p.piggyback_bytes_saved, 0u);
}

// A BGC round must drive the scan kernels: objects walked via the object-map,
// ref slots visited via the ref-map, and — on a heap with large, sparse
// objects — whole empty words skipped.
TEST(PerfCountersTest, BgcRoundBumpsScanCounters) {
  Cluster cluster({.num_nodes = 1});
  Mutator mutator(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);

  // 256-slot objects with a single ref slot: 3 of the 4 ref-map words per
  // object are empty, so the kernels must report skipped words.
  Gaddr head = kNullAddr;
  for (int i = 0; i < 16; ++i) {
    Gaddr obj = mutator.Alloc(bunch, 256);
    mutator.WriteRef(obj, 0, head);
    mutator.WriteWord(obj, 1, i);
    head = obj;
  }
  mutator.AddRoot(head);

  cluster.perf().Reset();
  cluster.node(0).gc().CollectBunch(bunch);
  cluster.Pump();

  const PerfCounters& p = cluster.perf();
  EXPECT_GT(p.objects_walked, 0u);
  EXPECT_GT(p.ref_slots_visited, 0u);
  EXPECT_GT(p.slots_scanned, 0u);
  EXPECT_GT(p.words_skipped, 0u);
  EXPECT_GT(p.segment_probes, 0u);
}

// Slot-granular access to the same object must hit the one-entry MRU cache.
TEST(PerfCountersTest, MruCacheShortCircuitsSegmentLookups) {
  Cluster cluster({.num_nodes = 1});
  Mutator mutator(&cluster.node(0));
  BunchId bunch = cluster.CreateBunch(0);
  Gaddr obj = mutator.Alloc(bunch, 64);
  mutator.AddRoot(obj);

  cluster.perf().Reset();
  for (size_t i = 0; i < 64; ++i) {
    mutator.WriteWord(obj, i, i);
  }
  const PerfCounters& p = cluster.perf();
  EXPECT_GT(p.segment_probes, 0u);
  EXPECT_GT(p.segment_mru_hits, 0u);
}

TEST(PerfCountersTest, CoalesceCountsDroppedUpdates) {
  GlobalPerfCounters().Reset();
  std::vector<AddressUpdate> updates = {
      {1, 1, 100, 200},
      {1, 1, 100, 200},  // duplicate (oid, old_addr)
      {1, 1, 200, 300},  // later move of the same object
      {2, 1, 500, 600},
  };
  size_t dropped = CoalesceAddressUpdates(&updates);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(updates.size(), 3u);
  // Last-write-wins: every surviving entry of oid 1 points at its final
  // location, one entry per distinct old address survives.
  EXPECT_EQ(updates[0].old_addr, 100u);
  EXPECT_EQ(updates[0].new_addr, 300u);
  EXPECT_EQ(updates[1].old_addr, 200u);
  EXPECT_EQ(updates[1].new_addr, 300u);
  EXPECT_EQ(updates[2].oid, 2u);
  EXPECT_EQ(updates[2].new_addr, 600u);
  EXPECT_EQ(GlobalPerfCounters().piggyback_updates_coalesced, 1u);
  EXPECT_EQ(GlobalPerfCounters().piggyback_bytes_saved, kAddressUpdateWireBytes);
}

}  // namespace
}  // namespace bmx
