#include "src/rvm/rvm.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/rvm/disk.h"

namespace bmx {
namespace {

TEST(Disk, CreateWriteRead) {
  Disk disk;
  EXPECT_FALSE(disk.Exists("f"));
  disk.Create("f", 16);
  EXPECT_TRUE(disk.Exists("f"));
  EXPECT_EQ(disk.FileSize("f"), 16u);
  uint8_t data[4] = {1, 2, 3, 4};
  disk.Write("f", 4, data, 4);
  uint8_t out[4] = {0};
  disk.Read("f", 4, out, 4);
  EXPECT_EQ(std::memcmp(data, out, 4), 0);
}

TEST(Disk, WriteGrowsFile) {
  Disk disk;
  disk.Create("f", 4);
  uint8_t data[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  disk.Write("f", 2, data, 8);
  EXPECT_EQ(disk.FileSize("f"), 10u);
}

TEST(Disk, AppendAndTruncate) {
  Disk disk;
  disk.Create("f", 0);
  uint8_t b = 5;
  disk.Append("f", &b, 1);
  disk.Append("f", &b, 1);
  EXPECT_EQ(disk.FileSize("f"), 2u);
  disk.Truncate("f", 1);
  EXPECT_EQ(disk.FileSize("f"), 1u);
}

TEST(Disk, StatsCount) {
  Disk disk;
  disk.Create("f", 8);
  uint8_t b = 1;
  disk.Write("f", 0, &b, 1);
  EXPECT_EQ(disk.stats().writes, 2u);
  EXPECT_EQ(disk.stats().bytes_written, 9u);
}

class RvmTest : public ::testing::Test {
 protected:
  Disk disk_;
  std::vector<uint8_t> mem_ = std::vector<uint8_t>(64, 0);
};

TEST_F(RvmTest, CommitMakesChangesRecoverable) {
  {
    Rvm rvm(&disk_, "log");
    rvm.MapRegion("data", mem_.data(), mem_.size());
    TxId tx = rvm.BeginTransaction();
    rvm.SetRange(tx, "data", 0, 8);
    std::memcpy(mem_.data(), "ABCDEFGH", 8);
    rvm.CommitTransaction(tx);
  }
  // Crash: volatile memory gone.  Recover into the data file, then remap.
  std::vector<uint8_t> fresh(64, 0);
  Rvm rvm2(&disk_, "log");
  rvm2.Recover();
  rvm2.MapRegion("data", fresh.data(), fresh.size());
  EXPECT_EQ(std::memcmp(fresh.data(), "ABCDEFGH", 8), 0);
  EXPECT_EQ(rvm2.stats().recovered_transactions, 1u);
}

TEST_F(RvmTest, UncommittedChangesDoNotSurviveCrash) {
  {
    Rvm rvm(&disk_, "log");
    rvm.MapRegion("data", mem_.data(), mem_.size());
    TxId tx = rvm.BeginTransaction();
    rvm.SetRange(tx, "data", 0, 8);
    std::memcpy(mem_.data(), "ABCDEFGH", 8);
    // no commit — crash
  }
  std::vector<uint8_t> fresh(64, 0xFF);
  Rvm rvm2(&disk_, "log");
  rvm2.Recover();
  rvm2.MapRegion("data", fresh.data(), fresh.size());
  EXPECT_EQ(fresh[0], 0u);  // zero-filled original, not 'A'
}

TEST_F(RvmTest, AbortRestoresMemory) {
  Rvm rvm(&disk_, "log");
  rvm.MapRegion("data", mem_.data(), mem_.size());
  std::memcpy(mem_.data(), "original", 8);
  TxId tx = rvm.BeginTransaction();
  rvm.SetRange(tx, "data", 0, 8);
  std::memcpy(mem_.data(), "clobber!", 8);
  rvm.AbortTransaction(tx);
  EXPECT_EQ(std::memcmp(mem_.data(), "original", 8), 0);
  EXPECT_EQ(rvm.stats().transactions_aborted, 1u);
}

TEST_F(RvmTest, AbortUnwindsOverlappingRangesInReverse) {
  Rvm rvm(&disk_, "log");
  rvm.MapRegion("data", mem_.data(), mem_.size());
  mem_[0] = 1;
  TxId tx = rvm.BeginTransaction();
  rvm.SetRange(tx, "data", 0, 1);
  mem_[0] = 2;
  rvm.SetRange(tx, "data", 0, 1);
  mem_[0] = 3;
  rvm.AbortTransaction(tx);
  EXPECT_EQ(mem_[0], 1u);
}

TEST_F(RvmTest, MultiRegionTransactionIsAtomic) {
  std::vector<uint8_t> mem2(32, 0);
  {
    Rvm rvm(&disk_, "log");
    rvm.MapRegion("a", mem_.data(), mem_.size());
    rvm.MapRegion("b", mem2.data(), mem2.size());
    TxId tx = rvm.BeginTransaction();
    rvm.SetRange(tx, "a", 0, 4);
    rvm.SetRange(tx, "b", 0, 4);
    std::memcpy(mem_.data(), "AAAA", 4);
    std::memcpy(mem2.data(), "BBBB", 4);
    rvm.CommitTransaction(tx);
  }
  std::vector<uint8_t> fa(64, 0);
  std::vector<uint8_t> fb(32, 0);
  Rvm rvm2(&disk_, "log");
  rvm2.Recover();
  rvm2.MapRegion("a", fa.data(), fa.size());
  rvm2.MapRegion("b", fb.data(), fb.size());
  EXPECT_EQ(std::memcmp(fa.data(), "AAAA", 4), 0);
  EXPECT_EQ(std::memcmp(fb.data(), "BBBB", 4), 0);
}

TEST_F(RvmTest, TruncateAppliesAndClearsLog) {
  Rvm rvm(&disk_, "log");
  rvm.MapRegion("data", mem_.data(), mem_.size());
  TxId tx = rvm.BeginTransaction();
  rvm.SetRange(tx, "data", 0, 4);
  std::memcpy(mem_.data(), "WXYZ", 4);
  rvm.CommitTransaction(tx);
  EXPECT_GT(rvm.LogSizeBytes(), 0u);
  rvm.TruncateLog();
  EXPECT_EQ(rvm.LogSizeBytes(), 0u);
  // Data survived into the data file.
  uint8_t out[4];
  disk_.Read("data", 0, out, 4);
  EXPECT_EQ(std::memcmp(out, "WXYZ", 4), 0);
}

TEST_F(RvmTest, RecoveryIsIdempotent) {
  Rvm rvm(&disk_, "log");
  rvm.MapRegion("data", mem_.data(), mem_.size());
  TxId tx = rvm.BeginTransaction();
  rvm.SetRange(tx, "data", 8, 4);
  std::memcpy(mem_.data() + 8, "QQQQ", 4);
  rvm.CommitTransaction(tx);
  rvm.Recover();
  rvm.Recover();
  uint8_t out[4];
  disk_.Read("data", 8, out, 4);
  EXPECT_EQ(std::memcmp(out, "QQQQ", 4), 0);
}

TEST_F(RvmTest, LaterCommitsWinOnOverlap) {
  {
    Rvm rvm(&disk_, "log");
    rvm.MapRegion("data", mem_.data(), mem_.size());
    TxId t1 = rvm.BeginTransaction();
    rvm.SetRange(t1, "data", 0, 4);
    std::memcpy(mem_.data(), "1111", 4);
    rvm.CommitTransaction(t1);
    TxId t2 = rvm.BeginTransaction();
    rvm.SetRange(t2, "data", 0, 4);
    std::memcpy(mem_.data(), "2222", 4);
    rvm.CommitTransaction(t2);
  }
  std::vector<uint8_t> fresh(64, 0);
  Rvm rvm2(&disk_, "log");
  rvm2.Recover();
  rvm2.MapRegion("data", fresh.data(), fresh.size());
  EXPECT_EQ(std::memcmp(fresh.data(), "2222", 4), 0);
}

TEST_F(RvmTest, TornLogTailIsIgnored) {
  {
    Rvm rvm(&disk_, "log");
    rvm.MapRegion("data", mem_.data(), mem_.size());
    TxId tx = rvm.BeginTransaction();
    rvm.SetRange(tx, "data", 0, 4);
    std::memcpy(mem_.data(), "GOOD", 4);
    rvm.CommitTransaction(tx);
  }
  // Corrupt the tail: append half a record.
  uint8_t garbage[3] = {1, 0, 0};
  disk_.Append("log", garbage, 3);
  std::vector<uint8_t> fresh(64, 0);
  Rvm rvm2(&disk_, "log");
  rvm2.Recover();
  rvm2.MapRegion("data", fresh.data(), fresh.size());
  EXPECT_EQ(std::memcmp(fresh.data(), "GOOD", 4), 0);
}

TEST_F(RvmTest, MapRegionAdoptDoesNotLoad) {
  disk_.Create("data", 8);
  uint8_t on_disk = 7;
  disk_.Write("data", 0, &on_disk, 1);
  mem_[0] = 42;
  Rvm rvm(&disk_, "log");
  rvm.MapRegionAdopt("data", mem_.data(), 8);
  EXPECT_EQ(mem_[0], 42u);  // memory untouched
}

}  // namespace
}  // namespace bmx
