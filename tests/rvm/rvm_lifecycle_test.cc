// RVM log-lifecycle tests: growth, truncation under load, recovery after
// repeated crash cycles, interleaved transactions, and statistics.

#include <gtest/gtest.h>

#include <cstring>

#include "src/rvm/rvm.h"

namespace bmx {
namespace {

TEST(RvmLifecycle, LogGrowsPerCommitAndTruncates) {
  Disk disk;
  std::vector<uint8_t> mem(256, 0);
  Rvm rvm(&disk, "log");
  rvm.MapRegion("data", mem.data(), mem.size());
  size_t previous = rvm.LogSizeBytes();
  for (int i = 0; i < 10; ++i) {
    TxId tx = rvm.BeginTransaction();
    rvm.SetRange(tx, "data", static_cast<size_t>(i) * 8, 8);
    mem[static_cast<size_t>(i) * 8] = static_cast<uint8_t>(i + 1);
    rvm.CommitTransaction(tx);
    EXPECT_GT(rvm.LogSizeBytes(), previous);
    previous = rvm.LogSizeBytes();
  }
  rvm.TruncateLog();
  EXPECT_EQ(rvm.LogSizeBytes(), 0u);
  // Data survived into the data file.
  uint8_t out[80];
  disk.Read("data", 0, out, 80);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i * 8], static_cast<uint8_t>(i + 1));
  }
}

TEST(RvmLifecycle, RepeatedCrashRecoverCycles) {
  Disk disk;
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::vector<uint8_t> mem(64, 0);
    Rvm rvm(&disk, "log");
    rvm.Recover();
    rvm.MapRegion("data", mem.data(), mem.size());
    // Each cycle sees all previous cycles' committed values.
    for (int previous = 0; previous < cycle; ++previous) {
      EXPECT_EQ(mem[static_cast<size_t>(previous)], static_cast<uint8_t>(previous + 1))
          << "cycle " << cycle;
    }
    TxId tx = rvm.BeginTransaction();
    rvm.SetRange(tx, "data", static_cast<size_t>(cycle), 1);
    mem[static_cast<size_t>(cycle)] = static_cast<uint8_t>(cycle + 1);
    rvm.CommitTransaction(tx);
    // Uncommitted tail that must never survive.
    TxId doomed = rvm.BeginTransaction();
    rvm.SetRange(doomed, "data", 63, 1);
    mem[63] = 0xEE;
    // crash: rvm and mem dropped without commit
  }
  std::vector<uint8_t> final_mem(64, 0);
  Rvm rvm(&disk, "log");
  rvm.Recover();
  rvm.MapRegion("data", final_mem.data(), final_mem.size());
  for (int cycle = 0; cycle < 5; ++cycle) {
    EXPECT_EQ(final_mem[static_cast<size_t>(cycle)], static_cast<uint8_t>(cycle + 1));
  }
  EXPECT_EQ(final_mem[63], 0u);
}

TEST(RvmLifecycle, InterleavedTransactionsCommitIndependently) {
  Disk disk;
  std::vector<uint8_t> mem(64, 0);
  Rvm rvm(&disk, "log");
  rvm.MapRegion("data", mem.data(), mem.size());
  TxId t1 = rvm.BeginTransaction();
  TxId t2 = rvm.BeginTransaction();
  rvm.SetRange(t1, "data", 0, 4);
  std::memcpy(mem.data(), "AAAA", 4);
  rvm.SetRange(t2, "data", 8, 4);
  std::memcpy(mem.data() + 8, "BBBB", 4);
  rvm.CommitTransaction(t2);  // commit out of order
  rvm.AbortTransaction(t1);   // t1's range reverts in memory
  EXPECT_EQ(mem[0], 0u);

  std::vector<uint8_t> fresh(64, 0);
  Rvm rvm2(&disk, "log");
  rvm2.Recover();
  rvm2.MapRegion("data", fresh.data(), fresh.size());
  EXPECT_EQ(fresh[0], 0u);  // aborted: never logged
  EXPECT_EQ(std::memcmp(fresh.data() + 8, "BBBB", 4), 0);
}

TEST(RvmLifecycle, StatsAccount) {
  Disk disk;
  std::vector<uint8_t> mem(32, 0);
  Rvm rvm(&disk, "log");
  rvm.MapRegion("data", mem.data(), mem.size());
  TxId t1 = rvm.BeginTransaction();
  rvm.SetRange(t1, "data", 0, 8);
  rvm.CommitTransaction(t1);
  TxId t2 = rvm.BeginTransaction();
  rvm.SetRange(t2, "data", 0, 8);
  rvm.AbortTransaction(t2);
  EXPECT_EQ(rvm.stats().transactions_committed, 1u);
  EXPECT_EQ(rvm.stats().transactions_aborted, 1u);
  EXPECT_GE(rvm.stats().log_records, 2u);  // range + commit marker
  EXPECT_GT(rvm.stats().log_bytes, 0u);
  rvm.TruncateLog();
  EXPECT_EQ(rvm.stats().truncations, 1u);
}

TEST(RvmLifecycle, RecoverNeverInventsData) {
  Disk disk;
  Rvm rvm(&disk, "log");
  rvm.Recover();  // empty log: nothing to replay, no crash
  EXPECT_EQ(rvm.stats().recovered_transactions, 0u);
}

}  // namespace
}  // namespace bmx
