// S1 — scale-out transport (PROTOCOLS.md §14, EXPERIMENTS.md S1): wire
// messages, wire bytes and wall-clock of an invalidation- and reclaim-heavy
// interference shape (E3/E6-style) as the cluster grows, with the batched
// control-message transport off (the pinned baseline) and on.
//
// The shape is built to exercise the traffic classes batching targets:
//   - scion churn: every round rewrites the cross-bunch references to
//     freshly allocated away-bunch targets, so each store defeats the SSP
//     dedup and the write barrier emits a scion-create train on the one
//     channel to the away node;
//   - replica reclaim: one replica per round (rotating) collects the home
//     bunch and reclaims its from-space — its stale copies of the shared
//     population are live but not locally owned, so the §4.5 round sends a
//     copy-request train to the owner and gets a copy-reply train back;
//   - invalidation fan-out: a hot subset is re-read by every replica and then
//     write-upgraded by the owner, fanning single invalidations out to N-1
//     nodes — synchronous one-per-destination traffic that per-destination
//     batching cannot coalesce, kept in the mix so the measured ratio is
//     honest about it.
//
// Counters (per iteration): wire_msgs / wire_bytes (what actually crossed the
// simulated wire), logical_msgs (protocol messages — identical on vs off by
// construction), frames / batched (coalescing activity).  The S1 acceptance
// bar is wire_msgs(off) / wire_msgs(on) >= 3 at 16 nodes.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/batch.h"

namespace bmx {
namespace {

constexpr size_t kChurnObjects = 256;  // cross-bunch reference rewrites / round
constexpr size_t kSharedObjects = 96;  // replicated everywhere, reclaim-copied
constexpr size_t kHotObjects = 2;      // re-read + write-upgraded every round

struct ScaleRig {
  ScaleRig(size_t nodes, bool batching) {
    ClusterOptions options;
    options.num_nodes = nodes;
    options.seed = 1;
    if (batching) {
      options.batch.enabled = true;
    }
    cluster = std::make_unique<Cluster>(options);
    for (size_t i = 0; i < nodes; ++i) {
      mutators.push_back(std::make_unique<Mutator>(&cluster->node(i)));
    }
    // Bunch 0 (node 0) holds the shared population and the churn spine;
    // bunch 1 (node 1) holds the churn targets the cross-bunch references
    // point into.
    home = cluster->CreateBunch(0);
    away = cluster->CreateBunch(1);
    Mutator& owner = *mutators[0];
    for (size_t i = 0; i < kSharedObjects; ++i) {
      Gaddr obj = owner.Alloc(home, 3);
      owner.WriteWord(obj, 1, i);
      owner.AddRoot(obj);
      shared.push_back(obj);
    }
    for (size_t i = 0; i < kChurnObjects; ++i) {
      Gaddr obj = owner.Alloc(home, 3);
      owner.AddRoot(obj);
      churn.push_back(obj);
    }
    // The away bunch exists from the start (its creator allocates the first
    // target) so churn rounds only ever append fresh targets to it.
    mutators[1]->AddRoot(mutators[1]->Alloc(away, 1));
    cluster->Pump();
    // Replicate the shared population on every non-owner, rooted there: the
    // copies are live but not locally owned, which is exactly what a replica
    // BGC strands in from-space and a §4.5 reclaim round copy-requests.  Each
    // replica also owns one anchor object in the home bunch so its BGC has
    // something to copy — without a copy the collection never flips and no
    // from-space exists to reclaim.  Setup traffic is excluded from the
    // counters.
    for (size_t r = 1; r < mutators.size(); ++r) {
      mutators[r]->AddRoot(mutators[r]->Alloc(home, 1));
      for (Gaddr obj : shared) {
        Gaddr cur = cluster->node(r).dsm().ResolveAddr(obj);
        if (mutators[r]->AcquireRead(cur)) {
          mutators[r]->Release(cur);
          mutators[r]->AddRoot(cur);
        }
      }
    }
    cluster->Pump();
  }

  // One interference round; see the file comment for the three traffic
  // classes it drives.
  void Round() {
    Mutator& owner = *mutators[0];
    // Scion churn: fresh away-bunch targets every round, so every WriteRef
    // creates a brand-new SSP and the barrier's scion creates train up on
    // the (owner -> away node) channel instead of hitting the dedup.
    for (size_t i = 0; i < churn.size(); ++i) {
      Gaddr fresh = mutators[1]->Alloc(away, 1);
      Gaddr obj = cluster->node(0).dsm().ResolveAddr(churn[i]);
      owner.WriteRef(obj, 2, fresh);
    }
    cluster->Pump();
    // Replica reclaim (rotating): the replica's BGC leaves its live-but-not-
    // owned copies of the shared population stranded in from-space, and the
    // §4.5 reclaim round turns them into a copy-request train to the owner
    // plus the owner's copy-reply train back.
    NodeId reclaimer = static_cast<NodeId>(1 + (round_ % (mutators.size() - 1)));
    round_++;
    cluster->node(reclaimer).gc().CollectBunch(home);
    cluster->Pump();
    cluster->node(reclaimer).gc().ReclaimFromSpaces(home);
    cluster->Pump();
    for (size_t r = 1; r < mutators.size(); ++r) {
      for (size_t i = 0; i < kHotObjects; ++i) {
        Gaddr cur = cluster->node(r).dsm().ResolveAddr(shared[i]);
        if (mutators[r]->AcquireRead(cur)) {
          mutators[r]->Release(cur);
        }
      }
    }
    for (size_t i = 0; i < kHotObjects; ++i) {
      Gaddr cur = cluster->node(0).dsm().ResolveAddr(shared[i]);
      if (owner.AcquireWrite(cur)) {
        owner.WriteWord(cur, 1, i + 100);
        owner.Release(cur);
      }
    }
    cluster->Pump();
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<Mutator>> mutators;
  uint64_t round_ = 0;
  BunchId home = 0;
  BunchId away = 0;
  std::vector<Gaddr> shared;
  std::vector<Gaddr> churn;
};

void S1_Scale(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  bool batching = state.range(1) != 0;
  ScaleRig rig(nodes, batching);
  rig.Round();  // warm the token / replica steady state before counting
  rig.cluster->network().ResetStats();
  uint64_t iters = 0;
  for (auto _ : state) {
    rig.Round();
    ++iters;
  }
  const NetworkStats& stats = rig.cluster->network().stats();
  double n = iters > 0 ? static_cast<double>(iters) : 1.0;
  state.counters["wire_msgs"] = static_cast<double>(stats.wire_messages) / n;
  state.counters["wire_bytes"] = static_cast<double>(stats.TotalWireBytes()) / n;
  state.counters["logical_msgs"] = static_cast<double>(stats.TotalSent()) / n;
  state.counters["frames"] = static_cast<double>(stats.batching.frames_sent) / n;
  state.counters["batched"] = static_cast<double>(stats.batching.batched_payloads) / n;
}
BENCHMARK(S1_Scale)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
