// F2 — cost of crash recovery: wall-clock of a RecoveryManager run and the
// wire bytes its reconciliation traffic costs, as a function of (a) how many
// checkpointed segments the restarted node must reload and re-adopt, and
// (b) where in the protocol the node crashed.  The timed region is exactly
// RunRecovery() on the restarted node: log replay, manifest reload, object
// re-adoption, SSP rebuild and peer reconciliation, through quiescence.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/fault_injector.h"

namespace bmx {
namespace {

// Objects sized so a handful fill a segment: segment count scales with the
// allocation count without millions of tiny headers dominating setup time.
constexpr uint32_t kBigObjectSlots = 2048;

void F2_RecoveryBySegmentCount(benchmark::State& state) {
  size_t target_segments = static_cast<size_t>(state.range(0));
  size_t objects = target_segments * (kSlotsPerSegment / kBigObjectSlots);
  uint64_t query_bytes = 0;
  size_t segments = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Cluster cluster({.num_nodes = 3});
    BunchId bunch = cluster.CreateBunch(0);
    Mutator m0(&cluster.node(0));
    Mutator m1(&cluster.node(1));
    Gaddr first = kNullAddr;
    for (size_t i = 0; i < objects; ++i) {
      Gaddr obj = m0.Alloc(bunch, kBigObjectSlots);
      if (first == kNullAddr) {
        first = obj;
      }
      m0.AddRoot(obj);
    }
    // A remote reader gives recovery a peer with state worth reconciling.
    m1.AcquireRead(first);
    m1.Release(first);
    cluster.node(0).CheckpointBunch(bunch);
    cluster.Pump();
    segments = cluster.node(0).store().AllSegments().size();
    cluster.CrashNode(0);
    Node& fresh = cluster.RestartNode(0);
    uint64_t before = GlobalPerfCounters().recovery_query_bytes;
    state.ResumeTiming();

    fresh.recovery().RunRecovery();

    state.PauseTiming();
    query_bytes += GlobalPerfCounters().recovery_query_bytes - before;
    state.ResumeTiming();
  }
  state.counters["segments"] = static_cast<double>(segments);
  state.counters["query_bytes"] =
      static_cast<double>(query_bytes) / static_cast<double>(state.iterations());
}
BENCHMARK(F2_RecoveryBySegmentCount)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// Crash points swept by the by-crash-point variant.  All of them fire at
// node 0 in the workload below; each leaves recovery a differently-shaped
// mess (uncheckpointed allocations, a half-granted token, a mid-flip BGC, a
// torn checkpoint, a half-truncated log).
const char* const kCrashPoints[] = {
    "gc.alloc.post_register",     "dsm.grant.pre_send",      "bgc.flip.pre_publish",
    "persist.checkpoint.pre_commit", "rvm.truncate.pre_reset",
};

void F2_RecoveryByCrashPoint(benchmark::State& state) {
  const char* site = kCrashPoints[state.range(0)];
  uint64_t query_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    FaultInjector::Global().Reset();
    FaultInjector::Global().Arm(site, 0);
    Cluster cluster({.num_nodes = 3});
    try {
      BunchId bunch = cluster.CreateBunch(0);
      Mutator m0(&cluster.node(0));
      Mutator m1(&cluster.node(1));
      Gaddr head = kNullAddr;
      for (size_t i = 0; i < 32; ++i) {
        Gaddr obj = m0.Alloc(bunch, 2);
        m0.WriteRef(obj, 0, head);
        m0.WriteWord(obj, 1, i);
        head = obj;
      }
      m0.AddRoot(head);
      cluster.node(0).CheckpointBunch(bunch);
      for (Gaddr cur = head; cur != kNullAddr;) {
        if (!m1.AcquireRead(cur)) {
          break;
        }
        Gaddr next = m1.ReadRef(cur, 0);
        m1.Release(cur);
        cur = next;
      }
      cluster.node(0).gc().CollectBunch(bunch);
      cluster.node(0).CheckpointBunch(bunch);
      cluster.node(0).persistence().TruncateLog();
      cluster.Pump();
    } catch (const NodeCrashSignal& signal) {
      if (cluster.IsAlive(signal.node)) {
        cluster.CrashNode(signal.node);
      }
    }
    cluster.Pump();
    FaultInjector::Global().Reset();
    std::vector<NodeId> dead;
    for (NodeId id = 0; id < 3; ++id) {
      if (!cluster.IsAlive(id)) {
        dead.push_back(id);
      }
    }
    uint64_t before = GlobalPerfCounters().recovery_query_bytes;
    state.ResumeTiming();

    for (NodeId id : dead) {
      cluster.RestartNode(id).recovery().RunRecovery();
    }

    state.PauseTiming();
    query_bytes += GlobalPerfCounters().recovery_query_bytes - before;
    state.ResumeTiming();
  }
  state.SetLabel(site);
  state.counters["query_bytes"] =
      static_cast<double>(query_bytes) / static_cast<double>(state.iterations());
}
BENCHMARK(F2_RecoveryByCrashPoint)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
