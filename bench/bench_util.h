// Shared rig for the benchmark harness: a cluster with baseline agents and
// one mutator per node, plus helpers to build replicated workloads.
//
// Experiment ids (E1..E10) are defined in DESIGN.md §6; measured results are
// recorded in EXPERIMENTS.md.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <memory>
#include <vector>

#include "src/baselines/baseline_agent.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {

struct BenchRig {
  explicit BenchRig(size_t nodes, CopySetMode mode = CopySetMode::kCentralized,
                    uint64_t seed = 1)
      : cluster({.num_nodes = nodes, .copyset_mode = mode, .seed = seed}) {
    for (size_t i = 0; i < nodes; ++i) {
      agents.push_back(std::make_unique<BaselineAgent>(&cluster.node(i)));
      mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
    }
  }

  std::vector<BaselineAgent*> AgentPtrs() {
    std::vector<BaselineAgent*> out;
    for (auto& agent : agents) {
      out.push_back(agent.get());
    }
    return out;
  }

  // Builds a linked list of `count` objects at node 0 and replicates it on
  // nodes [1, replicas): every replica faults every object in (read tokens).
  Gaddr BuildReplicatedList(BunchId bunch, size_t count, size_t replicas) {
    Mutator& owner = *mutators[0];
    Gaddr head = kNullAddr;
    for (size_t i = 0; i < count; ++i) {
      Gaddr node = owner.Alloc(bunch, 2);
      owner.WriteRef(node, 0, head);
      owner.WriteWord(node, 1, i);
      head = node;
    }
    owner.AddRoot(head);
    for (size_t r = 1; r < replicas; ++r) {
      Gaddr cur = head;
      while (cur != kNullAddr) {
        mutators[r]->AcquireRead(cur);
        Gaddr next = mutators[r]->ReadRef(cur, 0);
        mutators[r]->Release(cur);
        cur = next;
      }
      mutators[r]->AddRoot(head);
    }
    cluster.Pump();
    return head;
  }

  Cluster cluster;
  std::vector<std::unique_ptr<BaselineAgent>> agents;
  std::vector<std::unique_ptr<Mutator>> mutators;
};

}  // namespace bmx

#endif  // BENCH_BENCH_UTIL_H_
