// Shared rig for the benchmark harness: a cluster with baseline agents and
// one mutator per node, plus helpers to build replicated workloads.
//
// Experiment ids (E1..E10) are defined in DESIGN.md §6; measured results are
// recorded in EXPERIMENTS.md.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/baseline_agent.h"
#include "src/common/perf_counters.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {

struct BenchRig {
  explicit BenchRig(size_t nodes, CopySetMode mode = CopySetMode::kCentralized,
                    uint64_t seed = 1)
      : cluster({.num_nodes = nodes, .copyset_mode = mode, .seed = seed}) {
    for (size_t i = 0; i < nodes; ++i) {
      agents.push_back(std::make_unique<BaselineAgent>(&cluster.node(i)));
      mutators.push_back(std::make_unique<Mutator>(&cluster.node(i)));
    }
  }

  std::vector<BaselineAgent*> AgentPtrs() {
    std::vector<BaselineAgent*> out;
    for (auto& agent : agents) {
      out.push_back(agent.get());
    }
    return out;
  }

  // Builds a linked list of `count` objects at node 0 and replicates it on
  // nodes [1, replicas): every replica faults every object in (read tokens).
  Gaddr BuildReplicatedList(BunchId bunch, size_t count, size_t replicas) {
    Mutator& owner = *mutators[0];
    Gaddr head = kNullAddr;
    for (size_t i = 0; i < count; ++i) {
      Gaddr node = owner.Alloc(bunch, 2);
      owner.WriteRef(node, 0, head);
      owner.WriteWord(node, 1, i);
      head = node;
    }
    owner.AddRoot(head);
    for (size_t r = 1; r < replicas; ++r) {
      Gaddr cur = head;
      while (cur != kNullAddr) {
        mutators[r]->AcquireRead(cur);
        Gaddr next = mutators[r]->ReadRef(cur, 0);
        mutators[r]->Release(cur);
        cur = next;
      }
      mutators[r]->AddRoot(head);
    }
    cluster.Pump();
    return head;
  }

  Cluster cluster;
  std::vector<std::unique_ptr<BaselineAgent>> agents;
  std::vector<std::unique_ptr<Mutator>> mutators;
};

// Hot-path counter report, printed by every bench binary after its runs so
// the scan-kernel / lookup-table / coalescing effects are visible next to the
// wall-clock numbers.
inline void PrintPerfCounters() {
  const PerfCounters& p = GlobalPerfCounters();
  std::printf(
      "[perf] slots_scanned=%llu words_skipped=%llu objects_walked=%llu "
      "ref_slots_visited=%llu\n"
      "[perf] segment_probes=%llu segment_mru_hits=%llu oid_probes=%llu "
      "directory_probes=%llu token_probes=%llu\n"
      "[perf] piggyback_updates_coalesced=%llu piggyback_bytes_saved=%llu "
      "piggyback_overflow_spills=%llu\n"
      "[perf] recoveries=%llu epoch_rejected_msgs=%llu fault_points_hit=%llu "
      "recovery_query_bytes=%llu\n"
      "[perf] pool_regions=%llu pool_chunks_executed=%llu pool_steals=%llu\n"
      "[perf] history_events_recorded=%llu consistency_checks_run=%llu "
      "consistency_violations=%llu\n"
      "[perf] zombie_dropped_msgs=%llu obligations_opened=%llu "
      "obligations_retired=%llu liveness_checks_run=%llu "
      "liveness_violations=%llu\n",
      static_cast<unsigned long long>(p.slots_scanned),
      static_cast<unsigned long long>(p.words_skipped),
      static_cast<unsigned long long>(p.objects_walked),
      static_cast<unsigned long long>(p.ref_slots_visited),
      static_cast<unsigned long long>(p.segment_probes),
      static_cast<unsigned long long>(p.segment_mru_hits),
      static_cast<unsigned long long>(p.oid_probes),
      static_cast<unsigned long long>(p.directory_probes),
      static_cast<unsigned long long>(p.token_probes),
      static_cast<unsigned long long>(p.piggyback_updates_coalesced),
      static_cast<unsigned long long>(p.piggyback_bytes_saved),
      static_cast<unsigned long long>(p.piggyback_overflow_spills),
      static_cast<unsigned long long>(p.recoveries),
      static_cast<unsigned long long>(p.epoch_rejected_msgs),
      static_cast<unsigned long long>(p.fault_points_hit),
      static_cast<unsigned long long>(p.recovery_query_bytes),
      static_cast<unsigned long long>(p.pool_regions),
      static_cast<unsigned long long>(p.pool_chunks_executed),
      static_cast<unsigned long long>(p.pool_steals),
      static_cast<unsigned long long>(p.history_events_recorded),
      static_cast<unsigned long long>(p.consistency_checks_run),
      static_cast<unsigned long long>(p.consistency_violations),
      static_cast<unsigned long long>(p.zombie_dropped_msgs),
      static_cast<unsigned long long>(p.obligations_opened),
      static_cast<unsigned long long>(p.obligations_retired),
      static_cast<unsigned long long>(p.liveness_checks_run),
      static_cast<unsigned long long>(p.liveness_violations));
}

// Bench entry point shared by every binary.  Extends google-benchmark's CLI
// with two repo-level flags, translated before Initialize():
//   --json <path> / --json=<path>  write the JSON report to <path>
//                                  (--benchmark_out in json format)
//   --smoke                        one fast pass per benchmark — CI mode that
//                                  exercises every code path without timing
//                                  fidelity
inline int BenchMain(int argc, char** argv) {
  static std::vector<std::string> storage;  // stable backing for argv rewrite
  storage.emplace_back(argc > 0 ? argv[0] : "benchmark");
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      storage.push_back(std::move(arg));
    }
  }
  if (!json_path.empty()) {
    storage.push_back("--benchmark_out=" + json_path);
    storage.push_back("--benchmark_out_format=json");
  }
  if (smoke) {
    // Note: the pinned benchmark version takes a plain double (seconds).
    storage.push_back("--benchmark_min_time=0.001");
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) {
    args.push_back(s.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) {
    return 1;
  }
  GlobalPerfCounters().Reset();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintPerfCounters();
  return 0;
}

}  // namespace bmx

#define BMX_BENCHMARK_MAIN()             \
  int main(int argc, char** argv) {      \
    return ::bmx::BenchMain(argc, argv); \
  }                                      \
  static_assert(true, "")  // swallow the trailing semicolon

#endif  // BENCH_BENCH_UTIL_H_
