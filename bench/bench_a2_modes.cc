// Ablation A2 — configuration modes the paper discusses:
//
//   * scion-cleaner processing: immediate vs deferred-to-next-BGC (§6.1) —
//     deferral batches work off the message path at the cost of reclamation
//     latency (rounds until a remote drop is collected);
//   * copy-set management: centralized at the owner (the §8 prototype
//     simplification) vs distributed over granting readers (the §2.2
//     design) — distribution moves grant load off the owner.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace bmx {
namespace {

void RunCleanerMode(benchmark::State& state, CleanerMode mode) {
  uint64_t rounds_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    rig.cluster.node(0).gc().set_cleaner_mode(mode);
    rig.cluster.node(1).gc().set_cleaner_mode(mode);
    BunchId b1 = rig.cluster.CreateBunch(0);
    BunchId b2 = rig.cluster.CreateBunch(1);
    Gaddr target = rig.mutators[1]->Alloc(b2, 1);
    Gaddr src = rig.mutators[0]->Alloc(b1, 2);
    rig.mutators[0]->AddRoot(src);
    rig.mutators[0]->WriteRef(src, 0, target);
    rig.cluster.Pump();
    rig.mutators[0]->WriteRef(src, 0, kNullAddr);
    state.ResumeTiming();

    uint64_t rounds = 0;
    while (rig.cluster.node(1).gc().stats().objects_reclaimed == 0 && rounds < 16) {
      rounds++;
      rig.cluster.node(0).gc().CollectBunch(b1);
      rig.cluster.Pump();
      rig.cluster.node(1).gc().CollectBunch(b2);
      rig.cluster.Pump();
    }

    state.PauseTiming();
    rounds_total += rounds;
    state.ResumeTiming();
  }
  state.counters["rounds_to_reclaim"] =
      static_cast<double>(rounds_total) / static_cast<double>(state.iterations());
}

void A2_CleanerImmediate(benchmark::State& state) {
  RunCleanerMode(state, CleanerMode::kImmediate);
}
BENCHMARK(A2_CleanerImmediate)->Unit(benchmark::kMicrosecond);

void A2_CleanerDeferred(benchmark::State& state) { RunCleanerMode(state, CleanerMode::kDeferred); }
BENCHMARK(A2_CleanerDeferred)->Unit(benchmark::kMicrosecond);

void RunCopySetMode(benchmark::State& state, CopySetMode mode) {
  size_t readers = static_cast<size_t>(state.range(0));
  uint64_t owner_grants = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(readers + 2, mode);
    NodeId owner_node = static_cast<NodeId>(readers + 1);
    BunchId bunch = rig.cluster.CreateBunch(0);
    // Node 0 creates the object; ownership moves to the last node, so fresh
    // readers' requests (routed to the segment creator, node 0) are served by
    // a *reader* in distributed mode but must be forwarded to the owner in
    // centralized mode.
    Gaddr obj = rig.mutators[0]->Alloc(bunch, 2);
    rig.mutators[0]->AddRoot(obj);
    rig.mutators[owner_node]->AcquireWrite(obj);
    rig.mutators[owner_node]->Release(obj);
    rig.mutators[0]->AcquireRead(obj);  // creator becomes a reader again
    rig.mutators[0]->Release(obj);
    rig.cluster.node(owner_node).dsm().ResetStats();
    state.ResumeTiming();

    for (size_t r = 1; r <= readers; ++r) {
      rig.mutators[r]->AcquireRead(obj);
      rig.mutators[r]->Release(obj);
    }

    state.PauseTiming();
    owner_grants += rig.cluster.node(owner_node).dsm().stats().grants_sent;
    state.ResumeTiming();
  }
  state.counters["owner_grants"] =
      static_cast<double>(owner_grants) / static_cast<double>(state.iterations());
  state.counters["readers"] = static_cast<double>(readers);
}

void A2_CopySetCentralized(benchmark::State& state) {
  RunCopySetMode(state, CopySetMode::kCentralized);
}
BENCHMARK(A2_CopySetCentralized)->Arg(2)->Arg(4)->Arg(7)->Unit(benchmark::kMicrosecond);

void A2_CopySetDistributed(benchmark::State& state) {
  RunCopySetMode(state, CopySetMode::kDistributed);
}
BENCHMARK(A2_CopySetDistributed)->Arg(2)->Arg(4)->Arg(7)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
