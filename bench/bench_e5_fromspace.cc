// E5 — from-space reclamation cost (§4.5): the one GC path with explicit
// messages.  Sweep the number of live *non-owned* objects stranded in the
// from-space; series: copy-request round-trips, address-change messages, and
// wall time until the segment is free.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace bmx {
namespace {

void E5_Reclaim(benchmark::State& state) {
  size_t stranded = static_cast<size_t>(state.range(0));
  uint64_t copy_requests = 0;
  uint64_t address_changes = 0;
  uint64_t segments_freed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    BunchId bunch = rig.cluster.CreateBunch(0);
    // Node 0 allocates `stranded` objects, node 1 takes ownership of all of
    // them; node 0 keeps rooted, non-owned replicas.
    std::vector<Gaddr> objs;
    for (size_t i = 0; i < stranded; ++i) {
      Gaddr o = rig.mutators[0]->Alloc(bunch, 2);
      rig.mutators[0]->AddRoot(o);
      objs.push_back(o);
    }
    for (Gaddr o : objs) {
      rig.mutators[1]->AcquireWrite(o);
      rig.mutators[1]->Release(o);
      rig.mutators[0]->AcquireRead(o);
      rig.mutators[0]->Release(o);
    }
    // Node 0's BGC flips; its old segment is now from-space full of live
    // non-owned objects.
    rig.cluster.node(0).gc().CollectBunch(bunch);
    rig.cluster.Pump();
    rig.cluster.network().ResetStats();
    rig.cluster.node(0).gc().ResetStats();
    state.ResumeTiming();

    rig.cluster.node(0).gc().ReclaimFromSpaces(bunch);
    rig.cluster.Pump();

    state.PauseTiming();
    copy_requests += rig.cluster.network().stats().For(MsgKind::kCopyRequest).sent;
    address_changes += rig.cluster.network().stats().For(MsgKind::kAddressChange).sent;
    segments_freed += rig.cluster.node(0).gc().stats().segments_freed;
    state.ResumeTiming();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["copy_requests"] = static_cast<double>(copy_requests) / iters;
  state.counters["address_change_msgs"] = static_cast<double>(address_changes) / iters;
  state.counters["segments_freed"] = static_cast<double>(segments_freed) / iters;
  state.counters["stranded_objects"] = static_cast<double>(stranded);
}
BENCHMARK(E5_Reclaim)->RangeMultiplier(2)->Range(1, 128)->Unit(benchmark::kMicrosecond);

void E5_ReclaimNoStranded(benchmark::State& state) {
  // Baseline: everything locally owned — reclamation needs only the
  // address-change notices to replica holders, no copy requests.
  uint64_t copy_requests = 0;
  uint64_t address_changes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    BunchId bunch = rig.cluster.CreateBunch(0);
    rig.BuildReplicatedList(bunch, 64, 2);
    rig.cluster.node(0).gc().CollectBunch(bunch);
    rig.cluster.Pump();
    rig.cluster.network().ResetStats();
    state.ResumeTiming();

    rig.cluster.node(0).gc().ReclaimFromSpaces(bunch);
    rig.cluster.Pump();

    state.PauseTiming();
    copy_requests += rig.cluster.network().stats().For(MsgKind::kCopyRequest).sent;
    address_changes += rig.cluster.network().stats().For(MsgKind::kAddressChange).sent;
    state.ResumeTiming();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["copy_requests"] = static_cast<double>(copy_requests) / iters;
  state.counters["address_change_msgs"] = static_cast<double>(address_changes) / iters;
}
BENCHMARK(E5_ReclaimNoStranded)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
