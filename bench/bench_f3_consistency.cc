// F3: consistency-checker cost model.
//
// Two questions the tentpole must answer with numbers:
//   * What does Check() cost as the recorded history grows?  (The checker is
//     offline — run at quiescence — but explorer sweeps run it once per walk,
//     so it must stay cheap at workload-sized histories.)
//   * What does *recording* cost while the run executes?  The contract is
//     "one null check when disabled"; with a recorder attached the hooks pay
//     for clock ticks and event copies, visible as run-to-run delta here.

#include <memory>

#include "bench/bench_util.h"
#include "src/runtime/consistency_checker.h"
#include "src/runtime/explorer.h"
#include "src/runtime/scenarios.h"

namespace bmx {
namespace {

HistoryWorkloadOptions KnobsForOps(int64_t ops) {
  HistoryWorkloadOptions knobs;
  knobs.ops = static_cast<size_t>(ops);
  return knobs;
}

// Checker cost vs history length: build one recorded run outside the timing
// loop, then time Check() alone.
void BM_F3_CheckerVsHistoryLength(benchmark::State& state) {
  ExplorerScenario scenario = HistoryWorkloadScenario(KnobsForOps(state.range(0)));
  std::unique_ptr<Cluster> cluster = scenario.make(1);
  cluster->EnableHistoryRecording();
  scenario.run(*cluster);
  cluster->Pump();
  for (auto _ : state) {
    ConsistencyChecker checker(cluster->history(), &cluster->directory());
    auto violations = checker.Check();
    benchmark::DoNotOptimize(violations);
  }
  state.counters["events"] =
      static_cast<double>(cluster->history()->TotalEvents());
}
BENCHMARK(BM_F3_CheckerVsHistoryLength)->Arg(64)->Arg(256)->Arg(1024);

// Recording overhead: the same workload run end to end, recorder attached or
// not.  The delta between the two lines is the per-run price of the hooks.
void BM_F3_RecordingOverhead(benchmark::State& state) {
  const bool recording = state.range(0) != 0;
  ExplorerScenario scenario = HistoryWorkloadScenario(KnobsForOps(128));
  uint64_t events = 0;
  for (auto _ : state) {
    std::unique_ptr<Cluster> cluster = scenario.make(1);
    if (recording) {
      cluster->EnableHistoryRecording();
    }
    scenario.run(*cluster);
    cluster->Pump();
    if (recording) {
      events = cluster->history()->TotalEvents();
    }
  }
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_F3_RecordingOverhead)->Arg(0)->Arg(1);

// Full explorer verdict path (run + record + check at quiescence), the shape
// CI's consistency sweep executes.
void BM_F3_ExplorerVerdict(benchmark::State& state) {
  ExplorerScenario scenario = HistoryWorkloadScenario(KnobsForOps(64));
  for (auto _ : state) {
    ExplorerOptions options;
    options.schedule = ScheduleKind::kFifo;
    options.check_consistency = true;
    Explorer explorer(options);
    ExplorationResult result = explorer.Explore(scenario);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_F3_ExplorerVerdict);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
