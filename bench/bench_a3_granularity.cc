// Ablation A3 — impact of consistency granularity (the paper's §10 future
// work: "evaluating the impact of the consistency granularity on our
// approach").
//
// The object is BMX's unit of consistency AND of collection.  Sweep object
// size at fixed total heap bytes; series: grant bytes per synchronization,
// BGC time, and piggyback size — small objects mean more tokens and more
// address updates, large objects mean coarser invalidation and bigger
// grants.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace bmx {
namespace {

constexpr size_t kHeapSlots = 4096;  // total data slots, fixed across sizes

void A3_BgcVsObjectSize(benchmark::State& state) {
  uint32_t slots_per_object = static_cast<uint32_t>(state.range(0));
  size_t count = kHeapSlots / slots_per_object;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(1);
    BunchId bunch = rig.cluster.CreateBunch(0);
    Mutator& m = *rig.mutators[0];
    Gaddr head = kNullAddr;
    for (size_t i = 0; i < count; ++i) {
      Gaddr obj = m.Alloc(bunch, slots_per_object);
      m.WriteRef(obj, 0, head);
      head = obj;
    }
    m.AddRoot(head);
    state.ResumeTiming();

    rig.cluster.node(0).gc().CollectBunch(bunch);
  }
  state.counters["slots_per_object"] = static_cast<double>(slots_per_object);
  state.counters["objects"] = static_cast<double>(count);
}
BENCHMARK(A3_BgcVsObjectSize)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void A3_SyncCostVsObjectSize(benchmark::State& state) {
  uint32_t slots_per_object = static_cast<uint32_t>(state.range(0));
  size_t touched_slots = 256;  // the application's working set, in slots
  size_t objects = touched_slots / slots_per_object;
  uint64_t grant_bytes = 0;
  uint64_t grants = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    BunchId bunch = rig.cluster.CreateBunch(0);
    Mutator& owner = *rig.mutators[0];
    std::vector<Gaddr> objs;
    for (size_t i = 0; i < objects; ++i) {
      objs.push_back(owner.Alloc(bunch, slots_per_object));
      owner.AddRoot(objs.back());
    }
    rig.cluster.network().ResetStats();
    state.ResumeTiming();

    // The replica faults the whole working set in.
    for (Gaddr obj : objs) {
      rig.mutators[1]->AcquireRead(obj);
      rig.mutators[1]->Release(obj);
    }

    state.PauseTiming();
    grant_bytes += rig.cluster.network().stats().For(MsgKind::kGrant).bytes;
    grants += rig.cluster.network().stats().For(MsgKind::kGrant).sent;
    state.ResumeTiming();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["grants_per_workingset"] = static_cast<double>(grants) / iters;
  state.counters["grant_bytes_per_workingset"] = static_cast<double>(grant_bytes) / iters;
  state.counters["slots_per_object"] = static_cast<double>(slots_per_object);
}
BENCHMARK(A3_SyncCostVsObjectSize)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
