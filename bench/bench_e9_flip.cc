// E9 — mutator pause (§4.1: the O'Toole-style collector was chosen because
// "the time to flip is very small and therefore not disruptive").
//
// Series over heap size: (a) BMX — the pause a mutator on the *collecting*
// node sees is that node's own BGC, and mutators on other nodes see no pause
// at all; (b) stop-the-world — every node is stopped for the whole
// distributed operation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/stop_the_world.h"

namespace bmx {
namespace {

void E9_BmxLocalPause(benchmark::State& state) {
  size_t objects = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(3);
    BunchId bunch = rig.cluster.CreateBunch(0);
    rig.BuildReplicatedList(bunch, objects, 3);
    state.ResumeTiming();

    // The collecting node's mutators pause for exactly this call; mutators on
    // nodes 1 and 2 never stop (their tokens stay valid, E3 shows the rest).
    rig.cluster.node(0).gc().CollectBunch(bunch);

    state.PauseTiming();
    rig.cluster.Pump();
    state.ResumeTiming();
  }
  state.counters["heap_objects"] = static_cast<double>(objects);
  state.counters["nodes_paused"] = 1;
}
BENCHMARK(E9_BmxLocalPause)->RangeMultiplier(4)->Range(64, 4096)->Unit(benchmark::kMicrosecond);

void E9_StopTheWorldPause(benchmark::State& state) {
  size_t objects = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(3);
    BunchId bunch = rig.cluster.CreateBunch(0);
    rig.BuildReplicatedList(bunch, objects, 3);
    StopTheWorldCollector stw(&rig.cluster, rig.AgentPtrs());
    state.ResumeTiming();

    // Every mapper is stopped from the first StwStop to the last StwResume:
    // the whole call is mutator-visible pause on all three nodes.
    stw.Collect(0, bunch);
  }
  state.counters["heap_objects"] = static_cast<double>(objects);
  state.counters["nodes_paused"] = 3;
}
BENCHMARK(E9_StopTheWorldPause)->RangeMultiplier(4)->Range(64, 4096)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
