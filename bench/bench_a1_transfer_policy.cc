// Ablation A1 — intra-bunch SSPs vs replicated inter-bunch SSPs (§3.2).
//
// "We decided to use intra-bunch SSPs, instead of replicating inter-bunch
// SSPs, in order to reduce the number of scion messages and the amount of
// memory consumed for GC purposes."  Sweep the number of inter-bunch
// references held by the transferred object; series: scion-messages per
// transfer and total SSP table entries after the transfer, per policy.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace bmx {
namespace {

void RunTransfer(benchmark::State& state, TransferPolicy policy) {
  size_t stubs = static_cast<size_t>(state.range(0));
  uint64_t scion_msgs = 0;
  uint64_t table_entries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(3);
    for (NodeId n = 0; n < 3; ++n) {
      rig.cluster.node(n).gc().set_transfer_policy(policy);
    }
    BunchId b = rig.cluster.CreateBunch(0);
    BunchId other = rig.cluster.CreateBunch(2);  // targets live on node 2
    Gaddr obj = rig.mutators[0]->Alloc(b, static_cast<uint32_t>(stubs));
    for (size_t i = 0; i < stubs; ++i) {
      Gaddr out = rig.mutators[2]->Alloc(other, 1);
      rig.mutators[2]->AddRoot(out);
      rig.mutators[0]->WriteRef(obj, i, out);  // remote target: scion-message
    }
    rig.cluster.Pump();
    uint64_t msgs_before = rig.cluster.network().stats().For(MsgKind::kScionMessage).sent;
    state.ResumeTiming();

    bool ok = rig.mutators[1]->AcquireWrite(obj);
    benchmark::DoNotOptimize(ok);
    rig.cluster.Pump();

    state.PauseTiming();
    rig.mutators[1]->Release(obj);
    scion_msgs += rig.cluster.network().stats().For(MsgKind::kScionMessage).sent - msgs_before;
    for (NodeId n = 0; n < 3; ++n) {
      auto tables = rig.cluster.node(n).gc().TablesOf(b);
      table_entries += tables.inter_stubs.size() + tables.intra_stubs.size() +
                       tables.intra_scions.size();
      table_entries += rig.cluster.node(n).gc().TablesOf(other).inter_scions.size();
    }
    state.ResumeTiming();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["scion_msgs_per_transfer"] = static_cast<double>(scion_msgs) / iters;
  state.counters["ssp_table_entries"] = static_cast<double>(table_entries) / iters;
  state.counters["inter_refs"] = static_cast<double>(stubs);
}

void A1_IntraSsp(benchmark::State& state) { RunTransfer(state, TransferPolicy::kIntraSsp); }
BENCHMARK(A1_IntraSsp)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void A1_ReplicateInterSsp(benchmark::State& state) {
  RunTransfer(state, TransferPolicy::kReplicateInterSsp);
}
BENCHMARK(A1_ReplicateInterSsp)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
