// E4 — lazy piggybacked reference updates vs eager explicit messages (§4.4).
//
// After the owner's BGC moves N objects, remote replicas need the new
// locations.  BMX piggybacks them on the consistency messages applications
// send anyway; the eager strategy broadcasts dedicated update messages and
// waits for acks.  Series over N: dedicated messages sent and bytes carried
// by each strategy.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/strong_copy.h"

namespace bmx {
namespace {

void E4_LazyPiggyback(benchmark::State& state) {
  size_t objects = static_cast<size_t>(state.range(0));
  uint64_t gc_messages = 0;
  uint64_t piggyback_updates = 0;
  uint64_t app_acquires = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    BunchId bunch = rig.cluster.CreateBunch(0);
    Gaddr head = rig.BuildReplicatedList(bunch, objects, 2);
    state.ResumeTiming();

    rig.cluster.node(0).gc().CollectBunch(bunch);
    // The replica keeps computing on stale addresses; when the application
    // itself synchronizes (one acquire), the piggyback delivers what it
    // needs — no dedicated update message ever flows.
    rig.mutators[0]->AcquireWrite(head);
    rig.mutators[0]->Release(head);
    Gaddr at1 = rig.cluster.node(1).dsm().ResolveAddr(head);
    rig.mutators[1]->AcquireRead(at1);
    rig.mutators[1]->Release(at1);

    state.PauseTiming();
    gc_messages += rig.cluster.network().stats().For(MsgKind::kAddressChange).sent +
                   rig.cluster.network().stats().For(MsgKind::kStrongUpdate).sent;
    piggyback_updates += rig.cluster.node(0).dsm().stats().piggyback_updates_sent;
    app_acquires += rig.cluster.node(1).dsm().stats().remote_acquires;
    rig.cluster.Pump();
    state.ResumeTiming();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["dedicated_update_msgs"] = static_cast<double>(gc_messages) / iters;
  state.counters["piggybacked_updates"] = static_cast<double>(piggyback_updates) / iters;
  state.counters["objects_moved"] = static_cast<double>(objects);
}
BENCHMARK(E4_LazyPiggyback)->RangeMultiplier(4)->Range(4, 256)->Unit(benchmark::kMicrosecond);

void E4_EagerBroadcast(benchmark::State& state) {
  size_t objects = static_cast<size_t>(state.range(0));
  uint64_t update_messages = 0;
  uint64_t update_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    BunchId bunch = rig.cluster.CreateBunch(0);
    rig.BuildReplicatedList(bunch, objects, 2);
    StrongCopyCollector strong(&rig.cluster, rig.AgentPtrs());
    rig.cluster.network().ResetStats();
    state.ResumeTiming();

    strong.Collect(0, bunch);

    state.PauseTiming();
    update_messages += rig.cluster.network().stats().For(MsgKind::kStrongUpdate).sent +
                       rig.cluster.network().stats().For(MsgKind::kStrongUpdateAck).sent;
    update_bytes += rig.cluster.network().stats().For(MsgKind::kStrongUpdate).bytes;
    state.ResumeTiming();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["dedicated_update_msgs"] = static_cast<double>(update_messages) / iters;
  state.counters["update_bytes"] = static_cast<double>(update_bytes) / iters;
  state.counters["objects_moved"] = static_cast<double>(objects);
}
BENCHMARK(E4_EagerBroadcast)->RangeMultiplier(4)->Range(4, 256)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
