// P2 — parallel runtime scaling (DESIGN.md task-pool section, EXPERIMENTS.md
// P2).
//
// Sweeps BMX_THREADS over the scan-dominated runtime paths the task pool
// shards: a replica-side BGC (the collecting node owns nothing, so the serial
// copy phase is empty and tracing/scanning dominates), a group collection
// over several bunches, and a whole-cluster oracle audit.  The heap is many
// disjoint linked lists — the wide root forest where per-chunk marking
// scales — all owned by node 0 and replicated + rooted at node 1.
//
// The output must be *identical* at every thread count (the determinism
// sweep pins that); these benchmarks measure only the wall-clock effect.
// On a single-core host the >1-thread rows measure oversubscription overhead
// rather than speedup; see EXPERIMENTS.md for interpretation.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "src/common/task_pool.h"
#include "src/runtime/oracle.h"

namespace bmx {
namespace {

constexpr size_t kLists = 16;    // disjoint lists per bunch (root-forest width)
constexpr size_t kListLen = 64;  // objects per list

// Two nodes: node 0 allocates and owns every list; node 1 replicates every
// object (read tokens) and roots every list head.  Collections then run at
// node 1, where no object is locally owned.
struct P2Rig {
  explicit P2Rig(size_t bunches) : rig(2) {
    for (size_t b = 0; b < bunches; ++b) {
      BunchId bunch = rig.cluster.CreateBunch(0);
      bunch_ids.push_back(bunch);
      Mutator& owner = *rig.mutators[0];
      Mutator& replica = *rig.mutators[1];
      for (size_t l = 0; l < kLists; ++l) {
        Gaddr head = kNullAddr;
        for (size_t i = 0; i < kListLen; ++i) {
          Gaddr node = owner.Alloc(bunch, 2);
          owner.WriteRef(node, 0, head);
          owner.WriteWord(node, 1, i);
          head = node;
        }
        owner.AddRoot(head);
        for (Gaddr cur = head; cur != kNullAddr;) {
          replica.AcquireRead(cur);
          Gaddr next = replica.ReadRef(cur, 0);
          replica.Release(cur);
          cur = next;
        }
        replica.AddRoot(head);
      }
    }
    rig.cluster.Pump();
  }

  BenchRig rig;
  std::vector<BunchId> bunch_ids;
};

// Replica-side BGC of one bunch: empty copy phase, parallel trace / reference
// update / sweep / table rebuild.
void P2_BgcReplicaScan(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  TaskPool::SetThreadsForTesting(threads);
  for (auto _ : state) {
    state.PauseTiming();  // fresh cluster per collection: no from-space pileup
    P2Rig p2(1);
    state.ResumeTiming();
    p2.rig.cluster.node(1).gc().CollectBunch(p2.bunch_ids[0]);
  }
  TaskPool::SetThreadsForTesting(TaskPool::EnvThreads());
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["objects"] = static_cast<double>(kLists * kListLen);
}
BENCHMARK(P2_BgcReplicaScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Replica-side group collection across four bunches (more segments to shard).
void P2_GgcGroupScan(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  TaskPool::SetThreadsForTesting(threads);
  for (auto _ : state) {
    state.PauseTiming();
    P2Rig p2(4);
    state.ResumeTiming();
    p2.rig.cluster.node(1).gc().CollectGroup();
  }
  TaskPool::SetThreadsForTesting(TaskPool::EnvThreads());
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["objects"] = static_cast<double>(4 * kLists * kListLen);
}
BENCHMARK(P2_GgcGroupScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Whole-cluster invariant audit (read-only: one rig reused across
// iterations); per-node checks shard over the pool.
void P2_OracleAudit(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  TaskPool::SetThreadsForTesting(threads);
  P2Rig p2(2);
  InvariantOracle oracle(&p2.rig.cluster);
  for (auto _ : state) {
    std::vector<std::string> violations = oracle.Check();
    benchmark::DoNotOptimize(violations);
  }
  TaskPool::SetThreadsForTesting(TaskPool::EnvThreads());
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(P2_OracleAudit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
