// P1 — heap-scan kernels (performance pass).
//
// Measures the word-level bitmap iteration primitives against the bit-by-bit
// pattern the seed implementation used, on the workload they were built for:
// scan-dominated heaps with sparse reference-maps and large (≥64-slot)
// objects, where most 64-slot words of the ref-map are empty and the kernel
// skips each of them in one load+test.
//
// Pairs (same data, same result, different iteration):
//   P1_PerSlotRefScan  vs P1_WordKernelRefScan   — ReplicaStore object scans
//   P1_BitByBitBitmap  vs P1_WordKernelBitmap    — raw Bitmap iteration
//   P1_BgcSparseHeap                             — end-to-end BGC on the same
//                                                  heap shape (kernels inside)

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/mem/replica_store.h"

namespace bmx {
namespace {

constexpr uint32_t kObjSlots = 2048;  // 32 ref-map words per object
constexpr size_t kRefStride = 173;    // sparse, word-misaligned ref slots
constexpr size_t kNumObjects = 24;

// A store holding large objects whose ref-maps are mostly empty words.
struct SparseHeap {
  SparseHeap() {
    SegmentImage& image = store.GetOrCreate(/*seg=*/1, /*bunch=*/1);
    SegmentImage* current = &image;
    SegmentId next_seg = 2;
    for (size_t n = 0; n < kNumObjects; ++n) {
      Gaddr addr = current->Allocate(/*oid=*/n + 1, kObjSlots);
      if (addr == kNullAddr) {
        current = &store.GetOrCreate(next_seg++, /*bunch=*/1);
        addr = current->Allocate(n + 1, kObjSlots);
      }
      for (size_t i = 0; i < kObjSlots; i += kRefStride) {
        store.WriteSlot(addr, i, 0x1000 + i);
        store.SetSlotIsRef(addr, i, true);
      }
      objects.push_back(addr);
    }
  }
  ReplicaStore store;
  std::vector<Gaddr> objects;
};

SparseHeap& Heap() {
  static SparseHeap heap;
  return heap;
}

// The seed pattern: one SlotIsRef probe and (for refs) one ReadSlot per slot.
void P1_PerSlotRefScan(benchmark::State& state) {
  SparseHeap& heap = Heap();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (Gaddr addr : heap.objects) {
      for (size_t i = 0; i < kObjSlots; ++i) {
        if (heap.store.SlotIsRef(addr, i)) {
          sum += heap.store.ReadSlot(addr, i);
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kNumObjects * kObjSlots);
}
BENCHMARK(P1_PerSlotRefScan)->Unit(benchmark::kMicrosecond);

// The kernel: one segment lookup per object, word-level ref-map walk.
void P1_WordKernelRefScan(benchmark::State& state) {
  SparseHeap& heap = Heap();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (Gaddr addr : heap.objects) {
      heap.store.ForEachRefSlot(addr, kObjSlots,
                                [&](size_t, uint64_t value) { sum += value; });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kNumObjects * kObjSlots);
  state.counters["words_skipped"] =
      static_cast<double>(GlobalPerfCounters().words_skipped);
}
BENCHMARK(P1_WordKernelRefScan)->Unit(benchmark::kMicrosecond);

// Raw bitmap iteration, sparse population (1 set bit per kRefStride).
void P1_BitByBitBitmap(benchmark::State& state) {
  Bitmap bits(kSlotsPerSegment);
  for (size_t i = 0; i < bits.size(); i += kRefStride) {
    bits.Set(i);
  }
  uint64_t sum = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits.Test(i)) {
        sum += i;
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * bits.size());
}
BENCHMARK(P1_BitByBitBitmap)->Unit(benchmark::kMicrosecond);

void P1_WordKernelBitmap(benchmark::State& state) {
  Bitmap bits(kSlotsPerSegment);
  for (size_t i = 0; i < bits.size(); i += kRefStride) {
    bits.Set(i);
  }
  uint64_t sum = 0;
  for (auto _ : state) {
    bits.ForEachSet([&](size_t bit) { sum += bit; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * bits.size());
}
BENCHMARK(P1_WordKernelBitmap)->Unit(benchmark::kMicrosecond);

// End-to-end: a BGC over a heap of large sparse objects — mark, copy and
// reference-update loops all run on the kernels.
void P1_BgcSparseHeap(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(1);
    BunchId bunch = rig.cluster.CreateBunch(0);
    Mutator& m = *rig.mutators[0];
    Gaddr head = kNullAddr;
    for (size_t n = 0; n < kNumObjects; ++n) {
      Gaddr obj = m.Alloc(bunch, kObjSlots);
      m.WriteRef(obj, 0, head);
      head = obj;
    }
    m.AddRoot(head);
    state.ResumeTiming();

    rig.cluster.node(0).gc().CollectBunch(bunch);
  }
  state.counters["objects"] = static_cast<double>(kNumObjects);
  state.counters["slots_per_object"] = static_cast<double>(kObjSlots);
}
BENCHMARK(P1_BgcSparseHeap)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
