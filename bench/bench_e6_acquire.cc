// E6 — write-token acquire latency under the §5 invariants (Figure 3).
//
// N2 acquires O1's write token from N1 with 0..D of O1's referents copied to
// to-space at N1: the piggyback grows with D (invariant 1) but the acquire
// stays one round trip.  Counters: piggybacked updates and intra-SSP
// requests carried by the grant.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace bmx {
namespace {

void E6_AcquireAfterOwnerGc(benchmark::State& state) {
  size_t referents = static_cast<size_t>(state.range(0));
  uint64_t updates = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    BunchId bunch = rig.cluster.CreateBunch(0);
    Mutator& owner = *rig.mutators[0];
    Gaddr o1 = owner.Alloc(bunch, static_cast<uint32_t>(referents + 1));
    for (size_t i = 0; i < referents; ++i) {
      Gaddr ref = owner.Alloc(bunch, 1);
      owner.WriteRef(o1, i, ref);
    }
    owner.AddRoot(o1);
    // Owner's BGC moves O1 and all its referents (case (b)/(c) of Fig. 3).
    rig.cluster.node(0).gc().CollectBunch(bunch);
    rig.cluster.node(0).dsm().ResetStats();
    state.ResumeTiming();

    bool ok = rig.mutators[1]->AcquireWrite(o1);
    benchmark::DoNotOptimize(ok);

    state.PauseTiming();
    rig.mutators[1]->Release(o1);
    updates += rig.cluster.node(0).dsm().stats().piggyback_updates_sent;
    state.ResumeTiming();
  }
  state.counters["piggyback_updates"] =
      static_cast<double>(updates) / static_cast<double>(state.iterations());
  state.counters["referents_moved"] = static_cast<double>(referents);
}
BENCHMARK(E6_AcquireAfterOwnerGc)->DenseRange(0, 8)->Unit(benchmark::kMicrosecond);

void E6_AcquireNoGc(benchmark::State& state) {
  // Case (a): nothing copied anywhere — the latency floor.
  size_t referents = 4;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    BunchId bunch = rig.cluster.CreateBunch(0);
    Mutator& owner = *rig.mutators[0];
    Gaddr o1 = owner.Alloc(bunch, static_cast<uint32_t>(referents + 1));
    for (size_t i = 0; i < referents; ++i) {
      owner.WriteRef(o1, i, owner.Alloc(bunch, 1));
    }
    owner.AddRoot(o1);
    rig.cluster.node(0).dsm().ResetStats();
    state.ResumeTiming();

    bool ok = rig.mutators[1]->AcquireWrite(o1);
    benchmark::DoNotOptimize(ok);

    state.PauseTiming();
    rig.mutators[1]->Release(o1);
    state.ResumeTiming();
  }
}
BENCHMARK(E6_AcquireNoGc)->Unit(benchmark::kMicrosecond);

void E6_AcquireWithIntraSsp(benchmark::State& state) {
  // Invariant 3: the old owner holds an inter-bunch stub, so the grant also
  // creates the intra-bunch SSP before completing.
  uint64_t ssp_requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2);
    BunchId bunch = rig.cluster.CreateBunch(0);
    BunchId other = rig.cluster.CreateBunch(0);
    Mutator& owner = *rig.mutators[0];
    Gaddr o1 = owner.Alloc(bunch, 2);
    Gaddr out = owner.Alloc(other, 1);
    owner.AddRoot(out);
    owner.WriteRef(o1, 0, out);
    owner.AddRoot(o1);
    rig.cluster.node(0).dsm().ResetStats();
    state.ResumeTiming();

    bool ok = rig.mutators[1]->AcquireWrite(o1);
    benchmark::DoNotOptimize(ok);

    state.PauseTiming();
    rig.mutators[1]->Release(o1);
    ssp_requests += rig.cluster.node(0).dsm().stats().piggyback_ssp_requests_sent;
    state.ResumeTiming();
  }
  state.counters["intra_ssp_requests"] =
      static_cast<double>(ssp_requests) / static_cast<double>(state.iterations());
}
BENCHMARK(E6_AcquireWithIntraSsp)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
