// F4: liveness-oracle cost model.
//
// The obligation tracker rides inside the protocol hot paths (every acquire,
// invalidation, grant, reclaim round and recovery opens/closes a ledger
// entry), so its price must be measured, not assumed:
//   * Tracking overhead on the E2 (replicated list build) and E6 (acquire
//     round) smoke shapes, ledger enabled vs disabled — the acceptance bar
//     is <= 5% on these paths.  Disabled, the hooks are a single branch.
//   * The oracle's verdict path itself (excuse evaluation over a snapshot),
//     which explorer sweeps run once per window and once at quiescence.

#include <memory>

#include "bench/bench_util.h"
#include "src/runtime/explorer.h"
#include "src/runtime/liveness.h"
#include "src/runtime/scenarios.h"

namespace bmx {
namespace {

// E2 shape: build a list at node 0 and replicate it on 4 of 8 nodes —
// acquire/grant traffic with copyset growth — with the ledger on or off.
void BM_F4_TrackingOverheadE2(benchmark::State& state) {
  const bool tracking = state.range(0) != 0;
  uint64_t opened = 0;
  for (auto _ : state) {
    BenchRig rig(8);
    if (tracking) {
      rig.cluster.network().obligations().Enable();
    }
    BunchId bunch = rig.cluster.CreateBunch(0);
    rig.BuildReplicatedList(bunch, 64, 4);
    benchmark::DoNotOptimize(rig.cluster.network().stats());
  }
  opened = GlobalPerfCounters().obligations_opened;
  state.counters["opened"] = static_cast<double>(opened);
}
BENCHMARK(BM_F4_TrackingOverheadE2)->Arg(0)->Arg(1);

// E6 shape: a contended acquire round — two nodes ping-ponging write tokens
// over a shared object set, the densest open/close traffic per message.
void BM_F4_TrackingOverheadE6(benchmark::State& state) {
  const bool tracking = state.range(0) != 0;
  for (auto _ : state) {
    BenchRig rig(2);
    if (tracking) {
      rig.cluster.network().obligations().Enable();
    }
    BunchId bunch = rig.cluster.CreateBunch(0);
    std::vector<Gaddr> objs;
    for (int i = 0; i < 32; ++i) {
      Gaddr o = rig.mutators[0]->Alloc(bunch, 2);
      rig.mutators[0]->AddRoot(o);
      objs.push_back(o);
    }
    rig.cluster.Pump();
    for (int round = 0; round < 4; ++round) {
      for (Gaddr o : objs) {
        Mutator& m = *rig.mutators[(round + 1) % 2];
        if (m.AcquireWrite(o)) {
          m.WriteWord(o, 1, static_cast<uint64_t>(round));
          m.Release(o);
        }
      }
    }
    rig.cluster.Pump();
    benchmark::DoNotOptimize(rig.cluster.network().stats());
  }
}
BENCHMARK(BM_F4_TrackingOverheadE6)->Arg(0)->Arg(1);

// The oracle verdict path the explorer pays per window and at quiescence:
// snapshot + excuse evaluation over the randomized workload's final state.
void BM_F4_OracleVerdict(benchmark::State& state) {
  ExplorerScenario scenario = HistoryWorkloadScenario();
  std::unique_ptr<Cluster> cluster = scenario.make(1);
  LivenessOracle oracle(cluster.get());
  scenario.run(*cluster);
  cluster->Pump();
  for (auto _ : state) {
    auto verdicts = oracle.CheckAtQuiescence();
    benchmark::DoNotOptimize(verdicts);
  }
  state.counters["open"] =
      static_cast<double>(cluster->network().obligations().OpenCount());
}
BENCHMARK(BM_F4_OracleVerdict);

// Full explorer verdict path with liveness checking, the shape CI's
// liveness sweep executes per walk.
void BM_F4_ExplorerVerdict(benchmark::State& state) {
  ExplorerScenario scenario = HistoryWorkloadScenario();
  for (auto _ : state) {
    ExplorerOptions options;
    options.schedule = ScheduleKind::kFifo;
    options.check_liveness = true;
    Explorer explorer(options);
    ExplorationResult result = explorer.Explore(scenario);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_F4_ExplorerVerdict);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
