// E8 — group garbage collection (§7): inter-bunch cycles that per-bunch
// BGCs structurally cannot reclaim fall to a single GGC pass; GGC cost
// scales with group size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/workload/graph_builder.h"

namespace bmx {
namespace {

void E8_BgcOnlyOnCycles(benchmark::State& state) {
  size_t bunches = static_cast<size_t>(state.range(0));
  uint64_t reclaimed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(1);
    GraphBuilder builder(&rig.cluster, rig.mutators[0].get());
    std::vector<BunchId> ids;
    for (size_t i = 0; i < bunches; ++i) {
      ids.push_back(rig.cluster.CreateBunch(0));
    }
    for (int ring = 0; ring < 8; ++ring) {
      builder.BuildCrossBunchCycle(ids);
    }
    state.ResumeTiming();

    for (int round = 0; round < 3; ++round) {
      for (BunchId b : ids) {
        rig.cluster.node(0).gc().CollectBunch(b);
      }
    }

    state.PauseTiming();
    reclaimed += rig.cluster.node(0).gc().stats().objects_reclaimed;
    state.ResumeTiming();
  }
  state.counters["cyclic_reclaimed"] =
      static_cast<double>(reclaimed) / static_cast<double>(state.iterations());
  state.counters["cyclic_garbage"] = static_cast<double>(8 * bunches);
}
BENCHMARK(E8_BgcOnlyOnCycles)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void E8_GgcOnCycles(benchmark::State& state) {
  size_t bunches = static_cast<size_t>(state.range(0));
  uint64_t reclaimed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(1);
    GraphBuilder builder(&rig.cluster, rig.mutators[0].get());
    std::vector<BunchId> ids;
    for (size_t i = 0; i < bunches; ++i) {
      ids.push_back(rig.cluster.CreateBunch(0));
    }
    for (int ring = 0; ring < 8; ++ring) {
      builder.BuildCrossBunchCycle(ids);
    }
    state.ResumeTiming();

    rig.cluster.node(0).gc().CollectGroup();

    state.PauseTiming();
    reclaimed += rig.cluster.node(0).gc().stats().objects_reclaimed;
    state.ResumeTiming();
  }
  state.counters["cyclic_reclaimed"] =
      static_cast<double>(reclaimed) / static_cast<double>(state.iterations());
  state.counters["cyclic_garbage"] = static_cast<double>(8 * bunches);
}
BENCHMARK(E8_GgcOnCycles)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void E8_GgcCostVsGroupSize(benchmark::State& state) {
  // Live-data GGC cost as the locality-based group grows.
  size_t bunches = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(1);
    GraphBuilder builder(&rig.cluster, rig.mutators[0].get());
    for (size_t i = 0; i < bunches; ++i) {
      BunchId b = rig.cluster.CreateBunch(0);
      Gaddr head = builder.BuildList(b, 50);
      rig.mutators[0]->AddRoot(head);
    }
    state.ResumeTiming();

    rig.cluster.node(0).gc().CollectGroup();
  }
  state.counters["bunches"] = static_cast<double>(bunches);
  state.counters["live_objects"] = static_cast<double>(bunches * 50);
}
BENCHMARK(E8_GgcCostVsGroupSize)->RangeMultiplier(2)->Range(1, 16)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
