// E3 — GC/DSM interference (§4.2, §8): "the BGC never acquires a token for
// any object, and consequently does not interfere with the DSM consistency
// protocol."
//
// A replica node reads its cached working set in a tight loop.  Series:
// reader throughput (a) with no collector running, (b) with the BMX BGC
// collecting the owner's replica between batches, (c) with the strong-copy
// collector doing the same.  Counters: read-copies invalidated at the reader
// and tokens acquired by the collector — the mechanism behind the slowdown.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/strong_copy.h"

namespace bmx {
namespace {

constexpr size_t kObjects = 64;

struct WorkingSet {
  std::vector<Gaddr> objects;
};

WorkingSet CacheAll(BenchRig& rig, BunchId bunch, Gaddr head) {
  WorkingSet ws;
  Gaddr cur = head;
  while (cur != kNullAddr) {
    ws.objects.push_back(cur);
    rig.mutators[1]->AcquireRead(cur);
    Gaddr next = rig.mutators[1]->ReadRef(cur, 0);
    rig.mutators[1]->Release(cur);
    cur = next;
  }
  (void)bunch;
  return ws;
}

// One "application batch": the reader touches its whole working set.
uint64_t ReadBatch(BenchRig& rig, const WorkingSet& ws) {
  uint64_t sum = 0;
  for (Gaddr obj : ws.objects) {
    Gaddr cur = rig.cluster.node(1).dsm().ResolveAddr(obj);
    rig.mutators[1]->AcquireRead(cur);
    sum += rig.mutators[1]->ReadWord(cur, 1);
    rig.mutators[1]->Release(cur);
  }
  return sum;
}

void E3_ReaderAlone(benchmark::State& state) {
  BenchRig rig(2);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Gaddr head = rig.BuildReplicatedList(bunch, kObjects, 2);
  WorkingSet ws = CacheAll(rig, bunch, head);
  rig.cluster.network().ResetStats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadBatch(rig, ws));
  }
  state.SetItemsProcessed(state.iterations() * kObjects);
  state.counters["reader_msgs"] = static_cast<double>(rig.cluster.network().stats().TotalSent());
  state.counters["invalidated"] =
      static_cast<double>(rig.cluster.node(1).dsm().stats().read_copies_invalidated);
}
BENCHMARK(E3_ReaderAlone)->Unit(benchmark::kMicrosecond);

void E3_ReaderDuringBmxGc(benchmark::State& state) {
  BenchRig rig(2);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Gaddr head = rig.BuildReplicatedList(bunch, kObjects, 2);
  WorkingSet ws = CacheAll(rig, bunch, head);
  rig.cluster.node(1).dsm().ResetStats();
  for (auto _ : state) {
    // Owner collects while the reader works: the reader's tokens survive,
    // so its batch runs at cached speed.
    rig.cluster.node(0).gc().CollectBunch(bunch);
    benchmark::DoNotOptimize(ReadBatch(rig, ws));
  }
  state.SetItemsProcessed(state.iterations() * kObjects);
  state.counters["invalidated"] =
      static_cast<double>(rig.cluster.node(1).dsm().stats().read_copies_invalidated);
  state.counters["gc_tokens"] = static_cast<double>(rig.cluster.node(0).dsm().GcTokenAcquires());
}
BENCHMARK(E3_ReaderDuringBmxGc)->Unit(benchmark::kMicrosecond);

void E3_ReaderDuringStrongGc(benchmark::State& state) {
  BenchRig rig(2);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Gaddr head = rig.BuildReplicatedList(bunch, kObjects, 2);
  WorkingSet ws = CacheAll(rig, bunch, head);
  StrongCopyCollector strong(&rig.cluster, rig.AgentPtrs());
  rig.cluster.node(1).dsm().ResetStats();
  for (auto _ : state) {
    // The strong collector acquires every object's write token: the reader's
    // entire working set is invalidated and every read re-fetches.
    strong.Collect(0, bunch);
    benchmark::DoNotOptimize(ReadBatch(rig, ws));
  }
  state.SetItemsProcessed(state.iterations() * kObjects);
  state.counters["invalidated"] =
      static_cast<double>(rig.cluster.node(1).dsm().stats().read_copies_invalidated);
  state.counters["gc_tokens"] = static_cast<double>(strong.stats().tokens_acquired);
}
BENCHMARK(E3_ReaderDuringStrongGc)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
