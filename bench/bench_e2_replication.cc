// E2 — BGC cost vs replication degree (§8's stated performance goal: "the
// cost of the BGC should be the same whether the bunch is replicated or
// not").
//
// A bunch of K objects is replicated on 1..8 nodes; the owner's BGC is
// timed.  Counters report the GC messages sent *during* the collection —
// zero for BMX regardless of replication — and, for contrast, the strong-
// consistency collector's token and message bill, which grows with the
// replica count.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/strong_copy.h"

namespace bmx {
namespace {

constexpr size_t kObjects = 200;

void E2_BmxBgc(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(8);
    BunchId bunch = rig.cluster.CreateBunch(0);
    rig.BuildReplicatedList(bunch, kObjects, replicas);
    rig.cluster.network().ResetStats();
    state.ResumeTiming();

    rig.cluster.node(0).gc().CollectBunch(bunch);

    state.PauseTiming();
    // Messages sent synchronously during the BGC itself (tables flow in the
    // background *after* it and are pumped outside the timed region).
    state.counters["msgs_during_gc"] =
        static_cast<double>(rig.cluster.network().stats().TotalSent()) -
        static_cast<double>(rig.cluster.network().stats().For(MsgKind::kReachabilityTable).sent);
    state.counters["gc_tokens"] = static_cast<double>(rig.cluster.node(0).dsm().GcTokenAcquires());
    state.counters["objects_copied"] =
        static_cast<double>(rig.cluster.node(0).gc().stats().objects_copied);
    rig.cluster.Pump();
    state.ResumeTiming();
  }
  state.counters["replicas"] = static_cast<double>(replicas);
}
BENCHMARK(E2_BmxBgc)->DenseRange(1, 8)->Unit(benchmark::kMicrosecond);

void E2_StrongCopy(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(8);
    BunchId bunch = rig.cluster.CreateBunch(0);
    rig.BuildReplicatedList(bunch, kObjects, replicas);
    StrongCopyCollector strong(&rig.cluster, rig.AgentPtrs());
    rig.cluster.network().ResetStats();
    state.ResumeTiming();

    strong.Collect(0, bunch);

    state.PauseTiming();
    state.counters["msgs_during_gc"] =
        static_cast<double>(rig.cluster.network().stats().TotalSent());
    state.counters["gc_tokens"] = static_cast<double>(strong.stats().tokens_acquired);
    state.counters["update_msgs"] = static_cast<double>(strong.stats().update_messages);
    state.ResumeTiming();
  }
  state.counters["replicas"] = static_cast<double>(replicas);
}
BENCHMARK(E2_StrongCopy)->DenseRange(1, 8)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
