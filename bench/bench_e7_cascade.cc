// E7 — distributed death cascade (Figure 4 + §6): rounds and messages until
// a dropped object is reclaimed everywhere, over replica-chain length and
// message-loss rate; plus the reference-counting baseline's behaviour under
// the same loss (leaks) — the §6.1 idempotency argument, quantified.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/refcount.h"

namespace bmx {
namespace {

// Builds a cross-node reference chain: the target lives at the last node;
// each node caches it; node 0's root is the only mutator reference.
struct CascadeRig {
  explicit CascadeRig(size_t nodes, uint64_t seed = 1)
      : rig(nodes) {
    rig.cluster.network().set_loss_rate(0);
    (void)seed;
  }
  BenchRig rig;
};

void E7_CascadeRounds(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  uint64_t total_rounds = 0;
  uint64_t total_msgs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(nodes);
    BunchId b1 = rig.cluster.CreateBunch(0);
    BunchId b2 = rig.cluster.CreateBunch(static_cast<NodeId>(nodes - 1));
    Gaddr target = rig.mutators[nodes - 1]->Alloc(b2, 1);
    // Every intermediate node caches the target (ownership chain).
    for (size_t n = 1; n + 1 < nodes; ++n) {
      rig.mutators[n]->AcquireWrite(target);
      rig.mutators[n]->Release(target);
    }
    Gaddr src = rig.mutators[0]->Alloc(b1, 2);
    rig.mutators[0]->AddRoot(src);
    rig.mutators[0]->WriteRef(src, 0, target);
    rig.cluster.Pump();
    rig.mutators[0]->WriteRef(src, 0, kNullAddr);
    rig.cluster.network().ResetStats();
    state.ResumeTiming();

    uint64_t rounds = 0;
    bool done = false;
    while (!done && rounds < 32) {
      rounds++;
      for (size_t n = 0; n < nodes; ++n) {
        rig.cluster.node(n).gc().CollectGroup();
        rig.cluster.Pump();
      }
      done = rig.cluster.node(nodes - 1).gc().stats().objects_reclaimed > 0;
    }

    state.PauseTiming();
    total_rounds += rounds;
    total_msgs += rig.cluster.network().stats().SentInCategory(MsgCategory::kGcBackground);
    state.ResumeTiming();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["rounds_to_reclaim"] = static_cast<double>(total_rounds) / iters;
  state.counters["gc_background_msgs"] = static_cast<double>(total_msgs) / iters;
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(E7_CascadeRounds)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

void E7_CascadeUnderLoss(benchmark::State& state) {
  double loss = static_cast<double>(state.range(0)) / 100.0;
  uint64_t total_rounds = 0;
  uint64_t failures = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2, CopySetMode::kCentralized, seed++);
    rig.cluster.network().set_loss_rate(loss);
    BunchId b1 = rig.cluster.CreateBunch(0);
    BunchId b2 = rig.cluster.CreateBunch(1);
    Gaddr target = rig.mutators[1]->Alloc(b2, 1);
    Gaddr src = rig.mutators[0]->Alloc(b1, 2);
    rig.mutators[0]->AddRoot(src);
    rig.mutators[0]->WriteRef(src, 0, target);
    rig.cluster.Pump();
    rig.mutators[0]->WriteRef(src, 0, kNullAddr);
    state.ResumeTiming();

    uint64_t rounds = 0;
    bool done = false;
    while (!done && rounds < 64) {
      rounds++;
      rig.cluster.node(0).gc().CollectBunch(b1);
      rig.cluster.Pump();
      rig.cluster.node(1).gc().CollectBunch(b2);
      rig.cluster.Pump();
      done = rig.cluster.node(1).gc().stats().objects_reclaimed > 0;
    }
    state.PauseTiming();
    total_rounds += rounds;
    if (!done) {
      failures++;
    }
    state.ResumeTiming();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["rounds_to_reclaim"] = static_cast<double>(total_rounds) / iters;
  state.counters["never_reclaimed"] = static_cast<double>(failures);
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(E7_CascadeUnderLoss)->Arg(0)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void E7_RefCountUnderLoss(benchmark::State& state) {
  // The same drop under the same loss with inc/dec reference counting:
  // a lost decrement is never repaired — the leak count is the story.
  double loss = static_cast<double>(state.range(0)) / 100.0;
  uint64_t leaks = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(2, CopySetMode::kCentralized, seed++);
    rig.cluster.network().set_loss_rate(loss);
    RefCountGc rc(&rig.cluster);
    BunchId b1 = rig.cluster.CreateBunch(0);
    BunchId b2 = rig.cluster.CreateBunch(1);
    Gaddr target = rig.mutators[1]->Alloc(b2, 1);
    Gaddr src = rig.mutators[0]->Alloc(b1, 2);
    rig.mutators[0]->AddRoot(src);
    state.ResumeTiming();

    rc.WriteRef(rig.mutators[0].get(), src, 0, target);
    rig.cluster.Pump();
    rc.WriteRef(rig.mutators[0].get(), src, 0, kNullAddr);
    rig.cluster.Pump();

    state.PauseTiming();
    if (rig.agents[1]->rc().reclaimed == 0) {
      leaks++;  // inc or dec lost: object leaked (or worse)
    }
    state.ResumeTiming();
  }
  state.counters["leaked_runs"] = static_cast<double>(leaks);
  state.counters["runs"] = static_cast<double>(state.iterations());
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(E7_RefCountUnderLoss)->Arg(0)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
