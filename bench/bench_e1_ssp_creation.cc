// E1 — SSP creation cost (Figure 1 + §3.2).
//
// Series: write-barrier cost per reference store for (a) intra-bunch stores
// (barrier fires, no SSP), (b) inter-bunch stores with the target bunch
// mapped locally (stub + scion created locally), (c) inter-bunch stores to an
// unmapped target bunch (stub locally + scion-message).  Counter
// `scion_msgs` confirms messages appear only in case (c).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace bmx {
namespace {

void E1_IntraBunchStore(benchmark::State& state) {
  BenchRig rig(2);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Mutator& m = *rig.mutators[0];
  Gaddr src = m.Alloc(bunch, 2);
  Gaddr dst = m.Alloc(bunch, 1);
  for (auto _ : state) {
    m.WriteRef(src, 0, dst);
  }
  state.counters["scion_msgs"] =
      static_cast<double>(rig.cluster.node(0).gc().stats().scion_messages_sent);
  state.counters["stubs"] =
      static_cast<double>(rig.cluster.node(0).gc().stats().inter_stubs_created);
}
BENCHMARK(E1_IntraBunchStore);

void E1_InterBunchStore_TargetMapped(benchmark::State& state) {
  BenchRig rig(2);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(0);
  Mutator& m = *rig.mutators[0];
  Gaddr src = m.Alloc(b1, 2);
  Gaddr dst = m.Alloc(b2, 1);
  for (auto _ : state) {
    m.WriteRef(src, 0, dst);  // first iteration creates the SSP; rest dedupe
  }
  state.counters["scion_msgs"] =
      static_cast<double>(rig.cluster.node(0).gc().stats().scion_messages_sent);
  state.counters["stubs"] =
      static_cast<double>(rig.cluster.node(0).gc().stats().inter_stubs_created);
}
BENCHMARK(E1_InterBunchStore_TargetMapped);

void E1_InterBunchStore_FreshSsp(benchmark::State& state) {
  // Every store creates a brand-new SSP (distinct target objects).
  BenchRig rig(2);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(0);
  Mutator& m = *rig.mutators[0];
  Gaddr src = m.Alloc(b1, 2);
  std::vector<Gaddr> targets;
  targets.reserve(state.max_iterations);
  for (size_t i = 0; i < state.max_iterations; ++i) {
    targets.push_back(m.Alloc(b2, 1));
  }
  size_t i = 0;
  for (auto _ : state) {
    m.WriteRef(src, 0, targets[i++]);
  }
  state.counters["stubs_per_store"] =
      static_cast<double>(rig.cluster.node(0).gc().stats().inter_stubs_created) /
      static_cast<double>(state.iterations());
}
BENCHMARK(E1_InterBunchStore_FreshSsp);

void E1_InterBunchStore_RemoteTarget(benchmark::State& state) {
  // Target bunch mapped only at node 1: each fresh SSP costs a scion-message.
  BenchRig rig(2);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(1);
  Mutator& m0 = *rig.mutators[0];
  Mutator& m1 = *rig.mutators[1];
  Gaddr src = m0.Alloc(b1, 2);
  std::vector<Gaddr> targets;
  targets.reserve(state.max_iterations);
  for (size_t i = 0; i < state.max_iterations; ++i) {
    targets.push_back(m1.Alloc(b2, 1));
  }
  size_t i = 0;
  for (auto _ : state) {
    m0.WriteRef(src, 0, targets[i++]);
  }
  state.counters["scion_msgs"] =
      static_cast<double>(rig.cluster.node(0).gc().stats().scion_messages_sent);
  state.counters["scion_msgs_per_store"] =
      static_cast<double>(rig.cluster.node(0).gc().stats().scion_messages_sent) /
      static_cast<double>(state.iterations());
  rig.cluster.Pump();
}
BENCHMARK(E1_InterBunchStore_RemoteTarget);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
