// F1 — cost of reliable delivery under fault injection: for a replicated-list
// workload, how much extra wire traffic (retransmissions, suppressed
// duplicates, redelivery copies) each fault mix induces on top of the logical
// traffic.  Reported straight from the NetworkStats counters the transport
// maintains, so the same numbers are available to every experiment.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace bmx {
namespace {

void ReportReliability(benchmark::State& state, const NetworkStats& stats) {
  double iters = static_cast<double>(state.iterations());
  state.counters["retransmits"] = static_cast<double>(stats.TotalRetransmits()) / iters;
  state.counters["dup_suppressed"] = static_cast<double>(stats.TotalDupSuppressed()) / iters;
  state.counters["redelivered"] = static_cast<double>(stats.TotalRedelivered()) / iters;
  // Wire amplification: 1.0 means the wire carried exactly the logical bytes.
  state.counters["wire_amplification"] =
      static_cast<double>(stats.TotalWireBytes()) / static_cast<double>(stats.TotalBytes());
}

void F1_ReliabilityUnderLoss(benchmark::State& state) {
  double loss = static_cast<double>(state.range(0)) / 100.0;
  NetworkStats accumulated;
  uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(3, CopySetMode::kCentralized, seed++);
    rig.cluster.network().set_reliable_loss_rate(loss);
    rig.cluster.network().set_ack_loss_rate(loss);
    BunchId bunch = rig.cluster.CreateBunch(0);
    state.ResumeTiming();

    rig.BuildReplicatedList(bunch, 32, 3);
    rig.cluster.node(0).gc().CollectBunch(bunch);
    rig.cluster.Pump();

    state.PauseTiming();
    const NetworkStats& stats = rig.cluster.network().stats();
    for (size_t k = 0; k < stats.per_kind.size(); ++k) {
      accumulated.per_kind[k].bytes += stats.per_kind[k].bytes;
      accumulated.per_kind[k].wire_bytes += stats.per_kind[k].wire_bytes;
      accumulated.per_kind[k].retransmits += stats.per_kind[k].retransmits;
      accumulated.per_kind[k].dup_suppressed += stats.per_kind[k].dup_suppressed;
      accumulated.per_kind[k].redelivered += stats.per_kind[k].redelivered;
    }
    state.ResumeTiming();
  }
  ReportReliability(state, accumulated);
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(F1_ReliabilityUnderLoss)->Arg(0)->Arg(10)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

void F1_CrashRecoveryRedelivery(benchmark::State& state) {
  size_t payloads = static_cast<size_t>(state.range(0));
  NetworkStats accumulated;
  for (auto _ : state) {
    state.PauseTiming();
    BenchRig rig(3);
    BunchId bunch = rig.cluster.CreateBunch(0);
    Gaddr head = rig.BuildReplicatedList(bunch, payloads, 3);
    rig.cluster.network().ResetStats();
    state.ResumeTiming();

    // Crash a replica holder, mutate every object (invalidations to the dead
    // node get parked), then restart it and drain the replay.  The crashed
    // node's mutator dies with it — it holds a pointer into the node.
    rig.mutators[2].reset();
    rig.cluster.CrashNode(2);
    Gaddr cur = head;
    while (cur != kNullAddr) {
      rig.mutators[0]->AcquireWrite(cur);
      Gaddr next = rig.mutators[0]->ReadRef(cur, 0);
      rig.mutators[0]->Release(cur);
      cur = next;
    }
    rig.cluster.Pump();
    rig.cluster.RestartNode(2);
    rig.cluster.Pump();

    state.PauseTiming();
    const NetworkStats& stats = rig.cluster.network().stats();
    for (size_t k = 0; k < stats.per_kind.size(); ++k) {
      accumulated.per_kind[k].bytes += stats.per_kind[k].bytes;
      accumulated.per_kind[k].wire_bytes += stats.per_kind[k].wire_bytes;
      accumulated.per_kind[k].retransmits += stats.per_kind[k].retransmits;
      accumulated.per_kind[k].dup_suppressed += stats.per_kind[k].dup_suppressed;
      accumulated.per_kind[k].redelivered += stats.per_kind[k].redelivered;
    }
    state.ResumeTiming();
  }
  ReportReliability(state, accumulated);
  state.counters["payloads"] = static_cast<double>(payloads);
}
BENCHMARK(F1_CrashRecoveryRedelivery)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
