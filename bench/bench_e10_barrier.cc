// E10 — write-barrier overhead micro-benchmark (§3.2, §8; the macro-based
// barrier is the prototype's instrumentation cost, cf. Hosking et al. [10]).
//
// Series: raw slot store (no barrier), scalar store through the API, pointer
// store within a bunch (barrier fires, finds nothing), pointer store across
// bunches hitting the dedup check, and pointer comparison via SameObject.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace bmx {
namespace {

void E10_RawSlotStore(benchmark::State& state) {
  BenchRig rig(1);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Gaddr obj = rig.mutators[0]->Alloc(bunch, 2);
  ReplicaStore& store = rig.cluster.node(0).store();
  uint64_t v = 0;
  for (auto _ : state) {
    store.WriteSlot(obj, 1, v++);
  }
}
BENCHMARK(E10_RawSlotStore);

void E10_ScalarStore(benchmark::State& state) {
  BenchRig rig(1);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Mutator& m = *rig.mutators[0];
  Gaddr obj = m.Alloc(bunch, 2);
  uint64_t v = 0;
  for (auto _ : state) {
    m.WriteWord(obj, 1, v++);
  }
}
BENCHMARK(E10_ScalarStore);

void E10_IntraBunchRefStore(benchmark::State& state) {
  BenchRig rig(1);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Mutator& m = *rig.mutators[0];
  Gaddr obj = m.Alloc(bunch, 2);
  Gaddr target = m.Alloc(bunch, 1);
  for (auto _ : state) {
    m.WriteRef(obj, 0, target);
  }
}
BENCHMARK(E10_IntraBunchRefStore);

void E10_InterBunchRefStoreDedup(benchmark::State& state) {
  BenchRig rig(1);
  BunchId b1 = rig.cluster.CreateBunch(0);
  BunchId b2 = rig.cluster.CreateBunch(0);
  Mutator& m = *rig.mutators[0];
  Gaddr obj = m.Alloc(b1, 2);
  Gaddr target = m.Alloc(b2, 1);
  m.WriteRef(obj, 0, target);  // SSP created once
  for (auto _ : state) {
    m.WriteRef(obj, 0, target);  // steady state: barrier + dedup hit
  }
  state.counters["stubs_total"] =
      static_cast<double>(rig.cluster.node(0).gc().stats().inter_stubs_created);
}
BENCHMARK(E10_InterBunchRefStoreDedup);

void E10_PointerComparison(benchmark::State& state) {
  // The pointer-comparison macro of §8: equality through forwarders.
  BenchRig rig(1);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Mutator& m = *rig.mutators[0];
  Gaddr obj = m.Alloc(bunch, 2);
  m.AddRoot(obj);
  rig.cluster.node(0).gc().CollectBunch(bunch);  // obj now has a forwarder
  Gaddr moved = rig.cluster.node(0).dsm().ResolveAddr(obj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.SameObject(obj, moved));
  }
}
BENCHMARK(E10_PointerComparison);

void E10_RawPointerEquality(benchmark::State& state) {
  BenchRig rig(1);
  BunchId bunch = rig.cluster.CreateBunch(0);
  Gaddr obj = rig.mutators[0]->Alloc(bunch, 2);
  Gaddr other = rig.mutators[0]->Alloc(bunch, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj == other);
  }
}
BENCHMARK(E10_RawPointerEquality);

}  // namespace
}  // namespace bmx

BMX_BENCHMARK_MAIN();
