#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a google-benchmark --json report against a committed baseline
snapshot and fails (exit 1) when any benchmark's real_time regressed by more
than the tolerance (default 15%, override with BMX_BENCH_TOLERANCE, e.g.
BMX_BENCH_TOLERANCE=0.25).

Usage:
  scripts/check_bench_regression.py <current.json> <baseline.json>
  scripts/check_bench_regression.py --dir <current_dir> <baseline_dir>

In --dir mode every *.json in <baseline_dir> must have a matching file in
<current_dir>; benchmarks present only in the current report (new benchmarks)
are reported but never fail the gate, so adding a benchmark does not require
regenerating every snapshot in the same commit.

Baselines are regenerated with:
  for b in build-release/bench/bench_*; do
    "$b" --smoke --json "bench_results/baseline/$(basename "$b").json"
  done

Caveat: --smoke timings on shared CI runners are noisy; the tolerance is
deliberately loose and gates only order-of-magnitude regressions (an O(n)
scan turning O(n^2), a lookup table silently bypassed).
"""

import json
import os
import sys


def load_benchmarks(path):
    """Returns {benchmark name: real_time in ns} from a --json report."""
    with open(path) as f:
        report = json.load(f)
    out = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # compare raw runs only; aggregates double-count
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            print(f"warning: {path}: unknown time unit '{unit}' for "
                  f"{bench.get('name')}; skipping")
            continue
        out[bench["name"]] = bench["real_time"] * scale
    return out


def compare(current_path, baseline_path, tolerance):
    current = load_benchmarks(current_path)
    baseline = load_benchmarks(baseline_path)
    failures = []
    for name, base_ns in sorted(baseline.items()):
        cur_ns = current.get(name)
        if cur_ns is None:
            failures.append(f"{name}: present in baseline but missing from "
                            f"current report ({current_path})")
            continue
        if base_ns <= 0:
            continue
        ratio = cur_ns / base_ns
        verdict = "FAIL" if ratio > 1.0 + tolerance else "ok"
        print(f"  {verdict:4} {name}: {base_ns:.0f}ns -> {cur_ns:.0f}ns "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
        if ratio > 1.0 + tolerance:
            failures.append(f"{name}: real_time regressed "
                            f"{(ratio - 1.0) * 100.0:+.1f}% "
                            f"(limit +{tolerance * 100.0:.0f}%)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  new  {name}: no baseline (not gated)")
    return failures


def main(argv):
    tolerance = float(os.environ.get("BMX_BENCH_TOLERANCE", "0.15"))
    if len(argv) == 4 and argv[1] == "--dir":
        current_dir, baseline_dir = argv[2], argv[3]
        failures = []
        names = sorted(n for n in os.listdir(baseline_dir) if n.endswith(".json"))
        if not names:
            print(f"error: no baseline snapshots in {baseline_dir}")
            return 1
        for name in names:
            current_path = os.path.join(current_dir, name)
            if not os.path.exists(current_path):
                failures.append(f"{name}: baseline exists but no current report")
                continue
            print(f"== {name} (tolerance +{tolerance * 100.0:.0f}%) ==")
            failures.extend(compare(current_path, os.path.join(baseline_dir, name),
                                    tolerance))
    elif len(argv) == 3:
        print(f"== {os.path.basename(argv[1])} vs {argv[2]} "
              f"(tolerance +{tolerance * 100.0:.0f}%) ==")
        failures = compare(argv[1], argv[2], tolerance)
    else:
        print(__doc__)
        return 2
    if failures:
        print("\nbench regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
