// Per-node garbage collection engine: the paper's three sub-algorithms plus
// the write barrier and the from-space reclamation protocol.
//
//   * BGC (§4): copying collection of one local bunch replica, independent of
//     other bunches and of other replicas of the same bunch.  Copies only
//     locally-owned live objects (non-destructively, O'Toole-style: the old
//     copy keeps a forwarding header); merely scans non-owned live objects,
//     even if their data is inconsistent — scanning an old version is merely
//     conservative.  Rebuilds the stub table and the exiting-ownerPtr list,
//     then ships them to scion cleaners in the background.  Never acquires a
//     token, never blocks an application.
//   * Scion cleaner (§6): consumes reachability tables from other nodes and
//     deletes inter/intra-bunch scions and entering ownerPtrs that no
//     surviving stub or exiting ownerPtr justifies.
//   * GGC (§7): collects a *group* of locally mapped bunches at once; scions
//     whose stub originates inside the local group are not roots, so
//     intra-site inter-bunch garbage cycles collapse.
//   * From-space reclamation (§4.5): the only GC path that uses explicit
//     messages — address-change notices plus copy requests to owners of live
//     objects still parked in the segment being freed.
//
// The engine implements DsmGcHooks so the DSM layer can maintain invariant 3
// (intra-bunch SSP creation on ownership transfer) and keep SSP target
// addresses fresh as address updates arrive.

#ifndef SRC_GC_GC_ENGINE_H_
#define SRC_GC_GC_ENGINE_H_

#include <map>
#include <set>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/dsm_node.h"
#include "src/dsm/gc_hooks.h"
#include "src/gc/gc_stats.h"
#include "src/gc/payloads.h"
#include "src/gc/ssp.h"
#include "src/mem/directory.h"
#include "src/mem/replica_store.h"
#include "src/net/network.h"

namespace bmx {

// Supplies (and lets the collector update) the local mutator roots — "the
// local root includes mutator stacks" (Figure 1).
class RootProvider {
 public:
  virtual ~RootProvider() = default;
  virtual std::vector<Gaddr*> RootSlots() = 0;
};

// When the scion cleaner processes incoming reachability tables.
enum class CleanerMode {
  kImmediate,  // on receipt
  kDeferred,   // accumulated; processed at the start of the next local BGC (§6.1)
};

// What invariant 3 ships with an ownership transfer (§3.2).  The paper
// chooses intra-bunch SSPs "in order to reduce the number of scion messages
// and the amount of memory consumed for GC purposes"; the alternative is
// implemented so the ablation benchmark can quantify that argument.
enum class TransferPolicy {
  kIntraSsp,            // the paper's design: one intra-bunch SSP link
  kReplicateInterSsp,   // copy every inter-bunch stub to the new owner
};

class GcEngine : public DsmGcHooks, public MessageHandler {
 public:
  GcEngine(NodeId id, Network* network, SegmentDirectory* directory, ReplicaStore* store,
           DsmNode* dsm);

  NodeId id() const { return id_; }
  void set_cleaner_mode(CleanerMode mode) { cleaner_mode_ = mode; }
  void set_transfer_policy(TransferPolicy policy) { transfer_policy_ = policy; }

  // --- Bunch replica lifecycle ---
  void RegisterBunchReplica(BunchId bunch);
  bool HasReplica(BunchId bunch) const { return bunches_.count(bunch) > 0; }

  void AddRootProvider(RootProvider* provider);
  void RemoveRootProvider(RootProvider* provider);

  // --- Allocation ---
  // Allocates an object with `size_slots` data slots in `bunch`; the creating
  // node owns it (write token).  Grows the bunch by a fresh segment on
  // overflow (bunches exist precisely because one segment is not flexible
  // enough for that, §2.1).
  Gaddr Allocate(BunchId bunch, uint32_t size_slots);

  // --- Mutator heap access (write barrier, §3.2) ---
  // Stores `target` into reference slot `slot` of the object at `obj_addr`.
  // Detects inter-bunch reference creation and builds the SSP: locally if the
  // target's bytes are present, else via a scion-message.
  void WriteRef(Gaddr obj_addr, size_t slot, Gaddr target);
  // Stores a scalar; clears the slot's reference bit.
  void WriteWord(Gaddr obj_addr, size_t slot, uint64_t value);
  uint64_t ReadSlot(Gaddr obj_addr, size_t slot) const;
  bool SlotIsRef(Gaddr obj_addr, size_t slot) const;

  // Pointer comparison that accounts for forwarding pointers (§4.2, §8: "a
  // special operation is provided to perform pointer comparison").
  bool SameObject(Gaddr a, Gaddr b) const;
  // The most current local address for `addr` (follows in-heap forwarders and
  // stale-forward records for freed from-space segments).
  Gaddr Canonical(Gaddr addr) const { return dsm_->ResolveAddr(addr); }

  // --- Collections ---
  // Bunch garbage collection of the local replica of `bunch`.
  void CollectBunch(BunchId bunch);
  // Group collection over every bunch currently mapped at this node
  // (locality-based grouping heuristic, §7), or an explicit group.
  void CollectGroup();
  void CollectGroup(const std::vector<BunchId>& group);

  // --- From-space reclamation (§4.5) ---
  // Frees every from-space segment this node's BGCs have retired for `bunch`.
  // Sends address-change notices and copy requests; the network must be
  // pumped until idle for the acks to arrive, after which the segments are
  // dropped (and retired globally if we created them).
  void ReclaimFromSpaces(BunchId bunch);
  // True when no reclaim round is still waiting for acks.
  bool ReclaimQuiescent() const { return pending_reclaims_.empty(); }

  // --- Scion cleaner (§6) ---
  void ProcessDeferredTables();

  // --- Crash recovery (RecoveryManager and its peers) ---
  // Peer side: `peer` restarted and is reconciling.  Its table-version
  // counters restart at 1, so the staleness filter for it is reset; until
  // ClearRecoveringPeer, tables claiming to come from it are applied
  // additively only (no scion/entering deletions — conservative retention
  // while the owner bunch is mid-recovery).
  void NoteRecoveringPeer(NodeId peer);
  void ClearRecoveringPeer(NodeId peer);
  bool IsRecoveringPeer(NodeId peer) const { return recovering_peers_.count(peer) > 0; }
  // Recovering side: rebuilds the inter-bunch SSPs of `bunch` from the
  // recovered heap (fresh stub ids; scions recreated locally or by
  // scion-message).  The previous life's scions at peers become conservative
  // slack until the first post-recovery reachability table retires them.
  void RebuildSspsFromHeap(BunchId bunch);
  // Recovering side: re-adopt SSP endpoints that peers report still holding
  // the matching half (all idempotent).
  void RestoreInterScion(NodeId src_node, uint64_t stub_id, BunchId src_bunch, Gaddr target_addr,
                         BunchId target_bunch);
  void RestoreIntraScion(Oid oid, BunchId bunch, NodeId stub_node);
  void RestoreIntraStub(Oid oid, BunchId bunch, NodeId scion_node);
  // Bunches this node holds a replica of (sorted; recovery query content).
  std::vector<BunchId> ReplicaBunches() const;

  // --- DsmGcHooks ---
  void PrepareOwnershipTransfer(Oid oid, BunchId bunch, NodeId new_owner,
                                Piggyback* piggyback) override;
  void CreateIntraStub(const IntraSspRequest& request) override;
  void InstallReplicatedStub(const InterStubTemplate& stub_template) override;
  void OnAddressUpdate(const AddressUpdate& update) override;

  // --- MessageHandler (GC message kinds only; runtime::Node routes) ---
  void HandleMessage(const Message& msg) override;

  // --- Introspection for tests / benches ---
  struct BunchTables {
    std::vector<InterStub> inter_stubs;
    std::vector<IntraStub> intra_stubs;
    std::vector<InterScion> inter_scions;
    std::vector<IntraScion> intra_scions;
  };
  BunchTables TablesOf(BunchId bunch) const;

  // Heap accounting for one bunch replica: live objects/bytes, forwarding
  // headers awaiting from-space reclamation, and dead (reclaimable) bytes.
  struct HeapReport {
    size_t segments = 0;
    size_t allocated_bytes = 0;
    size_t live_objects = 0;
    size_t live_bytes = 0;
    size_t forwarders = 0;
    size_t forwarder_bytes = 0;
    double Utilization() const {
      return allocated_bytes == 0 ? 1.0
                                  : static_cast<double>(live_bytes) /
                                        static_cast<double>(allocated_bytes);
    }
  };
  HeapReport ReportOf(BunchId bunch);

  std::vector<SegmentId> FromSpacesOf(BunchId bunch) const;
  SegmentId AllocSegmentOf(BunchId bunch) const;
  // Live bytes (headers + data of live objects) in the local replica.
  size_t LiveBytesOf(BunchId bunch);
  // Canonical addresses of all live local objects of `bunch` (strong + weak).
  // Shared with the baseline collectors so every collector agrees on
  // liveness and only the consistency strategy differs.
  std::vector<Gaddr> LiveObjects(BunchId bunch);

  const GcStats& stats() const { return stats_; }
  void ResetStats() { stats_ = GcStats{}; }

 private:
  struct BunchState {
    BunchId id = kInvalidBunch;
    std::vector<InterStub> inter_stubs;
    std::vector<IntraStub> intra_stubs;
    std::vector<InterScion> inter_scions;
    std::vector<IntraScion> intra_scions;
    SegmentId alloc_segment = kInvalidSegment;
    std::vector<SegmentId> from_spaces;  // retired by BGC, awaiting reclamation
    uint64_t table_version = 0;
    // Every node that ever held a scion matching one of our stubs or was the
    // target of one of our exiting ownerPtrs.  Tables go to destinations of
    // both the old and the reconstructed stub tables (§4.1), so this set only
    // grows; stale destinations just receive idempotent no-op tables.
    std::set<NodeId> table_destinations;
    // Exiting ownerPtrs rebuilt by the last collection: live, strongly
    // reachable, non-owned local replicas and their probable owners (§4.3).
    std::vector<std::pair<Oid, NodeId>> exiting;
    // Address-based exiting entries for dangling references (no local bytes,
    // so the oid is unknown here; the owner translates).
    std::vector<Gaddr> exiting_addrs;
  };

  struct TraceResult {
    // Canonical (forward-resolved) addresses of live local objects.
    std::set<Gaddr> strong;
    std::set<Gaddr> weak_only;  // reachable only via intra-bunch scions (§6.2)
    // Strongly reachable references to addresses with no local bytes.  The
    // paper's page-based DSM always has (possibly stale) bytes for a mapped
    // bunch; in this byte-lazy model such edges must still keep their remote
    // targets alive, so they are reported address-based in the reachability
    // tables.
    std::set<Gaddr> dangling;
    bool Live(Gaddr addr) const { return strong.count(addr) > 0 || weak_only.count(addr) > 0; }
  };

  struct PendingReclaim {
    BunchId bunch = kInvalidBunch;
    std::vector<SegmentId> segments;
    size_t outstanding = 0;  // acks + copy replies still due
  };

  BunchState& StateOf(BunchId bunch);
  const BunchState* FindState(BunchId bunch) const;

  // Shared collection core: BGC is a group of one; the GGC excludes scions
  // originating inside the local group from the root set.
  void Collect(const std::vector<BunchId>& group, bool exclude_intra_group_scions);
  TraceResult Trace(const std::vector<BunchId>& group, bool exclude_intra_group_scions);
  // Marks reachable local objects; `dangling` (nullable) collects in-group
  // references whose bytes are absent locally.
  void MarkFrom(Gaddr root, const std::set<BunchId>& group, std::set<Gaddr>* marked,
                std::set<Gaddr>* dangling);
  // Marks every root in `roots` into `marked`/`dangling`.  Multi-threaded
  // pools shard the root list into one contiguous chunk per thread, each
  // marking into private sets that are unioned in chunk order — the union
  // equals the serial result because marking is monotone.
  void MarkRoots(const std::vector<Gaddr>& roots, const std::set<BunchId>& group,
                 std::set<Gaddr>* marked, std::set<Gaddr>* dangling);
  void CopyOwnedLive(BunchId bunch, TraceResult* live, std::vector<AddressUpdate>* moves);
  void UpdateLocalReferences(const std::vector<BunchId>& group, const TraceResult& live);
  void SweepDead(BunchId bunch, const TraceResult& live);
  void RebuildTables(BunchId bunch, const TraceResult& live);
  void SendReachabilityTables(BunchId bunch);

  void CreateInterSsp(Gaddr src_obj, size_t slot, Gaddr target);
  // Creates an inter-bunch stub (fresh id) for the given descriptor and the
  // matching scion (locally or via scion-message).  Shared by the write
  // barrier and the replicate-on-transfer ablation policy.
  void InstallInterStub(Oid src_oid, uint32_t slot, BunchId src_bunch, Gaddr target_addr,
                        BunchId target_bunch);
  // Space in the bunch's current allocation segment for an object being
  // relocated out of a from-space (grows the bunch on overflow).  Never
  // allocates inside a segment in `avoid` (segments being freed).
  Gaddr AllocateForCopy(BunchId bunch, Oid oid, uint32_t size_slots,
                        const std::set<SegmentId>& avoid);
  void HandleScionMessage(const Message& msg);
  void HandleReachabilityTable(const Message& msg);
  void ApplyReachabilityTable(const ReachabilityTablePayload& table);
  void HandleCopyRequest(const Message& msg);
  void HandleCopyReply(const Message& msg);
  void HandleAddressChange(const Message& msg);
  void HandleAddressChangeAck(const Message& msg);
  void FinishReclaimIfDone(uint64_t round);

  NodeId id_;
  Network* network_;
  SegmentDirectory* directory_;
  ReplicaStore* store_;
  DsmNode* dsm_;
  CleanerMode cleaner_mode_ = CleanerMode::kImmediate;
  TransferPolicy transfer_policy_ = TransferPolicy::kIntraSsp;

  std::map<BunchId, BunchState> bunches_;
  std::vector<RootProvider*> root_providers_;
  uint64_t next_stub_id_ = 1;

  // FIFO/staleness filter for incoming reachability tables, per (src, bunch).
  std::map<std::pair<NodeId, BunchId>, uint64_t> table_version_seen_;
  std::vector<ReachabilityTablePayload> deferred_tables_;
  // Peers mid-recovery: their tables are applied additively (no deletions)
  // until the peer's RecoveryManager signals completion.
  std::set<NodeId> recovering_peers_;

  uint64_t next_reclaim_round_ = 1;
  std::map<uint64_t, PendingReclaim> pending_reclaims_;

  GcStats stats_;
};

}  // namespace bmx

#endif  // SRC_GC_GC_ENGINE_H_
