// Scion cleaner (paper §6): consumes the reachability tables produced by
// remote BGCs and deletes local scions and entering ownerPtrs that no
// surviving stub or exiting ownerPtr justifies.  Tables are idempotent full
// state; a per-(source, bunch) version number rejects stale or duplicated
// tables (the FIFO requirement of §6.1 — a stale stub table matched against
// newer scions could delete a scion erroneously).

#include <set>

#include "src/common/check.h"
#include "src/common/fault_injector.h"
#include "src/gc/gc_engine.h"

namespace bmx {

void GcEngine::HandleReachabilityTable(const Message& msg) {
  const auto& table = static_cast<const ReachabilityTablePayload&>(*msg.payload);
  if (cleaner_mode_ == CleanerMode::kDeferred) {
    // §6.1: "messages can be accumulated and their processing can be
    // postponed until the start of the next local BGC."
    deferred_tables_.push_back(table);
    stats_.tables_deferred++;
    return;
  }
  ApplyReachabilityTable(table);
}

void GcEngine::ProcessDeferredTables() {
  std::vector<ReachabilityTablePayload> tables = std::move(deferred_tables_);
  deferred_tables_.clear();
  for (const ReachabilityTablePayload& table : tables) {
    ApplyReachabilityTable(table);
  }
}

void GcEngine::ApplyReachabilityTable(const ReachabilityTablePayload& table) {
  FAULT_POINT("cleaner.table.pre_apply", id_);
  auto key = std::make_pair(table.src_node, table.bunch);
  auto seen = table_version_seen_.find(key);
  if (seen != table_version_seen_.end() && table.version <= seen->second) {
    stats_.tables_ignored_stale++;
    return;
  }
  bool src_recovering = recovering_peers_.count(table.src_node) > 0;
  if (!src_recovering) {
    table_version_seen_[key] = table.version;
  }
  stats_.tables_processed++;

  std::set<uint64_t> stub_ids(table.inter_stub_ids.begin(), table.inter_stub_ids.end());
  std::set<Oid> intra_oids(table.intra_stub_oids.begin(), table.intra_stub_oids.end());
  std::set<Oid> exiting(table.exiting_oids.begin(), table.exiting_oids.end());
  // Address-based exiting entries (dangling references at the sender) are
  // translated to oids through the directory's address book first — local
  // resolution can be behind, and a failed translation would wrongly count
  // as an omission and prune a live object's entering entry.
  for (Gaddr addr : table.exiting_addrs) {
    Oid oid = directory_->OidAtAddress(addr);
    if (oid == kNullOid) {
      Gaddr resolved = dsm_->ResolveAddr(addr);
      oid = directory_->OidAtAddress(resolved);
      if (oid == kNullOid && store_->HasObjectAt(resolved)) {
        oid = store_->HeaderOf(resolved)->oid;
      }
    }
    if (oid != kNullOid) {
      exiting.insert(oid);
    }
  }

  // Conservative retention while the sender's bunch is mid-recovery: its new
  // life may still be rebuilding stubs from the recovered heap, so a table
  // from it must not delete anything yet.  Additions (entering registration)
  // are still safe — and necessary, or the owner could miss fresh interest.
  if (src_recovering) {
    for (Oid oid : exiting) {
      if (dsm_->IsLocallyOwned(oid)) {
        dsm_->AddEntering(table.bunch, oid, table.src_node);
      }
    }
    return;
  }

  // Inter-bunch scions matching stubs of (src_node, bunch) may live in any
  // local bunch (the scion sits with the *target* bunch).
  for (auto& [bunch, state] : bunches_) {
    std::vector<InterScion> kept;
    kept.reserve(state.inter_scions.size());
    for (const InterScion& scion : state.inter_scions) {
      if (scion.src_node == table.src_node && scion.src_bunch == table.bunch &&
          stub_ids.count(scion.stub_id) == 0) {
        stats_.inter_scions_deleted++;
        continue;
      }
      kept.push_back(scion);
    }
    state.inter_scions = std::move(kept);
  }

  // Intra-bunch scions live in the same bunch as their stub.
  auto it = bunches_.find(table.bunch);
  if (it != bunches_.end()) {
    std::vector<IntraScion> kept;
    kept.reserve(it->second.intra_scions.size());
    for (const IntraScion& scion : it->second.intra_scions) {
      if (scion.stub_node == table.src_node && intra_oids.count(scion.oid) == 0) {
        stats_.intra_scions_deleted++;
        continue;
      }
      kept.push_back(scion);
    }
    it->second.intra_scions = std::move(kept);
  }

  // Entering ownerPtrs from the table's sender are synchronized with the
  // sender's full exiting list: entries it no longer reports are pruned, and
  // entries for objects we own are (re)registered — a replica can reference
  // an object it never token-acquired, so the table is how the owner learns
  // of that interest.
  for (Oid oid : exiting) {
    if (dsm_->IsLocallyOwned(oid)) {
      dsm_->AddEntering(table.bunch, oid, table.src_node);
    }
  }
  std::vector<Oid> to_prune;
  for (const auto& [oid, sources] : dsm_->EnteringFor(table.bunch)) {
    if (sources.count(table.src_node) > 0 && exiting.count(oid) == 0) {
      to_prune.push_back(oid);
    }
  }
  for (Oid oid : to_prune) {
    dsm_->PruneEntering(table.bunch, oid, table.src_node);
    stats_.entering_pruned++;
  }
}

}  // namespace bmx
