// Counters the tests and benchmark harness read.  Several of the paper's
// claims are statements about these staying zero (the BGC acquires no tokens,
// sends no messages of its own during collection).

#ifndef SRC_GC_GC_STATS_H_
#define SRC_GC_GC_STATS_H_

#include <cstdint>

namespace bmx {

struct GcStats {
  // Collections.
  uint64_t bgc_runs = 0;
  uint64_t ggc_runs = 0;
  uint64_t objects_copied = 0;
  uint64_t objects_scanned = 0;   // live non-owned objects scanned in place
  uint64_t objects_reclaimed = 0;
  uint64_t bytes_copied = 0;
  uint64_t bytes_reclaimed = 0;
  uint64_t refs_updated_locally = 0;

  // Write barrier (§3.2).
  uint64_t barrier_writes = 0;
  uint64_t barrier_inter_bunch = 0;

  // SSP lifecycle.
  uint64_t inter_stubs_created = 0;
  uint64_t intra_stubs_created = 0;
  uint64_t inter_scions_created = 0;
  uint64_t intra_scions_created = 0;
  uint64_t inter_scions_deleted = 0;
  uint64_t intra_scions_deleted = 0;
  uint64_t entering_pruned = 0;
  uint64_t scion_messages_sent = 0;

  // Scion cleaner (§6).
  uint64_t table_messages_sent = 0;
  uint64_t tables_processed = 0;
  uint64_t tables_ignored_stale = 0;
  uint64_t tables_deferred = 0;

  // From-space reclamation (§4.5).
  uint64_t reclaim_rounds = 0;
  uint64_t copy_requests_sent = 0;
  uint64_t address_change_messages = 0;
  uint64_t segments_freed = 0;
};

}  // namespace bmx

#endif  // SRC_GC_GC_STATS_H_
