// From-space reclamation (paper §4.5).
//
// After a BGC, a from-space segment may still hold (a) forwarding headers for
// objects we copied and (b) live objects we do not own.  Before the segment
// can be reused or freed we must (a) tell every node that might still use the
// old addresses about the changes — the owner already knows who: the nodes
// its entering ownerPtrs originate from — and (b) ask the owners of the live
// non-owned objects to copy them out.  These are the only explicit messages
// the whole collector ever sends; they flow in the background and
// applications never wait on them.

// Parallelism: only the per-segment *discovery* scans (object lists,
// forwarder/leftover partitions, reference fixups confined to one segment)
// shard over the task pool; everything that mutates shared state — header
// demotions, relocations, message sends — runs serially in segment order, so
// the wire traffic is bit-identical to the serial implementation.

#include <set>
#include <utility>

#include "src/common/check.h"
#include "src/common/fault_injector.h"
#include "src/common/task_pool.h"
#include "src/gc/gc_engine.h"

namespace bmx {

Gaddr GcEngine::AllocateForCopy(BunchId bunch, Oid oid, uint32_t size_slots,
                                const std::set<SegmentId>& avoid) {
  BunchState& state = StateOf(bunch);
  if (state.alloc_segment != kInvalidSegment && avoid.count(state.alloc_segment) == 0) {
    SegmentImage* image = store_->Find(state.alloc_segment);
    if (image != nullptr) {
      Gaddr addr = image->Allocate(oid, size_slots);
      if (addr != kNullAddr) {
        return addr;
      }
    }
  }
  state.alloc_segment = directory_->AllocateSegment(bunch, id_);
  SegmentImage& image = store_->GetOrCreate(state.alloc_segment, bunch);
  Gaddr addr = image.Allocate(oid, size_slots);
  BMX_CHECK_NE(addr, kNullAddr);
  return addr;
}

void GcEngine::ReclaimFromSpaces(BunchId bunch) {
  BunchState& state = StateOf(bunch);
  if (state.from_spaces.empty()) {
    return;
  }
  uint64_t round = next_reclaim_round_++;
  PendingReclaim pending;
  pending.bunch = bunch;
  pending.segments = state.from_spaces;
  stats_.reclaim_rounds++;
  // Crash here and the round dies with the node; the from-spaces simply wait
  // for the next life's reclamation pass.
  FAULT_POINT("reclaim.round.pre_notices", id_);

  std::map<NodeId, std::vector<AddressUpdate>> notices;
  auto notify_interested = [&](const AddressUpdate& update) {
    // §4.5: "the list of nodes where an object's reference must be updated is
    // already kept in the object's owner node ... nodes from where the set of
    // entering ownerPtrs originate."
    const auto& entering = dsm_->EnteringFor(bunch);
    auto it = entering.find(update.oid);
    if (it != entering.end()) {
      for (NodeId node : it->second) {
        if (node != id_) {
          notices[node].push_back(update);
        }
      }
    }
    if (!dsm_->IsLocallyOwned(update.oid)) {
      NodeId owner = dsm_->OwnerHint(update.oid);
      if (owner != kInvalidNode && owner != id_) {
        notices[owner].push_back(update);
      }
    }
  };

  // Object discovery shards per segment (pure header walks); classification
  // below stays serial — it demotes headers, relocates objects and sends
  // copy requests, and the request emission order is part of the wire
  // contract.  Classification of one segment never disturbs another's object
  // list: relocations allocate outside every from-space (`avoid`) and erase
  // only within their own segment.
  std::vector<std::vector<Gaddr>> object_lists =
      TaskPool::Global().ParallelMap<std::vector<Gaddr>>(pending.segments.size(), [&](size_t i) {
        std::vector<Gaddr> objects;
        SegmentImage* image = store_->Find(pending.segments[i]);
        if (image != nullptr) {
          image->ForEachObject([&](Gaddr addr, ObjectHeader&) { objects.push_back(addr); });
        }
        return objects;
      });

  for (size_t seg_idx = 0; seg_idx < pending.segments.size(); ++seg_idx) {
    SegmentImage* image = store_->Find(pending.segments[seg_idx]);
    if (image == nullptr) {
      continue;
    }
    for (Gaddr addr : object_lists[seg_idx]) {
      ObjectHeader* header = image->HeaderOf(addr);
      Oid oid = header->oid;
      if (header->forwarded()) {
        notify_interested(AddressUpdate{oid, bunch, addr, dsm_->ResolveAddr(addr)});
        continue;
      }
      // Orphaned stale copy (the canonical local copy lives elsewhere after
      // out-of-order updates): demote it to a plain forwarder.
      Gaddr known = store_->AddrOfOid(oid);
      Gaddr canonical = known == kNullAddr ? kNullAddr : dsm_->ResolveAddr(known);
      if (canonical != kNullAddr && canonical != addr && store_->HasObjectAt(canonical)) {
        header->flags |= kObjFlagForwarded;
        header->forward = canonical;
        continue;
      }
      if (dsm_->IsLocallyOwned(oid)) {
        // We own it but it still sits in from-space (e.g. ownership arrived
        // after the BGC and the grant installed it at the old address):
        // relocate it ourselves.
        std::set<SegmentId> avoid(pending.segments.begin(), pending.segments.end());
        Gaddr new_addr = AllocateForCopy(bunch, oid, header->size_slots, avoid);
        store_->CopyObjectBytes(addr, new_addr);
        header->flags |= kObjFlagForwarded;
        header->forward = new_addr;
        dsm_->RecordLocalMove(oid, addr, new_addr, bunch);
        OnAddressUpdate(AddressUpdate{oid, bunch, addr, new_addr});
        stats_.objects_copied++;
        notify_interested(AddressUpdate{oid, bunch, addr, new_addr});
        continue;
      }
      // Live object owned elsewhere: ask its owner to copy it (§4.5).  A
      // replica without local token bookkeeping is routed through the
      // directory's registry; if nobody owns the object it is globally dead
      // and the bytes can go.
      NodeId owner = dsm_->OwnerHint(oid);
      if (owner == kInvalidNode || owner == id_) {
        owner = directory_->OwnerOf(oid);
      }
      if (owner == kInvalidNode || owner == id_) {
        image->EraseObject(addr);
        continue;
      }
      auto request = std::make_shared<CopyRequestPayload>();
      request->round = round;
      request->requester = id_;
      request->oid = oid;
      request->addr = addr;
      request->freeing = pending.segments;
      network_->Send(id_, owner, std::move(request));
      stats_.copy_requests_sent++;
      pending.outstanding++;
    }
  }

  for (auto& [node, updates] : notices) {
    auto change = std::make_shared<AddressChangePayload>();
    change->round = round;
    change->updates = std::move(updates);
    network_->Send(id_, node, std::move(change));
    stats_.address_change_messages++;
    pending.outstanding++;
  }

  pending_reclaims_[round] = std::move(pending);
  network_->obligations().Open(ObligationKind::kGcReclaim, id_, round);
  FinishReclaimIfDone(round);
}

void GcEngine::HandleCopyRequest(const Message& msg) {
  const auto& request = static_cast<const CopyRequestPayload&>(*msg.payload);
  if (!dsm_->IsLocallyOwned(request.oid)) {
    // Ownership moved on; forward along the ownerPtr chain like any request.
    // If this node already dropped its token bookkeeping (replica swept),
    // fall back to address-based routing through the tombstones.
    NodeId owner = dsm_->OwnerHint(request.oid);
    if (owner == kInvalidNode || owner == id_ || request.hops >= 8) {
      // Bounded-hop rescue through the BMX-server's owner registry.
      NodeId authoritative = directory_->OwnerOf(request.oid);
      if (authoritative != kInvalidNode && authoritative != id_) {
        owner = authoritative;
      } else if (owner == kInvalidNode || owner == id_) {
        owner = dsm_->RouteForAddr(request.addr);
      }
    }
    if (owner == kInvalidNode || owner == id_) {
      // No route to an owner: the object's ownership record died with a
      // crashed node (or this is a replayed request for an object we have
      // since dropped).  The requester's round completes via its outstanding
      // counter only when a reply arrives, so drop the request and let the
      // reclaim round's deferral path handle the segment.
      return;
    }
    auto forwarded = std::make_shared<CopyRequestPayload>(request);
    forwarded->hops = request.hops + 1;
    BMX_CHECK_LT(forwarded->hops, 64u) << "copy request routing loop for oid " << request.oid;
    network_->Send(id_, owner, std::move(forwarded));
    return;
  }
  BunchId bunch = dsm_->BunchOf(request.oid);
  Gaddr current = dsm_->ResolveAddr(store_->AddrOfOid(request.oid));
  std::set<SegmentId> avoid(request.freeing.begin(), request.freeing.end());
  avoid.insert(SegmentOf(request.addr));
  if (avoid.count(SegmentOf(current)) > 0) {
    // Our copy also still lives in a segment being freed: move it now.
    ObjectHeader* header = store_->HeaderOf(current);
    Gaddr new_addr = AllocateForCopy(bunch, request.oid, header->size_slots, avoid);
    store_->CopyObjectBytes(current, new_addr);
    header->flags |= kObjFlagForwarded;
    header->forward = new_addr;
    dsm_->RecordLocalMove(request.oid, current, new_addr, bunch);
    OnAddressUpdate(AddressUpdate{request.oid, bunch, current, new_addr});
    stats_.objects_copied++;
    current = new_addr;
  }

  // Crash here and the requester's round never completes on its own; its
  // acquire-side timeout machinery does not apply, but the parked request is
  // redelivered to this node's next incarnation, which answers it then.
  FAULT_POINT("reclaim.copy.pre_reply", id_);
  auto reply = std::make_shared<CopyReplyPayload>();
  reply->round = request.round;
  reply->oid = request.oid;
  reply->bunch = bunch;
  reply->new_addr = current;
  const ObjectHeader* header = store_->HeaderOf(current);
  reply->header = *header;
  reply->slots.resize(header->size_slots);
  reply->slot_is_ref.resize(header->size_slots);
  for (size_t i = 0; i < header->size_slots; ++i) {
    reply->slots[i] = store_->ReadSlot(current, i);
    reply->slot_is_ref[i] = store_->SlotIsRef(current, i) ? 1 : 0;
  }
  network_->Send(id_, request.requester, std::move(reply));
}

void GcEngine::HandleCopyReply(const Message& msg) {
  const auto& reply = static_cast<const CopyReplyPayload&>(*msg.payload);
  // Installs the owner's bytes at the new address and leaves a forwarding
  // header at our old replica of the object.
  dsm_->InstallObjectBytes(reply.oid, reply.bunch, reply.new_addr, reply.header, reply.slots,
                           reply.slot_is_ref);
  OnAddressUpdate(AddressUpdate{reply.oid, reply.bunch, kNullAddr, reply.new_addr});
  auto it = pending_reclaims_.find(reply.round);
  if (it == pending_reclaims_.end() || it->second.outstanding == 0) {
    // Replayed or stale reply (e.g. redelivered after this node restarted and
    // forgot the round): the bytes above were still worth installing — the
    // payload is idempotent full state — but there is no round to credit.
    return;
  }
  it->second.outstanding--;
  FinishReclaimIfDone(reply.round);
}

void GcEngine::HandleAddressChange(const Message& msg) {
  const auto& change = static_cast<const AddressChangePayload&>(*msg.payload);
  dsm_->ApplyAddressUpdates(change.updates, msg.src);
  auto ack = std::make_shared<AddressChangeAckPayload>();
  ack->round = change.round;
  network_->Send(id_, msg.src, std::move(ack));
}

void GcEngine::HandleAddressChangeAck(const Message& msg) {
  const auto& ack = static_cast<const AddressChangeAckPayload&>(*msg.payload);
  auto it = pending_reclaims_.find(ack.round);
  if (it == pending_reclaims_.end() || it->second.outstanding == 0) {
    return;  // stray ack for a round this incarnation already finished/forgot
  }
  it->second.outstanding--;
  FinishReclaimIfDone(ack.round);
}

void GcEngine::FinishReclaimIfDone(uint64_t round) {
  auto it = pending_reclaims_.find(round);
  if (it == pending_reclaims_.end() || it->second.outstanding > 0) {
    return;
  }
  PendingReclaim pending = std::move(it->second);
  pending_reclaims_.erase(it);
  network_->obligations().Close(ObligationKind::kGcReclaim, id_, round);

  std::set<SegmentId> all(pending.segments.begin(), pending.segments.end());
  std::set<SegmentId> deferred;

  // Classify what is left in each segment at the end of the round.  Objects
  // can have *landed* here while the acks were in flight (piggybacked
  // installs race with the round): owned leftovers relocate now; live
  // non-owned leftovers make the paper's call — "the from-space segment
  // might not be fully reused nor freed" (§4.5) — and defer the segment to
  // the next reclamation round.
  // Partition each segment's remains — forwarders to memorialize vs. leftover
  // objects to classify — in parallel (header reads only), then apply in
  // segment order.  Applying segment i (stale-forward registration, owned
  // relocation into a non-from-space segment, erasure of own objects) cannot
  // change what the scan of segment j reports, so the pre-computed partitions
  // match the serial interleaved walk.
  struct SegRemains {
    std::vector<std::pair<Gaddr, Gaddr>> forwarders;  // (addr, forward target)
    std::vector<Gaddr> leftovers;
  };
  std::vector<SegmentId> round_segments(pending.segments.begin(), pending.segments.end());
  std::vector<SegRemains> remains =
      TaskPool::Global().ParallelMap<SegRemains>(round_segments.size(), [&](size_t i) {
        SegRemains out;
        SegmentImage* image = store_->Find(round_segments[i]);
        if (image != nullptr) {
          image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
            if (header.forwarded()) {
              out.forwarders.emplace_back(addr, header.forward);
            } else {
              out.leftovers.push_back(addr);
            }
          });
        }
        return out;
      });

  for (size_t seg_idx = 0; seg_idx < round_segments.size(); ++seg_idx) {
    SegmentId seg = round_segments[seg_idx];
    SegmentImage* image = store_->Find(seg);
    if (image == nullptr) {
      continue;
    }
    for (const auto& [addr, forward] : remains[seg_idx].forwarders) {
      dsm_->AddStaleForward(addr, forward);
    }
    for (Gaddr addr : remains[seg_idx].leftovers) {
      ObjectHeader* header = image->HeaderOf(addr);
      Oid oid = header->oid;
      Gaddr known = store_->AddrOfOid(oid);
      Gaddr canonical = known == kNullAddr ? kNullAddr : dsm_->ResolveAddr(known);
      if (canonical != kNullAddr && canonical != addr && store_->HasObjectAt(canonical)) {
        // Orphaned stale copy; the real object lives elsewhere locally.
        dsm_->AddStaleForward(addr, canonical);
        continue;
      }
      if (dsm_->IsLocallyOwned(oid)) {
        Gaddr new_addr = AllocateForCopy(pending.bunch, oid, header->size_slots, all);
        store_->CopyObjectBytes(addr, new_addr);
        dsm_->RecordLocalMove(oid, addr, new_addr, pending.bunch);
        OnAddressUpdate(AddressUpdate{oid, pending.bunch, addr, new_addr});
        dsm_->AddStaleForward(addr, new_addr);
        stats_.objects_copied++;
        continue;
      }
      if (directory_->OwnerOf(oid) == kInvalidNode) {
        // Globally dead (reclaimed at its owner): the bytes can go.
        image->EraseObject(addr);
        continue;
      }
      deferred.insert(seg);
    }
  }

  std::set<SegmentId> freeing;
  for (SegmentId seg : all) {
    if (deferred.count(seg) == 0) {
      freeing.insert(seg);
    }
  }

  // Update every local reference (any bunch) and root that still points into
  // the segments actually being freed.  Sharded per segment: each shard
  // rewrites slots only inside its own segment toward targets resolved
  // through maps no shard mutates; counts merge in segment order.
  std::vector<SegmentId> survivors;
  for (SegmentId seg : store_->AllSegments()) {
    if (freeing.count(seg) == 0) {
      survivors.push_back(seg);
    }
  }
  std::vector<uint64_t> fixups =
      TaskPool::Global().ParallelMap<uint64_t>(survivors.size(), [&](size_t i) {
        uint64_t count = 0;
        SegmentImage* image = store_->Find(survivors[i]);
        image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
          if (header.forwarded()) {
            return;
          }
          image->ForEachRefSlotOf(addr, header.size_slots, [&](size_t slot, uint64_t value) {
            if (value == kNullAddr || freeing.count(SegmentOf(value)) == 0) {
              return;
            }
            Gaddr resolved = dsm_->ResolveAddr(value);
            if (freeing.count(SegmentOf(resolved)) > 0) {
              // Unresolvable references into the freed segment can only occur
              // in stale local copies (entry consistency permits them) whose
              // target died; the slot is unreachable data, so leave it.  Any
              // future acquire refreshes the containing object's bytes from
              // its owner.
              return;
            }
            store_->WriteSlot(addr, slot, resolved);
            count++;
          });
        });
        return count;
      });
  for (uint64_t count : fixups) {
    stats_.refs_updated_locally += count;
  }
  for (RootProvider* provider : root_providers_) {
    for (Gaddr* slot : provider->RootSlots()) {
      if (*slot != kNullAddr && freeing.count(SegmentOf(*slot)) > 0) {
        *slot = dsm_->ResolveAddr(*slot);
      }
    }
  }

  // Deferred segments stay queued for the next round; freed ones go.
  BunchState& state = StateOf(pending.bunch);
  std::vector<SegmentId> remaining;
  for (SegmentId seg : state.from_spaces) {
    if (freeing.count(seg) == 0) {
      remaining.push_back(seg);
    }
  }
  state.from_spaces = std::move(remaining);

  // Crash between deciding to free and dropping the segments: the next life
  // re-checkpoints whatever the manifest still names, so a half-freed
  // from-space either comes back whole or was already retired in the
  // directory — never a torn mixture.
  FAULT_POINT("reclaim.finish.pre_free", id_);
  for (SegmentId seg : freeing) {
    store_->Drop(seg);
    if (directory_->SegmentCreator(seg) == id_ && !directory_->IsRetired(seg)) {
      directory_->RetireSegment(seg);
    }
    stats_.segments_freed++;
  }
}

}  // namespace bmx
