// Stub-scion pairs (SSPs), paper §3.1.
//
// Every cached copy of a bunch carries a stub table (outgoing links) and a
// scion table (incoming links), so that a bunch replica can make all
// reachability decisions for its objects without consulting any other bunch
// or any other copy of the same bunch.  Unlike RPC-system SSPs, these are
// pure bookkeeping: no indirection, no marshaling.
//
// Two kinds:
//   * inter-bunch SSPs describe references that cross bunch boundaries; they
//     point in the same direction as the reference and exist only at the node
//     that *created* the reference (a single SSP keeps the target alive for
//     the whole system);
//   * intra-bunch SSPs record dependencies between copies of the same bunch:
//     they run opposite to the ownerPtr, from the current owner of an object
//     to a previous owner that still holds inter-bunch stubs for it.

#ifndef SRC_GC_SSP_H_
#define SRC_GC_SSP_H_

#include <cstdint>

#include "src/common/types.h"

namespace bmx {

// Outgoing cross-bunch reference: object `src_oid` (slot `slot`) in
// `src_bunch` points at the object at `target_addr` in `target_bunch`.  The
// matching inter-bunch scion lives on `scion_node`.
struct InterStub {
  uint64_t id = 0;  // unique per creating node; scions match on it
  Oid src_oid = kNullOid;
  uint32_t slot = 0;
  BunchId src_bunch = kInvalidBunch;
  Gaddr target_addr = kNullAddr;
  BunchId target_bunch = kInvalidBunch;
  NodeId scion_node = kInvalidNode;
};

// Incoming cross-bunch reference: the object at local `target_addr` is
// referenced from bunch `src_bunch` on node `src_node` (stub `stub_id`).
// Inter-bunch scions are BGC roots.
struct InterScion {
  uint64_t stub_id = 0;
  NodeId src_node = kInvalidNode;
  BunchId src_bunch = kInvalidBunch;
  Gaddr target_addr = kNullAddr;
};

// Intra-bunch stub, held at the owner (or a later owner) of `oid`: the
// replica of `oid` on `scion_node` must stay alive because that node holds
// inter-bunch stubs created when it owned the object.
struct IntraStub {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  NodeId scion_node = kInvalidNode;
};

// Intra-bunch scion, held at a previous owner: keeps the local replica of
// `oid` alive (it anchors inter-bunch stubs).  The matching intra-bunch stub
// lives on `stub_node`.  Intra-bunch scions are *weak* BGC roots: objects
// reachable only through them stay alive but contribute no exiting ownerPtr,
// which is what breaks the ownerPtr/SSP cycle of Figure 4 (§6.2).
struct IntraScion {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  NodeId stub_node = kInvalidNode;
};

}  // namespace bmx

#endif  // SRC_GC_SSP_H_
