#include "src/gc/gc_engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/fault_injector.h"

namespace bmx {

GcEngine::GcEngine(NodeId id, Network* network, SegmentDirectory* directory, ReplicaStore* store,
                   DsmNode* dsm)
    : id_(id), network_(network), directory_(directory), store_(store), dsm_(dsm) {
  BMX_CHECK(network_ != nullptr && directory_ != nullptr && store_ != nullptr && dsm_ != nullptr);
  dsm_->set_gc_hooks(this);
}

GcEngine::BunchState& GcEngine::StateOf(BunchId bunch) {
  auto it = bunches_.find(bunch);
  if (it == bunches_.end()) {
    RegisterBunchReplica(bunch);
    it = bunches_.find(bunch);
  }
  return it->second;
}

const GcEngine::BunchState* GcEngine::FindState(BunchId bunch) const {
  auto it = bunches_.find(bunch);
  return it == bunches_.end() ? nullptr : &it->second;
}

void GcEngine::RegisterBunchReplica(BunchId bunch) {
  if (bunches_.count(bunch) > 0) {
    return;
  }
  BMX_CHECK(directory_->BunchExists(bunch)) << "mapping unknown bunch " << bunch;
  BunchState state;
  state.id = bunch;
  bunches_.emplace(bunch, std::move(state));
  directory_->NoteMapped(bunch, id_);
}

void GcEngine::AddRootProvider(RootProvider* provider) {
  BMX_CHECK(provider != nullptr);
  root_providers_.push_back(provider);
}

void GcEngine::RemoveRootProvider(RootProvider* provider) {
  root_providers_.erase(std::remove(root_providers_.begin(), root_providers_.end(), provider),
                        root_providers_.end());
}

Gaddr GcEngine::Allocate(BunchId bunch, uint32_t size_slots) {
  BunchState& state = StateOf(bunch);
  Oid oid = directory_->NextOid();
  Gaddr addr = kNullAddr;
  if (state.alloc_segment != kInvalidSegment) {
    SegmentImage* image = store_->Find(state.alloc_segment);
    BMX_CHECK(image != nullptr);
    addr = image->Allocate(oid, size_slots);
  }
  if (addr == kNullAddr) {
    // Segment overflow (or first allocation): grow the bunch — this is why
    // segments are grouped into bunches at all (§2.1).
    SegmentId seg = directory_->AllocateSegment(bunch, id_);
    SegmentImage& image = store_->GetOrCreate(seg, bunch);
    state.alloc_segment = seg;
    addr = image.Allocate(oid, size_slots);
    BMX_CHECK_NE(addr, kNullAddr) << "object larger than a segment";
  }
  dsm_->RegisterNewObject(oid, addr, bunch);
  // Crash here and the directory names a dead node as owner of an object
  // that was never checkpointed; recovery must drop the vacuous ownership.
  FAULT_POINT("gc.alloc.post_register", id_);
  return addr;
}

void GcEngine::WriteRef(Gaddr obj_addr, size_t slot, Gaddr target) {
  stats_.barrier_writes++;
  Gaddr obj = dsm_->LocalCopyOf(obj_addr);
  BMX_CHECK(store_->HasObjectAt(obj)) << "WriteRef to unmapped object at " << obj_addr;
  const ObjectHeader* header = store_->HeaderOf(obj);
  BMX_CHECK_LT(slot, header->size_slots);
  store_->WriteSlot(obj, slot, target);
  store_->SetSlotIsRef(obj, slot, target != kNullAddr);
  if (target == kNullAddr) {
    return;
  }
  // Write barrier proper (§3.2): detect creation of an inter-bunch reference
  // and construct the SSP immediately.
  BunchId src_bunch = directory_->BunchOfSegment(SegmentOf(obj));
  BunchId dst_bunch = directory_->BunchOfSegment(SegmentOf(dsm_->ResolveAddr(target)));
  if (src_bunch != dst_bunch) {
    stats_.barrier_inter_bunch++;
    CreateInterSsp(obj, slot, target);
  }
}

void GcEngine::WriteWord(Gaddr obj_addr, size_t slot, uint64_t value) {
  stats_.barrier_writes++;
  Gaddr obj = dsm_->LocalCopyOf(obj_addr);
  BMX_CHECK(store_->HasObjectAt(obj)) << "WriteWord to unmapped object at " << obj_addr;
  const ObjectHeader* header = store_->HeaderOf(obj);
  BMX_CHECK_LT(slot, header->size_slots);
  store_->WriteSlot(obj, slot, value);
  store_->SetSlotIsRef(obj, slot, false);
}

uint64_t GcEngine::ReadSlot(Gaddr obj_addr, size_t slot) const {
  Gaddr obj = dsm_->LocalCopyOf(obj_addr);
  BMX_CHECK(store_->HasObjectAt(obj)) << "read of unmapped object at " << obj_addr;
  return store_->ReadSlot(obj, slot);
}

bool GcEngine::SlotIsRef(Gaddr obj_addr, size_t slot) const {
  Gaddr obj = dsm_->LocalCopyOf(obj_addr);
  BMX_CHECK(store_->HasObjectAt(obj));
  return store_->SlotIsRef(obj, slot);
}

bool GcEngine::SameObject(Gaddr a, Gaddr b) const {
  if (a == b) {
    return true;
  }
  if (a == kNullAddr || b == kNullAddr) {
    return false;
  }
  Gaddr ra = dsm_->ResolveAddr(a);
  Gaddr rb = dsm_->ResolveAddr(b);
  if (ra == rb) {
    return true;
  }
  // Different final addresses can still be the same object when this node has
  // not caught up on one of the chains; compare identities, using the
  // directory's address book when local bytes are missing on one side.
  auto identify = [&](Gaddr resolved, Gaddr original) -> Oid {
    if (store_->HasObjectAt(resolved)) {
      return store_->HeaderOf(resolved)->oid;
    }
    Oid oid = directory_->OidAtAddress(resolved);
    return oid != kNullOid ? oid : directory_->OidAtAddress(original);
  };
  Oid oa = identify(ra, a);
  Oid ob = identify(rb, b);
  return oa != kNullOid && oa == ob;
}

void GcEngine::CreateInterSsp(Gaddr src_obj, size_t slot, Gaddr target) {
  const ObjectHeader* src_header = store_->HeaderOf(src_obj);
  BunchId src_bunch = directory_->BunchOfSegment(SegmentOf(src_obj));
  Gaddr target_resolved = dsm_->ResolveAddr(target);
  BunchId target_bunch = directory_->BunchOfSegment(SegmentOf(target_resolved));
  BunchState& state = StateOf(src_bunch);

  // One SSP per live reference is enough; re-storing the same target into the
  // same slot must not grow the tables.
  for (const InterStub& stub : state.inter_stubs) {
    if (stub.src_oid == src_header->oid && stub.slot == slot &&
        dsm_->ResolveAddr(stub.target_addr) == target_resolved) {
      return;
    }
  }

  InstallInterStub(src_header->oid, static_cast<uint32_t>(slot), src_bunch, target_resolved,
                   target_bunch);
}

void GcEngine::InstallInterStub(Oid src_oid, uint32_t slot, BunchId src_bunch, Gaddr target_addr,
                                BunchId target_bunch) {
  BunchState& state = StateOf(src_bunch);
  InterStub stub;
  stub.id = next_stub_id_++;
  stub.src_oid = src_oid;
  stub.slot = slot;
  stub.src_bunch = src_bunch;
  stub.target_addr = target_addr;
  stub.target_bunch = target_bunch;

  if (store_->HasObjectAt(target_addr)) {
    // Both bunches present locally: stub and scion are created locally (§3.2).
    stub.scion_node = id_;
    BunchState& target_state = StateOf(target_bunch);
    InterScion scion;
    scion.stub_id = stub.id;
    scion.src_node = id_;
    scion.src_bunch = src_bunch;
    scion.target_addr = target_addr;
    target_state.inter_scions.push_back(scion);
    stats_.inter_scions_created++;
  } else {
    // Target bunch not mapped locally: a scion-message informs a node that
    // holds the target's bytes (the creator of its segment).
    NodeId dest = directory_->SegmentCreator(SegmentOf(target_addr));
    BMX_CHECK_NE(dest, id_) << "target bytes missing at their creator";
    stub.scion_node = dest;
    auto msg = std::make_shared<ScionMessagePayload>();
    msg->src_node = id_;
    msg->src_bunch = src_bunch;
    msg->stub_id = stub.id;
    msg->target_addr = target_addr;
    msg->target_bunch = target_bunch;
    // Crash here and the stub exists in no checkpoint while the scion was
    // never requested — the reference is rebuilt from the recovered heap.
    FAULT_POINT("gc.scion.pre_send", id_);
    network_->Send(id_, dest, std::move(msg));
    stats_.scion_messages_sent++;
  }
  state.inter_stubs.push_back(stub);
  state.table_destinations.insert(stub.scion_node);
  stats_.inter_stubs_created++;
}

void GcEngine::PrepareOwnershipTransfer(Oid oid, BunchId bunch, NodeId new_owner,
                                        Piggyback* piggyback) {
  const BunchState* state = FindState(bunch);
  if (state == nullptr) {
    return;
  }
  bool holds_inter_stub = false;
  for (const InterStub& stub : state->inter_stubs) {
    if (stub.src_oid == oid) {
      holds_inter_stub = true;
      break;
    }
  }
  bool holds_intra_stub = false;
  for (const IntraStub& stub : state->intra_stubs) {
    if (stub.oid == oid) {
      holds_intra_stub = true;
      break;
    }
  }
  if (!holds_inter_stub && !holds_intra_stub) {
    return;
  }

  if (transfer_policy_ == TransferPolicy::kReplicateInterSsp && !holds_intra_stub) {
    // Ablation policy (§3.2's rejected alternative): ship copies of every
    // inter-bunch stub; each copy costs the new owner a fresh SSP — and,
    // when the target bunch is remote, a scion-message.
    for (const InterStub& stub : state->inter_stubs) {
      if (stub.src_oid != oid) {
        continue;
      }
      InterStubTemplate stub_template;
      stub_template.src_oid = stub.src_oid;
      stub_template.slot = stub.slot;
      stub_template.src_bunch = stub.src_bunch;
      stub_template.target_addr = dsm_->ResolveAddr(stub.target_addr);
      stub_template.target_bunch = stub.target_bunch;
      piggyback->replicated_stubs.push_back(stub_template);
    }
    return;
  }

  // Invariant 3 (§5), the paper's design: create the intra-bunch scion
  // locally *before* the write grant leaves, and ask the new owner to create
  // the matching stub.
  BunchState& mutable_state = StateOf(bunch);
  IntraSspRequest request;
  request.oid = oid;
  request.bunch = bunch;
  request.scion_node = id_;
  for (const IntraScion& scion : mutable_state.intra_scions) {
    if (scion.oid == oid && scion.stub_node == new_owner) {
      // Already linked from that node; still ask for the (idempotent) stub.
      piggyback->intra_ssp_requests.push_back(request);
      return;
    }
  }
  IntraScion scion;
  scion.oid = oid;
  scion.bunch = bunch;
  scion.stub_node = new_owner;
  mutable_state.intra_scions.push_back(scion);
  stats_.intra_scions_created++;
  piggyback->intra_ssp_requests.push_back(request);
}

void GcEngine::InstallReplicatedStub(const InterStubTemplate& stub_template) {
  // Dedupe against an existing equivalent stub (repeat transfers).
  const BunchState& state = StateOf(stub_template.src_bunch);
  for (const InterStub& stub : state.inter_stubs) {
    if (stub.src_oid == stub_template.src_oid && stub.slot == stub_template.slot &&
        dsm_->ResolveAddr(stub.target_addr) == dsm_->ResolveAddr(stub_template.target_addr)) {
      return;
    }
  }
  InstallInterStub(stub_template.src_oid, stub_template.slot, stub_template.src_bunch,
                   dsm_->ResolveAddr(stub_template.target_addr), stub_template.target_bunch);
}

void GcEngine::CreateIntraStub(const IntraSspRequest& request) {
  BunchState& state = StateOf(request.bunch);
  for (const IntraStub& stub : state.intra_stubs) {
    if (stub.oid == request.oid && stub.scion_node == request.scion_node) {
      return;
    }
  }
  IntraStub stub;
  stub.oid = request.oid;
  stub.bunch = request.bunch;
  stub.scion_node = request.scion_node;
  state.intra_stubs.push_back(stub);
  state.table_destinations.insert(stub.scion_node);
  stats_.intra_stubs_created++;
}

void GcEngine::OnAddressUpdate(const AddressUpdate& update) {
  // Refresh recorded target addresses so stub/scion matching stays exact even
  // after the old address's forwarding header is gone.
  for (auto& [bunch, state] : bunches_) {
    for (InterStub& stub : state.inter_stubs) {
      if (stub.target_addr == update.old_addr) {
        stub.target_addr = update.new_addr;
      }
    }
    for (InterScion& scion : state.inter_scions) {
      if (scion.target_addr == update.old_addr) {
        scion.target_addr = update.new_addr;
      }
    }
  }
}

void GcEngine::HandleMessage(const Message& msg) {
  switch (msg.payload->kind()) {
    case MsgKind::kScionMessage:
      HandleScionMessage(msg);
      break;
    case MsgKind::kReachabilityTable:
      HandleReachabilityTable(msg);
      break;
    case MsgKind::kCopyRequest:
      HandleCopyRequest(msg);
      break;
    case MsgKind::kCopyReply:
      HandleCopyReply(msg);
      break;
    case MsgKind::kAddressChange:
      HandleAddressChange(msg);
      break;
    case MsgKind::kAddressChangeAck:
      HandleAddressChangeAck(msg);
      break;
    default:
      BMX_CHECK(false) << "GcEngine got unexpected message kind "
                       << MsgKindName(msg.payload->kind());
  }
}

void GcEngine::HandleScionMessage(const Message& msg) {
  const auto& req = static_cast<const ScionMessagePayload&>(*msg.payload);
  RegisterBunchReplica(req.target_bunch);
  BunchState& state = StateOf(req.target_bunch);
  for (const InterScion& scion : state.inter_scions) {
    if (scion.stub_id == req.stub_id && scion.src_node == req.src_node) {
      return;  // duplicate
    }
  }
  InterScion scion;
  scion.stub_id = req.stub_id;
  scion.src_node = req.src_node;
  scion.src_bunch = req.src_bunch;
  scion.target_addr = dsm_->ResolveAddr(req.target_addr);
  state.inter_scions.push_back(scion);
  stats_.inter_scions_created++;
}

GcEngine::BunchTables GcEngine::TablesOf(BunchId bunch) const {
  BunchTables tables;
  const BunchState* state = FindState(bunch);
  if (state != nullptr) {
    tables.inter_stubs = state->inter_stubs;
    tables.intra_stubs = state->intra_stubs;
    tables.inter_scions = state->inter_scions;
    tables.intra_scions = state->intra_scions;
  }
  return tables;
}

std::vector<SegmentId> GcEngine::FromSpacesOf(BunchId bunch) const {
  const BunchState* state = FindState(bunch);
  return state == nullptr ? std::vector<SegmentId>{} : state->from_spaces;
}

SegmentId GcEngine::AllocSegmentOf(BunchId bunch) const {
  const BunchState* state = FindState(bunch);
  return state == nullptr ? kInvalidSegment : state->alloc_segment;
}

GcEngine::HeapReport GcEngine::ReportOf(BunchId bunch) {
  HeapReport report;
  TraceResult live = Trace({bunch}, /*exclude_intra_group_scions=*/false);
  for (SegmentId seg : store_->SegmentsOfBunch(bunch)) {
    SegmentImage* image = store_->Find(seg);
    report.segments++;
    report.allocated_bytes += image->allocated_bytes();
    image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
      size_t footprint = ObjectFootprintBytes(header.size_slots);
      if (header.forwarded()) {
        report.forwarders++;
        report.forwarder_bytes += footprint;
        return;
      }
      if (live.Live(addr)) {
        report.live_objects++;
        report.live_bytes += footprint;
      }
    });
  }
  return report;
}

std::vector<Gaddr> GcEngine::LiveObjects(BunchId bunch) {
  TraceResult live = Trace({bunch}, /*exclude_intra_group_scions=*/false);
  std::vector<Gaddr> out(live.strong.begin(), live.strong.end());
  out.insert(out.end(), live.weak_only.begin(), live.weak_only.end());
  return out;
}

void GcEngine::NoteRecoveringPeer(NodeId peer) {
  recovering_peers_.insert(peer);
  network_->obligations().Open(ObligationKind::kRetention, id_, peer);
  // The restarted node's table_version counters begin again at 1; without
  // this reset every table from its new life would be rejected as stale and
  // its scions (and our entering entries from it) could never be cleaned.
  for (auto it = table_version_seen_.begin(); it != table_version_seen_.end();) {
    it = it->first.first == peer ? table_version_seen_.erase(it) : ++it;
  }
}

void GcEngine::ClearRecoveringPeer(NodeId peer) {
  recovering_peers_.erase(peer);
  network_->obligations().Close(ObligationKind::kRetention, id_, peer);
}

void GcEngine::RebuildSspsFromHeap(BunchId bunch) {
  // The stub table of the previous life is gone (stubs are volatile); the
  // recovered heap is the ground truth for which cross-bunch references this
  // node is responsible for keeping alive.
  for (SegmentId seg : store_->SegmentsOfBunch(bunch)) {
    SegmentImage* image = store_->Find(seg);
    if (image == nullptr) {
      continue;
    }
    image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
      if (header.forwarded()) {
        return;
      }
      store_->ForEachRefSlot(addr, header.size_slots, [&](size_t slot, uint64_t target) {
        if (target == kNullAddr) {
          return;
        }
        Gaddr resolved = dsm_->ResolveAddr(target);
        BunchId target_bunch = directory_->BunchOfSegment(SegmentOf(resolved));
        if (target_bunch == bunch || target_bunch == kInvalidBunch) {
          return;
        }
        if (!store_->HasObjectAt(resolved) &&
            directory_->SegmentCreator(SegmentOf(resolved)) == id_) {
          // The reference survived in the checkpoint but its target did not:
          // we are the creator-of-record and hold no bytes, so there is no
          // node a scion-message could protect it at.  The reference is
          // dangling; leave it to fail at the next acquire.
          return;
        }
        CreateInterSsp(addr, slot, resolved);
      });
    });
  }
}

void GcEngine::RestoreInterScion(NodeId src_node, uint64_t stub_id, BunchId src_bunch,
                                 Gaddr target_addr, BunchId target_bunch) {
  RegisterBunchReplica(target_bunch);
  BunchState& state = StateOf(target_bunch);
  for (const InterScion& scion : state.inter_scions) {
    if (scion.stub_id == stub_id && scion.src_node == src_node) {
      return;
    }
  }
  InterScion scion;
  scion.stub_id = stub_id;
  scion.src_node = src_node;
  scion.src_bunch = src_bunch;
  scion.target_addr = dsm_->ResolveAddr(target_addr);
  state.inter_scions.push_back(scion);
  stats_.inter_scions_created++;
}

void GcEngine::RestoreIntraScion(Oid oid, BunchId bunch, NodeId stub_node) {
  RegisterBunchReplica(bunch);
  BunchState& state = StateOf(bunch);
  for (const IntraScion& scion : state.intra_scions) {
    if (scion.oid == oid && scion.stub_node == stub_node) {
      return;
    }
  }
  IntraScion scion;
  scion.oid = oid;
  scion.bunch = bunch;
  scion.stub_node = stub_node;
  state.intra_scions.push_back(scion);
  stats_.intra_scions_created++;
}

void GcEngine::RestoreIntraStub(Oid oid, BunchId bunch, NodeId scion_node) {
  RegisterBunchReplica(bunch);
  IntraSspRequest request;
  request.oid = oid;
  request.bunch = bunch;
  request.scion_node = scion_node;
  CreateIntraStub(request);  // dedupes internally
}

std::vector<BunchId> GcEngine::ReplicaBunches() const {
  std::vector<BunchId> out;
  out.reserve(bunches_.size());
  for (const auto& [bunch, state] : bunches_) {
    out.push_back(bunch);
  }
  return out;  // bunches_ is an ordered map: already sorted
}

size_t GcEngine::LiveBytesOf(BunchId bunch) {
  TraceResult live = Trace({bunch}, /*exclude_intra_group_scions=*/false);
  size_t bytes = 0;
  auto account = [&](const std::set<Gaddr>& addrs) {
    for (Gaddr addr : addrs) {
      if (store_->HasObjectAt(addr)) {
        bytes += ObjectFootprintBytes(store_->HeaderOf(addr)->size_slots);
      }
    }
  };
  account(live.strong);
  account(live.weak_only);
  return bytes;
}

}  // namespace bmx
