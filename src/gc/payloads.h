// Message payloads of the garbage collector.
//
// GC traffic never blocks applications: scion-messages and reachability
// tables flow in the background (paper §6.1), and the reachability tables are
// *idempotent* — full state, not increments — so they survive loss and
// duplication without a reliable transport, needing only FIFO per channel,
// which the version number provides.

#ifndef SRC_GC_PAYLOADS_H_
#define SRC_GC_PAYLOADS_H_

#include <vector>

#include "src/common/types.h"
#include "src/dsm/piggyback.h"
#include "src/mem/object.h"
#include "src/net/message.h"

namespace bmx {

// "Create the scion for the inter-bunch reference I just created" (§3.2).
// Sent when the target bunch is not mapped at the creating node.
struct ScionMessagePayload : public Payload {
  NodeId src_node = kInvalidNode;
  BunchId src_bunch = kInvalidBunch;
  uint64_t stub_id = 0;
  Gaddr target_addr = kNullAddr;
  BunchId target_bunch = kInvalidBunch;

  MsgKind kind() const override { return MsgKind::kScionMessage; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 28; }
};

// The reconstructed reachability information a BGC ships to scion cleaners
// (§4.3, §6.1): which stubs (inter and intra) survived, and which exiting
// ownerPtrs remain — everything the destination needs to delete scions and
// entering ownerPtrs that nothing references any more.  Content is filtered
// per destination (only entries whose scion / ownerPtr lives there).
struct ReachabilityTablePayload : public Payload {
  NodeId src_node = kInvalidNode;
  BunchId bunch = kInvalidBunch;
  uint64_t version = 0;  // FIFO guard: stale tables must not delete scions

  std::vector<uint64_t> inter_stub_ids;  // surviving inter stubs with scion at dst
  std::vector<Oid> intra_stub_oids;      // surviving intra stubs with scion at dst
  std::vector<Oid> exiting_oids;         // oids we still hold non-owned live replicas of
  std::vector<Gaddr> exiting_addrs;      // address-based exiting entries (dangling refs)

  MsgKind kind() const override { return MsgKind::kReachabilityTable; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override {
    return 20 + 8 * (inter_stub_ids.size() + intra_stub_oids.size() + exiting_oids.size() +
                     exiting_addrs.size());
  }
  // Idempotent full-state tables tolerate loss and duplication (§6.1).
  bool reliable() const override { return false; }
};

// From-space reclamation (§4.5): ask the owner of a live, non-locally-owned
// object still sitting in our from-space to copy it out.
struct CopyRequestPayload : public Payload {
  uint64_t round = 0;  // correlates with the requester's reclamation round
  NodeId requester = kInvalidNode;  // survives ownerPtr forwarding
  uint32_t hops = 0;
  Oid oid = kNullOid;
  Gaddr addr = kNullAddr;  // where the requester's replica currently sits
  // Segments the requester is about to free: the owner must not place the
  // relocated copy in any of them.
  std::vector<SegmentId> freeing;
  MsgKind kind() const override { return MsgKind::kCopyRequest; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 20 + 4 * freeing.size(); }
};

struct CopyReplyPayload : public Payload {
  uint64_t round = 0;
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  Gaddr new_addr = kNullAddr;
  ObjectHeader header;
  std::vector<uint64_t> slots;
  std::vector<uint8_t> slot_is_ref;
  MsgKind kind() const override { return MsgKind::kCopyReply; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override {
    return 24 + kHeaderBytes + slots.size() * kSlotBytes + slot_is_ref.size();
  }
};

// From-space reclamation: explicit new-location notices for nodes that would
// otherwise learn lazily.  Ack'ed so the sender knows when the from-space
// segment can be reused ("Once the local node receives the replies to the
// above messages, the from-space segment can be fully reused or freed").
struct AddressChangePayload : public Payload {
  uint64_t round = 0;
  std::vector<AddressUpdate> updates;
  MsgKind kind() const override { return MsgKind::kAddressChange; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8 + updates.size() * kAddressUpdateWireBytes; }
};

struct AddressChangeAckPayload : public Payload {
  uint64_t round = 0;
  MsgKind kind() const override { return MsgKind::kAddressChangeAck; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
};

}  // namespace bmx

#endif  // SRC_GC_PAYLOADS_H_
