// Bunch garbage collection (paper §4) and group garbage collection (§7).
//
// Both run entirely node-locally over the same core: trace → copy owned live
// objects → update local references → sweep → rebuild tables → ship tables in
// the background.  The collector acquires no token at any point; non-owned
// objects are scanned wherever (and however stale) their local bytes are.

// Parallelism (TaskPool): the scan-heavy phases — marking, per-segment live /
// dead discovery, reference updates, exiting-table scans — shard over the
// task pool; every phase that *mutates* (copying, sweeping, table emission,
// network sends) applies those shard results serially in segment order.  The
// result is bit-identical to the serial collector at any thread count: the
// to-space layout, the piggybacked address updates, and the reachability
// tables all come out of the serial apply loops, which see exactly the data
// the serial code would have computed.

#include <algorithm>

#include "src/common/check.h"
#include "src/common/fault_injector.h"
#include "src/common/task_pool.h"
#include "src/gc/gc_engine.h"

namespace bmx {

void GcEngine::CollectBunch(BunchId bunch) {
  stats_.bgc_runs++;
  Collect({bunch}, /*exclude_intra_group_scions=*/false);
}

void GcEngine::CollectGroup() {
  // Locality-based grouping heuristic (§7): collect every bunch currently in
  // memory at this site, avoiding disk I/O.
  std::vector<BunchId> group;
  group.reserve(bunches_.size());
  for (const auto& [bunch, state] : bunches_) {
    group.push_back(bunch);
  }
  CollectGroup(group);
}

void GcEngine::CollectGroup(const std::vector<BunchId>& group) {
  stats_.ggc_runs++;
  Collect(group, /*exclude_intra_group_scions=*/true);
}

void GcEngine::Collect(const std::vector<BunchId>& group, bool exclude_intra_group_scions) {
  for (BunchId bunch : group) {
    // The replica state must exist before tracing: scion tables and entering
    // ownerPtrs are roots even on a node that never allocated in the bunch.
    StateOf(bunch);
  }
  if (cleaner_mode_ == CleanerMode::kDeferred) {
    // §6.1: accumulated reachability tables are processed at the start of the
    // next local collection, refreshing the scion roots first.
    ProcessDeferredTables();
  }
  FAULT_POINT("bgc.collect.pre_trace", id_);
  TraceResult live = Trace(group, exclude_intra_group_scions);
  std::vector<AddressUpdate> moves;
  for (BunchId bunch : group) {
    CopyOwnedLive(bunch, &live, &moves);
  }
  UpdateLocalReferences(group, live);
  for (BunchId bunch : group) {
    SweepDead(bunch, live);
  }
  for (BunchId bunch : group) {
    RebuildTables(bunch, live);
  }
  // Crash here and the heap is flipped (objects moved, stubs rebuilt) but no
  // peer has heard: their scions and entering entries go stale-conservative
  // until this node's next life re-announces its tables.
  FAULT_POINT("bgc.flip.pre_publish", id_);
  for (BunchId bunch : group) {
    SendReachabilityTables(bunch);
  }
  FAULT_POINT("bgc.tables.post_send", id_);
}

void GcEngine::MarkFrom(Gaddr root, const std::set<BunchId>& group, std::set<Gaddr>* marked,
                        std::set<Gaddr>* dangling) {
  std::vector<Gaddr> worklist;
  worklist.push_back(dsm_->LocalCopyOf(root));
  while (!worklist.empty()) {
    Gaddr addr = worklist.back();
    worklist.pop_back();
    if (addr == kNullAddr) {
      continue;
    }
    // References leaving the group are not traced: the SSP machinery keeps
    // their targets alive (that isolation is what makes independent bunch
    // collection possible, §3).
    if (group.count(directory_->BunchOfSegment(SegmentOf(addr))) == 0) {
      continue;
    }
    if (!store_->HasObjectAt(addr)) {
      // In-group reference with no local bytes: record it so the owner keeps
      // the target alive (address-based exiting entry).
      if (dangling != nullptr) {
        dangling->insert(addr);
      }
      continue;
    }
    if (!marked->insert(addr).second) {
      continue;
    }
    const ObjectHeader* header = store_->HeaderOf(addr);
    // Word-level ref-map kernel: non-reference slots never touched, empty
    // 64-slot runs skipped in one instruction.
    store_->ForEachRefSlot(addr, header->size_slots, [&](size_t, uint64_t value) {
      if (value != kNullAddr) {
        // Scan through this node's own byte copies (possibly stale — §4.2's
        // conservative scanning); only targets with no local bytes at all
        // become dangling, address-based exiting entries.
        worklist.push_back(dsm_->LocalCopyOf(value));
      }
    });
  }
}

void GcEngine::MarkRoots(const std::vector<Gaddr>& roots, const std::set<BunchId>& group,
                         std::set<Gaddr>* marked, std::set<Gaddr>* dangling) {
  TaskPool& pool = TaskPool::Global();
  if (pool.threads() == 1 || TaskPool::InParallelRegion() || roots.size() < 2) {
    for (Gaddr root : roots) {
      MarkFrom(root, group, marked, dangling);
    }
    return;
  }
  // One contiguous chunk of the root list per pool thread; each chunk marks
  // into private sets (no shared mark state, no synchronization) and the
  // union — taken in chunk order — equals the serial result exactly, because
  // marking is monotone: reach(R1 ∪ R2) == reach(R1) ∪ reach(R2).  Chunks
  // whose roots reach overlapping structure re-trace it redundantly, so the
  // worst case (every root reaches everything) costs wall-clock parity with
  // serial; disjoint root forests — the wide-heap common case — scale
  // linearly.
  struct ChunkMarks {
    std::set<Gaddr> marked;
    std::set<Gaddr> dangling;
  };
  size_t chunks = std::min(pool.threads(), roots.size());
  size_t per = (roots.size() + chunks - 1) / chunks;
  std::vector<ChunkMarks> parts = pool.ParallelMap<ChunkMarks>(chunks, [&](size_t c) {
    ChunkMarks out;
    size_t end = std::min(roots.size(), (c + 1) * per);
    for (size_t i = c * per; i < end; ++i) {
      MarkFrom(roots[i], group, &out.marked, dangling != nullptr ? &out.dangling : nullptr);
    }
    return out;
  });
  for (ChunkMarks& part : parts) {
    marked->insert(part.marked.begin(), part.marked.end());
    if (dangling != nullptr) {
      dangling->insert(part.dangling.begin(), part.dangling.end());
    }
  }
}

GcEngine::TraceResult GcEngine::Trace(const std::vector<BunchId>& group,
                                      bool exclude_intra_group_scions) {
  std::set<BunchId> gset(group.begin(), group.end());
  TraceResult result;

  // --- Strong roots: mutator stacks, inter-bunch scions, entering ownerPtrs
  // --- (§4.1).  For a group collection, inter-bunch scions whose stub
  // --- originates inside the local group are NOT roots — that is what lets
  // --- the GGC collect intra-site inter-bunch cycles (§7).  Roots are
  // --- gathered into one deterministically ordered list first, then marked
  // --- (sharded across the task pool when it is multi-threaded).
  std::vector<Gaddr> strong_roots;
  for (RootProvider* provider : root_providers_) {
    for (Gaddr* slot : provider->RootSlots()) {
      if (*slot != kNullAddr) {
        strong_roots.push_back(*slot);
      }
    }
  }
  for (BunchId bunch : group) {
    const BunchState* state = FindState(bunch);
    if (state != nullptr) {
      for (const InterScion& scion : state->inter_scions) {
        if (exclude_intra_group_scions && scion.src_node == id_ &&
            gset.count(scion.src_bunch) > 0) {
          continue;
        }
        strong_roots.push_back(scion.target_addr);
      }
    }
    for (const auto& [oid, sources] : dsm_->EnteringFor(bunch)) {
      Gaddr addr = store_->AddrOfOid(oid);
      if (addr != kNullAddr) {
        strong_roots.push_back(addr);
      }
    }
  }
  MarkRoots(strong_roots, gset, &result.strong, &result.dangling);

  // --- Weak roots: intra-bunch scions (§6.2).  Objects reachable only from
  // --- these stay alive but emit no exiting ownerPtr; dangling refs are
  // --- deliberately NOT recorded (weak reachability must not emit exiting
  // --- entries).
  std::vector<Gaddr> weak_roots;
  for (BunchId bunch : group) {
    const BunchState* state = FindState(bunch);
    if (state == nullptr) {
      continue;
    }
    for (const IntraScion& scion : state->intra_scions) {
      Gaddr addr = store_->AddrOfOid(scion.oid);
      if (addr != kNullAddr) {
        weak_roots.push_back(addr);
      }
    }
  }
  std::set<Gaddr> weak;
  MarkRoots(weak_roots, gset, &weak, nullptr);
  for (Gaddr addr : weak) {
    if (result.strong.count(addr) == 0) {
      result.weak_only.insert(addr);
    }
  }
  return result;
}

void GcEngine::CopyOwnedLive(BunchId bunch, TraceResult* live, std::vector<AddressUpdate>* moves) {
  BunchState& state = StateOf(bunch);
  std::vector<SegmentId> old_segments = store_->SegmentsOfBunch(bunch);

  SegmentId to_space = kInvalidSegment;
  std::vector<SegmentId> new_spaces;
  auto allocate_to_space = [&](Oid oid, uint32_t size_slots) -> Gaddr {
    if (to_space != kInvalidSegment) {
      Gaddr addr = store_->Find(to_space)->Allocate(oid, size_slots);
      if (addr != kNullAddr) {
        return addr;
      }
    }
    to_space = directory_->AllocateSegment(bunch, id_);
    new_spaces.push_back(to_space);
    SegmentImage& image = store_->GetOrCreate(to_space, bunch);
    Gaddr addr = image.Allocate(oid, size_slots);
    BMX_CHECK_NE(addr, kNullAddr);
    return addr;
  };

  // Scan phase, sharded per old segment: find live, unforwarded objects and
  // split them owned / merely-scanned.  Pure reads (liveness sets, token
  // table), so shards share nothing.  Copies made below land exclusively in
  // fresh to-space segments — never in `old_segments` — so the liveness
  // answer for every old-segment address is already fixed when the scan
  // runs, exactly as in the serial interleaved loop.
  struct SegScan {
    std::vector<Gaddr> owned_live;
    uint64_t scanned_only = 0;
  };
  std::vector<SegScan> scans =
      TaskPool::Global().ParallelMap<SegScan>(old_segments.size(), [&](size_t i) {
        SegScan out;
        SegmentImage* image = store_->Find(old_segments[i]);
        BMX_CHECK(image != nullptr);
        image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
          if (header.forwarded() || !live->Live(addr)) {
            return;
          }
          if (dsm_->IsLocallyOwned(header.oid)) {
            out.owned_live.push_back(addr);
          } else {
            // §4.2: objects not locally owned are simply scanned; copying
            // them would require synchronizing the copy-set.
            out.scanned_only++;
          }
        });
        return out;
      });

  // Copy phase, serial in segment order: allocation order — and therefore
  // every to-space address the piggyback layer will ever ship — matches the
  // serial collector exactly.
  for (size_t seg_idx = 0; seg_idx < old_segments.size(); ++seg_idx) {
    SegmentImage* image = store_->Find(old_segments[seg_idx]);
    stats_.objects_scanned += scans[seg_idx].scanned_only;
    for (Gaddr addr : scans[seg_idx].owned_live) {
      ObjectHeader* header = image->HeaderOf(addr);
      Oid oid = header->oid;
      Gaddr new_addr = allocate_to_space(oid, header->size_slots);
      store_->CopyObjectBytes(addr, new_addr);
      // Non-destructive copy: the old data stays intact behind a forwarding
      // header (O'Toole-style, §4.1), deleted only at from-space reclamation.
      header->flags |= kObjFlagForwarded;
      header->forward = new_addr;
      dsm_->RecordLocalMove(oid, addr, new_addr, bunch);
      AddressUpdate update{oid, bunch, addr, new_addr};
      moves->push_back(update);
      OnAddressUpdate(update);  // refresh stub/scion target addresses
      if (live->strong.count(addr) > 0) {
        live->strong.insert(new_addr);
      } else {
        live->weak_only.insert(new_addr);
      }
      stats_.objects_copied++;
      stats_.bytes_copied += ObjectFootprintBytes(header->size_slots);
    }
  }

  if (to_space == kInvalidSegment && !old_segments.empty()) {
    // Nothing was copied (e.g. a replica that owns no object), but the flip
    // still happens: old segments become from-space so §4.5 reclamation can
    // eventually free them; allocation continues in a fresh to-space.
    to_space = directory_->AllocateSegment(bunch, id_);
    store_->GetOrCreate(to_space, bunch);
    new_spaces.push_back(to_space);
  }
  if (to_space != kInvalidSegment) {
    state.alloc_segment = to_space;
  }
  for (SegmentId seg : old_segments) {
    if (seg == state.alloc_segment) {
      continue;
    }
    if (std::find(new_spaces.begin(), new_spaces.end(), seg) != new_spaces.end()) {
      continue;
    }
    if (std::find(state.from_spaces.begin(), state.from_spaces.end(), seg) ==
        state.from_spaces.end()) {
      state.from_spaces.push_back(seg);
    }
  }
}

void GcEngine::UpdateLocalReferences(const std::vector<BunchId>& group, const TraceResult& live) {
  // §4.4: references to copied objects are updated in place, in every live
  // local object — owned or not — without acquiring any token: the change is
  // visible only locally and does not affect other nodes' copies.
  //
  // Sharded per segment: a shard writes only slots of objects inside its own
  // segment and reads other segments purely through headers / forwarding
  // maps, which no shard mutates — so every slot ends at the same value as
  // the serial loop, whatever the interleaving.  Per-shard update counts are
  // summed in segment order.
  std::vector<SegmentId> segments;
  for (BunchId bunch : group) {
    for (SegmentId seg : store_->SegmentsOfBunch(bunch)) {
      segments.push_back(seg);
    }
  }
  std::vector<uint64_t> updated =
      TaskPool::Global().ParallelMap<uint64_t>(segments.size(), [&](size_t i) {
        uint64_t count = 0;
        SegmentImage* image = store_->Find(segments[i]);
        image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
          if (header.forwarded() || !live.Live(addr)) {
            return;
          }
          image->ForEachRefSlotOf(addr, header.size_slots, [&](size_t slot, uint64_t value) {
            if (value == kNullAddr) {
              return;
            }
            Gaddr resolved = dsm_->LocalCopyOf(value);
            if (resolved != value && store_->HasObjectAt(resolved)) {
              // Rewrite only toward addresses whose bytes this node holds;
              // pointing a slot at a byte-less canonical address would sever
              // the local trace (the paper's page-mapped replicas can always
              // read what they point at).
              store_->WriteSlot(addr, slot, resolved);
              count++;
            }
          });
        });
        return count;
      });
  for (uint64_t count : updated) {
    stats_.refs_updated_locally += count;
  }
  for (RootProvider* provider : root_providers_) {
    for (Gaddr* slot : provider->RootSlots()) {
      if (*slot != kNullAddr) {
        *slot = dsm_->ResolveAddr(*slot);
      }
    }
  }
}

void GcEngine::SweepDead(BunchId bunch, const TraceResult& live) {
  // Dead-list discovery shards per segment: it reads only headers and the
  // (now fixed) liveness sets, and reclaiming segment i's dead objects never
  // changes another segment's forwarded/live answers — so the pre-computed
  // lists match what the serial loop would have found segment by segment.
  // The reclaim itself stays serial in segment order: it erases objects and
  // edits oid/routing maps.
  std::vector<SegmentId> segments = store_->SegmentsOfBunch(bunch);
  std::vector<std::vector<Gaddr>> dead_lists =
      TaskPool::Global().ParallelMap<std::vector<Gaddr>>(segments.size(), [&](size_t i) {
        std::vector<Gaddr> dead;
        store_->Find(segments[i])->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
          if (!header.forwarded() && !live.Live(addr)) {
            dead.push_back(addr);
          }
        });
        return dead;
      });
  for (size_t seg_idx = 0; seg_idx < segments.size(); ++seg_idx) {
    SegmentImage* image = store_->Find(segments[seg_idx]);
    for (Gaddr addr : dead_lists[seg_idx]) {
      ObjectHeader* header = image->HeaderOf(addr);
      stats_.objects_reclaimed++;
      stats_.bytes_reclaimed += ObjectFootprintBytes(header->size_slots);
      Oid oid = header->oid;
      // Out-of-order address updates can leave an *orphaned* old replica of
      // an object whose canonical local copy lives elsewhere.  Sweeping the
      // orphan must not destroy the object's token state: erase the bytes,
      // leave a stale-forward to the canonical copy, and move on.
      Gaddr canonical = store_->AddrOfOid(oid);
      Gaddr canonical_resolved = canonical == kNullAddr ? kNullAddr : dsm_->ResolveAddr(canonical);
      if (canonical_resolved != kNullAddr && canonical_resolved != addr &&
          store_->HasObjectAt(canonical_resolved)) {
        image->EraseObject(addr);
        dsm_->AddStaleForward(addr, canonical_resolved);
        continue;
      }
      if (canonical_resolved != kNullAddr && canonical_resolved != addr) {
        // The oid map chased a stale update past the real bytes: repair it.
        store_->SetAddrOfOid(oid, addr);
      }
      if (!dsm_->IsLocallyOwned(oid)) {
        // The object may live on at its owner; this node might still be the
        // routing fallback for its address (we created the segment), so keep
        // a probable-owner tombstone.
        dsm_->AddStaleRouting(addr, dsm_->OwnerHint(oid));
      } else {
        // Dead at its owner: dead globally.  Retire the directory entries.
        directory_->ForgetObjectAddresses(oid);
      }
      image->EraseObject(addr);
      dsm_->ForgetObject(oid);
    }
  }
}

void GcEngine::RebuildTables(BunchId bunch, const TraceResult& live) {
  BunchState& state = StateOf(bunch);

  // Inter-bunch stubs survive while the (live) source object still contains
  // the reference the stub describes (§4.3).  Stubs exist only where the
  // reference was *created*, so a pure filter of the old table is complete.
  std::vector<InterStub> inter;
  for (InterStub stub : state.inter_stubs) {
    Gaddr src = store_->AddrOfOid(stub.src_oid);
    if (src == kNullAddr) {
      continue;
    }
    src = dsm_->ResolveAddr(src);
    if (!live.Live(src)) {
      continue;
    }
    const ObjectHeader* header = store_->HeaderOf(src);
    if (stub.slot >= header->size_slots || !store_->SlotIsRef(src, stub.slot)) {
      continue;
    }
    Gaddr value = store_->ReadSlot(src, stub.slot);
    if (value == kNullAddr || dsm_->ResolveAddr(value) != dsm_->ResolveAddr(stub.target_addr)) {
      continue;  // overwritten; the barrier created a fresh stub for the new target
    }
    stub.target_addr = dsm_->ResolveAddr(stub.target_addr);
    inter.push_back(stub);
  }
  state.inter_stubs = std::move(inter);

  // Intra-bunch stubs survive while the object is live locally — including
  // live only through an intra-bunch scion, which is what keeps ownership
  // chains (new owner → older owner → oldest stub holder) connected.
  std::vector<IntraStub> intra;
  for (const IntraStub& stub : state.intra_stubs) {
    Gaddr addr = store_->AddrOfOid(stub.oid);
    if (addr != kNullAddr && live.Live(dsm_->ResolveAddr(addr))) {
      intra.push_back(stub);
    }
  }
  state.intra_stubs = std::move(intra);

  // Exiting ownerPtrs: one per live *strongly reachable* non-owned local
  // replica.  Objects reachable only via an intra-bunch scion are omitted —
  // §6.2's cycle breaker.
  state.exiting.clear();
  state.exiting_addrs.clear();
  for (Gaddr addr : live.dangling) {
    if (directory_->BunchOfSegment(SegmentOf(addr)) == bunch) {
      state.exiting_addrs.push_back(addr);
    }
  }
  // Sharded per segment (pure reads: headers, liveness, token/routing maps);
  // per-shard rows merge in segment order, which is exactly the order the
  // serial scan appends them — and the order SendReachabilityTables will
  // serialize them in.
  std::vector<SegmentId> segments = store_->SegmentsOfBunch(bunch);
  std::vector<std::vector<std::pair<Oid, NodeId>>> exiting_rows =
      TaskPool::Global().ParallelMap<std::vector<std::pair<Oid, NodeId>>>(
          segments.size(), [&](size_t i) {
            std::vector<std::pair<Oid, NodeId>> rows;
            SegmentImage* image = store_->Find(segments[i]);
            image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
              if (header.forwarded() || live.strong.count(addr) == 0) {
                return;
              }
              if (dsm_->IsLocallyOwned(header.oid)) {
                return;
              }
              // Every live, strongly reachable, non-owned replica contributes
              // an exiting ownerPtr — even when local token bookkeeping is
              // gone (the bytes may have arrived through a stale-copy
              // relocation): omitting it would let the owner's scion cleaner
              // prune our entering entry and the owner's BGC reclaim a live
              // object.
              NodeId owner = dsm_->OwnerHint(header.oid);
              if (owner == kInvalidNode) {
                owner = dsm_->RouteForAddr(addr);
              }
              if (owner != kInvalidNode && owner != id_) {
                rows.emplace_back(header.oid, owner);
              }
            });
            return rows;
          });
  for (const auto& rows : exiting_rows) {
    state.exiting.insert(state.exiting.end(), rows.begin(), rows.end());
  }
}

void GcEngine::SendReachabilityTables(BunchId bunch) {
  BunchState& state = StateOf(bunch);
  state.table_version++;

  ReachabilityTablePayload content;
  content.src_node = id_;
  content.bunch = bunch;
  content.version = state.table_version;
  for (const InterStub& stub : state.inter_stubs) {
    content.inter_stub_ids.push_back(stub.id);
  }
  for (const IntraStub& stub : state.intra_stubs) {
    content.intra_stub_oids.push_back(stub.oid);
  }
  for (const auto& [oid, owner] : state.exiting) {
    content.exiting_oids.push_back(oid);
  }
  content.exiting_addrs = state.exiting_addrs;

  // Destinations: every other replica of the bunch, every node holding a
  // scion matching a stub of the *old or reconstructed* stub table (§4.1),
  // and the owners our exiting ownerPtrs point at.  The accumulated set only
  // grows; a node that stopped mattering merely receives an idempotent table
  // that deletes nothing.
  for (const InterStub& stub : state.inter_stubs) {
    state.table_destinations.insert(stub.scion_node);
  }
  for (const IntraStub& stub : state.intra_stubs) {
    state.table_destinations.insert(stub.scion_node);
  }
  for (const auto& [oid, owner] : state.exiting) {
    state.table_destinations.insert(owner);
  }
  for (Gaddr addr : state.exiting_addrs) {
    NodeId hop = dsm_->RouteForAddr(addr);
    if (hop != kInvalidNode && hop != id_) {
      state.table_destinations.insert(hop);
    }
  }
  std::set<NodeId> destinations = state.table_destinations;
  for (NodeId node : directory_->MappersOf(bunch)) {
    destinations.insert(node);
  }
  destinations.erase(id_);

  for (NodeId dest : destinations) {
    auto payload = std::make_shared<ReachabilityTablePayload>(content);
    network_->Send(id_, dest, std::move(payload));
    stats_.table_messages_sent++;
  }

  // The per-node scion cleaner also consumes locally produced tables: a stub
  // and its scion can live on the same node (both bunches mapped locally).
  ApplyReachabilityTable(content);
}

}  // namespace bmx
