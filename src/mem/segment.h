// One node's image of a globally addressed segment.
//
// "A segment is a set of contiguous virtual memory pages with a constant
// size. BMX ensures that segments have non-overlapping addresses." (§2.1)
//
// Segment contents are described by two bit arrays (paper §8): the object-map
// (a set bit marks the slot where an object's header starts) and the
// reference-map (a set bit marks a slot that holds a pointer).  Both have one
// bit per 8-byte slot.

#ifndef SRC_MEM_SEGMENT_H_
#define SRC_MEM_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/types.h"
#include "src/mem/object.h"

namespace bmx {

class SegmentImage {
 public:
  SegmentImage(SegmentId id, BunchId bunch)
      : id_(id),
        bunch_(bunch),
        bytes_(kSegmentBytes, 0),
        object_map_(kSlotsPerSegment),
        ref_map_(kSlotsPerSegment) {}

  SegmentId id() const { return id_; }
  BunchId bunch() const { return bunch_; }
  Gaddr base() const { return SegmentBase(id_); }

  uint8_t* bytes() { return bytes_.data(); }
  const uint8_t* bytes() const { return bytes_.data(); }

  Bitmap& object_map() { return object_map_; }
  const Bitmap& object_map() const { return object_map_; }
  Bitmap& ref_map() { return ref_map_; }
  const Bitmap& ref_map() const { return ref_map_; }

  bool Contains(Gaddr addr) const { return SegmentOf(addr) == id_; }

  // Header of the object whose data starts at `obj_addr`.
  ObjectHeader* HeaderOf(Gaddr obj_addr) {
    size_t off = OffsetInSegment(obj_addr);
    BMX_CHECK_GE(off, kHeaderBytes);
    return reinterpret_cast<ObjectHeader*>(bytes_.data() + off - kHeaderBytes);
  }
  const ObjectHeader* HeaderOf(Gaddr obj_addr) const {
    return const_cast<SegmentImage*>(this)->HeaderOf(obj_addr);
  }

  uint64_t* SlotPtr(Gaddr obj_addr, size_t slot) {
    size_t off = OffsetInSegment(obj_addr) + slot * kSlotBytes;
    BMX_CHECK_LT(off, kSegmentBytes);
    return reinterpret_cast<uint64_t*>(bytes_.data() + off);
  }

  size_t SlotIndexOf(Gaddr addr) const { return OffsetInSegment(addr) / kSlotBytes; }

  // Bump allocation (only the node that created the segment allocates into
  // it; other replicas receive bytes through the DSM/GC protocols).  Returns
  // the new object's data address, or kNullAddr if the segment is full.
  Gaddr Allocate(Oid oid, uint32_t size_slots);

  // Installs object bytes at a specific address (replica side: a copy pushed
  // by the owner, or an address-update application).  Marks the object-map.
  void InstallObject(Gaddr obj_addr, const ObjectHeader& header, const uint64_t* slots);

  // Removes the object starting at obj_addr from the object-map and zeroes
  // its ref-map bits.  Used when dropping a local replica of an object.
  void EraseObject(Gaddr obj_addr);

  size_t allocated_bytes() const { return cursor_; }
  size_t FreeBytes() const { return kSegmentBytes - cursor_; }
  // For recovery: restore the allocation cursor saved at checkpoint time.
  void set_allocated_bytes(size_t cursor) { cursor_ = cursor; }

  // Iterates object data addresses present in this image, in address order.
  // Word-level scan: empty 64-slot runs of the object-map cost one load.
  // Visitor signature: void(Gaddr obj_addr, ObjectHeader& header).
  template <typename Fn>
  void ForEachObject(Fn&& fn) {
    auto& perf = GlobalPerfCounters();
    perf.words_skipped += object_map_.ForEachSetInRange(0, object_map_.size(), [&](size_t bit) {
      perf.objects_walked++;
      size_t header_off = bit * kSlotBytes;
      auto* header = reinterpret_cast<ObjectHeader*>(bytes_.data() + header_off);
      Gaddr obj_addr = base() + header_off + kHeaderBytes;
      fn(obj_addr, *header);
    });
  }

  // Scan kernel: visits only the *reference* slots of the object whose data
  // starts at `obj_addr`, straight off the ref-map words — a sparse ref-map
  // costs one load per 64 slots instead of one Test per slot.
  // Visitor signature: void(size_t slot, uint64_t value).
  template <typename Fn>
  void ForEachRefSlotOf(Gaddr obj_addr, uint32_t size_slots, Fn&& fn) const {
    const size_t first = SlotIndexOf(obj_addr);
    auto& perf = GlobalPerfCounters();
    perf.slots_scanned += size_slots;
    perf.words_skipped += ref_map_.ForEachSetInRange(first, first + size_slots, [&](size_t bit) {
      perf.ref_slots_visited++;
      const uint64_t* p =
          reinterpret_cast<const uint64_t*>(bytes_.data() + bit * kSlotBytes);
      fn(bit - first, *p);
    });
  }

 private:
  SegmentId id_;
  BunchId bunch_;
  std::vector<uint8_t> bytes_;
  Bitmap object_map_;
  Bitmap ref_map_;
  size_t cursor_ = kSlotBytes;  // slot 0 unused so no object sits at offset 0
};

}  // namespace bmx

#endif  // SRC_MEM_SEGMENT_H_
