// On-heap object layout.
//
// "The object ... consists of a contiguous sequence of bytes ... Each object
// has an header that precedes the object's data, which includes system
// information such as the object's size." (paper §2.1)
//
// An object is addressed by the global address of its first data slot; the
// header occupies the three slots immediately before it.  When a BGC copies
// an object to to-space it writes a forwarding pointer into the header left
// in from-space (paper §4.2); the header is the only part of the old copy
// that stays meaningful.

#ifndef SRC_MEM_OBJECT_H_
#define SRC_MEM_OBJECT_H_

#include <cstdint>

#include "src/common/types.h"

namespace bmx {

inline constexpr uint32_t kObjFlagForwarded = 1u << 0;
// Marks the designated persistent root object (persistence by reachability,
// paper §1/§2.1).
inline constexpr uint32_t kObjFlagPersistentRoot = 1u << 1;

struct ObjectHeader {
  Oid oid = kNullOid;         // stable internal id (DESIGN.md §4)
  uint32_t size_slots = 0;    // number of 8-byte data slots
  uint32_t flags = 0;
  Gaddr forward = kNullAddr;  // new location, valid when kObjFlagForwarded

  bool forwarded() const { return (flags & kObjFlagForwarded) != 0; }
};

static_assert(sizeof(ObjectHeader) == 24, "header must be exactly three slots");

inline constexpr size_t kHeaderSlots = sizeof(ObjectHeader) / kSlotBytes;
inline constexpr size_t kHeaderBytes = sizeof(ObjectHeader);

// Total footprint of an object with `size_slots` data slots.
constexpr size_t ObjectFootprintBytes(uint32_t size_slots) {
  return kHeaderBytes + size_t{size_slots} * kSlotBytes;
}

}  // namespace bmx

#endif  // SRC_MEM_OBJECT_H_
