#include "src/mem/directory.h"

#include <algorithm>

#include "src/common/check.h"

namespace bmx {

BunchId SegmentDirectory::CreateBunch(NodeId creator) {
  BunchId id = next_bunch_++;
  bunches_[id].creator = creator;
  return id;
}

SegmentId SegmentDirectory::AllocateSegment(BunchId bunch, NodeId creator) {
  auto it = bunches_.find(bunch);
  BMX_CHECK(it != bunches_.end()) << "unknown bunch " << bunch;
  SegmentId seg = next_segment_++;
  segments_[seg] = SegmentInfo{bunch, creator};
  it->second.segments.push_back(seg);
  return seg;
}

BunchId SegmentDirectory::BunchOfSegment(SegmentId seg) const {
  auto it = segments_.find(seg);
  BMX_CHECK(it != segments_.end()) << "unknown segment " << seg;
  return it->second.bunch;
}

NodeId SegmentDirectory::SegmentCreator(SegmentId seg) const {
  auto it = segments_.find(seg);
  BMX_CHECK(it != segments_.end()) << "unknown segment " << seg;
  return it->second.creator;
}

NodeId SegmentDirectory::BunchCreator(BunchId bunch) const {
  auto it = bunches_.find(bunch);
  BMX_CHECK(it != bunches_.end()) << "unknown bunch " << bunch;
  return it->second.creator;
}

const std::vector<SegmentId>& SegmentDirectory::SegmentsOfBunch(BunchId bunch) const {
  auto it = bunches_.find(bunch);
  BMX_CHECK(it != bunches_.end()) << "unknown bunch " << bunch;
  return it->second.segments;
}

void SegmentDirectory::RetireSegment(SegmentId seg) {
  auto it = segments_.find(seg);
  BMX_CHECK(it != segments_.end()) << "unknown segment " << seg;
  auto& segs = bunches_.at(it->second.bunch).segments;
  segs.erase(std::remove(segs.begin(), segs.end(), seg), segs.end());
  it->second.retired = true;
}

bool SegmentDirectory::IsRetired(SegmentId seg) const {
  auto it = segments_.find(seg);
  BMX_CHECK(it != segments_.end()) << "unknown segment " << seg;
  return it->second.retired;
}

void SegmentDirectory::NoteMapped(BunchId bunch, NodeId node) {
  auto it = bunches_.find(bunch);
  BMX_CHECK(it != bunches_.end()) << "unknown bunch " << bunch;
  it->second.mappers.insert(node);
}

void SegmentDirectory::NoteUnmapped(BunchId bunch, NodeId node) {
  auto it = bunches_.find(bunch);
  BMX_CHECK(it != bunches_.end()) << "unknown bunch " << bunch;
  it->second.mappers.erase(node);
}

const std::set<NodeId>& SegmentDirectory::MappersOf(BunchId bunch) const {
  auto it = bunches_.find(bunch);
  BMX_CHECK(it != bunches_.end()) << "unknown bunch " << bunch;
  return it->second.mappers;
}

bool SegmentDirectory::IsMappedAt(BunchId bunch, NodeId node) const {
  auto it = bunches_.find(bunch);
  if (it == bunches_.end()) {
    return false;
  }
  return it->second.mappers.count(node) > 0;
}

std::vector<BunchId> SegmentDirectory::AllBunches() const {
  std::vector<BunchId> out;
  out.reserve(bunches_.size());
  for (const auto& [id, info] : bunches_) {
    out.push_back(id);
  }
  return out;
}

}  // namespace bmx
