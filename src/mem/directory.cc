#include "src/mem/directory.h"

#include <algorithm>

#include "src/common/check.h"

namespace bmx {

BunchId SegmentDirectory::CreateBunch(NodeId creator) {
  BunchId id = static_cast<BunchId>(bunches_.size());
  bunches_.emplace_back();
  bunches_[id].creator = creator;
  return id;
}

SegmentId SegmentDirectory::AllocateSegment(BunchId bunch, NodeId creator) {
  BMX_CHECK(BunchExists(bunch)) << "unknown bunch " << bunch;
  SegmentId seg = static_cast<SegmentId>(segments_.size());
  segments_.push_back(SegmentInfo{bunch, creator});
  bunches_[bunch].segments.push_back(seg);
  return seg;
}

const SegmentDirectory::SegmentInfo& SegmentDirectory::SegmentAt(SegmentId seg) const {
  GlobalPerfCounters().directory_probes++;
  BMX_CHECK(seg >= 1 && seg < segments_.size()) << "unknown segment " << seg;
  return segments_[seg];
}

BunchId SegmentDirectory::BunchOfSegment(SegmentId seg) const { return SegmentAt(seg).bunch; }

NodeId SegmentDirectory::SegmentCreator(SegmentId seg) const { return SegmentAt(seg).creator; }

NodeId SegmentDirectory::BunchCreator(BunchId bunch) const {
  GlobalPerfCounters().directory_probes++;
  BMX_CHECK(BunchExists(bunch)) << "unknown bunch " << bunch;
  return bunches_[bunch].creator;
}

const std::vector<SegmentId>& SegmentDirectory::SegmentsOfBunch(BunchId bunch) const {
  GlobalPerfCounters().directory_probes++;
  BMX_CHECK(BunchExists(bunch)) << "unknown bunch " << bunch;
  return bunches_[bunch].segments;
}

void SegmentDirectory::RetireSegment(SegmentId seg) {
  const SegmentInfo& info = SegmentAt(seg);
  auto& segs = bunches_[info.bunch].segments;
  segs.erase(std::remove(segs.begin(), segs.end(), seg), segs.end());
  segments_[seg].retired = true;
}

bool SegmentDirectory::IsRetired(SegmentId seg) const { return SegmentAt(seg).retired; }

void SegmentDirectory::NoteMapped(BunchId bunch, NodeId node) {
  BMX_CHECK(BunchExists(bunch)) << "unknown bunch " << bunch;
  bunches_[bunch].mappers.insert(node);
}

void SegmentDirectory::NoteUnmapped(BunchId bunch, NodeId node) {
  BMX_CHECK(BunchExists(bunch)) << "unknown bunch " << bunch;
  bunches_[bunch].mappers.erase(node);
}

const std::set<NodeId>& SegmentDirectory::MappersOf(BunchId bunch) const {
  GlobalPerfCounters().directory_probes++;
  BMX_CHECK(BunchExists(bunch)) << "unknown bunch " << bunch;
  return bunches_[bunch].mappers;
}

bool SegmentDirectory::IsMappedAt(BunchId bunch, NodeId node) const {
  if (!BunchExists(bunch)) {
    return false;
  }
  return bunches_[bunch].mappers.count(node) > 0;
}

std::vector<BunchId> SegmentDirectory::AllBunches() const {
  std::vector<BunchId> out;
  out.reserve(bunches_.size() - 1);
  for (BunchId id = 1; id < bunches_.size(); ++id) {
    out.push_back(id);
  }
  return out;
}

}  // namespace bmx
