#include "src/mem/replica_store.h"

#include <algorithm>

#include "src/common/check.h"

namespace bmx {

SegmentImage& ReplicaStore::GetOrCreate(SegmentId seg, BunchId bunch) {
  auto it = segments_.find(seg);
  if (it == segments_.end()) {
    it = segments_.emplace(seg, std::make_unique<SegmentImage>(seg, bunch)).first;
  }
  return *it->second;
}

void ReplicaStore::Drop(SegmentId seg) {
  // Bump the global MRU epoch so no thread's cache entry — ours or a pool
  // worker's — can keep pointing at the dropped image.
  InvalidateMruEverywhere();
  segments_.erase(seg);
}

ObjectHeader* ReplicaStore::HeaderOf(Gaddr obj_addr) {
  SegmentImage* image = SegmentFor(obj_addr);
  return image == nullptr ? nullptr : image->HeaderOf(obj_addr);
}

const ObjectHeader* ReplicaStore::HeaderOf(Gaddr obj_addr) const {
  return const_cast<ReplicaStore*>(this)->HeaderOf(obj_addr);
}

Gaddr ReplicaStore::ResolveForward(Gaddr addr) const {
  Gaddr current = addr;
  // A forwarding chain can have several hops if the object moved more than
  // once before this node caught up; bounded by hop budget as a safety net.
  for (int hops = 0; hops < 64; ++hops) {
    const SegmentImage* image = SegmentFor(current);
    if (image == nullptr) {
      return current;
    }
    size_t off = OffsetInSegment(current);
    if (off < kHeaderBytes) {
      return current;
    }
    // Only treat the address as an object if the object-map confirms a header
    // there; a stale address into reused space must not be chased.
    size_t header_slot = (off - kHeaderBytes) / kSlotBytes;
    if (!image->object_map().Test(header_slot)) {
      return current;
    }
    const ObjectHeader* header = image->HeaderOf(current);
    if (!header->forwarded()) {
      return current;
    }
    current = header->forward;
  }
  BMX_CHECK(false) << "forwarding chain too long at addr " << addr;
  return current;
}

bool ReplicaStore::HasObjectAt(Gaddr addr) const {
  const SegmentImage* image = SegmentFor(addr);
  if (image == nullptr) {
    return false;
  }
  size_t off = OffsetInSegment(addr);
  if (off < kHeaderBytes) {
    return false;
  }
  return image->object_map().Test((off - kHeaderBytes) / kSlotBytes);
}

uint64_t ReplicaStore::ReadSlot(Gaddr obj_addr, size_t slot) const {
  const SegmentImage* image = SegmentFor(obj_addr);
  BMX_CHECK(image != nullptr) << "segment unmapped for addr " << obj_addr;
  return *const_cast<SegmentImage*>(image)->SlotPtr(obj_addr, slot);
}

void ReplicaStore::WriteSlot(Gaddr obj_addr, size_t slot, uint64_t value) {
  SegmentImage* image = SegmentFor(obj_addr);
  BMX_CHECK(image != nullptr) << "segment unmapped for addr " << obj_addr;
  *image->SlotPtr(obj_addr, slot) = value;
}

bool ReplicaStore::SlotIsRef(Gaddr obj_addr, size_t slot) const {
  const SegmentImage* image = SegmentFor(obj_addr);
  BMX_CHECK(image != nullptr);
  return image->ref_map().Test(image->SlotIndexOf(obj_addr) + slot);
}

void ReplicaStore::SetSlotIsRef(Gaddr obj_addr, size_t slot, bool is_ref) {
  SegmentImage* image = SegmentFor(obj_addr);
  BMX_CHECK(image != nullptr);
  size_t bit = image->SlotIndexOf(obj_addr) + slot;
  if (is_ref) {
    image->ref_map().Set(bit);
  } else {
    image->ref_map().Clear(bit);
  }
}

Gaddr ReplicaStore::AddrOfOid(Oid oid) const {
  GlobalPerfCounters().oid_probes++;
  auto it = oid_addr_.find(oid);
  return it == oid_addr_.end() ? kNullAddr : it->second;
}

void ReplicaStore::SetAddrOfOid(Oid oid, Gaddr addr) { oid_addr_[oid] = addr; }

void ReplicaStore::ForgetOid(Oid oid) { oid_addr_.erase(oid); }

std::vector<SegmentId> ReplicaStore::SegmentsOfBunch(BunchId bunch) const {
  std::vector<SegmentId> out;
  for (const auto& [id, image] : segments_) {
    if (image->bunch() == bunch) {
      out.push_back(id);
    }
  }
  // The backing table is unordered; callers (GC scans, persistence) depend on
  // ascending segment order for determinism.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SegmentId> ReplicaStore::AllSegments() const {
  std::vector<SegmentId> out;
  out.reserve(segments_.size());
  for (const auto& [id, image] : segments_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ReplicaStore::CopyObjectBytes(Gaddr from_addr, Gaddr to_addr) {
  SegmentImage* src = SegmentFor(from_addr);
  SegmentImage* dst = SegmentFor(to_addr);
  BMX_CHECK(src != nullptr && dst != nullptr);
  ObjectHeader* src_header = src->HeaderOf(from_addr);
  ObjectHeader copy = *src_header;
  copy.flags &= ~kObjFlagForwarded;
  copy.forward = kNullAddr;
  dst->InstallObject(to_addr, copy, src->SlotPtr(from_addr, 0));
  // Reference-map bits travel with the object: clear the destination range,
  // then set only the bits the source ref-map has (word-level scan).
  size_t src_first = src->SlotIndexOf(from_addr);
  size_t dst_first = dst->SlotIndexOf(to_addr);
  for (size_t i = 0; i < copy.size_slots; ++i) {
    dst->ref_map().Clear(dst_first + i);
  }
  src->ref_map().ForEachSetInRange(src_first, src_first + copy.size_slots, [&](size_t bit) {
    dst->ref_map().Set(dst_first + (bit - src_first));
  });
}

}  // namespace bmx
