// Per-node heap: the set of segment images this node has mapped, plus the
// node's view of where each object currently lives.
//
// Different nodes legitimately see the same object at different addresses
// after an asynchronous BGC (paper §4.2): the old address keeps a forwarding
// header until every reference is updated.  ResolveForward() implements the
// local half of that contract; the oid→address table is this node's lazily
// updated knowledge of new locations (fed by piggybacked address updates).
//
// Hot-path layout: both tables are open-addressing hash maps (protocol
// behaviour never depends on their iteration order — SegmentsOfBunch /
// AllSegments sort their output), and SegmentFor carries a one-entry MRU
// cache because slot-granular callers (ReadSlot/WriteSlot/SlotIsRef) probe
// the same segment dozens of times in a row.  The MRU entry is *thread-local*
// (keyed by store identity) so concurrent shard readers — parallel BGC
// phases, oracle audits, explorer fleets — never share cache state; a global
// epoch, bumped whenever any store drops a segment or dies, invalidates every
// thread's entry so a stale hit can never outlive the image it points at.

#ifndef SRC_MEM_REPLICA_STORE_H_
#define SRC_MEM_REPLICA_STORE_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/perf_counters.h"
#include "src/common/types.h"
#include "src/mem/object.h"
#include "src/mem/segment.h"

namespace bmx {

class ReplicaStore {
 public:
  ~ReplicaStore() { InvalidateMruEverywhere(); }

  bool HasSegment(SegmentId seg) const { return segments_.count(seg) > 0; }

  SegmentImage* Find(SegmentId seg) {
    GlobalPerfCounters().segment_probes++;
    MruEntry& mru = ThreadMru();
    uint64_t epoch = MruEpoch().load(std::memory_order_acquire);
    if (mru.store == this && mru.seg == seg && mru.epoch == epoch) {
      GlobalPerfCounters().segment_mru_hits++;
      return mru.image;
    }
    auto it = segments_.find(seg);
    if (it == segments_.end()) {
      return nullptr;
    }
    mru = MruEntry{this, seg, it->second.get(), epoch};
    return mru.image;
  }
  const SegmentImage* Find(SegmentId seg) const {
    return const_cast<ReplicaStore*>(this)->Find(seg);
  }

  SegmentImage& GetOrCreate(SegmentId seg, BunchId bunch);
  void Drop(SegmentId seg);

  // Segment image containing `addr`, or nullptr if unmapped locally.
  SegmentImage* SegmentFor(Gaddr addr) { return Find(SegmentOf(addr)); }
  const SegmentImage* SegmentFor(Gaddr addr) const { return Find(SegmentOf(addr)); }

  // Header of the object at `obj_addr`; nullptr when its segment is unmapped.
  ObjectHeader* HeaderOf(Gaddr obj_addr);
  const ObjectHeader* HeaderOf(Gaddr obj_addr) const;

  // Follows locally visible forwarding headers to the most current address
  // this node knows for the object nominally at `addr`.
  Gaddr ResolveForward(Gaddr addr) const;

  // True if a mapped segment's object-map confirms an object header for data
  // address `addr` (forwarders count: their headers stay in the object-map).
  bool HasObjectAt(Gaddr addr) const;

  // Raw slot access (no barrier, no token check — callers layer those).
  uint64_t ReadSlot(Gaddr obj_addr, size_t slot) const;
  void WriteSlot(Gaddr obj_addr, size_t slot, uint64_t value);
  bool SlotIsRef(Gaddr obj_addr, size_t slot) const;
  void SetSlotIsRef(Gaddr obj_addr, size_t slot, bool is_ref);

  // Scan kernel: one segment lookup for the whole object, then a word-level
  // ref-map walk.  Replaces per-slot SlotIsRef+ReadSlot loops on the GC and
  // grant-fill hot paths.  Visitor signature: void(size_t slot, uint64_t value).
  template <typename Fn>
  void ForEachRefSlot(Gaddr obj_addr, uint32_t size_slots, Fn&& fn) const {
    const SegmentImage* image = SegmentFor(obj_addr);
    BMX_CHECK(image != nullptr) << "segment unmapped for addr " << obj_addr;
    image->ForEachRefSlotOf(obj_addr, size_slots, static_cast<Fn&&>(fn));
  }

  // This node's current address for an object id; kNullAddr when unknown.
  Gaddr AddrOfOid(Oid oid) const;
  void SetAddrOfOid(Oid oid, Gaddr addr);
  void ForgetOid(Oid oid);

  std::vector<SegmentId> SegmentsOfBunch(BunchId bunch) const;
  std::vector<SegmentId> AllSegments() const;

  // Copies the full object (header + slots + ref-map bits) from a mapped
  // source address to a destination address whose segment must be mapped.
  void CopyObjectBytes(Gaddr from_addr, Gaddr to_addr);

 private:
  // One-entry MRU segment cache, one per thread.  `epoch` snapshots the
  // global invalidation epoch at fill time: Drop() and ~ReplicaStore() bump
  // the epoch, so entries on *other* threads (which cannot be cleared
  // directly) go stale instead of dangling.  Store identity is part of the
  // key, so several nodes' stores interleaved on one thread never cross-hit.
  struct MruEntry {
    const ReplicaStore* store = nullptr;
    SegmentId seg = 0;
    SegmentImage* image = nullptr;
    uint64_t epoch = 0;
  };
  static MruEntry& ThreadMru() {
    static thread_local MruEntry entry;
    return entry;
  }
  static std::atomic<uint64_t>& MruEpoch() {
    static std::atomic<uint64_t> epoch{1};
    return epoch;
  }
  static void InvalidateMruEverywhere() {
    MruEpoch().fetch_add(1, std::memory_order_acq_rel);
  }

  std::unordered_map<SegmentId, std::unique_ptr<SegmentImage>> segments_;
  std::unordered_map<Oid, Gaddr> oid_addr_;
};

}  // namespace bmx

#endif  // SRC_MEM_REPLICA_STORE_H_
