// Per-node heap: the set of segment images this node has mapped, plus the
// node's view of where each object currently lives.
//
// Different nodes legitimately see the same object at different addresses
// after an asynchronous BGC (paper §4.2): the old address keeps a forwarding
// header until every reference is updated.  ResolveForward() implements the
// local half of that contract; the oid→address table is this node's lazily
// updated knowledge of new locations (fed by piggybacked address updates).

#ifndef SRC_MEM_REPLICA_STORE_H_
#define SRC_MEM_REPLICA_STORE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/mem/object.h"
#include "src/mem/segment.h"

namespace bmx {

class ReplicaStore {
 public:
  bool HasSegment(SegmentId seg) const { return segments_.count(seg) > 0; }

  SegmentImage* Find(SegmentId seg) {
    auto it = segments_.find(seg);
    return it == segments_.end() ? nullptr : it->second.get();
  }
  const SegmentImage* Find(SegmentId seg) const {
    auto it = segments_.find(seg);
    return it == segments_.end() ? nullptr : it->second.get();
  }

  SegmentImage& GetOrCreate(SegmentId seg, BunchId bunch);
  void Drop(SegmentId seg);

  // Segment image containing `addr`, or nullptr if unmapped locally.
  SegmentImage* SegmentFor(Gaddr addr) { return Find(SegmentOf(addr)); }
  const SegmentImage* SegmentFor(Gaddr addr) const { return Find(SegmentOf(addr)); }

  // Header of the object at `obj_addr`; nullptr when its segment is unmapped.
  ObjectHeader* HeaderOf(Gaddr obj_addr);
  const ObjectHeader* HeaderOf(Gaddr obj_addr) const;

  // Follows locally visible forwarding headers to the most current address
  // this node knows for the object nominally at `addr`.
  Gaddr ResolveForward(Gaddr addr) const;

  // True if a mapped segment's object-map confirms an object header for data
  // address `addr` (forwarders count: their headers stay in the object-map).
  bool HasObjectAt(Gaddr addr) const;

  // Raw slot access (no barrier, no token check — callers layer those).
  uint64_t ReadSlot(Gaddr obj_addr, size_t slot) const;
  void WriteSlot(Gaddr obj_addr, size_t slot, uint64_t value);
  bool SlotIsRef(Gaddr obj_addr, size_t slot) const;
  void SetSlotIsRef(Gaddr obj_addr, size_t slot, bool is_ref);

  // This node's current address for an object id; kNullAddr when unknown.
  Gaddr AddrOfOid(Oid oid) const;
  const std::map<Oid, Gaddr>& oid_addresses() const { return oid_addr_; }
  void SetAddrOfOid(Oid oid, Gaddr addr);
  void ForgetOid(Oid oid);

  std::vector<SegmentId> SegmentsOfBunch(BunchId bunch) const;
  std::vector<SegmentId> AllSegments() const;

  // Copies the full object (header + slots + ref-map bits) from a mapped
  // source address to a destination address whose segment must be mapped.
  void CopyObjectBytes(Gaddr from_addr, Gaddr to_addr);

 private:
  std::map<SegmentId, std::unique_ptr<SegmentImage>> segments_;
  std::map<Oid, Gaddr> oid_addr_;
};

}  // namespace bmx

#endif  // SRC_MEM_REPLICA_STORE_H_
