// Global segment directory — the role the BMX-server plays in the prototype
// (paper §8): "A BMX-server runs on every node in the system and provides
// basic services, such as allocation of non-overlapping segments."
//
// The directory is the authority for: fresh segment addresses, fresh bunch
// ids, fresh object ids, segment→bunch membership, the creator node of each
// segment/bunch, and which nodes currently have each bunch mapped.  In a real
// deployment this state is itself replicated between the per-node servers;
// here it is a single shared structure, which the simulation may consult
// without message cost only for operations the paper assigns to the local
// BMX-server.

#ifndef SRC_MEM_DIRECTORY_H_
#define SRC_MEM_DIRECTORY_H_

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/perf_counters.h"
#include "src/common/types.h"

namespace bmx {

class SegmentDirectory {
 public:
  SegmentDirectory() = default;

  BunchId CreateBunch(NodeId creator);
  SegmentId AllocateSegment(BunchId bunch, NodeId creator);
  Oid NextOid() { return next_oid_++; }

  bool BunchExists(BunchId bunch) const { return bunch >= 1 && bunch < bunches_.size(); }
  BunchId BunchOfSegment(SegmentId seg) const;
  NodeId SegmentCreator(SegmentId seg) const;
  NodeId BunchCreator(BunchId bunch) const;
  const std::vector<SegmentId>& SegmentsOfBunch(BunchId bunch) const;

  // Removes a segment from its bunch (after from-space reclamation frees it,
  // paper §4.5).  The address range is never reissued; a tombstone keeps
  // bunch/creator lookups working for nodes still holding stale images.
  void RetireSegment(SegmentId seg);
  bool IsRetired(SegmentId seg) const;

  // Authoritative object-location/owner registry — the BMX-server's
  // knowledge.  In the paper's page-based DSM every node of a mapped bunch
  // can resolve any address through its own (possibly stale) pages; this
  // byte-lazy simulation instead lets per-node resolution state erode, so
  // the directory keeps the ground truth as a routing *backstop*.  The
  // per-node mechanisms — in-heap forwarders, piggybacked address updates,
  // ownerPtr chains with Li-style compression — remain the fast path and are
  // what the tests and benchmarks measure.
  void RecordOwner(Oid oid, NodeId owner) { owners_[oid] = owner; }
  NodeId OwnerOf(Oid oid) const {
    GlobalPerfCounters().directory_probes++;
    auto it = owners_.find(oid);
    return it == owners_.end() ? kInvalidNode : it->second;
  }
  void ForgetOwner(Oid oid) { owners_.erase(oid); }
  // Sorted list of every oid whose owner of record is `node`.  Recovery uses
  // it to enumerate a restarted node's ownership claims and forget vacuous
  // ones (owned on paper, bytes nowhere — e.g. an allocation that never
  // reached a checkpoint).
  std::vector<Oid> OwnedBy(NodeId node) const {
    std::vector<Oid> out;
    for (const auto& [oid, owner] : owners_) {
      if (owner == node) {
        out.push_back(oid);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // Every global address an object has ever occupied maps to its oid; the
  // oid maps to its current canonical address (owner's copy).
  void RecordObjectAddress(Oid oid, Gaddr addr) {
    addr_to_oid_[addr] = oid;
    oid_to_addr_[oid] = addr;
  }
  Oid OidAtAddress(Gaddr addr) const {
    GlobalPerfCounters().directory_probes++;
    auto it = addr_to_oid_.find(addr);
    return it == addr_to_oid_.end() ? kNullOid : it->second;
  }
  Gaddr CanonicalAddressOf(Oid oid) const {
    GlobalPerfCounters().directory_probes++;
    auto it = oid_to_addr_.find(oid);
    return it == oid_to_addr_.end() ? kNullAddr : it->second;
  }
  void ForgetObjectAddresses(Oid oid) {
    // Called when an object is reclaimed at its owner (globally dead).
    // Value-erase over an unordered table: no caller observes the order.
    oid_to_addr_.erase(oid);
    for (auto a = addr_to_oid_.begin(); a != addr_to_oid_.end();) {
      a = a->second == oid ? addr_to_oid_.erase(a) : ++a;
    }
    owners_.erase(oid);
  }

  void NoteMapped(BunchId bunch, NodeId node);
  void NoteUnmapped(BunchId bunch, NodeId node);
  const std::set<NodeId>& MappersOf(BunchId bunch) const;
  bool IsMappedAt(BunchId bunch, NodeId node) const;

  std::vector<BunchId> AllBunches() const;

 private:
  struct BunchInfo {
    NodeId creator = kInvalidNode;
    std::vector<SegmentId> segments;
    std::set<NodeId> mappers;
  };
  struct SegmentInfo {
    BunchId bunch = kInvalidBunch;
    NodeId creator = kInvalidNode;
    bool retired = false;
  };

  const SegmentInfo& SegmentAt(SegmentId seg) const;

  Oid next_oid_ = 1;
  // Bunch/segment ids are issued densely starting at 1 (segment 0 reserved so
  // global address 0 is never a valid slot), so the registries are flat
  // vectors indexed by id — slot 0 of each is an unused sentinel.  Neither
  // bunches nor segments are ever deleted (retirement is a tombstone flag).
  std::vector<BunchInfo> bunches_{1};
  std::vector<SegmentInfo> segments_{1};
  std::unordered_map<Oid, NodeId> owners_;
  std::unordered_map<Gaddr, Oid> addr_to_oid_;
  std::unordered_map<Oid, Gaddr> oid_to_addr_;
};

}  // namespace bmx

#endif  // SRC_MEM_DIRECTORY_H_
