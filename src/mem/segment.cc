#include "src/mem/segment.h"

#include <cstring>

namespace bmx {

Gaddr SegmentImage::Allocate(Oid oid, uint32_t size_slots) {
  size_t footprint = ObjectFootprintBytes(size_slots);
  if (cursor_ + footprint > kSegmentBytes) {
    return kNullAddr;
  }
  size_t header_off = cursor_;
  cursor_ += footprint;

  auto* header = reinterpret_cast<ObjectHeader*>(bytes_.data() + header_off);
  header->oid = oid;
  header->size_slots = size_slots;
  header->flags = 0;
  header->forward = kNullAddr;
  std::memset(bytes_.data() + header_off + kHeaderBytes, 0, size_t{size_slots} * kSlotBytes);

  object_map_.Set(header_off / kSlotBytes);
  return base() + header_off + kHeaderBytes;
}

void SegmentImage::InstallObject(Gaddr obj_addr, const ObjectHeader& header,
                                 const uint64_t* slots) {
  size_t data_off = OffsetInSegment(obj_addr);
  BMX_CHECK_GE(data_off, kHeaderBytes);
  size_t header_off = data_off - kHeaderBytes;
  BMX_CHECK_LE(data_off + size_t{header.size_slots} * kSlotBytes, kSegmentBytes);

  std::memcpy(bytes_.data() + header_off, &header, kHeaderBytes);
  if (header.size_slots > 0 && slots != nullptr) {
    std::memcpy(bytes_.data() + data_off, slots, size_t{header.size_slots} * kSlotBytes);
  }
  object_map_.Set(header_off / kSlotBytes);
  // Track the high-water mark so a replica image that later becomes a copy
  // source knows its extent.
  size_t end = data_off + size_t{header.size_slots} * kSlotBytes;
  if (end > cursor_) {
    cursor_ = end;
  }
}

void SegmentImage::EraseObject(Gaddr obj_addr) {
  size_t data_off = OffsetInSegment(obj_addr);
  BMX_CHECK_GE(data_off, kHeaderBytes);
  size_t header_off = data_off - kHeaderBytes;
  auto* header = reinterpret_cast<ObjectHeader*>(bytes_.data() + header_off);
  size_t first_slot = data_off / kSlotBytes;
  for (size_t i = 0; i < header->size_slots; ++i) {
    ref_map_.Clear(first_slot + i);
  }
  object_map_.Clear(header_off / kSlotBytes);
  std::memset(bytes_.data() + header_off, 0, ObjectFootprintBytes(header->size_slots));
}

}  // namespace bmx
