#include "src/rvm/disk.h"

#include <cstring>

#include "src/common/check.h"

namespace bmx {

bool Disk::Exists(const std::string& name) const { return files_.count(name) > 0; }

size_t Disk::FileSize(const std::string& name) const {
  auto it = files_.find(name);
  BMX_CHECK(it != files_.end()) << "no such file: " << name;
  return it->second.size();
}

void Disk::Create(const std::string& name, size_t size) {
  files_[name] = std::vector<uint8_t>(size, 0);
  stats_.writes++;
  stats_.bytes_written += size;
}

void Disk::Remove(const std::string& name) { files_.erase(name); }

void Disk::Write(const std::string& name, size_t offset, const uint8_t* data, size_t len) {
  auto& file = files_[name];
  if (file.size() < offset + len) {
    file.resize(offset + len, 0);
  }
  std::memcpy(file.data() + offset, data, len);
  stats_.writes++;
  stats_.bytes_written += len;
}

void Disk::Append(const std::string& name, const uint8_t* data, size_t len) {
  auto& file = files_[name];
  file.insert(file.end(), data, data + len);
  stats_.writes++;
  stats_.bytes_written += len;
}

void Disk::Read(const std::string& name, size_t offset, uint8_t* out, size_t len) const {
  auto it = files_.find(name);
  BMX_CHECK(it != files_.end()) << "no such file: " << name;
  BMX_CHECK_LE(offset + len, it->second.size()) << "short read from " << name;
  std::memcpy(out, it->second.data() + offset, len);
  stats_.reads++;
  stats_.bytes_read += len;
}

const std::vector<uint8_t>& Disk::Contents(const std::string& name) const {
  auto it = files_.find(name);
  BMX_CHECK(it != files_.end()) << "no such file: " << name;
  stats_.reads++;
  stats_.bytes_read += it->second.size();
  return it->second;
}

void Disk::Truncate(const std::string& name, size_t new_size) {
  auto it = files_.find(name);
  BMX_CHECK(it != files_.end()) << "no such file: " << name;
  it->second.resize(new_size, 0);
}

std::vector<std::string> Disk::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, data] : files_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace bmx
