// Simulated stable storage.
//
// The BMX prototype (paper §8) backs each segment with a Unix file and logs
// changes through RVM.  This Disk stands in for the stable-storage layer: a
// set of named flat files whose contents survive a simulated node crash
// (volatile state is discarded; Disk contents are not).  Each Write() call is
// atomic and durable, matching the guarantee a real implementation gets from
// synchronous writes.

#ifndef SRC_RVM_DISK_H_
#define SRC_RVM_DISK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bmx {

struct DiskStats {
  uint64_t writes = 0;
  uint64_t bytes_written = 0;
  uint64_t reads = 0;
  uint64_t bytes_read = 0;
};

class Disk {
 public:
  bool Exists(const std::string& name) const;
  size_t FileSize(const std::string& name) const;

  // Creates a zero-filled file (truncating any existing one).
  void Create(const std::string& name, size_t size);
  void Remove(const std::string& name);

  // Writes len bytes at offset, growing the file if needed.
  void Write(const std::string& name, size_t offset, const uint8_t* data, size_t len);
  void Append(const std::string& name, const uint8_t* data, size_t len);

  void Read(const std::string& name, size_t offset, uint8_t* out, size_t len) const;
  const std::vector<uint8_t>& Contents(const std::string& name) const;

  void Truncate(const std::string& name, size_t new_size);

  std::vector<std::string> ListFiles() const;

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }

 private:
  std::map<std::string, std::vector<uint8_t>> files_;
  mutable DiskStats stats_;
};

}  // namespace bmx

#endif  // SRC_RVM_DISK_H_
