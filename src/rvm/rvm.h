// Lightweight recoverable virtual memory, after Satyanarayanan et al. (SOSP
// '93), the substrate the BMX prototype uses for persistence (paper §2.1,
// §8): "after a bunch is mapped into memory, every modification performed on
// the bunch's range of addresses has an associated log entry and can be
// recovered after a system failure."
//
// The model follows LRVM:
//   * External data files are mapped to regions of volatile memory.
//   * A transaction brackets modifications; set_range declares the byte range
//     about to be modified.  An in-memory undo copy supports abort.
//   * Commit writes redo records (the new values) to a disk-based log, then a
//     commit marker.  No-flush commits are supported for bounded-persistence
//     callers (the garbage collector uses them; O'Toole et al. style).
//   * Truncation applies the committed log prefix to the data files and
//     resets the log.
//   * Recovery (after a crash that loses all volatile state) replays the
//     committed transactions from the log into the data files; uncommitted
//     tail records are discarded.

#ifndef SRC_RVM_RVM_H_
#define SRC_RVM_RVM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/rvm/disk.h"

namespace bmx {

using TxId = uint64_t;

struct RvmStats {
  uint64_t transactions_committed = 0;
  uint64_t transactions_aborted = 0;
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  uint64_t truncations = 0;
  uint64_t recovered_transactions = 0;
};

class Rvm {
 public:
  // log_name identifies this manager's log file on `disk`.  An existing log
  // is left in place so that Recover() can replay it.  `owner` names the node
  // this manager belongs to for crash-point fault injection (kInvalidNode for
  // standalone use: no armed schedule can target it).
  Rvm(Disk* disk, std::string log_name, NodeId owner = kInvalidNode);

  // Associates an external data file with a region of volatile memory and
  // loads the file's current contents into it.  Creates the file (zero
  // filled) if it does not exist.  The memory must outlive the mapping.
  void MapRegion(const std::string& file, uint8_t* mem, size_t len);
  // Registers the mapping without loading the file into memory — used when
  // the in-memory image is already the authoritative newer state (checkpoint
  // of a live segment).  Creates the file if absent.
  void MapRegionAdopt(const std::string& file, uint8_t* mem, size_t len);
  void UnmapRegion(const std::string& file);
  bool IsMapped(const std::string& file) const;

  TxId BeginTransaction();

  // Declares that [offset, offset+len) of `file`'s mapped region is about to
  // be modified by `tx`.  Snapshots the old value for abort.
  void SetRange(TxId tx, const std::string& file, size_t offset, size_t len);

  // Durably logs the new values of every declared range.
  void CommitTransaction(TxId tx);

  // Restores every declared range to its pre-transaction value.
  void AbortTransaction(TxId tx);

  // Applies the committed log to the data files and clears the log.
  void TruncateLog();

  // Replays committed transactions from the log into the data files (call
  // after a crash, before MapRegion).  Idempotent.
  void Recover();

  size_t LogSizeBytes() const;
  const RvmStats& stats() const { return stats_; }

 private:
  struct Range {
    std::string file;
    size_t offset = 0;
    std::vector<uint8_t> undo;  // old value, for abort
  };
  struct OpenTx {
    std::vector<Range> ranges;
  };
  struct Region {
    uint8_t* mem = nullptr;
    size_t len = 0;
  };

  void AppendRedoRecords(const OpenTx& tx, TxId id);

  Disk* disk_;
  std::string log_name_;
  NodeId owner_ = kInvalidNode;
  TxId next_tx_ = 1;
  std::map<TxId, OpenTx> open_;
  std::map<std::string, Region> regions_;
  RvmStats stats_;
};

}  // namespace bmx

#endif  // SRC_RVM_RVM_H_
