#include "src/rvm/rvm.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/fault_injector.h"

namespace bmx {

namespace {

constexpr uint8_t kRecRange = 1;
constexpr uint8_t kRecCommit = 2;

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (i * 8)));
  }
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (i * 8)));
  }
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= uint64_t{p[i]} << (i * 8);
  }
  return v;
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= uint32_t{p[i]} << (i * 8);
  }
  return v;
}

}  // namespace

Rvm::Rvm(Disk* disk, std::string log_name, NodeId owner)
    : disk_(disk), log_name_(std::move(log_name)), owner_(owner) {
  BMX_CHECK(disk_ != nullptr);
  if (!disk_->Exists(log_name_)) {
    disk_->Create(log_name_, 0);
  }
}

void Rvm::MapRegion(const std::string& file, uint8_t* mem, size_t len) {
  BMX_CHECK(mem != nullptr);
  BMX_CHECK(regions_.count(file) == 0) << file << " already mapped";
  if (!disk_->Exists(file)) {
    disk_->Create(file, len);
  }
  size_t on_disk = disk_->FileSize(file);
  size_t to_load = on_disk < len ? on_disk : len;
  if (to_load > 0) {
    disk_->Read(file, 0, mem, to_load);
  }
  if (to_load < len) {
    std::memset(mem + to_load, 0, len - to_load);
  }
  regions_[file] = Region{mem, len};
}

void Rvm::MapRegionAdopt(const std::string& file, uint8_t* mem, size_t len) {
  BMX_CHECK(mem != nullptr);
  BMX_CHECK(regions_.count(file) == 0) << file << " already mapped";
  if (!disk_->Exists(file)) {
    disk_->Create(file, len);
  }
  regions_[file] = Region{mem, len};
}

void Rvm::UnmapRegion(const std::string& file) {
  BMX_CHECK(regions_.count(file) > 0) << file << " not mapped";
  regions_.erase(file);
}

bool Rvm::IsMapped(const std::string& file) const { return regions_.count(file) > 0; }

TxId Rvm::BeginTransaction() {
  TxId id = next_tx_++;
  open_[id] = OpenTx{};
  return id;
}

void Rvm::SetRange(TxId tx, const std::string& file, size_t offset, size_t len) {
  auto tx_it = open_.find(tx);
  BMX_CHECK(tx_it != open_.end()) << "unknown transaction " << tx;
  auto reg_it = regions_.find(file);
  BMX_CHECK(reg_it != regions_.end()) << file << " not mapped";
  BMX_CHECK_LE(offset + len, reg_it->second.len) << "set_range beyond region";

  Range range;
  range.file = file;
  range.offset = offset;
  range.undo.assign(reg_it->second.mem + offset, reg_it->second.mem + offset + len);
  tx_it->second.ranges.push_back(std::move(range));
}

void Rvm::AppendRedoRecords(const OpenTx& tx, TxId id) {
  std::vector<uint8_t> buf;
  for (const Range& r : tx.ranges) {
    const Region& region = regions_.at(r.file);
    buf.clear();
    buf.push_back(kRecRange);
    PutU64(&buf, id);
    PutU32(&buf, static_cast<uint32_t>(r.file.size()));
    buf.insert(buf.end(), r.file.begin(), r.file.end());
    PutU64(&buf, r.offset);
    PutU32(&buf, static_cast<uint32_t>(r.undo.size()));
    // Redo value: the *current* contents of the range (LRVM reads new values
    // at commit time).
    buf.insert(buf.end(), region.mem + r.offset, region.mem + r.offset + r.undo.size());
    disk_->Append(log_name_, buf.data(), buf.size());
    stats_.log_records++;
    stats_.log_bytes += buf.size();
  }
  // Every redo record is on disk but the commit marker is not: a crash here
  // must leave the transaction invisible to Recover().
  FAULT_POINT("rvm.commit.pre_marker", owner_);
  buf.clear();
  buf.push_back(kRecCommit);
  PutU64(&buf, id);
  disk_->Append(log_name_, buf.data(), buf.size());
  stats_.log_records++;
  stats_.log_bytes += buf.size();
}

void Rvm::CommitTransaction(TxId tx) {
  auto it = open_.find(tx);
  BMX_CHECK(it != open_.end()) << "unknown transaction " << tx;
  // Crash before any redo record reaches the log: the transaction's effects
  // exist only in the (dying) volatile image.
  FAULT_POINT("rvm.commit.pre_log", owner_);
  AppendRedoRecords(it->second, tx);
  open_.erase(it);
  stats_.transactions_committed++;
}

void Rvm::AbortTransaction(TxId tx) {
  auto it = open_.find(tx);
  BMX_CHECK(it != open_.end()) << "unknown transaction " << tx;
  // Restore in reverse order so overlapping set_ranges unwind correctly.
  auto& ranges = it->second.ranges;
  for (auto r = ranges.rbegin(); r != ranges.rend(); ++r) {
    const Region& region = regions_.at(r->file);
    std::memcpy(region.mem + r->offset, r->undo.data(), r->undo.size());
  }
  open_.erase(it);
  stats_.transactions_aborted++;
}

void Rvm::TruncateLog() {
  Recover();
  // Crash between applying the committed prefix and resetting the log: the
  // next Recover() replays the same records again, which must be idempotent.
  FAULT_POINT("rvm.truncate.pre_reset", owner_);
  disk_->Truncate(log_name_, 0);
  stats_.truncations++;
}

void Rvm::Recover() {
  const std::vector<uint8_t>& log = disk_->Contents(log_name_);
  // First pass: find committed transaction ids.
  std::map<TxId, bool> committed;
  size_t pos = 0;
  struct ParsedRange {
    TxId tx;
    std::string file;
    uint64_t offset;
    const uint8_t* data;
    uint32_t len;
  };
  std::vector<ParsedRange> ranges;
  while (pos < log.size()) {
    uint8_t type = log[pos];
    if (type == kRecCommit) {
      if (pos + 9 > log.size()) {
        break;  // torn tail
      }
      committed[GetU64(&log[pos + 1])] = true;
      pos += 9;
    } else if (type == kRecRange) {
      if (pos + 13 > log.size()) {
        break;
      }
      TxId tx = GetU64(&log[pos + 1]);
      uint32_t name_len = GetU32(&log[pos + 9]);
      size_t p = pos + 13;
      if (p + name_len + 12 > log.size()) {
        break;
      }
      std::string file(reinterpret_cast<const char*>(&log[p]), name_len);
      p += name_len;
      uint64_t offset = GetU64(&log[p]);
      p += 8;
      uint32_t len = GetU32(&log[p]);
      p += 4;
      if (p + len > log.size()) {
        break;
      }
      ranges.push_back(ParsedRange{tx, std::move(file), offset, &log[p], len});
      pos = p + len;
    } else {
      break;  // corrupt record; stop replay at the last consistent prefix
    }
  }
  // Second pass: apply ranges of committed transactions, in log order.
  uint64_t replayed = 0;
  std::map<TxId, bool> counted;
  for (const ParsedRange& r : ranges) {
    if (!committed.count(r.tx)) {
      continue;
    }
    if (!disk_->Exists(r.file)) {
      disk_->Create(r.file, r.offset + r.len);
    }
    // Copy out first: `r.data` points into the log file owned by disk_ and a
    // Write to another file cannot invalidate it, but keep the copy for
    // clarity and safety against future Disk implementations.
    std::vector<uint8_t> value(r.data, r.data + r.len);
    disk_->Write(r.file, r.offset, value.data(), value.size());
    if (!counted[r.tx]) {
      counted[r.tx] = true;
      replayed++;
    }
  }
  stats_.recovered_transactions += replayed;
}

size_t Rvm::LogSizeBytes() const { return disk_->FileSize(log_name_); }

}  // namespace bmx
