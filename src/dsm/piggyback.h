// GC information that rides on DSM consistency messages ("piggy-backing",
// paper §3.2, §4.4, §5).
//
// The central trick of the paper: the collector never sends its own messages
// on the critical path.  New object locations (after an asynchronous BGC) and
// intra-bunch SSP creation requests travel inside the replies to token
// acquires that applications perform anyway, which is how invariants 1 and 3
// of §5 are maintained "without incurring in extra communication overhead".

#ifndef SRC_DSM_PIGGYBACK_H_
#define SRC_DSM_PIGGYBACK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/perf_counters.h"
#include "src/common/types.h"

namespace bmx {

// Wire sizes of the piggyback element types, shared by every payload that
// serializes them (Piggyback::WireSize, AddressChangePayload::WireSize) so
// the accounting cannot drift apart.
inline constexpr size_t kAddressUpdateWireBytes = 28;   // oid + bunch + 2 addrs
inline constexpr size_t kIntraSspRequestWireBytes = 16;  // oid + bunch + node
inline constexpr size_t kInterStubTemplateWireBytes = 28;  // full descriptor

// Cap on AddressUpdates one piggyback may carry (≈7 KiB of updates).  A grant
// whose coalesced update list still exceeds this ships the head inline and
// spills the tail into a background address-change message: the consistency
// reply stays bounded, the information still arrives off the critical path.
inline constexpr size_t kMaxPiggybackUpdates = 256;

// "Object with oid moved from old_addr to new_addr."  Receivers holding a
// local copy at old_addr relocate their bytes and leave a local forwarding
// header; receivers without one just learn the new location.
struct AddressUpdate {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  Gaddr old_addr = kNullAddr;
  Gaddr new_addr = kNullAddr;
};

// "Create an intra-bunch stub for `oid` pointing at the intra-bunch scion on
// `scion_node`."  Sent by an old owner to the new owner inside the write
// grant (invariant 3, §5): the intra-bunch SSP is the forwarding link from
// the new owner to the inter-bunch stubs left at previous owners.
struct IntraSspRequest {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  NodeId scion_node = kInvalidNode;
};

// Template for replicating an inter-bunch stub at a new owner — the §3.2
// *alternative* to intra-bunch SSPs, implemented for the ablation study.
// The receiver assigns a fresh stub id and creates/solicits the scion.
struct InterStubTemplate {
  Oid src_oid = kNullOid;
  uint32_t slot = 0;
  BunchId src_bunch = kInvalidBunch;
  Gaddr target_addr = kNullAddr;
  BunchId target_bunch = kInvalidBunch;
};

struct Piggyback {
  std::vector<AddressUpdate> updates;
  std::vector<IntraSspRequest> intra_ssp_requests;
  std::vector<InterStubTemplate> replicated_stubs;

  bool Empty() const {
    return updates.empty() && intra_ssp_requests.empty() && replicated_stubs.empty();
  }

  size_t WireSize() const {
    return updates.size() * kAddressUpdateWireBytes +
           intra_ssp_requests.size() * kIntraSspRequestWireBytes +
           replicated_stubs.size() * kInterStubTemplateWireBytes;
  }
};

// Collapses an update list before it is piggybacked (last-write-wins over
// move_history_ chains): duplicate (oid, old_addr) entries — e.g. an object
// referencing the same moved target from several slots — are dropped, and
// every surviving entry of an oid is pointed at that oid's final location, so
// a receiver reaches the newest address in one hop per stale address instead
// of walking the chain.  One entry per distinct old address is preserved:
// receivers holding bytes at *any* intermediate address still relocate.
// Returns the number of entries dropped.
inline size_t CoalesceAddressUpdates(std::vector<AddressUpdate>* updates) {
  if (updates->size() < 2) {
    return 0;
  }
  std::vector<AddressUpdate> kept;
  kept.reserve(updates->size());
  for (const AddressUpdate& u : *updates) {
    bool dup = false;
    for (const AddressUpdate& k : kept) {
      if (k.oid == u.oid && k.old_addr == u.old_addr) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      kept.push_back(u);
    }
  }
  for (AddressUpdate& k : kept) {
    // Histories are chronological per oid: the last entry names the final
    // location.
    for (auto it = updates->rbegin(); it != updates->rend(); ++it) {
      if (it->oid == k.oid) {
        k.new_addr = it->new_addr;
        break;
      }
    }
  }
  size_t dropped = updates->size() - kept.size();
  auto& perf = GlobalPerfCounters();
  perf.piggyback_updates_coalesced += dropped;
  perf.piggyback_bytes_saved += dropped * kAddressUpdateWireBytes;
  *updates = std::move(kept);
  return dropped;
}

}  // namespace bmx

#endif  // SRC_DSM_PIGGYBACK_H_
