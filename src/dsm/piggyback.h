// GC information that rides on DSM consistency messages ("piggy-backing",
// paper §3.2, §4.4, §5).
//
// The central trick of the paper: the collector never sends its own messages
// on the critical path.  New object locations (after an asynchronous BGC) and
// intra-bunch SSP creation requests travel inside the replies to token
// acquires that applications perform anyway, which is how invariants 1 and 3
// of §5 are maintained "without incurring in extra communication overhead".

#ifndef SRC_DSM_PIGGYBACK_H_
#define SRC_DSM_PIGGYBACK_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace bmx {

// "Object with oid moved from old_addr to new_addr."  Receivers holding a
// local copy at old_addr relocate their bytes and leave a local forwarding
// header; receivers without one just learn the new location.
struct AddressUpdate {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  Gaddr old_addr = kNullAddr;
  Gaddr new_addr = kNullAddr;
};

// "Create an intra-bunch stub for `oid` pointing at the intra-bunch scion on
// `scion_node`."  Sent by an old owner to the new owner inside the write
// grant (invariant 3, §5): the intra-bunch SSP is the forwarding link from
// the new owner to the inter-bunch stubs left at previous owners.
struct IntraSspRequest {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  NodeId scion_node = kInvalidNode;
};

// Template for replicating an inter-bunch stub at a new owner — the §3.2
// *alternative* to intra-bunch SSPs, implemented for the ablation study.
// The receiver assigns a fresh stub id and creates/solicits the scion.
struct InterStubTemplate {
  Oid src_oid = kNullOid;
  uint32_t slot = 0;
  BunchId src_bunch = kInvalidBunch;
  Gaddr target_addr = kNullAddr;
  BunchId target_bunch = kInvalidBunch;
};

struct Piggyback {
  std::vector<AddressUpdate> updates;
  std::vector<IntraSspRequest> intra_ssp_requests;
  std::vector<InterStubTemplate> replicated_stubs;

  bool Empty() const {
    return updates.empty() && intra_ssp_requests.empty() && replicated_stubs.empty();
  }

  size_t WireSize() const {
    // oid + bunch + two addresses per update; oid + bunch + node per request;
    // full descriptor per replicated stub.
    return updates.size() * 28 + intra_ssp_requests.size() * 16 +
           replicated_stubs.size() * 28;
  }
};

}  // namespace bmx

#endif  // SRC_DSM_PIGGYBACK_H_
