#include "src/dsm/dsm_node.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/fault_injector.h"
#include "src/common/task_pool.h"
#include "src/gc/payloads.h"
#include "src/runtime/history.h"

namespace bmx {

const std::map<Oid, std::set<NodeId>> DsmNode::kNoEntering;

DsmNode::DsmNode(NodeId id, Network* network, SegmentDirectory* directory, ReplicaStore* store,
                 CopySetMode mode)
    : id_(id), network_(network), directory_(directory), store_(store), mode_(mode) {
  BMX_CHECK(network_ != nullptr && directory_ != nullptr && store_ != nullptr);
}

Gaddr DsmNode::ResolveAddr(Gaddr addr) const {
  // Forwarding chains grow by one hop per collection that moves the object;
  // path compression (pointer jumping, as any real forwarding implementation
  // does) keeps resolution O(1) amortized and chains short.
  std::vector<Gaddr> visited;
  Gaddr current = addr;
  for (int hops = 0; hops < 1024; ++hops) {
    Gaddr next = current;
    // One in-heap forwarding hop at a time so every waypoint is recorded.
    if (store_->HasObjectAt(current)) {
      const ObjectHeader* header = store_->HeaderOf(current);
      if (header->forwarded()) {
        next = header->forward;
      }
    }
    if (next == current) {
      auto it = stale_forward_.find(current);
      if (it != stale_forward_.end()) {
        next = it->second;
      }
    }
    if (next == current && !store_->HasObjectAt(current)) {
      // Local chain exhausted without bytes: jump forward to the directory's
      // canonical address (backstop for eroded local chains; resolution must
      // stay monotonic toward newer addresses).
      Oid oid = directory_->OidAtAddress(current);
      if (oid != kNullOid) {
        Gaddr canonical = directory_->CanonicalAddressOf(oid);
        if (canonical != kNullAddr && canonical != current) {
          next = canonical;
        }
      }
    }
    if (next == current) {
      // Fixed point: compress everything we walked through.  Compression is
      // semantically invisible (it only shortens chains toward the same fixed
      // point), but it turns this const read into a write — so it stands down
      // while a multi-threaded parallel region is sharing this node's heap
      // (parallel BGC phases, oracle audits).  Serial runs compress exactly
      // as before.
      if (TaskPool::InParallelRegion()) {
        return current;
      }
      for (Gaddr waypoint : visited) {
        if (store_->HasObjectAt(waypoint)) {
          ObjectHeader* header = store_->HeaderOf(waypoint);
          if (header->forwarded()) {
            header->forward = current;
            continue;
          }
        }
        auto it = stale_forward_.find(waypoint);
        if (it != stale_forward_.end()) {
          it->second = current;
        }
      }
      return current;
    }
    for (Gaddr seen : visited) {
      if (seen == next) {
        // Cycle in stale-forward records (conflicting out-of-order updates):
        // break at the current fixed point; the DSM protocol will supply
        // fresh bytes at the next synchronization anyway.
        return current;
      }
    }
    visited.push_back(current);
    current = next;
  }
  BMX_CHECK(false) << "forwarding chain too long at addr " << addr;
  return current;
}

Gaddr DsmNode::LocalCopyOf(Gaddr addr) const {
  Gaddr resolved = ResolveAddr(addr);
  if (store_->HasObjectAt(resolved)) {
    return resolved;
  }
  // No bytes at the newest known address: fall back to wherever this node's
  // own replica sits (possibly an older address — entry consistency permits
  // reading it while a token is held).
  Oid oid = OidAt(addr);
  if (oid != kNullOid) {
    Gaddr local = store_->AddrOfOid(oid);
    if (local != kNullAddr) {
      Gaddr local_resolved = store_->ResolveForward(local);
      if (store_->HasObjectAt(local_resolved)) {
        return local_resolved;
      }
    }
  }
  return resolved;
}

void DsmNode::AddStaleForward(Gaddr old_addr, Gaddr new_addr) {
  if (old_addr != new_addr) {
    stale_forward_[old_addr] = new_addr;
  }
}

void DsmNode::AddStaleRouting(Gaddr addr, NodeId owner_hint) {
  if (owner_hint != kInvalidNode && owner_hint != id_) {
    stale_routing_[addr] = owner_hint;
  }
}

Oid DsmNode::OidAt(Gaddr addr) const {
  Gaddr resolved = ResolveAddr(addr);
  if (store_->HasObjectAt(resolved)) {
    return store_->HeaderOf(resolved)->oid;
  }
  // Local resolution exhausted: the directory knows every address the object
  // ever occupied (DESIGN.md — the page-based original resolves this through
  // its own mapped pages).
  Oid oid = directory_->OidAtAddress(resolved);
  if (oid == kNullOid) {
    oid = directory_->OidAtAddress(addr);
  }
  return oid;
}

NodeId DsmNode::ProbableOwnerForAddr(Gaddr addr) const {
  Oid oid = OidAt(addr);
  if (oid != kNullOid) {
    auto it = tokens_.find(oid);
    if (it != tokens_.end() && it->second.owner_hint != kInvalidNode) {
      return it->second.owner_hint;
    }
  }
  auto routing = stale_routing_.find(ResolveAddr(addr));
  if (routing != stale_routing_.end()) {
    return routing->second;
  }
  NodeId creator = directory_->SegmentCreator(SegmentOf(addr));
  if (creator != id_) {
    return creator;
  }
  // Last resort: the directory's authoritative owner (never the fast path —
  // requests normally route through the paper's ownerPtr/creator mechanisms,
  // which in distributed copy-set mode lets nearby readers serve them).
  if (oid != kNullOid) {
    NodeId authoritative = directory_->OwnerOf(oid);
    if (authoritative != kInvalidNode) {
      return authoritative;
    }
  }
  return creator;
}

void DsmNode::BeginAcquire(Gaddr addr, bool write, bool for_gc) {
  BMX_CHECK(!wait_active_) << "node " << id_ << ": one outstanding acquire at a time";
  wait_active_ = true;
  wait_complete_ = false;
  wait_addr_ = addr;
  NodeId target = ProbableOwnerForAddr(addr);
  if (target == id_) {
    Oid oid = OidAt(addr);
    if (oid != kNullOid) {
      NodeId authoritative = directory_->OwnerOf(oid);
      if (authoritative != kInvalidNode && authoritative != id_) {
        target = authoritative;
      }
    }
  }
  if (target == id_ || target == kInvalidNode) {
    // No route anywhere: the object was reclaimed at its owner and every
    // registry entry is gone.  The address is dangling; fail the acquire.
    stats_.unroutable_acquires++;
    wait_active_ = false;
    wait_complete_ = false;
    return;
  }
  auto req = std::make_shared<AcquireRequestPayload>();
  req->addr = ResolveAddr(addr);
  req->write = write;
  req->requester = id_;
  req->for_gc = for_gc;
  wait_target_ = target;
  // The acquire is now a progress obligation: someone must eventually grant,
  // deny or defer-then-serve it.  Opened only once a request actually goes
  // out (the unroutable path above fails synchronously).
  network_->obligations().Open(ObligationKind::kAcquire, id_, 0);
  FAULT_POINT("dsm.acquire.pre_send", id_);
  network_->Send(id_, target, std::move(req));
}

void DsmNode::AbandonAcquireWait() {
  network_->obligations().Close(ObligationKind::kAcquire, id_, 0);
  wait_active_ = false;
  wait_complete_ = false;
  wait_addr_ = kNullAddr;
  wait_target_ = kInvalidNode;
}

bool DsmNode::CompleteAcquire(Gaddr addr, bool write, bool for_gc) {
  // The unified RetryPolicy carries the legacy 3-attempt bound as its budget;
  // the per-peer circuit breaker only ever short-circuits attempts toward a
  // first hop that is BOTH detached and recently timing out, so a restarted
  // peer is always tried immediately.
  for (uint32_t attempt = 1;; ++attempt) {
    BeginAcquire(addr, write, for_gc);
    if (!wait_active_) {
      return wait_complete_;  // completed locally, or unroutable
    }
    if (!network_->NodeAttached(wait_target_) &&
        !acquire_retry_.AllowAttempt(wait_target_, network_->now())) {
      // Fail fast: the first hop is down and its breaker is open.  Withdraw
      // the parked request instead of waiting out another quiescence cycle.
      stats_.breaker_fast_fails++;
      network_->DropParked(id_, wait_target_, MsgKind::kAcquireRequest);
      AbandonAcquireWait();
      return false;
    }
    network_->RunUntilIdle();
    if (!wait_active_) {
      if (wait_complete_) {
        acquire_retry_.RecordSuccess(wait_target_);
      }
      return wait_complete_;
    }
    // The network quiesced with the acquire still open.  If the first hop is
    // alive, the request was delivered and deferred there (a remote holder is
    // inside a critical section): keep the wait pending — it completes on a
    // later pump, the pre-crash contract.  If the first hop crashed, the
    // request is parked toward a dead node: the virtual-clock deadline has
    // effectively expired, so withdraw it and retry along a fresh route (the
    // directory may name a recovered or different owner by now).
    if (network_->NodeAttached(wait_target_)) {
      return false;
    }
    stats_.acquire_timeouts++;
    acquire_retry_.RecordFailure(wait_target_, network_->now());
    network_->DropParked(id_, wait_target_, MsgKind::kAcquireRequest);
    AbandonAcquireWait();
    if (acquire_retry_.Exhausted(attempt)) {
      return false;  // fail cleanly: every route leads to a dead node
    }
  }
}

bool DsmNode::HasPendingWorkFor(NodeId requester) const {
  for (const auto& [oid, grant] : pending_grants_) {
    if (grant.requester == requester) {
      return true;
    }
  }
  for (const auto& [oid, msgs] : deferred_) {
    for (const Message& msg : msgs) {
      if (msg.payload->kind() != MsgKind::kAcquireRequest) {
        continue;
      }
      if (static_cast<const AcquireRequestPayload&>(*msg.payload).requester == requester) {
        return true;
      }
    }
  }
  return false;
}

bool DsmNode::AcquireRead(Gaddr addr, bool for_gc) {
  if (for_gc) {
    stats_.gc_read_acquires++;
  } else {
    stats_.app_read_acquires++;
  }
  Gaddr resolved = ResolveAddr(addr);
  Oid oid = OidAt(resolved);
  if (oid != kNullOid) {
    TokenInfo& t = InfoOf(oid);
    // Fast path requires both a cached token AND local bytes: a from-space
    // reclamation may have dropped the replica while the token stayed
    // cached, in which case the object must be re-fetched.
    if (t.state != TokenState::kNone && store_->HasObjectAt(LocalCopyOf(resolved))) {
      t.held = true;
      return true;
    }
  }
  stats_.remote_acquires++;
  return CompleteAcquire(resolved, /*write=*/false, for_gc);
}

bool DsmNode::AcquireWrite(Gaddr addr, bool for_gc) {
  if (for_gc) {
    stats_.gc_write_acquires++;
  } else {
    stats_.app_write_acquires++;
  }
  Gaddr resolved = ResolveAddr(addr);
  Oid oid = OidAt(resolved);
  if (oid != kNullOid) {
    TokenInfo& t = InfoOf(oid);
    if (t.owner) {
      if (t.state == TokenState::kWrite && t.copyset.empty()) {
        t.held = true;
        return true;
      }
      BMX_CHECK(!t.held) << "release before upgrading a held token (node " << id_ << ")";
      // Owner re-acquiring exclusivity: invalidate outstanding read copies,
      // then upgrade in place.  No ownership transfer.
      wait_active_ = true;
      wait_complete_ = false;
      pending_grants_[oid] = PendingGrant{id_, for_gc};
      StartInvalidation(oid, kInvalidNode);
      TryFinishInvalidation(oid);
      network_->RunUntilIdle();
      return wait_complete_;
    }
    BMX_CHECK(!(t.state == TokenState::kRead && t.held))
        << "release the read token before acquiring for write (node " << id_ << ")";
  }
  stats_.remote_acquires++;
  return CompleteAcquire(resolved, /*write=*/true, for_gc);
}

void DsmNode::Release(Gaddr addr) {
  Oid oid = OidAt(addr);
  BMX_CHECK_NE(oid, kNullOid) << "release of unknown object at " << addr;
  TokenInfo& t = InfoOf(oid);
  t.held = false;
  TryFinishInvalidation(oid);
  Redispatch(oid);
}

void DsmNode::RegisterNewObject(Oid oid, Gaddr addr, BunchId bunch) {
  directory_->RecordOwner(oid, id_);
  directory_->RecordObjectAddress(oid, addr);
  TokenInfo& t = InfoOf(oid);
  t.state = TokenState::kWrite;
  t.owner = true;
  t.held = false;
  t.bunch = bunch;
  store_->SetAddrOfOid(oid, addr);
}

void DsmNode::AdoptRecoveredObject(Oid oid, Gaddr addr, BunchId bunch, bool owned,
                                   NodeId owner_hint) {
  TokenInfo& t = InfoOf(oid);
  t.bunch = bunch;
  t.held = false;
  if (owned) {
    // Ownership-of-record survives the crash; tokens do not.  Reclaiming the
    // write token is safe because any read copies granted by the previous
    // life are reconciled into the copy-set before mutators run again.
    directory_->RecordOwner(oid, id_);
    directory_->RecordObjectAddress(oid, addr);
    t.state = TokenState::kWrite;
    t.owner = true;
    t.owner_hint = kInvalidNode;
  } else {
    // Recovered bytes of a remotely owned object: keep them as a stale
    // replica (entry consistency permits reading them only under a token,
    // which the next acquire fetches fresh).
    t.state = TokenState::kNone;
    t.owner = false;
    t.owner_hint = owner_hint;
  }
  store_->SetAddrOfOid(oid, addr);
}

void DsmNode::RestoreReaderReplica(Oid oid, NodeId reader, bool reader_has_token) {
  if (reader == id_) {
    return;
  }
  auto it = tokens_.find(oid);
  if (it == tokens_.end() || !it->second.owner) {
    return;  // contested away, or the peer's view is stale — nothing to track
  }
  TokenInfo& t = it->second;
  entering_[t.bunch][oid].insert(reader);
  if (reader_has_token) {
    t.copyset.insert(reader);
    if (t.state == TokenState::kWrite) {
      t.state = TokenState::kRead;  // readers exist again: no exclusivity
    }
  }
}

std::vector<TokenSnapshot> DsmNode::SnapshotTokens() const {
  std::vector<TokenSnapshot> out;
  out.reserve(tokens_.size());
  for (const auto& [oid, t] : tokens_) {
    TokenSnapshot snap;
    snap.oid = oid;
    snap.state = t.state;
    snap.owner = t.owner;
    snap.held = t.held;
    snap.owner_hint = t.owner_hint;
    snap.bunch = t.bunch;
    snap.copyset.assign(t.copyset.begin(), t.copyset.end());
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const TokenSnapshot& a, const TokenSnapshot& b) { return a.oid < b.oid; });
  return out;
}

void DsmNode::RecordLocalMove(Oid oid, Gaddr old_addr, Gaddr new_addr, BunchId bunch) {
  move_history_[oid].push_back(AddressUpdate{oid, bunch, old_addr, new_addr});
  store_->SetAddrOfOid(oid, new_addr);
  // Only owners move objects; the new location is the canonical one.
  directory_->RecordObjectAddress(oid, new_addr);
  RecordGcFlip(oid, old_addr, new_addr);
}

void DsmNode::RecordGcFlip(Oid oid, Gaddr old_addr, Gaddr new_addr) {
#if !defined(BMX_DISABLE_HISTORY)
  if (HistoryRecorder* recorder = network_->history_recorder()) {
    HistoryEvent event;
    event.op = HistoryOp::kGcFlip;
    event.oid = oid;
    event.old_addr = old_addr;
    event.new_addr = new_addr;
    recorder->Record(id_, std::move(event));
  }
#else
  (void)oid;
  (void)old_addr;
  (void)new_addr;
#endif
}

bool DsmNode::IsLocallyOwned(Oid oid) const {
  auto it = tokens_.find(oid);
  return it != tokens_.end() && it->second.owner;
}

TokenState DsmNode::StateOf(Oid oid) const {
  auto it = tokens_.find(oid);
  return it == tokens_.end() ? TokenState::kNone : it->second.state;
}

bool DsmNode::IsHeld(Oid oid) const {
  auto it = tokens_.find(oid);
  return it != tokens_.end() && it->second.held;
}

NodeId DsmNode::OwnerHint(Oid oid) const {
  auto it = tokens_.find(oid);
  if (it == tokens_.end()) {
    return kInvalidNode;
  }
  return it->second.owner ? id_ : it->second.owner_hint;
}

BunchId DsmNode::BunchOf(Oid oid) const {
  auto it = tokens_.find(oid);
  return it == tokens_.end() ? kInvalidBunch : it->second.bunch;
}

const std::map<Oid, std::set<NodeId>>& DsmNode::EnteringFor(BunchId bunch) const {
  auto it = entering_.find(bunch);
  return it == entering_.end() ? kNoEntering : it->second;
}

void DsmNode::PruneEntering(BunchId bunch, Oid oid, NodeId from) {
  auto bit = entering_.find(bunch);
  if (bit == entering_.end()) {
    return;
  }
  auto oit = bit->second.find(oid);
  if (oit == bit->second.end()) {
    return;
  }
  oit->second.erase(from);
  if (oit->second.empty()) {
    bit->second.erase(oit);
  }
}

void DsmNode::AddEntering(BunchId bunch, Oid oid, NodeId from) {
  if (from != id_) {
    entering_[bunch][oid].insert(from);
  }
}

void DsmNode::ForgetObject(Oid oid) {
  auto it = tokens_.find(oid);
  if (it != tokens_.end()) {
    entering_[it->second.bunch].erase(oid);
    tokens_.erase(it);
  }
  move_history_.erase(oid);
  store_->ForgetOid(oid);
}

std::vector<AddressUpdate> DsmNode::BuildInvariant1Updates(Oid oid) const {
  std::vector<AddressUpdate> out;
  auto add_history = [&](Oid target) {
    auto it = move_history_.find(target);
    if (it == move_history_.end()) {
      return;
    }
    out.insert(out.end(), it->second.begin(), it->second.end());
  };
  // The object's own moves...
  add_history(oid);
  // ...plus moves of every object it directly references (§5, invariant 1:
  // "the new locations of the object being acquired and of every object
  // directly referenced from it").
  Gaddr addr = store_->AddrOfOid(oid);
  if (addr == kNullAddr || !store_->HasObjectAt(addr)) {
    return out;
  }
  const ObjectHeader* header = store_->HeaderOf(addr);
  store_->ForEachRefSlot(addr, header->size_slots, [&](size_t, uint64_t target) {
    if (target == kNullAddr) {
      return;
    }
    Gaddr resolved = ResolveAddr(target);
    if (store_->HasObjectAt(resolved)) {
      add_history(store_->HeaderOf(resolved)->oid);
    }
  });
  // Last-write-wins collapse before the list rides a consistency message.
  CoalesceAddressUpdates(&out);
  return out;
}

void DsmNode::SpillPiggybackOverflow(std::vector<AddressUpdate>* updates, NodeId dst) {
  if (updates->size() <= kMaxPiggybackUpdates) {
    return;
  }
  // The consistency reply stays bounded; the tail still reaches the requester
  // off the critical path, as a background address-change notice.  Round 0 is
  // never a live reclamation round, so the eventual ack is ignored.
  auto spill = std::make_shared<AddressChangePayload>();
  spill->round = 0;
  spill->updates.assign(updates->begin() + kMaxPiggybackUpdates, updates->end());
  updates->resize(kMaxPiggybackUpdates);
  GlobalPerfCounters().piggyback_overflow_spills++;
  network_->Send(id_, dst, std::move(spill));
}

void DsmNode::HandleMessage(const Message& msg) {
  switch (msg.payload->kind()) {
    case MsgKind::kAcquireRequest:
      HandleAcquire(msg);
      break;
    case MsgKind::kGrant:
      HandleGrant(msg);
      break;
    case MsgKind::kInvalidate:
      HandleInvalidate(msg);
      break;
    case MsgKind::kInvalidateAck:
      HandleInvalidateAck(msg);
      break;
    case MsgKind::kObjectPush:
      HandlePush(msg);
      break;
    default:
      BMX_CHECK(false) << "DsmNode got unexpected message kind "
                       << MsgKindName(msg.payload->kind());
  }
}

void DsmNode::HandleAcquire(const Message& msg) {
  const auto& req = static_cast<const AcquireRequestPayload&>(*msg.payload);
  BMX_CHECK_LT(req.hops, 64u) << "ownerPtr forwarding chain too long";

  Oid oid = OidAt(req.addr);

  auto forward_to = [&](NodeId next) {
    // Stale hint graphs can point back at us or run long; the BMX-server's
    // owner registry is the rescue (standing in for the bounded-chain
    // guarantee per-message path compression gives real Li-Hudak).
    if ((next == id_ || next == kInvalidNode || req.hops >= 8) && oid != kNullOid) {
      NodeId authoritative = directory_->OwnerOf(oid);
      if (authoritative != kInvalidNode && authoritative != id_) {
        next = authoritative;
      }
    }
    if (next == id_ || next == kInvalidNode) {
      // Dead end: the object no longer exists anywhere we can name.  Deny
      // the request so the requester's acquire completes as a failure.
      stats_.unroutable_acquires++;
      auto denial = std::make_shared<GrantPayload>();
      denial->denied = true;
      denial->write = req.write;
      network_->Send(id_, req.requester, std::move(denial));
      return;
    }
    auto fwd = std::make_shared<AcquireRequestPayload>(req);
    fwd->hops = req.hops + 1;
    network_->Send(id_, next, std::move(fwd));
  };

  if (oid == kNullOid) {
    // We know nothing about this object locally: try the routing tombstones
    // left when a dead local replica was swept, then fall back to the
    // creator of the segment the address lies in.
    auto routing = stale_routing_.find(ResolveAddr(req.addr));
    if (routing != stale_routing_.end()) {
      forward_to(routing->second);
      return;
    }
    forward_to(directory_->SegmentCreator(SegmentOf(req.addr)));
    return;
  }
  TokenInfo& t = InfoOf(oid);

  if (req.write) {
    if (!t.owner) {
      NodeId next = t.owner_hint != kInvalidNode ? t.owner_hint : ProbableOwnerForAddr(req.addr);
      forward_to(next);
      // Li-style path compression: the requester is about to become the
      // owner, so every node on the forwarding path re-points its hint.
      t.owner_hint = req.requester;
      return;
    }
    if (t.held || pending_grants_.count(oid) > 0 || invalidations_.count(oid) > 0) {
      Defer(oid, msg);
      return;
    }
    StartWriteGrant(oid, req.requester, req.for_gc);
    return;
  }

  // Read request.  A reader may only grant from its copy if it still has the
  // bytes (a reclamation round can have dropped them while the token stayed
  // cached).
  Gaddr reader_bytes = LocalCopyOf(req.addr);
  bool can_grant = t.owner || (mode_ == CopySetMode::kDistributed &&
                               t.state != TokenState::kNone &&
                               store_->HasObjectAt(reader_bytes));
  if (!can_grant) {
    NodeId next = t.owner_hint != kInvalidNode ? t.owner_hint : ProbableOwnerForAddr(req.addr);
    forward_to(next);
    return;
  }
  if ((t.held && t.state == TokenState::kWrite) || pending_grants_.count(oid) > 0 ||
      invalidations_.count(oid) > 0) {
    Defer(oid, msg);
    return;
  }
  SendReadGrant(oid, req.requester, req.for_gc, reader_bytes);
}

void DsmNode::StartWriteGrant(Oid oid, NodeId requester, bool for_gc) {
  pending_grants_[oid] = PendingGrant{requester, for_gc};
  network_->obligations().Open(ObligationKind::kPendingGrant, id_, oid);
  StartInvalidation(oid, kInvalidNode);
  TryFinishInvalidation(oid);
}

void DsmNode::StartInvalidation(Oid oid, NodeId parent) {
  TokenInfo& t = InfoOf(oid);
  if (stale_skip_reader_ != kInvalidNode && t.copyset.erase(stale_skip_reader_) > 0) {
    // Planted consistency bug (PlantStaleReadBugForTesting): drop one reader
    // from the fan-out.  It keeps its read token and stale bytes, and the
    // write proceeds without ever learning about it.  One-shot.
    stale_skip_reader_ = kInvalidNode;
  }
  InvalProgress progress;
  progress.parent = parent;
  progress.awaiting = t.copyset.size();
  invalidations_[oid] = progress;
  network_->obligations().Open(ObligationKind::kInvalidation, id_, oid);
  for (NodeId child : t.copyset) {
    auto inval = std::make_shared<InvalidatePayload>();
    inval->oid = oid;
    network_->Send(id_, child, std::move(inval));
    stats_.invalidations_sent++;
  }
}

void DsmNode::TryFinishInvalidation(Oid oid) {
  auto it = invalidations_.find(oid);
  if (it == invalidations_.end()) {
    return;
  }
  if (it->second.awaiting > 0) {
    return;
  }
  TokenInfo& t = InfoOf(oid);
  bool initiated_here = it->second.parent == kInvalidNode;
  if (!initiated_here && t.held) {
    // A mutator is inside a critical section on our read copy; entry
    // consistency lets it finish before the copy is pulled (ack on release).
    return;
  }
  NodeId parent = it->second.parent;
  invalidations_.erase(it);
  network_->obligations().Close(ObligationKind::kInvalidation, id_, oid);
  t.copyset.clear();
  if (!initiated_here) {
    if (t.state != TokenState::kNone) {
      t.state = TokenState::kNone;
      stats_.read_copies_invalidated++;
    }
    auto ack = std::make_shared<InvalidateAckPayload>();
    ack->oid = oid;
    // Crash here and the owner waits on an ack from a dead reader; the ack
    // arrives from this node's next incarnation (stray-ack tolerant path).
    FAULT_POINT("dsm.invalidate.pre_ack", id_);
    network_->Send(id_, parent, std::move(ack));
    return;
  }
  FinishWriteGrant(oid);
}

void DsmNode::FinishWriteGrant(Oid oid) {
  auto pg_it = pending_grants_.find(oid);
  BMX_CHECK(pg_it != pending_grants_.end());
  PendingGrant pg = pg_it->second;
  pending_grants_.erase(pg_it);
  network_->obligations().Close(ObligationKind::kPendingGrant, id_, oid);

  TokenInfo& t = InfoOf(oid);
  if (pg.requester == id_) {
    // Local upgrade: owner regained exclusivity.
    t.state = TokenState::kWrite;
    t.held = true;
    wait_complete_ = true;
    wait_active_ = false;
    network_->obligations().Close(ObligationKind::kAcquire, id_, 0);
    Redispatch(oid);
    return;
  }

  auto grant = std::make_shared<GrantPayload>();
  grant->oid = oid;
  grant->bunch = t.bunch;
  grant->write = true;
  grant->for_gc = pg.for_gc;
  grant->granter_owner_hint = id_;
  FillObjectBytes(oid, grant.get());

  // The entering-ownerPtr set moves with ownership: the new owner must know
  // every node holding a non-owned replica — that is also the list of nodes
  // whose references need updating after a GC (§4.5).
  auto& entering = entering_[t.bunch][oid];
  entering.erase(pg.requester);
  entering.insert(id_);  // we keep a (now inconsistent) replica
  grant->entering_transfer = entering;
  entering_[t.bunch].erase(oid);

  grant->piggyback.updates = BuildInvariant1Updates(oid);
  if (gc_hooks_ != nullptr) {
    gc_hooks_->PrepareOwnershipTransfer(oid, t.bunch, pg.requester, &grant->piggyback);
  }
  SpillPiggybackOverflow(&grant->piggyback.updates, pg.requester);
  stats_.piggyback_updates_sent += grant->piggyback.updates.size();
  stats_.piggyback_ssp_requests_sent += grant->piggyback.intra_ssp_requests.size();

  t.owner = false;
  t.state = TokenState::kNone;
  t.owner_hint = pg.requester;
  NodeId requester = pg.requester;
  stats_.grants_sent++;
  // Crash here and the token is in limbo: the owner-of-record (directory)
  // still names this node, so recovery re-takes ownership from the
  // checkpoint and the requester's retry finds it.
  FAULT_POINT("dsm.grant.pre_send", id_);
  network_->Send(id_, requester, std::move(grant));
  Redispatch(oid);
}

void DsmNode::SendReadGrant(Oid oid, NodeId requester, bool for_gc, Gaddr byte_addr) {
  TokenInfo& t = InfoOf(oid);
  if (t.owner && t.state == TokenState::kWrite) {
    t.state = TokenState::kRead;  // write token downgrades while readers exist
  }
  t.copyset.insert(requester);
  entering_[t.bunch][oid].insert(requester);

  auto grant = std::make_shared<GrantPayload>();
  grant->oid = oid;
  grant->bunch = t.bunch;
  grant->write = false;
  grant->for_gc = for_gc;
  grant->granter_owner_hint = id_;
  FillObjectBytes(oid, grant.get(), byte_addr);
  grant->piggyback.updates = BuildInvariant1Updates(oid);
  SpillPiggybackOverflow(&grant->piggyback.updates, requester);
  stats_.piggyback_updates_sent += grant->piggyback.updates.size();
  stats_.grants_sent++;
  network_->Send(id_, requester, std::move(grant));
}

void DsmNode::FillObjectBytes(Oid oid, GrantPayload* grant, Gaddr byte_addr) const {
  Gaddr resolved = kNullAddr;
  if (byte_addr != kNullAddr && store_->HasObjectAt(byte_addr)) {
    resolved = byte_addr;
  } else {
    Gaddr addr = store_->AddrOfOid(oid);
    BMX_CHECK_NE(addr, kNullAddr) << "granting object " << oid << " without local data";
    resolved = LocalCopyOf(addr);
  }
  // Cycle-broken resolution can stop on a mid-chain forwarder; follow the
  // in-heap chain to the actual bytes.
  resolved = store_->ResolveForward(resolved);
  BMX_CHECK(store_->HasObjectAt(resolved)) << "granting object " << oid << " without bytes";
  const ObjectHeader* header = store_->HeaderOf(resolved);
  BMX_CHECK(!header->forwarded());
  grant->addr = resolved;
  grant->header = *header;
  // One segment lookup for the whole object: bulk-copy the slots, then mark
  // ref slots straight off the ref-map words.
  const SegmentImage* image = store_->SegmentFor(resolved);
  const uint64_t* src = const_cast<SegmentImage*>(image)->SlotPtr(resolved, 0);
  grant->slots.assign(src, src + header->size_slots);
  grant->slot_is_ref.assign(header->size_slots, 0);
  image->ForEachRefSlotOf(resolved, header->size_slots, [&](size_t slot, uint64_t) {
    grant->slot_is_ref[slot] = 1;
  });
}

void DsmNode::HandleGrant(const Message& msg) {
  const auto& grant = static_cast<const GrantPayload&>(*msg.payload);
  if (grant.denied) {
    if (wait_active_) {
      // The object is gone everywhere: the acquire fails (dangling address).
      wait_complete_ = false;
      wait_active_ = false;
      wait_addr_ = kNullAddr;
      network_->obligations().Close(ObligationKind::kAcquire, id_, 0);
    }
    // A denial with no acquire in flight is a replayed/stale grant (e.g.
    // redelivered to a restarted incarnation of this node): nothing to fail.
    return;
  }
  InstallObjectBytes(grant.oid, grant.bunch, grant.addr, grant.header, grant.slots,
                     grant.slot_is_ref);
  TokenInfo& t = InfoOf(grant.oid);
  t.bunch = grant.bunch;
  if (grant.write) {
    directory_->RecordOwner(grant.oid, id_);
    t.state = TokenState::kWrite;
    t.owner = true;
    t.held = true;
    t.owner_hint = kInvalidNode;
    t.copyset.clear();
    entering_[grant.bunch][grant.oid] = grant.entering_transfer;
    if (grant.entering_transfer.empty()) {
      entering_[grant.bunch].erase(grant.oid);
    }
  } else {
    t.state = TokenState::kRead;
    t.owner = false;
    t.owner_hint = grant.granter_owner_hint;
    t.held = true;
  }
  // Crash here and the requester dies as the owner-of-record of an object
  // whose bytes it never checkpointed; peers' recovery replies resupply them.
  FAULT_POINT("dsm.grant.post_install", id_);
  ApplyAddressUpdates(grant.piggyback.updates, msg.src);
  if (gc_hooks_ != nullptr) {
    for (const IntraSspRequest& request : grant.piggyback.intra_ssp_requests) {
      gc_hooks_->CreateIntraStub(request);
    }
    for (const InterStubTemplate& stub_template : grant.piggyback.replicated_stubs) {
      gc_hooks_->InstallReplicatedStub(stub_template);
    }
  }
  // Figure 3, case (d): if an object referenced by the granted object was
  // copied to to-space *here* before the acquire, rewrite the incoming
  // references to point at the to-space copy directly.
  for (size_t i = 0; i < grant.header.size_slots; ++i) {
    if (i >= grant.slot_is_ref.size() || grant.slot_is_ref[i] == 0) {
      continue;
    }
    Gaddr value = store_->ReadSlot(grant.addr, i);
    if (value == kNullAddr) {
      continue;
    }
    Gaddr resolved = ResolveAddr(value);
    if (resolved != value) {
      store_->WriteSlot(grant.addr, i, resolved);
    }
  }
  // Invariant 1: the address the acquire named must be valid here — bridge
  // it to the granted location if local resolution cannot reach it yet.
  if (wait_active_ && wait_addr_ != kNullAddr) {
    Gaddr reached = ResolveAddr(wait_addr_);
    if (reached != grant.addr && !store_->HasObjectAt(reached)) {
      AddStaleForward(reached, grant.addr);
    }
    wait_addr_ = kNullAddr;
  }
  // Only an in-flight acquire completes a wait; a stale or redelivered grant
  // (crash-recovery replay to a fresh incarnation) still installed usable
  // bytes above but must not fabricate a completed acquire.
  if (wait_active_) {
    wait_complete_ = true;
    wait_active_ = false;
    network_->obligations().Close(ObligationKind::kAcquire, id_, 0);
  }
  Redispatch(grant.oid);
}

void DsmNode::HandleInvalidate(const Message& msg) {
  const auto& inval = static_cast<const InvalidatePayload&>(*msg.payload);
  Oid oid = inval.oid;
  auto existing = tokens_.find(oid);
  if (existing == tokens_.end()) {
    // We already dropped every trace of this object (replica swept); ack
    // without resurrecting a hintless token entry.
    auto ack = std::make_shared<InvalidateAckPayload>();
    ack->oid = oid;
    network_->Send(id_, msg.src, std::move(ack));
    return;
  }
  TokenInfo& t = existing->second;
  if (t.state == TokenState::kNone && t.copyset.empty()) {
    auto ack = std::make_shared<InvalidateAckPayload>();
    ack->oid = oid;
    network_->Send(id_, msg.src, std::move(ack));
    return;
  }
  StartInvalidation(oid, msg.src);
  TryFinishInvalidation(oid);
}

void DsmNode::HandleInvalidateAck(const Message& msg) {
  const auto& ack = static_cast<const InvalidateAckPayload&>(*msg.payload);
  auto it = invalidations_.find(ack.oid);
  if (it == invalidations_.end() || it->second.awaiting == 0) {
    // Stray ack: the invalidation already completed, or this incarnation of
    // the node never started one (the ack was redelivered after a restart).
    return;
  }
  if (canary_victim_ != kNullOid) {
    // Planted ordering bug (explorer canary): acks arriving in decreasing
    // src order — a cross-channel reordering no FIFO schedule produces —
    // corrupt the token table by usurping ownership of the victim object.
    if (canary_last_ack_src_ != kInvalidNode && msg.src < canary_last_ack_src_) {
      TokenInfo& victim = InfoOf(canary_victim_);
      victim.owner = true;
      victim.state = TokenState::kWrite;
    }
    canary_last_ack_src_ = msg.src;
  }
  it->second.awaiting--;
  TryFinishInvalidation(ack.oid);
}

void DsmNode::HandlePush(const Message& msg) {
  const auto& push = static_cast<const ObjectPushPayload&>(*msg.payload);
  FAULT_POINT("dsm.push.pre_apply", id_);
  if (push.has_object) {
    InstallObjectBytes(push.oid, push.bunch, push.addr, push.header, push.slots,
                       push.slot_is_ref);
    TokenInfo& t = InfoOf(push.oid);
    t.bunch = push.bunch;
    if (t.owner_hint == kInvalidNode && !t.owner) {
      t.owner_hint = msg.src;
    }
  }
  ApplyAddressUpdates(push.piggyback.updates, msg.src);
  if (gc_hooks_ != nullptr) {
    for (const IntraSspRequest& request : push.piggyback.intra_ssp_requests) {
      gc_hooks_->CreateIntraStub(request);
    }
    for (const InterStubTemplate& stub_template : push.piggyback.replicated_stubs) {
      gc_hooks_->InstallReplicatedStub(stub_template);
    }
  }
}

void DsmNode::InstallObjectBytes(Oid oid, BunchId bunch, Gaddr addr, const ObjectHeader& header,
                                 const std::vector<uint64_t>& slots,
                                 const std::vector<uint8_t>& slot_is_ref) {
  // Receiving bytes of a bunch's object makes this node a replica holder:
  // reachability tables and eager-update broadcasts must reach it.
  directory_->NoteMapped(bunch, id_);
  SegmentImage& image = store_->GetOrCreate(SegmentOf(addr), bunch);
  ObjectHeader h = header;
  h.flags &= ~kObjFlagForwarded;
  h.forward = kNullAddr;
  image.InstallObject(addr, h, slots.empty() ? nullptr : slots.data());
  size_t first_slot = image.SlotIndexOf(addr);
  for (size_t i = 0; i < slot_is_ref.size(); ++i) {
    if (slot_is_ref[i] != 0) {
      image.ref_map().Set(first_slot + i);
    } else {
      image.ref_map().Clear(first_slot + i);
    }
  }
  // If we previously knew the object at a different address, leave a local
  // forwarding header there so stale local references still resolve.
  Gaddr prior = store_->AddrOfOid(oid);
  if (prior != kNullAddr && prior != addr && store_->HasObjectAt(prior)) {
    ObjectHeader* old_header = store_->HeaderOf(prior);
    if (!old_header->forwarded()) {
      old_header->flags |= kObjFlagForwarded;
      old_header->forward = addr;
    }
  }
  store_->SetAddrOfOid(oid, addr);
}

void DsmNode::ApplyAddressUpdates(const std::vector<AddressUpdate>& updates, NodeId from) {
  for (const AddressUpdate& update : updates) {
    ApplyOneAddressUpdate(update);
  }
  // Invariant 2: a node that receives new-location information forwards it to
  // every node in its local copy-set for the object.
  std::map<NodeId, std::vector<AddressUpdate>> fanout;
  for (const AddressUpdate& update : updates) {
    auto it = tokens_.find(update.oid);
    if (it == tokens_.end()) {
      continue;
    }
    for (NodeId child : it->second.copyset) {
      if (child != from) {
        fanout[child].push_back(update);
      }
    }
  }
  for (auto& [child, list] : fanout) {
    auto push = std::make_shared<ObjectPushPayload>();
    push->piggyback.updates = std::move(list);
    stats_.pushes_sent++;
    network_->Send(id_, child, std::move(push));
  }
}

void DsmNode::ApplyOneAddressUpdate(const AddressUpdate& update) {
  // An object's moves are scattered across its successive owners; every node
  // that hears of a move remembers it, so the full address chain accumulates
  // along ownership transfers and future grants can resolve arbitrarily old
  // addresses (invariant 1 for requesters that synchronized long ago).
  auto& history = move_history_[update.oid];
  bool seen = false;
  for (const AddressUpdate& entry : history) {
    if (entry.old_addr == update.old_addr) {
      seen = true;
      break;
    }
  }
  if (!seen) {
    history.push_back(update);
    // First time this node learns of the move: a client-observable flip.
    RecordGcFlip(update.oid, update.old_addr, update.new_addr);
  }
  // An owner is authoritative for its own objects' locations: updates about
  // them are echoes of old moves and must not disturb the oid map or bytes —
  // but old *addresses* must still resolve to the canonical copy here.
  if (IsLocallyOwned(update.oid)) {
    Gaddr canonical = store_->AddrOfOid(update.oid);
    if (canonical != kNullAddr) {
      Gaddr from = ResolveAddr(update.old_addr);
      Gaddr to = ResolveAddr(canonical);
      if (from != to && !store_->HasObjectAt(from)) {
        AddStaleForward(from, to);
      }
    }
    return;
  }
  // Updates can arrive out of order (different senders know different
  // prefixes of the object's move history).  The directory's canonical
  // address is the authoritative present: byte relocation and the oid map
  // always aim there, so a stale echo can never resurrect old state — it
  // merely contributes an address-resolution edge.
  Gaddr target = ResolveAddr(update.new_addr);
  Gaddr dir_canonical = directory_->CanonicalAddressOf(update.oid);
  if (dir_canonical != kNullAddr) {
    target = dir_canonical;
  }
  Gaddr known = store_->AddrOfOid(update.oid);
  if (known != kNullAddr && ResolveAddr(known) == target) {
    // Already current — but still make sure the old *address* resolves here,
    // so stale addresses read from other objects keep working.
    if (ResolveAddr(update.old_addr) != target &&
        !store_->HasObjectAt(ResolveAddr(update.old_addr))) {
      AddStaleForward(update.old_addr, target);
    }
    return;
  }
  stats_.address_updates_applied++;
  Gaddr src = store_->ResolveForward(update.old_addr);
  if (src != target && store_->HasObjectAt(src)) {
    // We hold a local replica at the old location: relocate our bytes (the
    // data stays whatever the consistency protocol last told us — possibly
    // stale, which entry consistency permits) and leave a forwarding header.
    store_->GetOrCreate(SegmentOf(target), update.bunch);
    store_->CopyObjectBytes(src, target);
    ObjectHeader* old_header = store_->HeaderOf(src);
    old_header->flags |= kObjFlagForwarded;
    old_header->forward = target;
    store_->SetAddrOfOid(update.oid, target);
  } else if (src != target) {
    // No local bytes at the old address: remember the mapping so the stale
    // address still resolves on this node.  The oid map is left alone — it
    // tracks where this node's *bytes* are (the directory tracks canonical
    // locations), and repointing it at a byte-less address would hide our
    // own replica from the local tracer.
    AddStaleForward(src, target);
  }
  auto it = tokens_.find(update.oid);
  if (it != tokens_.end()) {
    it->second.bunch = update.bunch;
  }
  if (gc_hooks_ != nullptr) {
    gc_hooks_->OnAddressUpdate(update);
  }
}

void DsmNode::PushObject(NodeId dst, Oid oid, const Piggyback& piggyback) {
  auto push = std::make_shared<ObjectPushPayload>();
  push->oid = oid;
  push->bunch = BunchOf(oid);
  push->has_object = true;
  GrantPayload scratch;
  FillObjectBytes(oid, &scratch);
  push->addr = scratch.addr;
  push->header = scratch.header;
  push->slots = std::move(scratch.slots);
  push->slot_is_ref = std::move(scratch.slot_is_ref);
  push->piggyback = piggyback;
  stats_.pushes_sent++;
  network_->Send(id_, dst, std::move(push));
}

void DsmNode::Defer(Oid oid, const Message& msg) { deferred_[oid].push_back(msg); }

void DsmNode::Redispatch(Oid oid) {
  auto it = deferred_.find(oid);
  if (it == deferred_.end()) {
    return;
  }
  std::vector<Message> queue = std::move(it->second);
  deferred_.erase(it);
  for (const Message& msg : queue) {
    HandleMessage(msg);
  }
}

}  // namespace bmx
