// Interface through which the DSM layer consults the garbage collector while
// assembling token grants.
//
// The dependency is one-way by design: the collector never calls *into* the
// token machinery (it "acquires neither a read nor a write token", paper
// §10), but the token machinery gives the collector a ride — address updates
// and intra-bunch SSP requests are piggybacked on grants (invariants 1 and 3
// of §5).

#ifndef SRC_DSM_GC_HOOKS_H_
#define SRC_DSM_GC_HOOKS_H_

#include "src/common/types.h"
#include "src/dsm/piggyback.h"

namespace bmx {

class DsmGcHooks {
 public:
  virtual ~DsmGcHooks() = default;

  // Invariant 3: called by the owner before a write grant of `oid` completes.
  // If this node holds inter-bunch stubs (or an intra-bunch stub) for the
  // object, it appends whatever the transfer policy requires to the grant's
  // piggyback — an intra-bunch SSP request (the paper's design, creating the
  // local intra-bunch scion as a side effect) or replicated inter-bunch stub
  // templates (the §3.2 alternative, kept for the ablation study).
  virtual void PrepareOwnershipTransfer(Oid oid, BunchId bunch, NodeId new_owner,
                                        Piggyback* piggyback) = 0;

  // Creates the intra-bunch stub at the new owner (receipt of the request
  // piggybacked on the write grant).
  virtual void CreateIntraStub(const IntraSspRequest& request) = 0;

  // Installs a replicated inter-bunch stub at the new owner (ablation mode):
  // assigns a fresh stub id and creates or solicits the matching scion.
  virtual void InstallReplicatedStub(const InterStubTemplate& stub_template) = 0;

  // Called whenever this node learns a new location for an object (piggyback
  // or address-change message), so the collector can refresh the target
  // addresses recorded in its stub and scion tables.
  virtual void OnAddressUpdate(const AddressUpdate& update) = 0;
};

}  // namespace bmx

#endif  // SRC_DSM_GC_HOOKS_H_
