// Message payloads of the entry-consistency protocol (paper §2.2, §5).

#ifndef SRC_DSM_PAYLOADS_H_
#define SRC_DSM_PAYLOADS_H_

#include <set>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/piggyback.h"
#include "src/mem/object.h"
#include "src/net/message.h"

namespace bmx {

// Token request, routed along ownerPtr forwarding chains (Li & Hudak style,
// paper §2.2).  Identity is the *address*: the receiving node resolves its
// local forwarding headers to find the object, exactly as the paper's
// address-based model requires.
struct AcquireRequestPayload : public Payload {
  Gaddr addr = kNullAddr;
  bool write = false;
  NodeId requester = kInvalidNode;  // original requester, preserved across forwards
  uint32_t hops = 0;
  bool for_gc = false;  // set only by baseline collectors (ours never acquires)

  MsgKind kind() const override { return MsgKind::kAcquireRequest; }
  MsgCategory category() const override {
    return for_gc ? MsgCategory::kGcForeground : MsgCategory::kDsm;
  }
  size_t WireSize() const override { return 24; }
};

// Token grant.  Carries the object's bytes, its current address at the
// granter, the GC piggyback (invariants 1 and 3 of §5), and — for write
// grants — the entering-ownerPtr set that moves with ownership.
struct GrantPayload : public Payload {
  // Denied grants answer unroutable requests (the object no longer exists);
  // they carry no object and fail the requester's acquire.
  bool denied = false;
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  Gaddr addr = kNullAddr;  // object's current (possibly post-GC) address
  bool write = false;
  NodeId granter_owner_hint = kInvalidNode;  // probable owner after this grant
  ObjectHeader header;
  std::vector<uint64_t> slots;
  std::vector<uint8_t> slot_is_ref;
  std::set<NodeId> entering_transfer;  // write grants: entering ownerPtr set
  Piggyback piggyback;
  bool for_gc = false;

  MsgKind kind() const override { return MsgKind::kGrant; }
  MsgCategory category() const override {
    return for_gc ? MsgCategory::kGcForeground : MsgCategory::kDsm;
  }
  size_t WireSize() const override {
    return 40 + slots.size() * kSlotBytes + slot_is_ref.size() + entering_transfer.size() * 4 +
           piggyback.WireSize();
  }
};

struct InvalidatePayload : public Payload {
  Oid oid = kNullOid;
  MsgKind kind() const override { return MsgKind::kInvalidate; }
  MsgCategory category() const override { return MsgCategory::kDsm; }
  size_t WireSize() const override { return 12; }
};

struct InvalidateAckPayload : public Payload {
  Oid oid = kNullOid;
  MsgKind kind() const override { return MsgKind::kInvalidateAck; }
  MsgCategory category() const override { return MsgCategory::kDsm; }
  size_t WireSize() const override { return 12; }
};

// Fresh object bytes pushed without a token transfer.  Used on the from-space
// reclamation path (§4.5) and to forward new-location information down a
// distributed copy-set (invariant 2 of §5); `has_object` is false when only
// the piggyback matters.
struct ObjectPushPayload : public Payload {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  Gaddr addr = kNullAddr;
  bool has_object = false;
  ObjectHeader header;
  std::vector<uint64_t> slots;
  std::vector<uint8_t> slot_is_ref;
  Piggyback piggyback;

  MsgKind kind() const override { return MsgKind::kObjectPush; }
  MsgCategory category() const override { return MsgCategory::kDsm; }
  size_t WireSize() const override {
    return 24 + (has_object ? kHeaderBytes + slots.size() * kSlotBytes + slot_is_ref.size() : 0) +
           piggyback.WireSize();
  }
};

}  // namespace bmx

#endif  // SRC_DSM_PAYLOADS_H_
