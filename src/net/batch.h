// Batched control-message transport (docs/PROTOCOLS.md §14).
//
// The paper's cost discipline is that GC/DSM coordination is "either
// piggy-backed ... or exchanged in the background" (§8).  At real cluster
// sizes the background class dominates the wire in *message count*: reclaim
// rounds emit per-object CopyRequest/CopyReply trains to one owner, address
// changes fan out to every interested node, and scion creates trickle out one
// tiny payload at a time.  The coalescing layer packs small control payloads
// headed to the same destination into one versioned batch frame, cutting wire
// messages without changing a single logical-protocol byte: stats still
// account per logical message, the decision stream is unchanged (flush points
// are deterministic policy, not random draws), and with batching disabled the
// wire is bit-identical to the unbatched transport.
//
// The frame image is a real self-validating wire format — encoded at flush,
// decoded and verified at delivery — so the codec is exercised on every
// batched delivery, not just in its property tests.
//
// Frame layout (little-endian):
//   offset 0   magic "BMXB" (4 bytes)
//   offset 4   version, u8 (= kBatchFrameVersion)
//   offset 5   entry count, u16 (1 .. kMaxBatchEntries; empty frames invalid)
//   offset 7   entry-region length, u32 (bytes between header and checksum)
//   offset 11  entries: kind u8, category u8, body length u32, body bytes
//   last 8     FNV-1a-64 checksum of every preceding byte, u64
//
// Decode rejects: short or oversized images, bad magic, unknown version,
// zero or out-of-range entry counts, region-length mismatches, truncated or
// overlong entries, out-of-range kind/category codes, and any checksum
// mismatch (a single flipped byte always changes the FNV-1a digest).

#ifndef SRC_NET_BATCH_H_
#define SRC_NET_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/message.h"

namespace bmx {

inline constexpr uint8_t kBatchFrameVersion = 1;
// Hard codec bounds; the flush policy's knobs must stay within them.
inline constexpr size_t kMaxBatchEntries = 256;
inline constexpr size_t kMaxBatchFrameBytes = 64 * 1024;
// Fixed framing overhead: header (magic + version + count + region length)
// plus the trailing checksum.
inline constexpr size_t kBatchFrameHeaderBytes = 11;
inline constexpr size_t kBatchFrameTrailerBytes = 8;
inline constexpr size_t kBatchEntryHeaderBytes = 6;

// One logical message as it appears inside a frame image.
struct BatchWireEntry {
  uint8_t kind = 0;
  uint8_t category = 0;
  std::vector<uint8_t> body;
};

// Encodes a non-empty entry list into a frame image.  Fatal (BMX_CHECK) on
// inputs outside the codec bounds — the flush policy guarantees them.
std::vector<uint8_t> EncodeBatchFrame(const std::vector<BatchWireEntry>& entries);

// Decodes and fully validates a frame image.  Returns false (and fills
// *error, if non-null) on any malformed input; *out is untouched on failure.
bool DecodeBatchFrame(const uint8_t* data, size_t size, std::vector<BatchWireEntry>* out,
                      std::string* error);

// Total image size EncodeBatchFrame produces for entries of the given body
// sizes (framing + per-entry headers + bodies).
size_t BatchFrameImageSize(const std::vector<size_t>& body_sizes);

// The kinds the coalescing layer may pack into frames: small, reliable
// control messages whose intra-channel ordering the batch preserves.  Bulky
// or latency-critical payloads (acquire/grant), unreliable datagrams
// (reachability tables) and the baseline collectors' traffic stay unbatched.
bool BatchableMsgKind(MsgKind kind);

// Per-destination coalescing policy.  Disabled by default: the unbatched
// transport is the pinned-fingerprint baseline.
struct BatchPolicy {
  bool enabled = false;
  // Flush a channel's pending batch when it holds this many payloads...
  size_t max_entries = 16;
  // ...or this many payload bytes, whichever comes first.
  size_t max_bytes = 1024;
  // Deadline flush: a pending batch older than this many virtual-clock ticks
  // is flushed at the next delivery step, bounding how long coalescing can
  // delay a control message relative to the unbatched transport.
  uint64_t deadline_ticks = 4;
  // Payloads larger than this bypass coalescing even when their kind is
  // batchable (a bulky ObjectPush should not ride a control frame).  128
  // covers the small-object copy replies of a §4.5 reclaim train — the
  // traffic kCopyReply is on the batchable list for — while staying well
  // under the bulk grant sizes.
  size_t batchable_size_limit = 128;
};

// One logical message riding in a frame.  `seq` is the channel wire sequence
// the message was assigned when the sender appended it — the identity the
// history recorder keyed its send snapshot on, restored at unpack so
// causality stays per logical message, not per frame.
struct BatchedMessage {
  uint64_t seq = 0;
  std::shared_ptr<const Payload> payload;
};

// The frame payload the network transmits.  Carries both the in-process
// payload pointers (what handlers ultimately receive) and the encoded image
// (what a real wire would carry); delivery decodes the image and verifies it
// against the entry list before dispatching anything.
class BatchFramePayload : public Payload {
 public:
  MsgKind kind() const override { return MsgKind::kBatchFrame; }
  // Frames carry mixed-category traffic; the category of the first entry
  // classifies the frame's wire bytes (per-category *logical* accounting is
  // untouched — it was recorded per payload at Send time).
  MsgCategory category() const override { return category_; }
  size_t WireSize() const override { return image.size(); }

  void set_category(MsgCategory c) { category_ = c; }

  std::vector<BatchedMessage> entries;
  std::vector<uint8_t> image;

 private:
  MsgCategory category_ = MsgCategory::kDsm;
};

}  // namespace bmx

#endif  // SRC_NET_BATCH_H_
