// Deterministic simulated network: FIFO point-to-point channels, per-kind and
// per-category statistics, seeded fault injection (loss, duplication,
// reordering, transient partitions, node crashes), a reliable-delivery layer
// for payloads that declare reliable() == true, and a pluggable delivery
// scheduler with decision-stream record/replay for systematic schedule
// exploration.
//
// The simulation is single-threaded and event-driven: Send() enqueues,
// RunUntilIdle() drains every channel in a deterministic order, invoking the
// destination node's handler for each delivery.  Handlers may send further
// messages; delivery continues until the network is quiescent.
//
// Nondeterminism model (see src/net/scheduler.h and docs/PROTOCOLS.md §11):
// every nondeterministic choice — which channel delivers next, each fault
// draw, whether an armed crash-point fires — flows through one DecisionLog.
// The default FifoScheduler preserves the historical drain order bit-for-bit;
// alternative SchedulerPolicy implementations explore other legal
// interleavings, and ReplayFrom(Trace) reproduces a recorded run exactly.
//
// Delivery classes (see docs/PROTOCOLS.md, "Delivery guarantees and fault
// model"):
//
//   * reliable() payloads get exactly-once, per-channel FIFO delivery.  Each
//     transmission can be lost (reliable_loss_rate, partitions) and its
//     transport ack can be lost (ack_loss_rate); a virtual clock drives
//     timeout-based retransmission with exponential backoff, and the receiver
//     suppresses duplicates / reassembles order keyed on the original
//     reliable sequence number.  Traffic addressed to a disconnected node is
//     held in the sender's unacked buffer and replayed, FIFO and
//     deduplicated, when the node re-registers.
//   * unreliable payloads are datagrams: loss_rate, duplication_rate and
//     reorder_rate apply, duplicates reach the handler (carrying the original
//     seq so receivers *can* dedup), and nothing is ever retransmitted.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/obligations.h"
#include "src/common/retry.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/batch.h"
#include "src/net/message.h"
#include "src/net/scheduler.h"

namespace bmx {

class HistoryRecorder;

// Gray-failure profile for one directed link (src → dst).  Uninstalled links
// behave exactly as before — the profile table is consulted only when
// non-empty, and per-link fault draws come from dedicated RNG streams
// (kLinkLoss/kLinkDuplication/kLinkReliableLoss mixed with the link
// endpoints), so installing a profile on one link never perturbs the draw
// sequences of the global knobs or of other links.
struct LinkProfile {
  // Every wire copy on the link becomes deliverable only latency_ticks after
  // it is enqueued (directional: the reverse link is unaffected).
  uint64_t latency_ticks = 0;
  // Per-link overrides of the global loss knobs; negative = inherit.  The
  // loss rate applies to both delivery classes of the link: datagram loss for
  // unreliable payloads, in-flight transmission loss (masked by
  // retransmission) for reliable ones.
  double loss_rate = -1.0;
  double duplication_rate = -1.0;
  // Zombie link: the destination stays transport-alive (acks, dedup,
  // reassembly all run) but payload dispatch is silently swallowed for the
  // selected categories — the gray failure where a peer looks healthy to the
  // transport and dead to the protocol.
  bool zombie = false;
  std::array<bool, kNumMsgCategories> zombie_categories{{true, true, true}};
};

class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

struct NetworkStats {
  struct PerKind {
    uint64_t sent = 0;        // logical sends (duplicates/retransmits excluded)
    uint64_t delivered = 0;   // handed to a handler exactly once each
    uint64_t dropped = 0;     // app-visible losses (unreliable class only)
    uint64_t duplicated = 0;  // extra wire copies injected by duplication faults
    uint64_t bytes = 0;       // wire bytes of logical sends
    // bytes plus every duplicate, retransmission and redelivery copy — the
    // traffic a real wire would carry under the configured fault mix.
    uint64_t wire_bytes = 0;
    uint64_t lost_transmissions = 0;  // reliable copies lost in flight/partition
    uint64_t retransmits = 0;         // timer-driven resends of unacked payloads
    uint64_t dup_suppressed = 0;      // receiver-side dedup hits (reliable stream)
    uint64_t reordered = 0;           // sends perturbed by reordering injection
    // Reliable payloads held for a down node.  Counted once per payload per
    // down period — never per wire copy, so a duplicated transmission that
    // reaches a dead destination twice still parks a single payload.
    uint64_t parked = 0;
    uint64_t redelivered = 0;         // parked payloads replayed on re-register
    // Wire copies rejected at delivery because an endpoint's incarnation
    // epoch advanced after they were emitted (crash recovery).
    uint64_t epoch_rejected = 0;
    // Dispatches swallowed by a zombie link/peer: the transport completed
    // (acked, deduplicated, counted as wire bytes) but no handler ran.
    // Mirrors the parked/redelivered convention — a zombie drop is a wire
    // event, never a logical send, and `delivered` does not count it.
    uint64_t zombie_dropped = 0;
  };
  // Category is recorded from each payload at Send time (a single kind can
  // span categories, e.g. acquire requests issued for a baseline collector).
  // sent/bytes count logical sends exactly once: retransmissions, duplicates
  // and post-reconnect redeliveries only ever add to wire_bytes.
  struct PerCategory {
    uint64_t sent = 0;
    uint64_t bytes = 0;
    uint64_t wire_bytes = 0;
  };

  // Coalescing-layer accounting (src/net/batch.h).  Frames appear in per_kind
  // under kBatchFrame with wire-side numbers only (delivered, wire_bytes,
  // retransmits, ...): logical sent/bytes stay zero for frames so every
  // "logical traffic" query — TotalSent, TotalBytes, per-category sent —
  // reports identical values with batching on or off.
  struct Batching {
    uint64_t frames_sent = 0;        // frames flushed onto the wire
    uint64_t frames_delivered = 0;   // frames unpacked at a destination
    uint64_t batched_payloads = 0;   // logical messages that rode in a frame
    uint64_t flush_full = 0;         // entry- or byte-cap flushes
    uint64_t flush_deadline = 0;     // age-bound flushes (deadline_ticks)
    uint64_t flush_ordering = 0;     // non-batchable send forced the flush
    uint64_t flush_quiesce = 0;      // drained at idle by RunUntilIdle
  };

  std::array<PerKind, static_cast<size_t>(MsgKind::kMaxKind)> per_kind;
  std::array<PerCategory, kNumMsgCategories> per_category;
  Batching batching;
  // Wire copies enqueued on any channel: logical sends (or frames, when
  // batching coalesces), duplicates, retransmissions and post-reconnect
  // redeliveries.  The scale benchmarks report this as the message count a
  // real wire would carry.
  uint64_t wire_messages = 0;

  PerKind& For(MsgKind kind) { return per_kind[static_cast<size_t>(kind)]; }
  const PerKind& For(MsgKind kind) const { return per_kind[static_cast<size_t>(kind)]; }
  PerCategory& ForCategory(MsgCategory c) { return per_category[static_cast<size_t>(c)]; }
  const PerCategory& ForCategory(MsgCategory c) const {
    return per_category[static_cast<size_t>(c)];
  }

  uint64_t TotalSent() const;
  uint64_t TotalBytes() const;
  uint64_t TotalWireBytes() const;
  uint64_t TotalRetransmits() const;
  uint64_t TotalDupSuppressed() const;
  uint64_t TotalRedelivered() const;
  uint64_t SentInCategory(MsgCategory category) const;
  uint64_t BytesInCategory(MsgCategory category) const;

  // Canonical per-kind traffic fingerprint, one line per kind with traffic:
  // "Kind:sent:delivered:dropped:retransmits:dup_suppressed:bytes:wire\n".
  // Bit-identical across a record/replay pair; the explorer and the replay-
  // determinism tests pin it.
  std::string Fingerprint() const;
};

class Network {
 public:
  // The seed is a root: each independent random-decision family (loss,
  // duplication, reorder, reliable loss, ack loss) draws from its own stream
  // derived via DeriveStreamSeed, so configuring one fault knob never
  // perturbs another family's sequence.
  explicit Network(uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches (or re-attaches) a node.  Re-registration after DisconnectNode
  // starts every channel touching the node from sequence number zero — a
  // recovered node never observes a seq discontinuity — and replays reliable
  // traffic that was parked for the node while it was down (FIFO per channel,
  // deduplicated, re-stamped with fresh sequence numbers).
  void RegisterNode(NodeId node, MessageHandler* handler);

  // Enqueues a message for FIFO delivery on the (src, dst) channel.  Fault
  // injection applies per delivery class (see header comment).
  void Send(NodeId src, NodeId dst, std::shared_ptr<const Payload> payload);

  // Consumes the head of the scheduler-chosen non-empty channel: delivers it,
  // or spends it on a fault (loss, duplicate suppression, reassembly stash,
  // parking).  Each consumed message advances the virtual clock by one tick.
  // Returns false if nothing was pending.
  bool DeliverOne();

  // Retransmits every due unacked reliable payload whose destination is
  // reachable (registered, not partitioned), first advancing the virtual
  // clock to the earliest deadline if none is due yet.  Returns false if
  // there was nothing eligible to retransmit.
  bool FireRetransmitTimers();

  // Drains all channels; handlers may enqueue more work, which is also
  // drained, and unacked reliable payloads are retransmitted (advancing the
  // virtual clock past their backoff deadlines) until every reachable
  // destination has acked.  Guarded against runaway protocols by a delivery
  // budget.  Reliable traffic to disconnected or partitioned nodes stays
  // parked and does not prevent quiescence.  Postcondition (checked): no
  // unacked payload with a live retransmit timer remains on a reachable
  // channel — quiescence leaves pending state only where the peer is down or
  // partitioned, bounded by the parked-payload buffers.
  void RunUntilIdle();

  // Non-fatal variant of RunUntilIdle for probing suspected livelocks: stops
  // after max_steps deliveries/timer firings and returns false, filling
  // *diagnostic (if non-null) with the pending-obligation dump that the fatal
  // path would have printed.  Returns true on quiescence (postcondition
  // checked as in RunUntilIdle).
  bool RunUntilIdleBounded(uint64_t max_steps, std::string* diagnostic);

  // Step cap for RunUntilIdle; exceeding it is a fatal diagnostic (the
  // network dump plus any open obligations) instead of an unbounded spin.
  void set_quiesce_budget(uint64_t steps) { quiesce_budget_ = steps; }

  // Per-channel pending state: queue depths and head readiness, unacked
  // entries with their earliest retransmit deadline, reassembly stashes —
  // the dump a quiescence-budget failure or a liveness verdict attaches.
  std::string DebugDump() const;

  bool Idle() const;
  size_t PendingCount() const;
  // Unacked reliable payloads (in flight, awaiting ack, or parked).
  size_t UnackedCount() const;
  // Unacked reliable payloads whose destination is currently unregistered;
  // these are replayed when the destination re-registers.
  size_t HeldCount() const;
  // Unacked reliable payloads whose destination is registered and not
  // partitioned — payloads RunUntilIdle still owes a retransmission.  Zero at
  // quiescence; the quiescence regression tests pin both edges.
  size_t ReachableUnackedCount() const;

  // --- Virtual clock (ticks; one tick per consumed message). ---
  uint64_t now() const { return now_; }
  void AdvanceClock(uint64_t ticks) { now_ += ticks; }
  // Base retransmission timeout; attempt k backs off to base << k ticks.
  void set_retransmit_timeout(uint64_t ticks);
  // Full control over the retransmission schedule (backoff shape, jitter,
  // cap).  set_retransmit_timeout is shorthand for changing base_timeout.
  void set_retry_policy(const RetryPolicyConfig& config) { retry_.set_config(config); }
  const RetryPolicy& retry_policy() const { return retry_; }

  // --- Gray-failure injection (see LinkProfile). ---
  void InstallLinkProfile(NodeId src, NodeId dst, const LinkProfile& profile);
  void ClearLinkProfile(NodeId src, NodeId dst);
  const LinkProfile* FindLinkProfile(NodeId src, NodeId dst) const;
  // Node-level zombie: every inbound link of the node drops dispatch for all
  // categories (transport stays alive).  Orthogonal to per-link profiles.
  void SetZombieNode(NodeId node, bool zombie);
  bool IsZombieNode(NodeId node) const { return zombie_nodes_.count(node) > 0; }

  // --- Progress obligations (liveness oracle ledger). ---
  // Disabled unless something calls obligations().Enable(); protocol layers
  // Open/Close through this accessor and the LivenessOracle reads it.  The
  // tracker is observation-only: no wire byte, stat or decision changes.
  ObligationTracker& obligations() { return obligations_; }
  const ObligationTracker& obligations() const { return obligations_; }

  // True while any queued wire copy, unacked reliable payload or reassembly
  // stash touches `node` as sender or receiver — i.e. progress involving the
  // node may still arrive without new action.  The liveness oracle uses this
  // to excuse obligations that are merely waiting on in-flight traffic.
  bool HasTrafficTouching(NodeId node) const;

  // --- Delivery scheduling & decision record/replay. ---
  // Installs the policy choosing which channel delivers next.  The default
  // FifoScheduler preserves the historical drain order bit-for-bit; nullptr
  // restores it.
  void set_scheduler(std::unique_ptr<SchedulerPolicy> scheduler);
  SchedulerPolicy& scheduler() { return *scheduler_; }
  const DecisionLog& decisions() const { return decisions_; }

  // Starts recording every non-default decision into a trace.  Begin on a
  // fresh network (before any Send) so trace indices cover the whole run.
  void StartRecording();
  // Stops recording and returns the trace (scenario/seed metadata filled by
  // the caller; scheduler name is stamped here).
  Trace TakeRecordedTrace();
  // Replays a recorded decision stream: recorded indices override each
  // choice, everything else takes the deterministic default, and no Rng or
  // SchedulerPolicy is consulted.  A fresh network replaying the trace of a
  // recorded run reproduces it bit-identically (same deliveries, same stats
  // fingerprint).  Truncated or edited traces still replay deterministically.
  void ReplayFrom(const Trace& trace);

  // Invoked after every message handed to a handler (not for drops, parks or
  // suppressed duplicates).  The explorer hooks invariant checks here.
  void set_delivery_observer(std::function<void(const Message&)> observer) {
    delivery_observer_ = std::move(observer);
  }

  // --- Client-history recording (consistency checker). ---
  // When set, the network reports message causality out of band — each
  // logical send, and each delivery *before* the handler runs so sends the
  // handler emits inherit the joined clock.  Pure observation: no wire byte,
  // stat, or decision index changes, so traffic fingerprints and recorded
  // traces stay bit-identical with or without a recorder (pinned by
  // tests/runtime/consistency_test.cc).  Null disables (single branch per
  // send/delivery; gone entirely under BMX_DISABLE_HISTORY).
  void set_history_recorder(HistoryRecorder* recorder) { history_ = recorder; }
  HistoryRecorder* history_recorder() const { return history_; }

  // --- Fault injection. ---
  // Loss probability applied to unreliable payloads (app-visible loss).
  void set_loss_rate(double p) { loss_rate_ = p; }
  // Duplication probability.  Unreliable duplicates reach the handler;
  // reliable duplicates are suppressed by the receiver (and counted).
  void set_duplication_rate(double p) { duplication_rate_ = p; }
  // Probability that a send is enqueued one slot early, perturbing channel
  // order.  The reliable stream is reassembled in order at the receiver;
  // unreliable payloads arrive out of order.
  void set_reorder_rate(double p) { reorder_rate_ = p; }
  // Probability that a single transmission of a reliable payload is lost in
  // flight (masked by retransmission).  Must be < 1.0 or delivery could
  // never terminate.
  void set_reliable_loss_rate(double p);
  // Probability that the transport ack for a delivered reliable payload is
  // lost, forcing a retransmission the receiver then suppresses.  Must be
  // < 1.0.
  void set_ack_loss_rate(double p);
  // Deterministically loses the next n reliable transmissions (testing hook
  // for retransmission/backoff behavior).
  void ForceDropReliableTransmissions(size_t n) { force_drop_reliable_ += n; }

  // Transient partition between a and b (both directions): unreliable
  // traffic is dropped, reliable traffic waits in the unacked buffer and
  // flows after HealPartition.
  void PartitionNodes(NodeId a, NodeId b);
  void HealPartition(NodeId a, NodeId b);
  bool Partitioned(NodeId a, NodeId b) const;

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  // Simulates a node crash: the handler is unregistered, queued unreliable
  // traffic to the node is dropped, and unacked reliable traffic to the node
  // is parked for redelivery.  Wire copies already in flight FROM the node
  // are not recalled — a real crash cannot chase packets — but they carry the
  // dead incarnation's epoch and are rejected at delivery.  All channel
  // sequence state touching the node is reset; empty channels are pruned.
  void DisconnectNode(NodeId node);

  // True while the node has a registered handler (i.e. is not crashed or
  // disconnected).  The DSM layer uses this to distinguish "my request is
  // deferred at a live peer" from "my request is parked toward a dead one".
  bool NodeAttached(NodeId node) const { return handlers_.count(node) > 0; }

  // --- Batched control-message transport (src/net/batch.h, §14). ---
  // Installs the coalescing policy.  Disabled (the default) is the pinned
  // baseline: every code path below is a single `enabled` branch away from
  // the historical transport, and the fingerprint tests hold it bit-identical.
  // Must be set before any batchable traffic is pending.
  void set_batch_policy(const BatchPolicy& policy);
  const BatchPolicy& batch_policy() const { return batch_policy_; }
  // Logical messages currently coalescing (not yet flushed into a frame).
  size_t PendingBatchedCount() const { return pending_batched_; }

  // Drops parked/unacked reliable payloads of one kind from the (src, dst)
  // channel, plus any queued wire copies of them.  Used when the sender
  // abandons a request addressed to a crashed node: without this, the request
  // would be replayed to the node's next incarnation even though the caller
  // already gave up on it (and possibly reissued it elsewhere).  Returns the
  // number of payloads dropped.
  size_t DropParked(NodeId src, NodeId dst, MsgKind kind);

  // --- Incarnation epochs. ---
  // Every registered node has an incarnation number (first registration = 1);
  // re-registration after DisconnectNode advances it.  Send() stamps both
  // endpoints' epochs on the message, and DeliverOne() rejects wire copies
  // whose stamped epoch no longer matches — the transport-level filter that
  // makes a previous life's grants, acks and piggybacks inert.  Nodes never
  // seen by RegisterNode have epoch 0 and are exempt (test harnesses).
  uint64_t IncarnationOf(NodeId node) const;

  // Invoked (if set) when a handler throws NodeCrashSignal mid-delivery: the
  // cluster converts the signal into a node crash (DisconnectNode + deferred
  // teardown of the node object).  The listener runs after the victim's stack
  // has unwound; it must not destroy the handler object synchronously if the
  // victim's own frames may still be live below RunUntilIdle.
  void set_crash_listener(std::function<void(NodeId)> listener) {
    crash_listener_ = std::move(listener);
  }

 private:
  using ChannelKey = std::pair<NodeId, NodeId>;

  struct RetxEntry {
    Message msg;
    uint32_t attempts = 0;  // retransmissions so far (not counting the send)
    uint64_t next_retry = 0;
    // True once the payload was counted in the `parked` stat for the current
    // down period of its destination; cleared when the payload is redelivered
    // to a fresh incarnation.  Guards against double-counting a payload whose
    // wire copies reach a dead destination more than once (duplication).
    bool parked_counted = false;
  };

  struct Channel {
    std::deque<Message> queue;  // wire copies awaiting a delivery attempt
    uint64_t next_seq = 0;
    uint64_t next_rel_seq = 0;
    // Receiver state for the reliable stream.
    uint64_t expected_rel_seq = 0;
    std::map<uint64_t, Message> stashed;  // out-of-order reliable arrivals
    // Sender state: every un-acked reliable payload, keyed by rel_seq.  Also
    // serves as the redelivery queue while the destination is disconnected.
    std::map<uint64_t, RetxEntry> unacked;
    // Consecutive scheduler picks this channel had a pending head but was
    // passed over; DelayBoundedScheduler bounds reordering with it.
    uint64_t deferred = 0;
  };

  // Per-link gray-failure state: the profile plus dedicated fault-draw
  // streams, derived lazily from link-mixed stream seeds at install time.
  struct LinkState {
    LinkProfile profile;
    Rng loss_rng;
    Rng dup_rng;
    Rng rel_loss_rng;
  };

  // One per-channel coalescing buffer (batching enabled only); flushed into a
  // BatchFramePayload by size, deadline, ordering or quiescence triggers.
  struct PendingBatch {
    std::vector<BatchedMessage> entries;
    size_t bytes = 0;     // sum of entry payload wire sizes
    uint64_t deadline = 0;  // flush no later than this virtual-clock tick
  };

  void Enqueue(Channel* channel, Message msg);
  // Transport-level ack for a received reliable payload (subject to ack
  // loss).  Returns true if the sender's unacked entry was retired.
  void AckReliable(Channel* channel, uint64_t rel_seq);
  bool ReachableChannel(const ChannelKey& key) const;
  void CountWireCopy(const Payload& payload);
  // True if the wire copy was emitted by or addressed to an incarnation that
  // is no longer current (counted in epoch_rejected_msgs by the caller).
  bool StaleEpoch(const Message& msg) const;
  // Delivers to a handler, converting a thrown NodeCrashSignal into a crash
  // via the crash listener.  Returns false if the handler crashed.
  bool Dispatch(MessageHandler* handler, const Message& msg);
  // One fault draw routed through the decision stream: live/record modes
  // consult the per-purpose rng, replay consults the trace.  A rate of zero
  // consumes no decision index (the draw point does not exist).
  bool DrawChance(DecisionPoint point, double rate, Rng* rng);
  // Chooses the channel DeliverOne consumes from (scheduler + decision
  // stream); returns nullptr when every queue is empty.
  Channel* PickDeliveryChannel(ChannelKey* key_out);
  // Marks the payload behind a wire copy as parked, exactly once per down
  // period (see RetxEntry::parked_counted).
  void CountParked(Channel* channel, const Message& msg);
  // Routes armed crash-point firings through the decision stream while this
  // network records or replays (see FaultInjector::set_fire_gate).
  void AttachFaultGate();
  void DetachFaultGate();
  // nullptr when the link has no profile (including when the table is empty —
  // the common case, kept to one branch).
  LinkState* FindLinkState(const ChannelKey& key);
  // Virtual-clock tick at which a wire copy enqueued now on `key` becomes
  // deliverable (0 unless the link inflates latency).
  uint64_t ReadyAt(const ChannelKey& key) const;
  // True if this delivery must be swallowed by a zombie link/peer.
  bool ZombieDrop(const ChannelKey& key, const Message& msg) const;
  // Shared drain loop behind RunUntilIdle/RunUntilIdleBounded; false when the
  // step budget ran out (diagnostic filled if requested).
  bool DrainUntilIdle(uint64_t budget, std::string* diagnostic);

  // --- Coalescing layer internals (all no-ops while batching is off). ---
  // True when the payload may ride a batch frame under the current policy.
  bool Batchable(const Payload& payload) const;
  // Buffers one logical send into the channel's pending batch (logical stats
  // and the history snapshot were already taken by Send); flushes on the
  // size caps.
  void AppendToBatch(NodeId src, NodeId dst, std::shared_ptr<const Payload> payload);
  // Packs the channel's pending batch into one frame and transmits it through
  // the shared wire path (dup draw, unacked entry, enqueue).
  void FlushBatch(const ChannelKey& key, PendingBatch batch);
  // Flushes the pending batch of one channel, if any (ordering trigger).
  void FlushBatchFor(const ChannelKey& key, uint64_t* trigger_counter);
  // Flushes every batch whose deadline has passed (start of DeliverOne).
  void FlushDueBatches();
  // Flushes everything pending; returns the number of frames emitted
  // (quiescence trigger in DrainUntilIdle).
  size_t FlushAllBatches();
  // Hands one in-order reliable delivery to the destination: a batch frame is
  // verified against its wire image and unpacked into per-logical-message
  // dispatches; anything else dispatches as-is.  Returns false if the
  // destination crashed mid-dispatch.
  bool DispatchReliable(const ChannelKey& key, MessageHandler* handler, const Message& msg);

  uint64_t root_seed_;
  // One independent stream per random-decision family (satellite of the
  // determinism model: toggling one fault knob never perturbs another
  // family's draw sequence).
  Rng loss_rng_;
  Rng dup_rng_;
  Rng reorder_rng_;
  Rng rel_loss_rng_;
  Rng ack_loss_rng_;
  std::unique_ptr<SchedulerPolicy> scheduler_;
  DecisionLog decisions_;
  std::function<void(const Message&)> delivery_observer_;
  HistoryRecorder* history_ = nullptr;
  bool fault_gate_attached_ = false;
  uint64_t now_ = 0;
  // Retransmission schedule (default config reproduces the legacy
  // base << min(attempts, 16) backoff bit-for-bit).
  RetryPolicy retry_;
  uint64_t quiesce_budget_ = 50'000'000;
  // Gray-failure state.  any_link_latency_ lets the scheduler skip the
  // readiness scan entirely when no installed profile inflates latency.
  std::map<ChannelKey, LinkState> link_profiles_;
  std::set<NodeId> zombie_nodes_;
  bool any_link_latency_ = false;
  ObligationTracker obligations_;
  double loss_rate_ = 0.0;
  double duplication_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  double reliable_loss_rate_ = 0.0;
  double ack_loss_rate_ = 0.0;
  size_t force_drop_reliable_ = 0;
  std::map<NodeId, MessageHandler*> handlers_;
  // Incarnation number per node ever registered (see IncarnationOf).
  std::map<NodeId, uint64_t> incarnation_;
  std::function<void(NodeId)> crash_listener_;
  // std::map keeps channel iteration order deterministic.
  std::map<ChannelKey, Channel> channels_;
  std::set<ChannelKey> partitions_;  // stored as (min, max)
  NetworkStats stats_;
  size_t pending_ = 0;
  // Coalescing layer (batching enabled only).  std::map for deterministic
  // flush order; pending_batched_ mirrors the total entry count so Idle()
  // and the liveness oracle see buffered-but-unflushed traffic.
  BatchPolicy batch_policy_;
  std::map<ChannelKey, PendingBatch> pending_batches_;
  size_t pending_batched_ = 0;
};

}  // namespace bmx

#endif  // SRC_NET_NETWORK_H_
