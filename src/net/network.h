// Deterministic simulated network: FIFO point-to-point channels, per-kind
// statistics, and seeded fault injection (loss and duplication) for payloads
// that declare themselves tolerant of unreliable delivery.
//
// The simulation is single-threaded and event-driven: Send() enqueues,
// RunUntilIdle() drains every channel in a deterministic round-robin order,
// invoking the destination node's handler for each delivery.  Handlers may
// send further messages; delivery continues until the network is quiescent.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/message.h"

namespace bmx {

class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

struct NetworkStats {
  struct PerKind {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t bytes = 0;  // wire bytes of sent messages
  };
  std::array<PerKind, static_cast<size_t>(MsgKind::kMaxKind)> per_kind;

  PerKind& For(MsgKind kind) { return per_kind[static_cast<size_t>(kind)]; }
  const PerKind& For(MsgKind kind) const { return per_kind[static_cast<size_t>(kind)]; }

  uint64_t TotalSent() const;
  uint64_t TotalBytes() const;
  uint64_t SentInCategory(MsgCategory category) const;
  uint64_t BytesInCategory(MsgCategory category) const;
};

class Network {
 public:
  explicit Network(uint64_t seed = 1) : rng_(seed) {}

  void RegisterNode(NodeId node, MessageHandler* handler);

  // Enqueues a message for FIFO delivery on the (src, dst) channel.  Fault
  // injection applies only to payloads with reliable() == false.
  void Send(NodeId src, NodeId dst, std::shared_ptr<const Payload> payload);

  // Delivers exactly one pending message (the head of the next non-empty
  // channel in round-robin order).  Returns false if nothing was pending.
  bool DeliverOne();

  // Drains all channels; handlers may enqueue more work, which is also
  // drained.  Guarded against runaway protocols by a delivery budget.
  void RunUntilIdle();

  bool Idle() const;
  size_t PendingCount() const;

  // Loss probability applied to unreliable payloads.
  void set_loss_rate(double p) { loss_rate_ = p; }
  // Duplication probability applied to unreliable payloads.
  void set_duplication_rate(double p) { duplication_rate_ = p; }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  // Simulates a node crash: all traffic queued to or from the node is
  // discarded and the handler unregistered until re-registration.
  void DisconnectNode(NodeId node);

 private:
  using ChannelKey = std::pair<NodeId, NodeId>;

  Rng rng_;
  double loss_rate_ = 0.0;
  double duplication_rate_ = 0.0;
  std::map<NodeId, MessageHandler*> handlers_;
  // std::map keeps channel iteration order deterministic.
  std::map<ChannelKey, std::deque<Message>> channels_;
  std::map<ChannelKey, uint64_t> next_seq_;
  NetworkStats stats_;
  size_t pending_ = 0;
};

}  // namespace bmx

#endif  // SRC_NET_NETWORK_H_
