#include "src/net/scheduler.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/check.h"

namespace bmx {

const char* DecisionPointName(DecisionPoint point) {
  switch (point) {
    case DecisionPoint::kDeliverPick:
      return "deliver-pick";
    case DecisionPoint::kUnreliableLoss:
      return "unreliable-loss";
    case DecisionPoint::kDuplication:
      return "duplication";
    case DecisionPoint::kReorder:
      return "reorder";
    case DecisionPoint::kReliableLoss:
      return "reliable-loss";
    case DecisionPoint::kAckLoss:
      return "ack-loss";
    case DecisionPoint::kFaultFire:
      return "fault-fire";
    case DecisionPoint::kMaxPoint:
      break;
  }
  return "unknown";
}

DecisionPoint DecisionPointFromName(const std::string& name) {
  for (size_t p = 0; p < static_cast<size_t>(DecisionPoint::kMaxPoint); ++p) {
    if (name == DecisionPointName(static_cast<DecisionPoint>(p))) {
      return static_cast<DecisionPoint>(p);
    }
  }
  return DecisionPoint::kMaxPoint;
}

std::string Trace::Serialize() const {
  std::ostringstream os;
  os << "# bmx-trace v1\n";
  os << "scenario: " << scenario << "\n";
  os << "scheduler: " << scheduler << "\n";
  os << "root_seed: " << root_seed << "\n";
  os << "walk_seed: " << walk_seed << "\n";
  os << "total_decisions: " << total_decisions << "\n";
  for (const Decision& d : decisions) {
    os << "decision: " << d.index << " " << DecisionPointName(d.point) << " " << d.value << "\n";
  }
  // Footer: the decision count again.  A trace cut off mid-transfer is
  // missing it (or disagrees with it) and is rejected instead of silently
  // replaying a prefix of the schedule.
  os << "end: " << decisions.size() << "\n";
  return os.str();
}

bool Trace::Parse(const std::string& text, Trace* out) {
  BMX_CHECK(out != nullptr);
  *out = Trace{};
  std::istringstream is(text);
  std::string line;
  bool versioned = false;
  bool have_end = false;
  uint64_t end_count = 0;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      if (line.find("bmx-trace v1") != std::string::npos) {
        versioned = true;
      }
      continue;
    }
    auto colon = line.find(": ");
    if (colon == std::string::npos) {
      return false;
    }
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 2);
    if (have_end) {
      return false;  // content after the footer: corrupted trace
    }
    if (key == "end") {
      end_count = std::strtoull(value.c_str(), nullptr, 10);
      have_end = true;
    } else if (key == "scenario") {
      out->scenario = value;
    } else if (key == "scheduler") {
      out->scheduler = value;
    } else if (key == "root_seed") {
      out->root_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "walk_seed") {
      out->walk_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "total_decisions") {
      out->total_decisions = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "decision") {
      std::istringstream ds(value);
      Decision d;
      std::string point_name;
      if (!(ds >> d.index >> point_name >> d.value)) {
        return false;
      }
      d.point = DecisionPointFromName(point_name);
      if (d.point == DecisionPoint::kMaxPoint) {
        return false;
      }
      out->decisions.push_back(d);
    } else {
      return false;  // unknown key: refuse rather than misreplay
    }
  }
  // A trace is complete only when the version header was seen AND the footer
  // confirms every decision line arrived (truncation drops the footer or
  // decision lines; either way the counts disagree).
  return versioned && have_end && end_count == out->decisions.size();
}

bool Trace::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    return false;
  }
  f << Serialize();
  return static_cast<bool>(f);
}

bool Trace::ReadFile(const std::string& path, Trace* out) {
  std::ifstream f(path);
  if (!f) {
    return false;
  }
  std::ostringstream os;
  os << f.rdbuf();
  return Parse(os.str(), out);
}

void DecisionLog::StartRecording() {
  BMX_CHECK(mode_ != Mode::kReplay) << "cannot record while replaying";
  mode_ = Mode::kRecord;
  trace_ = Trace{};
}

Trace DecisionLog::TakeTrace() {
  BMX_CHECK(mode_ == Mode::kRecord);
  mode_ = Mode::kLive;
  trace_.total_decisions = next_index_;
  Trace out;
  out = trace_;
  trace_ = Trace{};
  return out;
}

void DecisionLog::StartReplay(const Trace& trace) {
  mode_ = Mode::kReplay;
  replay_.clear();
  for (const Decision& d : trace.decisions) {
    replay_[d.index] = d;
  }
}

}  // namespace bmx
