#include "src/net/gray_failure.h"

#include <cstdlib>

namespace bmx {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool ParseNodeId(const std::string& s, NodeId* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<NodeId>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

bool GraySpec::Parse(const std::string& text, GraySpec* out, std::string* error) {
  *out = GraySpec{};
  for (const std::string& part : SplitOn(text, ';')) {
    if (part.empty()) {
      continue;
    }
    if (part.rfind("zombie=", 0) == 0) {
      NodeId node;
      if (!ParseNodeId(part.substr(7), &node)) {
        return Fail(error, "bad node id in '" + part + "'");
      }
      out->zombie_nodes.push_back(node);
      continue;
    }
    size_t arrow = part.find("->");
    if (arrow == std::string::npos) {
      return Fail(error, "expected 'src->dst:...' or 'zombie=N' in '" + part + "'");
    }
    size_t colon = part.find(':', arrow);
    if (colon == std::string::npos) {
      return Fail(error, "missing ':' after link endpoints in '" + part + "'");
    }
    GrayLinkSpec link;
    if (!ParseNodeId(part.substr(0, arrow), &link.src) ||
        !ParseNodeId(part.substr(arrow + 2, colon - arrow - 2), &link.dst)) {
      return Fail(error, "bad link endpoints in '" + part + "'");
    }
    if (link.src == link.dst) {
      return Fail(error, "link endpoints must differ in '" + part + "'");
    }
    for (const std::string& attr : SplitOn(part.substr(colon + 1), ',')) {
      if (attr == "zombie") {
        link.profile.zombie = true;
        continue;
      }
      size_t eq = attr.find('=');
      if (eq == std::string::npos) {
        return Fail(error, "expected key=value or 'zombie' in '" + attr + "'");
      }
      std::string key = attr.substr(0, eq);
      std::string value = attr.substr(eq + 1);
      if (key == "lat") {
        char* end = nullptr;
        link.profile.latency_ticks = std::strtoull(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          return Fail(error, "bad latency in '" + attr + "'");
        }
      } else if (key == "loss") {
        if (!ParseDouble(value, &link.profile.loss_rate) || link.profile.loss_rate < 0 ||
            link.profile.loss_rate >= 1.0) {
          return Fail(error, "loss must be in [0, 1) in '" + attr + "'");
        }
      } else if (key == "dup") {
        if (!ParseDouble(value, &link.profile.duplication_rate) ||
            link.profile.duplication_rate < 0 || link.profile.duplication_rate > 1.0) {
          return Fail(error, "dup must be in [0, 1] in '" + attr + "'");
        }
      } else {
        return Fail(error, "unknown link attribute '" + key + "'");
      }
    }
    out->links.push_back(link);
  }
  return true;
}

void GraySpec::Apply(Network* net) const {
  for (const GrayLinkSpec& link : links) {
    net->InstallLinkProfile(link.src, link.dst, link.profile);
  }
  for (NodeId node : zombie_nodes) {
    net->SetZombieNode(node, true);
  }
}

std::string GraySpec::ToString() const {
  std::string out;
  for (const GrayLinkSpec& link : links) {
    if (!out.empty()) {
      out += ';';
    }
    out += std::to_string(link.src) + "->" + std::to_string(link.dst) + ":";
    std::string attrs;
    if (link.profile.latency_ticks > 0) {
      attrs += "lat=" + std::to_string(link.profile.latency_ticks);
    }
    if (link.profile.loss_rate >= 0) {
      if (!attrs.empty()) attrs += ',';
      attrs += "loss=" + std::to_string(link.profile.loss_rate);
    }
    if (link.profile.duplication_rate >= 0) {
      if (!attrs.empty()) attrs += ',';
      attrs += "dup=" + std::to_string(link.profile.duplication_rate);
    }
    if (link.profile.zombie) {
      if (!attrs.empty()) attrs += ',';
      attrs += "zombie";
    }
    out += attrs;
  }
  for (NodeId node : zombie_nodes) {
    if (!out.empty()) {
      out += ';';
    }
    out += "zombie=" + std::to_string(node);
  }
  return out;
}

}  // namespace bmx
