#include "src/net/batch.h"

#include <cstring>

#include "src/common/check.h"

namespace bmx {

namespace {

constexpr uint8_t kMagic[4] = {'B', 'M', 'X', 'B'};

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

bool Fail(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = what;
  }
  return false;
}

}  // namespace

size_t BatchFrameImageSize(const std::vector<size_t>& body_sizes) {
  size_t total = kBatchFrameHeaderBytes + kBatchFrameTrailerBytes;
  for (size_t s : body_sizes) {
    total += kBatchEntryHeaderBytes + s;
  }
  return total;
}

std::vector<uint8_t> EncodeBatchFrame(const std::vector<BatchWireEntry>& entries) {
  BMX_CHECK(!entries.empty()) << "a batch frame must carry at least one message";
  BMX_CHECK_LE(entries.size(), kMaxBatchEntries);
  std::vector<uint8_t> out;
  out.reserve(64);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kBatchFrameVersion);
  PutU16(&out, static_cast<uint16_t>(entries.size()));
  size_t region = 0;
  for (const BatchWireEntry& e : entries) {
    region += kBatchEntryHeaderBytes + e.body.size();
  }
  BMX_CHECK_LE(kBatchFrameHeaderBytes + region + kBatchFrameTrailerBytes, kMaxBatchFrameBytes)
      << "batch frame exceeds the codec size bound";
  PutU32(&out, static_cast<uint32_t>(region));
  for (const BatchWireEntry& e : entries) {
    BMX_CHECK_LT(e.kind, static_cast<uint8_t>(MsgKind::kMaxKind));
    BMX_CHECK_LT(e.category, kNumMsgCategories);
    out.push_back(e.kind);
    out.push_back(e.category);
    PutU32(&out, static_cast<uint32_t>(e.body.size()));
    out.insert(out.end(), e.body.begin(), e.body.end());
  }
  PutU64(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

bool DecodeBatchFrame(const uint8_t* data, size_t size, std::vector<BatchWireEntry>* out,
                      std::string* error) {
  if (data == nullptr || size < kBatchFrameHeaderBytes + kBatchFrameTrailerBytes) {
    return Fail(error, "frame shorter than header + checksum");
  }
  if (size > kMaxBatchFrameBytes) {
    return Fail(error, "frame exceeds the codec size bound");
  }
  if (std::memcmp(data, kMagic, 4) != 0) {
    return Fail(error, "bad magic");
  }
  if (data[4] != kBatchFrameVersion) {
    return Fail(error, "unknown frame version");
  }
  // Checksum first: after this, every structural field is known authentic, so
  // the structural checks below diagnose encoder bugs rather than corruption.
  if (GetU64(data + size - kBatchFrameTrailerBytes) !=
      Fnv1a64(data, size - kBatchFrameTrailerBytes)) {
    return Fail(error, "checksum mismatch");
  }
  size_t count = GetU16(data + 5);
  if (count == 0) {
    return Fail(error, "empty frame");
  }
  if (count > kMaxBatchEntries) {
    return Fail(error, "entry count exceeds the codec bound");
  }
  size_t region = GetU32(data + 7);
  if (kBatchFrameHeaderBytes + region + kBatchFrameTrailerBytes != size) {
    return Fail(error, "entry-region length does not match frame size");
  }
  std::vector<BatchWireEntry> entries;
  entries.reserve(count);
  const uint8_t* p = data + kBatchFrameHeaderBytes;
  size_t remaining = region;
  for (size_t i = 0; i < count; ++i) {
    if (remaining < kBatchEntryHeaderBytes) {
      return Fail(error, "truncated entry header");
    }
    BatchWireEntry e;
    e.kind = p[0];
    e.category = p[1];
    if (e.kind >= static_cast<uint8_t>(MsgKind::kMaxKind)) {
      return Fail(error, "entry kind out of range");
    }
    if (e.category >= kNumMsgCategories) {
      return Fail(error, "entry category out of range");
    }
    size_t body_len = GetU32(p + 2);
    p += kBatchEntryHeaderBytes;
    remaining -= kBatchEntryHeaderBytes;
    if (body_len > remaining) {
      return Fail(error, "entry body overruns the frame");
    }
    e.body.assign(p, p + body_len);
    p += body_len;
    remaining -= body_len;
    entries.push_back(std::move(e));
  }
  if (remaining != 0) {
    return Fail(error, "trailing bytes after the last entry");
  }
  *out = std::move(entries);
  return true;
}

bool BatchableMsgKind(MsgKind kind) {
  switch (kind) {
    // DSM control: invalidation fan-outs and their acks, plus the small
    // address-forwarding pushes of the reclaim path.  Acquire/grant are
    // excluded — they gate mutator progress and grants are bulky.
    case MsgKind::kInvalidate:
    case MsgKind::kInvalidateAck:
    case MsgKind::kObjectPush:
    // Background GC control: scion creates, from-space reclaim trains and
    // the piggyback-overflow spill (§4.5).  Reachability tables stay out:
    // they are unreliable idempotent datagrams (§6.1), and frames ride the
    // reliable stream.
    case MsgKind::kScionMessage:
    case MsgKind::kCopyRequest:
    case MsgKind::kCopyReply:
    case MsgKind::kAddressChange:
    case MsgKind::kAddressChangeAck:
    // Crash recovery: the reconciliation queries a restarted node fans out.
    case MsgKind::kRecoveryQuery:
      return true;
    default:
      return false;
  }
}

}  // namespace bmx
