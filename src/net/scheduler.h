// Schedule exploration plumbing for the simulated network.
//
// The network has exactly seven kinds of nondeterministic choice: which
// channel's head message to consume next, the five fault draws (datagram
// loss, duplication, reorder, reliable-transmission loss, ack loss), and
// whether an armed crash-point schedule is allowed to fire.  Every one of
// them is funneled through a single, totally ordered *decision stream*
// (DecisionLog).  That gives three capabilities:
//
//   * Pluggable scheduling.  A SchedulerPolicy chooses the next delivery
//     among the currently non-empty channels.  The FIFO policy reproduces
//     the historical drain order bit-for-bit; RandomWalkScheduler and
//     DelayBoundedScheduler explore alternative legal interleavings.
//   * Record.  A run can record every decision whose outcome differed from
//     the deterministic default (FIFO pick, no fault, fault fires) as a
//     sparse Trace: (decision index, decision point, value) triples.
//   * Replay.  Feeding a Trace back into a fresh network reproduces the
//     recorded run bit-identically: recorded indices override the choice,
//     every other decision takes the default, and no Rng is consulted at
//     all.  Truncated or edited traces still replay deterministically (the
//     tail is all-defaults), which is what makes delta-debugging shrinks of
//     a failing schedule possible.
//
// See docs/PROTOCOLS.md §11 for the trace file format and the compatibility
// guarantee of the FIFO default.

#ifndef SRC_NET_SCHEDULER_H_
#define SRC_NET_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/message.h"

namespace bmx {

// One class of nondeterministic choice in a network run.
enum class DecisionPoint : uint8_t {
  kDeliverPick = 0,   // value = index into the candidate channel list
  kUnreliableLoss,    // value = 1 when the datagram is lost
  kDuplication,       // value = 1 when a second wire copy is injected
  kReorder,           // value = 1 when the send is enqueued one slot early
  kReliableLoss,      // value = 1 when the reliable transmission is lost
  kAckLoss,           // value = 1 when the transport ack is lost
  kFaultFire,         // value = 1 when an armed crash-point fires (default)
  kMaxPoint,          // sentinel, keep last
};

const char* DecisionPointName(DecisionPoint point);
// Reverse lookup for trace parsing; returns kMaxPoint for unknown names.
DecisionPoint DecisionPointFromName(const std::string& name);

// One recorded non-default choice.
struct Decision {
  uint64_t index = 0;  // position in the run's total decision order
  DecisionPoint point = DecisionPoint::kMaxPoint;
  uint64_t value = 0;

  bool operator==(const Decision& other) const {
    return index == other.index && point == other.point && value == other.value;
  }
};

// A complete, replayable description of one run's nondeterminism: the sparse
// set of decisions that differed from the deterministic default, plus enough
// metadata to reconstruct the run (scenario, scheduler, seeds).  Defaults are
// FIFO pick / no fault / armed-fault-fires, so an EMPTY trace replays the
// plain FIFO fault-free schedule.
struct Trace {
  uint64_t root_seed = 0;       // cluster/network root seed of the run
  uint64_t walk_seed = 0;       // exploration walk seed (scheduler stream)
  std::string scenario;         // scenario closure name
  std::string scheduler;        // policy that produced the recording
  uint64_t total_decisions = 0; // decision-stream length of the recorded run
  std::vector<Decision> decisions;  // sorted by index, non-default only

  std::string Serialize() const;
  static bool Parse(const std::string& text, Trace* out);
  bool WriteFile(const std::string& path) const;
  static bool ReadFile(const std::string& path, Trace* out);
};

// What a SchedulerPolicy sees of one deliverable channel: the head message's
// routing and kind, plus how long the channel has been passed over.
struct ChannelCandidate {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MsgKind head_kind = MsgKind::kMaxKind;
  size_t queue_len = 0;
  // Consecutive delivery picks this channel had a pending head but was not
  // chosen.  DelayBoundedScheduler uses it to bound reordering.
  uint64_t deferred = 0;
};

// Chooses which candidate channel's head message the network consumes next.
// Candidates are listed in the network's deterministic channel order and are
// never empty when Pick is called.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  virtual size_t Pick(const std::vector<ChannelCandidate>& candidates) = 0;
  virtual const char* name() const = 0;
  // FIFO declares itself so the network can keep its zero-overhead fast path
  // when no recording/replay is active.
  virtual bool IsFifo() const { return false; }
};

// The historical drain order: always the first non-empty channel in the
// network's deterministic channel order.  Guaranteed to reproduce pre-policy
// traffic bit-identically (pinned by tests/integration/traffic_fingerprint).
class FifoScheduler : public SchedulerPolicy {
 public:
  size_t Pick(const std::vector<ChannelCandidate>&) override { return 0; }
  const char* name() const override { return "fifo"; }
  bool IsFifo() const override { return true; }
};

// Random-walk exploration.  With probability `deviation_rate` the pick is
// uniform over all candidates; otherwise it follows FIFO.  Sparse deviations
// (the default) keep recorded traces short, which is what lets the shrinker
// reduce a failing schedule to a handful of decisions; deviation_rate = 1.0
// gives the classic uniform random walk.
class RandomWalkScheduler : public SchedulerPolicy {
 public:
  explicit RandomWalkScheduler(uint64_t seed, double deviation_rate = 1.0)
      : rng_(seed), deviation_rate_(deviation_rate) {}
  size_t Pick(const std::vector<ChannelCandidate>& candidates) override {
    if (deviation_rate_ < 1.0 && !rng_.Chance(deviation_rate_)) {
      return 0;
    }
    return static_cast<size_t>(rng_.Below(candidates.size()));
  }
  const char* name() const override { return "random-walk"; }

 private:
  Rng rng_;
  double deviation_rate_;
};

// Bounded reordering: a channel can be passed over at most `delay_bound`
// consecutive picks; once its deferral reaches the bound it must be chosen
// (the first such channel wins, restoring FIFO among the overdue).  Models a
// network where any message can overtake at most delay_bound others.
class DelayBoundedScheduler : public SchedulerPolicy {
 public:
  DelayBoundedScheduler(uint64_t seed, uint64_t delay_bound)
      : rng_(seed), delay_bound_(delay_bound) {}
  size_t Pick(const std::vector<ChannelCandidate>& candidates) override {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].deferred >= delay_bound_) {
        return i;
      }
    }
    return static_cast<size_t>(rng_.Below(candidates.size()));
  }
  const char* name() const override { return "delay-bounded"; }
  uint64_t delay_bound() const { return delay_bound_; }

 private:
  Rng rng_;
  uint64_t delay_bound_;
};

// The single totally ordered stream every nondeterministic choice flows
// through.  Three modes:
//
//   kLive    — choices are computed live (policy / Rng); nothing is stored.
//   kRecord  — choices are computed live; non-default outcomes are appended
//              to the trace under the current decision index.
//   kReplay  — choices come from the trace; absent indices take the default
//              and the live generator is never consulted (no Rng draws).
class DecisionLog {
 public:
  enum class Mode : uint8_t { kLive, kRecord, kReplay };

  Mode mode() const { return mode_; }
  uint64_t next_index() const { return next_index_; }

  // Starts recording into a fresh trace (metadata is the caller's to fill
  // via mutable_trace()).  Decision indices continue from the current count;
  // record from a fresh network for index-0-based traces.
  void StartRecording();
  // Stops recording and returns the accumulated trace.
  Trace TakeTrace();
  Trace* mutable_trace() { return &trace_; }

  // Enters replay mode over `trace`.  Decisions beyond the trace's recorded
  // indices take defaults, so truncated/edited traces replay fine.
  void StartReplay(const Trace& trace);

  // Resolves one decision.  `live_value` is only invoked in kLive/kRecord
  // modes — replay must not consume generator state.
  template <typename Fn>
  uint64_t Resolve(DecisionPoint point, uint64_t default_value, Fn&& live_value) {
    uint64_t index = next_index_++;
    if (mode_ == Mode::kReplay) {
      auto it = replay_.find(index);
      if (it == replay_.end()) {
        return default_value;
      }
      return it->second.value;
    }
    uint64_t value = live_value();
    if (mode_ == Mode::kRecord && value != default_value) {
      trace_.decisions.push_back(Decision{index, point, value});
    }
    return value;
  }

 private:
  Mode mode_ = Mode::kLive;
  uint64_t next_index_ = 0;
  Trace trace_;
  std::map<uint64_t, Decision> replay_;  // index → recorded decision
};

}  // namespace bmx

#endif  // SRC_NET_SCHEDULER_H_
