#include "src/net/network.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"
#include "src/common/fault_injector.h"
#include "src/common/perf_counters.h"
#include "src/runtime/history.h"

namespace bmx {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kAcquireRequest:
      return "AcquireRequest";
    case MsgKind::kGrant:
      return "Grant";
    case MsgKind::kInvalidate:
      return "Invalidate";
    case MsgKind::kInvalidateAck:
      return "InvalidateAck";
    case MsgKind::kObjectPush:
      return "ObjectPush";
    case MsgKind::kScionMessage:
      return "ScionMessage";
    case MsgKind::kReachabilityTable:
      return "ReachabilityTable";
    case MsgKind::kCopyRequest:
      return "CopyRequest";
    case MsgKind::kCopyReply:
      return "CopyReply";
    case MsgKind::kAddressChange:
      return "AddressChange";
    case MsgKind::kAddressChangeAck:
      return "AddressChangeAck";
    case MsgKind::kStwStop:
      return "StwStop";
    case MsgKind::kStwRootsReply:
      return "StwRootsReply";
    case MsgKind::kStwRelocate:
      return "StwRelocate";
    case MsgKind::kStwResume:
      return "StwResume";
    case MsgKind::kRcIncrement:
      return "RcIncrement";
    case MsgKind::kRcDecrement:
      return "RcDecrement";
    case MsgKind::kStrongUpdate:
      return "StrongUpdate";
    case MsgKind::kStrongUpdateAck:
      return "StrongUpdateAck";
    case MsgKind::kRecoveryQuery:
      return "RecoveryQuery";
    case MsgKind::kRecoveryReply:
      return "RecoveryReply";
    case MsgKind::kBatchFrame:
      return "BatchFrame";
    case MsgKind::kMaxKind:
      break;
  }
  return "Unknown";
}

uint64_t NetworkStats::TotalSent() const {
  uint64_t n = 0;
  for (const auto& pk : per_kind) {
    n += pk.sent;
  }
  return n;
}

uint64_t NetworkStats::TotalBytes() const {
  uint64_t n = 0;
  for (const auto& pk : per_kind) {
    n += pk.bytes;
  }
  return n;
}

uint64_t NetworkStats::TotalWireBytes() const {
  uint64_t n = 0;
  for (const auto& pk : per_kind) {
    n += pk.wire_bytes;
  }
  return n;
}

uint64_t NetworkStats::TotalRetransmits() const {
  uint64_t n = 0;
  for (const auto& pk : per_kind) {
    n += pk.retransmits;
  }
  return n;
}

uint64_t NetworkStats::TotalDupSuppressed() const {
  uint64_t n = 0;
  for (const auto& pk : per_kind) {
    n += pk.dup_suppressed;
  }
  return n;
}

uint64_t NetworkStats::TotalRedelivered() const {
  uint64_t n = 0;
  for (const auto& pk : per_kind) {
    n += pk.redelivered;
  }
  return n;
}

uint64_t NetworkStats::SentInCategory(MsgCategory category) const {
  return ForCategory(category).sent;
}

uint64_t NetworkStats::BytesInCategory(MsgCategory category) const {
  return ForCategory(category).bytes;
}

std::string NetworkStats::Fingerprint() const {
  std::string out;
  for (size_t k = 0; k < per_kind.size(); ++k) {
    const PerKind& pk = per_kind[k];
    if (pk.sent == 0 && pk.delivered == 0 && pk.wire_bytes == 0) {
      continue;
    }
    out += MsgKindName(static_cast<MsgKind>(k));
    out += ':';
    out += std::to_string(pk.sent);
    out += ':';
    out += std::to_string(pk.delivered);
    out += ':';
    out += std::to_string(pk.dropped);
    out += ':';
    out += std::to_string(pk.retransmits);
    out += ':';
    out += std::to_string(pk.dup_suppressed);
    out += ':';
    out += std::to_string(pk.bytes);
    out += ':';
    out += std::to_string(pk.wire_bytes);
    out += '\n';
  }
  return out;
}

Network::Network(uint64_t seed)
    : root_seed_(seed),
      loss_rng_(DeriveStreamSeed(seed, RngStream::kUnreliableLoss)),
      dup_rng_(DeriveStreamSeed(seed, RngStream::kDuplication)),
      reorder_rng_(DeriveStreamSeed(seed, RngStream::kReorder)),
      rel_loss_rng_(DeriveStreamSeed(seed, RngStream::kReliableLoss)),
      ack_loss_rng_(DeriveStreamSeed(seed, RngStream::kAckLoss)),
      scheduler_(std::make_unique<FifoScheduler>()) {
  obligations_.AttachClock(&now_);
}

Network::~Network() { DetachFaultGate(); }

void Network::set_retransmit_timeout(uint64_t ticks) {
  BMX_CHECK_GT(ticks, 0u);
  RetryPolicyConfig config = retry_.config();
  config.base_timeout = ticks;
  retry_.set_config(config);
}

void Network::set_reliable_loss_rate(double p) {
  BMX_CHECK_LT(p, 1.0) << "a reliable channel that loses every transmission cannot terminate";
  reliable_loss_rate_ = p;
}

void Network::set_ack_loss_rate(double p) {
  BMX_CHECK_LT(p, 1.0) << "a channel that loses every ack cannot terminate";
  ack_loss_rate_ = p;
}

namespace {
// Decorrelates per-link fault streams from the global families and from each
// other: both endpoints are mixed into the root seed before the usual
// per-purpose split, so two links (and the two directions of one pair) own
// independent sequences.
uint64_t LinkStreamSeed(uint64_t root, NodeId src, NodeId dst, RngStream stream) {
  uint64_t salt = (static_cast<uint64_t>(src) + 1) * 0x9e3779b97f4a7c15ull ^
                  (static_cast<uint64_t>(dst) + 1) * 0xbf58476d1ce4e5b9ull;
  return DeriveStreamSeed(root ^ salt, stream);
}
}  // namespace

void Network::InstallLinkProfile(NodeId src, NodeId dst, const LinkProfile& profile) {
  BMX_CHECK_NE(src, dst);
  if (profile.loss_rate >= 0) {
    // The per-link rate also governs reliable transmissions on the link.
    BMX_CHECK_LT(profile.loss_rate, 1.0)
        << "a link that loses every transmission cannot terminate";
  }
  LinkState state{profile, Rng(LinkStreamSeed(root_seed_, src, dst, RngStream::kLinkLoss)),
                  Rng(LinkStreamSeed(root_seed_, src, dst, RngStream::kLinkDuplication)),
                  Rng(LinkStreamSeed(root_seed_, src, dst, RngStream::kLinkReliableLoss))};
  link_profiles_.insert_or_assign(ChannelKey{src, dst}, std::move(state));
  any_link_latency_ = false;
  for (const auto& [key, ls] : link_profiles_) {
    any_link_latency_ |= ls.profile.latency_ticks > 0;
  }
}

void Network::ClearLinkProfile(NodeId src, NodeId dst) {
  link_profiles_.erase(ChannelKey{src, dst});
  any_link_latency_ = false;
  for (const auto& [key, ls] : link_profiles_) {
    any_link_latency_ |= ls.profile.latency_ticks > 0;
  }
}

const LinkProfile* Network::FindLinkProfile(NodeId src, NodeId dst) const {
  if (link_profiles_.empty()) {
    return nullptr;
  }
  auto it = link_profiles_.find(ChannelKey{src, dst});
  return it == link_profiles_.end() ? nullptr : &it->second.profile;
}

Network::LinkState* Network::FindLinkState(const ChannelKey& key) {
  if (link_profiles_.empty()) {
    return nullptr;
  }
  auto it = link_profiles_.find(key);
  return it == link_profiles_.end() ? nullptr : &it->second;
}

void Network::SetZombieNode(NodeId node, bool zombie) {
  if (zombie) {
    zombie_nodes_.insert(node);
  } else {
    zombie_nodes_.erase(node);
  }
}

uint64_t Network::ReadyAt(const ChannelKey& key) const {
  if (!any_link_latency_) {
    return 0;
  }
  auto it = link_profiles_.find(key);
  if (it == link_profiles_.end()) {
    return 0;
  }
  return now_ + it->second.profile.latency_ticks;
}

bool Network::ZombieDrop(const ChannelKey& key, const Message& msg) const {
  if (zombie_nodes_.count(msg.dst) > 0) {
    return true;
  }
  if (link_profiles_.empty()) {
    return false;
  }
  auto it = link_profiles_.find(key);
  if (it == link_profiles_.end() || !it->second.profile.zombie) {
    return false;
  }
  return it->second.profile.zombie_categories[static_cast<size_t>(msg.payload->category())];
}

bool Network::HasTrafficTouching(NodeId node) const {
  for (const auto& [key, channel] : channels_) {
    if (key.first != node && key.second != node) {
      continue;
    }
    if (!channel.queue.empty() || !channel.unacked.empty() || !channel.stashed.empty()) {
      return true;
    }
  }
  // Payloads still coalescing are in-flight traffic too: a deadline or
  // quiescence flush will put them on the wire without new protocol action,
  // so the liveness oracle must keep excusing obligations waiting on them.
  for (const auto& [key, batch] : pending_batches_) {
    if (key.first == node || key.second == node) {
      return true;
    }
  }
  return false;
}

std::string Network::DebugDump() const {
  std::string out = "network @tick " + std::to_string(now_) +
                    ": pending=" + std::to_string(pending_) +
                    " unacked=" + std::to_string(UnackedCount()) +
                    " reachable_unacked=" + std::to_string(ReachableUnackedCount()) + "\n";
  for (const auto& [key, channel] : channels_) {
    if (channel.queue.empty() && channel.unacked.empty() && channel.stashed.empty()) {
      continue;
    }
    out += "  ch " + std::to_string(key.first) + "->" + std::to_string(key.second) + ":";
    if (!channel.queue.empty()) {
      const Message& head = channel.queue.front();
      out += " queue=" + std::to_string(channel.queue.size());
      out += " head=";
      out += MsgKindName(head.payload->kind());
      if (head.ready_at > now_) {
        out += " head_ready_at=" + std::to_string(head.ready_at);
      }
    }
    if (!channel.unacked.empty()) {
      uint64_t earliest = UINT64_MAX;
      for (const auto& [rel_seq, entry] : channel.unacked) {
        earliest = std::min(earliest, entry.next_retry);
      }
      out += " unacked=" + std::to_string(channel.unacked.size());
      if (ReachableChannel(key)) {
        out += " next_retry=" + std::to_string(earliest);
      } else {
        out += " (parked)";
      }
    }
    if (!channel.stashed.empty()) {
      out += " stashed=" + std::to_string(channel.stashed.size());
    }
    out += "\n";
  }
  for (const auto& [key, batch] : pending_batches_) {
    out += "  batch " + std::to_string(key.first) + "->" + std::to_string(key.second) +
           ": entries=" + std::to_string(batch.entries.size()) +
           " bytes=" + std::to_string(batch.bytes) +
           " deadline=" + std::to_string(batch.deadline) + "\n";
  }
  if (obligations_.enabled() && obligations_.OpenCount() > 0) {
    out += obligations_.Dump();
  }
  return out;
}

void Network::set_scheduler(std::unique_ptr<SchedulerPolicy> scheduler) {
  scheduler_ = scheduler ? std::move(scheduler) : std::make_unique<FifoScheduler>();
}

void Network::StartRecording() {
  decisions_.StartRecording();
  decisions_.mutable_trace()->root_seed = root_seed_;
  decisions_.mutable_trace()->scheduler = scheduler_->name();
  AttachFaultGate();
}

Trace Network::TakeRecordedTrace() {
  DetachFaultGate();
  return decisions_.TakeTrace();
}

void Network::ReplayFrom(const Trace& trace) {
  decisions_.StartReplay(trace);
  AttachFaultGate();
}

void Network::AttachFaultGate() {
  if (fault_gate_attached_) {
    return;
  }
  FaultInjector::Global().set_fire_gate(this, [this](const char*, NodeId) {
    return decisions_.Resolve(DecisionPoint::kFaultFire, 1, [] { return uint64_t{1}; }) != 0;
  });
  fault_gate_attached_ = true;
}

void Network::DetachFaultGate() {
  if (!fault_gate_attached_) {
    return;
  }
  FaultInjector::Global().ClearFireGate(this);
  fault_gate_attached_ = false;
}

bool Network::DrawChance(DecisionPoint point, double rate, Rng* rng) {
  if (rate <= 0) {
    return false;  // the draw point does not exist: no decision index consumed
  }
  return decisions_.Resolve(point, 0,
                            [&] { return rng->Chance(rate) ? uint64_t{1} : uint64_t{0}; }) != 0;
}

void Network::PartitionNodes(NodeId a, NodeId b) {
  BMX_CHECK_NE(a, b);
  partitions_.insert({std::min(a, b), std::max(a, b)});
}

void Network::HealPartition(NodeId a, NodeId b) {
  partitions_.erase({std::min(a, b), std::max(a, b)});
  // Re-arm every payload that was waiting out the partition so the next pump
  // retransmits immediately instead of sleeping through residual backoff.
  for (auto& [key, channel] : channels_) {
    if ((key.first == a && key.second == b) || (key.first == b && key.second == a)) {
      for (auto& [rel_seq, entry] : channel.unacked) {
        entry.next_retry = now_;
      }
    }
  }
}

bool Network::Partitioned(NodeId a, NodeId b) const {
  return partitions_.count({std::min(a, b), std::max(a, b)}) > 0;
}

bool Network::ReachableChannel(const ChannelKey& key) const {
  return handlers_.count(key.second) > 0 && !Partitioned(key.first, key.second);
}

void Network::CountWireCopy(const Payload& payload) {
  size_t size = payload.WireSize();
  stats_.For(payload.kind()).wire_bytes += size;
  stats_.ForCategory(payload.category()).wire_bytes += size;
}

void Network::CountParked(Channel* channel, const Message& msg) {
  auto it = channel->unacked.find(msg.rel_seq);
  if (it == channel->unacked.end() || it->second.parked_counted) {
    // Already retired, or already counted for this down period — a duplicated
    // wire copy reaching a dead destination must not park the payload twice.
    return;
  }
  it->second.parked_counted = true;
  stats_.For(msg.payload->kind()).parked++;
}

uint64_t Network::IncarnationOf(NodeId node) const {
  auto it = incarnation_.find(node);
  return it == incarnation_.end() ? 0 : it->second;
}

void Network::RegisterNode(NodeId node, MessageHandler* handler) {
  BMX_CHECK(handler != nullptr);
  bool fresh_incarnation = handlers_.count(node) == 0;
  handlers_[node] = handler;
  if (!fresh_incarnation) {
    return;  // handler swap on a live node: channels keep flowing untouched
  }
  incarnation_[node]++;  // first registration = epoch 1; each rebirth advances
  // A newly attached incarnation starts every inbound channel from sequence
  // zero and receives exactly the reliable traffic parked for it while it was
  // down.  The unacked map is keyed by the original rel_seq, so iteration
  // order is the original FIFO order and each payload appears exactly once;
  // queued wire copies addressed to the dead incarnation are superseded by
  // the replay and purged (their rel_seqs belong to the old numbering).
  for (auto& [key, channel] : channels_) {
    if (key.second != node) {
      continue;
    }
    for (auto it = channel.queue.begin(); it != channel.queue.end();) {
      if (it->payload->reliable()) {
        it = channel.queue.erase(it);
        pending_--;
      } else {
        ++it;
      }
    }
    channel.stashed.clear();
    channel.next_seq = 0;
    channel.next_rel_seq = 0;
    channel.expected_rel_seq = 0;
    std::map<uint64_t, RetxEntry> held;
    held.swap(channel.unacked);
    for (auto& [old_rel_seq, entry] : held) {
      Message msg = entry.msg;
      msg.seq = channel.next_seq++;
      msg.rel_seq = channel.next_rel_seq++;
      // The replay is a fresh transmission by a live sender to the node's new
      // incarnation: re-stamp both epochs or the copy would be rejected as
      // addressed to the dead one.
      msg.src_epoch = IncarnationOf(key.first);
      msg.dst_epoch = incarnation_[node];
      msg.ready_at = ReadyAt(key);
      RetxEntry replay;
      replay.msg = msg;
      replay.next_retry = now_ + retry_.BackoffFor(0, msg.rel_seq);
      // parked_counted resets with the fresh entry: if this incarnation dies
      // too, the payload parks (and counts) again for the new down period.
      channel.unacked.emplace(msg.rel_seq, replay);
      channel.queue.push_back(std::move(msg));
      pending_++;
      stats_.wire_messages++;
      stats_.For(entry.msg.payload->kind()).redelivered++;
      CountWireCopy(*entry.msg.payload);
    }
  }
}

void Network::Enqueue(Channel* channel, Message msg) {
  bool reorder = !channel->queue.empty() &&
                 DrawChance(DecisionPoint::kReorder, reorder_rate_, &reorder_rng_);
  if (reorder) {
    stats_.For(msg.payload->kind()).reordered++;
    channel->queue.insert(channel->queue.end() - 1, std::move(msg));
  } else {
    channel->queue.push_back(std::move(msg));
  }
  pending_++;
  stats_.wire_messages++;
}

void Network::Send(NodeId src, NodeId dst, std::shared_ptr<const Payload> payload) {
  BMX_CHECK(payload != nullptr);
  BMX_CHECK_NE(src, dst);
  if (incarnation_.count(src) > 0 && handlers_.count(src) == 0) {
    // A crashed node cannot emit traffic.  Lingering call frames of the dead
    // incarnation (a test-driven operation interrupted by a fault signal, a
    // teardown path) may still reach Send before the node object is torn
    // down; the wire never sees their messages.  Nodes the network has never
    // registered are exempt — raw-harness tests drive Send directly.
    return;
  }
  auto& pk = stats_.For(payload->kind());
  auto& pc = stats_.ForCategory(payload->category());
  size_t size = payload->WireSize();
  pk.sent++;
  pk.bytes += size;
  pc.sent++;
  pc.bytes += size;
  if (batch_policy_.enabled) {
    // Coalescing layer: small control payloads buffer into the channel's
    // pending batch (logical stats above are final — the frame, not the
    // payload, will be the wire copy).  A non-batchable send flushes the
    // channel's batch first, so the reliable stream keeps the exact send
    // order — a grant can never overtake the invalidations sent before it.
    if (Batchable(*payload)) {
      AppendToBatch(src, dst, std::move(payload));
      return;
    }
    FlushBatchFor({src, dst}, &stats_.batching.flush_ordering);
  }
  CountWireCopy(*payload);

  // An installed LinkProfile substitutes per-link (rate, rng) pairs at the
  // existing decision points; the decision-stream shape is unchanged, so
  // record/replay covers gray-failure runs for free.
  LinkState* link = FindLinkState({src, dst});
  bool reliable = payload->reliable();
  if (!reliable) {
    double rate = loss_rate_;
    Rng* rng = &loss_rng_;
    if (link != nullptr && link->profile.loss_rate >= 0) {
      rate = link->profile.loss_rate;
      rng = &link->loss_rng;
    }
    if (DrawChance(DecisionPoint::kUnreliableLoss, rate, rng)) {
      pk.dropped++;
      return;
    }
  }

  Channel& channel = channels_[{src, dst}];
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.seq = channel.next_seq++;
  msg.rel_seq = reliable ? channel.next_rel_seq++ : 0;
  msg.src_epoch = IncarnationOf(src);
  msg.dst_epoch = IncarnationOf(dst);
  msg.ready_at = ReadyAt({src, dst});
  msg.payload = std::move(payload);
  // Causality observation for the consistency checker: one snapshot per
  // logical send, keyed by wire identity.  Duplicates and retransmissions
  // reuse the key; redelivery re-stamps (and is not re-reported — crash-free
  // consistency runs never take that path).
  BMX_HISTORY_HOOK(history_, OnSend(src, dst, msg.seq));

  if (reliable) {
    RetxEntry entry;
    entry.msg = msg;
    entry.next_retry = now_ + retry_.BackoffFor(0, msg.rel_seq);
    channel.unacked.emplace(msg.rel_seq, std::move(entry));
  }

  double dup_rate = duplication_rate_;
  Rng* dup_rng = &dup_rng_;
  if (link != nullptr && link->profile.duplication_rate >= 0) {
    dup_rate = link->profile.duplication_rate;
    dup_rng = &link->dup_rng;
  }
  if (DrawChance(DecisionPoint::kDuplication, dup_rate, dup_rng)) {
    // The duplicate is a second wire copy of the SAME message: it keeps the
    // original seq/rel_seq (that is what receiver-side dedup keys on) and its
    // bytes count as real traffic.
    pk.duplicated++;
    CountWireCopy(*msg.payload);
    Enqueue(&channel, msg);
  }
  Enqueue(&channel, std::move(msg));
}

void Network::set_batch_policy(const BatchPolicy& policy) {
  BMX_CHECK_EQ(pending_batched_, 0u)
      << "set the batch policy before any batchable traffic is pending";
  if (policy.enabled) {
    BMX_CHECK_GT(policy.max_entries, 0u);
    BMX_CHECK_LE(policy.max_entries, kMaxBatchEntries);
    BMX_CHECK_GT(policy.max_bytes, 0u);
    // A batch seals when it *reaches* a cap, so the worst-case frame holds
    // max_bytes - 1 buffered bytes plus one more batchable payload; the codec
    // bound must accommodate it with all framing overhead.
    BMX_CHECK_LE(kBatchFrameHeaderBytes + kBatchFrameTrailerBytes +
                     policy.max_entries * kBatchEntryHeaderBytes + policy.max_bytes +
                     policy.batchable_size_limit,
                 kMaxBatchFrameBytes)
        << "flush caps exceed the batch-frame codec bound";
  }
  batch_policy_ = policy;
}

bool Network::Batchable(const Payload& payload) const {
  return BatchableMsgKind(payload.kind()) && payload.reliable() &&
         payload.WireSize() <= batch_policy_.batchable_size_limit;
}

void Network::AppendToBatch(NodeId src, NodeId dst, std::shared_ptr<const Payload> payload) {
  Channel& channel = channels_[{src, dst}];
  BatchedMessage entry;
  // The logical message keeps its own wire-sequence identity: the history
  // recorder snapshots causality *now* (at the logical send), and the unpack
  // path restores the same seq so the delivery joins this snapshot — batching
  // coarsens the wire, never the observed causality.
  entry.seq = channel.next_seq++;
  entry.payload = std::move(payload);
  BMX_HISTORY_HOOK(history_, OnSend(src, dst, entry.seq));
  PendingBatch& batch = pending_batches_[{src, dst}];
  if (batch.entries.empty()) {
    batch.deadline = now_ + batch_policy_.deadline_ticks;
  }
  batch.bytes += entry.payload->WireSize();
  batch.entries.push_back(std::move(entry));
  pending_batched_++;
  stats_.batching.batched_payloads++;
  if (batch.entries.size() >= batch_policy_.max_entries ||
      batch.bytes >= batch_policy_.max_bytes) {
    stats_.batching.flush_full++;
    PendingBatch full = std::move(batch);
    pending_batches_.erase({src, dst});
    FlushBatch({src, dst}, std::move(full));
  }
}

void Network::FlushBatchFor(const ChannelKey& key, uint64_t* trigger_counter) {
  auto it = pending_batches_.find(key);
  if (it == pending_batches_.end()) {
    return;
  }
  (*trigger_counter)++;
  PendingBatch batch = std::move(it->second);
  pending_batches_.erase(it);
  FlushBatch(key, std::move(batch));
}

void Network::FlushDueBatches() {
  // Collect first: flushing erases map entries, which must not race the
  // iteration.
  std::vector<ChannelKey> due;
  for (const auto& [key, batch] : pending_batches_) {
    if (batch.deadline <= now_) {
      due.push_back(key);
    }
  }
  for (const ChannelKey& key : due) {
    FlushBatchFor(key, &stats_.batching.flush_deadline);
  }
}

size_t Network::FlushAllBatches() {
  size_t flushed = 0;
  while (!pending_batches_.empty()) {
    FlushBatchFor(pending_batches_.begin()->first, &stats_.batching.flush_quiesce);
    flushed++;
  }
  return flushed;
}

void Network::FlushBatch(const ChannelKey& key, PendingBatch batch) {
  BMX_CHECK(!batch.entries.empty());
  pending_batched_ -= batch.entries.size();
  auto frame = std::make_shared<BatchFramePayload>();
  frame->set_category(batch.entries.front().payload->category());
  std::vector<BatchWireEntry> wire;
  wire.reserve(batch.entries.size());
  for (const BatchedMessage& e : batch.entries) {
    BatchWireEntry w;
    w.kind = static_cast<uint8_t>(e.payload->kind());
    w.category = static_cast<uint8_t>(e.payload->category());
    // In-process payloads are typed structs, not byte strings; the image
    // carries a zero-filled body of the payload's wire size so the frame's
    // size, checksum and validation cover the real wire cost.
    w.body.resize(e.payload->WireSize(), 0);
    wire.push_back(std::move(w));
  }
  frame->image = EncodeBatchFrame(wire);
  frame->entries = std::move(batch.entries);
  stats_.batching.frames_sent++;

  // Wire path, mirroring the tail of Send(): the frame is a reliable payload
  // like any other — duplication draws, in-flight loss, retransmission,
  // dedup, parking and redelivery all apply to it, at the same decision
  // points, so record/replay covers batched runs unchanged.
  Channel& channel = channels_[key];
  Message msg;
  msg.src = key.first;
  msg.dst = key.second;
  msg.seq = channel.next_seq++;
  msg.rel_seq = channel.next_rel_seq++;
  msg.src_epoch = IncarnationOf(key.first);
  msg.dst_epoch = IncarnationOf(key.second);
  msg.ready_at = ReadyAt(key);
  msg.payload = std::move(frame);
  CountWireCopy(*msg.payload);

  RetxEntry entry;
  entry.msg = msg;
  entry.next_retry = now_ + retry_.BackoffFor(0, msg.rel_seq);
  channel.unacked.emplace(msg.rel_seq, std::move(entry));

  LinkState* link = FindLinkState(key);
  double dup_rate = duplication_rate_;
  Rng* dup_rng = &dup_rng_;
  if (link != nullptr && link->profile.duplication_rate >= 0) {
    dup_rate = link->profile.duplication_rate;
    dup_rng = &link->dup_rng;
  }
  if (DrawChance(DecisionPoint::kDuplication, dup_rate, dup_rng)) {
    stats_.For(msg.payload->kind()).duplicated++;
    CountWireCopy(*msg.payload);
    Enqueue(&channel, msg);
  }
  Enqueue(&channel, std::move(msg));
}

bool Network::DispatchReliable(const ChannelKey& key, MessageHandler* handler,
                               const Message& msg) {
  if (msg.payload->kind() != MsgKind::kBatchFrame) {
    if (ZombieDrop(key, msg)) {
      // Zombie link/peer: the transport completed (acked, deduplicated,
      // reassembled) but dispatch is silently swallowed — a wire event, not a
      // delivery (mirroring the parked/redelivered accounting convention).
      stats_.For(msg.payload->kind()).zombie_dropped++;
      GlobalPerfCounters().zombie_dropped_msgs++;
      return true;
    }
    stats_.For(msg.payload->kind()).delivered++;
    // Join before the handler runs: messages the handler sends must carry
    // the sender's post-join clock, or causality through a relay is lost.
    BMX_HISTORY_HOOK(history_, OnDeliver(msg.src, msg.dst, msg.seq));
    if (!Dispatch(handler, msg)) {
      return false;
    }
    if (delivery_observer_) {
      delivery_observer_(msg);
    }
    return true;
  }

  // Batch frame: decode and verify the wire image against the in-process
  // entry list (the codec runs on every batched delivery, not just in its
  // property tests), then dispatch each logical message in send order.
  const auto& frame = static_cast<const BatchFramePayload&>(*msg.payload);
  std::vector<BatchWireEntry> decoded;
  std::string error;
  BMX_CHECK(DecodeBatchFrame(frame.image.data(), frame.image.size(), &decoded, &error))
      << "corrupt batch frame on channel " << key.first << "->" << key.second << ": " << error;
  BMX_CHECK_EQ(decoded.size(), frame.entries.size());
  stats_.For(MsgKind::kBatchFrame).delivered++;
  stats_.batching.frames_delivered++;
  for (size_t i = 0; i < frame.entries.size(); ++i) {
    const BatchedMessage& e = frame.entries[i];
    BMX_CHECK_EQ(decoded[i].kind, static_cast<uint8_t>(e.payload->kind()));
    BMX_CHECK_EQ(decoded[i].body.size(), e.payload->WireSize());
    Message inner = msg;
    inner.seq = e.seq;
    inner.payload = e.payload;
    if (ZombieDrop(key, inner)) {
      stats_.For(inner.payload->kind()).zombie_dropped++;
      GlobalPerfCounters().zombie_dropped_msgs++;
      continue;
    }
    stats_.For(inner.payload->kind()).delivered++;
    BMX_HISTORY_HOOK(history_, OnDeliver(inner.src, inner.dst, inner.seq));
    if (!Dispatch(handler, inner)) {
      return false;  // crashed mid-frame: the rest died with the incarnation
    }
    if (delivery_observer_) {
      delivery_observer_(inner);
    }
  }
  return true;
}

void Network::AckReliable(Channel* channel, uint64_t rel_seq) {
  auto it = channel->unacked.find(rel_seq);
  if (it == channel->unacked.end()) {
    return;  // already acked (e.g. first copy of a duplicate)
  }
  if (DrawChance(DecisionPoint::kAckLoss, ack_loss_rate_, &ack_loss_rng_)) {
    // Ack lost in flight: the sender will retransmit and the receiver will
    // suppress the duplicate.
    return;
  }
  channel->unacked.erase(it);
}

bool Network::StaleEpoch(const Message& msg) const {
  if (msg.src_epoch != 0 && msg.src_epoch != IncarnationOf(msg.src)) {
    return true;  // emitted by a previous life of the sender
  }
  if (msg.dst_epoch != 0 && msg.dst_epoch != IncarnationOf(msg.dst)) {
    return true;  // addressed to a previous life of the receiver
  }
  return false;
}

bool Network::Dispatch(MessageHandler* handler, const Message& msg) {
  try {
    handler->HandleMessage(msg);
    return true;
  } catch (const NodeCrashSignal& signal) {
    BMX_CHECK(crash_listener_ != nullptr)
        << "fault site " << signal.site << " crashed node " << signal.node
        << " with no crash listener installed";
    crash_listener_(signal.node);
    return false;
  }
}

Network::Channel* Network::PickDeliveryChannel(ChannelKey* key_out) {
  // Latency-inflated links (any_link_latency_) hold a channel's head back
  // until its ready_at tick; when every queued copy is still in flight, the
  // event-driven virtual clock jumps to the earliest readiness and the scan
  // repeats.  Without latency profiles the loop exits on its first pass with
  // the historical behavior (ready_at is never consulted).
  for (;;) {
    uint64_t earliest_ready = UINT64_MAX;
    if (decisions_.mode() == DecisionLog::Mode::kLive && scheduler_->IsFifo()) {
      // Historical zero-overhead path: live FIFO consumes no decision indices
      // and builds no candidate list.
      for (auto& [key, channel] : channels_) {
        if (channel.queue.empty()) {
          continue;
        }
        uint64_t ready_at = any_link_latency_ ? channel.queue.front().ready_at : 0;
        if (ready_at <= now_) {
          *key_out = key;
          return &channel;
        }
        earliest_ready = std::min(earliest_ready, ready_at);
      }
    } else {
      std::vector<ChannelCandidate> candidates;
      std::vector<std::pair<ChannelKey, Channel*>> backing;
      for (auto& [key, channel] : channels_) {
        if (channel.queue.empty()) {
          continue;
        }
        uint64_t ready_at = any_link_latency_ ? channel.queue.front().ready_at : 0;
        if (ready_at > now_) {
          // Still in flight: not a legal candidate, so it consumes no
          // decision index and latency composes with record/replay.
          earliest_ready = std::min(earliest_ready, ready_at);
          continue;
        }
        ChannelCandidate c;
        c.src = key.first;
        c.dst = key.second;
        c.head_kind = channel.queue.front().payload->kind();
        c.queue_len = channel.queue.size();
        c.deferred = channel.deferred;
        candidates.push_back(c);
        backing.emplace_back(key, &channel);
      }
      if (!candidates.empty()) {
        size_t pick = 0;
        if (candidates.size() > 1) {
          // A single candidate is no choice at all: it consumes no decision
          // index, which keeps traces sparse and shrinkable.
          uint64_t resolved = decisions_.Resolve(DecisionPoint::kDeliverPick, 0, [&] {
            return static_cast<uint64_t>(scheduler_->Pick(candidates));
          });
          // Clamp out-of-range picks (an edited/shrunk trace may index a
          // candidate list that no longer exists at that width) so replay
          // stays total.
          pick = static_cast<size_t>(std::min<uint64_t>(resolved, candidates.size() - 1));
        }
        for (size_t i = 0; i < backing.size(); ++i) {
          backing[i].second->deferred = (i == pick) ? 0 : backing[i].second->deferred + 1;
        }
        *key_out = backing[pick].first;
        return backing[pick].second;
      }
    }
    if (earliest_ready == UINT64_MAX) {
      return nullptr;
    }
    now_ = earliest_ready;
  }
}

bool Network::DeliverOne() {
  if (!pending_batches_.empty()) {
    // Deadline trigger: batches older than deadline_ticks flush before the
    // next pick, bounding how long coalescing can delay a control message.
    // The map is empty whenever batching is off — zero cost on that path.
    FlushDueBatches();
  }
  ChannelKey key;
  Channel* picked = PickDeliveryChannel(&key);
  if (picked == nullptr && !pending_batches_.empty()) {
    // Nothing on the wire but batches still pending: the event-driven clock
    // jumps to the earliest deadline, exactly as PickDeliveryChannel does for
    // latency-held copies.  Without this a synchronous waiter (acquire loops
    // pump the network while idle) would starve behind its own batched
    // request.
    uint64_t earliest = UINT64_MAX;
    for (const auto& [k, batch] : pending_batches_) {
      earliest = std::min(earliest, batch.deadline);
    }
    if (now_ < earliest) {
      now_ = earliest;
    }
    FlushDueBatches();
    picked = PickDeliveryChannel(&key);
  }
  if (picked == nullptr) {
    return false;
  }
  Channel& channel = *picked;
  Message msg = std::move(channel.queue.front());
  channel.queue.pop_front();
  pending_--;
  now_++;  // every consumed wire copy costs one tick of virtual time
  auto& pk = stats_.For(msg.payload->kind());
  bool reliable = msg.payload->reliable();

  if (StaleEpoch(msg)) {
    // The sender (or addressee) of this wire copy has died since it was
    // emitted: the copy belongs to a previous incarnation and must not
    // reach a handler.  Reliable copies carry no retransmission obligation
    // here — the dead sender's unacked state died with it.
    pk.epoch_rejected++;
    GlobalPerfCounters().epoch_rejected_msgs++;
    return true;
  }
  if (force_drop_reliable_ > 0 && reliable) {
    force_drop_reliable_--;
    pk.lost_transmissions++;
    return true;  // entry stays unacked; the timer will retransmit
  }
  if (Partitioned(key.first, key.second)) {
    if (reliable) {
      pk.lost_transmissions++;  // waits in unacked until the partition heals
    } else {
      pk.dropped++;
    }
    return true;
  }
  auto handler = handlers_.find(msg.dst);
  if (handler == handlers_.end()) {
    if (reliable) {
      // Destination crashed or never attached: hold for redelivery.  The
      // unacked entry *is* the parked copy; it is counted once per down
      // period no matter how many wire copies arrive here.
      CountParked(&channel, msg);
    } else {
      pk.dropped++;
    }
    return true;
  }
  if (reliable) {
    double rate = reliable_loss_rate_;
    Rng* rng = &rel_loss_rng_;
    LinkState* link = FindLinkState(key);
    if (link != nullptr && link->profile.loss_rate >= 0) {
      rate = link->profile.loss_rate;
      rng = &link->rel_loss_rng;
    }
    if (DrawChance(DecisionPoint::kReliableLoss, rate, rng)) {
      pk.lost_transmissions++;
      return true;
    }
  }

  if (reliable) {
    if (msg.rel_seq < channel.expected_rel_seq || channel.stashed.count(msg.rel_seq) > 0) {
      // Duplicate (network duplication, retransmission after a lost ack, or
      // a second copy of a stashed message): suppress, but re-ack so the
      // sender stops retransmitting.
      pk.dup_suppressed++;
      AckReliable(&channel, msg.rel_seq);
      return true;
    }
    AckReliable(&channel, msg.rel_seq);
    if (msg.rel_seq > channel.expected_rel_seq) {
      // Out of order (an earlier reliable payload is still in flight):
      // stash until the gap fills.  Not a delivery yet.
      channel.stashed.emplace(msg.rel_seq, std::move(msg));
      return true;
    }
    channel.expected_rel_seq++;
    // The gap this message filled may release stashed successors.  They were
    // already received and acked, so they must NOT re-enter the queue (where
    // loss faults apply); collect them now — before the handler runs and can
    // mutate channel state — and deliver them inline, in order.
    std::vector<Message> ready;
    while (!channel.stashed.empty() &&
           channel.stashed.begin()->first == channel.expected_rel_seq) {
      ready.push_back(std::move(channel.stashed.begin()->second));
      channel.stashed.erase(channel.stashed.begin());
      channel.expected_rel_seq++;
    }
    if (!DispatchReliable(key, handler->second, msg)) {
      return true;  // destination crashed processing this delivery
    }
    for (Message& released : ready) {
      auto h = handlers_.find(released.dst);
      if (h == handlers_.end()) {
        break;  // destination crashed mid-delivery; volatile state is gone
      }
      if (!DispatchReliable(key, h->second, released)) {
        return true;  // crashed on a released successor; the rest die too
      }
    }
    return true;
  }

  if (ZombieDrop(key, msg)) {
    pk.zombie_dropped++;
    GlobalPerfCounters().zombie_dropped_msgs++;
    return true;
  }
  pk.delivered++;
  BMX_HISTORY_HOOK(history_, OnDeliver(msg.src, msg.dst, msg.seq));
  if (Dispatch(handler->second, msg) && delivery_observer_) {
    delivery_observer_(msg);
  }
  return true;
}

bool Network::FireRetransmitTimers() {
  uint64_t earliest = UINT64_MAX;
  for (const auto& [key, channel] : channels_) {
    if (channel.unacked.empty() || !ReachableChannel(key)) {
      continue;
    }
    for (const auto& [rel_seq, entry] : channel.unacked) {
      earliest = std::min(earliest, entry.next_retry);
    }
  }
  if (earliest == UINT64_MAX) {
    return false;
  }
  if (now_ < earliest) {
    now_ = earliest;  // event-driven virtual time: jump to the next deadline
  }
  bool fired = false;
  for (auto& [key, channel] : channels_) {
    if (channel.unacked.empty() || !ReachableChannel(key)) {
      continue;
    }
    for (auto& [rel_seq, entry] : channel.unacked) {
      if (entry.next_retry > now_) {
        continue;
      }
      entry.attempts++;
      // Exponential, capped; with the default config this is bit-identical to
      // the legacy base << min(attempts, 16) shift.
      entry.next_retry = now_ + retry_.BackoffFor(entry.attempts, rel_seq);
      stats_.For(entry.msg.payload->kind()).retransmits++;
      CountWireCopy(*entry.msg.payload);
      Message copy = entry.msg;
      copy.ready_at = ReadyAt(key);
      channel.queue.push_back(std::move(copy));
      pending_++;
      stats_.wire_messages++;
      fired = true;
    }
  }
  return fired;
}

bool Network::DrainUntilIdle(uint64_t budget, std::string* diagnostic) {
  for (;;) {
    // Quiescence trigger: when nothing is deliverable and no timer is live,
    // any payloads still coalescing flush and the drain continues — the
    // network may only report idle with every batch on the wire or delivered.
    if (!DeliverOne() && !FireRetransmitTimers() &&
        (pending_batches_.empty() || FlushAllBatches() == 0)) {
      return true;
    }
    if (budget == 0) {
      if (diagnostic != nullptr) {
        *diagnostic = DebugDump();
      }
      return false;
    }
    budget--;
  }
}

void Network::RunUntilIdle() {
  // The budget guards against a protocol that ping-pongs forever; no
  // legitimate workload in this repository approaches the default.  On
  // overrun the failure carries the pending-state dump — per-channel queues,
  // unacked entries with live timers, and any open obligations — instead of
  // spinning silently.
  std::string diagnostic;
  if (!DrainUntilIdle(quiesce_budget_, &diagnostic)) {
    BMX_CHECK(false) << "network failed to quiesce within " << quiesce_budget_ << " steps\n"
                     << diagnostic;
  }
  // Quiescence contract: the loop above may only stop when every unacked
  // reliable payload is addressed to a down or partitioned peer (parked).  A
  // payload on a reachable channel always has a live retransmit timer, and
  // FireRetransmitTimers advances the clock to it — returning with one still
  // pending would silently drop the delivery guarantee.
  BMX_CHECK_EQ(ReachableUnackedCount(), 0u)
      << "RunUntilIdle returned with live retransmit obligations";
}

bool Network::RunUntilIdleBounded(uint64_t max_steps, std::string* diagnostic) {
  if (!DrainUntilIdle(max_steps, diagnostic)) {
    return false;
  }
  BMX_CHECK_EQ(ReachableUnackedCount(), 0u)
      << "RunUntilIdle returned with live retransmit obligations";
  return true;
}

bool Network::Idle() const { return pending_ == 0 && pending_batched_ == 0; }

size_t Network::PendingCount() const { return pending_; }

size_t Network::UnackedCount() const {
  size_t n = 0;
  for (const auto& [key, channel] : channels_) {
    n += channel.unacked.size();
  }
  return n;
}

size_t Network::HeldCount() const {
  size_t n = 0;
  for (const auto& [key, channel] : channels_) {
    if (handlers_.count(key.second) == 0) {
      n += channel.unacked.size();
    }
  }
  return n;
}

size_t Network::ReachableUnackedCount() const {
  size_t n = 0;
  for (const auto& [key, channel] : channels_) {
    if (ReachableChannel(key)) {
      n += channel.unacked.size();
    }
  }
  return n;
}

size_t Network::DropParked(NodeId src, NodeId dst, MsgKind kind) {
  size_t dropped = 0;
  // Coalescing layer first: abandoned payloads may still be buffering, or
  // already sealed inside parked frames.  Both must honor the drop, or the
  // request would reach the destination's next incarnation anyway.
  auto pb = pending_batches_.find({src, dst});
  if (pb != pending_batches_.end()) {
    auto& entries = pb->second.entries;
    for (auto e = entries.begin(); e != entries.end();) {
      if (e->payload->kind() == kind) {
        pb->second.bytes -= e->payload->WireSize();
        e = entries.erase(e);
        pending_batched_--;
        dropped++;
      } else {
        ++e;
      }
    }
    if (entries.empty()) {
      pending_batches_.erase(pb);
    }
  }
  auto it = channels_.find({src, dst});
  if (it == channels_.end()) {
    return dropped;
  }
  Channel& channel = it->second;
  for (auto u = channel.unacked.begin(); u != channel.unacked.end();) {
    if (u->second.msg.payload->kind() == kind) {
      // Also remove any wire copies of this payload still awaiting delivery,
      // or a future incarnation of dst would see a retransmission of a
      // payload the sender no longer stands behind.
      uint64_t rel_seq = u->first;
      for (auto q = channel.queue.begin(); q != channel.queue.end();) {
        if (q->payload->reliable() && q->rel_seq == rel_seq &&
            q->payload->kind() == kind) {
          pending_--;
          q = channel.queue.erase(q);
        } else {
          ++q;
        }
      }
      u = channel.unacked.erase(u);
      dropped++;
    } else {
      ++u;
    }
  }
  // Unacked frames carrying payloads of this kind are rebuilt without them
  // (image re-encoded); a frame left empty retires entirely.  Queued wire
  // copies of the same rel_seq swap to the rebuilt payload so a later
  // delivery or retransmission never resurrects the dropped messages.
  for (auto u = channel.unacked.begin(); u != channel.unacked.end();) {
    if (u->second.msg.payload->kind() != MsgKind::kBatchFrame) {
      ++u;
      continue;
    }
    const auto& frame = static_cast<const BatchFramePayload&>(*u->second.msg.payload);
    size_t matches = 0;
    for (const BatchedMessage& e : frame.entries) {
      matches += e.payload->kind() == kind ? 1 : 0;
    }
    if (matches == 0) {
      ++u;
      continue;
    }
    dropped += matches;
    std::shared_ptr<const Payload> replacement;
    if (matches < frame.entries.size()) {
      auto rebuilt = std::make_shared<BatchFramePayload>();
      std::vector<BatchWireEntry> wire;
      for (const BatchedMessage& e : frame.entries) {
        if (e.payload->kind() == kind) {
          continue;
        }
        BatchWireEntry w;
        w.kind = static_cast<uint8_t>(e.payload->kind());
        w.category = static_cast<uint8_t>(e.payload->category());
        w.body.resize(e.payload->WireSize(), 0);
        wire.push_back(std::move(w));
        rebuilt->entries.push_back(e);
      }
      rebuilt->set_category(rebuilt->entries.front().payload->category());
      rebuilt->image = EncodeBatchFrame(wire);
      replacement = std::move(rebuilt);
    }
    uint64_t rel_seq = u->first;
    for (auto q = channel.queue.begin(); q != channel.queue.end();) {
      if (q->payload->reliable() && q->rel_seq == rel_seq &&
          q->payload->kind() == MsgKind::kBatchFrame) {
        if (replacement != nullptr) {
          q->payload = replacement;
          ++q;
        } else {
          pending_--;
          q = channel.queue.erase(q);
        }
      } else {
        ++q;
      }
    }
    if (replacement != nullptr) {
      u->second.msg.payload = std::move(replacement);
      ++u;
    } else {
      u = channel.unacked.erase(u);
    }
  }
  return dropped;
}

void Network::DisconnectNode(NodeId node) {
  if (!pending_batches_.empty()) {
    // The crash catches coalescing buffers mid-flight: batches FROM the node
    // die with its volatile state (they never reached the wire); batches TO
    // it flush now, so the frames park in the senders' unacked buffers and
    // replay to the next incarnation like any reliable payload.
    std::vector<ChannelKey> to_node;
    for (auto it = pending_batches_.begin(); it != pending_batches_.end();) {
      if (it->first.first == node) {
        pending_batched_ -= it->second.entries.size();
        it = pending_batches_.erase(it);
      } else {
        if (it->first.second == node) {
          to_node.push_back(it->first);
        }
        ++it;
      }
    }
    for (const ChannelKey& key : to_node) {
      FlushBatchFor(key, &stats_.batching.flush_quiesce);
    }
  }
  handlers_.erase(node);
  if (incarnation_.count(node) > 0) {
    // The life that stamped its epoch on in-flight copies is over; advancing
    // the epoch *now* (not at re-registration) is what rejects those copies
    // at delivery even before any successor attaches.
    incarnation_[node]++;
  }
  for (auto it = channels_.begin(); it != channels_.end();) {
    Channel& channel = it->second;
    bool to_node = it->first.second == node;
    bool from_node = it->first.first == node;
    if (!to_node && !from_node) {
      ++it;
      continue;
    }
    if (to_node) {
      // Copies headed to the crashed node can no longer be received.
      // Reliable payloads TO the node survive in the unacked buffer (parked
      // for redelivery); queued unreliable copies are lost.
      for (const Message& msg : channel.queue) {
        if (!msg.payload->reliable()) {
          stats_.For(msg.payload->kind()).dropped++;
        }
      }
      pending_ -= channel.queue.size();
      channel.queue.clear();
      for (auto& [rel_seq, entry] : channel.unacked) {
        // Each payload parks once per down period; a copy that already hit
        // the dead destination in DeliverOne was counted there.
        if (!entry.parked_counted) {
          entry.parked_counted = true;
          stats_.For(entry.msg.payload->kind()).parked++;
        }
      }
    } else {
      // A crash cannot recall wire copies the node already emitted: queued
      // traffic FROM it stays in flight, stamped with the dead incarnation's
      // epoch, and is rejected at delivery.  The sender-side retransmission
      // state dies with the node's volatile memory.
      channel.unacked.clear();
    }
    // Receiver-side reassembly state of the dead incarnation's stream is
    // meaningless to its successor either way.
    channel.stashed.clear();
    // Re-registration semantics: sequences RESET.  The next incarnation of
    // the node starts every channel from seq zero (both directions), so it
    // can never observe a discontinuity from its predecessor's traffic.
    channel.next_seq = 0;
    channel.next_rel_seq = 0;
    channel.expected_rel_seq = 0;
    if (channel.unacked.empty() && channel.queue.empty()) {
      it = channels_.erase(it);  // prune empty channels
    } else {
      ++it;
    }
  }
}

}  // namespace bmx
