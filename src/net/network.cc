#include "src/net/network.h"

#include "src/common/check.h"

namespace bmx {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kAcquireRequest:
      return "AcquireRequest";
    case MsgKind::kGrant:
      return "Grant";
    case MsgKind::kInvalidate:
      return "Invalidate";
    case MsgKind::kInvalidateAck:
      return "InvalidateAck";
    case MsgKind::kObjectPush:
      return "ObjectPush";
    case MsgKind::kScionMessage:
      return "ScionMessage";
    case MsgKind::kReachabilityTable:
      return "ReachabilityTable";
    case MsgKind::kCopyRequest:
      return "CopyRequest";
    case MsgKind::kCopyReply:
      return "CopyReply";
    case MsgKind::kAddressChange:
      return "AddressChange";
    case MsgKind::kAddressChangeAck:
      return "AddressChangeAck";
    case MsgKind::kStwStop:
      return "StwStop";
    case MsgKind::kStwRootsReply:
      return "StwRootsReply";
    case MsgKind::kStwRelocate:
      return "StwRelocate";
    case MsgKind::kStwResume:
      return "StwResume";
    case MsgKind::kRcIncrement:
      return "RcIncrement";
    case MsgKind::kRcDecrement:
      return "RcDecrement";
    case MsgKind::kStrongUpdate:
      return "StrongUpdate";
    case MsgKind::kStrongUpdateAck:
      return "StrongUpdateAck";
    case MsgKind::kMaxKind:
      break;
  }
  return "Unknown";
}

namespace {

MsgCategory KindCategoryForStats(const Payload& payload) { return payload.category(); }

}  // namespace

uint64_t NetworkStats::TotalSent() const {
  uint64_t n = 0;
  for (const auto& pk : per_kind) {
    n += pk.sent;
  }
  return n;
}

uint64_t NetworkStats::TotalBytes() const {
  uint64_t n = 0;
  for (const auto& pk : per_kind) {
    n += pk.bytes;
  }
  return n;
}

uint64_t NetworkStats::SentInCategory(MsgCategory category) const {
  // Category is a property of the payload, not the kind, but every kind in
  // this system maps to exactly one category; the per-kind table records the
  // category of the first payload seen.  Simpler: recompute from kind here.
  uint64_t n = 0;
  for (size_t i = 0; i < per_kind.size(); ++i) {
    auto kind = static_cast<MsgKind>(i);
    MsgCategory c;
    switch (kind) {
      case MsgKind::kAcquireRequest:
      case MsgKind::kGrant:
      case MsgKind::kInvalidate:
      case MsgKind::kInvalidateAck:
      case MsgKind::kObjectPush:
        c = MsgCategory::kDsm;
        break;
      case MsgKind::kStwStop:
      case MsgKind::kStwRootsReply:
      case MsgKind::kStwRelocate:
      case MsgKind::kStwResume:
      case MsgKind::kStrongUpdate:
      case MsgKind::kStrongUpdateAck:
        c = MsgCategory::kGcForeground;
        break;
      default:
        c = MsgCategory::kGcBackground;
        break;
    }
    if (c == category) {
      n += per_kind[i].sent;
    }
  }
  return n;
}

uint64_t NetworkStats::BytesInCategory(MsgCategory category) const {
  uint64_t n = 0;
  for (size_t i = 0; i < per_kind.size(); ++i) {
    auto kind = static_cast<MsgKind>(i);
    MsgCategory c;
    switch (kind) {
      case MsgKind::kAcquireRequest:
      case MsgKind::kGrant:
      case MsgKind::kInvalidate:
      case MsgKind::kInvalidateAck:
      case MsgKind::kObjectPush:
        c = MsgCategory::kDsm;
        break;
      case MsgKind::kStwStop:
      case MsgKind::kStwRootsReply:
      case MsgKind::kStwRelocate:
      case MsgKind::kStwResume:
      case MsgKind::kStrongUpdate:
      case MsgKind::kStrongUpdateAck:
        c = MsgCategory::kGcForeground;
        break;
      default:
        c = MsgCategory::kGcBackground;
        break;
    }
    if (c == category) {
      n += per_kind[i].bytes;
    }
  }
  return n;
}

void Network::RegisterNode(NodeId node, MessageHandler* handler) {
  BMX_CHECK(handler != nullptr);
  handlers_[node] = handler;
}

void Network::Send(NodeId src, NodeId dst, std::shared_ptr<const Payload> payload) {
  BMX_CHECK(payload != nullptr);
  BMX_CHECK_NE(src, dst);
  auto& pk = stats_.For(payload->kind());
  pk.sent++;
  pk.bytes += payload->WireSize();
  (void)KindCategoryForStats(*payload);

  if (!payload->reliable()) {
    if (loss_rate_ > 0 && rng_.Chance(loss_rate_)) {
      pk.dropped++;
      return;
    }
  }

  ChannelKey key{src, dst};
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.seq = next_seq_[key]++;
  msg.payload = std::move(payload);
  channels_[key].push_back(msg);
  pending_++;

  if (!msg.payload->reliable() && duplication_rate_ > 0 && rng_.Chance(duplication_rate_)) {
    Message dup = msg;
    dup.seq = next_seq_[key]++;
    channels_[key].push_back(dup);
    pending_++;
    pk.duplicated++;
  }
}

bool Network::DeliverOne() {
  for (auto& [key, queue] : channels_) {
    if (queue.empty()) {
      continue;
    }
    Message msg = queue.front();
    queue.pop_front();
    pending_--;
    auto it = handlers_.find(msg.dst);
    if (it == handlers_.end()) {
      // Destination crashed or never existed; the message is lost.
      continue;
    }
    stats_.For(msg.payload->kind()).delivered++;
    it->second->HandleMessage(msg);
    return true;
  }
  return false;
}

void Network::RunUntilIdle() {
  // Budget guards against a protocol that ping-pongs forever; no legitimate
  // workload in this repository approaches it.
  size_t budget = 50'000'000;
  while (DeliverOne()) {
    BMX_CHECK_GT(budget--, 0u) << "network failed to quiesce";
  }
}

bool Network::Idle() const { return pending_ == 0; }

size_t Network::PendingCount() const { return pending_; }

void Network::DisconnectNode(NodeId node) {
  handlers_.erase(node);
  for (auto& [key, queue] : channels_) {
    if (key.first == node || key.second == node) {
      pending_ -= queue.size();
      queue.clear();
    }
  }
}

}  // namespace bmx
