// Wire-format registry for the simulated network.
//
// The network layer is transport only: it moves opaque payloads between nodes
// over FIFO point-to-point channels.  Like a port registry, the full set of
// message kinds used by the upper layers (DSM protocol, garbage collector,
// baseline collectors) is enumerated here so that traffic can be classified
// and accounted per kind — the paper's cost claims are stated in terms of
// which messages exist at all ("no extra message is used", §3.2/§4.4).

#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/types.h"

namespace bmx {

enum class MsgKind : uint8_t {
  // --- Entry-consistency DSM protocol (paper §2.2, §5). ---
  kAcquireRequest,    // read or write token request, routed along ownerPtrs
  kGrant,             // token grant: object bytes + GC piggyback payload
  kInvalidate,        // owner invalidating read copies before a write grant
  kInvalidateAck,
  kObjectPush,        // owner pushing fresh bytes of an object (reclaim path)

  // --- Garbage collector (paper §3-§6). ---
  kScionMessage,      // create an inter-bunch scion at target bunch (§3.2)
  kReachabilityTable, // new stub table + exiting ownerPtrs after a BGC (§4.3/§6)
  kCopyRequest,       // from-space reclaim: ask owner to copy a live object (§4.5)
  kCopyReply,
  kAddressChange,     // from-space reclaim: explicit new-location notice (§4.5)
  kAddressChangeAck,

  // --- Baseline collectors (paper §9 comparators). ---
  kStwStop,           // stop-the-world barrier
  kStwRootsReply,
  kStwRelocate,       // new global object map broadcast
  kStwResume,
  kRcIncrement,       // Bevan-style reference counting
  kRcDecrement,
  kStrongUpdate,      // strong-consistency collector: eager address update
  kStrongUpdateAck,

  // --- Crash recovery (RecoveryManager reconciliation). ---
  kRecoveryQuery,     // restarted node asks peers about tokens/scions/tables
  kRecoveryReply,

  // --- Batched transport (src/net/batch.h, PROTOCOLS.md §14). ---
  kBatchFrame,        // coalesced small control messages, one wire frame

  kMaxKind,  // sentinel, keep last
};

const char* MsgKindName(MsgKind kind);

// Traffic categories used by the statistics and by the paper's accounting:
// the GC design claim is that GC information rides on application-driven
// consistency messages (piggyback) or flows in the background.
enum class MsgCategory : uint8_t {
  kDsm,           // consistency-protocol traffic driven by applications
  kGcBackground,  // GC traffic that applications never wait for
  kGcForeground,  // GC traffic a baseline collector makes applications wait for
};

// Number of entries in MsgCategory, for per-category accounting tables.
inline constexpr size_t kNumMsgCategories = 3;

// Base class for typed message payloads.  Payloads are in-process structs; a
// payload reports the size it would occupy on a real wire so experiments can
// account bytes (piggyback bytes vs. dedicated messages).
class Payload {
 public:
  virtual ~Payload() = default;
  virtual MsgKind kind() const = 0;
  virtual MsgCategory category() const = 0;
  virtual size_t WireSize() const = 0;
  // Reliable payloads get transport guarantees from the simulated network:
  // ack/retransmit with backoff, receiver-side duplicate suppression, in-order
  // delivery, and redelivery after the destination reconnects — exactly-once
  // FIFO semantics.  Unreliable payloads are datagrams: fault injection may
  // lose, duplicate or reorder them, and the handler sees whatever arrives.
  // The paper's GC tables are designed for the unreliable class (idempotent
  // full state, §6.1); the DSM protocol itself assumes reliable delivery.
  virtual bool reliable() const { return true; }
};

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint64_t seq = 0;  // per-channel wire sequence number, stamped by Network
  // Position in the channel's *reliable* stream (only meaningful when
  // payload->reliable()); the receiver uses it for duplicate suppression and
  // in-order reassembly.  Duplicates and retransmissions keep the original
  // rel_seq — that is what makes them recognizable.
  uint64_t rel_seq = 0;
  // Incarnation epochs of the endpoints at Send time (Network stamps them;
  // 0 = endpoint with no incarnation history, exempt from epoch checks).  A
  // node's epoch advances when a fresh incarnation re-registers after a
  // crash, so wire copies emitted by a previous life — grants, acks,
  // piggybacked updates already in flight when the sender died — carry a
  // stale src_epoch and are rejected at delivery instead of reaching a
  // handler that can no longer trust them.
  uint64_t src_epoch = 0;
  uint64_t dst_epoch = 0;
  // Earliest virtual-clock tick at which this wire copy may be delivered.
  // 0 (the default) means "immediately"; only links with a latency-inflating
  // LinkProfile stamp anything else, so the common path never consults it.
  uint64_t ready_at = 0;
  std::shared_ptr<const Payload> payload;
};

}  // namespace bmx

#endif  // SRC_NET_MESSAGE_H_
