// Wire-format registry for the simulated network.
//
// The network layer is transport only: it moves opaque payloads between nodes
// over FIFO point-to-point channels.  Like a port registry, the full set of
// message kinds used by the upper layers (DSM protocol, garbage collector,
// baseline collectors) is enumerated here so that traffic can be classified
// and accounted per kind — the paper's cost claims are stated in terms of
// which messages exist at all ("no extra message is used", §3.2/§4.4).

#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/types.h"

namespace bmx {

enum class MsgKind : uint8_t {
  // --- Entry-consistency DSM protocol (paper §2.2, §5). ---
  kAcquireRequest,    // read or write token request, routed along ownerPtrs
  kGrant,             // token grant: object bytes + GC piggyback payload
  kInvalidate,        // owner invalidating read copies before a write grant
  kInvalidateAck,
  kObjectPush,        // owner pushing fresh bytes of an object (reclaim path)

  // --- Garbage collector (paper §3-§6). ---
  kScionMessage,      // create an inter-bunch scion at target bunch (§3.2)
  kReachabilityTable, // new stub table + exiting ownerPtrs after a BGC (§4.3/§6)
  kCopyRequest,       // from-space reclaim: ask owner to copy a live object (§4.5)
  kCopyReply,
  kAddressChange,     // from-space reclaim: explicit new-location notice (§4.5)
  kAddressChangeAck,

  // --- Baseline collectors (paper §9 comparators). ---
  kStwStop,           // stop-the-world barrier
  kStwRootsReply,
  kStwRelocate,       // new global object map broadcast
  kStwResume,
  kRcIncrement,       // Bevan-style reference counting
  kRcDecrement,
  kStrongUpdate,      // strong-consistency collector: eager address update
  kStrongUpdateAck,

  kMaxKind,  // sentinel, keep last
};

const char* MsgKindName(MsgKind kind);

// Traffic categories used by the statistics and by the paper's accounting:
// the GC design claim is that GC information rides on application-driven
// consistency messages (piggyback) or flows in the background.
enum class MsgCategory : uint8_t {
  kDsm,           // consistency-protocol traffic driven by applications
  kGcBackground,  // GC traffic that applications never wait for
  kGcForeground,  // GC traffic a baseline collector makes applications wait for
};

// Base class for typed message payloads.  Payloads are in-process structs; a
// payload reports the size it would occupy on a real wire so experiments can
// account bytes (piggyback bytes vs. dedicated messages).
class Payload {
 public:
  virtual ~Payload() = default;
  virtual MsgKind kind() const = 0;
  virtual MsgCategory category() const = 0;
  virtual size_t WireSize() const = 0;
  // Reliable payloads are never dropped by fault injection; the paper's GC
  // messages are designed to tolerate loss (idempotent tables, §6.1) while the
  // DSM protocol itself is assumed reliable.
  virtual bool reliable() const { return true; }
};

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint64_t seq = 0;  // per-channel FIFO sequence number, stamped by Network
  std::shared_ptr<const Payload> payload;
};

}  // namespace bmx

#endif  // SRC_NET_MESSAGE_H_
