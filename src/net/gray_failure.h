// Gray-failure profile DSL for the CLI and CI sweeps.
//
// A spec is a ';'-separated list of directed link profiles and node-level
// zombies:
//
//   a->b:lat=4,loss=0.2        link a→b: +4 ticks latency, 20% loss
//   a->b:dup=0.1               link a→b: 10% duplication
//   a->b:zombie                link a→b: transport-acks, drops dispatch
//   zombie=n                   node n: every inbound link drops dispatch
//
// e.g. "0->1:lat=4,loss=0.2;1->0:lat=4;zombie=2".  Parsing is pure; Apply
// installs the profiles on a Network.  Scenario drivers apply specs inside
// the scenario closure so recorded traces replay under the same profile.

#ifndef SRC_NET_GRAY_FAILURE_H_
#define SRC_NET_GRAY_FAILURE_H_

#include <string>
#include <vector>

#include "src/net/network.h"

namespace bmx {

struct GrayLinkSpec {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  LinkProfile profile;
};

struct GraySpec {
  std::vector<GrayLinkSpec> links;
  std::vector<NodeId> zombie_nodes;

  bool Empty() const { return links.empty() && zombie_nodes.empty(); }

  // Parses `text` into *out.  Returns false (and fills *error if non-null)
  // on malformed input; *out is unspecified then.
  static bool Parse(const std::string& text, GraySpec* out, std::string* error);

  void Apply(Network* net) const;

  // Canonical round-trippable rendering (diagnostics, CI logs).
  std::string ToString() const;
};

}  // namespace bmx

#endif  // SRC_NET_GRAY_FAILURE_H_
