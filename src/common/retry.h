// Unified retry policy: capped exponential backoff with deterministic seeded
// jitter, an attempt budget, and per-peer circuit-breaker state.
//
// Before this existed each retry driver carried its own inline rules: the
// network's retransmit timer computed `timeout << min(attempts, 16)` by hand
// and the DSM acquire driver hard-coded a 3-attempt bound.  Both now share
// one policy object, so the backoff shape, the budget and the breaker are
// configured — and tested — in one place.
//
// Determinism contract: BackoffFor is a pure function of (config, attempt,
// jitter_key).  Jitter is a stateless splitmix hash over (seed, key, attempt)
// rather than a stateful RNG draw, so computing a backoff never consumes
// stream state and never needs a DecisionLog entry — identical seeds give
// identical schedules in live, record and replay modes alike.  With the
// default config (no jitter, shift cap 16) BackoffFor reproduces the legacy
// network shift bit-for-bit, which is what keeps pinned traffic fingerprints
// unchanged.

#ifndef SRC_COMMON_RETRY_H_
#define SRC_COMMON_RETRY_H_

#include <cstdint>
#include <map>

#include "src/common/types.h"

namespace bmx {

struct RetryPolicyConfig {
  // Backoff for attempt a is base_timeout << min(a, backoff_shift_cap),
  // plus jitter in [0, jitter_fraction * backoff] when jitter is enabled.
  uint64_t base_timeout = 8;
  uint32_t backoff_shift_cap = 16;
  // Clamped to [0, 1]; at <= 1 the jittered schedule stays monotone
  // non-decreasing up to the cap (backoff doubles, jitter adds at most one
  // backoff).  0 disables jitter entirely.
  double jitter_fraction = 0.0;
  uint64_t jitter_seed = 0;
  // Total attempts a driver may make before giving up; 0 = unbounded.
  uint32_t attempt_budget = 0;
  // Consecutive failures toward one peer that trip its breaker; 0 disables
  // the breaker (AllowAttempt always true).
  uint32_t breaker_threshold = 0;
  // Virtual-clock ticks an open breaker holds off attempts before letting a
  // single half-open probe through.
  uint64_t breaker_cooldown_ticks = 1024;
};

class RetryPolicy {
 public:
  enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

  RetryPolicy() = default;
  explicit RetryPolicy(const RetryPolicyConfig& config);

  const RetryPolicyConfig& config() const { return config_; }
  void set_config(const RetryPolicyConfig& config);

  // Backoff (in virtual-clock ticks) before retry number `attempt` (1-based:
  // the network passes the post-increment attempt counter).  jitter_key
  // decorrelates schedules of different retry series under one policy (e.g.
  // per channel); ignored when jitter is off.
  uint64_t BackoffFor(uint32_t attempt, uint64_t jitter_key = 0) const;

  // True once `attempts_made` uses up the attempt budget (never with
  // budget 0).
  bool Exhausted(uint32_t attempts_made) const {
    return config_.attempt_budget != 0 && attempts_made >= config_.attempt_budget;
  }

  // Circuit breaker, per peer, driven by the caller's virtual clock.  A
  // closed breaker admits every attempt.  breaker_threshold consecutive
  // failures open it; while open, attempts are refused until the cooldown
  // elapses, then exactly one half-open probe is admitted.  The probe's
  // outcome re-closes (RecordSuccess) or re-opens (RecordFailure) it.
  bool AllowAttempt(NodeId peer, uint64_t now);
  void RecordSuccess(NodeId peer);
  void RecordFailure(NodeId peer, uint64_t now);
  BreakerState StateOf(NodeId peer) const;

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    uint32_t consecutive_failures = 0;
    uint64_t open_until = 0;
  };

  RetryPolicyConfig config_;
  std::map<NodeId, Breaker> breakers_;
};

}  // namespace bmx

#endif  // SRC_COMMON_RETRY_H_
