// Deterministic pseudo-random generator (splitmix64 core).
//
// Every source of randomness in the simulation — message-loss injection,
// workload generation — draws from an explicitly seeded Rng so that runs are
// reproducible bit-for-bit.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace bmx {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound).  bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace bmx

#endif  // SRC_COMMON_RNG_H_
