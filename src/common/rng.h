// Deterministic pseudo-random generator (splitmix64 core).
//
// Every source of randomness in the simulation — message-loss injection,
// delivery scheduling, workload generation — draws from an explicitly seeded
// Rng so that runs are reproducible bit-for-bit.
//
// Stream splitting: components that make several *independent* families of
// random decisions (the network's loss / duplication / reorder / ack-loss
// draws, the delivery scheduler, workload generators) must not share one Rng
// sequence.  With a shared sequence, toggling one knob (say duplication)
// consumes extra draws and silently perturbs every other family — "changing
// the loss rate changed which messages were reordered".  DeriveStreamSeed
// derives a decorrelated per-purpose seed from one root seed via a splitmix
// round, so each family owns its own sequence and knobs compose.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace bmx {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound).  bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

// Named independent random-decision families.  Every purpose gets its own
// stream derived from the component's root seed; add new entries rather than
// sharing an existing stream.
enum class RngStream : uint64_t {
  kUnreliableLoss = 1,  // datagram loss draws
  kDuplication,         // duplication draws (both delivery classes)
  kReorder,             // enqueue-order perturbation draws
  kReliableLoss,        // in-flight loss of reliable transmissions
  kAckLoss,             // transport-ack loss draws
  kScheduler,           // delivery-scheduler picks (random walk, delay bound)
  kWorkload,            // workload generators (graph builders, churn)
  kFaultSchedule,       // randomized crash-point schedule generation
  kLinkLoss,            // per-link loss draws (gray-failure LinkProfile)
  kLinkDuplication,     // per-link duplication draws
  kLinkReliableLoss,    // per-link in-flight loss of reliable transmissions
  kTopology,            // random-regular topology generation
  kSoak,                // soak-workload operation plans
};

// Derives the seed of one purpose-specific stream from a root seed.  Two
// splitmix finalizer rounds over (root, stream) decorrelate the streams: the
// sequences for two different purposes share no state, so drawing from one
// never perturbs another.
inline uint64_t DeriveStreamSeed(uint64_t root_seed, RngStream stream) {
  Rng mix(root_seed ^ (0xbf58476d1ce4e5b9ull * (static_cast<uint64_t>(stream) + 1)));
  uint64_t first = mix.Next();
  Rng fold(first ^ root_seed);
  return fold.Next();
}

}  // namespace bmx

#endif  // SRC_COMMON_RNG_H_
