#include "src/common/task_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/common/check.h"

namespace bmx {

namespace {

// Participant state, thread-local so nested ParallelFor calls (a BGC inside a
// pool-run explorer walk) detect they are already inside a region and run
// inline.
thread_local bool tl_in_region = false;

size_t ParseThreads() {
  const char* env = std::getenv("BMX_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1 && v <= 256) {
      return static_cast<size_t>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

TaskPool*& GlobalSlot() {
  static TaskPool* pool = new TaskPool(ParseThreads());
  return pool;
}

}  // namespace

TaskPool& TaskPool::Global() { return *GlobalSlot(); }

size_t TaskPool::EnvThreads() { return ParseThreads(); }

void TaskPool::SetThreadsForTesting(size_t threads) {
  BMX_CHECK_GE(threads, 1u);
  TaskPool*& slot = GlobalSlot();
  if (slot->threads() == threads) {
    return;
  }
  delete slot;  // joins workers
  slot = new TaskPool(threads);
}

bool TaskPool::InParallelRegion() { return tl_in_region; }

TaskPool::TaskPool(size_t threads) : threads_(std::max<size_t>(1, threads)) {}

TaskPool::~TaskPool() { Stop(); }

void TaskPool::Start() {
  if (started_ || threads_ == 1) {
    return;
  }
  shards_.clear();
  for (size_t i = 0; i < threads_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  started_ = true;
}

void TaskPool::Stop() {
  if (!started_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
  workers_.clear();
  shards_.clear();
  stop_ = false;
  started_ = false;
}

void TaskPool::WorkerLoop(size_t wid) {
  uint64_t seen_gen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || region_gen_ != seen_gen; });
      if (stop_) {
        return;
      }
      seen_gen = region_gen_;
    }
    tl_in_region = true;
    RunChunks(wid);
    tl_in_region = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Drain this worker's thread-local counters into the region aggregate;
      // the submitter folds the aggregate into its own counters, so totals
      // are independent of which thread did the counting.
      region_perf_.Add(GlobalPerfCounters());
      GlobalPerfCounters().Reset();
      workers_done_++;
    }
    done_cv_.notify_one();
  }
}

bool TaskPool::NextChunk(size_t home_shard, Chunk* out) {
  {
    Shard& own = *shards_[home_shard];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.chunks.empty()) {
      *out = own.chunks.front();
      own.chunks.pop_front();
      return true;
    }
  }
  // Steal from the tail of other shards, scanning round-robin from the
  // neighbour.  Which victim wins is schedule-dependent; results are not —
  // every chunk writes only per-index slots.
  for (size_t d = 1; d < shards_.size(); ++d) {
    Shard& victim = *shards_[(home_shard + d) % shards_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.chunks.empty()) {
      *out = victim.chunks.back();
      victim.chunks.pop_back();
      GlobalPerfCounters().pool_steals++;
      return true;
    }
  }
  return false;
}

void TaskPool::RunChunks(size_t home_shard) {
  Chunk chunk;
  while (NextChunk(home_shard, &chunk)) {
    GlobalPerfCounters().pool_chunks_executed++;
    try {
      for (size_t i = chunk.begin; i < chunk.end; ++i) {
        (*body_)(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      // Keep the error of the lowest-indexed throwing chunk so the exception
      // the submitter sees does not depend on the steal schedule.
      if (region_error_ == nullptr || chunk.begin < region_error_index_) {
        region_error_ = std::current_exception();
        region_error_index_ = chunk.begin;
      }
    }
  }
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (threads_ == 1 || n == 1 || tl_in_region) {
    // Exact legacy serial path (also the nested-region path): no pool
    // machinery, no flag flips, no counter shuffling.
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  Start();
  GlobalPerfCounters().pool_regions++;

  // Chunking: a few chunks per participant so stealing can balance, but
  // coarse enough that per-chunk overhead stays negligible.
  size_t participants = threads_;
  size_t target_chunks = std::min(n, participants * 4);
  size_t chunk_size = (n + target_chunks - 1) / target_chunks;
  size_t shard = 0;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    Chunk c{begin, std::min(n, begin + chunk_size)};
    Shard& s = *shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);
    s.chunks.push_back(c);
    shard++;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    workers_done_ = 0;
    region_perf_.Reset();
    region_error_ = nullptr;
    region_error_index_ = 0;
    region_gen_++;
  }
  work_cv_.notify_all();

  // The submitter participates with its own shard (the last one).
  tl_in_region = true;
  RunChunks(threads_ - 1);
  tl_in_region = false;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
    body_ = nullptr;
    GlobalPerfCounters().Add(region_perf_);
    error = region_error_;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

}  // namespace bmx
