// Dense bit array used for the per-segment object-map and reference-map
// (paper §8): one bit per heap slot, a set bit in the object-map marks the
// start of an object header, a set bit in the reference-map marks a slot that
// holds a pointer.

#ifndef SRC_COMMON_BITMAP_H_
#define SRC_COMMON_BITMAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/perf_counters.h"

namespace bmx {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  size_t size() const { return nbits_; }

  void Set(size_t i) {
    BMX_CHECK_LT(i, nbits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Clear(size_t i) {
    BMX_CHECK_LT(i, nbits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    BMX_CHECK_LT(i, nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) {
      n += static_cast<size_t>(__builtin_popcountll(w));
    }
    return n;
  }

  // Raw word access for serialization (persistence of object/reference maps).
  const std::vector<uint64_t>& words() const { return words_; }
  void LoadWords(const std::vector<uint64_t>& words) {
    BMX_CHECK_EQ(words.size(), words_.size());
    words_ = words;
  }

  // Returns the index of the first set bit at or after `from`, or `size()` if
  // there is none.  Used to iterate objects in a segment via the object-map.
  size_t FindNextSet(size_t from) const {
    if (from >= nbits_) {
      return nbits_;
    }
    size_t word = from >> 6;
    uint64_t w = words_[word] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) {
        size_t bit = (word << 6) + static_cast<size_t>(__builtin_ctzll(w));
        return bit < nbits_ ? bit : nbits_;
      }
      if (++word >= words_.size()) {
        return nbits_;
      }
      w = words_[word];
    }
  }

  // First set bit in [from, to), or `to` (clamped to size()) if none.  The
  // scan is word-at-a-time: an empty 64-slot run costs one load+test.
  size_t FindNextSetInRange(size_t from, size_t to) const {
    to = std::min(to, nbits_);
    size_t bit = FindNextSet(from);
    return bit < to ? bit : to;
  }

  // Word-level visit of every set bit in [from, to): one ctz loop per
  // non-empty word, one load per empty word.  Returns the number of all-zero
  // whole words skipped (the probes a bit-by-bit scan would have wasted).
  // Visitor signature: void(size_t bit).
  template <typename Fn>
  size_t ForEachSetInRange(size_t from, size_t to, Fn&& fn) const {
    to = std::min(to, nbits_);
    if (from >= to) {
      return 0;
    }
    size_t zero_words = 0;
    size_t word = from >> 6;
    const size_t last_word = (to - 1) >> 6;
    uint64_t w = words_[word] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (word == last_word) {
        const size_t tail = to & 63;
        if (tail != 0) {
          w &= ~uint64_t{0} >> (64 - tail);
        }
      }
      if (w == 0) {
        zero_words++;
      }
      while (w != 0) {
        const uint64_t low = w & (~w + 1);
        fn((word << 6) + static_cast<size_t>(__builtin_ctzll(w)));
        w ^= low;
      }
      if (word == last_word) {
        return zero_words;
      }
      w = words_[++word];
    }
  }

  template <typename Fn>
  size_t ForEachSet(Fn&& fn) const {
    return ForEachSetInRange(0, nbits_, static_cast<Fn&&>(fn));
  }

  // Masked AND-iteration over two equally sized bitmaps (e.g. object-map ∧
  // ref-map): visits bits set in *both*, word-at-a-time.  Returns the number
  // of whole words whose AND was zero.
  template <typename Fn>
  static size_t ForEachSetAndInRange(const Bitmap& a, const Bitmap& b, size_t from, size_t to,
                                     Fn&& fn) {
    BMX_CHECK_EQ(a.nbits_, b.nbits_);
    to = std::min(to, a.nbits_);
    if (from >= to) {
      return 0;
    }
    size_t zero_words = 0;
    size_t word = from >> 6;
    const size_t last_word = (to - 1) >> 6;
    uint64_t w = (a.words_[word] & b.words_[word]) & (~uint64_t{0} << (from & 63));
    while (true) {
      if (word == last_word) {
        const size_t tail = to & 63;
        if (tail != 0) {
          w &= ~uint64_t{0} >> (64 - tail);
        }
      }
      if (w == 0) {
        zero_words++;
      }
      while (w != 0) {
        const uint64_t low = w & (~w + 1);
        fn((word << 6) + static_cast<size_t>(__builtin_ctzll(w)));
        w ^= low;
      }
      if (word == last_word) {
        return zero_words;
      }
      ++word;
      w = a.words_[word] & b.words_[word];
    }
  }

  size_t CountSetInRange(size_t from, size_t to) const {
    size_t n = 0;
    ForEachSetInRange(from, to, [&n](size_t) { n++; });
    return n;
  }

 private:
  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace bmx

#endif  // SRC_COMMON_BITMAP_H_
