// Dense bit array used for the per-segment object-map and reference-map
// (paper §8): one bit per heap slot, a set bit in the object-map marks the
// start of an object header, a set bit in the reference-map marks a slot that
// holds a pointer.

#ifndef SRC_COMMON_BITMAP_H_
#define SRC_COMMON_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace bmx {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  size_t size() const { return nbits_; }

  void Set(size_t i) {
    BMX_CHECK_LT(i, nbits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Clear(size_t i) {
    BMX_CHECK_LT(i, nbits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    BMX_CHECK_LT(i, nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) {
      n += static_cast<size_t>(__builtin_popcountll(w));
    }
    return n;
  }

  // Raw word access for serialization (persistence of object/reference maps).
  const std::vector<uint64_t>& words() const { return words_; }
  void LoadWords(const std::vector<uint64_t>& words) {
    BMX_CHECK_EQ(words.size(), words_.size());
    words_ = words;
  }

  // Returns the index of the first set bit at or after `from`, or `size()` if
  // there is none.  Used to iterate objects in a segment via the object-map.
  size_t FindNextSet(size_t from) const {
    if (from >= nbits_) {
      return nbits_;
    }
    size_t word = from >> 6;
    uint64_t w = words_[word] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) {
        size_t bit = (word << 6) + static_cast<size_t>(__builtin_ctzll(w));
        return bit < nbits_ ? bit : nbits_;
      }
      if (++word >= words_.size()) {
        return nbits_;
      }
      w = words_[word];
    }
  }

 private:
  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace bmx

#endif  // SRC_COMMON_BITMAP_H_
