// Cheap monotonic hot-path counters (paper §8's efficiency mechanisms made
// observable): how many heap slots the scan kernels visited, how many whole
// 64-slot words they skipped in one instruction, how often the lookup tables
// were probed and how often the one-entry MRU cache short-circuited them,
// what the piggyback coalescer saved on the wire, and what the task pool did.
//
// The counters are *per-thread*: a plain `++` on a thread-local is the only
// instrumentation cost the hot paths can afford, and it stays race-free now
// that BGC shards, explorer walks and oracle audits run on pool workers.  The
// TaskPool drains each worker's counters into the submitting thread's at the
// end of every parallel region, so the totals a bench or test reads on its
// own thread are complete and independent of the thread count.  (Scheduling-
// dependent counters — MRU hits, steals — are diagnostics, not part of the
// determinism contract.)  Benchmarks print them (bench_util.h) and reset them
// per measurement; tests assert on them.

#ifndef SRC_COMMON_PERF_COUNTERS_H_
#define SRC_COMMON_PERF_COUNTERS_H_

#include <cstdint>

namespace bmx {

struct PerfCounters {
  // Scan kernels (bitmap word-level iteration).
  uint64_t slots_scanned = 0;       // set bits actually visited by a kernel
  uint64_t words_skipped = 0;       // all-zero 64-slot words skipped whole
  uint64_t objects_walked = 0;      // objects visited via object-map iteration
  uint64_t ref_slots_visited = 0;   // reference slots visited via ref-map kernels

  // Lookup structures.
  uint64_t segment_probes = 0;      // ReplicaStore segment-table lookups
  uint64_t segment_mru_hits = 0;    // ...answered by the one-entry MRU cache
  uint64_t oid_probes = 0;          // ReplicaStore oid→address lookups
  uint64_t directory_probes = 0;    // SegmentDirectory flat-table lookups
  uint64_t token_probes = 0;        // DsmNode token-table lookups

  // Piggyback coalescing.
  uint64_t piggyback_updates_coalesced = 0;  // AddressUpdate entries dropped
  uint64_t piggyback_bytes_saved = 0;        // wire bytes those entries cost
  uint64_t piggyback_overflow_spills = 0;    // caps hit: tail sent in background

  // Crash recovery and fault injection.
  uint64_t recoveries = 0;            // RecoveryManager runs completed
  uint64_t epoch_rejected_msgs = 0;   // messages dropped as stale-incarnation
  uint64_t fault_points_hit = 0;      // FAULT_POINT sites executed
  uint64_t recovery_query_bytes = 0;  // wire bytes of recovery query/reply traffic

  // Task pool (deterministic parallel runtime).
  uint64_t pool_regions = 0;          // multi-threaded ParallelFor regions run
  uint64_t pool_chunks_executed = 0;  // chunks executed across all participants
  uint64_t pool_steals = 0;           // chunks taken from another shard's deque

  // Client-history recording and consistency verdicts.
  uint64_t history_events_recorded = 0;  // client-observable events recorded
  uint64_t consistency_checks_run = 0;   // ConsistencyChecker::Check() calls
  uint64_t consistency_violations = 0;   // violations those checks reported

  // Gray-failure injection and liveness tracking.
  uint64_t zombie_dropped_msgs = 0;    // dispatches swallowed by a zombie link/peer
  uint64_t obligations_opened = 0;     // progress obligations registered
  uint64_t obligations_retired = 0;    // ...discharged before a verdict
  uint64_t liveness_checks_run = 0;    // LivenessOracle evaluations
  uint64_t liveness_violations = 0;    // no-progress verdicts reported

  void Reset() { *this = PerfCounters{}; }

  // Field-wise accumulation; the TaskPool uses it to fold worker counters
  // into the submitter's at the end of each parallel region.
  void Add(const PerfCounters& o) {
    slots_scanned += o.slots_scanned;
    words_skipped += o.words_skipped;
    objects_walked += o.objects_walked;
    ref_slots_visited += o.ref_slots_visited;
    segment_probes += o.segment_probes;
    segment_mru_hits += o.segment_mru_hits;
    oid_probes += o.oid_probes;
    directory_probes += o.directory_probes;
    token_probes += o.token_probes;
    piggyback_updates_coalesced += o.piggyback_updates_coalesced;
    piggyback_bytes_saved += o.piggyback_bytes_saved;
    piggyback_overflow_spills += o.piggyback_overflow_spills;
    recoveries += o.recoveries;
    epoch_rejected_msgs += o.epoch_rejected_msgs;
    fault_points_hit += o.fault_points_hit;
    recovery_query_bytes += o.recovery_query_bytes;
    pool_regions += o.pool_regions;
    pool_chunks_executed += o.pool_chunks_executed;
    pool_steals += o.pool_steals;
    history_events_recorded += o.history_events_recorded;
    consistency_checks_run += o.consistency_checks_run;
    consistency_violations += o.consistency_violations;
    zombie_dropped_msgs += o.zombie_dropped_msgs;
    obligations_opened += o.obligations_opened;
    obligations_retired += o.obligations_retired;
    liveness_checks_run += o.liveness_checks_run;
    liveness_violations += o.liveness_violations;
  }
};

// Per-thread instance.  Header-inline so every layer (bitmap, mem, dsm, gc)
// can bump counters without a link-time dependency.  On the main thread this
// holds the process totals (pool workers drain into it via TaskPool).
inline PerfCounters& GlobalPerfCounters() {
  static thread_local PerfCounters counters;
  return counters;
}

}  // namespace bmx

#endif  // SRC_COMMON_PERF_COUNTERS_H_
