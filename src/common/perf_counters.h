// Cheap monotonic hot-path counters (paper §8's efficiency mechanisms made
// observable): how many heap slots the scan kernels visited, how many whole
// 64-slot words they skipped in one instruction, how often the lookup tables
// were probed and how often the one-entry MRU cache short-circuited them, and
// what the piggyback coalescer saved on the wire.
//
// The counters are process-global: the simulation is single-threaded, the
// directory is shared between nodes anyway, and a plain `++` on a global is
// the only instrumentation cost the hot paths can afford.  Benchmarks print
// them (bench_util.h) and reset them per measurement; tests assert on them.

#ifndef SRC_COMMON_PERF_COUNTERS_H_
#define SRC_COMMON_PERF_COUNTERS_H_

#include <cstdint>

namespace bmx {

struct PerfCounters {
  // Scan kernels (bitmap word-level iteration).
  uint64_t slots_scanned = 0;       // set bits actually visited by a kernel
  uint64_t words_skipped = 0;       // all-zero 64-slot words skipped whole
  uint64_t objects_walked = 0;      // objects visited via object-map iteration
  uint64_t ref_slots_visited = 0;   // reference slots visited via ref-map kernels

  // Lookup structures.
  uint64_t segment_probes = 0;      // ReplicaStore segment-table lookups
  uint64_t segment_mru_hits = 0;    // ...answered by the one-entry MRU cache
  uint64_t oid_probes = 0;          // ReplicaStore oid→address lookups
  uint64_t directory_probes = 0;    // SegmentDirectory flat-table lookups
  uint64_t token_probes = 0;        // DsmNode token-table lookups

  // Piggyback coalescing.
  uint64_t piggyback_updates_coalesced = 0;  // AddressUpdate entries dropped
  uint64_t piggyback_bytes_saved = 0;        // wire bytes those entries cost
  uint64_t piggyback_overflow_spills = 0;    // caps hit: tail sent in background

  // Crash recovery and fault injection.
  uint64_t recoveries = 0;            // RecoveryManager runs completed
  uint64_t epoch_rejected_msgs = 0;   // messages dropped as stale-incarnation
  uint64_t fault_points_hit = 0;      // FAULT_POINT sites executed
  uint64_t recovery_query_bytes = 0;  // wire bytes of recovery query/reply traffic

  void Reset() { *this = PerfCounters{}; }
};

// Single process-wide instance.  Header-inline so every layer (bitmap,
// mem, dsm, gc) can bump counters without a link-time dependency.
inline PerfCounters& GlobalPerfCounters() {
  static PerfCounters counters;
  return counters;
}

}  // namespace bmx

#endif  // SRC_COMMON_PERF_COUNTERS_H_
