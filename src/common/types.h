// Core identifier and global-address types for the BMX platform.
//
// BMX presents a single 64-bit address space spanning every node of the
// network (paper §2.1).  Addresses are plain integers; object references
// stored in the heap are therefore ordinary 64-bit values.  The address space
// is carved into fixed-size, non-overlapping segments; segments are grouped
// into bunches.

#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace bmx {

// A global address in the single 64-bit address space.
using Gaddr = uint64_t;

// Stable internal object identifier.  The mutator-visible model identifies
// objects purely by address (with forwarding headers after a copy); the Oid is
// bookkeeping used by the DSM token manager to track token state across
// address changes, standing in for what a real node derives from its page
// tables.  See DESIGN.md §4.
using Oid = uint64_t;

using NodeId = uint32_t;
using BunchId = uint32_t;
using SegmentId = uint32_t;

inline constexpr Gaddr kNullAddr = 0;
inline constexpr Oid kNullOid = 0;
inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr BunchId kInvalidBunch = 0xffffffffu;
inline constexpr SegmentId kInvalidSegment = 0xffffffffu;

// Segment geometry.  Segments have a constant size (paper §2.1); 256 KiB is
// large relative to objects (which are "generally small") and small enough
// that tests exercise segment overflow and multi-segment bunches.
inline constexpr unsigned kSegmentShift = 18;
inline constexpr size_t kSegmentBytes = size_t{1} << kSegmentShift;

// Heap slots are 8 bytes: a slot holds either a 64-bit scalar or one global
// address.  The object-map and reference-map bit arrays have one bit per slot
// (the paper used one bit per 4-byte word with 32-bit pointers; this is the
// same design at the 64-bit word size).
inline constexpr size_t kSlotBytes = 8;
inline constexpr size_t kSlotsPerSegment = kSegmentBytes / kSlotBytes;

constexpr SegmentId SegmentOf(Gaddr addr) {
  return static_cast<SegmentId>(addr >> kSegmentShift);
}

constexpr size_t OffsetInSegment(Gaddr addr) {
  return static_cast<size_t>(addr & (kSegmentBytes - 1));
}

constexpr Gaddr SegmentBase(SegmentId seg) {
  return static_cast<Gaddr>(seg) << kSegmentShift;
}

constexpr Gaddr MakeAddr(SegmentId seg, size_t offset) {
  return SegmentBase(seg) + offset;
}

// Identifies one replica of a bunch: the pair (node, bunch).
struct ReplicaKey {
  NodeId node = kInvalidNode;
  BunchId bunch = kInvalidBunch;

  friend bool operator==(const ReplicaKey&, const ReplicaKey&) = default;
};

struct ReplicaKeyHash {
  size_t operator()(const ReplicaKey& k) const {
    return std::hash<uint64_t>()((uint64_t{k.node} << 32) | k.bunch);
  }
};

}  // namespace bmx

#endif  // SRC_COMMON_TYPES_H_
