// Fatal-assertion macros used throughout the BMX implementation.
//
// These are always-on invariant checks (not debug asserts): a violated
// invariant in a storage system must stop the run rather than corrupt the
// heap.  The cost is negligible next to the simulated-network work.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace bmx {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr, const std::string& msg);

namespace check_detail {

// Stream-style message collector so call sites can write
// BMX_CHECK(x) << "context " << value;
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace check_detail
}  // namespace bmx

#define BMX_CHECK(cond)                                            \
  if (cond) {                                                      \
  } else /* NOLINT */                                              \
    ::bmx::check_detail::CheckMessage(__FILE__, __LINE__, #cond)

#define BMX_CHECK_EQ(a, b) BMX_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define BMX_CHECK_NE(a, b) BMX_CHECK((a) != (b))
#define BMX_CHECK_LT(a, b) BMX_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define BMX_CHECK_LE(a, b) BMX_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define BMX_CHECK_GT(a, b) BMX_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define BMX_CHECK_GE(a, b) BMX_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // SRC_COMMON_CHECK_H_
