// Deterministic work-stealing task pool.
//
// The paper's central structural claim — the BGC "never acquires a token" and
// never blocks the consistency protocol — means per-segment scan/copy work,
// per-seed schedule exploration and per-node invariant audits are independent
// by design.  This pool exploits that independence without giving up the
// repo's reproducibility contract: every parallel caller keeps results
// per-index (or in per-shard buffers merged in submission order), so the
// output of a parallel region is bit-identical for every thread count and
// every steal schedule.
//
// Determinism contract (pinned by tests/integration/determinism_sweep_test.cc
// and documented in DESIGN.md):
//   * task bodies draw no RNG and read no wall clock;
//   * task bodies never write shared state — they fill caller-provided
//     per-index slots or thread-private buffers;
//   * merges happen on the submitting thread, in submission order;
//   * read-mostly fast paths that mutate on reads (forwarding-chain path
//     compression, the one-entry segment MRU) either become thread-local or
//     stand down while InParallelRegion() holds.
//
// Thread-count knob: BMX_THREADS (default: hardware concurrency).  With one
// thread the pool never spawns a worker and ParallelFor degenerates to the
// exact legacy serial loop — zero pool overhead, bit-identical to the
// pre-pool implementation.  Nested regions (a BGC inside an explorer walk
// that is itself a pool task) also run inline on the calling thread.

#ifndef SRC_COMMON_TASK_POOL_H_
#define SRC_COMMON_TASK_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/perf_counters.h"

namespace bmx {

class TaskPool {
 public:
  // Process-global pool, sized from BMX_THREADS (default: hardware
  // concurrency, minimum 1).  Workers are spawned lazily on the first
  // parallel region and joined at process exit.
  static TaskPool& Global();

  // Thread count the environment asked for (BMX_THREADS, else hardware
  // concurrency) — independent of any SetThreadsForTesting override, so a
  // thread-count sweep can restore the default when it finishes.
  static size_t EnvThreads();

  // Reconfigures the global pool (joins existing workers, respawns on next
  // use).  Testing/bench knob: the determinism sweep and bench_p2_parallel
  // run the same workload at several thread counts in one process.  Must not
  // be called while a parallel region is running.
  static void SetThreadsForTesting(size_t threads);

  // True while the calling thread executes a chunk of a multi-threaded
  // parallel region.  Shared-state fast paths that mutate on reads
  // (DsmNode::ResolveAddr path compression) stand down while this holds so
  // concurrent readers stay readers.
  static bool InParallelRegion();

  explicit TaskPool(size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  size_t threads() const { return threads_; }

  // Fork-join parallel loop: runs body(i) for every i in [0, n); returns when
  // all iterations finished.  Iterations are grouped into chunks distributed
  // round-robin over per-participant deques; an idle participant steals from
  // the tail of other deques.  Runs inline (exact serial loop) when the pool
  // has one thread, when n < 2, or when called from inside a region (nested).
  //
  // Per-thread perf counters accumulated by workers are merged into the
  // submitting thread's counters before this returns, so counter totals are
  // independent of the thread count.  If a body throws, the exception from
  // the lowest-indexed throwing chunk is rethrown here (deterministic choice)
  // after the region drains.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  // Ordered-merge map: out[i] = fn(i), assembled in submission order
  // regardless of execution order.  R must be default-constructible.
  template <typename R, typename Fn>
  std::vector<R> ParallelMap(size_t n, Fn&& fn) {
    std::vector<R> out(n);
    ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Chunk {
    size_t begin = 0;
    size_t end = 0;  // exclusive
  };
  struct Shard {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  void Start();
  void Stop();
  void WorkerLoop(size_t wid);
  // Drains chunks (own shard first, then stealing) until none remain.
  void RunChunks(size_t home_shard);
  bool NextChunk(size_t home_shard, Chunk* out);

  size_t threads_;
  std::vector<std::thread> workers_;                 // threads_ - 1 entries
  std::vector<std::unique_ptr<Shard>> shards_;       // one per participant

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new region / stop
  std::condition_variable done_cv_;  // submitter waits for workers to retire
  uint64_t region_gen_ = 0;
  size_t workers_done_ = 0;
  bool stop_ = false;
  bool started_ = false;
  const std::function<void(size_t)>* body_ = nullptr;
  PerfCounters region_perf_;           // workers' counters, drained per region
  std::exception_ptr region_error_;
  size_t region_error_index_ = 0;      // chunk begin of the kept error

  std::mutex submit_mu_;  // one region at a time
};

}  // namespace bmx

#endif  // SRC_COMMON_TASK_POOL_H_
