#include "src/common/retry.h"

namespace bmx {

namespace {

// Stateless splitmix64 finalizer: jitter must not consume RNG stream state
// (see header determinism contract).
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double ClampFraction(double f) {
  if (f < 0.0) return 0.0;
  if (f > 1.0) return 1.0;
  return f;
}

}  // namespace

RetryPolicy::RetryPolicy(const RetryPolicyConfig& config) { set_config(config); }

void RetryPolicy::set_config(const RetryPolicyConfig& config) {
  config_ = config;
  config_.jitter_fraction = ClampFraction(config_.jitter_fraction);
}

uint64_t RetryPolicy::BackoffFor(uint32_t attempt, uint64_t jitter_key) const {
  uint32_t shift = attempt < config_.backoff_shift_cap ? attempt : config_.backoff_shift_cap;
  uint64_t backoff = config_.base_timeout << shift;
  if (config_.jitter_fraction > 0.0) {
    uint64_t span = static_cast<uint64_t>(static_cast<double>(backoff) * config_.jitter_fraction);
    if (span > 0) {
      uint64_t h = Mix(config_.jitter_seed + 0x9e3779b97f4a7c15ull * (jitter_key + 1));
      h = Mix(h ^ (0xbf58476d1ce4e5b9ull * (static_cast<uint64_t>(attempt) + 1)));
      backoff += h % (span + 1);
    }
  }
  return backoff;
}

bool RetryPolicy::AllowAttempt(NodeId peer, uint64_t now) {
  if (config_.breaker_threshold == 0) return true;
  auto it = breakers_.find(peer);
  if (it == breakers_.end()) return true;
  Breaker& b = it->second;
  switch (b.state) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      // A half-open breaker already admitted its probe; further attempts
      // wait for the probe's outcome.
      return b.state == BreakerState::kClosed;
    case BreakerState::kOpen:
      if (now < b.open_until) return false;
      b.state = BreakerState::kHalfOpen;
      return true;
  }
  return true;
}

void RetryPolicy::RecordSuccess(NodeId peer) {
  if (config_.breaker_threshold == 0) return;
  auto it = breakers_.find(peer);
  if (it == breakers_.end()) return;
  it->second = Breaker{};
}

void RetryPolicy::RecordFailure(NodeId peer, uint64_t now) {
  if (config_.breaker_threshold == 0) return;
  Breaker& b = breakers_[peer];
  if (b.consecutive_failures < UINT32_MAX) b.consecutive_failures++;
  if (b.state == BreakerState::kHalfOpen || b.consecutive_failures >= config_.breaker_threshold) {
    b.state = BreakerState::kOpen;
    b.open_until = now + config_.breaker_cooldown_ticks;
  }
}

RetryPolicy::BreakerState RetryPolicy::StateOf(NodeId peer) const {
  auto it = breakers_.find(peer);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

}  // namespace bmx
