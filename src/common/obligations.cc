#include "src/common/obligations.h"

#include <algorithm>

#include "src/common/perf_counters.h"

namespace bmx {

const char* ObligationKindName(ObligationKind kind) {
  switch (kind) {
    case ObligationKind::kAcquire: return "acquire";
    case ObligationKind::kInvalidation: return "invalidation";
    case ObligationKind::kPendingGrant: return "pending-grant";
    case ObligationKind::kGcReclaim: return "gc-reclaim";
    case ObligationKind::kRecovery: return "recovery";
    case ObligationKind::kRetention: return "retention";
  }
  return "unknown";
}

size_t ObligationTracker::Find(ObligationKind kind, NodeId node,
                               uint64_t key) const {
  for (size_t i = 0; i < open_.size(); ++i) {
    const Obligation& o = open_[i];
    if (o.kind == kind && o.node == node && o.key == key) return i;
  }
  return open_.size();
}

void ObligationTracker::OpenSlow(ObligationKind kind, NodeId node, uint64_t key) {
  if (Find(kind, node, key) != open_.size()) return;  // keep original opened_at
  uint64_t t = now();
  open_.push_back(Obligation{kind, node, key, t, t + deadline_ticks_});
  GlobalPerfCounters().obligations_opened++;
}

void ObligationTracker::CloseSlow(ObligationKind kind, NodeId node, uint64_t key) {
  size_t i = Find(kind, node, key);
  if (i == open_.size()) return;
  open_[i] = open_.back();
  open_.pop_back();
  retired_++;
  GlobalPerfCounters().obligations_retired++;
}

void ObligationTracker::DropNode(NodeId node) {
  if (!enabled_) return;
  for (size_t i = 0; i < open_.size();) {
    if (open_[i].node == node) {
      open_[i] = open_.back();
      open_.pop_back();
    } else {
      ++i;
    }
  }
}

bool ObligationTracker::IsOpen(ObligationKind kind, NodeId node, uint64_t key) const {
  return Find(kind, node, key) != open_.size();
}

namespace {
// Deterministic ledger order for snapshots and dumps, independent of the
// swap-erase churn in the flat store.
void SortLedger(std::vector<Obligation>* out) {
  std::sort(out->begin(), out->end(),
            [](const Obligation& a, const Obligation& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.node != b.node) return a.node < b.node;
              return a.key < b.key;
            });
}
}  // namespace

std::vector<Obligation> ObligationTracker::Snapshot() const {
  std::vector<Obligation> out = open_;
  SortLedger(&out);
  return out;
}

std::string ObligationTracker::Dump() const {
  std::vector<Obligation> sorted = open_;
  SortLedger(&sorted);
  std::string out;
  for (const Obligation& o : sorted) {
    out += "  obligation kind=";
    out += ObligationKindName(o.kind);
    out += " node=" + std::to_string(o.node);
    out += " key=" + std::to_string(o.key);
    out += " opened_at=" + std::to_string(o.opened_at);
    out += " deadline=" + std::to_string(o.deadline);
    out += " age=" + std::to_string(now() >= o.opened_at ? now() - o.opened_at : 0);
    out += "\n";
  }
  return out;
}

}  // namespace bmx
