#include "src/common/fault_injector.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/perf_counters.h"

namespace bmx {

FaultInjector& FaultInjector::Global() {
  // One injector per thread.  Every cluster is confined to a single thread —
  // the main thread for ordinary tests, one pool worker per explorer walk —
  // so armed schedules, hit counts and the network's fire gate stay with the
  // thread that owns the cluster and concurrent walks never clobber each
  // other's gates.
  static thread_local FaultInjector injector;
  return injector;
}

const std::vector<const char*>& FaultInjector::AllSites() {
  // Canonical crash-point table.  One entry per protocol step whose
  // interruption exercises a distinct recovery obligation; the crash-point
  // sweep runs every one of them.
  static const std::vector<const char*> sites = {
      // DSM consistency protocol (dsm_node.cc).
      "dsm.acquire.pre_send",      // requester dies with the request unsent
      "dsm.grant.pre_send",        // owner dies after relinquishing, before the grant
      "dsm.grant.post_install",    // requester dies right after adopting the token
      "dsm.invalidate.pre_ack",    // reader dies between invalidation and its ack
      "dsm.push.pre_apply",        // replica holder dies before applying a push
      // Bunch garbage collector (gc_engine.cc, bgc.cc).
      "gc.alloc.post_register",    // allocator dies after registering a fresh oid
      "gc.scion.pre_send",         // stub created, scion-message not yet sent
      "bgc.collect.pre_trace",     // BGC dies before tracing starts
      "bgc.flip.pre_publish",      // heap flipped, reachability tables unsent
      "bgc.tables.post_send",      // tables sent, from-space still unreclaimed
      // Scion cleaner (scion_cleaner.cc).
      "cleaner.table.pre_apply",   // cleaner dies before applying a table
      // From-space reclamation (reclaim.cc).
      "reclaim.round.pre_notices", // round opened, notices unsent
      "reclaim.copy.pre_reply",    // owner dies before answering a copy request
      "reclaim.finish.pre_free",   // round complete, segments not yet freed
      // Stable storage (persistence.cc, rvm.cc).
      "persist.checkpoint.pre_commit",
      "persist.checkpoint.post_commit",
      "rvm.commit.pre_log",        // undo applied in memory, no redo on disk
      "rvm.commit.pre_marker",     // redo records written, commit marker missing
      "rvm.truncate.pre_reset",    // log replayed into segments, not yet reset
  };
  return sites;
}

namespace {

bool KnownSite(const char* site) {
  const auto& sites = FaultInjector::AllSites();
  return std::any_of(sites.begin(), sites.end(),
                     [site](const char* s) { return std::string(s) == site; });
}

}  // namespace

void FaultInjector::Hit(const char* site, NodeId node) {
  GlobalPerfCounters().fault_points_hit++;
  if (armed_.empty() && !recording_) {
    return;  // fast path: injection disabled
  }
  BMX_CHECK(KnownSite(site)) << "fault site not in canonical table: " << site;
  if (recording_) {
    hits_[{site, node}]++;
  }
  auto it = armed_.find({site, node});
  if (it == armed_.end()) {
    return;
  }
  if (++it->second.hits >= it->second.kth_hit) {
    if (fire_gate_ && !fire_gate_(site, node)) {
      // The decision stream suppressed this firing; the schedule stays armed
      // and is consulted again at the site's next hit.
      return;
    }
    armed_.erase(it);  // one-shot: the node is about to die
    throw NodeCrashSignal{node, site};
  }
}

void FaultInjector::set_fire_gate(const void* owner,
                                  std::function<bool(const char*, NodeId)> gate) {
  gate_owner_ = owner;
  fire_gate_ = std::move(gate);
}

void FaultInjector::ClearFireGate(const void* owner) {
  if (gate_owner_ != owner) {
    return;  // a successor installed its own gate; leave it alone
  }
  gate_owner_ = nullptr;
  fire_gate_ = nullptr;
}

void FaultInjector::Arm(const std::string& site, NodeId node, uint64_t kth_hit) {
  BMX_CHECK(KnownSite(site.c_str())) << "cannot arm unknown fault site: " << site;
  BMX_CHECK_GE(kth_hit, 1u);
  armed_[{site, node}] = Schedule{kth_hit, 0};
}

void FaultInjector::Reset() {
  armed_.clear();
  hits_.clear();
  recording_ = false;
}

void FaultInjector::set_recording(bool on) { recording_ = on; }

uint64_t FaultInjector::HitCount(const std::string& site, NodeId node) const {
  auto it = hits_.find({site, node});
  return it == hits_.end() ? 0 : it->second;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  uint64_t n = 0;
  for (const auto& [key, count] : hits_) {
    if (key.first == site) {
      n += count;
    }
  }
  return n;
}

}  // namespace bmx
