// Progress-obligation registry for the liveness oracle (paper §8: the
// protocols are supposed to *make progress* — "the BGC never acquires a
// token", background exchange never stalls mutators).
//
// An obligation is an open promise of future progress: an acquire that has
// not completed, an invalidation fan-out still awaiting acks, a write grant
// parked behind one, a from-space reclaim round with outstanding copies, an
// armed recovery between its kStart and kComplete marks, additive scion
// retention for a recovering peer.  Each protocol layer Opens an obligation
// when it takes the promise on and Closes it at the exact point the promise
// is discharged.  The LivenessOracle (src/runtime/liveness.h) then has a
// cluster-wide ledger to interrogate: at quiescence, or after a bounded
// window of deliveries retires nothing, any open obligation that no protocol
// rule excuses is a no-progress verdict.
//
// The tracker is disabled by default and the Open/Close fast path is one
// inlined branch, so runs without liveness checking pay nothing and traffic
// fingerprints stay bit-identical (the tracker never touches the network).
// Obligations are stamped with the owning component's virtual clock (a
// borrowed pointer to Network::now_) so deadlines live on simulated time,
// not wall time.

#ifndef SRC_COMMON_OBLIGATIONS_H_
#define SRC_COMMON_OBLIGATIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace bmx {

enum class ObligationKind : uint8_t {
  kAcquire,       // DsmNode acquire in flight (key unused)
  kInvalidation,  // invalidation fan-out awaiting acks (key = oid)
  kPendingGrant,  // write grant parked behind an invalidation (key = oid)
  kGcReclaim,     // from-space reclaim round with outstanding copies (key = round)
  kRecovery,      // armed recovery between kStart and kComplete (key unused)
  kRetention,     // additive scion retention for a recovering peer (key = peer)
};

const char* ObligationKindName(ObligationKind kind);

struct Obligation {
  ObligationKind kind;
  NodeId node;    // the node that owes the progress
  uint64_t key;   // kind-specific discriminator (see ObligationKind)
  uint64_t opened_at;
  uint64_t deadline;
};

class ObligationTracker {
 public:
  // Borrow the owner's virtual clock; must outlive the tracker.
  void AttachClock(const uint64_t* clock) { clock_ = clock; }

  // Idempotent.  deadline_ticks stamps every subsequently opened obligation
  // with opened_at + deadline_ticks.
  void Enable(uint64_t deadline_ticks = kDefaultDeadlineTicks) {
    enabled_ = true;
    deadline_ticks_ = deadline_ticks;
  }
  bool enabled() const { return enabled_; }

  // Open/Close are keyed on (kind, node, key) and idempotent: re-opening an
  // open obligation keeps the original opened_at (the oldest promise is the
  // one whose age matters); closing an absent one is a no-op (handlers are
  // replay-idempotent, so double-discharge must be harmless).
  void Open(ObligationKind kind, NodeId node, uint64_t key) {
    if (!enabled_) return;
    OpenSlow(kind, node, key);
  }
  void Close(ObligationKind kind, NodeId node, uint64_t key) {
    if (!enabled_) return;
    CloseSlow(kind, node, key);
  }

  // Crash-stop: a dead node owes nothing (its obligations either die with it
  // or re-arm in the next incarnation).  Retires every obligation owned by
  // `node` without counting them as progress.
  void DropNode(NodeId node);

  size_t OpenCount() const { return open_.size(); }
  bool IsOpen(ObligationKind kind, NodeId node, uint64_t key) const;
  // Obligations discharged via Close since Enable — the oracle's progress
  // signal (DropNode does not count).
  uint64_t retired() const { return retired_; }

  // Snapshot in deterministic (kind, node, key) order.
  std::vector<Obligation> Snapshot() const;
  // Human-readable ledger for diagnostics ("" when nothing is open).
  std::string Dump() const;

  static constexpr uint64_t kDefaultDeadlineTicks = 10000;

 private:
  void OpenSlow(ObligationKind kind, NodeId node, uint64_t key);
  void CloseSlow(ObligationKind kind, NodeId node, uint64_t key);
  uint64_t now() const { return clock_ != nullptr ? *clock_ : 0; }
  size_t Find(ObligationKind kind, NodeId node, uint64_t key) const;

  bool enabled_ = false;
  const uint64_t* clock_ = nullptr;
  uint64_t deadline_ticks_ = kDefaultDeadlineTicks;
  // Flat unordered ledger: the open set stays small (one entry per in-flight
  // acquire / fan-out / round / recovery, not per message), so a linear scan
  // beats a node-allocating tree on the Open/Close hot path and swap-erase
  // keeps steady state allocation-free.  Snapshot()/Dump() sort, so the
  // observable order stays deterministic (kind, node, key).
  std::vector<Obligation> open_;
  uint64_t retired_ = 0;
};

}  // namespace bmx

#endif  // SRC_COMMON_OBLIGATIONS_H_
