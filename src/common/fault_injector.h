// Deterministic crash-point fault injection.
//
// Protocol code marks the instants where a crash is interesting — just before
// a grant leaves the owner, between writing redo records and the commit
// marker, after the flip but before the reachability tables go out — with
// named FAULT_POINT sites.  A test arms a schedule ("crash node N at the k-th
// hit of site S"); when the schedule matches, the injector throws
// NodeCrashSignal, which unwinds the victim's call stack exactly as a machine
// check would stop a real node mid-instruction.  The simulated network
// catches the signal at its dispatch boundary and converts it into a node
// crash; direct callers (tests driving a node's GC or checkpoint code)
// catch it themselves and report the crash to the cluster.
//
// Sites are registered in a canonical table (AllSites) so sweeps can
// enumerate every crash point and so a typo in a site name fails fast
// instead of silently never firing.

#ifndef SRC_COMMON_FAULT_INJECTOR_H_
#define SRC_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace bmx {

// Thrown from a fault site to simulate the named node halting on the spot.
// Deliberately NOT derived from std::exception: nothing may catch it
// accidentally via catch (const std::exception&).
struct NodeCrashSignal {
  NodeId node = kInvalidNode;
  const char* site = "";
};

class FaultInjector {
 public:
  // Per-thread instance (like GlobalPerfCounters): every cluster runs
  // confined to one thread — the main thread normally, a pool worker for a
  // parallel explorer walk — and its fault schedules and fire gate live on
  // that thread.  Tests Reset() it between scenarios; scenario closures must
  // not leave schedules armed behind them.
  static FaultInjector& Global();

  // Marks one execution of the named crash point by `node`.  Cheap when
  // nothing is armed; throws NodeCrashSignal{node, site} when an armed
  // schedule matches.  `site` must be in the canonical table.
  void Hit(const char* site, NodeId node);

  // Arms "crash `node` at the `kth_hit`-th execution of `site`" (1-based).
  // Hit counting for the schedule starts now, not at process start.
  void Arm(const std::string& site, NodeId node, uint64_t kth_hit = 1);

  // Disarms every schedule and clears all hit counts.
  void Reset();

  // Track per-site hit counts even with no schedule armed (sweeps use this
  // to prove every registered site is actually exercised by the workload).
  void set_recording(bool on);

  bool ArmedAnywhere() const { return !armed_.empty(); }
  uint64_t HitCount(const std::string& site, NodeId node) const;
  uint64_t HitCount(const std::string& site) const;

  // Routes armed-schedule firings through the network's decision stream.
  // When a gate is set, a matched schedule throws only if the gate returns
  // true; a gated-off match leaves the schedule armed, to be consulted again
  // on the next hit of the site.  `owner` scopes removal: ClearFireGate is a
  // no-op unless called with the owner that installed the current gate, so a
  // network being destroyed cannot tear down a successor's gate.  Reset()
  // deliberately leaves the gate in place — it is delivery-scheduling
  // plumbing, not an armed schedule.
  void set_fire_gate(const void* owner, std::function<bool(const char*, NodeId)> gate);
  void ClearFireGate(const void* owner);

  // Canonical site table; arming or hitting a name outside it is a fatal
  // error.
  static const std::vector<const char*>& AllSites();

 private:
  FaultInjector() = default;

  struct Schedule {
    uint64_t kth_hit = 0;
    uint64_t hits = 0;  // hits observed since the schedule was armed
  };

  using SiteNode = std::pair<std::string, NodeId>;

  bool recording_ = false;
  std::map<SiteNode, Schedule> armed_;
  std::map<SiteNode, uint64_t> hits_;
  const void* gate_owner_ = nullptr;
  std::function<bool(const char*, NodeId)> fire_gate_;
};

// Site marker used by protocol code.  Reads as a statement and compiles to a
// counter bump plus one branch when nothing is armed.
#define FAULT_POINT(site, node) ::bmx::FaultInjector::Global().Hit((site), (node))

}  // namespace bmx

#endif  // SRC_COMMON_FAULT_INJECTOR_H_
