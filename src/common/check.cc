#include "src/common/check.h"

namespace bmx {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::fprintf(stderr, "BMX_CHECK failed at %s:%d: %s %s\n", file, line, expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace bmx
