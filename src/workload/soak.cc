#include "src/workload/soak.h"

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"
#include "src/workload/graph_builder.h"

namespace bmx {

ExplorerScenario SoakScenario(const SoakOptions& options) {
  ExplorerScenario scenario;
  scenario.name = std::string("soak-") + TopologyKindName(options.topology) + "@" +
                  std::to_string(options.num_nodes);
  SoakOptions opts = options;
  scenario.make = [opts](uint64_t root_seed) {
    return std::make_unique<Cluster>(
        ClusterOptions{.num_nodes = static_cast<uint32_t>(opts.num_nodes),
                       .seed = root_seed,
                       .topology = opts.topology,
                       .topology_degree = opts.topology_degree,
                       .batch = opts.batch});
  };
  scenario.run = [opts](Cluster& c) {
    Rng rng(DeriveStreamSeed(c.seed(), RngStream::kSoak));
    const Topology& topo = c.topology();
    size_t n = c.size();
    std::vector<std::unique_ptr<Mutator>> mutators;
    std::vector<std::unique_ptr<GraphBuilder>> builders;
    std::vector<BunchId> bunches;
    for (NodeId id = 0; id < n; ++id) {
      mutators.push_back(std::make_unique<Mutator>(&c.node(id)));
      builders.push_back(std::make_unique<GraphBuilder>(&c, mutators.back().get()));
      bunches.push_back(c.CreateBunch(id));
    }
    // Each node's population is a GraphBuilder list in its own bunch: slot 0
    // is the spine, slot 1 the contended word, slot 2 a scratch reference.
    // objs[owner][j] walks the list head-first.
    std::vector<std::vector<Gaddr>> objs(n);
    for (NodeId id = 0; id < n; ++id) {
      Gaddr cur = builders[id]->BuildList(bunches[id], opts.objects_per_node, 3);
      mutators[id]->AddRoot(cur);
      while (cur != kNullAddr) {
        objs[id].push_back(cur);
        cur = mutators[id]->ReadRef(cur, 0);
      }
    }
    c.Pump();

    for (size_t i = 0; i < opts.ops; ++i) {
      // The whole step — actor, target, mode, access plan — is drawn before
      // touching the cluster, so the rng stream advances identically under
      // every delivery schedule.
      NodeId actor = static_cast<NodeId>(rng.Below(n));
      if (rng.Chance(opts.gc_chance)) {
        c.node(actor).gc().CollectBunch(bunches[actor]);
        c.Pump();
        continue;
      }
      if (rng.Chance(opts.reclaim_chance)) {
        c.node(actor).gc().ReclaimFromSpaces(bunches[actor]);
        c.Pump();
        continue;
      }
      // Sharing follows the topology: half the sections stay home, half
      // visit a neighbor's population.
      NodeId owner = rng.Chance(0.5) ? actor : topo.NeighborOf(actor, rng.Next());
      size_t j = rng.Below(opts.objects_per_node);
      bool write_mode = rng.Chance(opts.write_fraction);
      struct PlannedAccess {
        bool is_ref;
        uint32_t slot;
        uint64_t word;
        NodeId ref_owner;
        size_t ref_index;
      };
      std::vector<PlannedAccess> plan;
      do {
        PlannedAccess a{};
        if (write_mode) {
          a.is_ref = rng.Chance(opts.cross_ref_chance);
          a.slot = a.is_ref ? 2u : 1u;
          a.word = rng.Below(1000);
          // Cross-bunch edge: point the scratch slot at a neighbor-of-the-
          // owner's object, the inter-bunch reference that creates scions.
          a.ref_owner = topo.NeighborOf(owner, rng.Next());
          a.ref_index = rng.Below(opts.objects_per_node);
        } else {
          // Reads respect the slot typing: the spine (0) and scratch (2)
          // slots hold references, the contended slot (1) holds a word — a
          // ReadWord of a ref slot would record a mismatched access class.
          a.is_ref = rng.Chance(0.4);
          a.slot = a.is_ref ? (rng.Chance(0.5) ? 0u : 2u) : 1u;
        }
        plan.push_back(a);
      } while (rng.Chance(opts.extra_op_chance));
      if (c.node(actor).dsm().AcquireInFlight()) {
        continue;  // an earlier denied acquire is still parked on this node
      }
      Gaddr target = objs[owner][j];
      Mutator& m = *mutators[actor];
      bool ok = write_mode ? m.AcquireWrite(target) : m.AcquireRead(target);
      if (!ok) {
        continue;
      }
      for (const PlannedAccess& a : plan) {
        if (write_mode) {
          if (a.is_ref) {
            m.WriteRef(target, a.slot, objs[a.ref_owner][a.ref_index]);
          } else {
            m.WriteWord(target, a.slot, a.word);
          }
        } else {
          if (a.is_ref) {
            (void)m.ReadRef(target, a.slot);
          } else {
            (void)m.ReadWord(target, a.slot);
          }
        }
      }
      m.Release(target);
      if (opts.pump_interval > 0 && (i + 1) % opts.pump_interval == 0) {
        c.Pump();
      }
    }
    c.Pump();
  };
  return scenario;
}

}  // namespace bmx
