// Workload generators shared by tests, examples and benchmarks: the
// "intricate object graphs" of the paper's motivating applications (§1 —
// design databases, cooperative work, WWW-like exploratory structures).
// Everything goes through the Mutator API so tokens and write barriers apply.

#ifndef SRC_WORKLOAD_GRAPH_BUILDER_H_
#define SRC_WORKLOAD_GRAPH_BUILDER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {

class GraphBuilder {
 public:
  GraphBuilder(Cluster* cluster, Mutator* mutator);

  // Singly linked list of `count` objects in `bunch`.  Slot 0 is the next
  // pointer; remaining slots carry scalar payload.  Returns the head.
  Gaddr BuildList(BunchId bunch, size_t count, uint32_t size_slots = 2);

  // Complete binary tree of the given depth (depth 0 = single node).  Slots 0
  // and 1 are children.  Returns the root.
  Gaddr BuildTree(BunchId bunch, size_t depth, uint32_t size_slots = 3);

  // `count` objects with `out_degree` random intra-bunch references each.
  // Returns all objects; the first is connected to every other via a spine so
  // rooting it keeps the whole population alive.
  std::vector<Gaddr> BuildRandomGraph(BunchId bunch, size_t count, size_t out_degree, Rng* rng);

  // A ring of objects, one per bunch in `bunches`, each pointing to the next
  // (cross-bunch cycle — GGC's prey, §7).  Returns the ring members.
  std::vector<Gaddr> BuildCrossBunchCycle(const std::vector<BunchId>& bunches,
                                          uint32_t size_slots = 2);

  // Random reference rewrites among `objects` (slot 1 is used as a scratch
  // reference slot, so objects need >= 2 slots).
  void Churn(const std::vector<Gaddr>& objects, size_t writes, Rng* rng);

 private:
  Cluster* cluster_;
  Mutator* mutator_;
};

}  // namespace bmx

#endif  // SRC_WORKLOAD_GRAPH_BUILDER_H_
