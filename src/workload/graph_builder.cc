#include "src/workload/graph_builder.h"

#include "src/common/check.h"

namespace bmx {

GraphBuilder::GraphBuilder(Cluster* cluster, Mutator* mutator)
    : cluster_(cluster), mutator_(mutator) {
  BMX_CHECK(cluster_ != nullptr && mutator_ != nullptr);
}

Gaddr GraphBuilder::BuildList(BunchId bunch, size_t count, uint32_t size_slots) {
  BMX_CHECK_GE(size_slots, 1u);
  Gaddr head = kNullAddr;
  for (size_t i = 0; i < count; ++i) {
    Gaddr node = mutator_->Alloc(bunch, size_slots);
    mutator_->WriteRef(node, 0, head);
    if (size_slots > 1) {
      mutator_->WriteWord(node, 1, count - i);
    }
    head = node;
  }
  return head;
}

Gaddr GraphBuilder::BuildTree(BunchId bunch, size_t depth, uint32_t size_slots) {
  BMX_CHECK_GE(size_slots, 2u);
  Gaddr node = mutator_->Alloc(bunch, size_slots);
  if (size_slots > 2) {
    mutator_->WriteWord(node, 2, depth);
  }
  if (depth > 0) {
    mutator_->WriteRef(node, 0, BuildTree(bunch, depth - 1, size_slots));
    mutator_->WriteRef(node, 1, BuildTree(bunch, depth - 1, size_slots));
  }
  return node;
}

std::vector<Gaddr> GraphBuilder::BuildRandomGraph(BunchId bunch, size_t count, size_t out_degree,
                                                  Rng* rng) {
  BMX_CHECK_GT(count, 0u);
  uint32_t size_slots = static_cast<uint32_t>(out_degree + 1);
  std::vector<Gaddr> objects;
  objects.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    objects.push_back(mutator_->Alloc(bunch, size_slots));
  }
  // Spine through slot 0 so the first object reaches all of them.
  for (size_t i = 0; i + 1 < count; ++i) {
    mutator_->WriteRef(objects[i], 0, objects[i + 1]);
  }
  // Random extra edges in the remaining slots.
  for (size_t i = 0; i < count; ++i) {
    for (size_t d = 1; d <= out_degree; ++d) {
      mutator_->WriteRef(objects[i], d, objects[rng->Below(count)]);
    }
  }
  return objects;
}

std::vector<Gaddr> GraphBuilder::BuildCrossBunchCycle(const std::vector<BunchId>& bunches,
                                                      uint32_t size_slots) {
  BMX_CHECK_GE(size_slots, 1u);
  BMX_CHECK_GE(bunches.size(), 2u);
  std::vector<Gaddr> ring;
  ring.reserve(bunches.size());
  for (BunchId bunch : bunches) {
    ring.push_back(mutator_->Alloc(bunch, size_slots));
  }
  for (size_t i = 0; i < ring.size(); ++i) {
    mutator_->WriteRef(ring[i], 0, ring[(i + 1) % ring.size()]);
  }
  return ring;
}

void GraphBuilder::Churn(const std::vector<Gaddr>& objects, size_t writes, Rng* rng) {
  BMX_CHECK_GE(objects.size(), 2u);
  for (size_t i = 0; i < writes; ++i) {
    Gaddr src = objects[rng->Below(objects.size())];
    Gaddr dst = objects[rng->Below(objects.size())];
    mutator_->WriteRef(src, 1, dst);
  }
}

}  // namespace bmx
