// Scale-out soak/stress workload: a long randomized multi-node GraphBuilder
// workload over a parameterized topology, packaged as an ExplorerScenario so
// the schedule explorer can run it with all three oracles (invariant,
// consistency, liveness) at N-node scale.
//
// Sharing follows the cluster topology: every node owns one bunch with a
// GraphBuilder-built object population, and its critical sections touch its
// own and its topology-neighbors' objects — reads replicate neighbor objects
// (growing copy-sets), writes invalidate them (fan-out), reference writes
// create cross-bunch edges (scions), and periodic collections and from-space
// reclaims keep background GC traffic flowing through all of it.  The op
// sequence is a pure function of (options, cluster seed), independent of the
// delivery schedule: plans are drawn before any cluster interaction, so a
// denied acquire skips only the accesses, never a draw.

#ifndef SRC_WORKLOAD_SOAK_H_
#define SRC_WORKLOAD_SOAK_H_

#include "src/net/batch.h"
#include "src/runtime/explorer.h"
#include "src/runtime/topology.h"

namespace bmx {

struct SoakOptions {
  size_t num_nodes = 16;
  TopologyKind topology = TopologyKind::kRandomRegular;
  size_t topology_degree = 4;
  // Per-node object population (each node's bunch holds a GraphBuilder list
  // of this many 3-slot objects: next-pointer spine, contended word, scratch
  // reference slot).
  size_t objects_per_node = 3;
  // Mutator operations attempted across the cluster.  CI soak runs use tens
  // of thousands; the bounded tier-1 smoke uses a few hundred.
  size_t ops = 4000;
  double write_fraction = 0.4;    // P(critical section is a write section)
  double extra_op_chance = 0.3;   // P(another access inside the section)
  double cross_ref_chance = 0.2;  // P(a write plants a cross-bunch reference)
  double gc_chance = 0.04;        // P(op is a bunch collection instead)
  double reclaim_chance = 0.02;   // P(op is a from-space reclaim instead)
  // Drain the network every this many ops (0 = only at section boundaries
  // forced by the protocol and once at the end).
  size_t pump_interval = 64;
  // Transport coalescing for the soak cluster (off = pinned baseline).
  BatchPolicy batch;
};

// Scenario name: "soak" (suffixed with the topology and node count, e.g.
// "soak-random-regular@16", so sweep output distinguishes configurations).
ExplorerScenario SoakScenario(const SoakOptions& options = {});

}  // namespace bmx

#endif  // SRC_WORKLOAD_SOAK_H_
