// Canonical scenario closures for the schedule explorer: the paper's
// figure 1–4 situations, reduced to self-contained workloads the Explorer can
// re-execute under arbitrary delivery schedules.  Each closure builds its own
// cluster and tolerates adversarial interleavings (a failed acquire skips the
// dependent operations instead of faulting), so every schedule the explorer
// can produce is a legal run to check invariants over.

#ifndef SRC_RUNTIME_SCENARIOS_H_
#define SRC_RUNTIME_SCENARIOS_H_

#include <vector>

#include "src/runtime/explorer.h"

namespace bmx {

// The fig. 1–4 closures, in figure order:
//   fig1-ssp-chain          — inter+intra SSP chain kept alive across bunches
//   fig2-token-migration    — a write token circulating over three nodes
//   fig3-invalidate-fanout  — one writer invalidating two replica readers
//   fig4-reclaim-churn      — allocation, unlinking and bunch collection
std::vector<ExplorerScenario> StandardScenarios();

// The planted-ordering-bug workload (see
// DsmNode::PlantCanaryReorderBugForTesting): fig3's invalidation fan-out with
// the canary armed at the writer.  Under FIFO the acks converge in increasing
// src order and nothing happens; exploratory schedules can invert them, which
// corrupts the token table into a uniqueness violation the oracle flags.
// Used by tests and CI to prove the find→record→shrink→replay pipeline works.
ExplorerScenario CanaryReorderScenario();

}  // namespace bmx

#endif  // SRC_RUNTIME_SCENARIOS_H_
