// Canonical scenario closures for the schedule explorer: the paper's
// figure 1–4 situations, reduced to self-contained workloads the Explorer can
// re-execute under arbitrary delivery schedules.  Each closure builds its own
// cluster and tolerates adversarial interleavings (a failed acquire skips the
// dependent operations instead of faulting), so every schedule the explorer
// can produce is a legal run to check invariants over.

#ifndef SRC_RUNTIME_SCENARIOS_H_
#define SRC_RUNTIME_SCENARIOS_H_

#include <vector>

#include "src/runtime/explorer.h"

namespace bmx {

// The fig. 1–4 closures, in figure order:
//   fig1-ssp-chain          — inter+intra SSP chain kept alive across bunches
//   fig2-token-migration    — a write token circulating over three nodes
//   fig3-invalidate-fanout  — one writer invalidating two replica readers
//   fig4-reclaim-churn      — allocation, unlinking and bunch collection
std::vector<ExplorerScenario> StandardScenarios();

// The same four shapes generalized to N-node clusters (N >= 2), named with an
// "@N" suffix (e.g. "fig3-invalidate-fanout@16"): fig1 becomes an N-bunch
// inter-bunch chain with the head's token migrating, fig2 walks the write
// token around all N nodes, fig3 fans invalidations out to N-1 replicas, and
// fig4 replicates the head on every non-owner before the unlink-and-collect.
// At N == 3 these drive the same protocol paths as StandardScenarios (which
// stays byte-pinned by the fingerprint tests and is left untouched).  `batch`
// configures the cluster's transport coalescing — default off, the pinned
// baseline.
std::vector<ExplorerScenario> ScaledScenarios(size_t num_nodes,
                                              const BatchPolicy& batch = {});

// The planted-ordering-bug workload (see
// DsmNode::PlantCanaryReorderBugForTesting): fig3's invalidation fan-out with
// the canary armed at the writer.  Under FIFO the acks converge in increasing
// src order and nothing happens; exploratory schedules can invert them, which
// corrupts the token table into a uniqueness violation the oracle flags.
// Used by tests and CI to prove the find→record→shrink→replay pipeline works.
ExplorerScenario CanaryReorderScenario();

// The planted-consistency-bug workload (see
// DsmNode::PlantStaleReadBugForTesting): fig3's shape with the bug armed at
// the owner before its write upgrade, so node 1's replica is never
// invalidated.  Node 1's next acquire hits the cached-token fast path — no
// messages, no causal edge from the writer — and reads stale bytes inside a
// critical section concurrent with the writer's.  Only the ConsistencyChecker
// sees it as a consistency violation (run with check_consistency on); the
// schedule does not matter, so any walk finds it and shrinking collapses the
// trace to (near) nothing.
ExplorerScenario StaleReadCanaryScenario();

// The planted-livelock workload: fig2's shape with a zombie profile installed
// on the owner→requester link before the requester's acquire, so the grant is
// transport-acked but never dispatched.  The requester's acquire obligation
// stays open with no excuse — the target is alive and attached, no traffic
// remains, and the owner holds no deferred work for it — which is exactly the
// gray failure the LivenessOracle exists to flag (run with check_liveness
// on).  The schedule does not matter, so any walk finds it and shrinking
// collapses the trace to (near) nothing.  Used by tests and CI to prove the
// liveness find→record→shrink→replay pipeline works.
ExplorerScenario ZombieGrantCanaryScenario();

// Knobs of the randomized mutator workload below.  Every field is part of the
// scenario's identity: the op sequence is a pure function of (knobs, cluster
// seed), independent of the delivery schedule — acquires that fail under an
// adversarial schedule consume their draws anyway and skip only the accesses.
struct HistoryWorkloadOptions {
  size_t num_nodes = 3;
  size_t objects = 4;          // object fan-out (each on creator j % num_nodes)
  size_t ops = 48;             // critical sections attempted
  double write_fraction = 0.45;  // P(section is a write section)
  double extra_op_chance = 0.35;  // P(another access inside the section)
  double gc_chance = 0.12;     // P(an op is a bunch collection instead)
};

// A seeded random mutator mix — acquire/release brackets of random mode over
// a shared object set, word and ref writes, re-reads, and GC pressure — for
// exercising the ConsistencyChecker on histories with real contention.  Knobs
// scale node count, fan-out, acquire density and GC pressure.
ExplorerScenario HistoryWorkloadScenario(const HistoryWorkloadOptions& options = {});

}  // namespace bmx

#endif  // SRC_RUNTIME_SCENARIOS_H_
