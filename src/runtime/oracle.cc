#include "src/runtime/oracle.h"

#include <map>
#include <set>
#include <sstream>

#include "src/common/task_pool.h"
#include "src/gc/ssp.h"
#include "src/mem/object.h"

// Parallelism (TaskPool): the per-node audits are pure reads over a quiescent
// cluster — token snapshots, SSP tables, heap walks — so each live node's
// portion runs as an independent shard; shard outputs (snapshots or violation
// strings) merge in node order, which is exactly the order the serial loops
// produce them in.  Verdicts are therefore identical at any thread count.

namespace bmx {

namespace {

// True when `node`'s own view resolves `addr` to an object with local bytes.
bool ResolvesToLocalBytes(Node& node, Gaddr addr) {
  if (addr == kNullAddr) {
    return false;
  }
  Gaddr resolved = node.dsm().ResolveAddr(addr);
  return resolved != kNullAddr && node.store().HasObjectAt(resolved) &&
         !node.store().HeaderOf(resolved)->forwarded();
}

}  // namespace

std::vector<NodeId> InvariantOracle::LiveNodes() const {
  std::vector<NodeId> live;
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    if (cluster_->IsAlive(id)) {
      live.push_back(id);
    }
  }
  return live;
}

std::vector<std::string> InvariantOracle::Check() {
  std::vector<std::string> out;
  CheckTokens(&out);
  CheckSsps(&out);
  CheckReachability(&out);
  return out;
}

std::vector<std::string> InvariantOracle::CheckStable() {
  std::vector<std::string> out;
  CheckTokenUniqueness(&out);
  return out;
}

void InvariantOracle::CheckTokenUniqueness(std::vector<std::string>* out) {
  // (1) token uniqueness.  This family holds at every instant of a correct
  // protocol — a granter always sheds its token before the grant leaves — so
  // it is safe to evaluate between arbitrary deliveries (CheckStable).
  struct Holder {
    NodeId node = kInvalidNode;
    TokenSnapshot snap;
  };
  std::map<Oid, std::vector<Holder>> by_oid;
  std::vector<NodeId> live = LiveNodes();
  std::vector<std::vector<TokenSnapshot>> snapshots =
      TaskPool::Global().ParallelMap<std::vector<TokenSnapshot>>(live.size(), [&](size_t i) {
        return cluster_->node(live[i]).dsm().SnapshotTokens();
      });
  for (size_t i = 0; i < live.size(); ++i) {
    for (const TokenSnapshot& snap : snapshots[i]) {
      by_oid[snap.oid].push_back({live[i], snap});
    }
  }
  for (const auto& [oid, holders] : by_oid) {
    std::vector<NodeId> owners;
    std::vector<NodeId> writers;
    for (const Holder& h : holders) {
      if (h.snap.owner) {
        owners.push_back(h.node);
      }
      if (h.snap.state == TokenState::kWrite) {
        writers.push_back(h.node);
      }
    }
    if (owners.size() > 1) {
      std::ostringstream os;
      os << "oid " << oid << ": " << owners.size() << " simultaneous owners (nodes";
      for (NodeId n : owners) os << " " << n;
      os << ")";
      out->push_back(os.str());
    }
    if (!writers.empty()) {
      for (const Holder& h : holders) {
        if (h.snap.state != TokenState::kNone && h.node != writers.front()) {
          std::ostringstream os;
          os << "oid " << oid << ": write token at node " << writers.front()
             << " coexists with a token at node " << h.node;
          out->push_back(os.str());
        }
      }
    }
  }
}

void InvariantOracle::CheckTokens(std::vector<std::string>* out) {
  CheckTokenUniqueness(out);
  // Gather every live node's token table, grouped by oid, for the
  // quiescence-only families (2) and (3).
  struct Holder {
    NodeId node = kInvalidNode;
    TokenSnapshot snap;
  };
  std::map<Oid, std::vector<Holder>> by_oid;
  std::map<Oid, std::set<NodeId>> copyset_union;
  std::vector<NodeId> live = LiveNodes();
  std::vector<std::vector<TokenSnapshot>> snapshots =
      TaskPool::Global().ParallelMap<std::vector<TokenSnapshot>>(live.size(), [&](size_t i) {
        return cluster_->node(live[i]).dsm().SnapshotTokens();
      });
  for (size_t i = 0; i < live.size(); ++i) {
    for (const TokenSnapshot& snap : snapshots[i]) {
      by_oid[snap.oid].push_back({live[i], snap});
      for (NodeId member : snap.copyset) {
        copyset_union[snap.oid].insert(member);
      }
    }
  }

  for (const auto& [oid, holders] : by_oid) {
    // (2) ownership-of-record is real.
    NodeId record = cluster_->directory().OwnerOf(oid);
    if (record != kInvalidNode && cluster_->IsAlive(record)) {
      Node& owner = cluster_->node(record);
      if (!owner.dsm().IsLocallyOwned(oid)) {
        std::ostringstream os;
        os << "oid " << oid << ": directory names node " << record
           << " owner but its token table disagrees";
        out->push_back(os.str());
      }
      Gaddr addr = owner.store().AddrOfOid(oid);
      if (!ResolvesToLocalBytes(owner, addr)) {
        std::ostringstream os;
        os << "oid " << oid << ": owner of record (node " << record
           << ") has no resolvable bytes";
        out->push_back(os.str());
      }
    }

    // (3) cached tokens are accounted in some copy-set.
    if (record != kInvalidNode && cluster_->IsAlive(record)) {
      const std::set<NodeId>& members = copyset_union[oid];
      for (const Holder& h : holders) {
        if (h.snap.owner || h.snap.state == TokenState::kNone || h.node == record) {
          continue;
        }
        if (members.count(h.node) == 0) {
          std::ostringstream os;
          os << "oid " << oid << ": node " << h.node
             << " caches a token missing from every copy-set";
          out->push_back(os.str());
        }
      }
    }
  }
}

void InvariantOracle::CheckSsps(std::vector<std::string>* out) {
  std::vector<NodeId> live = LiveNodes();
  std::set<NodeId> live_set(live.begin(), live.end());
  std::vector<std::vector<std::string>> per_node =
      TaskPool::Global().ParallelMap<std::vector<std::string>>(live.size(), [&](size_t i) {
        std::vector<std::string> violations;
        CheckSspsOfNode(live[i], live_set, &violations);
        return violations;
      });
  for (const auto& violations : per_node) {
    out->insert(out->end(), violations.begin(), violations.end());
  }
}

void InvariantOracle::CheckSspsOfNode(NodeId id, const std::set<NodeId>& live_set,
                                      std::vector<std::string>* out) {
  {
    Node& node = cluster_->node(id);
    for (BunchId bunch : node.gc().ReplicaBunches()) {
      GcEngine::BunchTables tables = node.gc().TablesOf(bunch);

      // (4a) every inter-bunch stub has its scion at the scion node.
      for (const InterStub& stub : tables.inter_stubs) {
        if (live_set.count(stub.scion_node) == 0) {
          std::ostringstream os;
          os << "node " << id << " bunch " << bunch << ": inter-stub " << stub.id
             << " names crashed scion node " << stub.scion_node;
          out->push_back(os.str());
          continue;
        }
        GcEngine::BunchTables target =
            cluster_->node(stub.scion_node).gc().TablesOf(stub.target_bunch);
        bool matched = false;
        for (const InterScion& scion : target.inter_scions) {
          if (scion.stub_id == stub.id && scion.src_node == id) {
            matched = true;
            break;
          }
        }
        if (!matched) {
          std::ostringstream os;
          os << "node " << id << " bunch " << bunch << ": inter-stub " << stub.id
             << " (target bunch " << stub.target_bunch << ") has no scion at node "
             << stub.scion_node;
          out->push_back(os.str());
        }
      }

      // (4b) every intra-bunch stub has its scion at the scion node.
      for (const IntraStub& stub : tables.intra_stubs) {
        if (stub.scion_node == id) {
          continue;  // self-link: the stub is its own justification
        }
        if (live_set.count(stub.scion_node) == 0) {
          std::ostringstream os;
          os << "node " << id << " bunch " << bunch << ": intra-stub for oid " << stub.oid
             << " names crashed scion node " << stub.scion_node;
          out->push_back(os.str());
          continue;
        }
        GcEngine::BunchTables target = cluster_->node(stub.scion_node).gc().TablesOf(stub.bunch);
        bool matched = false;
        for (const IntraScion& scion : target.intra_scions) {
          if (scion.oid == stub.oid && scion.stub_node == id) {
            matched = true;
            break;
          }
        }
        if (!matched) {
          std::ostringstream os;
          os << "node " << id << " bunch " << bunch << ": intra-stub for oid " << stub.oid
             << " has no scion at node " << stub.scion_node;
          out->push_back(os.str());
        }
      }
    }
  }
}

void InvariantOracle::CheckReachability(std::vector<std::string>* out) {
  // (5) every reference slot of an owned, live (non-forwarded) local object
  // either resolves to bytes somewhere, or points at an acknowledged dangling
  // address: one with no owner of record.  A live owner of record that cannot
  // produce bytes is checked per-oid in CheckTokens; here we catch references
  // whose target oid the directory has already *forgotten* while an owner
  // record survives, and targets whose owner record names a crashed node.
  std::vector<NodeId> live = LiveNodes();
  std::vector<std::vector<std::string>> per_node =
      TaskPool::Global().ParallelMap<std::vector<std::string>>(live.size(), [&](size_t i) {
        std::vector<std::string> violations;
        CheckReachabilityOfNode(live[i], &violations);
        return violations;
      });
  for (const auto& violations : per_node) {
    out->insert(out->end(), violations.begin(), violations.end());
  }
}

void InvariantOracle::CheckReachabilityOfNode(NodeId id, std::vector<std::string>* out) {
  SegmentDirectory& directory = cluster_->directory();
  {
    Node& node = cluster_->node(id);
    for (SegmentId seg : node.store().AllSegments()) {
      SegmentImage* image = node.store().Find(seg);
      image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
        if (header.forwarded() || !node.dsm().IsLocallyOwned(header.oid)) {
          return;
        }
        node.store().ForEachRefSlot(addr, header.size_slots, [&](size_t slot, uint64_t value) {
          Gaddr target = static_cast<Gaddr>(value);
          if (target == kNullAddr) {
            return;
          }
          if (ResolvesToLocalBytes(node, target)) {
            return;
          }
          Gaddr resolved = node.dsm().ResolveAddr(target);
          Oid oid = directory.OidAtAddress(resolved);
          if (oid == kNullOid) {
            oid = directory.OidAtAddress(target);
          }
          if (oid == kNullOid) {
            return;  // acknowledged dangling: target identity fully lost
          }
          NodeId owner = directory.OwnerOf(oid);
          if (owner == kInvalidNode) {
            return;  // acknowledged dangling: reclaimed or lost to a crash
          }
          if (!cluster_->IsAlive(owner)) {
            std::ostringstream os;
            os << "node " << id << " obj " << header.oid << " slot " << slot
               << ": target oid " << oid << " owned by crashed node " << owner;
            out->push_back(os.str());
            return;
          }
          Node& owner_node = cluster_->node(owner);
          Gaddr owner_addr = owner_node.store().AddrOfOid(oid);
          if (!ResolvesToLocalBytes(owner_node, owner_addr)) {
            std::ostringstream os;
            os << "node " << id << " obj " << header.oid << " slot " << slot
               << ": target oid " << oid << " reachable but unreclaimable-check failed: owner node "
               << owner << " has no bytes";
            out->push_back(os.str());
          }
        });
      });
    }
  }
}

}  // namespace bmx
