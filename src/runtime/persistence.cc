#include "src/runtime/persistence.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/fault_injector.h"

namespace bmx {

namespace {

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (i * 8)));
  }
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= uint64_t{p[i]} << (i * 8);
  }
  return v;
}

}  // namespace

PersistenceManager::PersistenceManager(Disk* disk, NodeId node)
    : disk_(disk), node_(node), rvm_(disk, "rvm_log_node_" + std::to_string(node), node) {}

std::string PersistenceManager::DataFile(SegmentId seg) const {
  return "seg_" + std::to_string(seg) + ".data";
}

std::string PersistenceManager::MetaFile(SegmentId seg) const {
  return "seg_" + std::to_string(seg) + ".meta";
}

std::string PersistenceManager::ManifestFile() const {
  return "manifest_node_" + std::to_string(node_);
}

std::vector<uint8_t> PersistenceManager::EncodeManifest() const {
  std::vector<uint8_t> out;
  PutU64(&out, manifest_.size());
  for (const auto& [seg, bunch] : manifest_) {
    PutU64(&out, seg);
    PutU64(&out, bunch);
  }
  return out;
}

void PersistenceManager::EnsureManifestLoaded() {
  if (manifest_loaded_) {
    return;
  }
  manifest_loaded_ = true;
  if (!disk_->Exists(ManifestFile())) {
    return;
  }
  const std::vector<uint8_t>& raw = disk_->Contents(ManifestFile());
  if (raw.size() < 8) {
    return;
  }
  uint64_t count = GetU64(raw.data());
  // A manifest rewritten smaller leaves stale trailing bytes in the region
  // file; the leading count is what delimits the live prefix.
  BMX_CHECK_LE(8 + count * 16, raw.size()) << "corrupt manifest for node " << node_;
  for (uint64_t i = 0; i < count; ++i) {
    SegmentId seg = static_cast<SegmentId>(GetU64(raw.data() + 8 + i * 16));
    BunchId bunch = static_cast<BunchId>(GetU64(raw.data() + 8 + i * 16 + 8));
    manifest_[seg] = bunch;
  }
}

std::vector<uint8_t> PersistenceManager::MergeIntoManifest(
    const std::vector<std::pair<SegmentId, BunchId>>& entries) {
  EnsureManifestLoaded();
  for (const auto& [seg, bunch] : entries) {
    manifest_[seg] = bunch;
  }
  return EncodeManifest();
}

const std::map<SegmentId, BunchId>& PersistenceManager::Manifest() {
  EnsureManifestLoaded();
  return manifest_;
}

std::vector<uint8_t> PersistenceManager::EncodeMeta(SegmentImage* image) const {
  std::vector<uint8_t> out;
  PutU64(&out, image->allocated_bytes());
  PutU64(&out, image->bunch());
  for (uint64_t word : image->object_map().words()) {
    PutU64(&out, word);
  }
  for (uint64_t word : image->ref_map().words()) {
    PutU64(&out, word);
  }
  return out;
}

void PersistenceManager::CheckpointSegments(const std::vector<SegmentImage*>& images) {
  // Regions are mapped transiently: images may be dropped between
  // checkpoints, so RVM must not keep pointers into them.
  std::vector<std::vector<uint8_t>> metas;
  metas.reserve(images.size());
  TxId tx = rvm_.BeginTransaction();
  std::vector<std::pair<SegmentId, BunchId>> entries;
  for (SegmentImage* image : images) {
    const std::string data = DataFile(image->id());
    const std::string meta = MetaFile(image->id());
    metas.push_back(EncodeMeta(image));
    rvm_.MapRegionAdopt(data, image->bytes(), kSegmentBytes);
    rvm_.MapRegionAdopt(meta, metas.back().data(), metas.back().size());
    rvm_.SetRange(tx, data, 0, kSegmentBytes);
    rvm_.SetRange(tx, meta, 0, metas.back().size());
    entries.push_back({image->id(), image->bunch()});
  }
  // The manifest rides in the same transaction: a checkpoint either lands
  // with its manifest entries or not at all.
  std::vector<uint8_t> manifest_buf = MergeIntoManifest(entries);
  rvm_.MapRegionAdopt(ManifestFile(), manifest_buf.data(), manifest_buf.size());
  rvm_.SetRange(tx, ManifestFile(), 0, manifest_buf.size());
  FAULT_POINT("persist.checkpoint.pre_commit", node_);
  rvm_.CommitTransaction(tx);
  FAULT_POINT("persist.checkpoint.post_commit", node_);
  rvm_.UnmapRegion(ManifestFile());
  for (SegmentImage* image : images) {
    rvm_.UnmapRegion(DataFile(image->id()));
    rvm_.UnmapRegion(MetaFile(image->id()));
  }
}

void PersistenceManager::CommitObjects(
    const std::vector<std::pair<SegmentImage*, Gaddr>>& objects) {
  // Group by segment; keep meta buffers alive for the mapped regions.
  std::map<SegmentImage*, std::vector<Gaddr>> by_segment;
  for (const auto& [image, addr] : objects) {
    by_segment[image].push_back(addr);
  }
  std::vector<std::vector<uint8_t>> metas;
  metas.reserve(by_segment.size());
  TxId tx = rvm_.BeginTransaction();
  std::vector<std::pair<SegmentId, BunchId>> entries;
  for (auto& [image, addrs] : by_segment) {
    entries.push_back({image->id(), image->bunch()});
    const std::string data = DataFile(image->id());
    const std::string meta = MetaFile(image->id());
    metas.push_back(EncodeMeta(image));
    std::vector<uint8_t>& meta_buf = metas.back();
    rvm_.MapRegionAdopt(data, image->bytes(), kSegmentBytes);
    rvm_.MapRegionAdopt(meta, meta_buf.data(), meta_buf.size());
    // Cursor + bunch header of the meta sidecar always commit (allocations
    // move the cursor).
    rvm_.SetRange(tx, meta, 0, 16);
    size_t map_words = image->object_map().words().size();
    for (Gaddr addr : addrs) {
      const ObjectHeader* header = image->HeaderOf(addr);
      size_t header_off = OffsetInSegment(addr) - kHeaderBytes;
      size_t footprint = ObjectFootprintBytes(header->size_slots);
      rvm_.SetRange(tx, data, header_off, footprint);
      // Object-map and ref-map words covering this object's slots.
      size_t first_slot = header_off / kSlotBytes;
      size_t last_slot = first_slot + kHeaderSlots + header->size_slots - 1;
      size_t first_word = first_slot / 64;
      size_t last_word = last_slot / 64;
      rvm_.SetRange(tx, meta, 16 + first_word * 8, (last_word - first_word + 1) * 8);
      rvm_.SetRange(tx, meta, 16 + (map_words + first_word) * 8,
                    (last_word - first_word + 1) * 8);
    }
  }
  std::vector<uint8_t> manifest_buf = MergeIntoManifest(entries);
  rvm_.MapRegionAdopt(ManifestFile(), manifest_buf.data(), manifest_buf.size());
  rvm_.SetRange(tx, ManifestFile(), 0, manifest_buf.size());
  FAULT_POINT("persist.checkpoint.pre_commit", node_);
  rvm_.CommitTransaction(tx);
  FAULT_POINT("persist.checkpoint.post_commit", node_);
  rvm_.UnmapRegion(ManifestFile());
  for (auto& [image, addrs] : by_segment) {
    rvm_.UnmapRegion(DataFile(image->id()));
    rvm_.UnmapRegion(MetaFile(image->id()));
  }
}

void PersistenceManager::Recover() {
  rvm_.Recover();
  // Replay may have landed manifest entries committed by the previous life;
  // re-read the file on the next Manifest() call.
  manifest_loaded_ = false;
  manifest_.clear();
}

bool PersistenceManager::LoadSegment(SegmentImage* image) {
  const std::string data = DataFile(image->id());
  const std::string meta = MetaFile(image->id());
  if (!disk_->Exists(data) || !disk_->Exists(meta)) {
    return false;
  }
  disk_->Read(data, 0, image->bytes(), kSegmentBytes);

  const std::vector<uint8_t>& raw = disk_->Contents(meta);
  size_t map_words = image->object_map().words().size();
  BMX_CHECK_EQ(raw.size(), 16 + 2 * map_words * 8) << "corrupt segment meta for " << image->id();
  image->set_allocated_bytes(GetU64(raw.data()));
  std::vector<uint64_t> words(map_words);
  for (size_t i = 0; i < map_words; ++i) {
    words[i] = GetU64(raw.data() + 16 + i * 8);
  }
  image->object_map().LoadWords(words);
  for (size_t i = 0; i < map_words; ++i) {
    words[i] = GetU64(raw.data() + 16 + (map_words + i) * 8);
  }
  image->ref_map().LoadWords(words);
  return true;
}

void PersistenceManager::TruncateLog() { rvm_.TruncateLog(); }

}  // namespace bmx
