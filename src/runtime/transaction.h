// Mutator-level transactions — the paper's stated next step (§10: "We are
// also extending the current GC design to incorporate a weakly consistent
// distributed shared memory system with full support for transactions").
//
// A Transaction brackets a set of writes to objects of one bunch at one
// node.  Writes performed through the transaction keep undo records; Abort()
// rolls every touched slot back; Commit() makes the writes durable by
// checkpointing the touched segments through RVM in one recoverable
// transaction.  Entry-consistency tokens are still acquired per object by
// the caller — the transaction layers atomicity and durability on top of the
// existing coherence, exactly the RVM model (no concurrency control, no
// nesting, no distribution).

#ifndef SRC_RUNTIME_TRANSACTION_H_
#define SRC_RUNTIME_TRANSACTION_H_

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/runtime/mutator.h"
#include "src/runtime/node.h"

namespace bmx {

class Transaction {
 public:
  // One open transaction per mutator at a time; `bunch` scopes the commit's
  // durability (which segments get checkpointed).
  Transaction(Mutator* mutator, Node* node, BunchId bunch);
  ~Transaction();  // open transactions abort

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  // Slot writes with undo.  Token discipline is the mutator's as usual.
  void WriteWord(Gaddr obj, size_t slot, uint64_t value);
  void WriteRef(Gaddr obj, size_t slot, Gaddr target);

  // Allocation inside a transaction: on abort the object is simply garbage
  // (the collector reclaims it); on commit it persists like any other.
  Gaddr Alloc(uint32_t size_slots);

  // Durably applies every write: the touched segments are checkpointed in
  // one RVM transaction.
  void Commit();

  // Restores every touched slot to its pre-transaction value.
  void Abort();

  bool open() const { return open_; }
  size_t writes() const { return undo_.size(); }

 private:
  struct UndoRecord {
    Gaddr obj = kNullAddr;  // canonical address at write time
    size_t slot = 0;
    uint64_t old_value = 0;
    bool old_is_ref = false;
  };

  void RecordUndo(Gaddr obj, size_t slot);

  Mutator* mutator_;
  Node* node_;
  BunchId bunch_;
  bool open_ = true;
  std::vector<UndoRecord> undo_;
  std::set<SegmentId> touched_;
  std::set<Gaddr> touched_objects_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_TRANSACTION_H_
