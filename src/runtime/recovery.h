// Crash-consistent recovery (docs/PROTOCOLS.md, "Crash recovery & fault
// model").  A restarted node runs RunRecovery() end to end:
//
//   1. replay the RVM log and reload every segment named by the node's
//      durable checkpoint manifest;
//   2. rebuild the oid→address map and re-adopt objects: the shared segment
//      directory (the BMX-server role, which survives individual node
//      crashes) is the authority on ownership-of-record — recovered bytes of
//      an object the directory assigns elsewhere become a tokenless replica;
//   3. rebuild the inter-bunch SSPs from the recovered heap (the volatile
//      stub tables died with the previous life; the heap is ground truth);
//   4. reconcile with every surviving peer over kRecoveryQuery /
//      kRecoveryReply: re-learn which peers still hold replicas of our
//      objects (copy-sets, entering ownerPtrs), re-create the scions backing
//      peers' surviving stubs, and drop vacuous ownership claims (owned on
//      paper, bytes nowhere);
//   5. signal completion so peers lift the conservative scion-retention mode
//      they entered on the first query.
//
// Tokens are volatile and die with a node; ownership-of-record does not.
// Incarnation epochs (stamped by the network at Send) make every wire copy
// emitted by the previous life inert, so recovery never races its own ghosts.

#ifndef SRC_RUNTIME_RECOVERY_H_
#define SRC_RUNTIME_RECOVERY_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/dsm_node.h"
#include "src/gc/gc_engine.h"
#include "src/mem/directory.h"
#include "src/mem/object.h"
#include "src/mem/replica_store.h"
#include "src/net/message.h"
#include "src/net/network.h"
#include "src/runtime/persistence.h"

namespace bmx {

enum class RecoveryPhase : uint8_t {
  kStart,     // "I am recovering; these are my bunches and ownership claims"
  kComplete,  // "reconciliation done; lift conservative scion retention"
};

// Restarted node → every surviving peer.
struct RecoveryQueryPayload : public Payload {
  RecoveryPhase phase = RecoveryPhase::kStart;
  std::vector<BunchId> bunches;   // bunches reloaded from the checkpoint
  std::vector<Oid> claimed_oids;  // oids re-adopted as owner (sorted)

  MsgKind kind() const override { return MsgKind::kRecoveryQuery; }
  MsgCategory category() const override { return MsgCategory::kDsm; }
  size_t WireSize() const override {
    return 8 + bunches.size() * 4 + claimed_oids.size() * 8;
  }
};

// One object of the recovering node's that the replying peer still holds a
// replica of.  Carries the peer's bytes so an owner whose checkpoint predates
// the object (or whose copy is older) can be resupplied.
struct RecoveredReplicaEntry {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
  Gaddr addr = kNullAddr;  // peer's current address for the object
  bool has_token = false;  // peer holds a live read/write token
  bool has_bytes = false;
  ObjectHeader header;
  std::vector<uint64_t> slots;
  std::vector<uint8_t> slot_is_ref;
};

// Peer-held inter-bunch stub whose scion lived on the recovering node.
struct InterScionRestore {
  uint64_t stub_id = 0;
  BunchId src_bunch = kInvalidBunch;
  Gaddr target_addr = kNullAddr;
  BunchId target_bunch = kInvalidBunch;
};

// Intra-bunch SSP half to re-adopt (oid + bunch; the peer is the message src).
struct IntraRestore {
  Oid oid = kNullOid;
  BunchId bunch = kInvalidBunch;
};

// Surviving peer → restarted node.
struct RecoveryReplyPayload : public Payload {
  // Claimed oids the peer itself holds the owner token for: the recovering
  // node's checkpointed claim is stale and must demote to a replica.
  std::vector<Oid> contested;
  std::vector<RecoveredReplicaEntry> replicas;
  // Peer stubs whose scions died with the previous life → recreate scions.
  std::vector<InterScionRestore> inter_scions;
  // Peer intra-stubs naming us as scion holder → recreate intra scions.
  std::vector<IntraRestore> intra_scions;
  // Peer intra-scions naming us as stub holder → recreate intra stubs.
  std::vector<IntraRestore> intra_stubs;

  MsgKind kind() const override { return MsgKind::kRecoveryReply; }
  MsgCategory category() const override { return MsgCategory::kDsm; }
  size_t WireSize() const override {
    size_t bytes = 8 + contested.size() * 8 + inter_scions.size() * 24 +
                   (intra_scions.size() + intra_stubs.size()) * 12;
    for (const RecoveredReplicaEntry& e : replicas) {
      bytes += 24 + (e.has_bytes ? kHeaderBytes + e.slots.size() * kSlotBytes + e.slot_is_ref.size()
                                 : 0);
    }
    return bytes;
  }
};

class RecoveryManager : public MessageHandler {
 public:
  RecoveryManager(NodeId id, Network* network, SegmentDirectory* directory, ReplicaStore* store,
                  DsmNode* dsm, GcEngine* gc, PersistenceManager* persistence);

  // End-to-end recovery of a freshly restarted node (see file comment).
  // Pumps the network internally; when it returns, the node is fully
  // reconciled and peers have left conservative retention mode.
  void RunRecovery();

  // Routed by runtime::Node for kRecoveryQuery / kRecoveryReply.
  void HandleMessage(const Message& msg) override;

  bool InProgress() const { return in_progress_; }
  const std::vector<BunchId>& RecoveredBunches() const { return recovered_bunches_; }

 private:
  void HandleQuery(const Message& msg);
  void HandleReply(const Message& msg);
  // Surviving peers worth reconciling with: every node the directory shows
  // mapping any bunch (crashed nodes are unmapped by the cluster), minus us.
  std::set<NodeId> PeerSet() const;

  NodeId id_;
  Network* network_;
  SegmentDirectory* directory_;
  ReplicaStore* store_;
  DsmNode* dsm_;
  GcEngine* gc_;
  PersistenceManager* persistence_;
  bool in_progress_ = false;
  std::vector<BunchId> recovered_bunches_;
  std::vector<Oid> claimed_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_RECOVERY_H_
