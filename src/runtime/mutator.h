// The application-facing API — "the user program, called the mutator in the
// GC literature, operates on a single, shared, persistent, possibly large
// graph of objects allocated from a number of bunches" (paper §2.1).
//
// Access discipline is entry consistency (§2.2): bracket reads of an object
// with AcquireRead/Release and writes with AcquireWrite/Release.  Every
// reference store goes through WriteRef — the write-barrier macro of the
// prototype (§8) — and pointer equality goes through SameObject, the
// pointer-comparison macro that accounts for forwarding pointers.
//
// A Mutator's roots are its simulated stack: the collector treats them as
// strong roots and updates them in place when objects move.

#ifndef SRC_RUNTIME_MUTATOR_H_
#define SRC_RUNTIME_MUTATOR_H_

#include <vector>

#include "src/common/types.h"
#include "src/gc/gc_engine.h"
#include "src/runtime/history.h"
#include "src/runtime/node.h"

namespace bmx {

class Mutator : public RootProvider {
 public:
  explicit Mutator(Node* node);
  ~Mutator() override;

  Mutator(const Mutator&) = delete;
  Mutator& operator=(const Mutator&) = delete;

  NodeId node_id() const { return node_->id(); }

  // --- Allocation ---
  Gaddr Alloc(BunchId bunch, uint32_t size_slots);

  // --- Entry-consistency critical sections ---
  bool AcquireRead(Gaddr addr);
  bool AcquireWrite(Gaddr addr);
  void Release(Gaddr addr);

  // --- Slot access (token-checked) ---
  void WriteRef(Gaddr obj, size_t slot, Gaddr target);
  void WriteWord(Gaddr obj, size_t slot, uint64_t value);
  Gaddr ReadRef(Gaddr obj, size_t slot) const;
  uint64_t ReadWord(Gaddr obj, size_t slot) const;

  bool SameObject(Gaddr a, Gaddr b) const { return node_->gc().SameObject(a, b); }

  // --- Roots (the simulated stack) ---
  size_t AddRoot(Gaddr addr);
  void SetRoot(size_t index, Gaddr addr);
  Gaddr Root(size_t index) const;
  void ClearRoot(size_t index) { SetRoot(index, kNullAddr); }
  size_t RootCount() const { return roots_.size(); }

  std::vector<Gaddr*> RootSlots() override;

  // Entry-consistency discipline checks (write token for writes, any token
  // for reads).  On by default; benchmarks may disable for raw-barrier
  // microbenchmarks.
  void set_strict(bool strict) { strict_ = strict; }

 private:
  void CheckWritable(Gaddr obj) const;
  void CheckReadable(Gaddr obj) const;
  // Consistency-checker hook: records one client-observable event when the
  // cluster has history recording enabled; a single branch otherwise (and
  // nothing at all under BMX_DISABLE_HISTORY).
  void RecordHistory(HistoryOp op, Gaddr obj, uint32_t slot, uint64_t value,
                     bool is_ref) const;

  Node* node_;
  std::vector<Gaddr> roots_;
  bool strict_ = true;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_MUTATOR_H_
