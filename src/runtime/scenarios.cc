#include "src/runtime/scenarios.h"

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/mutator.h"

namespace bmx {

namespace {

std::unique_ptr<Cluster> ThreeNodes(uint64_t root_seed) {
  return std::make_unique<Cluster>(ClusterOptions{.num_nodes = 3, .seed = root_seed});
}

Oid OidAt(Node& node, Gaddr addr) {
  return node.store().HeaderOf(node.dsm().ResolveAddr(addr))->oid;
}

// Figure 1: bunch B1 on N1/N2, bunch B2 on N3 only; the inter-bunch reference
// O3→O5 is created at N2, then O3's write token moves to N1, building the
// intra-bunch SSP.  Collections at N2 and N3 must reclaim nothing.
void RunFig1(Cluster& c) {
  Mutator n1(&c.node(0));
  Mutator n2(&c.node(1));
  Mutator n3(&c.node(2));
  BunchId b1 = c.CreateBunch(1);
  BunchId b2 = c.CreateBunch(2);
  Gaddr o5 = n3.Alloc(b2, 1);
  n3.AddRoot(o5);
  Gaddr o3 = n2.Alloc(b1, 2);
  n2.WriteRef(o3, 0, o5);
  c.Pump();
  if (n1.AcquireWrite(o3)) {
    n1.Release(o3);
    n1.AddRoot(o3);
  }
  c.Pump();
  c.node(1).gc().CollectBunch(b1);
  c.Pump();
  c.node(2).gc().CollectBunch(b2);
  c.Pump();
}

// Figure 2: one object's write token migrating around three nodes, each
// incarnation writing through it.
void RunFig2(Cluster& c) {
  Mutator m0(&c.node(0));
  Mutator m1(&c.node(1));
  Mutator m2(&c.node(2));
  BunchId b = c.CreateBunch(0);
  Gaddr obj = m0.Alloc(b, 2);
  m0.AddRoot(obj);
  c.Pump();
  Mutator* ring[3] = {&m0, &m1, &m2};
  for (uint64_t round = 1; round <= 3; ++round) {
    Mutator& m = *ring[round % 3];
    if (m.AcquireWrite(obj)) {
      m.WriteWord(obj, 1, round);
      m.Release(obj);
    }
    c.Pump();
  }
}

// Figure 3: two readers replicate an object, then the owner re-acquires the
// write token, fanning out invalidations whose acks race back.
void RunFig3(Cluster& c) {
  Mutator m0(&c.node(0));
  Mutator m1(&c.node(1));
  Mutator m2(&c.node(2));
  BunchId b = c.CreateBunch(0);
  Gaddr a = m0.Alloc(b, 1);
  m0.AddRoot(a);
  c.Pump();
  if (m1.AcquireRead(a)) {
    m1.Release(a);
  }
  if (m2.AcquireRead(a)) {
    m2.Release(a);
  }
  c.Pump();
  if (m0.AcquireWrite(a)) {
    m0.WriteWord(a, 0, 7);
    m0.Release(a);
  }
  c.Pump();
}

// Figure 4: allocate a two-object chain, replicate the head, unlink the tail
// and collect — reclamation must not race the replica's invalidation.
void RunFig4(Cluster& c) {
  Mutator m0(&c.node(0));
  Mutator m1(&c.node(1));
  BunchId b = c.CreateBunch(0);
  Gaddr head = m0.Alloc(b, 2);
  m0.AddRoot(head);
  Gaddr tail = m0.Alloc(b, 2);
  m0.WriteRef(head, 0, tail);
  c.Pump();
  if (m1.AcquireRead(head)) {
    m1.Release(head);
  }
  c.Pump();
  if (m0.AcquireWrite(head)) {
    m0.WriteRef(head, 0, kNullAddr);
    m0.Release(head);
  }
  c.node(0).gc().CollectBunch(b);
  c.Pump();
}

// --- N-node generalizations of the four shapes (ScaledScenarios) ---

// Fig. 1 at N nodes: every node owns one bunch with one object; the chain
// o_0 → o_1 → ... → o_{N-1} crosses a bunch boundary at every link, so each
// edge needs a scion/SSP to survive the per-bunch collections.  The head's
// write token then migrates (node 1 acquires and roots it) before every bunch
// is collected in turn — nothing may be reclaimed.
void RunFig1Scaled(Cluster& c) {
  size_t n = c.size();
  std::vector<std::unique_ptr<Mutator>> muts;
  std::vector<BunchId> bunches;
  std::vector<Gaddr> objs;
  for (NodeId id = 0; id < n; ++id) {
    muts.push_back(std::make_unique<Mutator>(&c.node(id)));
    bunches.push_back(c.CreateBunch(id));
    objs.push_back(muts.back()->Alloc(bunches.back(), 2));
  }
  muts[n - 1]->AddRoot(objs[n - 1]);
  for (size_t i = 0; i + 1 < n; ++i) {
    muts[i]->WriteRef(objs[i], 0, objs[i + 1]);
  }
  c.Pump();
  if (muts[1 % n]->AcquireWrite(objs[0])) {
    muts[1 % n]->Release(objs[0]);
    muts[1 % n]->AddRoot(objs[0]);
  }
  c.Pump();
  for (NodeId id = 0; id < n; ++id) {
    c.node(id).gc().CollectBunch(bunches[id]);
    c.Pump();
  }
}

// Fig. 2 at N nodes: one object's write token walks the whole ring once,
// every incarnation writing a round stamp through it.
void RunFig2Scaled(Cluster& c) {
  size_t n = c.size();
  std::vector<std::unique_ptr<Mutator>> muts;
  for (NodeId id = 0; id < n; ++id) {
    muts.push_back(std::make_unique<Mutator>(&c.node(id)));
  }
  BunchId b = c.CreateBunch(0);
  Gaddr obj = muts[0]->Alloc(b, 2);
  muts[0]->AddRoot(obj);
  c.Pump();
  for (uint64_t round = 1; round <= n; ++round) {
    Mutator& m = *muts[round % n];
    if (m.AcquireWrite(obj)) {
      m.WriteWord(obj, 1, round);
      m.Release(obj);
    }
    c.Pump();
  }
}

// Fig. 3 at N nodes: N-1 readers replicate the object, then the owner's write
// upgrade fans invalidations out to all of them and the acks race back.
void RunFig3Scaled(Cluster& c) {
  size_t n = c.size();
  std::vector<std::unique_ptr<Mutator>> muts;
  for (NodeId id = 0; id < n; ++id) {
    muts.push_back(std::make_unique<Mutator>(&c.node(id)));
  }
  BunchId b = c.CreateBunch(0);
  Gaddr a = muts[0]->Alloc(b, 1);
  muts[0]->AddRoot(a);
  c.Pump();
  for (NodeId id = 1; id < n; ++id) {
    if (muts[id]->AcquireRead(a)) {
      muts[id]->Release(a);
    }
  }
  c.Pump();
  if (muts[0]->AcquireWrite(a)) {
    muts[0]->WriteWord(a, 0, 7);
    muts[0]->Release(a);
  }
  c.Pump();
}

// Fig. 4 at N nodes: the head of a two-object chain is replicated on every
// non-owner before the owner unlinks the tail and collects — reclamation must
// not race any of the N-1 replica invalidations.
void RunFig4Scaled(Cluster& c) {
  size_t n = c.size();
  std::vector<std::unique_ptr<Mutator>> muts;
  for (NodeId id = 0; id < n; ++id) {
    muts.push_back(std::make_unique<Mutator>(&c.node(id)));
  }
  BunchId b = c.CreateBunch(0);
  Gaddr head = muts[0]->Alloc(b, 2);
  muts[0]->AddRoot(head);
  Gaddr tail = muts[0]->Alloc(b, 2);
  muts[0]->WriteRef(head, 0, tail);
  c.Pump();
  for (NodeId id = 1; id < n; ++id) {
    if (muts[id]->AcquireRead(head)) {
      muts[id]->Release(head);
    }
  }
  c.Pump();
  if (muts[0]->AcquireWrite(head)) {
    muts[0]->WriteRef(head, 0, kNullAddr);
    muts[0]->Release(head);
  }
  c.node(0).gc().CollectBunch(b);
  c.Pump();
}

}  // namespace

std::vector<ExplorerScenario> StandardScenarios() {
  return {
      {"fig1-ssp-chain", ThreeNodes, RunFig1},
      {"fig2-token-migration", ThreeNodes, RunFig2},
      {"fig3-invalidate-fanout", ThreeNodes, RunFig3},
      {"fig4-reclaim-churn", ThreeNodes, RunFig4},
  };
}

std::vector<ExplorerScenario> ScaledScenarios(size_t num_nodes, const BatchPolicy& batch) {
  auto make = [num_nodes, batch](uint64_t root_seed) {
    return std::make_unique<Cluster>(ClusterOptions{
        .num_nodes = num_nodes, .seed = root_seed, .batch = batch});
  };
  std::string suffix = "@" + std::to_string(num_nodes);
  return {
      {"fig1-ssp-chain" + suffix, make, RunFig1Scaled},
      {"fig2-token-migration" + suffix, make, RunFig2Scaled},
      {"fig3-invalidate-fanout" + suffix, make, RunFig3Scaled},
      {"fig4-reclaim-churn" + suffix, make, RunFig4Scaled},
  };
}

ExplorerScenario CanaryReorderScenario() {
  ExplorerScenario scenario;
  scenario.name = "canary-invalidate-reorder";
  scenario.make = ThreeNodes;
  scenario.run = [](Cluster& c) {
    Mutator m0(&c.node(0));
    Mutator m1(&c.node(1));
    Mutator m2(&c.node(2));
    BunchId b = c.CreateBunch(0);
    // The victim: owned by node 1 the whole run.  The canary corrupts node
    // 0's token table into claiming it, so there must be a legitimate owner
    // for the uniqueness check to collide with.
    Gaddr victim = m1.Alloc(b, 1);
    m1.AddRoot(victim);
    // The contended object: owned by node 0, replicated to nodes 1 and 2.
    Gaddr a = m0.Alloc(b, 1);
    m0.AddRoot(a);
    c.Pump();
    if (m1.AcquireRead(a)) {
      m1.Release(a);
    }
    if (m2.AcquireRead(a)) {
      m2.Release(a);
    }
    c.Pump();
    c.node(0).dsm().PlantCanaryReorderBugForTesting(OidAt(c.node(1), victim));
    // Re-acquiring the write token invalidates both replicas; the two acks
    // race back on different channels.  FIFO delivers them src-ascending
    // (channel (1,0) precedes (2,0)); any schedule that inverts them trips
    // the canary.
    if (m0.AcquireWrite(a)) {
      m0.WriteWord(a, 0, 7);
      m0.Release(a);
    }
    c.Pump();
  };
  return scenario;
}

ExplorerScenario StaleReadCanaryScenario() {
  ExplorerScenario scenario;
  scenario.name = "canary-stale-read";
  scenario.make = ThreeNodes;
  scenario.run = [](Cluster& c) {
    Mutator m0(&c.node(0));
    Mutator m1(&c.node(1));
    Mutator m2(&c.node(2));
    BunchId b = c.CreateBunch(0);
    Gaddr a = m0.Alloc(b, 1);
    m0.AddRoot(a);
    m0.WriteWord(a, 0, 1);
    c.Pump();
    // Both readers replicate the object and read the initial value.
    if (m1.AcquireRead(a)) {
      (void)m1.ReadWord(a, 0);
      m1.Release(a);
    }
    if (m2.AcquireRead(a)) {
      (void)m2.ReadWord(a, 0);
      m2.Release(a);
    }
    c.Pump();
    // The bug: the owner's next invalidation fan-out skips node 1, so node
    // 1's replica and read token survive the write upgrade.
    c.node(0).dsm().PlantStaleReadBugForTesting(1);
    if (m0.AcquireWrite(a)) {
      m0.WriteWord(a, 0, 7);
      m0.Release(a);
    }
    c.Pump();
    // Node 1 re-enters on the cached-token fast path: no messages, no causal
    // edge from the writer, stale bytes.  The checker flags the two critical
    // sections as concurrent-with-a-writer.
    if (m1.AcquireRead(a)) {
      (void)m1.ReadWord(a, 0);
      m1.Release(a);
    }
    c.Pump();
  };
  return scenario;
}

ExplorerScenario ZombieGrantCanaryScenario() {
  ExplorerScenario scenario;
  scenario.name = "canary-zombie-grant";
  scenario.make = ThreeNodes;
  scenario.run = [](Cluster& c) {
    Mutator m0(&c.node(0));
    Mutator m1(&c.node(1));
    BunchId b = c.CreateBunch(0);
    Gaddr a = m0.Alloc(b, 1);
    m0.AddRoot(a);
    c.Pump();
    // The gray failure: node 1 looks transport-healthy to node 0 (acks flow,
    // retransmission never fires) but every payload 0→1 is swallowed before
    // dispatch.  Installed inside the closure so recorded traces replay under
    // the same profile.
    LinkProfile zombie;
    zombie.zombie = true;
    c.network().InstallLinkProfile(0, 1, zombie);
    // The acquire reaches node 0 and is granted — the grant dies on the
    // zombie link, so the requester waits forever on a promise nothing can
    // discharge.  The acquire returns false (the network quiesced without
    // completion); its obligation stays open for the oracle.
    if (m1.AcquireRead(a)) {
      m1.Release(a);
    }
    c.Pump();
  };
  return scenario;
}

ExplorerScenario HistoryWorkloadScenario(const HistoryWorkloadOptions& options) {
  ExplorerScenario scenario;
  scenario.name = "history-workload";
  HistoryWorkloadOptions opts = options;
  scenario.make = [opts](uint64_t root_seed) {
    return std::make_unique<Cluster>(ClusterOptions{
        .num_nodes = static_cast<uint32_t>(opts.num_nodes), .seed = root_seed});
  };
  scenario.run = [opts](Cluster& c) {
    Rng rng(DeriveStreamSeed(c.seed(), RngStream::kWorkload));
    std::vector<std::unique_ptr<Mutator>> mutators;
    std::vector<BunchId> bunches;
    for (NodeId n = 0; n < opts.num_nodes; ++n) {
      mutators.push_back(std::make_unique<Mutator>(&c.node(n)));
      bunches.push_back(c.CreateBunch(n));
    }
    // Objects round-robin across creators; 3 slots each: [0] a creator-
    // initialized word (legally unbracketed — creators allocate with the
    // write token), [1] the contended word, [2] a reference slot.
    std::vector<Gaddr> objs(opts.objects);
    for (size_t j = 0; j < opts.objects; ++j) {
      NodeId creator = static_cast<NodeId>(j % opts.num_nodes);
      objs[j] = mutators[creator]->Alloc(bunches[creator], 3);
      mutators[creator]->AddRoot(objs[j]);
      mutators[creator]->WriteWord(objs[j], 0, j + 1);
    }
    for (size_t j = 0; j + 1 < opts.objects; ++j) {
      NodeId creator = static_cast<NodeId>(j % opts.num_nodes);
      mutators[creator]->WriteRef(objs[j], 2, objs[j + 1]);
    }
    c.Pump();
    for (size_t i = 0; i < opts.ops; ++i) {
      if (rng.Chance(opts.gc_chance)) {
        NodeId n = static_cast<NodeId>(rng.Below(opts.num_nodes));
        c.node(n).gc().CollectBunch(bunches[n]);
        c.Pump();
        continue;
      }
      NodeId n = static_cast<NodeId>(rng.Below(opts.num_nodes));
      size_t j = rng.Below(opts.objects);
      bool write_mode = rng.Chance(opts.write_fraction);
      // The whole access plan is drawn before touching the cluster, so the
      // rng stream advances identically even when the acquire is skipped or
      // denied under an adversarial schedule.
      struct PlannedAccess {
        bool is_ref;
        uint32_t slot;
        uint64_t arg;
      };
      std::vector<PlannedAccess> plan;
      do {
        PlannedAccess a;
        if (write_mode) {
          a.is_ref = rng.Chance(0.3);
          a.slot = a.is_ref ? 2u : 1u;
          a.arg = a.is_ref ? rng.Below(opts.objects) : rng.Below(1000);
        } else {
          a.is_ref = rng.Chance(0.5);
          a.slot = a.is_ref ? 2u : static_cast<uint32_t>(rng.Below(2));
          a.arg = 0;
        }
        plan.push_back(a);
      } while (rng.Chance(opts.extra_op_chance));
      if (c.node(n).dsm().AcquireInFlight()) {
        continue;  // an earlier denied acquire is still parked on this node
      }
      Mutator& m = *mutators[n];
      bool ok = write_mode ? m.AcquireWrite(objs[j]) : m.AcquireRead(objs[j]);
      if (!ok) {
        continue;
      }
      for (const PlannedAccess& a : plan) {
        if (write_mode) {
          if (a.is_ref) {
            m.WriteRef(objs[j], a.slot, objs[a.arg]);
          } else {
            m.WriteWord(objs[j], a.slot, a.arg);
          }
        } else {
          if (a.is_ref) {
            (void)m.ReadRef(objs[j], a.slot);
          } else {
            (void)m.ReadWord(objs[j], a.slot);
          }
        }
      }
      m.Release(objs[j]);
    }
    c.Pump();
  };
  return scenario;
}

}  // namespace bmx
