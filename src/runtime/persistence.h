// Persistence glue: segments ↔ stable-storage files through RVM.
//
// The prototype (paper §8) associates each segment with a Unix file and uses
// RVM so that "changes to mapped segments are atomically transferred to
// disk".  A checkpoint writes a segment's bytes *and* its object/reference
// maps and allocation cursor in one recoverable transaction; recovery replays
// the committed log and reloads the images.

#ifndef SRC_RUNTIME_PERSISTENCE_H_
#define SRC_RUNTIME_PERSISTENCE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/mem/segment.h"
#include "src/rvm/rvm.h"

namespace bmx {

class PersistenceManager {
 public:
  PersistenceManager(Disk* disk, NodeId node);

  // Atomically persists the current contents of the given segment images
  // (bytes + maps + cursor) in one RVM transaction.
  void CheckpointSegments(const std::vector<SegmentImage*>& images);

  // Object-granular durable commit: persists only the named objects' bytes
  // and the object/reference-map words covering them, in one RVM
  // transaction.  Used by mutator transactions — a whole-segment checkpoint
  // from a node whose image is partially stale (entry consistency!) would
  // clobber other objects' committed state.
  void CommitObjects(const std::vector<std::pair<SegmentImage*, Gaddr>>& objects);

  // Replays the committed log into the data files.  Call after a crash,
  // before loading segments.
  void Recover();

  // Loads a segment image from its data file; returns false if the segment
  // was never checkpointed.
  bool LoadSegment(SegmentImage* image);

  // Applies the log to the data files and resets it (periodic maintenance).
  void TruncateLog();

  // Durable record of every (segment, bunch) this node has checkpointed,
  // updated atomically inside each checkpoint/commit transaction.  Segment
  // data/meta files live in a shared namespace (any replica of a bunch may
  // checkpoint a segment), so this manifest is what tells a recovering node
  // *which* images belonged to it.  Only meaningful after Recover() on a
  // restarted node.
  const std::map<SegmentId, BunchId>& Manifest();

  Rvm& rvm() { return rvm_; }

 private:
  std::string DataFile(SegmentId seg) const;
  std::string MetaFile(SegmentId seg) const;
  std::string ManifestFile() const;
  // Serialized sidecar: cursor + object-map words + ref-map words.
  std::vector<uint8_t> EncodeMeta(SegmentImage* image) const;
  // Parses the on-disk manifest into manifest_ (once per incarnation).
  void EnsureManifestLoaded();
  std::vector<uint8_t> EncodeManifest() const;
  // Merges fresh entries and returns the serialized image to be written in
  // the caller's open transaction (the buffer must stay alive until commit).
  std::vector<uint8_t> MergeIntoManifest(const std::vector<std::pair<SegmentId, BunchId>>& entries);

  Disk* disk_;
  NodeId node_;
  Rvm rvm_;
  bool manifest_loaded_ = false;
  std::map<SegmentId, BunchId> manifest_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_PERSISTENCE_H_
