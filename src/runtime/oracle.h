// Cluster-wide invariant oracle for the crash-point sweep (and any test that
// wants a whole-system safety audit at quiescence).  Checks the §5-derived
// invariants across every *live* node:
//
//   1. token uniqueness — at most one owner per oid; a write token excludes
//      every other token for that oid;
//   2. ownership-of-record is real — if the directory names a live owner, that
//      node's token table agrees and its canonical copy has bytes;
//   3. cached tokens are accounted — a live non-owner token appears in some
//      live node's copy-set for the oid;
//   4. no dangling stub — every inter/intra-bunch stub has its matching scion
//      at the scion node (orphan scions are fine: conservative slack retired
//      by the next reachability table, never a safety problem);
//   5. reachable-implies-not-reclaimed — a reference slot of an owned live
//      object either resolves to bytes, or its target is an acknowledged
//      dangling address (no owner of record anywhere).  What must never
//      happen is a live owner of record without resolvable bytes.
//
// The oracle is read-only and runs at network quiescence (Pump first).  It
// returns human-readable violation strings; an empty vector means the cluster
// state is consistent.

#ifndef SRC_RUNTIME_ORACLE_H_
#define SRC_RUNTIME_ORACLE_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/runtime/cluster.h"

namespace bmx {

class InvariantOracle {
 public:
  explicit InvariantOracle(Cluster* cluster) : cluster_(cluster) {}

  // Runs every invariant family; returns all violations found (empty = ok).
  std::vector<std::string> Check();

  // The subset of invariants that must hold at EVERY instant, not just at
  // quiescence: token uniqueness (1).  Families 2–5 have legal transient
  // windows while protocol messages are in flight (the granter clears its
  // owner bit before the grant reaches the requester's directory; a stub
  // exists before its scion message arrives), so the schedule explorer checks
  // this stable core after every delivery and the full set only at
  // quiescence.
  std::vector<std::string> CheckStable();

 private:
  void CheckTokens(std::vector<std::string>* out);
  void CheckTokenUniqueness(std::vector<std::string>* out);
  void CheckSsps(std::vector<std::string>* out);
  void CheckReachability(std::vector<std::string>* out);
  // Single-node shards of families (4) and (5); pure reads, safe to run one
  // per pool thread.  Violations for the node append to `out` in the same
  // order the serial whole-cluster walk would emit them.
  void CheckSspsOfNode(NodeId id, const std::set<NodeId>& live_set,
                       std::vector<std::string>* out);
  void CheckReachabilityOfNode(NodeId id, std::vector<std::string>* out);

  std::vector<NodeId> LiveNodes() const;

  Cluster* cluster_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_ORACLE_H_
