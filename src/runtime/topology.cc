#include "src/runtime/topology.h"

#include <algorithm>
#include <set>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace bmx {

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFull:
      return "full";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kRandomRegular:
      return "random-regular";
  }
  return "unknown";
}

bool ParseTopologyKind(const std::string& name, TopologyKind* out) {
  if (name == "full") {
    *out = TopologyKind::kFull;
  } else if (name == "ring") {
    *out = TopologyKind::kRing;
  } else if (name == "star") {
    *out = TopologyKind::kStar;
  } else if (name == "random-regular") {
    *out = TopologyKind::kRandomRegular;
  } else {
    return false;
  }
  return true;
}

namespace {

void AddEdge(std::vector<std::vector<NodeId>>* adj, NodeId a, NodeId b) {
  (*adj)[a].push_back(b);
  (*adj)[b].push_back(a);
}

}  // namespace

Topology Topology::Make(TopologyKind kind, size_t num_nodes, size_t degree, uint64_t seed) {
  BMX_CHECK_GT(num_nodes, 0u);
  Topology t;
  t.kind = kind;
  t.num_nodes = num_nodes;
  t.adjacency.assign(num_nodes, {});
  size_t n = num_nodes;
  if (n == 1) {
    return t;  // a single node shares with nobody; NeighborOf degenerates
  }
  switch (kind) {
    case TopologyKind::kFull:
      for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = a + 1; b < n; ++b) {
          AddEdge(&t.adjacency, a, b);
        }
      }
      break;
    case TopologyKind::kRing:
      for (NodeId a = 0; a + 1 < n; ++a) {
        AddEdge(&t.adjacency, a, static_cast<NodeId>(a + 1));
      }
      // The wrap-around edge (n-1, 0); at n == 2 the chain already is it.
      if (n > 2) {
        AddEdge(&t.adjacency, static_cast<NodeId>(n - 1), 0);
      }
      break;
    case TopologyKind::kStar:
      for (NodeId spoke = 1; spoke < n; ++spoke) {
        AddEdge(&t.adjacency, 0, spoke);
      }
      break;
    case TopologyKind::kRandomRegular: {
      // Random circulant graph: node i is adjacent to i ± o (mod n) for every
      // offset o in a seed-drawn set.  Offset 1 is always included, which
      // makes the graph connected by construction; the remaining offsets are
      // drawn without replacement from [2, n/2].  Every node gets the same
      // degree (2 per offset, 1 for the n/2 offset on even n) — a k-regular
      // expander-ish graph that is cheap to generate deterministically.
      size_t want = std::clamp<size_t>(degree, 2, n - 1);
      std::set<size_t> offsets = {1};
      size_t max_offset = n / 2;
      Rng rng(DeriveStreamSeed(seed, RngStream::kTopology));
      auto degree_of = [&](const std::set<size_t>& offs) {
        size_t d = 0;
        for (size_t o : offs) {
          d += (2 * o == n) ? 1 : 2;
        }
        return d;
      };
      while (degree_of(offsets) < want && offsets.size() < max_offset) {
        offsets.insert(2 + rng.Below(max_offset - 1));
      }
      for (size_t o : offsets) {
        for (NodeId a = 0; a < n; ++a) {
          // Unconditional: wrap-around edges have b < a, and the n/2 offset
          // adds each edge from both ends — the sort+unique below dedupes.
          AddEdge(&t.adjacency, a, static_cast<NodeId>((a + o) % n));
        }
      }
      break;
    }
  }
  for (auto& neighbors : t.adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()), neighbors.end());
  }
  return t;
}

const std::vector<NodeId>& Topology::NeighborsOf(NodeId node) const {
  BMX_CHECK_LT(node, adjacency.size());
  return adjacency[node];
}

NodeId Topology::NeighborOf(NodeId node, uint64_t salt) const {
  const std::vector<NodeId>& neighbors = NeighborsOf(node);
  if (neighbors.empty()) {
    return node;
  }
  return neighbors[salt % neighbors.size()];
}

size_t Topology::EdgeCount() const {
  size_t twice = 0;
  for (const auto& neighbors : adjacency) {
    twice += neighbors.size();
  }
  return twice / 2;
}

bool Topology::Connected() const {
  if (num_nodes == 0) {
    return false;
  }
  std::vector<bool> seen(num_nodes, false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    NodeId at = stack.back();
    stack.pop_back();
    for (NodeId next : adjacency[at]) {
      if (!seen[next]) {
        seen[next] = true;
        reached++;
        stack.push_back(next);
      }
    }
  }
  return reached == num_nodes;
}

std::string Topology::Describe() const {
  return std::string(TopologyKindName(kind)) + "(n=" + std::to_string(num_nodes) +
         ", edges=" + std::to_string(EdgeCount()) + ")";
}

}  // namespace bmx
