#include "src/runtime/transaction.h"

#include "src/common/check.h"

namespace bmx {

Transaction::Transaction(Mutator* mutator, Node* node, BunchId bunch)
    : mutator_(mutator), node_(node), bunch_(bunch) {
  BMX_CHECK(mutator_ != nullptr && node_ != nullptr);
}

Transaction::~Transaction() {
  if (open_) {
    Abort();
  }
}

void Transaction::RecordUndo(Gaddr obj, size_t slot) {
  Gaddr canonical = node_->dsm().LocalCopyOf(obj);
  UndoRecord record;
  record.obj = canonical;
  record.slot = slot;
  record.old_value = node_->store().ReadSlot(canonical, slot);
  record.old_is_ref = node_->store().SlotIsRef(canonical, slot);
  undo_.push_back(record);
  touched_.insert(SegmentOf(canonical));
  touched_objects_.insert(canonical);
}

void Transaction::WriteWord(Gaddr obj, size_t slot, uint64_t value) {
  BMX_CHECK(open_) << "write on a closed transaction";
  RecordUndo(obj, slot);
  mutator_->WriteWord(obj, slot, value);
}

void Transaction::WriteRef(Gaddr obj, size_t slot, Gaddr target) {
  BMX_CHECK(open_) << "write on a closed transaction";
  RecordUndo(obj, slot);
  mutator_->WriteRef(obj, slot, target);
}

Gaddr Transaction::Alloc(uint32_t size_slots) {
  BMX_CHECK(open_) << "alloc on a closed transaction";
  Gaddr obj = mutator_->Alloc(bunch_, size_slots);
  touched_.insert(SegmentOf(obj));
  touched_objects_.insert(obj);
  return obj;
}

void Transaction::Commit() {
  BMX_CHECK(open_) << "double commit/abort";
  open_ = false;
  // Durability at object granularity: exactly the objects this transaction
  // wrote reach stable storage, atomically (one RVM transaction).  A
  // whole-segment checkpoint would write this node's possibly-stale image of
  // *other* objects over their committed state.
  std::vector<std::pair<SegmentImage*, Gaddr>> objects;
  for (Gaddr addr : touched_objects_) {
    Gaddr canonical = node_->dsm().LocalCopyOf(addr);
    SegmentImage* image = node_->store().Find(SegmentOf(canonical));
    if (image != nullptr && node_->store().HasObjectAt(canonical)) {
      objects.emplace_back(image, canonical);
    }
  }
  node_->persistence().CommitObjects(objects);
  undo_.clear();
}

void Transaction::Abort() {
  BMX_CHECK(open_) << "double commit/abort";
  open_ = false;
  // Unwind in reverse so overlapping writes restore correctly.  Restores go
  // through the mutator API, so the write barrier keeps reference-map bits
  // and SSP bookkeeping coherent.
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    if (it->old_is_ref) {
      mutator_->WriteRef(it->obj, it->slot, it->old_value);
    } else {
      mutator_->WriteWord(it->obj, it->slot, it->old_value);
    }
  }
  undo_.clear();
}

}  // namespace bmx
