// Client-observable history recording for the consistency checker.
//
// Every oracle so far (InvariantOracle, crash sweeps, traffic fingerprints)
// audits *internal* heap/token state.  This layer records what the mutators
// actually see — the values reads return, the writes issued, the
// acquire/release brackets, and GC address-flip observations — tagged with
// vector clocks derived from the existing message causality, so any schedule
// the Explorer produces can be checked against the paper's entry-consistency
// contract at the client boundary (ConsistencyChecker, §2.2).
//
// Causality is derived entirely *out of band*: the network reports each
// logical send and each first delivery to the recorder, which maintains one
// vector clock per node and a (src, dst, seq)-keyed snapshot of the sender's
// clock at send time.  No wire byte changes and no decision index is
// consumed, so pinned traffic fingerprints and recorded traces are
// bit-identical with recording on or off (pinned by consistency_test).
//
// Overhead when disabled: a null-pointer check per hooked operation (the
// recorder pointer lives on the Network; clusters attach one only when
// EnableHistoryRecording() is called).  Compiling with -DBMX_DISABLE_HISTORY
// removes even that branch: every hook site expands to nothing.
//
// Determinism: recording happens on the thread driving the cluster.  Every
// recorded path is single-threaded per cluster — mutator calls, message
// dispatch, and the BGC's serial copy phase (bgc.cc keeps the copy loop in
// segment order precisely so to-space addresses are schedule-independent) —
// so the recorder needs no locking, and explorer walk fleets are safe because
// each walk's cluster (and therefore its recorder) is confined to one pool
// thread.
//
// The recording methods are header-inline: the hook sites live in bmx_net and
// bmx_dsm, which sit *below* bmx_runtime in the library graph and must not
// need link-time symbols from it.

#ifndef SRC_RUNTIME_HISTORY_H_
#define SRC_RUNTIME_HISTORY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/perf_counters.h"
#include "src/common/types.h"

namespace bmx {

// Compile-time kill switch: with BMX_DISABLE_HISTORY defined, every recording
// hook in DsmNode/Mutator/Network compiles to nothing (zero overhead, not
// even the null check).
#if defined(BMX_DISABLE_HISTORY)
#define BMX_HISTORY_HOOK(recorder, call) \
  do {                                   \
  } while (0)
#else
#define BMX_HISTORY_HOOK(recorder, call) \
  do {                                   \
    auto* bmx_hist_rec_ = (recorder);    \
    if (bmx_hist_rec_ != nullptr) {      \
      bmx_hist_rec_->call;               \
    }                                    \
  } while (0)
#endif

// One kind of client-observable event.
enum class HistoryOp : uint8_t {
  kAlloc,         // object created (creator holds the write token implicitly)
  kAcquireRead,   // read token obtained (recorded after success)
  kAcquireWrite,  // write token obtained (recorded after success)
  kRelease,       // token released (recorded before the protocol release)
  kRead,          // slot read: value is what the mutator saw
  kWrite,         // slot write: value is what the mutator stored
  kGcFlip,        // GC address change applied locally (old_addr -> new_addr)
};

const char* HistoryOpName(HistoryOp op);

// Vector clock over the cluster's nodes: vc[n] counts node n's local events
// (client events, GC flips, sends, deliveries).
using VectorClock = std::vector<uint64_t>;

// a happens-before-or-equals b (component-wise <=).
bool VcLeq(const VectorClock& a, const VectorClock& b);
// Neither VcLeq(a, b) nor VcLeq(b, a): concurrent.
bool VcConcurrent(const VectorClock& a, const VectorClock& b);

struct HistoryEvent {
  HistoryOp op = HistoryOp::kRead;
  Oid oid = kNullOid;
  uint32_t slot = 0;
  uint64_t value = 0;   // kRead/kWrite: the slot value; kAlloc: size in slots
  bool is_ref = false;  // kRead/kWrite: the value is a Gaddr (canonicalize)
  Gaddr old_addr = kNullAddr;  // kGcFlip only
  Gaddr new_addr = kNullAddr;  // kGcFlip only
  VectorClock vc;  // snapshot taken after this event's local tick
};

class HistoryRecorder {
 public:
  explicit HistoryRecorder(size_t num_nodes)
      : histories_(num_nodes), clocks_(num_nodes, VectorClock(num_nodes, 0)) {
    BMX_CHECK_GT(num_nodes, 0u);
  }

  // Records one client-observable event on `node`'s history: ticks the node's
  // clock and stamps the event with the post-tick snapshot.
  void Record(NodeId node, HistoryEvent event) {
    BMX_CHECK_LT(node, clocks_.size());
    VectorClock& vc = clocks_[node];
    vc[node]++;
    event.vc = vc;
    histories_[node].push_back(std::move(event));
    GlobalPerfCounters().history_events_recorded++;
  }

  // Message causality, reported by the Network out of band.  OnSend snapshots
  // the sender's clock under the wire identity (src, dst, seq); OnDeliver —
  // invoked before the receiving handler runs, so handler-emitted sends
  // inherit the joined clock — joins that snapshot into the receiver's clock.
  // Both tolerate duplicate wire copies (same key, max-join is idempotent)
  // and traffic outside the cluster's node range (raw harnesses).
  void OnSend(NodeId src, NodeId dst, uint64_t seq) {
    if (src >= clocks_.size() || dst >= clocks_.size()) {
      return;
    }
    VectorClock& vc = clocks_[src];
    vc[src]++;
    in_flight_[{src, dst, seq}] = vc;
  }

  void OnDeliver(NodeId src, NodeId dst, uint64_t seq) {
    if (src >= clocks_.size() || dst >= clocks_.size()) {
      return;
    }
    auto it = in_flight_.find({src, dst, seq});
    if (it == in_flight_.end()) {
      return;  // e.g. redelivery after RegisterNode re-stamped the seq
    }
    VectorClock& vc = clocks_[dst];
    const VectorClock& snap = it->second;
    for (size_t i = 0; i < vc.size(); ++i) {
      vc[i] = std::max(vc[i], snap[i]);
    }
    vc[dst]++;
  }

  size_t num_nodes() const { return clocks_.size(); }

  const std::vector<HistoryEvent>& HistoryOf(NodeId node) const {
    BMX_CHECK_LT(node, histories_.size());
    return histories_[node];
  }

  const VectorClock& ClockOf(NodeId node) const {
    BMX_CHECK_LT(node, clocks_.size());
    return clocks_[node];
  }

  size_t TotalEvents() const {
    size_t total = 0;
    for (const auto& h : histories_) {
      total += h.size();
    }
    return total;
  }

 private:
  std::vector<std::vector<HistoryEvent>> histories_;  // one per node
  std::vector<VectorClock> clocks_;                   // one per node
  // Sender-clock snapshot per logical send, keyed by wire identity.  Entries
  // are kept (not erased on delivery): retransmitted and duplicated copies of
  // the same payload re-join the same snapshot, which is a no-op.
  std::map<std::tuple<NodeId, NodeId, uint64_t>, VectorClock> in_flight_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_HISTORY_H_
