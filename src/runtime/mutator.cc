#include "src/runtime/mutator.h"

#include "src/common/check.h"

namespace bmx {

Mutator::Mutator(Node* node) : node_(node) {
  BMX_CHECK(node_ != nullptr);
  node_->gc().AddRootProvider(this);
}

Mutator::~Mutator() { node_->gc().RemoveRootProvider(this); }

void Mutator::RecordHistory(HistoryOp op, Gaddr obj, uint32_t slot, uint64_t value,
                            bool is_ref) const {
#if !defined(BMX_DISABLE_HISTORY)
  HistoryRecorder* recorder = node_->network()->history_recorder();
  if (recorder == nullptr) {
    return;
  }
  Gaddr resolved = node_->dsm().LocalCopyOf(obj);
  if (!node_->store().HasObjectAt(resolved)) {
    return;  // nothing local to attribute the event to
  }
  HistoryEvent event;
  event.op = op;
  event.oid = node_->store().HeaderOf(resolved)->oid;
  event.slot = slot;
  event.value = value;
  event.is_ref = is_ref;
  recorder->Record(node_->id(), std::move(event));
#else
  (void)op;
  (void)obj;
  (void)slot;
  (void)value;
  (void)is_ref;
#endif
}

Gaddr Mutator::Alloc(BunchId bunch, uint32_t size_slots) {
  Gaddr addr = node_->gc().Allocate(bunch, size_slots);
  RecordHistory(HistoryOp::kAlloc, addr, 0, size_slots, false);
  return addr;
}

bool Mutator::AcquireRead(Gaddr addr) {
  bool ok = node_->dsm().AcquireRead(addr);
  if (ok) {
    // Recorded after success: the grant delivery (if any) has already joined
    // the granter's clock into ours, so the acquire carries the edge.
    RecordHistory(HistoryOp::kAcquireRead, addr, 0, 0, false);
  }
  return ok;
}

bool Mutator::AcquireWrite(Gaddr addr) {
  bool ok = node_->dsm().AcquireWrite(addr);
  if (ok) {
    RecordHistory(HistoryOp::kAcquireWrite, addr, 0, 0, false);
  }
  return ok;
}

void Mutator::Release(Gaddr addr) {
  // Recorded before the protocol release: anything the release triggers
  // (deferred grants, invalidation acks) must causally follow the event.
  RecordHistory(HistoryOp::kRelease, addr, 0, 0, false);
  node_->dsm().Release(addr);
}

void Mutator::CheckWritable(Gaddr obj) const {
  if (!strict_) {
    return;
  }
  Gaddr resolved = node_->dsm().LocalCopyOf(obj);
  BMX_CHECK(node_->store().HasObjectAt(resolved)) << "write to unmapped object";
  Oid oid = node_->store().HeaderOf(resolved)->oid;
  BMX_CHECK(node_->dsm().StateOf(oid) == TokenState::kWrite)
      << "entry consistency violation: write without the write token (node " << node_->id()
      << ", oid " << oid << ")";
}

void Mutator::CheckReadable(Gaddr obj) const {
  if (!strict_) {
    return;
  }
  Gaddr resolved = node_->dsm().LocalCopyOf(obj);
  BMX_CHECK(node_->store().HasObjectAt(resolved)) << "read of unmapped object";
  Oid oid = node_->store().HeaderOf(resolved)->oid;
  BMX_CHECK(node_->dsm().StateOf(oid) != TokenState::kNone)
      << "entry consistency violation: read without a token (node " << node_->id() << ", oid "
      << oid << ")";
}

void Mutator::WriteRef(Gaddr obj, size_t slot, Gaddr target) {
  CheckWritable(obj);
  node_->gc().WriteRef(obj, slot, target);
  RecordHistory(HistoryOp::kWrite, obj, static_cast<uint32_t>(slot), target, true);
}

void Mutator::WriteWord(Gaddr obj, size_t slot, uint64_t value) {
  CheckWritable(obj);
  node_->gc().WriteWord(obj, slot, value);
  RecordHistory(HistoryOp::kWrite, obj, static_cast<uint32_t>(slot), value, false);
}

Gaddr Mutator::ReadRef(Gaddr obj, size_t slot) const {
  CheckReadable(obj);
  Gaddr value = node_->gc().ReadSlot(obj, slot);
  RecordHistory(HistoryOp::kRead, obj, static_cast<uint32_t>(slot), value, true);
  return value;
}

uint64_t Mutator::ReadWord(Gaddr obj, size_t slot) const {
  CheckReadable(obj);
  uint64_t value = node_->gc().ReadSlot(obj, slot);
  RecordHistory(HistoryOp::kRead, obj, static_cast<uint32_t>(slot), value, false);
  return value;
}

size_t Mutator::AddRoot(Gaddr addr) {
  if (addr != kNullAddr) {
    // A root must refer to an object this node has actually faulted in; the
    // non-owned local replica is what ties our interest into the global
    // liveness chain (exiting ownerPtr → entering ownerPtr at the owner).
    Gaddr resolved = node_->dsm().ResolveAddr(addr);
    BMX_CHECK(node_->store().HasObjectAt(resolved))
        << "root to an object with no local replica; acquire it first";
  }
  roots_.push_back(addr);
  return roots_.size() - 1;
}

void Mutator::SetRoot(size_t index, Gaddr addr) {
  BMX_CHECK_LT(index, roots_.size());
  roots_[index] = addr;
}

Gaddr Mutator::Root(size_t index) const {
  BMX_CHECK_LT(index, roots_.size());
  return roots_[index];
}

std::vector<Gaddr*> Mutator::RootSlots() {
  std::vector<Gaddr*> slots;
  slots.reserve(roots_.size());
  for (Gaddr& root : roots_) {
    slots.push_back(&root);
  }
  return slots;
}

}  // namespace bmx
