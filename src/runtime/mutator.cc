#include "src/runtime/mutator.h"

#include "src/common/check.h"

namespace bmx {

Mutator::Mutator(Node* node) : node_(node) {
  BMX_CHECK(node_ != nullptr);
  node_->gc().AddRootProvider(this);
}

Mutator::~Mutator() { node_->gc().RemoveRootProvider(this); }

Gaddr Mutator::Alloc(BunchId bunch, uint32_t size_slots) {
  return node_->gc().Allocate(bunch, size_slots);
}

bool Mutator::AcquireRead(Gaddr addr) { return node_->dsm().AcquireRead(addr); }

bool Mutator::AcquireWrite(Gaddr addr) { return node_->dsm().AcquireWrite(addr); }

void Mutator::Release(Gaddr addr) { node_->dsm().Release(addr); }

void Mutator::CheckWritable(Gaddr obj) const {
  if (!strict_) {
    return;
  }
  Gaddr resolved = node_->dsm().LocalCopyOf(obj);
  BMX_CHECK(node_->store().HasObjectAt(resolved)) << "write to unmapped object";
  Oid oid = node_->store().HeaderOf(resolved)->oid;
  BMX_CHECK(node_->dsm().StateOf(oid) == TokenState::kWrite)
      << "entry consistency violation: write without the write token (node " << node_->id()
      << ", oid " << oid << ")";
}

void Mutator::CheckReadable(Gaddr obj) const {
  if (!strict_) {
    return;
  }
  Gaddr resolved = node_->dsm().LocalCopyOf(obj);
  BMX_CHECK(node_->store().HasObjectAt(resolved)) << "read of unmapped object";
  Oid oid = node_->store().HeaderOf(resolved)->oid;
  BMX_CHECK(node_->dsm().StateOf(oid) != TokenState::kNone)
      << "entry consistency violation: read without a token (node " << node_->id() << ", oid "
      << oid << ")";
}

void Mutator::WriteRef(Gaddr obj, size_t slot, Gaddr target) {
  CheckWritable(obj);
  node_->gc().WriteRef(obj, slot, target);
}

void Mutator::WriteWord(Gaddr obj, size_t slot, uint64_t value) {
  CheckWritable(obj);
  node_->gc().WriteWord(obj, slot, value);
}

Gaddr Mutator::ReadRef(Gaddr obj, size_t slot) const {
  CheckReadable(obj);
  return node_->gc().ReadSlot(obj, slot);
}

uint64_t Mutator::ReadWord(Gaddr obj, size_t slot) const {
  CheckReadable(obj);
  return node_->gc().ReadSlot(obj, slot);
}

size_t Mutator::AddRoot(Gaddr addr) {
  if (addr != kNullAddr) {
    // A root must refer to an object this node has actually faulted in; the
    // non-owned local replica is what ties our interest into the global
    // liveness chain (exiting ownerPtr → entering ownerPtr at the owner).
    Gaddr resolved = node_->dsm().ResolveAddr(addr);
    BMX_CHECK(node_->store().HasObjectAt(resolved))
        << "root to an object with no local replica; acquire it first";
  }
  roots_.push_back(addr);
  return roots_.size() - 1;
}

void Mutator::SetRoot(size_t index, Gaddr addr) {
  BMX_CHECK_LT(index, roots_.size());
  roots_[index] = addr;
}

Gaddr Mutator::Root(size_t index) const {
  BMX_CHECK_LT(index, roots_.size());
  return roots_[index];
}

std::vector<Gaddr*> Mutator::RootSlots() {
  std::vector<Gaddr*> slots;
  slots.reserve(roots_.size());
  for (Gaddr& root : roots_) {
    slots.push_back(&root);
  }
  return slots;
}

}  // namespace bmx
