#include "src/runtime/recovery.h"

#include <map>
#include <memory>
#include <utility>

#include "src/common/check.h"
#include "src/common/perf_counters.h"

namespace bmx {

RecoveryManager::RecoveryManager(NodeId id, Network* network, SegmentDirectory* directory,
                                 ReplicaStore* store, DsmNode* dsm, GcEngine* gc,
                                 PersistenceManager* persistence)
    : id_(id),
      network_(network),
      directory_(directory),
      store_(store),
      dsm_(dsm),
      gc_(gc),
      persistence_(persistence) {}

std::set<NodeId> RecoveryManager::PeerSet() const {
  std::set<NodeId> peers;
  for (BunchId bunch : directory_->AllBunches()) {
    for (NodeId node : directory_->MappersOf(bunch)) {
      if (node != id_) {
        peers.insert(node);
      }
    }
  }
  return peers;
}

void RecoveryManager::RunRecovery() {
  GlobalPerfCounters().recoveries++;
  in_progress_ = true;
  network_->obligations().Open(ObligationKind::kRecovery, id_, 0);
  persistence_->Recover();

  // --- 1. Reload every checkpointed segment the manifest names. ---
  recovered_bunches_.clear();
  std::set<BunchId> bunches;
  std::vector<std::pair<SegmentId, BunchId>> loaded;
  for (const auto& [seg, bunch] : persistence_->Manifest()) {
    if (directory_->IsRetired(seg)) {
      continue;  // reclaimed before the crash; the tombstone outranks the file
    }
    SegmentImage& image = store_->GetOrCreate(seg, bunch);
    if (!persistence_->LoadSegment(&image)) {
      continue;
    }
    bunches.insert(bunch);
    loaded.emplace_back(seg, bunch);
  }
  for (BunchId bunch : bunches) {
    gc_->RegisterBunchReplica(bunch);
    recovered_bunches_.push_back(bunch);
  }

  // --- 2. Re-adopt objects.  An oid can have several non-forwarded copies
  // across recovered segments (old and new copies checkpointed by different
  // transactions); prefer the copy the directory calls canonical, else the
  // one in the newest segment.
  struct Candidate {
    Gaddr addr = kNullAddr;
    BunchId bunch = kInvalidBunch;
    SegmentId seg = kInvalidSegment;
  };
  std::map<Oid, Candidate> best;  // ordered: adoption order reaches the wire
  for (const auto& [seg, bunch] : loaded) {
    SegmentImage* image = store_->Find(seg);
    BunchId b = bunch;
    SegmentId s = seg;
    image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
      if (header.forwarded()) {
        return;  // ResolveAddr chases the in-heap forwarder when needed
      }
      Candidate cand{addr, b, s};
      auto [it, inserted] = best.emplace(header.oid, cand);
      if (inserted) {
        return;
      }
      Gaddr canonical = directory_->CanonicalAddressOf(header.oid);
      if (addr == canonical || (it->second.addr != canonical && s > it->second.seg)) {
        it->second = cand;
      }
    });
  }
  claimed_.clear();
  for (const auto& [oid, cand] : best) {
    NodeId owner_of_record = directory_->OwnerOf(oid);
    // kInvalidNode: the object was reclaimed or its owner record was lost —
    // re-own conservatively; the peer reconciliation demotes us if contested.
    bool owned = owner_of_record == id_ || owner_of_record == kInvalidNode;
    dsm_->AdoptRecoveredObject(oid, cand.addr, cand.bunch, owned, owner_of_record);
    if (owned) {
      claimed_.push_back(oid);
    }
  }

  // --- 3. The volatile stub tables died with the previous life; the heap is
  // ground truth for outgoing cross-bunch references.
  for (BunchId bunch : recovered_bunches_) {
    gc_->RebuildSspsFromHeap(bunch);
  }

  // --- 4. Reconcile with surviving peers. ---
  std::set<NodeId> peers = PeerSet();
  auto& perf = GlobalPerfCounters();
  for (NodeId peer : peers) {
    auto query = std::make_shared<RecoveryQueryPayload>();
    query->phase = RecoveryPhase::kStart;
    query->bunches = recovered_bunches_;
    query->claimed_oids = claimed_;
    perf.recovery_query_bytes += query->WireSize();
    network_->Send(id_, peer, std::move(query));
  }
  network_->RunUntilIdle();

  // --- 5. Vacuous ownership: owned on paper, bytes nowhere.  Happens when a
  // registered allocation never reached a checkpoint and no peer was ever
  // granted a copy; keeping the record would route acquires into a void.
  for (Oid oid : directory_->OwnedBy(id_)) {
    Gaddr addr = store_->AddrOfOid(oid);
    Gaddr resolved = addr == kNullAddr ? kNullAddr : dsm_->ResolveAddr(addr);
    if (resolved != kNullAddr && store_->HasObjectAt(resolved)) {
      continue;
    }
    directory_->ForgetObjectAddresses(oid);  // also forgets the owner record
    dsm_->ForgetObject(oid);
    store_->ForgetOid(oid);
  }

  // --- 6. Done: peers lift conservative scion retention. ---
  for (NodeId peer : peers) {
    auto done = std::make_shared<RecoveryQueryPayload>();
    done->phase = RecoveryPhase::kComplete;
    perf.recovery_query_bytes += done->WireSize();
    network_->Send(id_, peer, std::move(done));
  }
  network_->RunUntilIdle();
  network_->obligations().Close(ObligationKind::kRecovery, id_, 0);
  in_progress_ = false;
}

void RecoveryManager::HandleMessage(const Message& msg) {
  switch (msg.payload->kind()) {
    case MsgKind::kRecoveryQuery:
      HandleQuery(msg);
      return;
    case MsgKind::kRecoveryReply:
      HandleReply(msg);
      return;
    default:
      BMX_CHECK(false) << "recovery manager got " << MsgKindName(msg.payload->kind());
  }
}

void RecoveryManager::HandleQuery(const Message& msg) {
  const auto& query = static_cast<const RecoveryQueryPayload&>(*msg.payload);
  NodeId peer = msg.src;
  if (query.phase == RecoveryPhase::kComplete) {
    gc_->ClearRecoveringPeer(peer);
    return;
  }
  gc_->NoteRecoveringPeer(peer);

  std::set<Oid> claimed(query.claimed_oids.begin(), query.claimed_oids.end());
  auto reply = std::make_shared<RecoveryReplyPayload>();

  for (const TokenSnapshot& t : dsm_->SnapshotTokens()) {
    if (t.owner && claimed.count(t.oid) > 0) {
      // Both sides claim ownership; the live token outranks the checkpoint.
      reply->contested.push_back(t.oid);
      continue;
    }
    if (directory_->OwnerOf(t.oid) != peer) {
      continue;
    }
    RecoveredReplicaEntry e;
    e.oid = t.oid;
    e.bunch = t.bunch;
    e.has_token = t.state != TokenState::kNone;
    Gaddr addr = store_->AddrOfOid(t.oid);
    Gaddr resolved = addr == kNullAddr ? kNullAddr : dsm_->ResolveAddr(addr);
    if (resolved != kNullAddr && store_->HasObjectAt(resolved)) {
      const ObjectHeader* header = store_->HeaderOf(resolved);
      if (!header->forwarded()) {
        e.addr = resolved;
        e.has_bytes = true;
        e.header = *header;
        e.slots.resize(header->size_slots);
        e.slot_is_ref.assign(header->size_slots, 0);
        for (uint32_t slot = 0; slot < header->size_slots; ++slot) {
          e.slots[slot] = store_->ReadSlot(resolved, slot);
          e.slot_is_ref[slot] = store_->SlotIsRef(resolved, slot) ? 1 : 0;
        }
      }
    }
    if (e.has_bytes || e.has_token) {
      reply->replicas.push_back(std::move(e));
    }
  }

  // SSP halves whose other half died with the peer's previous life.
  for (BunchId bunch : gc_->ReplicaBunches()) {
    GcEngine::BunchTables tables = gc_->TablesOf(bunch);
    for (const InterStub& stub : tables.inter_stubs) {
      if (stub.scion_node == peer) {
        reply->inter_scions.push_back(
            {stub.id, stub.src_bunch, stub.target_addr, stub.target_bunch});
      }
    }
    for (const IntraStub& stub : tables.intra_stubs) {
      if (stub.scion_node == peer) {
        reply->intra_scions.push_back({stub.oid, stub.bunch});
      }
    }
    for (const IntraScion& scion : tables.intra_scions) {
      if (scion.stub_node == peer) {
        reply->intra_stubs.push_back({scion.oid, scion.bunch});
      }
    }
  }

  GlobalPerfCounters().recovery_query_bytes += reply->WireSize();
  network_->Send(id_, peer, std::move(reply));
}

void RecoveryManager::HandleReply(const Message& msg) {
  const auto& reply = static_cast<const RecoveryReplyPayload&>(*msg.payload);
  NodeId peer = msg.src;

  for (Oid oid : reply.contested) {
    // Our checkpointed ownership claim predates a transfer to the peer:
    // demote the recovered copy to a tokenless replica.
    directory_->RecordOwner(oid, peer);
    dsm_->AdoptRecoveredObject(oid, store_->AddrOfOid(oid), dsm_->BunchOf(oid),
                               /*owned=*/false, peer);
  }

  for (const RecoveredReplicaEntry& e : reply.replicas) {
    if (directory_->OwnerOf(e.oid) != id_) {
      continue;  // demoted by a contested entry from another peer
    }
    Gaddr local = store_->AddrOfOid(e.oid);
    Gaddr resolved = local == kNullAddr ? kNullAddr : dsm_->ResolveAddr(local);
    bool have_bytes = resolved != kNullAddr && store_->HasObjectAt(resolved);
    if (!have_bytes && e.has_bytes) {
      // The peer's copy resupplies an owned object our checkpoint predates.
      gc_->RegisterBunchReplica(e.bunch);
      dsm_->InstallObjectBytes(e.oid, e.bunch, e.addr, e.header, e.slots, e.slot_is_ref);
      dsm_->AdoptRecoveredObject(e.oid, e.addr, e.bunch, /*owned=*/true, kInvalidNode);
    }
    if (dsm_->IsLocallyOwned(e.oid)) {
      dsm_->RestoreReaderReplica(e.oid, peer, e.has_token);
    }
  }

  for (const InterScionRestore& r : reply.inter_scions) {
    gc_->RestoreInterScion(peer, r.stub_id, r.src_bunch, r.target_addr, r.target_bunch);
  }
  for (const IntraRestore& r : reply.intra_scions) {
    gc_->RestoreIntraScion(r.oid, r.bunch, peer);
  }
  for (const IntraRestore& r : reply.intra_stubs) {
    gc_->RestoreIntraStub(r.oid, r.bunch, peer);
  }
}

}  // namespace bmx
