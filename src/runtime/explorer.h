// Schedule-exploration harness.
//
// An ExplorerScenario is a closure over one workload: build a fresh cluster,
// drive it, quiesce.  The Explorer runs the scenario many times under an
// exploratory SchedulerPolicy (one recorded decision trace per walk), checks
// the InvariantOracle's stable core after every delivery (configurable
// stride) and the full invariant set at quiescence, and — on a violation —
// minimizes the recorded trace with a delta-debugging shrink so the failing
// schedule replays from a handful of decisions.
//
// Everything here is deterministic: walk k of root seed S is the same run on
// every machine, and Replay() reproduces a recorded run bit-identically
// (pinned by the replay-determinism tests via NetworkStats::Fingerprint).

#ifndef SRC_RUNTIME_EXPLORER_H_
#define SRC_RUNTIME_EXPLORER_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/scheduler.h"
#include "src/runtime/cluster.h"

namespace bmx {

// One explorable workload.  `make` builds a fresh cluster seeded from the
// explorer's root seed; `run` drives the workload (synchronous acquires pump
// the network internally, so deliveries — and invariant checks — happen
// throughout).  `run` must tolerate exploratory schedules: an acquire that
// fails under an adversarial interleaving is skipped, not fatal.
struct ExplorerScenario {
  std::string name;
  std::function<std::unique_ptr<Cluster>(uint64_t root_seed)> make;
  std::function<void(Cluster&)> run;
};

enum class ScheduleKind : uint8_t { kFifo, kRandomWalk, kDelayBounded };

struct ExplorerOptions {
  uint64_t root_seed = 1;
  // Walks per scenario; walk k uses DeriveStreamSeed(root_seed + k,
  // kScheduler) so the sequence is reproducible from the root seed alone.
  size_t num_walks = 16;
  ScheduleKind schedule = ScheduleKind::kRandomWalk;
  uint64_t delay_bound = 4;     // kDelayBounded only
  // kRandomWalk only.  Sparse deviations (well below 1.0) keep recorded
  // traces short, which is what lets the shrinker reduce a failing schedule
  // to a handful of decisions.
  double deviation_rate = 0.3;
  // Run the oracle's stable core every `oracle_stride` deliveries; 0 checks
  // only at quiescence (cheaper, but the shrinker loses the early violation
  // index that tail truncation feeds on).
  uint64_t oracle_stride = 1;
  // Wall-clock budget: no new walk starts after this many seconds (0 = no
  // limit).  At least one walk always runs.
  double budget_seconds = 0.0;
  // Upper bound on scenario executions one Shrink() may spend.
  size_t max_shrink_runs = 400;
  // Record per-node client histories (Cluster::EnableHistoryRecording) and
  // run the ConsistencyChecker at quiescence; its violations join the
  // oracle's, prefixed "consistency: ".  Recording is observation-only, so
  // fingerprints — and therefore shrinking and replay — are unaffected.
  bool check_consistency = false;
  // Enable the obligation tracker on the cluster's network and run the
  // LivenessOracle: a windowed no-progress probe after every delivery and a
  // full stalled-obligation check at quiescence; its verdicts join the
  // oracle's, prefixed "liveness: ".  Tracking is observation-only (the
  // tracker never touches the network), so fingerprints — and therefore
  // shrinking and replay — are unaffected.
  bool check_liveness = false;
  // When non-empty, the shrunk trace of a violating walk is written here as
  // "<scenario>-violation.trace".
  std::string trace_dir;
};

// Outcome of a single (re)run of a scenario.
struct RunResult {
  bool violated = false;
  // Mid-run violations are prefixed "mid-run: "; the rest came from the full
  // quiescence check.
  std::vector<std::string> violations;
  // Decision-stream position when the first violation was detected (the
  // stream length of the whole run if none / quiescence-only).  Decisions at
  // or beyond this index cannot have caused the violation — the shrinker's
  // tail truncation rests on that.
  uint64_t first_violation_index = 0;
  uint64_t deliveries = 0;
  std::string fingerprint;  // NetworkStats::Fingerprint() at end of run
};

struct ExplorationResult {
  bool violation_found = false;
  uint64_t violating_walk_seed = 0;
  std::vector<std::string> violations;
  std::string fingerprint;  // violating run's (last clean run's otherwise)
  Trace trace;              // as recorded from the violating walk
  Trace shrunk;             // minimized; equals `trace` if shrinking failed
  std::string trace_path;   // where the shrunk trace was written ("" if not)
  size_t runs = 0;          // scenario executions spent, shrinking included
  uint64_t total_deliveries = 0;
};

class Explorer {
 public:
  explicit Explorer(const ExplorerOptions& options) : options_(options) {}

  // Runs up to num_walks recorded walks of the scenario, stopping at the
  // first violation (which is then shrunk and, if trace_dir is set, written
  // to disk).  A kFifo schedule degenerates to one deterministic walk.
  ExplorationResult Explore(const ExplorerScenario& scenario);

  // Replays a trace against a fresh instance of the scenario.  Bit-identical
  // to the recorded run when the trace is untouched; still deterministic
  // (defaults fill the gaps) when it has been truncated or edited.
  RunResult Replay(const ExplorerScenario& scenario, const Trace& trace);

  // Delta-debugging minimization of a violating trace: tail-truncate at the
  // first violation's decision index, then greedily drop single decisions
  // (newest first) re-replaying after each, to fixpoint or until
  // max_shrink_runs executions.  Returns the input unchanged if it does not
  // reproduce a violation.
  Trace Shrink(const ExplorerScenario& scenario, const Trace& trace,
               size_t* runs_used = nullptr);

 private:
  // Shared engine: one scenario execution, recording (replay == nullptr) or
  // replaying.  `stride` overrides options_.oracle_stride.
  RunResult RunOnce(const ExplorerScenario& scenario, uint64_t walk_seed,
                    const Trace* replay, Trace* recorded, uint64_t stride);

  // Multi-threaded Explore: task-pool batches of independent walks, folded in
  // walk order so the result is identical to the serial loop (see .cc).
  ExplorationResult ExploreParallel(const ExplorerScenario& scenario, size_t walks,
                                    std::chrono::steady_clock::time_point start);

  ExplorerOptions options_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_EXPLORER_H_
