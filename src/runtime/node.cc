#include "src/runtime/node.h"

#include "src/common/check.h"

namespace bmx {

Node::Node(NodeId id, Network* network, SegmentDirectory* directory, Disk* disk, CopySetMode mode)
    : id_(id),
      network_(network),
      dsm_(id, network, directory, &store_, mode),
      gc_(id, network, directory, &store_, &dsm_),
      persistence_(disk, id),
      recovery_(id, network, directory, &store_, &dsm_, &gc_, &persistence_) {
  network_->RegisterNode(id_, this);
}

void Node::HandleMessage(const Message& msg) {
  switch (msg.payload->kind()) {
    case MsgKind::kAcquireRequest:
    case MsgKind::kGrant:
    case MsgKind::kInvalidate:
    case MsgKind::kInvalidateAck:
    case MsgKind::kObjectPush:
      dsm_.HandleMessage(msg);
      return;
    case MsgKind::kScionMessage:
    case MsgKind::kReachabilityTable:
    case MsgKind::kCopyRequest:
    case MsgKind::kCopyReply:
    case MsgKind::kAddressChange:
    case MsgKind::kAddressChangeAck:
      gc_.HandleMessage(msg);
      return;
    case MsgKind::kRecoveryQuery:
    case MsgKind::kRecoveryReply:
      recovery_.HandleMessage(msg);
      return;
    default:
      BMX_CHECK(extra_handler_ != nullptr)
          << "node " << id_ << " has no handler for " << MsgKindName(msg.payload->kind());
      extra_handler_->HandleMessage(msg);
      return;
  }
}

void Node::CheckpointBunch(BunchId bunch) {
  std::vector<SegmentImage*> images;
  for (SegmentId seg : store_.SegmentsOfBunch(bunch)) {
    images.push_back(store_.Find(seg));
  }
  persistence_.CheckpointSegments(images);
}

}  // namespace bmx
