// One simulated machine: replica store, DSM protocol engine, GC engine and
// persistence manager, with a single network identity.  Routes incoming
// messages to the right protocol engine by message kind; kinds belonging to
// baseline collectors are routed to a pluggable extra handler.

#ifndef SRC_RUNTIME_NODE_H_
#define SRC_RUNTIME_NODE_H_

#include <memory>

#include "src/common/types.h"
#include "src/dsm/dsm_node.h"
#include "src/gc/gc_engine.h"
#include "src/mem/directory.h"
#include "src/mem/replica_store.h"
#include "src/net/network.h"
#include "src/runtime/persistence.h"
#include "src/runtime/recovery.h"
#include "src/rvm/disk.h"

namespace bmx {

class Node : public MessageHandler {
 public:
  Node(NodeId id, Network* network, SegmentDirectory* directory, Disk* disk,
       CopySetMode mode = CopySetMode::kCentralized);

  NodeId id() const { return id_; }
  Network* network() { return network_; }
  ReplicaStore& store() { return store_; }
  DsmNode& dsm() { return dsm_; }
  GcEngine& gc() { return gc_; }
  PersistenceManager& persistence() { return persistence_; }
  RecoveryManager& recovery() { return recovery_; }

  // Handler for baseline-collector message kinds (StwStop…, Rc…, Strong…).
  void set_extra_handler(MessageHandler* handler) { extra_handler_ = handler; }

  void HandleMessage(const Message& msg) override;

  // Persist the local replica of `bunch` (all its mapped segments) in one
  // recoverable transaction.
  void CheckpointBunch(BunchId bunch);

 private:
  NodeId id_;
  Network* network_;
  ReplicaStore store_;
  DsmNode dsm_;
  GcEngine gc_;
  PersistenceManager persistence_;
  RecoveryManager recovery_;
  MessageHandler* extra_handler_ = nullptr;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_NODE_H_
