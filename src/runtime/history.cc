#include "src/runtime/history.h"

namespace bmx {

const char* HistoryOpName(HistoryOp op) {
  switch (op) {
    case HistoryOp::kAlloc:
      return "alloc";
    case HistoryOp::kAcquireRead:
      return "acquire-read";
    case HistoryOp::kAcquireWrite:
      return "acquire-write";
    case HistoryOp::kRelease:
      return "release";
    case HistoryOp::kRead:
      return "read";
    case HistoryOp::kWrite:
      return "write";
    case HistoryOp::kGcFlip:
      return "gc-flip";
  }
  return "unknown";
}

bool VcLeq(const VectorClock& a, const VectorClock& b) {
  BMX_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) {
      return false;
    }
  }
  return true;
}

bool VcConcurrent(const VectorClock& a, const VectorClock& b) {
  return !VcLeq(a, b) && !VcLeq(b, a);
}

}  // namespace bmx
