#include "src/runtime/liveness.h"

#include <sstream>

#include "src/common/perf_counters.h"
#include "src/dsm/dsm_node.h"
#include "src/net/network.h"

namespace bmx {

LivenessOracle::LivenessOracle(Cluster* cluster, const LivenessOptions& options)
    : cluster_(cluster), options_(options) {
  cluster_->network().obligations().Enable(options_.deadline_ticks);
  retired_at_last_probe_ = cluster_->network().obligations().retired();
}

bool LivenessOracle::Excused(const Obligation& ob,
                             const std::vector<Obligation>& open) const {
  Network& net = cluster_->network();
  if (!cluster_->IsAlive(ob.node)) {
    return true;  // dead nodes owe nothing (DropNode races with this check)
  }
  if (net.HasTrafficTouching(ob.node)) {
    return true;  // progress may still be in flight or parked for redelivery
  }
  switch (ob.kind) {
    case ObligationKind::kAcquire: {
      DsmNode& dsm = cluster_->node(ob.node).dsm();
      NodeId target = dsm.AcquireTarget();
      if (target != kInvalidNode && !net.NodeAttached(target)) {
        return true;  // waiting on a crashed peer; the retry driver gives up
      }
      for (size_t id = 0; id < cluster_->size(); ++id) {
        NodeId peer = static_cast<NodeId>(id);
        if (peer == ob.node || !cluster_->IsAlive(peer)) {
          continue;
        }
        if (cluster_->node(peer).dsm().HasPendingWorkFor(ob.node)) {
          return true;  // deferred or parked at a live peer: legal stall
        }
      }
      return false;
    }
    case ObligationKind::kInvalidation: {
      Oid oid = static_cast<Oid>(ob.key);
      for (size_t id = 0; id < cluster_->size(); ++id) {
        NodeId peer = static_cast<NodeId>(id);
        if (peer == ob.node || !cluster_->IsAlive(peer)) {
          continue;
        }
        if (cluster_->node(peer).dsm().IsHeld(oid)) {
          return true;  // a live holder's ack legitimately awaits release
        }
      }
      for (const Obligation& other : open) {
        if (other.kind == ObligationKind::kInvalidation && other.key == ob.key &&
            other.node != ob.node) {
          return true;  // chained fan-out: the other leg carries the promise
        }
      }
      return false;
    }
    case ObligationKind::kPendingGrant: {
      for (const Obligation& other : open) {
        if (other.kind == ObligationKind::kInvalidation && other.node == ob.node &&
            other.key == ob.key) {
          return true;  // parked exactly behind our own fan-out
        }
      }
      return false;
    }
    case ObligationKind::kGcReclaim: {
      for (size_t id = 0; id < cluster_->size(); ++id) {
        if (!cluster_->IsAlive(static_cast<NodeId>(id))) {
          return true;  // conservative §4.5 deferral while a peer is down
        }
      }
      for (const Obligation& other : open) {
        if (other.kind == ObligationKind::kRecovery) {
          return true;
        }
      }
      return false;
    }
    case ObligationKind::kRecovery:
      return false;  // generic excuses only: recovery drives its own traffic
    case ObligationKind::kRetention: {
      NodeId peer = static_cast<NodeId>(ob.key);
      if (!cluster_->IsAlive(peer)) {
        return true;  // retention is *for* the downed peer
      }
      for (const Obligation& other : open) {
        if (other.kind == ObligationKind::kRecovery && other.node == peer) {
          return true;  // peer is back but still reconciling
        }
      }
      return false;
    }
  }
  return false;
}

std::vector<std::string> LivenessOracle::CollectVerdicts(bool require_overdue,
                                                         const char* what) {
  GlobalPerfCounters().liveness_checks_run++;
  Network& net = cluster_->network();
  std::vector<Obligation> open = net.obligations().Snapshot();
  std::vector<std::string> out;
  for (const Obligation& ob : open) {
    if (require_overdue && net.now() < ob.deadline) {
      continue;
    }
    if (Excused(ob, open)) {
      continue;
    }
    std::ostringstream verdict;
    verdict << what << ": obligation kind=" << ObligationKindName(ob.kind)
            << " node=" << ob.node << " key=" << ob.key << " opened_at=" << ob.opened_at
            << " now=" << net.now() << " retired=" << net.obligations().retired()
            << "\nledger:\n"
            << net.obligations().Dump();
    out.push_back(verdict.str());
  }
  GlobalPerfCounters().liveness_violations += out.size();
  return out;
}

std::vector<std::string> LivenessOracle::OnDelivery() {
  deliveries_++;
  if (options_.window == 0 || deliveries_ % options_.window != 0) {
    return {};
  }
  uint64_t retired = cluster_->network().obligations().retired();
  bool progressed = retired != retired_at_last_probe_;
  retired_at_last_probe_ = retired;
  if (progressed) {
    return {};
  }
  return CollectVerdicts(/*require_overdue=*/true, "no progress");
}

std::vector<std::string> LivenessOracle::CheckAtQuiescence() {
  return CollectVerdicts(/*require_overdue=*/false, "stalled at quiescence");
}

}  // namespace bmx
