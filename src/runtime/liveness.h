// Cluster-wide liveness oracle (paper §8 progress goals): interrogates the
// network's obligation ledger (src/common/obligations.h) and decides whether
// an open obligation is a stall or merely slow.
//
// A no-progress verdict is only issued when no protocol rule *excuses* the
// obligation.  The excuse rules encode the legitimate quiescent states of the
// BMX protocols — without them a naive age check would flag healthy runs:
//
//   * generic — the owing node is dead (its promises died with it), or the
//     network still carries traffic touching the node (queued, unacked or
//     stashed messages mean progress may yet arrive, e.g. reliable payloads
//     parked for a crashed peer);
//   * acquire — the wait target detached (crash; the retry driver gives up
//     on its own), or some live node holds pending work for the requester
//     (a deferred request or parked grant: deferral behind an orphaned token
//     holder is a legal permanent state, mutators that lost an acquire never
//     release late grants);
//   * invalidation — a live peer still holds a token for the oid (its ack
//     legitimately waits on mutator release), or a chained invalidation for
//     the same oid is open elsewhere;
//   * pending grant — the write grant is parked exactly while the node's own
//     invalidation fan-out for the oid is open;
//   * gc reclaim — a dead node or an armed recovery anywhere freezes
//     reclamation conservatively (§4.5 deferral);
//   * retention — additive scion retention persists while the recovering
//     peer is down or its recovery is still armed.
//
// Mid-run, the oracle samples every `window` deliveries and flags only when a
// whole window retired nothing AND an inexcusable obligation is past its
// deadline.  At quiescence every open, inexcusable obligation is a verdict
// regardless of age (nothing further can discharge it).  Verdicts carry the
// full obligation dump so a violating trace is diagnosable offline.

#ifndef SRC_RUNTIME_LIVENESS_H_
#define SRC_RUNTIME_LIVENESS_H_

#include <string>
#include <vector>

#include "src/common/obligations.h"
#include "src/runtime/cluster.h"

namespace bmx {

struct LivenessOptions {
  // Virtual-clock budget an obligation gets before mid-run checks may flag
  // it.  Generous relative to retransmit backoff so lossy-link runs do not
  // false-positive.
  uint64_t deadline_ticks = ObligationTracker::kDefaultDeadlineTicks;
  // Deliveries between mid-run progress probes.
  uint64_t window = 512;
};

class LivenessOracle {
 public:
  explicit LivenessOracle(Cluster* cluster, const LivenessOptions& options = {});

  // Call after every delivery.  Returns verdicts (usually empty) once per
  // elapsed window; cheap (two counter compares) on all other deliveries.
  std::vector<std::string> OnDelivery();

  // Call at network quiescence: every open, inexcusable obligation is a
  // verdict — no traffic remains to discharge it.
  std::vector<std::string> CheckAtQuiescence();

 private:
  // True when a protocol rule explains why `ob` can stay open without the
  // cluster being stuck.  `open` is the full deterministic snapshot (rules
  // cross-reference sibling obligations).
  bool Excused(const Obligation& ob, const std::vector<Obligation>& open) const;
  std::vector<std::string> CollectVerdicts(bool require_overdue, const char* what);

  Cluster* cluster_;
  LivenessOptions options_;
  uint64_t deliveries_ = 0;
  uint64_t retired_at_last_probe_ = 0;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_LIVENESS_H_
